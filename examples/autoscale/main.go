// Autoscale: the Section 6.2 trade-off, quantified. A load spike arrives;
// we compare three provisioning strategies for absorbing it:
//
//   - cold scale-out: request new instances when the backlog appears and
//     wait the ~10-minute startup the paper measures (Table 1's Add phase
//     averages 17 min for small workers);
//   - hot standby: instances already running (and billed) before the spike;
//   - no scaling: ride out the spike with the base fleet.
//
// The output shows the backlog drain time and the instance-hours each
// strategy burns — the economic trade the paper's recommendation describes.
//
//	go run ./examples/autoscale
package main

import (
	"errors"
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
)

const (
	baseWorkers  = 2
	extraWorkers = 6
	spikeTasks   = 120
	taskDuration = 90 * time.Second
)

func main() {
	fmt.Printf("load spike: %d tasks x %v, base fleet %d workers, %d extra on demand\n\n",
		spikeTasks, taskDuration, baseWorkers, extraWorkers)
	for _, strategy := range []string{"no-scaling", "cold-scale-out", "hot-standby"} {
		drain, instanceHours := simulate(strategy)
		fmt.Printf("%-15s backlog drained in %8v, %6.2f instance-hours\n",
			strategy, drain.Round(time.Second), instanceHours)
	}
	fmt.Println("\ncold scale-out pays the paper's ~10-minute startup before the extra")
	fmt.Println("instances contribute; hot standby pays for idle capacity instead.")
}

func simulate(strategy string) (drain time.Duration, instanceHours float64) {
	cfg := azure.Config{Seed: 11}
	cfg.Fabric = fabric.DefaultConfig()
	cfg.Fabric.Degradation = false
	cloud := azure.NewCloud(cfg)
	mgmt := cloud.Management()

	queue := cloud.Queue.CreateQueue("work")
	var completed int
	var drainedAt time.Duration

	worker := func(vm *fabric.VM) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			for completed < spikeTasks {
				_, receipt, ok, err := cloud.Queue.Receive(p, queue, 10*time.Minute)
				if err != nil {
					panic(err)
				}
				if !ok {
					p.Sleep(5 * time.Second)
					continue
				}
				if err := cloud.Queue.Delete(p, queue, receipt); err != nil {
					panic(err)
				}
				vm.Execute(p, taskDuration)
				completed++
				if completed == spikeTasks {
					drainedAt = p.Now()
				}
			}
		}
	}

	// Base fleet runs from t=0; the spike hits at t=60s.
	base := cloud.Controller.ReadyFleet(baseWorkers, fabric.Worker, fabric.Small)
	for _, vm := range base {
		cloud.Engine.Spawn("base", worker(vm))
	}
	const spikeAt = 60 * time.Second
	cloud.Engine.Spawn("spike", func(p *sim.Proc) {
		p.SleepUntil(spikeAt)
		for i := 0; i < spikeTasks; i++ {
			if _, err := cloud.Queue.Add(p, queue, fmt.Sprintf("t%d", i), 512); err != nil {
				panic(err)
			}
		}
	})

	extraRunning := time.Duration(0) // when the extra fleet came online
	switch strategy {
	case "hot-standby":
		for _, vm := range cloud.Controller.ReadyFleet(extraWorkers, fabric.Worker, fabric.Small) {
			cloud.Engine.Spawn("standby", worker(vm))
		}
	case "cold-scale-out":
		cloud.Engine.Spawn("scaler", func(p *sim.Proc) {
			p.SleepUntil(spikeAt) // react to the spike
			// Deploy and start a fresh worker deployment; retry the 2.6%
			// startup failures as a production controller must.
			for {
				d, _, err := mgmt.Deploy(p, fabric.DeploymentSpec{
					Name: "burst", Role: fabric.Worker, Size: fabric.Small,
					Instances: extraWorkers,
				})
				if err != nil {
					panic(err)
				}
				if _, _, _, err := mgmt.Run(p, d); err != nil {
					if errors.Is(err, fabric.ErrStartupFailed) {
						if _, err := mgmt.Delete(p, d); err != nil {
							panic(err)
						}
						continue
					}
					panic(err)
				}
				extraRunning = p.Now()
				for _, vm := range d.VMs() {
					cloud.Engine.Spawn("burst", worker(vm))
				}
				return
			}
		})
	}

	cloud.Engine.RunUntil(6 * time.Hour)
	if drainedAt == 0 {
		drainedAt = cloud.Engine.Now()
	}
	drain = drainedAt - spikeAt

	// Instance-hours billed until the backlog drained.
	instanceHours = float64(baseWorkers) * drainedAt.Hours()
	switch strategy {
	case "hot-standby":
		instanceHours += float64(extraWorkers) * drainedAt.Hours()
	case "cold-scale-out":
		if extraRunning > 0 && drainedAt > extraRunning {
			instanceHours += float64(extraWorkers) * (drainedAt - extraRunning).Hours()
		}
	}
	return drain, instanceHours
}
