// Quickstart: assemble a simulated Windows Azure cloud, deploy a worker
// fleet, and push work through all three storage services — the smallest
// end-to-end tour of the azureobs API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

func main() {
	// A cloud is a deterministic simulation: same seed, same run.
	cfg := azure.Config{Seed: 7}
	cfg.Fabric = fabric.DefaultConfig()
	cloud := azure.NewCloud(cfg)

	// Provision a small worker fleet (bypassing the ~10-minute startup the
	// paper measures; see examples/autoscale for the honest version).
	vms := cloud.Controller.ReadyFleet(4, fabric.Worker, fabric.Small)

	// A producer uploads an input blob and enqueues one task per worker.
	producer := cloud.NewClient(vms[0], 0)
	producer.CreateContainer("inputs")
	queue := producer.CreateQueue("tasks")

	cloud.Engine.Spawn("producer", func(p *sim.Proc) {
		if err := producer.PutBlob(p, "inputs", "dataset", 100_000_000, false); err != nil {
			panic(err)
		}
		fmt.Printf("[%8v] producer: uploaded 100 MB dataset\n", p.Now().Round(time.Millisecond))
		for i := 0; i < 4; i++ {
			if _, err := producer.AddMessage(p, queue, fmt.Sprintf("task-%d", i), 512); err != nil {
				panic(err)
			}
		}
		fmt.Printf("[%8v] producer: enqueued 4 tasks\n", p.Now().Round(time.Millisecond))
	})

	// Each worker receives a task, downloads the dataset (sharing the blob
	// service's bandwidth, exactly as in the paper's Fig. 1), computes, and
	// reports.
	done := 0
	for i, vm := range vms {
		worker := cloud.NewClient(vm, i+1)
		name := fmt.Sprintf("worker-%d", i)
		cloud.Engine.Spawn(name, func(p *sim.Proc) {
			// Wait for a task (poll with backoff, like a real worker role).
			var body string
			for {
				rcv, err := worker.Receive(p, queue, time.Minute)
				if storerr.IsCode(err, storerr.CodeNotFound) {
					p.Sleep(2 * time.Second) // empty queue: back off and repoll
					continue
				}
				if err != nil {
					panic(err)
				}
				body = rcv.Msg.Body
				if err := worker.DeleteMessage(p, queue, rcv.Receipt); err != nil {
					panic(err)
				}
				break
			}
			start := p.Now()
			n, err := worker.GetBlob(p, "inputs", "dataset")
			if err != nil {
				panic(err)
			}
			dl := p.Now() - start
			fmt.Printf("[%8v] %s: got %s, downloaded %d MB in %v (%.1f MB/s)\n",
				p.Now().Round(time.Millisecond), name, body, n/1_000_000,
				dl.Round(time.Millisecond), float64(n)/1e6/dl.Seconds())
			vm.Execute(p, 30*time.Second) // simulate computation
			done++
		})
	}

	cloud.Engine.Run()
	fmt.Printf("\nall %d tasks completed at virtual time %v\n", done, cloud.Engine.Now().Round(time.Millisecond))
}
