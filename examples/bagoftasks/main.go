// Bag-of-tasks: the Section 5.2 reliability lesson, reproduced in miniature.
// A fleet of workers executes tasks on a cloud whose hosts occasionally
// degrade 4-6x. Two task-management strategies run on identical workloads:
//
//   - visibility-only: rely on the queue's automatic message reappearance
//     (ModisAzure's first design). Slow tasks overrun their visibility
//     window, a second worker picks the task up, and the first worker's
//     eventual completion wastes work — or worse, corrupts output (observed
//     here as stale-receipt conflicts).
//
//   - monitor+retry: ModisAzure's final design. A task monitor kills any
//     execution exceeding 4x the task's expected time and explicitly
//     re-queues it; receipts never go stale.
//
//     go run ./examples/bagoftasks
package main

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

const (
	workers    = 16
	tasks      = 400
	meanWork   = 5 * time.Minute
	visibility = 8 * time.Minute // < 4x mean: slow tasks overrun it
)

func main() {
	fmt.Printf("bag of tasks: %d tasks x ~%v on %d workers; degraded hosts run 4-6x slower\n\n",
		tasks, meanWork, workers)
	for _, strategy := range []string{"visibility-only", "monitor+retry"} {
		r := run(strategy)
		fmt.Printf("%-16s makespan %8v  executions %4d  duplicates %3d  stale-receipt conflicts %3d  killed %3d\n",
			strategy, r.makespan.Round(time.Second), r.executions, r.duplicates, r.conflicts, r.killed)
	}
	fmt.Println("\nvisibility-only wastes whole duplicated executions once a slow task")
	fmt.Println("overruns its window; the 4x monitor caps the damage at the kill threshold.")
}

type result struct {
	makespan                      time.Duration
	executions                    int
	duplicates, conflicts, killed int
}

func run(strategy string) result {
	cfg := azure.Config{Seed: 23}
	cfg.Fabric = fabric.DefaultConfig()
	// Aggressive degradation so the hazard shows up in a small run.
	cfg.Fabric.DegradationConfig = &fabric.DegradationConfig{
		MeanInterarrival: 90 * time.Minute,
		FracLo:           0.2, FracHi: 0.4,
		SlowLo: 4, SlowHi: 6,
		DurLo: 30 * time.Minute, DurHi: 2 * time.Hour,
	}
	cloud := azure.NewCloud(cfg)
	queue := cloud.Queue.CreateQueue("tasks")
	rng := simrand.New(99)

	// One fixed workload for both strategies: task i has work[i].
	work := make([]time.Duration, tasks)
	for i := range work {
		work[i] = simrand.Duration(simrand.LogNormalMeanCV(meanWork.Seconds(), 0.4), rng)
	}
	completedBy := make([]int, tasks) // how many executions completed task i
	var res result
	var doneAt time.Duration

	cloud.Engine.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < tasks; i++ {
			if _, err := cloud.Queue.Add(p, queue, fmt.Sprint(i), 512); err != nil {
				panic(err)
			}
		}
	})

	allDone := func() bool {
		for _, c := range completedBy {
			if c == 0 {
				return false
			}
		}
		return true
	}

	vms := cloud.Controller.ReadyFleet(workers, fabric.Worker, fabric.Small)
	for w, vm := range vms {
		vm := vm
		wrng := simrand.New(uint64(1000 + w))
		cloud.Engine.Spawn(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			// Under monitor+retry the monitor is the retry mechanism, so the
			// visibility window is set long (as ModisAzure's final design
			// did); under visibility-only it is deliberately tight.
			vis := visibility
			if strategy == "monitor+retry" {
				vis = 2 * time.Hour
			}
			for !allDone() {
				msg, receipt, ok, err := cloud.Queue.Receive(p, queue, vis)
				if err != nil {
					panic(err)
				}
				if !ok {
					p.Sleep(10 * time.Second)
					continue
				}
				var id int
				fmt.Sscan(msg.Body, &id)
				res.executions++
				if completedBy[id] > 0 {
					res.duplicates++ // task already finished by someone else
				}

				dilated := time.Duration(float64(work[id]) * vm.Host.Slowdown() *
					simrand.LogNormalMeanCV(1, 0.05).Sample(wrng))
				if strategy == "monitor+retry" {
					threshold := 4 * work[id]
					if dilated > threshold {
						// The monitor kills the execution and re-queues
						// explicitly; the receipt is still fresh.
						p.Sleep(threshold)
						res.killed++
						if err := cloud.Queue.Delete(p, queue, receipt); err != nil {
							res.conflicts++
						}
						if _, err := cloud.Queue.Add(p, queue, msg.Body, 512); err != nil {
							panic(err)
						}
						continue
					}
				}
				p.Sleep(dilated)
				// Completion: delete the message. Under visibility-only, a
				// slow execution finds its receipt stale — the hazard.
				if err := cloud.Queue.Delete(p, queue, receipt); err != nil {
					if storerr.IsCode(err, storerr.CodeConflict) || storerr.IsCode(err, storerr.CodeNotFound) {
						res.conflicts++
					} else {
						panic(err)
					}
				}
				completedBy[id]++
				if doneAt == 0 && allDone() {
					doneAt = p.Now()
				}
			}
		})
	}

	cloud.Engine.RunUntil(24 * time.Hour)
	res.makespan = doneAt
	if doneAt == 0 {
		res.makespan = 24 * time.Hour // did not finish within the horizon
	}
	return res
}
