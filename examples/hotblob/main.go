// Hotblob: the Section 6.1 storage recommendations, demonstrated. A fleet
// of workers repeatedly needs the same hot dataset. Four access strategies
// are compared on identical workloads:
//
//   - naive: every worker downloads the blob every time it needs it;
//
//   - cached: workers keep a local LRU copy (client-side caching — expands
//     effective per-client bandwidth);
//
//   - parallel: each download uses 4 ranged connections (sidesteps the
//     ~13 MB/s per-connection cap);
//
//   - replicated: the blob is stored under 4 names and readers spread
//     (expands the ~400 MB/s per-blob server-side ceiling).
//
//     go run ./examples/hotblob
package main

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

const (
	workers   = 48
	rounds    = 4
	blobMB    = 128
	cacheSize = 1_000_000_000
)

func main() {
	fmt.Printf("%d workers × %d rounds over a %d MB hot blob\n\n", workers, rounds, blobMB)
	for _, strategy := range []string{"naive", "cached", "parallel", "replicated"} {
		makespan, downloads := run(strategy)
		fmt.Printf("%-11s all workers done in %8v  (service downloads: %d)\n",
			strategy, makespan.Round(time.Second), downloads)
	}
	fmt.Println("\ncaching removes repeat downloads; parallel ranged gets lift the")
	fmt.Println("per-connection cap; replication lifts the per-blob server ceiling.")
}

func run(strategy string) (time.Duration, uint64) {
	cfg := azure.Config{Seed: 17}
	cfg.Fabric = fabric.DefaultConfig()
	cfg.Fabric.Degradation = false
	cloud := azure.NewCloud(cfg)

	replicas := 1
	if strategy == "replicated" {
		replicas = 4
	}
	for r := 0; r < replicas; r++ {
		cloud.Blob.Seed("data", fmt.Sprintf("hot-%d", r), blobMB*netsim.MB)
	}

	vms := cloud.Controller.ReadyFleet(workers, fabric.Worker, fabric.Small)
	var makespan time.Duration
	for i := 0; i < workers; i++ {
		i := i
		cl := cloud.NewClient(vms[i], i)
		cache := cl.NewBlobCache(cacheSize)
		cloud.Engine.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("hot-%d", i%replicas)
			for round := 0; round < rounds; round++ {
				var err error
				switch strategy {
				case "cached":
					_, _, err = cache.Get(p, "data", name)
				case "parallel":
					_, err = cl.ParallelGet(p, "data", name, 4)
				default:
					_, err = cl.GetBlob(p, "data", name)
				}
				if err != nil {
					panic(err)
				}
				// Use the data for a moment before the next round.
				p.Sleep(20 * time.Second)
			}
			if p.Now() > makespan {
				makespan = p.Now()
			}
		})
	}
	cloud.Engine.Run()
	return makespan, cloud.Blob.Downloads()
}
