// Package azureobs reproduces "Early observations on the performance of
// Windows Azure" (Hill, Li, Mao, Ruiz-Alvarez, Humphrey — HPDC 2010) as a
// deterministic discrete-event simulation of the 2010-era Windows Azure
// platform, together with the paper's complete measurement harness.
//
// The library lives under internal/: the simulation kernel (sim), the
// datacenter and fabric controller (fabric), the flow-level network
// (netsim), the three storage services (storage/...), the client SDK
// (azure), the measurement framework (core), the ModisAzure application
// (modis), and the HTTP facade over the 2009 Azure REST surface (wire).
// Executables live under cmd/, runnable examples under examples/, and
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation.
//
// # Continuation API naming contract
//
// Every layer exposes its blocking operations in two symmetric forms. The
// blocking form takes the calling *sim.Proc and returns results directly.
// The flat form runs on a caller-embedded sim.Actor and follows one naming
// convention throughout the tree:
//
//   - A method suffixed Flat (blobsvc Session.GetFlat, Client.PutBlobFlat,
//     netsim TransferFlat, Signal.WaitFlat) starts the operation on the
//     actor and delivers results through a caller-supplied callback.
//   - A reusable request struct named <Op>Flat (tablesvc GetFlat/WriteFlat/
//     QueryFlat, queuesvc ReqFlat, reqpath CtxFlat) is armed with a Begin*
//     method; the struct embeds all per-request state so steady-state
//     requests allocate nothing.
//
// Both forms obey the actor's arm-or-finish discipline: every flat step
// either arms exactly one continuation (a Sleep, a WaitFlat, a nested
// *Flat call) or finishes the actor, and the kernel panics on a step that
// does neither. Flat and blocking forms consume identical RNG draws and
// sequence numbers stage for stage, so their traces are bit-identical by
// construction — pinned by the per-service equivalence tests and the
// scalebench/domainbench trace gates.
package azureobs
