// Package azureobs reproduces "Early observations on the performance of
// Windows Azure" (Hill, Li, Mao, Ruiz-Alvarez, Humphrey — HPDC 2010) as a
// deterministic discrete-event simulation of the 2010-era Windows Azure
// platform, together with the paper's complete measurement harness.
//
// The library lives under internal/: the simulation kernel (sim), the
// datacenter and fabric controller (fabric), the flow-level network
// (netsim), the three storage services (storage/...), the client SDK
// (azure), the measurement framework (core), and the ModisAzure application
// (modis). Executables live under cmd/, runnable examples under examples/,
// and bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation.
package azureobs
