module azureobs

go 1.22
