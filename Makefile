# Pre-merge gate: `make check` must pass before any merge. It builds
# everything, vets, runs the full test suite under the race detector,
# smoke-runs every benchmark once so the bench harness can never rot, and
# gives each fuzz target a short live-fuzz burst beyond its seed corpus.
.PHONY: check build vet test bench-smoke fuzz-smoke bench netbench storagebench schedbench simbench simbench-gate scalebench scalebench-smoke domainbench domainbench-smoke domainbench-gate geobench geobench-smoke geobench-gate campaignbench campaignbench-smoke campaignbench-gate validate serve wiresmoke

check: build vet test bench-smoke fuzz-smoke scalebench-smoke domainbench-smoke geobench-smoke campaignbench-smoke wiresmoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

# One iteration of every benchmark — correctness of the harness, not timing.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# 30 seconds of live fuzzing per target. The checked-in seed corpora under
# testdata/fuzz/ always run as part of `make test`; this adds fresh inputs.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzFaultConfig$$' -fuzztime 30s ./internal/storage/reqpath
	go test -run '^$$' -fuzz '^FuzzRetryClassify$$' -fuzztime 30s ./internal/azure
	go test -run '^$$' -fuzz '^FuzzGeoRoute$$' -fuzztime 30s ./internal/geo
	go test -race -run '^$$' -fuzz '^FuzzDomainMailOrder$$' -fuzztime 30s ./internal/sim

# Full timed microbenchmarks (internal/netsim flow churn + sweeps).
bench:
	go test -run '^$$' -bench . -benchmem ./internal/netsim

# Refresh the checked-in performance baselines.
netbench:
	go run ./cmd/azbench -run netbench

storagebench:
	go run ./cmd/azbench -run storagebench

schedbench:
	go run ./cmd/azbench -run schedbench

simbench:
	go run ./cmd/azbench -run simbench

# Benchstat-style regression step: rerun the kernel churn suites (min of
# five) and fail on >10% slowdown against the checked-in BENCH_sim.json.
simbench-gate:
	go run ./cmd/azbench -run simbench -gate BENCH_sim.json

# Full client-scale ladder (1k/10k/100k/1M clients) refreshing the checked-in
# BENCH_scale.json; asserts flat/goroutine trace equivalence, the 10x
# per-client footprint gap, and an allocation-free flat event path.
scalebench:
	go run ./cmd/azbench -run scalebench

# Reduced ladder (1k/10k) with the same assertions at smoke thresholds: flat
# vs goroutine traces must match exactly, flat steady state must not
# allocate, and the 10k rung must respect the RSS budget. Writes its
# artifact to /tmp so the checked-in full-scale capture stays untouched.
scalebench-smoke:
	go run ./cmd/azbench -run scalebench -quick -benchout /tmp/BENCH_scale_smoke.json

# Domain-sharded kernel ladder (domains 1/2/4/8 over the fig1 cell, fig2
# sweep, and a 100k-client scale cell) refreshing the checked-in
# BENCH_domains.json; every rung — including the legacy single-engine rows
# and the windowed coordinator row — must produce the identical trace hash.
domainbench:
	go run ./cmd/azbench -run domainbench

# Reduced ladder (domains 1/2, 10k scale cell) with the same cross-domain
# trace-equality assertions. Writes its artifact to /tmp so the checked-in
# full-scale capture stays untouched.
domainbench-smoke:
	go run ./cmd/azbench -run domainbench -quick -benchout /tmp/BENCH_domains_smoke.json

# Regression step in the simbench-gate convention: rerun the fig1 cell at
# domains=1 (min of five) and fail on >10% slowdown — or any trace drift —
# against the checked-in BENCH_domains.json.
domainbench-gate:
	go run ./cmd/azbench -run domainbench -gate BENCH_domains.json

# Multi-region geo ladder (domains 1/2/4 over the four-region fig8geo cell
# and a 1k-client geo-pop world) refreshing the checked-in BENCH_geo.json;
# every rung must produce the identical trace hash.
geobench:
	go run ./cmd/azbench -run geobench

# Reduced ladder (domains 1/2) with the same cross-domain trace-equality
# assertions. Writes its artifact to /tmp so the checked-in full-scale
# capture stays untouched.
geobench-smoke:
	go run ./cmd/azbench -run geobench -quick -benchout /tmp/BENCH_geo_smoke.json

# Regression step in the domainbench-gate convention: rerun the fig8geo cell
# at domains=1 (min of five) and fail on >10% slowdown — or any trace drift —
# against the checked-in BENCH_geo.json.
geobench-gate:
	go run ./cmd/azbench -run geobench -gate BENCH_geo.json

# Domain-sharded ModisAzure campaign ladder (domains 1/2/4/8 over a 21-day
# quick campaign on eight workload shards) refreshing the checked-in
# BENCH_campaign.json; every rung must produce the identical campaign
# fingerprint.
campaignbench:
	go run ./cmd/azbench -run campaignbench

# Reduced ladder (domains 1/2, 7-day campaign) with the same cross-domain
# fingerprint-equality assertions. Writes its artifact to /tmp so the
# checked-in full-scale capture stays untouched.
campaignbench-smoke:
	go run ./cmd/azbench -run campaignbench -quick -benchout /tmp/BENCH_campaign_smoke.json

# Regression step in the domainbench-gate convention: rerun the campaign at
# domains=1 (min of five) and fail on >10% slowdown — or any fingerprint
# drift — against the checked-in BENCH_campaign.json.
campaignbench-gate:
	go run ./cmd/azbench -run campaignbench -gate BENCH_campaign.json

# Serve the simulated cloud over the 2009 Azure REST surface on
# localhost:10000 (freerun clock; see cmd/azserve for paced mode and
# arrival recording).
serve:
	go run ./cmd/azserve

# Boot the real azserve binary and drive a curl smoke session: blob round
# trip, fault-injected error envelope, management LRO, arrival recording.
wiresmoke:
	sh scripts/wiresmoke.sh

# Anchor self-check at validation scale; -workers 4 exercises the parallel
# scheduler path against the same tolerances.
validate:
	go run ./cmd/azvalidate
	go run ./cmd/azvalidate -workers 4
