#!/usr/bin/env sh
# wiresmoke: boot azserve in free-run mode and drive a smoke session with
# curl — container/blob round trip, error envelope under injected faults,
# and a recorded arrival log. Exercises the real binary end to end, which
# `go test ./internal/wire` (in-process httptest) cannot.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/azserve" ./cmd/azserve
"$tmp/azserve" -addr 127.0.0.1:0 -record "$tmp/arrivals.log" >"$tmp/serve.log" 2>&1 &
pid=$!

# The server logs its picked port; wait for the line.
base=""
i=0
while [ $i -lt 100 ]; do
	base="$(sed -n 's/.*listening on \(http:[^ ]*\).*/\1/p' "$tmp/serve.log" | head -1)"
	[ -n "$base" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "wiresmoke: azserve exited early"; cat "$tmp/serve.log"; exit 1; }
	i=$((i + 1))
	sleep 0.1
done
[ -n "$base" ] || { echo "wiresmoke: azserve did not start"; cat "$tmp/serve.log"; exit 1; }

status() { curl -s -o /dev/null -w '%{http_code}' "$@"; }
expect() {
	want="$1"
	shift
	got="$(status "$@")"
	if [ "$got" != "$want" ]; then
		echo "wiresmoke FAIL: $* -> $got, want $want"
		exit 1
	fi
}

curl -fsS "$base/healthz" >/dev/null

expect 201 -X PUT "$base/smoke"
expect 201 -X PUT -H 'x-ms-size: 1048576' "$base/smoke/blob"
expect 200 "$base/smoke/blob"
len="$(curl -s "$base/smoke/blob" | wc -c | tr -d ' ')"
[ "$len" = "1048576" ] || { echo "wiresmoke FAIL: blob GET returned $len bytes, want 1048576"; exit 1; }
expect 404 "$base/smoke/missing"

# Queue round trip.
expect 201 -X PUT "$base/queue/jobs"
expect 201 -X POST "$base/queue/jobs/messages?size=256"
expect 200 "$base/queue/jobs/messages?visibilitytimeout=60"

# Injected faults surface as the classic envelope.
expect 204 -X POST "$base/control/faults?service=blob&busy=1"
expect 503 "$base/smoke/blob"
body="$(curl -s "$base/smoke/blob")"
case "$body" in
*"<Code>ServerBusy</Code>"*) ;;
*) echo "wiresmoke FAIL: ServerBusy envelope missing, got: $body"; exit 1 ;;
esac
expect 204 -X POST "$base/control/faults?service=blob&reset=1"
expect 200 "$base/smoke/blob"

# Management LRO: 202 now, Succeeded on poll (free-run drains it).
op="$(curl -s -D - -o /dev/null -X POST "$base/management/deployments?name=smoke&role=worker&size=small&instances=1" | tr -d '\r' | sed -n 's/^Location: //p')"
[ -n "$op" ] || { echo "wiresmoke FAIL: deploy returned no Location header"; exit 1; }
case "$(curl -s "$base$op")" in
*"<Status>Succeeded</Status>"*) ;;
*) echo "wiresmoke FAIL: operation $op did not succeed"; exit 1 ;;
esac

# Clean shutdown flushes the arrival log.
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
grep -q "GET /smoke/blob" "$tmp/arrivals.log" || { echo "wiresmoke FAIL: arrival log missing entries"; cat "$tmp/arrivals.log"; exit 1; }

echo "wiresmoke OK"
