package main

import (
	"testing"

	"azureobs/internal/sim"
)

// Smoke tests: drive the binary's run() in-process. Full-suite validation is
// CI's job (make validate); these cover the selection, policy and exit-code
// paths that only exist in this command.
func TestValidateSelectedExperiments(t *testing.T) {
	sim.SetDefaultInvariants(true)
	if code := run([]string{"-run", "queuedepth,replication", "-workers", "2"}); code != 0 {
		t.Fatalf("azvalidate -run queuedepth,replication exited %d", code)
	}
}

func TestValidateUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "nope"}); code != 2 {
		t.Fatalf("azvalidate -run nope exited %d, want 2", code)
	}
}
