// Command azvalidate is the reproduction self-check: it runs every
// experiment at a reduced-but-meaningful scale, compares the anchors against
// the paper, and exits non-zero if any drifts beyond its tolerance. It is
// the command a CI pipeline runs to catch calibration regressions.
//
// Usage:
//
//	azvalidate            # ~30 s; exit 0 iff all anchors hold
//	azvalidate -v         # also print every anchor
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/modis"
)

// check is one validated anchor with its tolerance (relative unless abs).
type check struct {
	anchor core.Anchor
	relTol float64
	absTol float64 // used when > 0 (for near-zero paper values)
}

func (c check) ok() bool {
	if c.absTol > 0 {
		d := c.anchor.Measured - c.anchor.Paper
		if d < 0 {
			d = -d
		}
		return d <= c.absTol
	}
	return c.anchor.RelErr() <= c.relTol
}

func main() {
	verbose := flag.Bool("v", false, "print every anchor")
	seed := flag.Uint64("seed", 42, "root random seed")
	flag.Parse()

	var checks []check
	add := func(anchors []core.Anchor, relTol float64) {
		for _, a := range anchors {
			checks = append(checks, check{anchor: a, relTol: relTol})
		}
	}

	// Fig 1 at reduced blob size: exact calibration, tight tolerance.
	fig1 := core.RunFig1(core.Fig1Config{Seed: *seed, Clients: []int{1, 32, 64, 128, 192}, BlobMB: 64, Runs: 1})
	add(fig1.Anchors(), 0.10)

	// Fig 2 at reduced op counts: peak locations must be exact, rates loose.
	fig2 := core.RunFig2(core.Fig2Config{Seed: *seed, Clients: core.DefaultClientCounts(),
		EntitySize: 4096, Inserts: 60, Queries: 60, Updates: 30})
	add(fig2.Anchors(), 0.15)

	// Fig 3.
	fig3 := core.RunFig3(core.Fig3Config{Seed: *seed, Clients: core.DefaultClientCounts(), MsgSize: 512, OpsEach: 40})
	add(fig3.Anchors(), 0.15)

	// Table 1 at 120 runs: means within 20% (small-sample cells are noisy;
	// the startup-failure-rate anchor gets an absolute band instead).
	t1 := core.RunTable1(core.Table1Config{Seed: *seed, Runs: 120})
	for _, a := range t1.Anchors() {
		if a.Name == "startup failure rate" {
			checks = append(checks, check{anchor: a, absTol: 2.5})
			continue
		}
		checks = append(checks, check{anchor: a, relTol: 0.25})
	}

	// Figs 4-5. The bandwidth-tail anchor is a small binomial count at this
	// sample size; give it an absolute band.
	tcp := core.RunTCP(core.TCPConfig{Seed: *seed, LatencySamples: 5000, BandwidthPairs: 100, TransfersPer: 3})
	for _, a := range tcp.Anchors() {
		if a.Name == "P(bandwidth ≤ 30 MB/s)" {
			checks = append(checks, check{anchor: a, absTol: 7})
			continue
		}
		checks = append(checks, check{anchor: a, relTol: 0.15})
	}

	// Table 2 / Fig 7 at ~2% campaign scale: shares within tolerance; the
	// rare-event classes get absolute bands.
	st := modis.NewCampaign(modis.Config{Seed: *seed, Days: 21, Workers: 60,
		MeanRequestGap: 100 * time.Minute, MeanTasksPerRequest: 140}).Run()
	for _, a := range st.Anchors() {
		switch {
		case a.Name == "Fig 7 peak daily timeout share":
			// Few episodes fit a 21-day window; just require a sane range.
			checks = append(checks, check{anchor: a, absTol: 16})
		case a.Paper >= 4: // the big shares
			checks = append(checks, check{anchor: a, relTol: 0.10})
		default: // rare classes: absolute bands
			checks = append(checks, check{anchor: a, absTol: a.Paper + 1})
		}
	}

	// Property-filter ablation.
	pf := core.RunPropFilter(core.PropFilterConfig{Seed: *seed, Entities: 220000, Clients: []int{1, 32}})
	for _, a := range pf.Anchors() {
		checks = append(checks, check{anchor: a, absTol: 30})
	}

	failed := 0
	for _, c := range checks {
		if !c.ok() {
			failed++
			fmt.Printf("FAIL  %s\n", c.anchor)
		} else if *verbose {
			fmt.Printf("ok    %s\n", c.anchor)
		}
	}
	fmt.Printf("\nazvalidate: %d/%d anchors within tolerance\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
}
