// Command azvalidate is the reproduction self-check: it runs every
// registered experiment at the calibrated validation scale, compares the
// anchors against the paper, and exits non-zero if any drifts beyond its
// tolerance. It is the command a CI pipeline runs to catch calibration
// regressions.
//
// Usage:
//
//	azvalidate            # exit 0 iff all anchors hold
//	azvalidate -v         # also print every anchor
//	azvalidate -workers 4 # shard experiment cells over 4 scheduler workers
//	azvalidate -run fig1,tcp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/modis"
	_ "azureobs/internal/wire"
)

// check is one validated anchor with its tolerance (relative unless abs).
type check struct {
	exp    string
	anchor core.Anchor
	relTol float64
	absTol float64 // used when > 0 (for near-zero or qualitative paper values)
}

func (c check) ok() bool {
	if c.absTol > 0 {
		d := c.anchor.Measured - c.anchor.Paper
		if d < 0 {
			d = -d
		}
		return d <= c.absTol
	}
	return c.anchor.RelErr() <= c.relTol
}

// policy assigns each anchor its tolerance. Calibrated figure anchors get
// tight relative bands; small-sample and rare-event anchors get absolute
// bands; the qualitative ablation anchors (nominal paper values rather than
// published measurements) get bands wide enough to test the claim's shape,
// not a digit.
func policy(exp string, a core.Anchor) check {
	c := check{exp: exp, anchor: a, relTol: 0.15}
	switch exp {
	case "fig1":
		c.relTol = 0.10
	case "table1":
		// Small-sample cells are noisy; the startup-failure-rate anchor is a
		// percentage near 3 and gets an absolute band.
		if a.Name == "startup failure rate" {
			c.relTol, c.absTol = 0, 2.5
		} else {
			c.relTol = 0.25
		}
	case "tcp":
		// The bandwidth tail is a small binomial count at validation scale.
		if a.Name == "P(bandwidth ≤ 30 MB/s)" {
			c.relTol, c.absTol = 0, 7
		}
	case "propfilter":
		c.relTol, c.absTol = 0, 30
	case "queuedepth":
		// Invariance claim: deep/shallow rate ratio stays ~1.
		c.relTol = 0.10
	case "replication":
		// Nominal k-fold aggregate claim, not a published measurement.
		c.relTol = 0.20
	case "sqlcompare":
		// Qualitative claim: SQL throttles connections at 128 clients. Any
		// nonzero throttle count up to twice the nominal value passes.
		c.relTol, c.absTol = 0, 63
	case "startup":
		// Section 4.1 gives a 60-100 s per-instance band around 80.
		c.relTol = 0.25
	case "fig2sizes", "fig3sizes":
		// "Similar shapes" across sizes: worst deviation is a percentage
		// with paper value 0, so it needs an absolute band.
		c.relTol, c.absTol = 0, 35
	case "fig8geo":
		// Nominal geo-model design points (the paper stops at one
		// datacenter), so the bands test the claim's shape. The zero- and
		// small-count anchors need absolute bands: RelErr auto-passes on a
		// paper value of 0, and the lost-write/RPO anchors are rare-event
		// quantities of a single kill.
		c.relTol = 0.25
		switch a.Name {
		case "stale read fraction (read-your-writes)":
			// The read-your-writes guarantee itself: exactly zero stale reads.
			c.relTol, c.absTol = 0, 0.001
		case "region-kill RPO exposure":
			c.relTol, c.absTol = 0, 0.2
		case "acked writes lost at region kill":
			c.relTol, c.absTol = 0, 2
		case "failover routing flaps (kill+repair)":
			// The flap-discipline regression: kill + repair, nothing else.
			c.relTol, c.absTol = 0, 0.5
		}
	case "chaosreport":
		switch a.Name {
		case "invariant violations (all scenarios)":
			// The headline: zero violations. RelErr auto-passes on a paper
			// value of 0, so this one must be an absolute band.
			c.relTol, c.absTol = 0, 0.5
		case "host crashes injected":
			// A Poisson count with mean ~19 at validation scale; 3σ is ~70%.
			c.relTol = 0.75
		case "host crash mean time to repair":
			c.relTol = 0.5
		case "throughput under full chaos vs baseline":
			// The survival claim: retries + replacement VMs keep most of the
			// fault-free throughput. Allow the chaos tax.
			c.relTol = 0.35
		}
	}
	return c
}

func main() { os.Exit(run(os.Args[1:])) }

// run is the testable entry point: cmd smoke tests drive it in-process.
func run(args []string) int {
	fs := flag.NewFlagSet("azvalidate", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print every anchor")
	seed := fs.Uint64("seed", 42, "root random seed")
	workers := fs.Int("workers", 1, "scheduler workers for independent experiment cells")
	runNames := fs.String("run", "", "comma-separated experiment names (default: all registered + modis)")
	fs.Parse(args)

	names := core.Names()
	withModis := true
	if *runNames != "" {
		names = nil
		withModis = false
		for _, n := range strings.Split(*runNames, ",") {
			n = strings.TrimSpace(n)
			if n == "modis" {
				withModis = true
				continue
			}
			if _, ok := core.Lookup(n); !ok {
				fmt.Fprintf(os.Stderr, "azvalidate: unknown experiment %q (have: %s, modis)\n",
					n, strings.Join(core.Names(), ", "))
				return 2
			}
			names = append(names, n)
		}
	}

	var checks []check
	proto := core.Proto{Seed: *seed, Workers: *workers, Scale: core.ValidateScale}
	for _, name := range names {
		e, _ := core.Lookup(name)
		for _, a := range e.Run(proto).Anchors() {
			checks = append(checks, policy(name, a))
		}
	}

	if withModis {
		// Table 2 / Fig 7 at ~2% campaign scale: shares within tolerance; the
		// rare-event classes get absolute bands.
		st := modis.NewCampaign(modis.Config{Seed: *seed, Days: 21, Workers: 60,
			MeanRequestGap: 100 * time.Minute, MeanTasksPerRequest: 140}).Run()
		for _, a := range st.Anchors() {
			c := check{exp: "modis", anchor: a}
			switch {
			case a.Name == "Fig 7 peak daily timeout share":
				// Few episodes fit a 21-day window; just require a sane range.
				c.absTol = 16
			case a.Paper >= 4: // the big shares
				c.relTol = 0.10
			default: // rare classes: absolute bands
				c.absTol = a.Paper + 1
			}
			checks = append(checks, c)
		}
	}

	failed := 0
	for _, c := range checks {
		if !c.ok() {
			failed++
			fmt.Printf("FAIL  [%s] %s\n", c.exp, c.anchor)
		} else if *verbose {
			fmt.Printf("ok    [%s] %s\n", c.exp, c.anchor)
		}
	}
	fmt.Printf("\nazvalidate: %d/%d anchors within tolerance\n", len(checks)-failed, len(checks))
	if failed > 0 {
		return 1
	}
	return 0
}
