package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// The netbench artifact measures the simulator's hot path — flow-churn cost
// in internal/netsim and end-to-end paper-figure sweep wall-time — and
// writes BENCH_netsim.json so performance can be tracked across PRs.
//
// seedChurnNs / seedSweepMS are the same measurements captured on the seed
// solver (from-scratch map-based reallocation, no event pooling) with this
// exact harness on the reference machine; they ride along in the JSON so
// every later capture carries its own point of comparison.
var seedChurnNs = map[int]float64{
	1:   313.4,
	32:  22633.4,
	192: 134335.3,
}

var seedSweepMS = map[string]float64{
	"fig1": 38.2,
	"fig2": 1172.2,
}

type churnPoint struct {
	Flows     int     `json:"flows"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	SeedNsOp  float64 `json:"seed_ns_per_op,omitempty"`
	Speedup   float64 `json:"speedup_vs_seed,omitempty"`
}

type sweepPoint struct {
	Name       string  `json:"name"`
	Config     string  `json:"config"`
	WallMS     float64 `json:"wall_ms"`
	SeedWallMS float64 `json:"seed_wall_ms,omitempty"`
	Speedup    float64 `json:"speedup_vs_seed,omitempty"`
}

type netBenchReport struct {
	Suite      string       `json:"suite"`
	CapturedAt string       `json:"captured_at"`
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Note       string       `json:"note"`
	FlowChurn  []churnPoint `json:"flow_churn"`
	Sweeps     []sweepPoint `json:"sweeps"`
}

// netbenchTopology mirrors the paper's Section 3.1 blob-download shape (and
// internal/netsim's benchmark suite): one shared trunk with the calibrated
// concurrency-dependent capacity profile plus a private NIC per client.
func netbenchTopology(fab *netsim.Fabric, clients int) (trunk *netsim.Link, nics []*netsim.Link) {
	trunk = fab.NewLink("trunk", 400*netsim.MBps)
	trunk.SetCapacityFn(netsim.CapacityProfile(
		netsim.ProfilePoint{N: 1, Capacity: 50 * netsim.MBps},
		netsim.ProfilePoint{N: 8, Capacity: 110 * netsim.MBps},
		netsim.ProfilePoint{N: 32, Capacity: 208 * netsim.MBps},
		netsim.ProfilePoint{N: 128, Capacity: 393 * netsim.MBps},
		netsim.ProfilePoint{N: 192, Capacity: 388 * netsim.MBps},
	))
	nics = make([]*netsim.Link, clients)
	for i := range nics {
		nics[i] = fab.NewLink("nic", 13*netsim.MBps)
	}
	return trunk, nics
}

// churnNsPerOp times one arrival+departure cycle against a standing
// population of flows-1 transfers. Each cycle is two reallocations.
func churnNsPerOp(flows, iters int) float64 {
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng)
	trunk, nics := netbenchTopology(fab, flows)
	fls := make([]*netsim.Flow, flows)
	for i := range fls {
		fls[i] = fab.StartFlow(1000*netsim.GB, trunk, nics[i])
	}
	churn := func(n int) {
		for i := 0; i < n; i++ {
			slot := i % flows
			fab.Abandon(fls[slot])
			fls[slot] = fab.StartFlow(1000*netsim.GB, trunk, nics[slot])
		}
	}
	churn(iters/10 + 1) // warmup
	start := time.Now()
	churn(iters)
	return float64(time.Since(start)) / float64(iters)
}

func runNetBench(seed uint64, quick bool, out string) {
	rep := netBenchReport{
		Suite:      "netsim",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Note: "flow-churn: ns per arrival+departure cycle against a standing population " +
			"on the fig1 trunk+NIC topology; sweeps: wall time of deterministic paper-figure " +
			"runs. seed_* fields were captured with this harness on the pre-incremental solver.",
	}

	iters := map[int]int{1: 200000, 32: 20000, 192: 5000}
	if quick {
		iters = map[int]int{1: 20000, 32: 2000, 192: 500}
	}
	for _, flows := range []int{1, 32, 192} {
		ns := churnNsPerOp(flows, iters[flows])
		pt := churnPoint{
			Flows:     flows,
			Iters:     iters[flows],
			NsPerOp:   ns,
			OpsPerSec: 1e9 / ns,
		}
		if base := seedChurnNs[flows]; base > 0 {
			pt.SeedNsOp = base
			pt.Speedup = base / ns
		}
		rep.FlowChurn = append(rep.FlowChurn, pt)
		fmt.Printf("netbench: flow churn %3d flows: %10.0f ns/op\n", flows, ns)
	}

	sweeps := []struct {
		name, config string
		run          func()
	}{
		{
			"fig1", "seed=42 clients=1,8,32,64,128,192 blob=32MB runs=1",
			func() {
				core.RunFig1(core.Fig1Config{
					Proto:  core.Proto{Seed: seed, Clients: []int{1, 8, 32, 64, 128, 192}, Runs: 1},
					BlobMB: 32,
				})
			},
		},
		{
			"fig2", "seed=42 clients=1,8,64 entity=4096 ops=40/40/20",
			func() {
				core.RunFig2(core.Fig2Config{
					Proto:      core.Proto{Seed: seed, Clients: []int{1, 8, 64}},
					EntitySize: 4096,
					Inserts:    40, Queries: 40, Updates: 20})
			},
		},
	}
	for _, s := range sweeps {
		s.run() // warmup
		start := time.Now()
		s.run()
		ms := float64(time.Since(start)) / 1e6
		pt := sweepPoint{Name: s.name, Config: s.config, WallMS: ms}
		if base := seedSweepMS[s.name]; base > 0 {
			pt.SeedWallMS = base
			pt.Speedup = base / ms
		}
		rep.Sweeps = append(rep.Sweeps, pt)
		fmt.Printf("netbench: %s sweep: %.1f ms\n", s.name, ms)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
