// Command azbench reproduces the measurement artifacts of "Early
// observations on the performance of Windows Azure" (Hill et al., HPDC'10)
// against the simulated cloud: Fig. 1 (blob bandwidth), Fig. 2 (table ops),
// Fig. 3 (queue ops), Table 1 (VM lifecycle), Figs. 4-5 (inter-VM TCP), the
// Section 6.1 property-filter ablation, and the queue-depth invariance
// check.
//
// Usage:
//
//	azbench -run all            # everything at paper scale
//	azbench -run fig1 -quick    # one artifact at reduced scale
//	azbench -run fig2 -entity 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"azureobs/internal/core"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/report"
	"azureobs/internal/svgplot"
)

func main() {
	var (
		run    = flag.String("run", "all", "artifact: all|fig1|fig2|fig3|table1|tcp|propfilter|queuedepth|replication|fig2sizes|fig3sizes|netbench|storagebench")
		seed   = flag.Uint64("seed", 42, "root random seed")
		quick  = flag.Bool("quick", false, "reduced scale for fast runs")
		entity = flag.Int("entity", 4096, "fig2 entity size in bytes (1024|4096|16384|65536)")
		msg    = flag.Int("msg", 512, "fig3 message size in bytes (512|1024|4096|8192)")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		svgDir = flag.String("svg", "", "also write SVG figures into this directory")
		bench  = flag.String("benchout", "", "output path for the netbench/storagebench artifact (default BENCH_<suite>.json)")
	)
	flag.Parse()
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	figures = *svgDir

	which := strings.ToLower(*run)
	ran := false
	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	all := which == "all"
	if all || which == "fig1" {
		runFig1(*seed, *quick, emit)
		ran = true
	}
	if all || which == "fig2" {
		runFig2(*seed, *quick, *entity, emit)
		ran = true
	}
	if all || which == "fig3" {
		runFig3(*seed, *quick, *msg, emit)
		ran = true
	}
	if all || which == "table1" {
		runTable1(*seed, *quick, emit)
		ran = true
	}
	if all || which == "tcp" || which == "fig4" || which == "fig5" {
		runTCP(*seed, *quick, emit)
		ran = true
	}
	if all || which == "propfilter" {
		runPropFilter(*seed, *quick, emit)
		ran = true
	}
	if all || which == "queuedepth" {
		runQueueDepth(*seed, *quick, emit)
		ran = true
	}
	if all || which == "replication" {
		runReplication(*seed, *quick, emit)
		ran = true
	}
	if all || which == "sqlcompare" {
		runSQLCompare(*seed, *quick, emit)
		ran = true
	}
	if all || which == "startup" {
		runStartup(*seed, *quick, emit)
		ran = true
	}
	if which == "netbench" {
		out := *bench
		if out == "" {
			out = "BENCH_netsim.json"
		}
		runNetBench(*seed, *quick, out)
		ran = true
	}
	if which == "storagebench" {
		out := *bench
		if out == "" {
			out = "BENCH_storage.json"
		}
		runStorageBench(*seed, *quick, out)
		ran = true
	}
	if which == "fig2sizes" {
		runFig2Sizes(*seed, *quick, emit)
		ran = true
	}
	if which == "fig3sizes" {
		runFig3Sizes(*seed, *quick, emit)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

// figures is the SVG output directory ("" = off).
var figures string

// writeFigure renders a plot into the figures directory.
func writeFigure(name string, p *svgplot.Plot) {
	if figures == "" {
		return
	}
	f, err := os.Create(filepath.Join(figures, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := p.Render(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(figures, name))
}

func printAnchors(title string, anchors []core.Anchor) {
	fmt.Printf("%s — paper vs measured:\n", title)
	for _, a := range anchors {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println()
}

func runFig1(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultFig1Config()
	cfg.Seed = seed
	if quick {
		cfg.Clients = []int{1, 8, 32, 128}
		cfg.BlobMB = 128
		cfg.Runs = 1
	}
	r := core.RunFig1(cfg)
	t := report.NewTable("Fig 1 — average per-client blob bandwidth vs concurrent clients",
		"clients", "down MB/s", "down agg MB/s", "up MB/s", "up agg MB/s")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.2f", p.DownMBps), fmt.Sprintf("%.1f", p.DownAggMBps),
			fmt.Sprintf("%.2f", p.UpMBps), fmt.Sprintf("%.1f", p.UpAggMBps))
	}
	emit(t)
	printAnchors("Fig 1", r.Anchors())

	xs := make([]float64, len(r.Points))
	down := make([]float64, len(r.Points))
	up := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i], down[i], up[i] = float64(p.Clients), p.DownMBps, p.UpMBps
	}
	plot := svgplot.New("Fig 1 — average per-client blob bandwidth", "concurrent clients", "MB/s")
	plot.Log2X = true
	plot.Add("download", xs, down)
	if up[0] > 0 {
		plot.Add("upload", xs, up)
	}
	writeFigure("fig1.svg", plot)
}

func runFig2(seed uint64, quick bool, entity int, emit func(*report.Table)) {
	cfg := core.DefaultFig2Config()
	cfg.Seed = seed
	cfg.EntitySize = entity
	if quick {
		cfg.Clients = []int{1, 8, 64, 128}
		cfg.Inserts, cfg.Queries, cfg.Updates = 60, 60, 30
	}
	r := core.RunFig2(cfg)
	t := report.NewTable(
		fmt.Sprintf("Fig 2 — average per-client table ops/s vs concurrent clients (entity %d B)", entity),
		"clients", "insert", "query", "update", "delete", "insert-finishers")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.InsertOps), fmt.Sprintf("%.1f", p.QueryOps),
			fmt.Sprintf("%.1f", p.UpdateOps), fmt.Sprintf("%.1f", p.DeleteOps),
			fmt.Sprintf("%d/%d", p.InsertSurvivors, p.Clients))
	}
	emit(t)
	printAnchors("Fig 2", r.Anchors())

	xs := make([]float64, len(r.Points))
	curves := map[string][]float64{"insert": nil, "query": nil, "update": nil, "delete": nil}
	for i, p := range r.Points {
		xs[i] = float64(p.Clients)
		curves["insert"] = append(curves["insert"], p.InsertOps)
		curves["query"] = append(curves["query"], p.QueryOps)
		curves["update"] = append(curves["update"], p.UpdateOps)
		curves["delete"] = append(curves["delete"], p.DeleteOps)
	}
	plot := svgplot.New(fmt.Sprintf("Fig 2 — per-client table ops/s (%d B entities)", entity),
		"concurrent clients", "ops/s")
	plot.Log2X = true
	for _, name := range []string{"insert", "query", "update", "delete"} {
		plot.Add(name, xs, curves[name])
	}
	writeFigure("fig2.svg", plot)
}

func runFig3(seed uint64, quick bool, msg int, emit func(*report.Table)) {
	cfg := core.DefaultFig3Config()
	cfg.Seed = seed
	cfg.MsgSize = msg
	if quick {
		cfg.Clients = []int{1, 16, 64, 128, 192}
		cfg.OpsEach = 40
	}
	r := core.RunFig3(cfg)
	t := report.NewTable(
		fmt.Sprintf("Fig 3 — average per-client queue ops/s vs concurrent clients (message %d B)", msg),
		"clients", "add", "peek", "receive", "add agg", "peek agg", "recv agg")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.AddOps), fmt.Sprintf("%.1f", p.PeekOps),
			fmt.Sprintf("%.1f", p.ReceiveOps),
			fmt.Sprintf("%.0f", p.AggAdd()), fmt.Sprintf("%.0f", p.AggPeek()),
			fmt.Sprintf("%.0f", p.AggReceive()))
	}
	emit(t)
	printAnchors("Fig 3", r.Anchors())

	xs := make([]float64, len(r.Points))
	add := make([]float64, len(r.Points))
	peek := make([]float64, len(r.Points))
	recv := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i], add[i], peek[i], recv[i] = float64(p.Clients), p.AddOps, p.PeekOps, p.ReceiveOps
	}
	plot := svgplot.New(fmt.Sprintf("Fig 3 — per-client queue ops/s (%d B messages)", msg),
		"concurrent clients", "ops/s")
	plot.Log2X = true
	plot.Add("add", xs, add)
	plot.Add("peek", xs, peek)
	plot.Add("receive", xs, recv)
	writeFigure("fig3.svg", plot)
}

func runTable1(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultTable1Config()
	cfg.Seed = seed
	if quick {
		cfg.Runs = 80
	}
	r := core.RunTable1(cfg)
	t := report.NewTable("Table 1 — worker/web role VM request time (seconds)",
		"role", "size", "stat", "create", "run", "add", "suspend", "delete")
	for _, role := range []fabric.Role{fabric.Worker, fabric.Web} {
		for _, size := range []fabric.Size{fabric.Small, fabric.Medium, fabric.Large, fabric.ExtraLarge} {
			cell := func(phase string, f func(*metrics.Summary) float64) string {
				s := r.Cell(role, size, phase)
				if s.N() == 0 {
					return "N/A"
				}
				return fmt.Sprintf("%.0f", f(s))
			}
			mean := func(s *metrics.Summary) float64 { return s.Mean() }
			std := func(s *metrics.Summary) float64 { return s.Std() }
			t.AddRow(role.String(), size.String(), "AVG",
				cell("Create", mean), cell("Run", mean), cell("Add", mean),
				cell("Suspend", mean), cell("Delete", mean))
			t.AddRow("", "", "STD",
				cell("Create", std), cell("Run", std), cell("Add", std),
				cell("Suspend", std), cell("Delete", std))
		}
	}
	emit(t)
	pct := r.Percentiles()
	fmt.Printf("derived: %d successful runs, %.1f%% startup failures\n",
		r.SuccessRuns, r.FailureRate()*100)
	fmt.Printf("worker small first instance: %.0f%% ≤ 9 min, %.0f%% ≤ 10 min\n",
		pct.WorkerWithin9Min*100, pct.WorkerWithin10Min*100)
	fmt.Printf("web small first instance:    %.0f%% ≤ 10 min, %.0f%% ≤ 11 min\n\n",
		pct.WebWithin10Min*100, pct.WebWithin11Min*100)
	printAnchors("Table 1", r.Anchors())
}

func runTCP(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultTCPConfig()
	cfg.Seed = seed
	if quick {
		cfg.LatencySamples = 2000
		cfg.BandwidthPairs = 50
		cfg.TransfersPer = 2
	}
	r := core.RunTCP(cfg)
	report.CDFPlot(os.Stdout, "Fig 4 — cumulative TCP latency between small VMs", "ms",
		r.LatencyMS, 60, 12)
	fmt.Println()
	report.CDFPlot(os.Stdout, "Fig 5 — cumulative TCP bandwidth, 2 GB transfers", "MB/s",
		r.BandwidthMBps, 60, 12)
	fmt.Println()
	printAnchors("Figs 4-5", r.Anchors())
	_ = emit

	writeFigure("fig4.svg", cdfFigure("Fig 4 — cumulative TCP latency", "latency (ms)", r.LatencyMS))
	writeFigure("fig5.svg", cdfFigure("Fig 5 — cumulative TCP bandwidth (2 GB transfers)", "bandwidth (MB/s)", r.BandwidthMBps))
}

// cdfFigure builds a cumulative-probability curve from a sample.
func cdfFigure(title, xlabel string, s *metrics.Sample) *svgplot.Plot {
	pts := s.CDF(100)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i], ys[i] = pt.Value, pt.P
	}
	plot := svgplot.New(title, xlabel, "cumulative probability")
	plot.Add("measured CDF", xs, ys)
	return plot
}

func runPropFilter(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultPropFilterConfig()
	cfg.Seed = seed
	if quick {
		cfg.Entities = 110000
	}
	r := core.RunPropFilter(cfg)
	t := report.NewTable(
		fmt.Sprintf("Section 6.1 — property-filter queries on a %d-entity partition", r.Entities),
		"clients", "queries", "timeouts", "mean latency (s)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients), fmt.Sprint(p.Queries), fmt.Sprint(p.Timeouts),
			fmt.Sprintf("%.1f", p.MeanLatency))
	}
	emit(t)
	printAnchors("Property-filter ablation", r.Anchors())
}

func runReplication(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultReplicationConfig()
	cfg.Seed = seed
	if quick {
		cfg.Clients, cfg.BlobMB = 64, 64
	}
	r := core.RunReplication(cfg)
	t := report.NewTable(
		fmt.Sprintf("Section 6.1 — blob replication ablation (%d concurrent readers)", r.Clients),
		"replicas", "readers/blob", "per-client MB/s", "aggregate MB/s", "speedup")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Replicas), fmt.Sprint(p.PerBlobClients),
			fmt.Sprintf("%.2f", p.PerClientMBps), fmt.Sprintf("%.0f", p.AggregateMBps),
			fmt.Sprintf("%.2fx", p.SpeedupVsOne))
	}
	emit(t)
}

func runFig2Sizes(seed uint64, quick bool, emit func(*report.Table)) {
	base := core.DefaultFig2Config()
	base.Seed = seed
	if quick {
		base.Clients = []int{1, 16, 64}
		base.Inserts, base.Queries, base.Updates = 50, 50, 25
	}
	sw := core.RunFig2Sizes(base, core.PaperEntitySizes())
	t := report.NewTable("Section 3.2 — table insert ops/s across entity sizes",
		"clients", "1 kB", "4 kB", "16 kB", "64 kB")
	for i, pt := range sw.Results[0].Points {
		row := []string{fmt.Sprint(pt.Clients)}
		for _, r := range sw.Results {
			row = append(row, fmt.Sprintf("%.1f", r.Points[i].InsertOps))
		}
		t.AddRow(row...)
	}
	emit(t)
}

func runFig3Sizes(seed uint64, quick bool, emit func(*report.Table)) {
	base := core.DefaultFig3Config()
	base.Seed = seed
	if quick {
		base.Clients = []int{1, 16, 64}
		base.OpsEach = 40
	}
	sw := core.RunFig3Sizes(base, core.PaperMessageSizes())
	t := report.NewTable("Section 3.3 — queue add ops/s across message sizes",
		"clients", "512 B", "1 kB", "4 kB", "8 kB")
	for i, pt := range sw.Results[0].Points {
		row := []string{fmt.Sprint(pt.Clients)}
		for _, r := range sw.Results {
			row = append(row, fmt.Sprintf("%.1f", r.Points[i].AddOps))
		}
		t.AddRow(row...)
	}
	emit(t)
}

func runStartup(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultStartupScalingConfig()
	cfg.Seed = seed
	if quick {
		cfg.Runs = 8
	}
	r := core.RunStartupScaling(cfg)
	t := report.NewTable(
		"Section 4.1 extra — deployment readiness vs size (small workers, seconds)",
		"instances", "first ready avg", "all ready avg", "all ready std")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Instances),
			fmt.Sprintf("%.0f", p.FirstReady.Mean()),
			fmt.Sprintf("%.0f", p.AllReady.Mean()),
			fmt.Sprintf("%.0f", p.AllReady.Std()))
	}
	emit(t)
	fmt.Printf("marginal startup cost: %.1f s per added instance (the 60-100 s serial readiness lag)\n\n",
		r.MarginalSecondsPerInstance())
}

func runSQLCompare(seed uint64, quick bool, emit func(*report.Table)) {
	cfg := core.DefaultSQLCompareConfig()
	cfg.Seed = seed
	if quick {
		cfg.Clients = []int{1, 32, 128}
		cfg.OpsEach = 50
	}
	r := core.RunSQLCompare(cfg)
	t := report.NewTable(
		"HPDC'10 extra — SQL Azure vs table storage, per-client ops/s (1 kB rows)",
		"clients", "sql insert", "sql select", "tbl insert", "tbl query", "sql throttled")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.SQLInsertOps), fmt.Sprintf("%.1f", p.SQLSelectOps),
			fmt.Sprintf("%.1f", p.TableInsertOps), fmt.Sprintf("%.1f", p.TableQueryOps),
			fmt.Sprintf("%d/%d", p.ThrottledOpens, p.Clients))
	}
	emit(t)
}

func runQueueDepth(seed uint64, quick bool, emit func(*report.Table)) {
	small, large := 200000, 2000000
	if quick {
		small, large = 20000, 200000
	}
	r := core.RunQueueDepth(seed, small, large)
	t := report.NewTable("Section 3.3 — queue depth invariance (per-client Receive ops/s @8 clients)",
		"depth", "ops/s")
	t.AddRow(fmt.Sprint(r.SmallDepth), fmt.Sprintf("%.1f", r.SmallRate))
	t.AddRow(fmt.Sprint(r.LargeDepth), fmt.Sprintf("%.1f", r.LargeRate))
	emit(t)
}
