// Command azbench reproduces the measurement artifacts of "Early
// observations on the performance of Windows Azure" (Hill et al., HPDC'10)
// against the simulated cloud: Fig. 1 (blob bandwidth), Fig. 2 (table ops),
// Fig. 3 (queue ops), Table 1 (VM lifecycle), Figs. 4-5 (inter-VM TCP), the
// Section 6.1 property-filter ablation, and the queue-depth invariance
// check. Experiments are selected by name from the core registry, so the
// -run values are exactly core.Names() plus the bench suites.
//
// Usage:
//
//	azbench -run all            # everything at paper scale
//	azbench -run all -workers 4 # shard whole experiments over 4 workers
//	azbench -run fig1 -quick    # one artifact at reduced scale
//	azbench -run fig2 -entity 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"azureobs/internal/core"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/geo"
	"azureobs/internal/metrics"
	"azureobs/internal/report"
	"azureobs/internal/svgplot"

	// Experiments registered outside core (chaosreport) reach the registry
	// through the packages that define them.
	_ "azureobs/internal/modis"
	_ "azureobs/internal/wire"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is the testable entry point: cmd smoke tests drive it in-process.
func run(args []string) int {
	fs := flag.NewFlagSet("azbench", flag.ExitOnError)
	var (
		runName = fs.String("run", "all", "artifact: all|"+strings.Join(core.Names(), "|")+"|netbench|storagebench|schedbench|simbench|scalebench|domainbench|geobench|campaignbench")
		seed    = fs.Uint64("seed", 42, "root random seed")
		quick   = fs.Bool("quick", false, "reduced scale for fast runs")
		workers = fs.Int("workers", 1, "scheduler width: independent experiment cells run on this many goroutines (1 = serial; results are bit-identical at any width)")
		domains = fs.Int("domains", 0, "intra-cell domain count: shard each cell's independent simulation units across this many concurrently-executing engines where the experiment supports it (0 = single engine; results are bit-identical at any count, and -domains composes with -workers)")
		entity  = fs.Int("entity", 4096, "fig2 entity size in bytes (1024|4096|16384|65536)")
		msg     = fs.Int("msg", 512, "fig3 message size in bytes (512|1024|4096|8192)")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		svgDir  = fs.String("svg", "", "also write SVG figures into this directory")
		bench   = fs.String("benchout", "", "output path for the netbench/storagebench/schedbench/simbench artifact (default BENCH_<suite>.json)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf = fs.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		gate    = fs.String("gate", "", "simbench/domainbench/geobench/campaignbench: regression-gate mode — rerun the gated suites and fail if >10% slower than this BENCH_sim.json / BENCH_domains.json / BENCH_geo.json / BENCH_campaign.json")
	)
	fs.Parse(args)
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	figures = *svgDir

	which := strings.ToLower(*runName)
	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	// The bench suites are calibration harnesses, not paper artifacts; they
	// live outside the experiment registry.
	switch which {
	case "netbench":
		out := *bench
		if out == "" {
			out = "BENCH_netsim.json"
		}
		runNetBench(*seed, *quick, out)
		return 0
	case "storagebench":
		out := *bench
		if out == "" {
			out = "BENCH_storage.json"
		}
		runStorageBench(*seed, *quick, out)
		return 0
	case "schedbench":
		out := *bench
		if out == "" {
			out = "BENCH_sched.json"
		}
		runSchedBench(*seed, out)
		return 0
	case "simbench":
		if *gate != "" {
			return runSimGate(*gate)
		}
		out := *bench
		if out == "" {
			out = "BENCH_sim.json"
		}
		return runSimBench(*seed, *quick, out)
	case "scalebench":
		out := *bench
		if out == "" {
			out = "BENCH_scale.json"
		}
		return runScaleBench(*seed, *quick, out)
	case "domainbench":
		if *gate != "" {
			return runDomainGate(*gate)
		}
		out := *bench
		if out == "" {
			out = "BENCH_domains.json"
		}
		return runDomainBench(*seed, *quick, out)
	case "geobench":
		if *gate != "" {
			return runGeoGate(*gate)
		}
		out := *bench
		if out == "" {
			out = "BENCH_geo.json"
		}
		return runGeoBench(*seed, *quick, out)
	case "campaignbench":
		if *gate != "" {
			return runCampaignGate(*gate)
		}
		out := *bench
		if out == "" {
			out = "BENCH_campaign.json"
		}
		return runCampaignBench(*seed, *quick, out)
	}

	proto := core.Proto{Seed: *seed, Workers: *workers, Domains: *domains}
	if *quick {
		proto.Scale = core.QuickScale
	}
	// The size flags map onto Proto.Size for the experiment they configure.
	sizeFor := func(name string) int {
		switch name {
		case "fig2":
			return *entity
		case "fig3":
			return *msg
		}
		return 0
	}

	if which == "all" {
		// The size sweeps re-run fig2/fig3 four times each; "all" keeps to
		// the per-figure artifacts, as it always has. With -workers the
		// whole experiments shard across the pool (each internally serial),
		// and render order stays the registry order regardless of which
		// finishes first.
		var names []string
		for _, n := range core.Names() {
			if n != "fig2sizes" && n != "fig3sizes" {
				names = append(names, n)
			}
		}
		pool := sched.New(*workers)
		results := sched.Map(pool, len(names), func(i int) core.Result {
			p := proto
			p.Workers = 1
			p.Size = sizeFor(names[i])
			e, _ := core.Lookup(names[i])
			return e.Run(p)
		})
		for i, n := range names {
			renderResult(n, results[i], emit)
		}
		return 0
	}

	name := which
	if name == "fig4" || name == "fig5" {
		name = "tcp"
	}
	e, ok := core.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *runName)
		fs.Usage()
		return 2
	}
	p := proto
	p.Size = sizeFor(name)
	renderResult(name, e.Run(p), emit)
	return 0
}

// figures is the SVG output directory ("" = off).
var figures string

// writeFigure renders a plot into the figures directory.
func writeFigure(name string, p *svgplot.Plot) {
	if figures == "" {
		return
	}
	f, err := os.Create(filepath.Join(figures, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := p.Render(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(figures, name))
}

func printAnchors(title string, anchors []core.Anchor) {
	if len(anchors) == 0 {
		return
	}
	fmt.Printf("%s — paper vs measured:\n", title)
	for _, a := range anchors {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println()
}

// renderResult dispatches a registry result to its artifact renderer.
// Unknown result types still get their anchors printed, so a newly
// registered experiment is runnable by name before it grows a table.
func renderResult(name string, res core.Result, emit func(*report.Table)) {
	switch r := res.(type) {
	case *core.Fig1Result:
		renderFig1(r, emit)
	case *core.Fig2Result:
		renderFig2(r, emit)
	case *core.Fig3Result:
		renderFig3(r, emit)
	case *core.Table1Result:
		renderTable1(r, emit)
	case *core.TCPResult:
		renderTCP(r)
	case *core.PropFilterResult:
		renderPropFilter(r, emit)
	case *core.QueueDepthResult:
		renderQueueDepth(r, emit)
	case *core.ReplicationResult:
		renderReplication(r, emit)
	case *core.SQLCompareResult:
		renderSQLCompare(r, emit)
	case *core.StartupScalingResult:
		renderStartup(r, emit)
	case *core.Fig2SizeSweep:
		renderFig2Sizes(r, emit)
	case *core.Fig3SizeSweep:
		renderFig3Sizes(r, emit)
	case *core.Fig8GeoResult:
		renderFig8Geo(r, emit)
	default:
		printAnchors(name, res.Anchors())
	}
}

func renderFig1(r *core.Fig1Result, emit func(*report.Table)) {
	t := report.NewTable("Fig 1 — average per-client blob bandwidth vs concurrent clients",
		"clients", "down MB/s", "down agg MB/s", "up MB/s", "up agg MB/s")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.2f", p.DownMBps), fmt.Sprintf("%.1f", p.DownAggMBps),
			fmt.Sprintf("%.2f", p.UpMBps), fmt.Sprintf("%.1f", p.UpAggMBps))
	}
	emit(t)
	printAnchors("Fig 1", r.Anchors())

	xs := make([]float64, len(r.Points))
	down := make([]float64, len(r.Points))
	up := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i], down[i], up[i] = float64(p.Clients), p.DownMBps, p.UpMBps
	}
	plot := svgplot.New("Fig 1 — average per-client blob bandwidth", "concurrent clients", "MB/s")
	plot.Log2X = true
	plot.Add("download", xs, down)
	if up[0] > 0 {
		plot.Add("upload", xs, up)
	}
	writeFigure("fig1.svg", plot)
}

func renderFig2(r *core.Fig2Result, emit func(*report.Table)) {
	entity := r.EntitySize
	t := report.NewTable(
		fmt.Sprintf("Fig 2 — average per-client table ops/s vs concurrent clients (entity %d B)", entity),
		"clients", "insert", "query", "update", "delete", "insert-finishers")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.InsertOps), fmt.Sprintf("%.1f", p.QueryOps),
			fmt.Sprintf("%.1f", p.UpdateOps), fmt.Sprintf("%.1f", p.DeleteOps),
			fmt.Sprintf("%d/%d", p.InsertSurvivors, p.Clients))
	}
	emit(t)
	printAnchors("Fig 2", r.Anchors())

	xs := make([]float64, len(r.Points))
	curves := map[string][]float64{"insert": nil, "query": nil, "update": nil, "delete": nil}
	for i, p := range r.Points {
		xs[i] = float64(p.Clients)
		curves["insert"] = append(curves["insert"], p.InsertOps)
		curves["query"] = append(curves["query"], p.QueryOps)
		curves["update"] = append(curves["update"], p.UpdateOps)
		curves["delete"] = append(curves["delete"], p.DeleteOps)
	}
	plot := svgplot.New(fmt.Sprintf("Fig 2 — per-client table ops/s (%d B entities)", entity),
		"concurrent clients", "ops/s")
	plot.Log2X = true
	for _, name := range []string{"insert", "query", "update", "delete"} {
		plot.Add(name, xs, curves[name])
	}
	writeFigure("fig2.svg", plot)
}

func renderFig3(r *core.Fig3Result, emit func(*report.Table)) {
	msg := r.MsgSize
	t := report.NewTable(
		fmt.Sprintf("Fig 3 — average per-client queue ops/s vs concurrent clients (message %d B)", msg),
		"clients", "add", "peek", "receive", "add agg", "peek agg", "recv agg")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.AddOps), fmt.Sprintf("%.1f", p.PeekOps),
			fmt.Sprintf("%.1f", p.ReceiveOps),
			fmt.Sprintf("%.0f", p.AggAdd()), fmt.Sprintf("%.0f", p.AggPeek()),
			fmt.Sprintf("%.0f", p.AggReceive()))
	}
	emit(t)
	printAnchors("Fig 3", r.Anchors())

	xs := make([]float64, len(r.Points))
	add := make([]float64, len(r.Points))
	peek := make([]float64, len(r.Points))
	recv := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i], add[i], peek[i], recv[i] = float64(p.Clients), p.AddOps, p.PeekOps, p.ReceiveOps
	}
	plot := svgplot.New(fmt.Sprintf("Fig 3 — per-client queue ops/s (%d B messages)", msg),
		"concurrent clients", "ops/s")
	plot.Log2X = true
	plot.Add("add", xs, add)
	plot.Add("peek", xs, peek)
	plot.Add("receive", xs, recv)
	writeFigure("fig3.svg", plot)
}

func renderTable1(r *core.Table1Result, emit func(*report.Table)) {
	t := report.NewTable("Table 1 — worker/web role VM request time (seconds)",
		"role", "size", "stat", "create", "run", "add", "suspend", "delete")
	for _, role := range []fabric.Role{fabric.Worker, fabric.Web} {
		for _, size := range []fabric.Size{fabric.Small, fabric.Medium, fabric.Large, fabric.ExtraLarge} {
			cell := func(phase string, f func(*metrics.Summary) float64) string {
				s := r.Cell(role, size, phase)
				if s.N() == 0 {
					return "N/A"
				}
				return fmt.Sprintf("%.0f", f(s))
			}
			mean := func(s *metrics.Summary) float64 { return s.Mean() }
			std := func(s *metrics.Summary) float64 { return s.Std() }
			t.AddRow(role.String(), size.String(), "AVG",
				cell("Create", mean), cell("Run", mean), cell("Add", mean),
				cell("Suspend", mean), cell("Delete", mean))
			t.AddRow("", "", "STD",
				cell("Create", std), cell("Run", std), cell("Add", std),
				cell("Suspend", std), cell("Delete", std))
		}
	}
	emit(t)
	pct := r.Percentiles()
	fmt.Printf("derived: %d successful runs, %.1f%% startup failures\n",
		r.SuccessRuns, r.FailureRate()*100)
	fmt.Printf("worker small first instance: %.0f%% ≤ 9 min, %.0f%% ≤ 10 min\n",
		pct.WorkerWithin9Min*100, pct.WorkerWithin10Min*100)
	fmt.Printf("web small first instance:    %.0f%% ≤ 10 min, %.0f%% ≤ 11 min\n\n",
		pct.WebWithin10Min*100, pct.WebWithin11Min*100)
	printAnchors("Table 1", r.Anchors())
}

func renderTCP(r *core.TCPResult) {
	report.CDFPlot(os.Stdout, "Fig 4 — cumulative TCP latency between small VMs", "ms",
		r.LatencyMS, 60, 12)
	fmt.Println()
	report.CDFPlot(os.Stdout, "Fig 5 — cumulative TCP bandwidth, 2 GB transfers", "MB/s",
		r.BandwidthMBps, 60, 12)
	fmt.Println()
	printAnchors("Figs 4-5", r.Anchors())

	writeFigure("fig4.svg", cdfFigure("Fig 4 — cumulative TCP latency", "latency (ms)", r.LatencyMS))
	writeFigure("fig5.svg", cdfFigure("Fig 5 — cumulative TCP bandwidth (2 GB transfers)", "bandwidth (MB/s)", r.BandwidthMBps))
}

// cdfFigure builds a cumulative-probability curve from a sample.
func cdfFigure(title, xlabel string, s *metrics.Sample) *svgplot.Plot {
	pts := s.CDF(100)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i], ys[i] = pt.Value, pt.P
	}
	plot := svgplot.New(title, xlabel, "cumulative probability")
	plot.Add("measured CDF", xs, ys)
	return plot
}

func renderPropFilter(r *core.PropFilterResult, emit func(*report.Table)) {
	t := report.NewTable(
		fmt.Sprintf("Section 6.1 — property-filter queries on a %d-entity partition", r.Entities),
		"clients", "queries", "timeouts", "mean latency (s)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients), fmt.Sprint(p.Queries), fmt.Sprint(p.Timeouts),
			fmt.Sprintf("%.1f", p.MeanLatency))
	}
	emit(t)
	printAnchors("Property-filter ablation", r.Anchors())
}

func renderReplication(r *core.ReplicationResult, emit func(*report.Table)) {
	t := report.NewTable(
		fmt.Sprintf("Section 6.1 — blob replication ablation (%d concurrent readers)", r.Clients),
		"replicas", "readers/blob", "per-client MB/s", "aggregate MB/s", "speedup")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Replicas), fmt.Sprint(p.PerBlobClients),
			fmt.Sprintf("%.2f", p.PerClientMBps), fmt.Sprintf("%.0f", p.AggregateMBps),
			fmt.Sprintf("%.2fx", p.SpeedupVsOne))
	}
	emit(t)
	printAnchors("Replication ablation", r.Anchors())
}

func renderFig2Sizes(sw *core.Fig2SizeSweep, emit func(*report.Table)) {
	t := report.NewTable("Section 3.2 — table insert ops/s across entity sizes",
		"clients", "1 kB", "4 kB", "16 kB", "64 kB")
	for i, pt := range sw.Results[0].Points {
		row := []string{fmt.Sprint(pt.Clients)}
		for _, r := range sw.Results {
			row = append(row, fmt.Sprintf("%.1f", r.Points[i].InsertOps))
		}
		t.AddRow(row...)
	}
	emit(t)
	printAnchors("Entity-size sweep", sw.Anchors())
}

func renderFig3Sizes(sw *core.Fig3SizeSweep, emit func(*report.Table)) {
	t := report.NewTable("Section 3.3 — queue add ops/s across message sizes",
		"clients", "512 B", "1 kB", "4 kB", "8 kB")
	for i, pt := range sw.Results[0].Points {
		row := []string{fmt.Sprint(pt.Clients)}
		for _, r := range sw.Results {
			row = append(row, fmt.Sprintf("%.1f", r.Points[i].AddOps))
		}
		t.AddRow(row...)
	}
	emit(t)
	printAnchors("Message-size sweep", sw.Anchors())
}

func renderStartup(r *core.StartupScalingResult, emit func(*report.Table)) {
	t := report.NewTable(
		"Section 4.1 extra — deployment readiness vs size (small workers, seconds)",
		"instances", "first ready avg", "all ready avg", "all ready std")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Instances),
			fmt.Sprintf("%.0f", p.FirstReady.Mean()),
			fmt.Sprintf("%.0f", p.AllReady.Mean()),
			fmt.Sprintf("%.0f", p.AllReady.Std()))
	}
	emit(t)
	fmt.Printf("marginal startup cost: %.1f s per added instance (the 60-100 s serial readiness lag)\n\n",
		r.MarginalSecondsPerInstance())
	printAnchors("Startup scaling", r.Anchors())
}

func renderSQLCompare(r *core.SQLCompareResult, emit func(*report.Table)) {
	t := report.NewTable(
		"HPDC'10 extra — SQL Azure vs table storage, per-client ops/s (1 kB rows)",
		"clients", "sql insert", "sql select", "tbl insert", "tbl query", "sql throttled")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Clients),
			fmt.Sprintf("%.1f", p.SQLInsertOps), fmt.Sprintf("%.1f", p.SQLSelectOps),
			fmt.Sprintf("%.1f", p.TableInsertOps), fmt.Sprintf("%.1f", p.TableQueryOps),
			fmt.Sprintf("%d/%d", p.ThrottledOpens, p.Clients))
	}
	emit(t)
	printAnchors("SQL comparison", r.Anchors())
}

func renderFig8Geo(r *core.Fig8GeoResult, emit func(*report.Table)) {
	t := report.NewTable(
		fmt.Sprintf("Fig 8 — cross-DC geo scenarios (%d regions)", r.Regions),
		"scenario", "reads ok", "writes ok", "remote reads", "lag p50 (s)", "lag p95 (s)", "stale %", "RTO (s)", "lost writes")
	row := func(name string, g *geo.Report) {
		t.AddRow(name,
			fmt.Sprint(g.ReadsOK), fmt.Sprint(g.WritesOK), fmt.Sprint(g.RemoteReads),
			fmt.Sprintf("%.3f", g.LagP50Sec), fmt.Sprintf("%.3f", g.LagP95Sec),
			fmt.Sprintf("%.2f", 100*g.StaleFrac),
			fmt.Sprintf("%.2f", g.RTOSec), fmt.Sprint(g.LostWrites))
	}
	row("lag+flash", r.Lag)
	row("read-your-writes", r.RYW)
	row("region-kill", r.Kill)
	emit(t)
	printAnchors("Fig 8 geo", r.Anchors())
}

func renderQueueDepth(r *core.QueueDepthResult, emit func(*report.Table)) {
	t := report.NewTable("Section 3.3 — queue depth invariance (per-client Receive ops/s @8 clients)",
		"depth", "ops/s")
	t.AddRow(fmt.Sprint(r.SmallDepth), fmt.Sprintf("%.1f", r.SmallRate))
	t.AddRow(fmt.Sprint(r.LargeDepth), fmt.Sprintf("%.1f", r.LargeRate))
	emit(t)
	printAnchors("Queue depth invariance", r.Anchors())
}
