package main

import (
	"testing"

	"azureobs/internal/sim"
)

// Smoke tests: drive the binary's run() in-process at quick scale. They
// assert exit codes, not output — the experiment internals are tested in
// their own packages; what's covered here is the flag plumbing, registry
// lookup and render dispatch that only exist in this command.
func TestRunSingleExperimentQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	for _, name := range []string{"fig3", "queuedepth"} {
		if code := run([]string{"-run", name, "-quick"}); code != 0 {
			t.Fatalf("azbench -run %s -quick exited %d", name, code)
		}
	}
}

func TestRunChaosReportQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	// chaosreport reaches the registry through the modis blank import; its
	// renderer is the default anchors-only path.
	if code := run([]string{"-run", "chaosreport", "-quick", "-workers", "4"}); code != 0 {
		t.Fatalf("azbench -run chaosreport -quick exited %d", code)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if code := run([]string{"-run", "nope"}); code != 2 {
		t.Fatalf("azbench -run nope exited %d, want 2", code)
	}
}
