package main

import (
	"testing"

	"azureobs/internal/sim"
)

// Smoke tests: drive the binary's run() in-process at quick scale. They
// assert exit codes, not output — the experiment internals are tested in
// their own packages; what's covered here is the flag plumbing, registry
// lookup and render dispatch that only exist in this command.
func TestRunSingleExperimentQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	for _, name := range []string{"fig3", "queuedepth"} {
		if code := run([]string{"-run", name, "-quick"}); code != 0 {
			t.Fatalf("azbench -run %s -quick exited %d", name, code)
		}
	}
}

func TestRunChaosReportQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	// chaosreport reaches the registry through the modis blank import; its
	// renderer is the default anchors-only path.
	if code := run([]string{"-run", "chaosreport", "-quick", "-workers", "4"}); code != 0 {
		t.Fatalf("azbench -run chaosreport -quick exited %d", code)
	}
}

func TestRunFig8GeoQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	// fig8geo exercises the geo world render path and the -domains flag
	// plumbing through the registry proto.
	if code := run([]string{"-run", "fig8geo", "-quick", "-domains", "2"}); code != 0 {
		t.Fatalf("azbench -run fig8geo -quick -domains 2 exited %d", code)
	}
}

func TestRunGeoBenchQuick(t *testing.T) {
	sim.SetDefaultInvariants(true)
	out := t.TempDir() + "/BENCH_geo.json"
	if code := run([]string{"-run", "geobench", "-quick", "-benchout", out}); code != 0 {
		t.Fatalf("azbench -run geobench -quick exited %d", code)
	}
	// The capture is its own gate baseline: the gate must accept the file
	// it just wrote (hash equality and the 10% wall band).
	if code := run([]string{"-run", "geobench", "-gate", out}); code != 0 {
		t.Fatalf("azbench -run geobench -gate exited %d", code)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if code := run([]string{"-run", "nope"}); code != 2 {
		t.Fatalf("azbench -run nope exited %d, want 2", code)
	}
}
