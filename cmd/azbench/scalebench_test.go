package main

import "testing"

// TestScaleRungEquivalence pins scalebench's core claim at test scale: the
// flat-actor and goroutine-per-client runs of the same cell consume the same
// draws and fire the same events, so every virtual-execution observable
// matches exactly.
func TestScaleRungEquivalence(t *testing.T) {
	flat := runScaleRung(42, 1000, true)
	goro := runScaleRung(42, 1000, false)
	if !sameTrace(flat, goro) {
		t.Fatalf("flat and goroutine traces diverge at 1000 clients:\nflat: %+v\ngoro: %+v", flat, goro)
	}
	if flat.Ops+flat.Failures != 1000*scaleOpsPerClient {
		t.Fatalf("accounting hole: ok=%d failed=%d, want %d total", flat.Ops, flat.Failures, 1000*scaleOpsPerClient)
	}
	if flat.ServerRequests <= flat.Ops+flat.Failures {
		t.Fatalf("server saw %d requests for %d operations: the rung is not exercising the retry machinery",
			flat.ServerRequests, flat.Ops+flat.Failures)
	}
}
