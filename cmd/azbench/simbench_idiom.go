package main

import (
	"time"

	"azureobs/internal/sim"
)

// This file isolates the kernel-API idioms the churn workloads exercise, so
// the identical harness can be rebuilt against the pre-overhaul kernel when
// recapturing seed baselines: swap these bodies for the legacy spelling
// (Cancel + Recycle + Schedule), `git stash push -- internal/sim
// internal/netsim`, run `azbench -run simbench`, pop, and restore.

// cancelReplace retires a pending completion: the netsim remove/stall idiom.
// Post-overhaul this is a single lazy CancelRecycle — the heap is not
// touched unless the event sits in a leaf slot.
func cancelReplace(eng *sim.Engine, ev *sim.Event) {
	eng.CancelRecycle(ev)
}

// moveEvent slides a pending completion to a new time: the netsim
// rate-change idiom. Post-overhaul the event sifts in place; the legacy
// spelling is Cancel + Recycle + Schedule of a replacement.
func moveEvent(eng *sim.Engine, ev *sim.Event, at time.Duration, fn func()) *sim.Event {
	eng.Reschedule(ev, at)
	return ev
}

// fillCellStats records the engine's process/worker accounting. The legacy
// capture build leaves these fields zero — the pre-overhaul kernel has no
// worker pool and no such counters.
func fillCellStats(st *fig1CellStats, e *sim.Engine) {
	st.SpawnedProcs = e.ProcsSpawned()
	st.WorkersCreated = e.WorkersCreated()
	st.WorkersReused = e.WorkersReused()
	st.WorkersPeak = e.WorkersPeak()
}
