//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; its memory
// instrumentation distorts allocation and footprint measurements, so the
// scalebench memory gates are skipped under -race (trace equivalence still
// runs).
const raceEnabled = true
