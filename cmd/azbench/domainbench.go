package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/core"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// The domainbench artifact measures the domain-sharded kernel: the same cell
// executed at a ladder of sim.Domains widths, with the trace hash asserted
// identical at every rung — the determinism contract is checked by the same
// run that measures the speedup. Three suites cover the three sharding
// shapes:
//
//   - fig1-cell: the golden fig1 blob-bandwidth cell, whose (level, run,
//     direction) rounds shard across domains inside core.RunFig1;
//   - fig2-sweep: the table-operation ladder, whose levels run under
//     driver-process phase sequencing on domain members;
//   - scale-cell: one scalebench rung split into 8 fixed client shards,
//     shard s on domain s%D, so the same worlds run at every width — plus
//     one windowed point exercising the bounded virtual-time coordinator.
//
// On a single-CPU host GOMAXPROCS serializes the member goroutines, so
// speedup stays ~1 and the rows certify determinism; on an n-core machine
// the ladder approaches min(n, domains, unit parallelism).

// domainPoint is one (suite, domains) measurement.
type domainPoint struct {
	Suite       string  `json:"suite"`
	Domains     int     `json:"domains"` // 0 = legacy single-engine path
	WindowSec   float64 `json:"window_sec,omitempty"`
	WallMS      float64 `json:"wall_ms"`
	BusyMS      float64 `json:"busy_ms,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	Groups      int     `json:"groups,omitempty"`
	Speedup     float64 `json:"speedup_vs_one,omitempty"`
	Efficiency  float64 `json:"efficiency,omitempty"`
	TraceHash   string  `json:"trace_hash"`
	Events      uint64  `json:"events_fired,omitempty"`
	// ClampedGroups counts groups that ran narrower than the requested
	// width (a layer clamped the ask — geo to its region count, modis to
	// its shard count). Surfaced per the no-silent-caps convention.
	ClampedGroups int `json:"clamped_groups,omitempty"`
}

type domainBenchReport struct {
	Suite      string        `json:"suite"`
	CapturedAt string        `json:"captured_at"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Seed       uint64        `json:"seed"`
	Quick      bool          `json:"quick"`
	Note       string        `json:"note"`
	Points     []domainPoint `json:"points"`
}

// domainTraceHash folds the printed form of the given values into one
// FNV-64a sum. %+v of a result renders every float64 in shortest-round-trip
// form, so two hashes agree exactly when the traces' observable outcomes do.
func domainTraceHash(vs ...any) string {
	h := fnv.New64a()
	for _, v := range vs {
		fmt.Fprintf(h, "%+v|", v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// domainFig1Config is the fig1-cell suite config: the golden seed-42 cell
// (full) or a shrunk ladder (quick).
func domainFig1Config(seed uint64, quick bool) core.Fig1Config {
	clients, blob := []int{1, 8, 32, 64, 128, 192}, int64(32)
	if quick {
		clients, blob = []int{1, 8, 32}, 8
	}
	return core.Fig1Config{
		Proto:  core.Proto{Seed: seed, Clients: clients, Runs: 1, Workers: 1},
		BlobMB: blob,
	}
}

// runDomainFig1 executes the fig1-cell suite at one domain count
// (0 = legacy path) and returns its trace hash and coordinator accounting.
func runDomainFig1(seed uint64, quick bool, domains int) (string, *sim.DomainAccum, time.Duration) {
	cfg := domainFig1Config(seed, quick)
	var acc sim.DomainAccum
	cfg.Domains = domains
	cfg.DomainStats = &acc
	start := time.Now()
	res := core.RunFig1(cfg)
	wall := time.Since(start)
	return domainTraceHash(res, res.Anchors()), &acc, wall
}

// runDomainFig2 executes the fig2-sweep suite at one domain count.
func runDomainFig2(seed uint64, quick bool, domains int) (string, *sim.DomainAccum, time.Duration) {
	clients := []int{1, 8, 64, 192}
	if quick {
		clients = []int{1, 8}
	}
	cfg := core.Fig2Config{
		Proto:      core.Proto{Seed: seed, Clients: clients, Workers: 1},
		EntitySize: 4096, Inserts: 40, Queries: 40, Updates: 20,
	}
	var acc sim.DomainAccum
	cfg.Domains = domains
	cfg.DomainStats = &acc
	start := time.Now()
	res := core.RunFig2(cfg)
	wall := time.Since(start)
	return domainTraceHash(res, res.Anchors()), &acc, wall
}

// domainScaleShards is the fixed shard count of the scale-cell suite. It
// does not vary with the domain ladder — the same 8 shard worlds run at
// every width (shard s on domain s%D), which is what makes the rungs'
// traces comparable in the first place.
const domainScaleShards = 8

// runDomainScaleCell runs one scalebench-style rung of n clients split into
// domainScaleShards self-contained shard clouds placed round-robin on a
// domains-wide group. Each shard's cloud seed and client stream root derive
// from the shard index alone (root.ForkDomain(s)), so no draw anywhere
// depends on the domain count — the summed tallies, total events, and final
// virtual time must match at every width, and that tuple is the trace hash.
func runDomainScaleCell(seed uint64, n, domains int, window time.Duration) (string, *sim.DomainAccum, time.Duration, uint64) {
	shards := domainScaleShards
	per := n / shards
	g := sim.NewDomains(domains)
	if window > 0 {
		g.SetWindow(window)
	}
	base := simrand.New(seed).Fork("scalebench")
	clouds := make([]*azure.Cloud, shards)
	hs := make([]*scaleHarness, shards)
	clients := make([][]scaleClient, shards)
	for s := 0; s < shards; s++ {
		cloud, h := newScaleCloudOn(g.Domain(s%domains), seed+uint64(s)*7919)
		h.root = base.ForkDomain(s)
		clouds[s], hs[s] = cloud, h
		cs := make([]scaleClient, per)
		for i := range cs {
			cs[i].init(h, i)
		}
		clients[s] = cs
	}
	for s := range clients {
		for i := range clients[s] {
			clients[s][i].begin()
		}
	}
	start := time.Now()
	g.Run()
	wall := time.Since(start)

	var ok, failed, server uint64
	for s := 0; s < shards; s++ {
		ok += hs[s].ok
		failed += hs[s].failed
		server += clouds[s].Ops.Total()
	}
	events := g.EventsFired()
	hash := domainTraceHash(ok, failed, server, events, g.Now().Seconds())
	var acc sim.DomainAccum
	acc.Add(g.Stats())
	return hash, &acc, wall, events
}

// domainLadder is the domain-count ladder: {1,2,4,8} full, {1,2} quick.
func domainLadder(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

func runDomainBench(seed uint64, quick bool, out string) int {
	rep := domainBenchReport{
		Suite:      "domains",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Quick:      quick,
		Note: "domain-sharded kernel ladder: each suite's cell re-run at domains ∈ " +
			"{1,2,4,8} ({1,2} quick), with identical trace_hash required at every rung " +
			"(domains=0 rows are the legacy single-engine path, included in the equality " +
			"check). fig1-cell shards (level,run,direction) rounds, fig2-sweep runs " +
			"levels under driver-process phase sequencing, scale-cell splits one " +
			"closed-loop rung into 8 fixed shard clouds placed round-robin on the group " +
			"(the window_sec row runs the same cell under the bounded virtual-time " +
			"coordinator). speedup_vs_one is against the suite's domains=1 wall; " +
			"utilization is busy/(domains×wall) from the coordinator's accounting. " +
			"Wall-clock speedup requires num_cpu > 1; on one CPU the ladder only " +
			"certifies determinism.",
	}

	scaleN := 100_000
	if quick {
		scaleN = 10_000
	}
	ladder := domainLadder(quick)
	maxD := ladder[len(ladder)-1]

	fail := false
	addSuite := func(name string, run func(d int, window time.Duration) domainPoint) {
		var pts []domainPoint
		legacyIdx := -1
		baseWall := 0.0
		for _, d := range ladder {
			pt := run(d, 0)
			if d == 1 {
				baseWall = pt.WallMS
			}
			if baseWall > 0 {
				pt.Speedup = baseWall / pt.WallMS
				pt.Efficiency = pt.Speedup / float64(d)
			}
			pts = append(pts, pt)
			fmt.Printf("domainbench: %-10s domains=%d %8.1f ms wall  %.2fx vs d=1  util %.2f  rounds %d  trace %s\n",
				name, d, pt.WallMS, pt.Speedup, pt.Utilization, pt.Rounds, pt.TraceHash)
		}
		if name == "scale-cell" {
			pt := run(maxD, time.Second)
			pts = append(pts, pt)
			fmt.Printf("domainbench: %-10s domains=%d window=%.0fs %5.1f ms wall  rounds %d  trace %s\n",
				name, maxD, pt.WindowSec, pt.WallMS, pt.Rounds, pt.TraceHash)
		} else {
			// fig1/fig2 also pin the legacy single-engine path against the
			// domain ladder, tying the hashes back to the goldens' world.
			pt := run(0, 0)
			legacyIdx = len(pts)
			pts = append(pts, pt)
			fmt.Printf("domainbench: %-10s legacy    %8.1f ms wall  trace %s\n",
				name, pt.WallMS, pt.TraceHash)
		}
		for _, pt := range pts[1:] {
			if pt.TraceHash != pts[0].TraceHash {
				kind := fmt.Sprintf("domains=%d", pt.Domains)
				if legacyIdx >= 0 && pt.Domains == 0 {
					kind = "legacy path"
				}
				fmt.Fprintf(os.Stderr, "domainbench: FAIL %s: trace diverged at %s: %s vs %s\n",
					name, kind, pt.TraceHash, pts[0].TraceHash)
				fail = true
			}
		}
		rep.Points = append(rep.Points, pts...)
	}

	accPoint := func(suite string, d int, hash string, acc *sim.DomainAccum, wall time.Duration) domainPoint {
		return domainPoint{
			Suite:       suite,
			Domains:     d,
			WallMS:      float64(wall) / 1e6,
			BusyMS:      float64(acc.Busy) / 1e6,
			Utilization: acc.Utilization(),
			Rounds:      acc.Rounds,
			Groups:      acc.Groups,
			TraceHash:   hash,
		}
	}

	addSuite("fig1-cell", func(d int, _ time.Duration) domainPoint {
		hash, acc, wall := runDomainFig1(seed, quick, d)
		return accPoint("fig1-cell", d, hash, acc, wall)
	})
	addSuite("fig2-sweep", func(d int, _ time.Duration) domainPoint {
		hash, acc, wall := runDomainFig2(seed, quick, d)
		return accPoint("fig2-sweep", d, hash, acc, wall)
	})
	addSuite("scale-cell", func(d int, window time.Duration) domainPoint {
		hash, acc, wall, events := runDomainScaleCell(seed, scaleN, d, window)
		pt := accPoint("scale-cell", d, hash, acc, wall)
		pt.WindowSec = window.Seconds()
		pt.Events = events
		return pt
	})

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("domainbench: wrote %s\n", out)
	if fail {
		fmt.Fprintln(os.Stderr, "domainbench: cross-domain trace divergence — the determinism contract is broken; do not merge")
		return 1
	}
	return 0
}

// runDomainGate is the regression step, in the simbench -gate convention:
// re-run the fig1-cell suite at domains=1 (minimum over five repetitions, to
// shave scheduler noise) at the scale the checked-in BENCH_domains.json was
// captured at, and fail if the wall is more than 10% over the recorded one —
// the coordinator's single-domain overhead must stay negligible.
func runDomainGate(baselinePath string) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "domainbench gate: %v\n", err)
		return 1
	}
	var base domainBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "domainbench gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	want, wantHash := 0.0, ""
	for _, pt := range base.Points {
		if pt.Suite == "fig1-cell" && pt.Domains == 1 && pt.WindowSec == 0 {
			want, wantHash = pt.WallMS, pt.TraceHash
		}
	}
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "domainbench gate: no fig1-cell domains=1 baseline in %s\n", baselinePath)
		return 1
	}

	const tolerance = 1.10
	best, bestHash := 0.0, ""
	for rep := 0; rep < 5; rep++ {
		hash, _, wall := runDomainFig1(base.Seed, base.Quick, 1)
		if ms := float64(wall) / 1e6; best == 0 || ms < best {
			best = ms
		}
		bestHash = hash
	}
	ratio := best / want
	status := "ok"
	if ratio > tolerance {
		status = "FAIL"
	}
	fmt.Printf("domainbench gate: fig1-cell domains=1 %8.1f ms vs baseline %8.1f (%.2fx) %s  trace %s\n",
		best, want, ratio, status, bestHash)
	if wantHash != "" && bestHash != wantHash {
		fmt.Fprintf(os.Stderr, "domainbench gate: trace hash %s differs from recorded %s — the cell's simulation changed; recapture BENCH_domains.json with -run domainbench\n",
			bestHash, wantHash)
		return 1
	}
	if ratio > tolerance {
		fmt.Fprintln(os.Stderr, "domainbench gate: single-domain wall regression >10% — investigate before merging (profile with -run domainbench -cpuprofile cpu.out)")
		return 1
	}
	fmt.Println("domainbench gate: single-domain fig1 cell within 10% of baseline")
	return 0
}
