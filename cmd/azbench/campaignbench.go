package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"azureobs/internal/modis"
	"azureobs/internal/sim"
)

// The campaignbench artifact measures the domain-sharded ModisAzure
// campaign: one quick campaign re-run at a ladder of sim.Domains widths,
// with the campaign fingerprint — every Table 2 counter, daily series and
// float tally, bit for bit — required identical at every rung. This is the
// coupled-workload counterpart of domainbench's independent-cell ladders:
// the campaign's shards talk through the shared task dispatch and the
// coordinator, so the speedup column here prices the boundary-mail design,
// not just GOMAXPROCS.
//
// On a single-CPU host GOMAXPROCS serializes the domain goroutines, so
// speedup stays ~1 and the ladder certifies determinism; on an n-core
// machine it approaches min(n, domains) scaled by the utilization column
// (the coordinator round barrier is the tax).

// campaignBenchConfig is the quick-campaign cell: big enough that every
// shard stays busy (and wall time dominates setup), small enough for CI.
func campaignBenchConfig(seed uint64, quick bool, domains int) modis.Config {
	cfg := modis.Config{
		Seed:                seed,
		Days:                21,
		Workers:             64,
		MeanRequestGap:      100 * time.Minute,
		MeanTasksPerRequest: 140,
		Domains:             domains,
	}
	if quick {
		cfg.Days, cfg.Workers = 7, 32
	}
	return cfg
}

// campaignLadder is the domain-width ladder: {1,2,4,8} full (eight shards
// means eight is the widest useful width), {1,2} quick.
func campaignLadder(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// runCampaignCell executes the quick campaign at one domain width.
func runCampaignCell(seed uint64, quick bool, domains int) (string, *sim.DomainAccum, time.Duration, uint64) {
	var acc sim.DomainAccum
	cfg := campaignBenchConfig(seed, quick, domains)
	cfg.DomainStats = &acc
	camp := modis.NewCampaign(cfg)
	start := time.Now()
	st := camp.Run()
	wall := time.Since(start)
	hash := fmt.Sprintf("%016x", st.Fingerprint())
	return hash, &acc, wall, st.TotalExecs()
}

func runCampaignBench(seed uint64, quick bool, out string) int {
	rep := domainBenchReport{
		Suite:      "campaign",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Quick:      quick,
		Note: "domain-sharded ModisAzure campaign ladder: the same quick campaign " +
			"(21 days, 64 workers; 7 days, 32 workers quick) re-run at domains ∈ " +
			"{1,2,4,8} ({1,2} quick) over eight workload shards, with the identical " +
			"campaign fingerprint (trace_hash) required at every rung. events_fired " +
			"is task executions. speedup_vs_one is against the suite's domains=1 " +
			"wall; utilization is busy/(domains*wall), the round-barrier tax on the " +
			"coupled workload. Wall-clock speedup requires num_cpu > 1; on one CPU " +
			"the ladder only certifies determinism. Profile one rung with " +
			"-cpuprofile cpu.out: samples carry a per-domain pprof label.",
	}

	fail := false
	var pts []domainPoint
	baseWall := 0.0
	for _, d := range campaignLadder(quick) {
		hash, acc, wall, execs := runCampaignCell(seed, quick, d)
		pt := domainPoint{
			Suite:         "campaign",
			Domains:       d,
			WallMS:        float64(wall) / 1e6,
			BusyMS:        float64(acc.Busy) / 1e6,
			Utilization:   acc.Utilization(),
			Rounds:        acc.Rounds,
			Groups:        acc.Groups,
			TraceHash:     hash,
			Events:        execs,
			ClampedGroups: acc.Clamped,
		}
		if acc.Clamped > 0 {
			fmt.Printf("campaignbench: note: domains=%d: %d group(s) clamped below the requested width (shard count bounds the useful width)\n",
				d, acc.Clamped)
		}
		if d == 1 {
			baseWall = pt.WallMS
		}
		if baseWall > 0 {
			pt.Speedup = baseWall / pt.WallMS
			pt.Efficiency = pt.Speedup / float64(d)
		}
		pts = append(pts, pt)
		fmt.Printf("campaignbench: domains=%d %8.1f ms wall  %.2fx vs d=1  util %.2f  rounds %d  execs %d  trace %s\n",
			d, pt.WallMS, pt.Speedup, pt.Utilization, pt.Rounds, pt.Events, pt.TraceHash)
	}
	for _, pt := range pts[1:] {
		if pt.TraceHash != pts[0].TraceHash {
			fmt.Fprintf(os.Stderr, "campaignbench: FAIL: campaign fingerprint diverged at domains=%d: %s vs %s\n",
				pt.Domains, pt.TraceHash, pts[0].TraceHash)
			fail = true
		}
	}
	rep.Points = pts

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("campaignbench: wrote %s\n", out)
	if fail {
		fmt.Fprintln(os.Stderr, "campaignbench: cross-domain fingerprint divergence — the determinism contract is broken; do not merge")
		return 1
	}
	return 0
}

// runCampaignGate is the regression step, in the domainbench -gate
// convention: re-run the campaign at domains=1 (minimum over five
// repetitions, to shave scheduler noise) at the scale the checked-in
// BENCH_campaign.json was captured at, and fail if the wall is more than
// 10% over the recorded one, or if the campaign fingerprint drifted.
func runCampaignGate(baselinePath string) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignbench gate: %v\n", err)
		return 1
	}
	var base domainBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "campaignbench gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	want, wantHash := 0.0, ""
	for _, pt := range base.Points {
		if pt.Suite == "campaign" && pt.Domains == 1 {
			want, wantHash = pt.WallMS, pt.TraceHash
		}
	}
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "campaignbench gate: no campaign domains=1 baseline in %s\n", baselinePath)
		return 1
	}

	const tolerance = 1.10
	best, bestHash := 0.0, ""
	for rep := 0; rep < 5; rep++ {
		hash, _, wall, _ := runCampaignCell(base.Seed, base.Quick, 1)
		if ms := float64(wall) / 1e6; best == 0 || ms < best {
			best = ms
		}
		bestHash = hash
	}
	ratio := best / want
	status := "ok"
	if ratio > tolerance {
		status = "FAIL"
	}
	fmt.Printf("campaignbench gate: campaign domains=1 %8.1f ms vs baseline %8.1f (%.2fx) %s  trace %s\n",
		best, want, ratio, status, bestHash)
	if wantHash != "" && bestHash != wantHash {
		fmt.Fprintf(os.Stderr, "campaignbench gate: campaign fingerprint %s differs from recorded %s — the campaign simulation changed; recapture BENCH_campaign.json with -run campaignbench\n",
			bestHash, wantHash)
		return 1
	}
	if ratio > tolerance {
		fmt.Fprintln(os.Stderr, "campaignbench gate: single-domain campaign wall regression >10% — investigate before merging (profile with -run campaignbench -cpuprofile cpu.out)")
		return 1
	}
	fmt.Println("campaignbench gate: single-domain campaign within 10% of baseline")
	return 0
}
