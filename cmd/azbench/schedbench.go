package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/core/sched"
)

// The schedbench artifact measures the experiment scheduler: the same
// reduced full-protocol suite — every registered experiment — is run at
// several worker counts, sharding whole experiments across the pool exactly
// as `azbench -run all -workers N` does. The report embeds the measured
// serial baseline so each parallel row carries its own speedup, plus an
// anchor hash per width proving the parallel runs are bit-identical to the
// serial one.
//
// On a single-CPU host GOMAXPROCS serializes the goroutines, so speedup
// stays ~1 regardless of width; num_cpu is recorded so readers can judge
// the wall numbers. On an n-core machine the suite approaches min(n, width,
// suite parallelism) speedup.

type schedPoint struct {
	Workers     int     `json:"workers"`
	WallMS      float64 `json:"wall_ms"`
	BusyMS      float64 `json:"busy_ms"`
	MaxCellMS   float64 `json:"max_cell_ms"`
	Utilization float64 `json:"utilization"`
	Speedup     float64 `json:"speedup_vs_serial"`
	AnchorHash  string  `json:"anchor_hash"`
}

type schedBenchReport struct {
	Suite        string       `json:"suite"`
	CapturedAt   string       `json:"captured_at"`
	GoVersion    string       `json:"go_version"`
	NumCPU       int          `json:"num_cpu"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	Note         string       `json:"note"`
	Experiments  []string     `json:"experiments"`
	SerialWallMS float64      `json:"serial_wall_ms"`
	Points       []schedPoint `json:"points"`
}

// schedSuite is the reduced protocol per experiment: quick scale with the
// ladders shrunk further so a full pass stays in seconds. The overrides
// only touch Proto knobs, so the registry path is exactly what runs.
func schedSuite(seed uint64) []core.Proto {
	names := core.Names()
	out := make([]core.Proto, len(names))
	for i, name := range names {
		p := core.Proto{Seed: seed, Scale: core.QuickScale, Clients: []int{1, 8}}
		switch name {
		case "fig1":
			p.Runs = 2
			p.Size = 8 << 20
		case "fig2":
			p.Size = 1024
		case "table1":
			p.Clients = nil
			p.Runs = 8
		case "tcp", "queuedepth":
			p.Clients = nil
		case "propfilter":
			p.Clients = []int{1, 4}
		case "startup":
			p.Clients = nil
			p.Runs = 3
		case "replication":
			p.Clients = nil
			p.Size = 8 << 20
		case "fig2sizes":
			p.Clients = []int{4}
		}
		out[i] = p
	}
	return out
}

// anchorHash folds every anchor's exact float64 bits into one FNV-64a sum;
// equal hashes across widths mean the parallel suite reproduced the serial
// results bit-for-bit.
func anchorHash(results []core.Result) string {
	h := fnv.New64a()
	var b [8]byte
	for _, r := range results {
		for _, a := range r.Anchors() {
			h.Write([]byte(a.Name))
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(a.Measured))
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runSchedSuite runs the whole suite sharded over a width-wide pool and
// reports the pool's accounting plus the result hash.
func runSchedSuite(protos []core.Proto, width int) (sched.Stats, string) {
	names := core.Names()
	pool := sched.New(width)
	results := sched.Map(pool, len(protos), func(i int) core.Result {
		p := protos[i]
		p.Workers = 1
		e, _ := core.Lookup(names[i])
		return e.Run(p)
	})
	return pool.Stats(), anchorHash(results)
}

func runSchedBench(seed uint64, out string) {
	rep := schedBenchReport{
		Suite:      "sched",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "every registered experiment at reduced scale, whole experiments " +
			"sharded across the pool (as azbench -run all -workers N). speedup is " +
			"against the serial wall embedded in this report; identical anchor_hash " +
			"across rows certifies bit-identical results. Wall-clock speedup " +
			"requires num_cpu > 1; on one CPU the rows only certify determinism. " +
			"max_cell_ms is the slowest single cell — the critical-path floor no " +
			"pool width can beat.",
		Experiments: core.Names(),
	}
	protos := schedSuite(seed)

	// Warm one serial pass (page caches, allocator), then measure.
	runSchedSuite(protos, 1)

	widths := []int{1, 2, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp > 4 {
		widths = append(widths, gmp)
	}
	for _, w := range widths {
		stats, hash := runSchedSuite(protos, w)
		wallMS := float64(stats.Wall) / 1e6
		pt := schedPoint{
			Workers:     w,
			WallMS:      wallMS,
			BusyMS:      float64(stats.Busy) / 1e6,
			MaxCellMS:   float64(stats.MaxCell) / 1e6,
			Utilization: stats.Utilization(w),
			AnchorHash:  hash,
		}
		if w == 1 {
			rep.SerialWallMS = wallMS
		}
		if rep.SerialWallMS > 0 {
			pt.Speedup = rep.SerialWallMS / wallMS
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("schedbench: %2d workers: %8.1f ms wall  %.2fx vs serial  util %.2f  max cell %.1f ms  anchors %s\n",
			w, wallMS, pt.Speedup, pt.Utilization, pt.MaxCellMS, hash)
	}

	for _, pt := range rep.Points[1:] {
		if pt.AnchorHash != rep.Points[0].AnchorHash {
			fmt.Fprintf(os.Stderr, "schedbench: anchor hash diverged at %d workers: %s vs %s\n",
				pt.Workers, pt.AnchorHash, rep.Points[0].AnchorHash)
			os.Exit(1)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("schedbench: wrote %s\n", out)
}
