package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// The scalebench artifact measures the cost of a client, not the cost of the
// cloud: a ladder of closed-loop table-query cells (think → request → retry)
// at 1k/10k/100k/1M clients, run on the flat-actor path and — up to 100k —
// on the goroutine path for comparison. Both modes drive the identical
// simulation: same per-client random streams, same service pipeline, same
// retry policy, so the cross-mode assertions (ops, failures, server
// requests, events fired, final virtual time) check bit-identical traces,
// and the per-client memory numbers compare only the execution mechanism.
//
// The 1M rung is the paper's "what if the cell were three orders of
// magnitude wider" question: it runs flat-only, where a goroutine per
// client would stand up a million stacks.

// scaleOpsPerClient is the closed-loop depth: each client thinks, queries,
// and retries through this many operations.
const scaleOpsPerClient = 4

// scalePoint is one (rung, mode) measurement.
type scalePoint struct {
	Clients        int     `json:"clients"`
	Mode           string  `json:"mode"` // "flat" | "goroutine"
	OpsPerClient   int     `json:"ops_per_client"`
	Ops            uint64  `json:"ops_ok"`
	Failures       uint64  `json:"ops_failed"`
	ServerRequests uint64  `json:"server_requests"`
	VirtualSec     float64 `json:"virtual_sec"`
	WallMS         float64 `json:"wall_ms"`
	Events         uint64  `json:"events_fired"`
	EventsPerSec   float64 `json:"events_per_wall_sec"`
	PeakRSSMB      float64 `json:"peak_rss_mb"`
	PerClientBytes float64 `json:"per_client_bytes"`
	AllocsPerOp    float64 `json:"steady_allocs_per_op"`
}

type scaleReport struct {
	Suite      string       `json:"suite"`
	CapturedAt string       `json:"captured_at"`
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Note       string       `json:"note"`
	Ladder     []scalePoint `json:"ladder"`
	// FootprintRatio is goroutine-over-flat per-client bytes at the largest
	// rung both modes ran.
	FootprintRatio float64 `json:"footprint_ratio_goroutine_over_flat"`
}

// scaleHarness is the shared per-rung state: service handles, the key pools,
// the per-client stream root, and the run tallies both modes write into.
type scaleHarness struct {
	eng    *sim.Engine
	svc    *tablesvc.Service
	root   *simrand.RNG
	think  simrand.Dist // pre-boxed: a Dist draw per op must not allocate
	policy azure.RetryPolicy
	pks    []string
	rks    []string

	ok, failed uint64

	// Mid-run probe: at half the total operations, force a GC and snapshot
	// heap+stack in-use (per-client footprint) and Mallocs (the steady-state
	// allocation window runs from here to the end of the run).
	completed, half uint64
	midInuse        uint64
	mallocsAtProbe  uint64
	opsAtProbe      uint64
}

func (h *scaleHarness) opFinished(err error) {
	if err != nil {
		h.failed++
	} else {
		h.ok++
	}
	h.completed++
	if h.completed == h.half {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		h.midInuse = ms.HeapInuse + ms.StackInuse
		h.mallocsAtProbe = ms.Mallocs
		h.opsAtProbe = h.completed
	}
}

// scaleClient is one flat-mode client: the closed-loop think/request/retry
// machine compiled into a struct that lives in the rung's client slice. Its
// per-client heap is two cached closures and one forked random stream; the
// actor, the request state, and the counters are all in the struct itself.
type scaleClient struct {
	a   sim.Actor
	get tablesvc.GetFlat
	rng simrand.RNG // per-client stream: think draws and retry jitter, by value
	h   *scaleHarness

	pk, rk    string
	remaining int
	attempt   int
	inOp      bool
	backoff   time.Duration

	onWake func()                        // think/backoff sleeps land here
	onDone func(*tablesvc.Entity, error) // request completions land here
}

func (c *scaleClient) init(h *scaleHarness, i int) {
	c.h = h
	c.a.Bind(h.eng, "scale-client")
	c.rng = *h.root.ForkN("scale-client", i)
	c.onWake = c.wake
	c.onDone = c.opDone
	c.get.Init(h.svc, c.onDone)
	c.pk = h.pks[i%len(h.pks)]
	c.rk = h.rks[(i/len(h.pks))%len(h.rks)]
	c.remaining = scaleOpsPerClient
}

func (c *scaleClient) begin() { c.a.Go(c.onWake) }

// wake is every timer expiry: mid-operation it issues the (re)try; between
// operations it draws the next think time or finishes the client.
func (c *scaleClient) wake() {
	if c.inOp {
		c.get.Begin(&c.a, "scale", c.pk, c.rk)
		return
	}
	if c.remaining == 0 {
		c.a.Finish()
		return
	}
	c.remaining--
	c.attempt = 0
	c.backoff = c.h.policy.Backoff
	c.inOp = true
	c.a.Sleep(simrand.Duration(c.h.think, &c.rng), c.onWake)
}

// opDone replicates azure.RetryPolicy.Do's decision and draw order exactly:
// success or a non-retryable error ends the operation; a retryable failure
// with attempts left draws the jitter, sleeps the backoff, and reissues.
func (c *scaleClient) opDone(_ *tablesvc.Entity, err error) {
	p := &c.h.policy
	if err != nil && storerr.IsRetryable(err) {
		c.attempt++
		if c.attempt < p.MaxAttempts && c.backoff > 0 {
			wait := c.backoff
			if p.Jitter > 0 {
				wait = time.Duration(float64(wait) * (1 - p.Jitter*c.rng.Float64()))
			}
			c.backoff = time.Duration(float64(c.backoff) * p.Multiplier)
			if p.MaxBackoff > 0 && c.backoff > p.MaxBackoff {
				c.backoff = p.MaxBackoff
			}
			c.a.Sleep(wait, c.onWake)
			return
		}
	}
	c.inOp = false
	c.h.opFinished(err)
	c.wake()
}

// newScaleCloud builds the rung's cloud: a table service with a mild
// server-busy rate (so the retry machinery actually runs) and a pre-seeded
// 64×64 key grid of 1 kB entities.
func newScaleCloud(seed uint64) (*azure.Cloud, *scaleHarness) {
	return newScaleCloudOn(nil, seed)
}

// newScaleCloudOn is newScaleCloud on an existing engine (nil: a fresh
// standalone one). domainbench's sharded scale cell builds one shard cloud
// per domain member through this path; each shard is a self-contained world
// — its own cloud, service, key grid, and harness tallies — so shards only
// share an engine, never state.
func newScaleCloudOn(eng *sim.Engine, seed uint64) (*azure.Cloud, *scaleHarness) {
	ccfg := azure.Config{Seed: seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	ccfg.Table.ServerBusyProb = 0.01
	var cloud *azure.Cloud
	if eng == nil {
		cloud = azure.NewCloud(ccfg)
	} else {
		cloud = azure.NewCloudOn(eng, ccfg)
	}

	h := &scaleHarness{
		eng:    cloud.Engine,
		svc:    cloud.Table,
		root:   simrand.New(seed).Fork("scalebench"),
		think:  simrand.Exponential{Rate: 1 / 0.15}, // mean 150 ms think time
		policy: azure.DefaultRetryPolicy(),
	}
	h.policy.Jitter = 0.5

	cloud.Table.CreateTable("scale")
	for i := 0; i < 64; i++ {
		h.pks = append(h.pks, fmt.Sprintf("p%02d", i))
		h.rks = append(h.rks, fmt.Sprintf("r%02d", i))
	}
	for _, pk := range h.pks {
		for _, rk := range h.rks {
			cloud.Table.Backdoor("scale", &tablesvc.Entity{
				PartitionKey: pk, RowKey: rk, PadBytes: 1024,
			})
		}
	}
	return cloud, h
}

func memInuseBaseline() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse + ms.StackInuse
}

// runScaleRung runs one (clients, mode) cell and returns its measurement.
func runScaleRung(seed uint64, n int, flat bool) scalePoint {
	cloud, h := newScaleCloud(seed)
	h.half = uint64(n*scaleOpsPerClient) / 2

	mode := "goroutine"
	if flat {
		mode = "flat"
	}
	pt := scalePoint{Clients: n, Mode: mode, OpsPerClient: scaleOpsPerClient}

	var baseline uint64
	start := time.Now()
	if flat {
		baseline = memInuseBaseline()
		clients := make([]scaleClient, n)
		for i := range clients {
			clients[i].init(h, i)
		}
		for i := range clients {
			clients[i].begin()
		}
	} else {
		// The goroutine comparator is the repo's standing client idiom: an
		// azure.Client per VM, a spawned process per client, and the real
		// RetryPolicy.Do around GetEntity. The fleet exists before the
		// baseline snapshot so per-client bytes cover only the client side.
		vms := cloud.Controller.ReadyFleet(n, fabric.Worker, fabric.Small)
		baseline = memInuseBaseline()
		for i := 0; i < n; i++ {
			cl := cloud.NewClient(vms[i], i)
			cs := h.root.ForkN("scale-client", i)
			policy := h.policy
			policy.Rand = cs
			pk := h.pks[i%len(h.pks)]
			rk := h.rks[(i/len(h.pks))%len(h.rks)]
			cloud.Engine.Spawn("scale-client", func(p *sim.Proc) {
				for op := 0; op < scaleOpsPerClient; op++ {
					p.Sleep(simrand.Duration(h.think, cs))
					err := policy.Do(p, func() error {
						_, err := cl.GetEntity(p, "scale", pk, rk)
						return err
					})
					h.opFinished(err)
				}
			})
		}
	}
	cloud.Engine.Run()
	wall := time.Since(start)

	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	pt.Ops = h.ok
	pt.Failures = h.failed
	pt.ServerRequests = cloud.Ops.Total()
	pt.VirtualSec = cloud.Engine.Now().Seconds()
	pt.WallMS = float64(wall) / 1e6
	pt.Events = cloud.Engine.EventsFired()
	if wall > 0 {
		pt.EventsPerSec = float64(pt.Events) / wall.Seconds()
	}
	pt.PeakRSSMB = peakRSSMB()
	if h.midInuse > baseline && n > 0 {
		pt.PerClientBytes = float64(h.midInuse-baseline) / float64(n)
	}
	if window := h.completed - h.opsAtProbe; window > 0 && h.mallocsAtProbe > 0 {
		pt.AllocsPerOp = float64(end.Mallocs-h.mallocsAtProbe) / float64(window)
	}
	return pt
}

// peakRSSMB reads the process resident-set high-water mark (VmHWM) from
// /proc/self/status; 0 when unavailable.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// sameTrace checks the cross-mode equivalence axes: everything the virtual
// execution determines must match exactly between flat and goroutine runs.
func sameTrace(a, b scalePoint) bool {
	return a.Ops == b.Ops && a.Failures == b.Failures &&
		a.ServerRequests == b.ServerRequests &&
		a.Events == b.Events && a.VirtualSec == b.VirtualSec
}

func runScaleBench(seed uint64, quick bool, out string) int {
	rungs := []int{1_000, 10_000, 100_000, 1_000_000}
	maxGoroutine := 100_000
	if quick {
		rungs = []int{1_000, 10_000}
		maxGoroutine = 10_000
	}
	// The assertion rung: the largest with both modes. The 10x footprint
	// contract is pinned at 100k (full runs); quick/smoke runs check a
	// looser 5x at 10k, where GC granularity is coarser relative to n.
	assertRung := 100_000
	minRatio := 10.0
	if quick {
		assertRung = 10_000
		minRatio = 5.0
	}

	rep := scaleReport{
		Suite:      "scale",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Note: "closed-loop table-query cells (exp(150ms) think, 4 ops/client, default retry " +
			"policy with 0.5 jitter, 1% server-busy) at 1k/10k/100k/1M clients. mode=flat runs " +
			"clients as kernel-driven flat actors; mode=goroutine is the process-per-client " +
			"idiom, run up to 100k for comparison. Both modes consume identical random streams, " +
			"so ops/failures/server_requests/events_fired/virtual_sec match exactly — the " +
			"per-client memory numbers isolate the execution mechanism. per_client_bytes is " +
			"(HeapInuse+StackInuse at a mid-run GC probe − post-setup baseline)/clients; " +
			"steady_allocs_per_op counts Mallocs over the second half of the run's operations.",
	}

	fail := false
	for _, n := range rungs {
		flat := runScaleRung(seed, n, true)
		rep.Ladder = append(rep.Ladder, flat)
		fmt.Printf("scalebench: %8d clients flat      %8.0f ms wall  %9d events  %11.0f ev/s  %6.0f B/client  %5.3f allocs/op  RSS %.0f MB\n",
			n, flat.WallMS, flat.Events, flat.EventsPerSec, flat.PerClientBytes, flat.AllocsPerOp, flat.PeakRSSMB)

		if n > maxGoroutine {
			continue
		}
		goro := runScaleRung(seed, n, false)
		rep.Ladder = append(rep.Ladder, goro)
		fmt.Printf("scalebench: %8d clients goroutine %8.0f ms wall  %9d events  %11.0f ev/s  %6.0f B/client\n",
			n, goro.WallMS, goro.Events, goro.EventsPerSec, goro.PerClientBytes)

		if !sameTrace(flat, goro) {
			fmt.Fprintf(os.Stderr, "scalebench: FAIL %d clients: flat and goroutine traces diverge:\n"+
				"  flat: ok=%d failed=%d server=%d events=%d virtual=%.9f\n"+
				"  goro: ok=%d failed=%d server=%d events=%d virtual=%.9f\n",
				n, flat.Ops, flat.Failures, flat.ServerRequests, flat.Events, flat.VirtualSec,
				goro.Ops, goro.Failures, goro.ServerRequests, goro.Events, goro.VirtualSec)
			fail = true
		}

		if n == assertRung {
			if flat.PerClientBytes > 0 {
				rep.FootprintRatio = goro.PerClientBytes / flat.PerClientBytes
			}
			fmt.Printf("scalebench: %8d clients footprint ratio goroutine/flat = %.1fx\n", n, rep.FootprintRatio)
			if raceEnabled {
				fmt.Println("scalebench: race detector active — memory gates skipped (instrumented allocations)")
			} else {
				if rep.FootprintRatio < minRatio {
					fmt.Fprintf(os.Stderr, "scalebench: FAIL %d clients: per-client footprint ratio %.1fx < %.0fx (flat %0.f B, goroutine %.0f B)\n",
						n, rep.FootprintRatio, minRatio, flat.PerClientBytes, goro.PerClientBytes)
					fail = true
				}
				if flat.AllocsPerOp > 0.5 {
					fmt.Fprintf(os.Stderr, "scalebench: FAIL %d clients: flat steady state allocates %.3f/op, want ~0 (event path must be allocation-free)\n",
						n, flat.AllocsPerOp)
					fail = true
				}
				if quick {
					// Smoke RSS budget: the 10k rung plus fixed cloud setup
					// must stay far below any leak-shaped blowup.
					if budget := 2048.0; flat.PeakRSSMB > budget {
						fmt.Fprintf(os.Stderr, "scalebench: FAIL %d clients: peak RSS %.0f MB over %v MB smoke budget\n",
							n, flat.PeakRSSMB, budget)
						fail = true
					}
				}
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("scalebench: wrote %s\n", out)
	if fail {
		return 1
	}
	return 0
}
