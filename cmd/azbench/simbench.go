package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// The simbench artifact measures the kernel itself — the event queue, the
// cancel/reschedule paths, and process spawn/switch cost that every
// experiment bottoms out in — and writes BENCH_sim.json so kernel performance
// is tracked across PRs. Each workload is deterministic (fixed arithmetic
// churn patterns, no wall-clock dependence inside the simulation), so two
// captures differ only in timing, never in the simulated work done.
//
// seedSimNs are the same workloads captured on the pre-overhaul kernel
// (container/heap binary heap with eager O(log n) Cancel removal, one fresh
// goroutine + channel pair per spawned process) with this exact harness on
// the reference machine, taking the minimum of three full-scale repetitions.
// The pre-overhaul capture swaps simbench_idiom.go for the legacy
// cancel/recycle/schedule spelling; everything else is byte-identical.
var seedSimNs = map[string]float64{
	"cancel-churn/1024":  716.7,
	"cancel-churn/8192":  828.6,
	"resched-churn/1024": 738.8,
	"spawn-churn":        677.7,
	"sleep-ladder":       671.8,
	"mixed":              2167.2,
}

// seedSimAllocs are the matching pre-overhaul allocations per op.
var seedSimAllocs = map[string]float64{
	"cancel-churn/1024":  2.0,
	"cancel-churn/8192":  2.0,
	"resched-churn/1024": 2.0,
	"spawn-churn":        6.03,
	"sleep-ladder":       4.00,
	"mixed":              20.58,
}

// seedFig1CellMS is the pre-overhaul wall time of the 192-client cell, and
// seedFig1GoroutinesHW the goroutine high-water mark the in-sim sampler saw
// on that kernel (one fresh goroutine per spawned process, none reused).
var (
	seedFig1CellMS       float64 = 383.8
	seedFig1GoroutinesHW int     = 963
)

// simPoint is one kernel microbenchmark measurement.
type simPoint struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	SeedNsOp    float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocs  float64 `json:"seed_allocs_per_op,omitempty"`
	Speedup     float64 `json:"speedup_vs_seed,omitempty"`
}

// fig1CellStats is the observability record for the fig1 192-client cell:
// the goroutine high-water mark before/after process reuse, and a guard
// against worker-pool leaks (workers_peak should track concurrent processes,
// not total spawns). goroutines_highwater is sampled by an in-sim daemon, so
// pre- and post-overhaul kernels measure it identically.
type fig1CellStats struct {
	Clients             int     `json:"clients"`
	RequestsPerVM       int     `json:"requests_per_vm"`
	WallMS              float64 `json:"wall_ms"`
	SeedWallMS          float64 `json:"seed_wall_ms,omitempty"`
	Speedup             float64 `json:"speedup_vs_seed,omitempty"`
	SpawnedProcs        uint64  `json:"spawned_procs"`
	GoroutinesHighwater int     `json:"goroutines_highwater"`
	SeedGoroutinesHW    int     `json:"seed_goroutines_highwater,omitempty"`
	WorkersCreated      uint64  `json:"workers_created_goroutines"`
	WorkersReused       uint64  `json:"workers_reused"`
	WorkersPeak         int     `json:"workers_peak"`
}

type simBenchReport struct {
	Suite      string        `json:"suite"`
	CapturedAt string        `json:"captured_at"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note"`
	Kernel     []simPoint    `json:"kernel"`
	Fig1Cell   fig1CellStats `json:"fig1_cell"`
}

const churnTick = time.Microsecond

// cancelChurn is the netsim remove pattern distilled: per fired completion, a
// flow removal cancels its pending completion somewhere in the window and
// schedules the successor flow's, and the bandwidth handed back moves the
// completions of the seven flows that inherit it. One callback closure per
// slot, created once and reused across reschedules, exactly as netsim caches
// one onFire per flow.
func cancelChurn(pop, iters int) {
	const cancels = 1
	eng := sim.NewEngine()
	evs := make([]*sim.Event, pop)
	fns := make([]func(), pop)
	offs := churnOffsets(pop)
	refill := make([]int, 0, 16)
	for s := range fns {
		s := s
		fns[s] = func() {
			eng.Recycle(evs[s]) // fired event back to the pool, as netsim's onComplete does
			evs[s] = nil
			refill = append(refill, s)
		}
	}
	for s := range evs {
		evs[s] = eng.Schedule(time.Duration(s+1)*churnTick, fns[s])
	}
	mask := len(offs) - 1
	for i := 0; i < iters; i++ {
		for j := 0; j < 8; j++ {
			k := i*8 + j
			s := k & (pop - 1)
			at := eng.Now() + offs[k&mask]
			switch {
			case evs[s] == nil:
				evs[s] = eng.Schedule(at, fns[s])
			case j < cancels:
				cancelReplace(eng, evs[s])
				evs[s] = eng.Schedule(at, fns[s])
			default:
				evs[s] = moveEvent(eng, evs[s], at, fns[s])
			}
		}
		eng.Step()
		for _, s := range refill {
			evs[s] = eng.Schedule(eng.Now()+offs[(i+s)&mask], fns[s])
		}
		refill = refill[:0]
	}
}

// churnOffsets is a fixed Knuth-hash table of window offsets: pseudorandom
// disorder for the heap with no hot-loop division and the identical event
// sequence in every capture.
func churnOffsets(pop int) []time.Duration {
	offs := make([]time.Duration, 4096)
	for i := range offs {
		offs[i] = churnTick + time.Duration(uint32(i)*2654435761%uint32(pop))*churnTick
	}
	return offs
}

// reschedChurn is the netsim move idiom: rate changes push the completion
// times of still-pending events around the window, eight moves per fired
// event, spread pseudorandomly (fixed Knuth hash table, so every capture
// runs the identical event sequence).
func reschedChurn(pop, iters int) {
	eng := sim.NewEngine()
	evs := make([]*sim.Event, pop)
	fns := make([]func(), pop)
	offs := churnOffsets(pop)
	refill := make([]int, 0, 16)
	for s := range fns {
		s := s
		fns[s] = func() {
			eng.Recycle(evs[s])
			evs[s] = nil
			refill = append(refill, s)
		}
	}
	for s := range evs {
		evs[s] = eng.Schedule(time.Duration(s+1)*churnTick, fns[s])
	}
	mask := len(offs) - 1
	for i := 0; i < iters; i++ {
		for j := 0; j < 8; j++ {
			k := i*8 + j
			s := k & (pop - 1)
			if evs[s] != nil {
				evs[s] = moveEvent(eng, evs[s], eng.Now()+offs[k&mask], fns[s])
			} else {
				evs[s] = eng.Schedule(eng.Now()+offs[k&mask], fns[s])
			}
		}
		eng.Step()
		for _, s := range refill {
			evs[s] = eng.Schedule(eng.Now()+offs[(i+s)&mask], fns[s])
		}
		refill = refill[:0]
	}
}

// spawnChurn measures spawn/finish cost: a driver process spawns empty
// children in batches of 64 and yields so they run — the closed-loop
// client-pool pattern (one process per request) distilled.
func spawnChurn(iters int) {
	eng := sim.NewEngine()
	nobody := func(p *sim.Proc) {}
	spawned := 0
	eng.Spawn("driver", func(p *sim.Proc) {
		for spawned < iters {
			n := 64
			if left := iters - spawned; left < n {
				n = left
			}
			for j := 0; j < n; j++ {
				eng.Spawn("w", nobody)
				spawned++
			}
			p.Yield()
		}
	})
	eng.Run()
}

// sleepLadder measures the suspend/resume handoff: 64 processes sleeping
// staggered durations, iters wakeups in total.
func sleepLadder(iters int) {
	eng := sim.NewEngine()
	const lanes = 64
	done := 0
	for k := 0; k < lanes; k++ {
		d := time.Duration(k%7+1) * time.Millisecond
		eng.Spawn("sleeper", func(p *sim.Proc) {
			for done < iters {
				done++
				p.Sleep(d)
			}
		})
	}
	eng.Run()
}

// mixedWorkload runs queue producers/consumers with timeouts plus resource
// contention — the storage-station shape, including the timer-cancel path
// that every successful GetTimeout exercises.
func mixedWorkload(iters int) {
	eng := sim.NewEngine()
	q := sim.NewQueue[int]()
	r := sim.NewResource(eng, "svc", 4)
	produced, consumed := 0, 0
	for k := 0; k < 8; k++ {
		eng.Spawn("prod", func(p *sim.Proc) {
			for produced < iters {
				produced++
				r.Use(p, 1, func() { p.Sleep(200 * time.Microsecond) })
				q.Put(1)
			}
		})
	}
	for k := 0; k < 8; k++ {
		eng.Spawn("cons", func(p *sim.Proc) {
			for consumed < iters {
				if _, ok := q.GetTimeout(p, time.Millisecond); ok {
					consumed++
				}
			}
		})
	}
	eng.Run()
}

// mailChurn is the cross-domain mail path distilled: four domains, each
// running one process that mails eight messages per window to the other
// domains, then sleeps to the next boundary. Every iteration exercises
// Send (gather), flushMail (pooled batch assembly) and deliverBatch
// (pooled slice recycling); the counters on the receiving side make the
// deliveries real work the compiler cannot elide. Width is fixed at four
// so GOMAXPROCS=1 captures stay comparable — the suite prices the mail
// machinery, not the parallelism.
func mailChurn(iters int) {
	const width, perRound = 4, 8
	g := sim.NewDomains(width)
	g.SetWindow(100 * time.Microsecond)
	received := make([]int, width)
	rounds := iters / (width * perRound)
	if rounds < 1 {
		rounds = 1
	}
	for d := 0; d < width; d++ {
		d := d
		eng := g.Domain(d)
		eng.Spawn("mailer", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				for j := 0; j < perRound; j++ {
					dst := (d + j + 1) % width
					eng.Send(dst, func() { received[dst]++ })
				}
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	g.Run()
	want := width * perRound * rounds
	total := 0
	for _, n := range received {
		total += n
	}
	if total != want {
		panic(fmt.Sprintf("simbench: mail-churn delivered %d of %d", total, want))
	}
}

// fig1Cell192 runs one closed-loop fig1-style cell: 192 clients each issuing
// sequential ParallelGet requests against one shared blob, the workload whose
// per-request process fan-out motivated worker reuse. It returns the wall
// time and the engine's process/worker accounting.
func fig1Cell192(seed uint64, clients, requests int) fig1CellStats {
	ccfg := azure.Config{Seed: seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	cloud.Blob.CreateContainer("bench")
	size := 32 * netsim.MB

	staged := false
	stager := cloud.NewClient(cloud.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0], 1_000_000)
	cloud.Engine.Spawn("stage", func(p *sim.Proc) {
		if err := stager.PutBlob(p, "bench", "shared", size, true); err != nil {
			panic(err)
		}
		staged = true
	})
	cloud.Engine.Run()
	if !staged {
		panic("simbench: staging failed")
	}

	// Sample the process goroutine high-water from inside the simulation: a
	// daemon that polls every 10ms of simulated time runs identically on any
	// kernel, so pre/post-overhaul captures are directly comparable.
	peakG := 0
	cloud.Engine.SpawnDaemon("gsampler", func(p *sim.Proc) {
		for {
			if n := runtime.NumGoroutine(); n > peakG {
				peakG = n
			}
			p.Sleep(10 * time.Millisecond)
		}
	})

	vms := cloud.Controller.ReadyFleet(clients, fabric.Worker, fabric.Small)
	for i := 0; i < clients; i++ {
		cl := cloud.NewClient(vms[i], i)
		cloud.Engine.Spawn(fmt.Sprintf("dl%d", i), func(p *sim.Proc) {
			for r := 0; r < requests; r++ {
				if _, err := cl.ParallelGet(p, "bench", "shared", 4); err != nil {
					panic(err)
				}
			}
		})
	}
	start := time.Now()
	cloud.Engine.Run()
	st := fig1CellStats{
		Clients:             clients,
		RequestsPerVM:       requests,
		WallMS:              float64(time.Since(start)) / 1e6,
		GoroutinesHighwater: peakG,
	}
	fillCellStats(&st, cloud.Engine)
	return st
}

// timeWorkload runs fn once for warmup at a tenth of the iterations, then
// times a full run, reporting ns and allocations per op.
func timeWorkload(iters int, fn func(int)) (nsPerOp, allocsPerOp float64) {
	fn(iters/10 + 1)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn(iters)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// simSuites is the kernel microbenchmark table, shared by the full capture
// and the regression gate. Iters are full-scale; quick runs divide by 10.
var simSuites = []struct {
	name  string
	iters int
	churn bool // kernel-churn suite: gated against >10% regression
	run   func(int)
}{
	{"cancel-churn/1024", 200000, true, func(n int) { cancelChurn(1024, n) }},
	{"cancel-churn/8192", 50000, true, func(n int) { cancelChurn(8192, n) }},
	{"resched-churn/1024", 200000, true, func(n int) { reschedChurn(1024, n) }},
	{"spawn-churn", 300000, true, spawnChurn},
	{"mail-churn", 400000, true, mailChurn},
	{"sleep-ladder", 500000, false, sleepLadder},
	{"mixed", 100000, false, mixedWorkload},
}

func runSimBench(seed uint64, quick bool, out string) int {
	rep := simBenchReport{
		Suite:      "sim",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Note: "kernel microbenchmarks: cancel-churn retires the soonest pending completion and " +
			"schedules a replacement (netsim remove idiom); resched-churn moves eight pending " +
			"completions per fired event (netsim rate-change idiom); spawn-churn is the " +
			"closed-loop one-process-per-request pattern, where the remaining steady-state " +
			"allocation is the Proc descriptor itself (events, channels, goroutines and " +
			"closures are all reused); allocs_per_op from MemStats. seed_* fields were " +
			"captured with this harness on the pre-overhaul kernel (container/heap + eager " +
			"cancel + goroutine-per-spawn). fig1_cell records the goroutine high-water mark: " +
			"seed_goroutines_highwater is what the pre-reuse kernel stood up, workers_peak " +
			"is the pooled kernel's high-water mark.",
	}

	scale := 1
	if quick {
		scale = 10
	}
	for _, s := range simSuites {
		ns, allocs := timeWorkload(s.iters/scale, s.run)
		pt := simPoint{Name: s.name, Iters: s.iters / scale, NsPerOp: ns, AllocsPerOp: allocs}
		if base := seedSimNs[s.name]; base > 0 {
			pt.SeedNsOp = base
			pt.SeedAllocs = seedSimAllocs[s.name]
			pt.Speedup = base / ns
		}
		rep.Kernel = append(rep.Kernel, pt)
		fmt.Printf("simbench: %-20s %10.1f ns/op  %6.2f allocs/op  (%.2fx vs seed)\n",
			s.name, ns, allocs, pt.Speedup)
	}

	cellClients, cellReqs := 192, 8
	if quick {
		cellClients, cellReqs = 48, 2
	}
	fig1Cell192(seed, cellClients/4, 1) // warmup
	rep.Fig1Cell = fig1Cell192(seed, cellClients, cellReqs)
	if cellClients == 192 {
		rep.Fig1Cell.SeedWallMS = seedFig1CellMS
		rep.Fig1Cell.Speedup = seedFig1CellMS / rep.Fig1Cell.WallMS
		rep.Fig1Cell.SeedGoroutinesHW = seedFig1GoroutinesHW
	}
	fmt.Printf("simbench: fig1 cell %d clients x %d reqs: %.1f ms wall, %d procs spawned, goroutine high-water %d, %d worker goroutines (peak %d, reused %d)\n",
		rep.Fig1Cell.Clients, rep.Fig1Cell.RequestsPerVM, rep.Fig1Cell.WallMS,
		rep.Fig1Cell.SpawnedProcs, rep.Fig1Cell.GoroutinesHighwater,
		rep.Fig1Cell.WorkersCreated, rep.Fig1Cell.WorkersPeak, rep.Fig1Cell.WorkersReused)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("simbench: wrote %s\n", out)
	return 0
}

// runSimGate is the benchstat-style regression step: re-run each kernel-churn
// suite at reduced scale (minimum over five repetitions, to shave scheduler
// noise) and fail if any is more than 10% slower than the ns_per_op recorded
// in the checked-in BENCH_sim.json.
func runSimGate(baselinePath string) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench gate: %v\n", err)
		return 1
	}
	var base simBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "simbench gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	baseNs := make(map[string]float64, len(base.Kernel))
	for _, pt := range base.Kernel {
		baseNs[pt.Name] = pt.NsPerOp
	}

	const tolerance = 1.10
	failed := false
	for _, s := range simSuites {
		if !s.churn {
			continue
		}
		want, ok := baseNs[s.name]
		if !ok || want <= 0 {
			fmt.Printf("simbench gate: %-20s SKIP (no baseline in %s)\n", s.name, baselinePath)
			continue
		}
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			ns, _ := timeWorkload(s.iters/2, s.run)
			if best == 0 || ns < best {
				best = ns
			}
		}
		ratio := best / want
		status := "ok"
		if ratio > tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("simbench gate: %-20s %10.1f ns/op vs baseline %10.1f (%.2fx) %s\n",
			s.name, best, want, ratio, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "simbench gate: kernel churn regression >10% — investigate before merging (profile with -run simbench -cpuprofile cpu.out)")
		return 1
	}
	fmt.Println("simbench gate: all kernel churn benchmarks within 10% of baseline")
	return 0
}
