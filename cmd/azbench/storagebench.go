package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/sim"
	"azureobs/internal/storage/blobsvc"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// The storagebench artifact measures the reqpath pipeline path — the host
// cost of driving closed-loop storage ops through admission, station,
// transfer and hook stages — and writes BENCH_storage.json so the pipeline's
// overhead can be tracked across PRs.
//
// baseNsPerOp holds the same measurements captured with this harness on the
// reference machine when the pipeline was introduced; they ride along in the
// JSON so every later capture carries its own point of comparison.
var baseNsPerOp = map[string]float64{
	"blob.Get":                 1918,
	"blob.Get+faults":          1762,
	"table.Insert":             2852,
	"table.Query":              1003,
	"queue.Add+Receive+Delete": 3312,
	"sql.Select":               896,
}

type storagePoint struct {
	Service   string  `json:"service"`
	Op        string  `json:"op"`
	Ops       int     `json:"ops"`
	NsPerOp   float64 `json:"host_ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	SimMeanMS float64 `json:"sim_mean_ms"`
	ErrRate   float64 `json:"err_rate"`
	BaseNsOp  float64 `json:"base_ns_per_op,omitempty"`
	Speedup   float64 `json:"speedup_vs_base,omitempty"`
}

type storageBenchReport struct {
	Suite      string         `json:"suite"`
	CapturedAt string         `json:"captured_at"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	Note       string         `json:"note"`
	Points     []storagePoint `json:"points"`
}

// storageOp is one closed-loop measurement: a fresh cloud, n sequential
// requests from a single client proc, wall-clocked around the engine run.
type storageOp struct {
	service string
	op      string // the Cloud.Ops key the sim-latency column reads
	label   string // report row name (op plus any variant suffix)
	faults  reqpath.FaultConfig
	setup   func(c *azure.Cloud)
	body    func(c *azure.Cloud, p *sim.Proc, i int) error
}

// blobGet holds one session across iterations: a session's fault and
// latency streams are forked deterministically from its id, so a fresh
// session per request would replay the same draws every time.
func blobGet(faults reqpath.FaultConfig, label string) storageOp {
	var sess *blobsvc.Session
	return storageOp{
		service: "blob", op: "blob.Get", label: label, faults: faults,
		setup: func(c *azure.Cloud) {
			c.Blob.Seed("d", "b", 1<<20)
			sess = c.Blob.NewSession(0)
		},
		body: func(c *azure.Cloud, p *sim.Proc, i int) error {
			_, err := sess.Get(p, "d", "b")
			return err
		},
	}
}

func storageOps() []storageOp {
	return []storageOp{
		blobGet(reqpath.FaultConfig{}, "blob.Get"),
		blobGet(reqpath.FaultConfig{ConnFailProb: 0.05, ServerBusyProb: 0.02}, "blob.Get+faults"),
		{
			service: "table", op: "table.Insert", label: "table.Insert",
			setup: func(c *azure.Cloud) { c.Table.CreateTable("t") },
			body: func(c *azure.Cloud, p *sim.Proc, i int) error {
				return c.Table.Insert(p, "t", tablesvc.PaddedEntity("pk", fmt.Sprintf("rk-%08d", i), 1024))
			},
		},
		{
			service: "table", op: "table.Query", label: "table.Query",
			setup: func(c *azure.Cloud) {
				c.Table.CreateTable("t")
				c.Table.Backdoor("t", tablesvc.PaddedEntity("pk", "rk", 1024))
			},
			body: func(c *azure.Cloud, p *sim.Proc, i int) error {
				_, err := c.Table.Get(p, "t", "pk", "rk")
				return err
			},
		},
		{
			service: "queue", op: "queue.Add", label: "queue.Add+Receive+Delete",
			setup: func(c *azure.Cloud) { c.Queue.CreateQueue("q") },
			body: func(c *azure.Cloud, p *sim.Proc, i int) error {
				q, _ := c.Queue.GetQueue("q")
				if _, err := c.Queue.Add(p, q, "m", 512); err != nil {
					return err
				}
				_, rcpt, ok, err := c.Queue.Receive(p, q, time.Hour)
				if err != nil || !ok {
					return err
				}
				return c.Queue.Delete(p, q, rcpt)
			},
		},
		sqlSelect(),
	}
}

// sqlSelect reuses one connection across iterations (the per-op row should
// price a query, not a handshake), opening it lazily on the first call.
func sqlSelect() storageOp {
	var conn *sqlsvc.Conn
	return storageOp{
		service: "sql", op: "sql.Select", label: "sql.Select",
		setup: func(c *azure.Cloud) {
			conn = nil
			c.SQL.CreateDatabase("db", 0)
			c.SQL.Seed("db", "t", "k", 1024)
		},
		body: func(c *azure.Cloud, p *sim.Proc, i int) error {
			if conn == nil {
				var err error
				if conn, err = c.SQL.Open(p, "db", 0); err != nil {
					conn = nil
					return err
				}
			}
			_, err := conn.Select(p, "t", "k")
			return err
		},
	}
}

// measureStorageOp runs n closed-loop iterations of op and reports host
// ns/op, the simulated mean latency seen by the pipeline hooks, and the
// fraction of requests that failed (all storerr — under fault injection
// that is the injected rate).
func measureStorageOp(op storageOp, seed uint64, n int) storagePoint {
	c := azure.NewCloud(azure.Config{Seed: seed, Faults: op.faults})
	op.setup(c)
	errs := 0
	c.Engine.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := op.body(c, p, i); err != nil {
				if !storerr.IsRetryable(err) {
					panic(err)
				}
				errs++
			}
		}
	})
	start := time.Now()
	c.Engine.Run()
	ns := float64(time.Since(start)) / float64(n)
	pt := storagePoint{
		Service:   op.service,
		Op:        op.label,
		Ops:       n,
		NsPerOp:   ns,
		OpsPerSec: 1e9 / ns,
		ErrRate:   float64(errs) / float64(n),
	}
	if st := c.Ops.Get(op.op); st != nil {
		pt.SimMeanMS = st.Latency.Mean() * 1e3
	}
	if base := baseNsPerOp[op.label]; base > 0 {
		pt.BaseNsOp = base
		pt.Speedup = base / ns
	}
	return pt
}

func runStorageBench(seed uint64, quick bool, out string) {
	rep := storageBenchReport{
		Suite:      "storage-reqpath",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Note: "closed-loop storage ops through the reqpath pipeline (admission faults, " +
			"request latency, station contention, transfer, hooks) on a fresh cloud per row; " +
			"host_ns_per_op is wall time per simulated request, sim_mean_ms the latency the " +
			"pipeline hooks observed. base_* fields were captured with this harness when the " +
			"pipeline was introduced.",
	}
	n := 20000
	if quick {
		n = 2000
	}
	for _, op := range storageOps() {
		pt := measureStorageOp(op, seed, n)
		rep.Points = append(rep.Points, pt)
		fmt.Printf("storagebench: %-26s %9.0f ns/op  sim %6.2f ms  err %.3f\n",
			pt.Op, pt.NsPerOp, pt.SimMeanMS, pt.ErrRate)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("storagebench: wrote %s\n", out)
}
