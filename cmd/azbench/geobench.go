package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/geo"
	"azureobs/internal/sim"
)

// The geobench artifact measures the multi-region world: the same geo cells
// executed at a ladder of sim.Domains widths (one domain per region is the
// natural partition), with the trace hash asserted identical at every rung —
// exactly the domainbench discipline applied to the cross-DC layer. Two
// suites cover the two execution shapes:
//
//   - fig8geo-cell: the full three-scenario fig8geo experiment (lag, ryw,
//     kill) at validation scale, hashed over results and anchors;
//   - geo-pop: one larger single world with per-read recording off — the
//     population fast path — hashed over its report, event count and final
//     virtual time.
//
// On a single-CPU host GOMAXPROCS serializes the domain goroutines, so
// speedup stays ~1 and the rows certify determinism; on an n-core machine
// the ladder approaches min(n, regions).

// geoFig8Config is the fig8geo-cell suite config: validation scale (full)
// or the quick reduced scale.
func geoFig8Config(seed uint64, quick bool) core.Fig8GeoConfig {
	clients, horizon := 48, 120*time.Second
	if quick {
		clients, horizon = 16, 60*time.Second
	}
	return core.Fig8GeoConfig{
		Proto:            core.Proto{Seed: seed, Workers: 1},
		Regions:          4,
		ClientsPerRegion: clients,
		HotNames:         16,
		Horizon:          horizon,
	}
}

// runGeoFig8 executes the fig8geo-cell suite at one domain count.
func runGeoFig8(seed uint64, quick bool, domains int) (string, *sim.DomainAccum, time.Duration) {
	cfg := geoFig8Config(seed, quick)
	var acc sim.DomainAccum
	cfg.Domains = domains
	cfg.DomainStats = &acc
	start := time.Now()
	res := core.RunFig8Geo(cfg)
	wall := time.Since(start)
	// Hash the dereferenced reports: %+v renders nested pointer fields as
	// addresses, which would fold allocator state into the trace hash.
	hash := domainTraceHash(res.Regions, *res.Lag, *res.RYW, *res.Kill, res.Anchors())
	return hash, &acc, wall
}

// runGeoPop executes the geo-pop suite: one world, bigger populations, the
// per-read consistency log and lag samples off so the hash covers only the
// aggregate report.
func runGeoPop(seed uint64, quick bool, domains int) (string, *sim.DomainAccum, time.Duration, uint64) {
	cfg := geo.DefaultConfig()
	cfg.Seed = seed + 17
	cfg.Domains = domains
	cfg.ClientsPerRegion = 256
	cfg.Horizon = 120 * time.Second
	if quick {
		cfg.ClientsPerRegion = 64
		cfg.Horizon = 45 * time.Second
	}
	w := geo.NewWorld(cfg)
	start := time.Now()
	w.Run()
	wall := time.Since(start)
	rep := w.Report()
	events := w.EventsFired()
	hash := domainTraceHash(rep, events, w.Now().Seconds())
	var acc sim.DomainAccum
	acc.Add(w.Stats())
	return hash, &acc, wall, events
}

// geoLadder is the domain-count ladder: {1,2,4} full (four regions means
// four is the widest useful shard), {1,2} quick.
func geoLadder(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

func runGeoBench(seed uint64, quick bool, out string) int {
	rep := domainBenchReport{
		Suite:      "geo",
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Quick:      quick,
		Note: "multi-region geo ladder: each suite's cell re-run at domains ∈ {1,2,4} " +
			"({1,2} quick) over a four-region world, with identical trace_hash required " +
			"at every rung. fig8geo-cell runs the full three-scenario experiment " +
			"(replication lag + flash crowd, read-your-writes, primary region kill) at " +
			"validation scale; geo-pop runs one larger world on the population fast " +
			"path with per-read recording off. speedup_vs_one is against the suite's " +
			"domains=1 wall. Wall-clock speedup requires num_cpu > 1; on one CPU the " +
			"ladder only certifies determinism.",
	}

	fail := false
	addSuite := func(name string, run func(d int) domainPoint) {
		var pts []domainPoint
		baseWall := 0.0
		for _, d := range geoLadder(quick) {
			pt := run(d)
			if d == 1 {
				baseWall = pt.WallMS
			}
			if baseWall > 0 {
				pt.Speedup = baseWall / pt.WallMS
				pt.Efficiency = pt.Speedup / float64(d)
			}
			pts = append(pts, pt)
			fmt.Printf("geobench: %-12s domains=%d %8.1f ms wall  %.2fx vs d=1  util %.2f  rounds %d  trace %s\n",
				name, d, pt.WallMS, pt.Speedup, pt.Utilization, pt.Rounds, pt.TraceHash)
		}
		for _, pt := range pts[1:] {
			if pt.TraceHash != pts[0].TraceHash {
				fmt.Fprintf(os.Stderr, "geobench: FAIL %s: trace diverged at domains=%d: %s vs %s\n",
					name, pt.Domains, pt.TraceHash, pts[0].TraceHash)
				fail = true
			}
		}
		rep.Points = append(rep.Points, pts...)
	}

	accPoint := func(suite string, d int, hash string, acc *sim.DomainAccum, wall time.Duration) domainPoint {
		if acc.Clamped > 0 {
			fmt.Printf("geobench: note: %s domains=%d: %d group(s) clamped below the requested width (regions bound the useful width)\n",
				suite, d, acc.Clamped)
		}
		return domainPoint{
			Suite:         suite,
			Domains:       d,
			WallMS:        float64(wall) / 1e6,
			BusyMS:        float64(acc.Busy) / 1e6,
			Utilization:   acc.Utilization(),
			Rounds:        acc.Rounds,
			Groups:        acc.Groups,
			TraceHash:     hash,
			ClampedGroups: acc.Clamped,
		}
	}

	addSuite("fig8geo-cell", func(d int) domainPoint {
		hash, acc, wall := runGeoFig8(seed, quick, d)
		return accPoint("fig8geo-cell", d, hash, acc, wall)
	})
	addSuite("geo-pop", func(d int) domainPoint {
		hash, acc, wall, events := runGeoPop(seed, quick, d)
		pt := accPoint("geo-pop", d, hash, acc, wall)
		pt.Events = events
		return pt
	})

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("geobench: wrote %s\n", out)
	if fail {
		fmt.Fprintln(os.Stderr, "geobench: cross-domain trace divergence — the determinism contract is broken; do not merge")
		return 1
	}
	return 0
}

// runGeoGate is the regression step, in the domainbench -gate convention:
// re-run the fig8geo-cell suite at domains=1 (minimum over five repetitions,
// to shave scheduler noise) at the scale the checked-in BENCH_geo.json was
// captured at, and fail if the wall is more than 10% over the recorded one,
// or if the trace hash drifted.
func runGeoGate(baselinePath string) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geobench gate: %v\n", err)
		return 1
	}
	var base domainBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "geobench gate: parse %s: %v\n", baselinePath, err)
		return 1
	}
	want, wantHash := 0.0, ""
	for _, pt := range base.Points {
		if pt.Suite == "fig8geo-cell" && pt.Domains == 1 {
			want, wantHash = pt.WallMS, pt.TraceHash
		}
	}
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "geobench gate: no fig8geo-cell domains=1 baseline in %s\n", baselinePath)
		return 1
	}

	const tolerance = 1.10
	best, bestHash := 0.0, ""
	for rep := 0; rep < 5; rep++ {
		hash, _, wall := runGeoFig8(base.Seed, base.Quick, 1)
		if ms := float64(wall) / 1e6; best == 0 || ms < best {
			best = ms
		}
		bestHash = hash
	}
	ratio := best / want
	status := "ok"
	if ratio > tolerance {
		status = "FAIL"
	}
	fmt.Printf("geobench gate: fig8geo-cell domains=1 %8.1f ms vs baseline %8.1f (%.2fx) %s  trace %s\n",
		best, want, ratio, status, bestHash)
	if wantHash != "" && bestHash != wantHash {
		fmt.Fprintf(os.Stderr, "geobench gate: trace hash %s differs from recorded %s — the geo simulation changed; recapture BENCH_geo.json with -run geobench\n",
			bestHash, wantHash)
		return 1
	}
	if ratio > tolerance {
		fmt.Fprintln(os.Stderr, "geobench gate: single-domain fig8geo wall regression >10% — investigate before merging (profile with -run geobench -cpuprofile cpu.out)")
		return 1
	}
	fmt.Println("geobench gate: single-domain fig8geo cell within 10% of baseline")
	return 0
}
