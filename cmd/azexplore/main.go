// Command azexplore runs ad-hoc what-if scenarios against the simulated
// cloud: pick a service, an operation, a concurrency level and a payload
// size, and observe per-client and aggregate behaviour. It answers the
// capacity-planning questions the paper's recommendations raise ("how many
// queues do I need", "what happens to my inserts at 300 clients") without
// editing benchmark code.
//
// Usage:
//
//	azexplore -svc blob  -op download -clients 64 -size 256000000
//	azexplore -svc table -op insert   -clients 300 -size 65536
//	azexplore -svc queue -op receive  -clients 48
//	azexplore -svc vm    -op lifecycle -role web -vmsize large
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

func main() {
	var (
		svc     = flag.String("svc", "blob", "service: blob|table|queue|vm")
		op      = flag.String("op", "download", "operation (per service)")
		clients = flag.Int("clients", 16, "concurrent clients")
		size    = flag.Int64("size", 4096, "payload bytes (blob/table/queue)")
		ops     = flag.Int("ops", 100, "operations per client")
		seed    = flag.Uint64("seed", 42, "random seed")
		role    = flag.String("role", "worker", "vm lifecycle: worker|web")
		vmsize  = flag.String("vmsize", "small", "vm lifecycle: small|medium|large|xl")
	)
	flag.Parse()

	ccfg := azure.Config{Seed: *seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)

	switch *svc {
	case "blob":
		exploreBlob(cloud, *op, *clients, *size)
	case "table":
		exploreTable(cloud, *op, *clients, int(*size), *ops)
	case "queue":
		exploreQueue(cloud, *op, *clients, int(*size), *ops)
	case "sql":
		exploreSQL(cloud, *op, *clients, int(*size), *ops)
	case "vm":
		exploreVM(cloud, *role, *vmsize)
	default:
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *svc)
		os.Exit(2)
	}
}

func exploreBlob(cloud *azure.Cloud, op string, clients int, size int64) {
	cloud.Blob.CreateContainer("x")
	vms := cloud.Controller.ReadyFleet(clients, fabric.Worker, fabric.Small)
	var bw metrics.Summary
	var errs int
	if op == "download" {
		setup := cloud.NewClient(vms[0], 1<<20)
		cloud.Engine.Spawn("stage", func(p *sim.Proc) {
			if err := setup.PutBlob(p, "x", "blob", size, true); err != nil {
				panic(err)
			}
		})
		cloud.Engine.Run()
	}
	for i := 0; i < clients; i++ {
		i := i
		cl := cloud.NewClient(vms[i], i)
		cloud.Engine.Spawn("c", func(p *sim.Proc) {
			start := p.Now()
			var err error
			if op == "download" {
				_, err = cl.GetBlob(p, "x", "blob")
			} else {
				err = cl.PutBlob(p, "x", fmt.Sprintf("b%d", i), size, true)
			}
			if err != nil {
				errs++
				return
			}
			bw.Add(float64(size) / 1e6 / (p.Now() - start).Seconds())
		})
	}
	cloud.Engine.Run()
	fmt.Printf("blob %s: %d clients × %d MB\n", op, clients, size/1_000_000)
	fmt.Printf("  per-client: %.2f ± %.2f MB/s   aggregate: %.1f MB/s   errors: %d\n",
		bw.Mean(), bw.Std(), bw.Mean()*float64(clients), errs)
}

func exploreTable(cloud *azure.Cloud, op string, clients, size, opsEach int) {
	cloud.Table.CreateTable("x")
	var lat metrics.Summary
	var errs, timeouts int
	if op != "insert" {
		for c := 0; c < clients; c++ {
			for i := 0; i < opsEach; i++ {
				cloud.Table.Backdoor("x", tablesvc.PaddedEntity("p", fmt.Sprintf("r-%d-%d", c, i), size))
			}
		}
	}
	for c := 0; c < clients; c++ {
		c := c
		cloud.Engine.Spawn("c", func(p *sim.Proc) {
			for i := 0; i < opsEach; i++ {
				start := p.Now()
				var err error
				switch op {
				case "insert":
					err = cloud.Table.Insert(p, "x", tablesvc.PaddedEntity("p", fmt.Sprintf("n-%d-%d", c, i), size))
				case "query":
					_, err = cloud.Table.Get(p, "x", "p", fmt.Sprintf("r-%d-%d", c, i))
				case "update":
					err = cloud.Table.Update(p, "x", tablesvc.PaddedEntity("p", "r-0-0", size))
				case "delete":
					err = cloud.Table.Delete(p, "x", "p", fmt.Sprintf("r-%d-%d", c, i))
				case "filter":
					_, err = cloud.Table.QueryFilter(p, "x", "p",
						func(e *tablesvc.Entity) bool { return false })
				}
				if storerr.IsCode(err, storerr.CodeTimeout) {
					timeouts++
					return
				}
				if err != nil {
					errs++
					return
				}
				lat.AddDuration(p.Now() - start)
			}
		})
	}
	cloud.Engine.Run()
	fmt.Printf("table %s: %d clients × %d ops, %d B entities\n", op, clients, opsEach, size)
	fmt.Printf("  latency: %.1f ± %.1f ms   per-client: %.1f ops/s   aggregate: %.0f ops/s\n",
		lat.Mean()*1000, lat.Std()*1000, 1/lat.Mean(), float64(clients)/lat.Mean())
	fmt.Printf("  timeouts: %d   other errors: %d\n", timeouts, errs)
}

func exploreQueue(cloud *azure.Cloud, op string, clients, size, opsEach int) {
	q := cloud.Queue.CreateQueue("x")
	q.Prefill(clients*opsEach+100, size)
	var lat metrics.Summary
	for c := 0; c < clients; c++ {
		cloud.Engine.Spawn("c", func(p *sim.Proc) {
			for i := 0; i < opsEach; i++ {
				start := p.Now()
				var err error
				switch op {
				case "add":
					_, err = cloud.Queue.Add(p, q, "m", size)
				case "peek":
					_, _, err = cloud.Queue.Peek(p, q)
				default: // receive
					_, _, _, err = cloud.Queue.Receive(p, q, time.Hour)
				}
				if err != nil {
					panic(err)
				}
				lat.AddDuration(p.Now() - start)
			}
		})
	}
	cloud.Engine.Run()
	fmt.Printf("queue %s: %d clients × %d ops, %d B messages\n", op, clients, opsEach, size)
	fmt.Printf("  latency: %.1f ± %.1f ms   per-client: %.1f ops/s   aggregate: %.0f ops/s\n",
		lat.Mean()*1000, lat.Std()*1000, 1/lat.Mean(), float64(clients)/lat.Mean())
}

func exploreSQL(cloud *azure.Cloud, op string, clients, size, opsEach int) {
	cloud.SQL.CreateDatabase("x", sqlsvc.Business)
	if op != "insert" {
		for c := 0; c < clients; c++ {
			for i := 0; i < opsEach; i++ {
				cloud.SQL.Seed("x", "t", fmt.Sprintf("r-%d-%d", c, i), size)
			}
		}
	} else {
		cloud.SQL.Seed("x", "t", "schema", 1) // ensure the table exists
	}
	var lat metrics.Summary
	var throttled int
	for c := 0; c < clients; c++ {
		c := c
		cloud.Engine.Spawn("c", func(p *sim.Proc) {
			conn, err := cloud.SQL.Open(p, "x", c)
			if storerr.IsCode(err, storerr.CodeServerBusy) {
				throttled++
				return
			}
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			for i := 0; i < opsEach; i++ {
				start := p.Now()
				switch op {
				case "insert":
					err = conn.Insert(p, "t", fmt.Sprintf("n-%d-%d", c, i), size)
				default: // select
					_, err = conn.Select(p, "t", fmt.Sprintf("r-%d-%d", c, i))
				}
				if err != nil {
					panic(err)
				}
				lat.AddDuration(p.Now() - start)
			}
		})
	}
	cloud.Engine.Run()
	fmt.Printf("sql %s: %d clients × %d ops, %d B rows\n", op, clients, opsEach, size)
	fmt.Printf("  latency: %.1f ± %.1f ms   per-client: %.1f ops/s   throttled connections: %d\n",
		lat.Mean()*1000, lat.Std()*1000, 1/lat.Mean(), throttled)
}

func exploreVM(cloud *azure.Cloud, roleName, sizeName string) {
	role := fabric.Worker
	if roleName == "web" {
		role = fabric.Web
	}
	size := fabric.Small
	switch sizeName {
	case "medium":
		size = fabric.Medium
	case "large":
		size = fabric.Large
	case "xl", "extralarge":
		size = fabric.ExtraLarge
	}
	mgmt := cloud.Management()
	cloud.Engine.Spawn("vm", func(p *sim.Proc) {
		d, create, err := mgmt.Deploy(p, fabric.DeploymentSpec{Name: "x", Role: role, Size: size})
		if err != nil {
			panic(err)
		}
		run, first, last, err := mgmt.Run(p, d)
		if err != nil {
			fmt.Printf("vm lifecycle %s/%s: startup FAILED after %v (the 2.6%% case)\n", roleName, sizeName, run)
			return
		}
		sus, _ := mgmt.Suspend(p, d)
		del, _ := mgmt.Delete(p, d)
		fmt.Printf("vm lifecycle %s/%s (%d instances):\n", roleName, sizeName, len(d.VMs()))
		fmt.Printf("  create  %8.1fs\n  run     %8.1fs (first ready %.1fs, last %.1fs)\n  suspend %8.1fs\n  delete  %8.1fs\n",
			create.Seconds(), run.Seconds(), first.Seconds(), last.Seconds(), sus.Seconds(), del.Seconds())
	})
	cloud.Engine.Run()
}
