// Command azserve exposes a simulated Windows Azure cloud over the 2009-era
// REST surface — blob, table, queue, and Service Management endpoints —
// so real HTTP clients (curl, SDK experiments, load generators) can talk to
// the reproduction.
//
// Two clock modes bridge wall time onto the deterministic kernel:
//
//	-mode freerun   virtual time jumps to drain each request's work and
//	                stands still between requests (default; deterministic
//	                given the arrival order)
//	-mode paced     virtual time tracks the wall clock, so the paper's
//	                latencies are observable in real time
//
// With -record, every engine-bound arrival is captured and written on
// shutdown in the wire.ParseArrivals format; `azbench -run wirereplay`
// replays the bundled exemplar of such a log bit-identically.
//
//	azserve -addr 127.0.0.1:10000 -mode freerun -record arrivals.log
//	curl -X PUT http://127.0.0.1:10000/inputs
//	curl -X PUT -H 'x-ms-size: 1048576' http://127.0.0.1:10000/inputs/data
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/sim"
	"azureobs/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:10000", "listen address (host:port; port 0 picks a free port)")
		mode   = flag.String("mode", "freerun", "clock mode: freerun or paced")
		record = flag.String("record", "", "write the arrival log to this file on shutdown")
		seed   = flag.Uint64("seed", 42, "simulation seed")
		tick   = flag.Duration("tick", 10*time.Millisecond, "paced-mode clock tick")
	)
	flag.Parse()

	var rtMode sim.RTMode
	switch *mode {
	case "freerun":
		rtMode = sim.FreeRun
	case "paced":
		rtMode = sim.Paced
	default:
		log.Fatalf("azserve: unknown -mode %q (want freerun or paced)", *mode)
	}

	cloud := azure.NewCloud(azure.Config{Seed: *seed})
	rt := sim.NewRealTime(cloud.Engine, rtMode)
	rt.SetTick(*tick)
	facade := wire.New(cloud, rt)

	var rec *wire.Recorder
	if *record != "" {
		rec = wire.NewRecorder()
		facade.SetRecorder(rec)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("azserve: %v", err)
	}
	log.Printf("azserve: %s mode, seed %d, listening on http://%s", rtMode, *seed, ln.Addr())

	srv := &http.Server{Handler: facade}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("azserve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("azserve: shutting down")
		srv.Close()
		rt.Close()
	}()

	// The RealTime serve loop is the engine's only driver; it returns once
	// the signal handler closes it.
	rt.Serve()

	if rec != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatalf("azserve: %v", err)
		}
		if _, err := rec.WriteTo(f); err != nil {
			log.Fatalf("azserve: writing %s: %v", *record, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("azserve: closing %s: %v", *record, err)
		}
		log.Printf("azserve: wrote %d arrivals to %s", len(rec.Arrivals()), *record)
	}
}
