// Command modisazure runs the ModisAzure campaign simulation of Section 5:
// a Feb-Sep 2010-scale bag-of-tasks satellite-imagery pipeline on ~200
// simulated worker instances, reproducing Table 2 (task breakdown and
// failure taxonomy) and Fig. 7 (daily VM-timeout share).
//
// Usage:
//
//	modisazure                # full 242-day campaign (~3M task executions)
//	modisazure -days 21       # shorter campaign
//	modisazure -describe      # print the pipeline architecture (Fig. 6)
//	modisazure -ablate 2,3,4,6 -parallel 4
//	                          # kill-multiple ablation, campaigns sharded
//	                          # over 4 scheduler workers
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"azureobs/internal/billing"
	"azureobs/internal/chaos"
	"azureobs/internal/fabric"
	"azureobs/internal/modis"
	"azureobs/internal/report"
	"azureobs/internal/svgplot"
)

const architecture = `ModisAzure pipeline (paper Fig. 6)

  web portal ──▶ request table ──▶ service manager
                                       │ expands each request into tasks
                                       ▼
                               Azure queue (tasks)
                                       │
        ┌──────────────┬───────────────┼────────────────┐
        ▼              ▼               ▼                ▼
  source download  reprojection   aggregation      reduction
  (FTP → blob)     (merge tiles)  (group data)     (user MATLAB code)
        │              │               │                │
        └──────────────┴───────┬───────┴────────────────┘
                               ▼
                     blob storage (intermediate + final products)

  stage order per request: collection → reprojection → aggregation → reduction
  a task manager kills executions at 4x the task's mean time and re-queues them`

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "root random seed")
		days     = flag.Int("days", 242, "campaign length in days (paper: Feb-Sep 2010)")
		workers  = flag.Int("workers", 200, "worker role instances")
		describe = flag.Bool("describe", false, "print the pipeline architecture and exit")
		csv      = flag.Bool("csv", false, "emit CSV tables")
		showlog  = flag.Int("showlog", 0, "print the last N structured log records")
		svgDir   = flag.String("svg", "", "also write fig7.svg into this directory")
		ablate   = flag.String("ablate", "", "run the kill-multiple ablation at these comma-separated multiples instead of one campaign")
		parallel = flag.Int("parallel", 1, "scheduler workers for the ablation's independent campaigns (-workers means worker-role instances)")
		chaosOn  = flag.Bool("chaos", false, "run the default whole-datacenter fault campaign (host crashes, degradations, rack partitions, storage outages) alongside the workload and report the failure taxonomy")
		domains  = flag.Int("domains", 0, "run the campaign domain-sharded at this width (0 = legacy single-engine mode); results are bit-identical at every width")
		shards   = flag.Int("shards", 0, "workload shards for -domains mode (default 8; changing this changes the trace, changing -domains does not)")
	)
	flag.Parse()

	if *describe {
		fmt.Println(architecture)
		return
	}

	cfg := modis.DefaultConfig()
	cfg.Seed = *seed
	cfg.Days = *days
	cfg.Workers = *workers
	if *chaosOn {
		ch := chaos.DefaultConfig()
		cfg.Chaos = &ch
	}
	cfg.Domains = *domains
	if *shards > 0 {
		cfg.Shards = *shards
	}

	if *ablate != "" {
		var multiples []float64
		for _, s := range strings.Split(*ablate, ",") {
			m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || m <= 0 {
				fmt.Fprintf(os.Stderr, "modisazure: bad -ablate multiple %q\n", s)
				os.Exit(2)
			}
			multiples = append(multiples, m)
		}
		fmt.Printf("running kill-multiple ablation: %d days, %d workers, multiples %s, %d scheduler workers ...\n\n",
			cfg.Days, cfg.Workers, *ablate, *parallel)
		start := time.Now()
		pts := modis.RunKillAblation(cfg, multiples, *parallel)
		t := report.NewTable("Kill-multiple ablation (Section 5.2)",
			"multiple", "timeouts", "false kills", "wasted hours", "executions")
		for _, p := range pts {
			t.AddRow(fmt.Sprintf("%.1fx", p.KillMultiple), fmt.Sprint(p.Timeouts),
				fmt.Sprint(p.FalseKills), fmt.Sprintf("%.1f", p.WastedHours), fmt.Sprint(p.TotalExecs))
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Printf("\nablation: %d campaigns (wall %.1fs)\n", len(pts), time.Since(start).Seconds())
		return
	}
	fmt.Printf("running ModisAzure campaign: %d days, %d workers, seed %d ...\n\n",
		cfg.Days, cfg.Workers, cfg.Seed)
	start := time.Now()
	campaign := modis.NewCampaign(cfg)
	if eff := campaign.EffectiveDomains(); eff > 0 {
		if campaign.RequestedDomains() > eff {
			fmt.Printf("note: -domains %d clamped to %d (shard count; a domain with no shard would idle)\n",
				campaign.RequestedDomains(), eff)
		}
		fmt.Printf("domain-sharded: %d domains\n\n", eff)
	}
	if *chaosOn {
		// Recording mode: violations are counted and reported with the
		// taxonomy instead of aborting the campaign mid-fault.
		campaign.EnableInvariants(false)
	}
	st := campaign.Run()
	elapsed := time.Since(start)

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	total := float64(st.TotalExecs())
	t := report.NewTable("Table 2 — ModisAzure task breakdown", "classification", "executions", "% of total")
	for _, name := range st.TaskExecs.Names() {
		v := st.TaskExecs.Get(name)
		t.AddRow(name, fmt.Sprint(v), fmt.Sprintf("%.2f", float64(v)/total*100))
	}
	t.AddRow("Total task executions", fmt.Sprint(st.TotalExecs()), "100.00")
	emit(t)

	t2 := report.NewTable("Table 2 — selected types of task errors", "outcome", "executions", "% of total")
	for _, name := range st.Outcomes.Names() {
		v := st.Outcomes.Get(name)
		t2.AddRow(name, fmt.Sprint(v), fmt.Sprintf("%.2f", float64(v)/total*100))
	}
	emit(t2)

	report.SeriesPlot(os.Stdout, "Fig 7 — percent of task executions with VM timeout per day", "%",
		st.Fig7Series(), 100, 12)
	fmt.Println()

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fig7 := st.Fig7Series()
		xs := make([]float64, fig7.Len())
		for i := range xs {
			xs[i] = float64(i)
		}
		plot := svgplot.New("Fig 7 — daily share of executions with VM timeout", "campaign day", "% of executions")
		plot.Kind = svgplot.Bars
		plot.Add("daily timeout share", xs, fig7.Values)
		path := filepath.Join(*svgDir, "fig7.svg")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := plot.Render(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		f.Close()
		fmt.Printf("wrote %s\n\n", path)
	}

	if rep := campaign.ChaosReport(); rep != nil {
		fmt.Println("Chaos campaign — failure taxonomy (cf. Section 5):")
		rep.Render(os.Stdout)
		fmt.Printf("replacement VMs acquired: %d; crash-aborted executions re-enqueued: %d\n\n",
			st.ReplacementVMs, st.CrashAborted)
	}

	fmt.Println("paper vs measured:")
	for _, a := range st.Anchors() {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("\ncampaign: %d requests, %d distinct tasks, %d executions, %d retries (wall %.1fs)\n",
		st.Requests, st.DistinctTasks, st.TotalExecs(), st.Retries, elapsed.Seconds())
	if st.CompletedRequests > 0 {
		fmt.Printf("requests completed: %d; turnaround median %.1f h, p90 %.1f h\n",
			st.CompletedRequests, st.TurnaroundHours.Median(), st.TurnaroundHours.Quantile(0.9))
	}

	// Approximate bill at the February-2010 commercial price sheet
	// (Section 5.1's economics: storing intermediates beats recompute
	// within a month's reuse).
	meter := billing.NewMeter(billing.Rates2010())
	meter.ChargeCompute(fabric.Small, time.Duration(cfg.Days)*24*time.Hour*time.Duration(cfg.Workers))
	meter.ChargeTransactions(st.TotalExecs() * 8) // queue+table+blob ops per execution
	// Intermediate products: reprojection output tiles (~20 MB each, the
	// scale of a reprojected MODIS region tile) resident for the campaign's
	// remainder, on average half its length.
	products := int64(st.TaskExecs.Get("Reprojection"))
	meter.ChargeStorage(products*20_000_000, time.Duration(cfg.Days)*12*time.Hour)
	fmt.Printf("estimated bill (2010 rates): %s\n", meter.Bill())

	if ds := campaign.DomainStats(); campaign.EffectiveDomains() > 0 {
		fmt.Printf("domain group: %d rounds, utilization %.2f\n", ds.Rounds, ds.Utilization())
	}

	if *showlog > 0 {
		recent := campaign.RecentRecords()
		if len(recent) > *showlog {
			recent = recent[len(recent)-*showlog:]
		}
		fmt.Printf("\nlast %d log records:\n", len(recent))
		for _, r := range recent {
			fmt.Println(" ", r)
		}
	}
}
