// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B target per artifact, at a scale sized for iteration speed
// (the paper-scale protocols run via cmd/azbench and cmd/modisazure).
// Custom metrics report the reproduced anchor values so regressions in the
// calibrated behaviour are visible in benchmark output:
//
//	go test -bench=. -benchmem
package azureobs_test

import (
	"testing"
	"time"

	"azureobs/internal/core"
	"azureobs/internal/fabric"
	"azureobs/internal/modis"
	"azureobs/internal/sim"
)

// BenchmarkFig1BlobBandwidth regenerates Fig. 1: per-client blob
// download/upload bandwidth vs concurrency.
func BenchmarkFig1BlobBandwidth(b *testing.B) {
	var down1, down32, aggPeak float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig1(core.Fig1Config{
			Proto:  core.Proto{Seed: 42, Clients: []int{1, 32, 128}, Runs: 1},
			BlobMB: 64,
		})
		down1 = r.Points[0].DownMBps
		down32 = r.Points[1].DownMBps
		aggPeak = r.Points[2].DownAggMBps
	}
	b.ReportMetric(down1, "down@1_MB/s")
	b.ReportMetric(down32, "down@32_MB/s")
	b.ReportMetric(aggPeak, "agg@128_MB/s")
}

// BenchmarkFig2Table regenerates Fig. 2: per-client table ops/s for the four
// operations (4 kB entities).
func BenchmarkFig2Table(b *testing.B) {
	var insert1, update8Agg float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig2(core.Fig2Config{
			Proto:      core.Proto{Seed: 42, Clients: []int{1, 8, 64}},
			EntitySize: 4096,
			Inserts:    50, Queries: 50, Updates: 25,
		})
		insert1 = r.Points[0].InsertOps
		update8Agg = r.Points[1].UpdateOps * 8
	}
	b.ReportMetric(insert1, "insert@1_ops/s")
	b.ReportMetric(update8Agg, "updateAgg@8_ops/s")
}

// BenchmarkFig2Overload64k regenerates the 64 kB insert overload: the count
// of clients (of 128) finishing 500 inserts (paper: 94).
func BenchmarkFig2Overload64k(b *testing.B) {
	var survivors float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig2(core.Fig2Config{
			Proto:      core.Proto{Seed: 42, Clients: []int{128}},
			EntitySize: 65536,
			Inserts:    500, Queries: 1, Updates: 1,
		})
		survivors = float64(r.Points[0].InsertSurvivors)
	}
	b.ReportMetric(survivors, "survivors@128")
}

// BenchmarkFig3Queue regenerates Fig. 3: queue Add/Peek/Receive scalability
// (512 B messages).
func BenchmarkFig3Queue(b *testing.B) {
	var addAgg64, peekAgg192 float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig3(core.Fig3Config{
			Proto:   core.Proto{Seed: 42, Clients: []int{64, 192}},
			MsgSize: 512, OpsEach: 40,
		})
		addAgg64 = r.Points[0].AggAdd()
		peekAgg192 = r.Points[1].AggPeek()
	}
	b.ReportMetric(addAgg64, "addAgg@64_ops/s")
	b.ReportMetric(peekAgg192, "peekAgg@192_ops/s")
}

// BenchmarkQueueDepthInvariance regenerates the Section 3.3 queue-depth
// check (200k vs 2M in the paper; scaled 10x down here).
func BenchmarkQueueDepthInvariance(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := core.RunQueueDepth(core.QueueDepthConfig{
			Proto: core.Proto{Seed: 42}, SmallDepth: 20000, LargeDepth: 200000,
		})
		ratio = r.LargeRate / r.SmallRate
	}
	b.ReportMetric(ratio, "large/small_rate")
}

// BenchmarkTable1VMLifecycle regenerates Table 1: VM request times per
// role, size and phase.
func BenchmarkTable1VMLifecycle(b *testing.B) {
	var runMean, addMean float64
	for i := 0; i < b.N; i++ {
		r := core.RunTable1(core.Table1Config{Proto: core.Proto{Seed: 42, Runs: 64}})
		runMean = r.Cell(fabric.Worker, fabric.Small, "Run").Mean()
		addMean = r.Cell(fabric.Worker, fabric.Small, "Add").Mean()
	}
	b.ReportMetric(runMean, "workerSmallRun_s")
	b.ReportMetric(addMean, "workerSmallAdd_s")
}

// BenchmarkFig4TCPLatency regenerates Fig. 4: the inter-VM TCP roundtrip
// latency distribution.
func BenchmarkFig4TCPLatency(b *testing.B) {
	var p1ms float64
	for i := 0; i < b.N; i++ {
		r := core.RunTCP(core.TCPConfig{Proto: core.Proto{Seed: 42}, LatencySamples: 5000, BandwidthPairs: 1, TransfersPer: 1})
		p1ms = r.LatencyMS.FracLE(1) * 100
	}
	b.ReportMetric(p1ms, "P(≤1ms)_%")
}

// BenchmarkFig5TCPBandwidth regenerates Fig. 5: the inter-VM TCP bandwidth
// distribution from 2 GB transfers.
func BenchmarkFig5TCPBandwidth(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		r := core.RunTCP(core.TCPConfig{Proto: core.Proto{Seed: 42}, LatencySamples: 5, BandwidthPairs: 80, TransfersPer: 3})
		p90 = (1 - r.BandwidthMBps.FracLE(90)) * 100
	}
	b.ReportMetric(p90, "P(≥90MB/s)_%")
}

// BenchmarkTable2Modis regenerates Table 2 at ~1% campaign scale: the task
// mix and failure taxonomy of the ModisAzure pipeline.
func BenchmarkTable2Modis(b *testing.B) {
	var success, reproj float64
	for i := 0; i < b.N; i++ {
		st := modis.NewCampaign(modis.Config{
			Seed: 42, Days: 14, Workers: 60,
			MeanRequestGap: 100 * time.Minute, MeanTasksPerRequest: 140,
		}).Run()
		success = st.SuccessShare() * 100
		reproj = float64(st.TaskExecs.Get("Reprojection")) / float64(st.TotalExecs()) * 100
	}
	b.ReportMetric(success, "success_%")
	b.ReportMetric(reproj, "reprojection_%")
}

// BenchmarkFig7Timeouts regenerates Fig. 7's mechanism: daily VM-timeout
// share under a forced degradation episode.
func BenchmarkFig7Timeouts(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		cfg := modis.Config{
			Seed: 42, Days: 14, Workers: 60,
			MeanRequestGap: 100 * time.Minute, MeanTasksPerRequest: 140,
			Degradation: &fabric.DegradationConfig{
				MeanInterarrival: 100 * time.Hour,
				FracLo:           0.2, FracHi: 0.4,
				SlowLo: 4.5, SlowHi: 6.5,
				DurLo: 6 * time.Hour, DurHi: 18 * time.Hour,
			},
		}
		st := modis.NewCampaign(cfg).Run()
		peak = st.Fig7Series().Max()
	}
	b.ReportMetric(peak, "peakDailyTimeout_%")
}

// BenchmarkPropFilterAblation regenerates the Section 6.1 ablation: filter
// queries against a large partition at 32-way concurrency.
func BenchmarkPropFilterAblation(b *testing.B) {
	var timeoutShare float64
	for i := 0; i < b.N; i++ {
		r := core.RunPropFilter(core.PropFilterConfig{
			Proto:    core.Proto{Seed: 42, Clients: []int{32}},
			Entities: 220000,
		})
		timeoutShare = float64(r.Points[0].Timeouts) / float64(r.Points[0].Queries) * 100
	}
	b.ReportMetric(timeoutShare, "timeouts_%")
}

// BenchmarkAblationCapacityProfile contrasts the calibrated concurrency-
// dependent blob egress capacity against a naive fixed-capacity fair-share
// link — the ablation behind DESIGN.md's "efficiency profile" decision. The
// naive model parks every client at its NIC limit until 400/n < 13 and
// misses the measured mid-range decay entirely.
func BenchmarkAblationCapacityProfile(b *testing.B) {
	var calibrated, naive float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig1(core.Fig1Config{
			Proto:  core.Proto{Seed: 42, Clients: []int{32}, Runs: 1},
			BlobMB: 64, SkipUpload: true,
		})
		calibrated = r.Points[0].DownMBps
		// Naive: per-client = min(NIC, 400/n) at n=32 → NIC-bound 12.5-13.
		naive = 400.0 / 32
		if naive > 13 {
			naive = 13
		}
	}
	b.ReportMetric(calibrated, "calibrated@32_MB/s")
	b.ReportMetric(naive, "naiveFairShare@32_MB/s")
	// Paper measured ~6.5 MB/s at 32 clients: the naive model is ~2x off.
}

// BenchmarkAblationKillMultiple quantifies the Section 5.2 suggestion of
// tightening the 4x kill bound: wasted compute per kill at 2x vs 4x.
func BenchmarkAblationKillMultiple(b *testing.B) {
	var tightWaste, paperWaste float64
	for i := 0; i < b.N; i++ {
		base := modis.Config{
			Seed: 42, Days: 10, Workers: 50,
			MeanRequestGap: 100 * time.Minute, MeanTasksPerRequest: 120,
			Degradation: &fabric.DegradationConfig{
				MeanInterarrival: 60 * time.Hour,
				FracLo:           0.2, FracHi: 0.4,
				SlowLo: 4.5, SlowHi: 6.5,
				DurLo: 6 * time.Hour, DurHi: 18 * time.Hour,
			},
		}
		pts := modis.RunKillAblation(base, []float64{2, 4}, 1)
		if pts[0].Timeouts > 0 {
			tightWaste = pts[0].WastedHours / float64(pts[0].Timeouts)
		}
		if pts[1].Timeouts > 0 {
			paperWaste = pts[1].WastedHours / float64(pts[1].Timeouts)
		}
	}
	b.ReportMetric(tightWaste, "wastePerKill@2x_h")
	b.ReportMetric(paperWaste, "wastePerKill@4x_h")
}

// BenchmarkSQLCompare contrasts SQL Azure with table storage (the HPDC'10
// extra the journal version omitted): per-client select rate and the
// connection throttling that table storage does not have.
func BenchmarkSQLCompare(b *testing.B) {
	var sqlSel, tblQry, throttled float64
	for i := 0; i < b.N; i++ {
		r := core.RunSQLCompare(core.SQLCompareConfig{
			Proto:   core.Proto{Seed: 42, Clients: []int{128}},
			OpsEach: 40,
		})
		sqlSel = r.Points[0].SQLSelectOps
		tblQry = r.Points[0].TableQueryOps
		throttled = float64(r.Points[0].ThrottledOpens)
	}
	b.ReportMetric(sqlSel, "sqlSelect@128_ops/s")
	b.ReportMetric(tblQry, "tableQuery@128_ops/s")
	b.ReportMetric(throttled, "sqlThrottled@128")
}

// BenchmarkAblationBlobReplication quantifies the Section 6.1 replication
// recommendation: aggregate bandwidth at 1x vs 4x blob replication under
// high reader concurrency.
func BenchmarkAblationBlobReplication(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r := core.RunReplication(core.ReplicationConfig{
			Proto:   core.Proto{Seed: 42},
			Clients: 64, BlobMB: 64, Replicas: []int{1, 4},
		})
		speedup = r.Points[1].SpeedupVsOne
	}
	b.ReportMetric(speedup, "4x-replication_speedup")
}

// BenchmarkSimKernelEvents measures raw kernel throughput: scheduled
// callbacks per second.
func BenchmarkSimKernelEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run()
}

// BenchmarkSimKernelProcesses measures process context-switch throughput:
// sleep/wake cycles per second (each cycle is a full goroutine handoff).
func BenchmarkSimKernelProcesses(b *testing.B) {
	eng := sim.NewEngine()
	eng.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}
