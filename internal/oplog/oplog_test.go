package oplog

import (
	"strings"
	"testing"
	"time"
)

func rec(day int, category, event string) Record {
	return Record{Time: time.Duration(day) * 24 * time.Hour, Category: category, Event: event}
}

func TestEmitAndCount(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Emit(rec(0, "c", "e"))
	}
	if l.Count() != 10 {
		t.Fatalf("count = %d", l.Count())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Emit(Record{Time: time.Duration(i) * time.Second, Detail: string(rune('a' + i))})
	}
	got := l.Recent()
	if len(got) != 3 {
		t.Fatalf("recent = %d records", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Detail != want {
			t.Fatalf("recent[%d] = %q, want %q (oldest-first order)", i, got[i].Detail, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	l := New(10)
	l.Emit(Record{Detail: "x"})
	l.Emit(Record{Detail: "y"})
	got := l.Recent()
	if len(got) != 2 || got[0].Detail != "x" {
		t.Fatalf("recent = %v", got)
	}
}

func TestZeroRingStillCounts(t *testing.T) {
	l := New(0)
	l.Emit(Record{})
	if l.Count() != 1 || len(l.Recent()) != 0 {
		t.Fatal("zero-ring log broken")
	}
}

func TestSinksReceiveAll(t *testing.T) {
	l := New(0)
	var a, b int
	l.Subscribe(func(Record) { a++ })
	l.Subscribe(func(Record) { b++ })
	for i := 0; i < 7; i++ {
		l.Emit(Record{})
	}
	if a != 7 || b != 7 {
		t.Fatalf("sinks got %d/%d, want 7/7", a, b)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Time: time.Second, Severity: Error, Source: "w1", Category: "Reprojection", Event: "Unknown failure", Detail: "task 9"}
	s := r.String()
	for _, part := range []string{"ERROR", "w1", "Reprojection", "Unknown failure", "task 9"} {
		if !strings.Contains(s, part) {
			t.Fatalf("record string %q missing %q", s, part)
		}
	}
	if Info.String() != "INFO" || Warning.String() != "WARN" {
		t.Fatal("severity strings wrong")
	}
}

func TestTaxonomyAnalyzer(t *testing.T) {
	l := New(0)
	a := NewTaxonomyAnalyzer("VM execution timeout")
	l.Subscribe(a.Sink())

	// Day 0: 8 successes, 2 timeouts. Day 1: 5 successes.
	for i := 0; i < 8; i++ {
		l.Emit(rec(0, "Reprojection", "Success"))
	}
	for i := 0; i < 2; i++ {
		l.Emit(rec(0, "Reprojection", "VM execution timeout"))
	}
	for i := 0; i < 5; i++ {
		l.Emit(rec(1, "Reduction", "Success"))
	}

	if a.Total() != 15 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.ByCategory["Reprojection"] != 10 || a.ByCategory["Reduction"] != 5 {
		t.Fatalf("categories = %v", a.ByCategory)
	}
	if got := a.EventShare("Success"); got != 13.0/15 {
		t.Fatalf("success share = %v", got)
	}
	if got := a.DailyTrackedShare(0); got != 20 {
		t.Fatalf("day-0 timeout share = %v, want 20%%", got)
	}
	if got := a.DailyTrackedShare(1); got != 0 {
		t.Fatalf("day-1 timeout share = %v, want 0", got)
	}
	if got := a.DailyTrackedShare(99); got != 0 {
		t.Fatalf("empty day share = %v", got)
	}
}

func TestAnalyzerEmptyShares(t *testing.T) {
	a := NewTaxonomyAnalyzer("x")
	if a.EventShare("x") != 0 {
		t.Fatal("empty analyzer share nonzero")
	}
}
