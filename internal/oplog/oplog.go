// Package oplog is the structured logging and monitoring substrate the
// paper's Section 6.3 tells cloud applications to build early: because the
// platform is a variable black box, "extensive monitoring and logging
// facilities are necessary to not only diagnose problems but also to
// determine how the application is behaving".
//
// A Log fans records out to streaming sinks (aggregators that never store
// the stream) and keeps a bounded ring of recent records for diagnosis.
// ModisAzure emits one record per task execution; the paper's Table 2 and
// Fig. 7 are then *derived from the log*, exactly as the authors derived
// them from their production logs.
package oplog

import (
	"fmt"
	"time"
)

// Severity classifies a record.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warning:
		return "WARN"
	default:
		return "ERROR"
	}
}

// Record is one structured log entry.
type Record struct {
	Time     time.Duration // virtual time
	Severity Severity
	Source   string // emitting component, e.g. "worker42"
	Category string // domain grouping, e.g. task type
	Event    string // what happened, e.g. outcome class
	Detail   string // free text
}

func (r Record) String() string {
	return fmt.Sprintf("[%v] %s %s %s/%s %s", r.Time, r.Severity, r.Source, r.Category, r.Event, r.Detail)
}

// Sink consumes records as they are emitted.
type Sink func(Record)

// Log is a fan-out log with a bounded ring of recent records. The zero
// value is unusable; construct with New.
type Log struct {
	ring  []Record
	next  int
	count uint64
	sinks []Sink
}

// New creates a log retaining the last ringSize records (ringSize ≥ 0).
func New(ringSize int) *Log {
	if ringSize < 0 {
		panic("oplog: negative ring size")
	}
	return &Log{ring: make([]Record, 0, ringSize)}
}

// Subscribe attaches a streaming sink; every subsequent Emit calls it.
func (l *Log) Subscribe(s Sink) { l.sinks = append(l.sinks, s) }

// Emit records an entry.
func (l *Log) Emit(r Record) {
	l.count++
	if cap(l.ring) > 0 {
		if len(l.ring) < cap(l.ring) {
			l.ring = append(l.ring, r)
		} else {
			l.ring[l.next] = r
		}
		l.next = (l.next + 1) % cap(l.ring)
	}
	for _, s := range l.sinks {
		s(r)
	}
}

// Count returns the total records ever emitted.
func (l *Log) Count() uint64 { return l.count }

// Recent returns the retained records, oldest first.
func (l *Log) Recent() []Record {
	if len(l.ring) < cap(l.ring) {
		return append([]Record(nil), l.ring...)
	}
	out := make([]Record, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// TaxonomyAnalyzer aggregates the failure-taxonomy view the paper's Table 2
// reports: counts per category and per event, plus a daily breakdown of one
// tracked event (Fig. 7's "VM execution timeout").
type TaxonomyAnalyzer struct {
	ByCategory map[string]uint64
	ByEvent    map[string]uint64

	TrackedEvent  string
	DailyTotal    map[int]uint64
	DailyTracked  map[int]uint64
	totalRecorded uint64
}

// NewTaxonomyAnalyzer creates an analyzer tracking the daily share of one
// event class.
func NewTaxonomyAnalyzer(trackedEvent string) *TaxonomyAnalyzer {
	return &TaxonomyAnalyzer{
		ByCategory:   make(map[string]uint64),
		ByEvent:      make(map[string]uint64),
		TrackedEvent: trackedEvent,
		DailyTotal:   make(map[int]uint64),
		DailyTracked: make(map[int]uint64),
	}
}

// Sink returns the streaming sink to subscribe.
func (a *TaxonomyAnalyzer) Sink() Sink {
	return func(r Record) {
		a.totalRecorded++
		a.ByCategory[r.Category]++
		a.ByEvent[r.Event]++
		day := int(r.Time / (24 * time.Hour))
		a.DailyTotal[day]++
		if r.Event == a.TrackedEvent {
			a.DailyTracked[day]++
		}
	}
}

// Total returns the records analyzed.
func (a *TaxonomyAnalyzer) Total() uint64 { return a.totalRecorded }

// EventShare returns an event's fraction of all records.
func (a *TaxonomyAnalyzer) EventShare(event string) float64 {
	if a.totalRecorded == 0 {
		return 0
	}
	return float64(a.ByEvent[event]) / float64(a.totalRecorded)
}

// DailyTrackedShare returns the tracked event's percentage on one day.
func (a *TaxonomyAnalyzer) DailyTrackedShare(day int) float64 {
	t := a.DailyTotal[day]
	if t == 0 {
		return 0
	}
	return float64(a.DailyTracked[day]) / float64(t) * 100
}
