package core

import (
	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// TCPConfig scales the inter-VM TCP experiments. The paper's protocol
// (Section 4.2): a deployment of 20 small VMs in pairs — ten VMs measure
// 1-byte roundtrip latency, ten measure bandwidth by sending 2 GB — for
// 10,000 total measurements. Because our per-host placement quality is
// static, pairs are re-drawn from a fleet between measurements to expose the
// placement distribution the paper sampled over days.
// Both measurements share one cloud and one pair-draw stream, so the
// experiment is a single cell: it never parallelizes internally.
type TCPConfig struct {
	Proto
	LatencySamples  int   // paper: ~10,000 across the latency pairs
	BandwidthPairs  int   // distinct VM pairs sampled for bandwidth
	TransfersPer    int   // transfers per pair
	TransferBytes   int64 // paper: 2 GB
	FleetSize       int
	WithDegradation bool
}

// DefaultTCPConfig is the paper-scale protocol.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		Proto:          Defaults(),
		LatencySamples: 10000,
		BandwidthPairs: 200,
		TransfersPer:   5,
		TransferBytes:  2_000_000_000,
		FleetSize:      200,
	}
}

// TCPResult holds the reproduced Fig. 4 (latency) and Fig. 5 (bandwidth)
// distributions.
type TCPResult struct {
	LatencyMS     *metrics.Sample // roundtrip latency, milliseconds
	BandwidthMBps *metrics.Sample // pair bandwidth, MB/s
}

// RunTCP executes both TCP experiments.
func RunTCP(cfg TCPConfig) *TCPResult {
	if cfg.LatencySamples == 0 {
		cfg.LatencySamples = 10000
	}
	if cfg.BandwidthPairs == 0 {
		cfg.BandwidthPairs = 200
	}
	if cfg.TransfersPer == 0 {
		cfg.TransfersPer = 5
	}
	if cfg.TransferBytes == 0 {
		cfg.TransferBytes = 2_000_000_000
	}
	if cfg.FleetSize == 0 {
		cfg.FleetSize = 200
	}
	ccfg := azure.Config{Seed: cfg.Seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = cfg.WithDegradation
	cloud := azure.NewCloud(ccfg)
	vms := cloud.Controller.ReadyFleet(cfg.FleetSize, fabric.Worker, fabric.Small)
	res := &TCPResult{
		LatencyMS:     metrics.NewSample(cfg.LatencySamples),
		BandwidthMBps: metrics.NewSample(cfg.BandwidthPairs * cfg.TransfersPer),
	}
	pick := simrand.New(cfg.Seed).Fork("tcp-pairs")

	// Latency pairs: 5 client/server pairs as in the paper.
	for pair := 0; pair < 5; pair++ {
		pair := pair
		cl := cloud.NewClient(vms[2*pair], pair)
		peer := vms[2*pair+1]
		samples := cfg.LatencySamples / 5
		cloud.Engine.Spawn("lat", func(p *sim.Proc) {
			for i := 0; i < samples; i++ {
				rtt := cl.TCPRoundtrip(p, peer)
				res.LatencyMS.Add(rtt.Seconds() * 1000)
			}
		})
	}

	// Bandwidth pairs: re-drawn across the fleet.
	cloud.Engine.Spawn("bw", func(p *sim.Proc) {
		for pair := 0; pair < cfg.BandwidthPairs; pair++ {
			a := vms[pick.IntN(len(vms))]
			b := vms[pick.IntN(len(vms))]
			if a == b {
				b = vms[(pick.IntN(len(vms)-1)+1+indexOf(vms, a))%len(vms)]
			}
			cl := cloud.NewClient(a, 10+pair)
			for t := 0; t < cfg.TransfersPer; t++ {
				elapsed := cl.TCPSend(p, b, cfg.TransferBytes)
				res.BandwidthMBps.Add(float64(cfg.TransferBytes) / 1e6 / elapsed.Seconds())
			}
		}
	})
	cloud.Engine.Run()
	return res
}

func indexOf(vms []*fabric.VM, v *fabric.VM) int {
	for i, x := range vms {
		if x == v {
			return i
		}
	}
	return 0
}

// Anchors compares against the published Figs. 4 and 5 quantile claims.
func (r *TCPResult) Anchors() []Anchor {
	return []Anchor{
		{"P(latency ≤ 1 ms)", "%", 50, r.LatencyMS.FracLE(1) * 100},
		{"P(latency ≤ 2 ms)", "%", 75, r.LatencyMS.FracLE(2) * 100},
		{"P(bandwidth ≥ 90 MB/s)", "%", 50, (1 - r.BandwidthMBps.FracLE(90)) * 100},
		{"P(bandwidth ≤ 30 MB/s)", "%", 15, r.BandwidthMBps.FracLE(30) * 100},
		{"max bandwidth (GigE cap)", "MB/s", 125, r.BandwidthMBps.Quantile(1)},
	}
}
