package core

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
)

// Fig3Config scales the queue storage experiment. The paper's protocol
// (Section 3.3): one queue shared by 1-192 worker roles; Add, Peek and
// Receive measured separately; message sizes 512 B - 8 kB.
type Fig3Config struct {
	Proto
	MsgSize int // bytes (paper figure: 512)
	OpsEach int // operations per client per phase
}

// DefaultFig3Config is the paper-scale protocol at 512-byte messages.
func DefaultFig3Config() Fig3Config {
	p := Defaults()
	p.Clients = DefaultClientCounts()
	return Fig3Config{Proto: p, MsgSize: 512, OpsEach: 100}
}

func (cfg Fig3Config) withDefaults() Fig3Config {
	if cfg.Clients == nil {
		cfg.Clients = DefaultClientCounts()
	}
	if cfg.MsgSize == 0 {
		cfg.MsgSize = 512
	}
	if cfg.OpsEach == 0 {
		cfg.OpsEach = 100
	}
	return cfg
}

// Fig3Point holds per-client ops/s for the three operations at one level.
type Fig3Point struct {
	Clients    int
	AddOps     float64
	PeekOps    float64
	ReceiveOps float64
}

// AggAdd returns service-side Add throughput.
func (p Fig3Point) AggAdd() float64 { return p.AddOps * float64(p.Clients) }

// AggPeek returns service-side Peek throughput.
func (p Fig3Point) AggPeek() float64 { return p.PeekOps * float64(p.Clients) }

// AggReceive returns service-side Receive throughput.
func (p Fig3Point) AggReceive() float64 { return p.ReceiveOps * float64(p.Clients) }

// Fig3Result is the reproduced Fig. 3 dataset.
type Fig3Result struct {
	MsgSize int
	Points  []Fig3Point
}

// RunFig3 executes the queue operation sweep. As in Fig. 2, each ladder
// level is an isolated cell and shards over cfg.Workers.
func RunFig3(cfg Fig3Config) *Fig3Result {
	cfg = cfg.withDefaults()
	res := &Fig3Result{MsgSize: cfg.MsgSize}
	pool := sched.New(cfg.Workers)
	res.Points = sched.Map(pool, len(cfg.Clients), func(i int) Fig3Point {
		return runFig3Level(cfg, cfg.Clients[i])
	})
	return res
}

func runFig3Level(cfg Fig3Config, n int) Fig3Point {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(n)*15485863}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	q := cloud.Queue.CreateQueue("bench")
	// Keep the queue deep enough that Receive never idles.
	q.Prefill(n*cfg.OpsEach+1000, cfg.MsgSize)
	pt := Fig3Point{Clients: n}

	run := func(op func(p *sim.Proc) error) float64 {
		var ops int
		var sec float64
		for c := 0; c < n; c++ {
			cloud.Engine.Spawn(fmt.Sprintf("qc%d", c), func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < cfg.OpsEach; i++ {
					if err := op(p); err != nil {
						panic(err)
					}
					ops++
				}
				sec += (p.Now() - start).Seconds()
			})
		}
		cloud.Engine.Run()
		return float64(ops) / sec
	}

	pt.AddOps = run(func(p *sim.Proc) error {
		_, err := cloud.Queue.Add(p, q, "m", cfg.MsgSize)
		return err
	})
	pt.PeekOps = run(func(p *sim.Proc) error {
		_, _, err := cloud.Queue.Peek(p, q)
		return err
	})
	pt.ReceiveOps = run(func(p *sim.Proc) error {
		_, _, _, err := cloud.Queue.Receive(p, q, time.Hour)
		return err
	})
	return pt
}

// Anchors compares against the published Fig. 3 numbers.
func (r *Fig3Result) Anchors() []Anchor {
	var out []Anchor
	find := func(n int) *Fig3Point {
		for i := range r.Points {
			if r.Points[i].Clients == n {
				return &r.Points[i]
			}
		}
		return nil
	}
	if p := find(64); p != nil {
		out = append(out, Anchor{"add aggregate peak @64", "ops/s", 569, p.AggAdd()})
		out = append(out, Anchor{"receive aggregate peak @64", "ops/s", 424, p.AggReceive()})
	}
	if p := find(128); p != nil {
		out = append(out, Anchor{"peek aggregate @128", "ops/s", 3392, p.AggPeek()})
	}
	if p := find(192); p != nil {
		out = append(out, Anchor{"peek aggregate @192 (still rising)", "ops/s", 3878, p.AggPeek()})
	}
	if p := find(16); p != nil {
		out = append(out, Anchor{"per-client add @16 (15-20 ops/s)", "ops/s", 17.5, p.AddOps})
	}
	return out
}

// QueueDepthConfig scales the queue-depth invariance check — the paper's
// 200k vs 2M message comparison (Section 3.3).
type QueueDepthConfig struct {
	Proto
	SmallDepth, LargeDepth int
}

// DefaultQueueDepthConfig is the paper-scale comparison.
func DefaultQueueDepthConfig() QueueDepthConfig {
	return QueueDepthConfig{Proto: Defaults(), SmallDepth: 200000, LargeDepth: 2000000}
}

// QueueDepthResult compares operation rates at two queue depths — the
// paper's 200k vs 2M message invariance check.
type QueueDepthResult struct {
	SmallDepth, LargeDepth int
	SmallRate, LargeRate   float64 // per-client Receive ops/s at 8 clients
}

// RunQueueDepth executes the queue-depth invariance experiment. Its two
// depths are independent cells and shard over cfg.Workers.
func RunQueueDepth(cfg QueueDepthConfig) *QueueDepthResult {
	if cfg.SmallDepth == 0 {
		cfg.SmallDepth = 200000
	}
	if cfg.LargeDepth == 0 {
		cfg.LargeDepth = 2000000
	}
	rate := func(depth int, salt uint64) float64 {
		ccfg := azure.Config{Seed: cfg.Seed + salt}
		ccfg.Fabric = fabric.DefaultConfig()
		ccfg.Fabric.Degradation = false
		cloud := azure.NewCloud(ccfg)
		q := cloud.Queue.CreateQueue("bench")
		q.Prefill(depth, 512)
		var ops int
		var sec float64
		for c := 0; c < 8; c++ {
			cloud.Engine.Spawn("qc", func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < 50; i++ {
					if _, _, _, err := cloud.Queue.Receive(p, q, time.Hour); err != nil {
						panic(err)
					}
					ops++
				}
				sec += (p.Now() - start).Seconds()
			})
		}
		cloud.Engine.Run()
		return float64(ops) / sec
	}
	pool := sched.New(cfg.Workers)
	rates := sched.Map(pool, 2, func(i int) float64 {
		if i == 0 {
			return rate(cfg.SmallDepth, 0)
		}
		return rate(cfg.LargeDepth, 1)
	})
	return &QueueDepthResult{
		SmallDepth: cfg.SmallDepth,
		LargeDepth: cfg.LargeDepth,
		SmallRate:  rates[0],
		LargeRate:  rates[1],
	}
}

// Anchors reports the paper's invariance claim: receive throughput does
// not depend on queue depth, so the large/small rate ratio is 1.
func (r *QueueDepthResult) Anchors() []Anchor {
	if r.SmallRate <= 0 {
		return nil
	}
	return []Anchor{{"receive rate ratio, deep vs shallow queue", "x", 1.0, r.LargeRate / r.SmallRate}}
}
