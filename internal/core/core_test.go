package core

import (
	"math"
	"testing"

	"azureobs/internal/fabric"
)

func TestAnchorRelErr(t *testing.T) {
	a := Anchor{Paper: 100, Measured: 90}
	if math.Abs(a.RelErr()-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", a.RelErr())
	}
	if (Anchor{Paper: 0, Measured: 5}).RelErr() != 0 {
		t.Fatal("zero-paper RelErr should be 0")
	}
	if s := a.String(); s == "" {
		t.Fatal("empty anchor string")
	}
}

func TestDefaultClientCounts(t *testing.T) {
	c := DefaultClientCounts()
	if c[0] != 1 || c[len(c)-1] != 192 {
		t.Fatalf("client ladder = %v", c)
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatal("ladder not increasing")
		}
	}
}

func TestFig1SmallScale(t *testing.T) {
	cfg := Fig1Config{Proto: Proto{Seed: 1, Clients: []int{1, 32}, Runs: 1}, BlobMB: 64}
	r := RunFig1(cfg)
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p1, p32 := r.Points[0], r.Points[1]
	if math.Abs(p1.DownMBps-13) > 1.5 {
		t.Fatalf("1-client download = %.2f, want ~13", p1.DownMBps)
	}
	if math.Abs(p32.DownMBps-6.5) > 1.2 {
		t.Fatalf("32-client download = %.2f, want ~6.5", p32.DownMBps)
	}
	if p1.UpMBps < 5 || p1.UpMBps > 8 {
		t.Fatalf("1-client upload = %.2f, want ~6.5", p1.UpMBps)
	}
	if p32.DownAggMBps < p1.DownAggMBps {
		t.Fatal("aggregate download should grow with clients")
	}
	for _, a := range r.Anchors() {
		if a.Name == "download per-client @1 (100 Mbit NIC bound)" && a.RelErr() > 0.15 {
			t.Fatalf("anchor off: %v", a)
		}
	}
}

func TestFig1Deterministic(t *testing.T) {
	cfg := Fig1Config{Proto: Proto{Seed: 5, Clients: []int{8}, Runs: 1}, BlobMB: 32}
	a := RunFig1(cfg)
	b := RunFig1(cfg)
	if a.Points[0] != b.Points[0] {
		t.Fatalf("nondeterministic fig1: %+v vs %+v", a.Points[0], b.Points[0])
	}
}

func TestFig2SmallScale(t *testing.T) {
	cfg := Fig2Config{Proto: Proto{Seed: 1, Clients: []int{1, 8, 64}}, EntitySize: 4096,
		Inserts: 40, Queries: 40, Updates: 20}
	r := RunFig2(cfg)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p1, p8, p64 := r.Points[0], r.Points[1], r.Points[2]
	if p1.InsertOps < 20 || p1.InsertOps > 34 {
		t.Fatalf("1-client insert = %.1f, want ~27", p1.InsertOps)
	}
	if p1.QueryOps <= p1.InsertOps {
		t.Fatal("query should be faster than insert")
	}
	// Update aggregate peaks at 8.
	if !(p8.UpdateOps*8 > p1.UpdateOps && p8.UpdateOps*8 > p64.UpdateOps*64) {
		t.Fatalf("update aggregate not peaked at 8: %v %v %v",
			p1.UpdateOps, p8.UpdateOps*8, p64.UpdateOps*64)
	}
	// All insert runs complete at 4 kB.
	if p64.InsertSurvivors != 64 {
		t.Fatalf("4kB insert survivors = %d, want 64", p64.InsertSurvivors)
	}
}

func TestFig2Overload64k(t *testing.T) {
	cfg := Fig2Config{Proto: Proto{Seed: 1, Clients: []int{128}}, EntitySize: 65536,
		Inserts: 500, Queries: 1, Updates: 1}
	r := RunFig2(cfg)
	s := r.Points[0].InsertSurvivors
	if s < 70 || s > 120 {
		t.Fatalf("64kB@128 insert survivors = %d, want ~94", s)
	}
	anchors := r.Anchors()
	found := false
	for _, a := range anchors {
		if a.Name == "64kB insert survivors @128" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing 64kB survivor anchor")
	}
}

func TestFig3SmallScale(t *testing.T) {
	cfg := Fig3Config{Proto: Proto{Seed: 1, Clients: []int{1, 64, 192}}, MsgSize: 512, OpsEach: 30}
	r := RunFig3(cfg)
	p1, p64, p192 := r.Points[0], r.Points[1], r.Points[2]
	if p1.AddOps < 14 || p1.AddOps > 21 {
		t.Fatalf("1-client add = %.1f, want 15-20", p1.AddOps)
	}
	if math.Abs(p64.AggAdd()-569) > 80 {
		t.Fatalf("add aggregate @64 = %.0f, want ~569", p64.AggAdd())
	}
	if p192.AggAdd() >= p64.AggAdd() {
		t.Fatal("add aggregate should decline past 64")
	}
	if p192.AggPeek() <= p64.AggPeek() {
		t.Fatal("peek aggregate should keep rising")
	}
	if p64.ReceiveOps >= p64.AddOps {
		t.Fatal("receive should be slower than add")
	}
}

func TestQueueDepthInvariance(t *testing.T) {
	r := RunQueueDepth(QueueDepthConfig{Proto: Proto{Seed: 1}, SmallDepth: 20000, LargeDepth: 200000})
	if math.Abs(r.SmallRate-r.LargeRate)/r.SmallRate > 0.1 {
		t.Fatalf("depth sensitivity: %.2f vs %.2f", r.SmallRate, r.LargeRate)
	}
}

func TestTable1SmallScale(t *testing.T) {
	r := RunTable1(Table1Config{Proto: Proto{Seed: 1, Runs: 60}})
	if r.SuccessRuns != 60 {
		t.Fatalf("successes = %d", r.SuccessRuns)
	}
	// Aggregate across sizes: every collected cell should be plausible.
	ws := r.Cell(fabric.Worker, fabric.Small, "Run")
	if ws.N() > 3 && math.Abs(ws.Mean()-533) > 60 {
		t.Fatalf("worker-small run mean = %.1f, want ~533", ws.Mean())
	}
	del := r.Cell(fabric.Worker, fabric.Small, "Delete")
	if del.N() > 3 && (del.Mean() < 1 || del.Mean() > 15) {
		t.Fatalf("delete mean = %.1f, want ~6", del.Mean())
	}
	// XL never collects Add samples.
	if r.Cell(fabric.Worker, fabric.ExtraLarge, "Add").N() != 0 {
		t.Fatal("XL Add should be N/A")
	}
	if r.Cell(fabric.Web, fabric.ExtraLarge, "Add").N() != 0 {
		t.Fatal("web XL Add should be N/A")
	}
	if len(r.Anchors()) < 10 {
		t.Fatalf("too few anchors: %d", len(r.Anchors()))
	}
}

func TestTable1Percentiles(t *testing.T) {
	r := RunTable1(Table1Config{Proto: Proto{Seed: 2, Runs: 431}})
	pct := r.Percentiles()
	// With PosNormal(533, 36), ~58% of worker-small first instances land
	// within 9 min and ~97% within 10 (see EXPERIMENTS.md for the
	// discussion of the paper's internally inconsistent 85% claim).
	if r.FirstReadyWorkerSmall.N() > 25 {
		if pct.WorkerWithin10Min < 0.85 {
			t.Fatalf("P(worker ≤ 10min) = %.2f, want ≥ 0.85", pct.WorkerWithin10Min)
		}
		if pct.WorkerWithin9Min <= 0.35 || pct.WorkerWithin9Min >= 0.85 {
			t.Fatalf("P(worker ≤ 9min) = %.2f, implausible", pct.WorkerWithin9Min)
		}
	}
	if r.FirstReadyWebSmall.N() > 10 && pct.WebWithin11Min < 0.8 {
		t.Fatalf("P(web ≤ 11min) = %.2f, want ≥ 0.8", pct.WebWithin11Min)
	}
}

func TestTable1FailureRate(t *testing.T) {
	r := RunTable1(Table1Config{Proto: Proto{Seed: 3, Runs: 250}})
	rate := r.FailureRate()
	if rate < 0.002 || rate > 0.08 {
		t.Fatalf("failure rate = %.3f, want ~0.026", rate)
	}
}

func TestTCPDistributions(t *testing.T) {
	r := RunTCP(TCPConfig{Proto: Proto{Seed: 1}, LatencySamples: 5000, BandwidthPairs: 100, TransfersPer: 3})
	if p := r.LatencyMS.FracLE(1); math.Abs(p-0.5) > 0.04 {
		t.Fatalf("P(≤1ms) = %.3f, want ~0.5", p)
	}
	if p := r.LatencyMS.FracLE(2); math.Abs(p-0.75) > 0.04 {
		t.Fatalf("P(≤2ms) = %.3f, want ~0.75", p)
	}
	if p := 1 - r.BandwidthMBps.FracLE(90); p < 0.35 || p > 0.65 {
		t.Fatalf("P(≥90MB/s) = %.3f, want ~0.5", p)
	}
	if p := r.BandwidthMBps.FracLE(30); p < 0.06 || p > 0.26 {
		t.Fatalf("P(≤30MB/s) = %.3f, want ~0.15", p)
	}
	if r.BandwidthMBps.Quantile(1) > 125.01 {
		t.Fatalf("bandwidth above GigE: %.1f", r.BandwidthMBps.Quantile(1))
	}
}

func TestStartupScaling(t *testing.T) {
	r := RunStartupScaling(StartupScalingConfig{Proto: Proto{Seed: 1, Runs: 15}, Sizes: []int{1, 4, 16}})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p1, p4, p16 := r.Points[0], r.Points[1], r.Points[2]
	// First-instance time is size-independent (~533 s for small workers).
	if math.Abs(p1.FirstReady.Mean()-p16.FirstReady.Mean()) > 60 {
		t.Fatalf("first-ready depends on size: %.0f vs %.0f",
			p1.FirstReady.Mean(), p16.FirstReady.Mean())
	}
	// All-ready grows roughly linearly at the 60-100 s/instance lag.
	if !(p1.AllReady.Mean() < p4.AllReady.Mean() && p4.AllReady.Mean() < p16.AllReady.Mean()) {
		t.Fatal("all-ready not increasing with size")
	}
	slope := r.MarginalSecondsPerInstance()
	if slope < 60 || slope > 100 {
		t.Fatalf("marginal startup = %.1f s/instance, want 60-100", slope)
	}
}

func TestSQLCompare(t *testing.T) {
	r := RunSQLCompare(SQLCompareConfig{Proto: Proto{Seed: 1, Clients: []int{1, 128}}, OpsEach: 40})
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	solo, crowd := r.Points[0], r.Points[1]
	// Low concurrency: the relational tier is faster per op than the
	// HTTP-fronted table service.
	if solo.SQLSelectOps <= solo.TableQueryOps {
		t.Fatalf("sql select (%.1f) not faster than table query (%.1f) at 1 client",
			solo.SQLSelectOps, solo.TableQueryOps)
	}
	if solo.ThrottledOpens != 0 {
		t.Fatal("single client throttled")
	}
	// High concurrency: the SQL connection cap bites; table storage admits
	// everyone.
	if crowd.ThrottledOpens == 0 {
		t.Fatal("no SQL throttling at 128 clients")
	}
	if crowd.ConnectedOpens+crowd.ThrottledOpens != 128 {
		t.Fatalf("opens %d + throttled %d != 128", crowd.ConnectedOpens, crowd.ThrottledOpens)
	}
	// Per-connected-client rates degrade with concurrency on both tiers.
	if crowd.SQLInsertOps >= solo.SQLInsertOps || crowd.TableInsertOps >= solo.TableInsertOps {
		t.Fatal("no contention degradation observed")
	}
}

func TestReplicationAblation(t *testing.T) {
	r := RunReplication(ReplicationConfig{Proto: Proto{Seed: 1}, Clients: 64, BlobMB: 64, Replicas: []int{1, 4}})
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	one, four := r.Points[0], r.Points[1]
	if one.AggregateMBps > 420 {
		t.Fatalf("single-blob aggregate %.0f above per-blob ceiling", one.AggregateMBps)
	}
	if four.SpeedupVsOne < 1.5 {
		t.Fatalf("4-way replication speedup = %.2f, want meaningful gain", four.SpeedupVsOne)
	}
	if four.PerClientMBps <= one.PerClientMBps {
		t.Fatal("replication did not raise per-client bandwidth")
	}
	if one.SpeedupVsOne != 1 {
		t.Fatalf("baseline speedup = %v", one.SpeedupVsOne)
	}
}

func TestPropFilter(t *testing.T) {
	r := RunPropFilter(PropFilterConfig{Proto: Proto{Seed: 1, Clients: []int{1, 32}}, Entities: 220000})
	if r.Points[0].Timeouts != 0 {
		t.Fatalf("solo filter queries timed out: %d", r.Points[0].Timeouts)
	}
	p32 := r.Points[1]
	if p32.Timeouts*2 <= p32.Queries {
		t.Fatalf("32-way filter timeouts = %d/%d, want over half", p32.Timeouts, p32.Queries)
	}
}
