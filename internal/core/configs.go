package core

import (
	"time"

	"azureobs/internal/netsim"
)

// This file is the single home of the three protocol variants of every
// experiment: the paper-scale default, the quick reduced scale behind
// `azbench -quick`, and the calibrated validation scale `azvalidate`
// checks tolerances against. Before the registry existed, the quick and
// validate numbers lived as literals inside the two drivers and drifted
// independently; now both binaries expand a Proto through these functions.

// Fig1ConfigFor expands a Proto into the blob-bandwidth config.
func Fig1ConfigFor(p Proto) Fig1Config {
	cfg := DefaultFig1Config()
	switch p.Scale {
	case QuickScale:
		cfg.Clients = []int{1, 8, 32, 128}
		cfg.BlobMB = 128
		cfg.Runs = 1
	case ValidateScale:
		cfg.Clients = []int{1, 32, 64, 128, 192}
		cfg.BlobMB = 64
		cfg.Runs = 1
	}
	cfg.Proto = p.Apply(cfg.Proto)
	if p.Size > 0 {
		cfg.BlobMB = int64(p.Size) / netsim.MB
	}
	return cfg
}

// Fig2ConfigFor expands a Proto into the table-operations config.
func Fig2ConfigFor(p Proto) Fig2Config {
	cfg := DefaultFig2Config()
	switch p.Scale {
	case QuickScale:
		cfg.Clients = []int{1, 8, 64, 128}
		cfg.Inserts, cfg.Queries, cfg.Updates = 60, 60, 30
	case ValidateScale:
		cfg.Inserts, cfg.Queries, cfg.Updates = 60, 60, 30
	}
	cfg.Proto = p.Apply(cfg.Proto)
	if p.Size > 0 {
		cfg.EntitySize = p.Size
	}
	return cfg
}

// Fig3ConfigFor expands a Proto into the queue-operations config.
func Fig3ConfigFor(p Proto) Fig3Config {
	cfg := DefaultFig3Config()
	switch p.Scale {
	case QuickScale:
		cfg.Clients = []int{1, 16, 64, 128, 192}
		cfg.OpsEach = 40
	case ValidateScale:
		cfg.OpsEach = 40
	}
	cfg.Proto = p.Apply(cfg.Proto)
	if p.Size > 0 {
		cfg.MsgSize = p.Size
	}
	return cfg
}

// Table1ConfigFor expands a Proto into the VM-lifecycle config.
func Table1ConfigFor(p Proto) Table1Config {
	cfg := DefaultTable1Config()
	switch p.Scale {
	case QuickScale:
		cfg.Runs = 80
	case ValidateScale:
		cfg.Runs = 120
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// TCPConfigFor expands a Proto into the inter-VM TCP config.
func TCPConfigFor(p Proto) TCPConfig {
	cfg := DefaultTCPConfig()
	switch p.Scale {
	case QuickScale:
		cfg.LatencySamples = 2000
		cfg.BandwidthPairs = 50
		cfg.TransfersPer = 2
	case ValidateScale:
		cfg.LatencySamples = 5000
		cfg.BandwidthPairs = 100
		cfg.TransfersPer = 3
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// PropFilterConfigFor expands a Proto into the property-filter ablation
// config.
func PropFilterConfigFor(p Proto) PropFilterConfig {
	cfg := DefaultPropFilterConfig()
	switch p.Scale {
	case QuickScale:
		cfg.Entities = 110000
	case ValidateScale:
		cfg.Clients = []int{1, 32}
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// QueueDepthConfigFor expands a Proto into the queue-depth invariance
// config.
func QueueDepthConfigFor(p Proto) QueueDepthConfig {
	cfg := DefaultQueueDepthConfig()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		cfg.SmallDepth, cfg.LargeDepth = 20000, 200000
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// ReplicationConfigFor expands a Proto into the blob-replication ablation
// config.
func ReplicationConfigFor(p Proto) ReplicationConfig {
	cfg := DefaultReplicationConfig()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		// Keep 128 readers per replica at k=4 — the k-fold claim needs every
		// replica saturated — and shrink only the blob.
		cfg.BlobMB = 64
	}
	cfg.Proto = p.Apply(cfg.Proto)
	if p.Size > 0 {
		cfg.BlobMB = int64(p.Size) / netsim.MB
	}
	return cfg
}

// SQLCompareConfigFor expands a Proto into the SQL-vs-table config.
func SQLCompareConfigFor(p Proto) SQLCompareConfig {
	cfg := DefaultSQLCompareConfig()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		cfg.Clients = []int{1, 32, 128}
		cfg.OpsEach = 50
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// StartupConfigFor expands a Proto into the startup-scaling config.
func StartupConfigFor(p Proto) StartupScalingConfig {
	cfg := DefaultStartupScalingConfig()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		cfg.Runs = 8
	}
	cfg.Proto = p.Apply(cfg.Proto)
	return cfg
}

// Fig8GeoConfigFor expands a Proto into the cross-DC geo config.
func Fig8GeoConfigFor(p Proto) Fig8GeoConfig {
	cfg := DefaultFig8GeoConfig()
	switch p.Scale {
	case QuickScale:
		cfg.ClientsPerRegion = 16
		cfg.HotNames = 8
		cfg.Horizon = 60 * time.Second
	case ValidateScale:
		cfg.ClientsPerRegion = 48
		cfg.Horizon = 120 * time.Second
	}
	cfg.Proto = p.Apply(cfg.Proto)
	if p.Size > 0 {
		cfg.BlobBytes = int64(p.Size)
	}
	return cfg
}

// Fig2SizesBaseFor expands a Proto into the base config of the
// entity-size sweep (the sweep itself perturbs EntitySize and Seed per
// size, exactly as RunFig2Sizes always has).
func Fig2SizesBaseFor(p Proto) Fig2Config {
	base := DefaultFig2Config()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		base.Clients = []int{1, 16, 64}
		base.Inserts, base.Queries, base.Updates = 50, 50, 25
	}
	base.Proto = p.Apply(base.Proto)
	return base
}

// Fig3SizesBaseFor expands a Proto into the base config of the
// message-size sweep.
func Fig3SizesBaseFor(p Proto) Fig3Config {
	base := DefaultFig3Config()
	if p.Scale == QuickScale || p.Scale == ValidateScale {
		base.Clients = []int{1, 16, 64}
		base.OpsEach = 40
	}
	base.Proto = p.Apply(base.Proto)
	return base
}
