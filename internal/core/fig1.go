package core

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// Fig1Config scales the blob bandwidth experiment. The paper's protocol
// (Section 3.1): n worker roles simultaneously download the same 1 GB blob /
// upload distinct 1 GB blobs to one container; three runs per setting.
type Fig1Config struct {
	Proto
	BlobMB     int64 // per-transfer size (paper: 1024)
	SkipUpload bool
}

// DefaultFig1Config is the paper-scale protocol.
func DefaultFig1Config() Fig1Config {
	p := Defaults()
	p.Clients = DefaultClientCounts()
	p.Runs = 3
	return Fig1Config{Proto: p, BlobMB: 1024}
}

func (cfg Fig1Config) withDefaults() Fig1Config {
	if cfg.Clients == nil {
		cfg.Clients = DefaultClientCounts()
	}
	if cfg.BlobMB == 0 {
		cfg.BlobMB = 1024
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	return cfg
}

// Fig1Point is the measurement at one concurrency level.
type Fig1Point struct {
	Clients        int
	DownMBps       float64 // mean per-client download bandwidth
	UpMBps         float64 // mean per-client upload bandwidth
	DownAggMBps    float64
	UpAggMBps      float64
	DownMBpsStddev float64
}

// Fig1Result is the reproduced Fig. 1 dataset.
type Fig1Result struct {
	Points []Fig1Point
}

// fig1Cell is the outcome of one independent (concurrency level, run)
// cell: a download round and (unless skipped) an upload round, each on
// its own fresh cloud.
type fig1Cell struct {
	down    *metrics.Summary
	downAgg float64
	up      *metrics.Summary
	upAgg   float64
}

// RunFig1 executes the blob bandwidth sweep. Cells — one per (level, run)
// pair — are independent simulations with seeds derived only from the
// run index, so they shard over cfg.Workers; the per-level summaries are
// then merged in the serial order, keeping results bit-identical at any
// worker count.
func RunFig1(cfg Fig1Config) *Fig1Result {
	cfg = cfg.withDefaults()
	runs := cfg.Runs
	pool := sched.New(cfg.Workers)
	var cells []fig1Cell
	if cfg.Domains > 0 {
		cells = runFig1Domains(cfg, pool)
	} else {
		cells = sched.Map(pool, len(cfg.Clients)*runs, func(i int) fig1Cell {
			n, run := cfg.Clients[i/runs], i%runs
			var c fig1Cell
			c.down, c.downAgg = fig1Download(cfg, n, run)
			if !cfg.SkipUpload {
				c.up, c.upAgg = fig1Upload(cfg, n, run)
			}
			return c
		})
	}

	res := &Fig1Result{}
	for li, n := range cfg.Clients {
		pt := Fig1Point{Clients: n}
		var down, up, downAgg, upAgg metrics.Summary
		for run := 0; run < runs; run++ {
			c := cells[li*runs+run]
			down.Merge(c.down)
			downAgg.Add(c.downAgg)
			if c.up != nil {
				up.Merge(c.up)
				upAgg.Add(c.upAgg)
			}
		}
		pt.DownMBps = down.Mean()
		pt.DownMBpsStddev = down.Std()
		pt.DownAggMBps = downAgg.Mean()
		pt.UpMBps = up.Mean()
		pt.UpAggMBps = upAgg.Mean()
		res.Points = append(res.Points, pt)
	}
	return res
}

// fig1Round is one download or upload round mid-flight: the world is built
// and the clients are in the calendar, but the round's engine has not yet
// drained. The legacy serial path runs the engine itself; the domain path
// hands the engine to a sim.Domains group and harvests via finish after the
// group run. Both paths execute the identical build sequence, which is what
// keeps their traces byte-identical.
type fig1Round struct {
	cloud   *azure.Cloud
	per     *metrics.Summary
	total   int64
	lastEnd float64
	base    float64
	flats   []fig1FlatClient
}

// finish reduces the round's accumulators once its engine has drained.
func (r *fig1Round) finish() (*metrics.Summary, float64) {
	return r.per, fig1Agg(r.total, r.lastEnd, r.base)
}

// fig1DownloadStart builds one download round — n clients fetching the same
// blob — on eng (nil: a fresh standalone engine). The shared blob is staged
// untimed with a build-time drain; a domain member engine supports that
// exactly like a standalone one, and the group run later resumes it at its
// advanced clock.
func fig1DownloadStart(cfg Fig1Config, n, run int, eng *sim.Engine) *fig1Round {
	r := &fig1Round{cloud: fig1CloudOn(eng, cfg, run), per: &metrics.Summary{}}
	cloud := r.cloud
	cloud.Blob.CreateContainer("bench")
	size := cfg.BlobMB * netsim.MB

	// Stage the shared blob without timing it.
	staged := false
	stager := cloud.NewClient(cloud.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0], 1_000_000)
	cloud.Engine.Spawn("stage", func(p *sim.Proc) {
		if err := stager.PutBlob(p, "bench", "shared-1g", size, true); err != nil {
			panic(err)
		}
		staged = true
	})
	cloud.Engine.Run()
	if !staged {
		panic("fig1: staging failed")
	}

	vms := cloud.Controller.ReadyFleet(n, fabric.Worker, fabric.Small)
	if cfg.Flat {
		r.flats = make([]fig1FlatClient, n)
		for i := 0; i < n; i++ {
			fc := &r.flats[i]
			fc.init(cloud, vms[i], i, r.per, &r.total, &r.lastEnd)
			fc.download("bench", "shared-1g")
		}
	} else {
		for i := 0; i < n; i++ {
			cl := cloud.NewClient(vms[i], i)
			cloud.Engine.Spawn(fmt.Sprintf("dl%d", i), func(p *sim.Proc) {
				start := p.Now()
				got, err := cl.GetBlob(p, "bench", "shared-1g")
				if err != nil {
					panic(err)
				}
				elapsed := (p.Now() - start).Seconds()
				r.per.Add(float64(got) / 1e6 / elapsed)
				r.total += got
				if end := p.Now().Seconds(); end > r.lastEnd {
					r.lastEnd = end
				}
			})
		}
	}
	r.base = cloud.Engine.Now().Seconds()
	return r
}

// fig1Download runs one download round to completion on its own engine.
func fig1Download(cfg Fig1Config, n, run int) (*metrics.Summary, float64) {
	r := fig1DownloadStart(cfg, n, run, nil)
	r.cloud.Engine.Run()
	return r.finish()
}

// fig1Agg computes a round's aggregate MB/s. A degenerate cell (zero
// clients, or a round that moved no bytes) spans no virtual time; its
// aggregate is 0, not the 0/0 NaN the raw division would produce.
func fig1Agg(totalBytes int64, lastEnd, base float64) float64 {
	if lastEnd <= base {
		return 0
	}
	return float64(totalBytes) / 1e6 / (lastEnd - base)
}

// fig1FlatClient is one fig1 client compiled onto the flat-actor path: the
// same azure request the goroutine client issues, with completion handled by
// cached continuations instead of a parked process. One struct (in the
// round's slice) plus three cached closures is the entire per-client cost.
type fig1FlatClient struct {
	a     sim.Actor
	cl    *azure.Client
	start time.Duration

	upload          bool
	size            int64 // upload payload; downloads learn size at completion
	container, name string

	per     *metrics.Summary
	total   *int64
	lastEnd *float64

	onRun  func()
	onDone func(int64, error)
}

func (fc *fig1FlatClient) init(cloud *azure.Cloud, vm *fabric.VM, id int, per *metrics.Summary, total *int64, lastEnd *float64) {
	fc.a.Bind(cloud.Engine, "fig1-flat")
	fc.cl = cloud.NewClient(vm, id)
	fc.per, fc.total, fc.lastEnd = per, total, lastEnd
	fc.onRun = fc.run
	fc.onDone = fc.finish
}

func (fc *fig1FlatClient) download(container, name string) {
	fc.container, fc.name = container, name
	fc.a.Go(fc.onRun)
}

func (fc *fig1FlatClient) uploadBlob(container, name string, size int64) {
	fc.container, fc.name = container, name
	fc.upload, fc.size = true, size
	fc.a.Go(fc.onRun)
}

func (fc *fig1FlatClient) run() {
	fc.start = fc.a.Now()
	if fc.upload {
		fc.cl.PutBlobFlat(&fc.a, fc.container, fc.name, fc.size, true, fc.onDone)
	} else {
		fc.cl.GetBlobFlat(&fc.a, fc.container, fc.name, fc.onDone)
	}
}

func (fc *fig1FlatClient) finish(size int64, err error) {
	if err != nil {
		panic(err)
	}
	elapsed := (fc.a.Now() - fc.start).Seconds()
	fc.per.Add(float64(size) / 1e6 / elapsed)
	*fc.total += size
	if end := fc.a.Now().Seconds(); end > *fc.lastEnd {
		*fc.lastEnd = end
	}
	fc.a.Finish()
}

// fig1UploadStart builds one upload round — n clients pushing distinct
// blobs into one container — on eng (nil: a fresh standalone engine).
func fig1UploadStart(cfg Fig1Config, n, run int, eng *sim.Engine) *fig1Round {
	r := &fig1Round{cloud: fig1CloudOn(eng, cfg, run+7919), per: &metrics.Summary{}}
	cloud := r.cloud
	cloud.Blob.CreateContainer("bench")
	size := cfg.BlobMB * netsim.MB
	vms := cloud.Controller.ReadyFleet(n, fabric.Worker, fabric.Small)
	if cfg.Flat {
		r.flats = make([]fig1FlatClient, n)
		for i := 0; i < n; i++ {
			fc := &r.flats[i]
			fc.init(cloud, vms[i], i, r.per, &r.total, &r.lastEnd)
			fc.uploadBlob("bench", fmt.Sprintf("upload-%d", i), size)
		}
	} else {
		for i := 0; i < n; i++ {
			i := i
			cl := cloud.NewClient(vms[i], i)
			cloud.Engine.Spawn(fmt.Sprintf("ul%d", i), func(p *sim.Proc) {
				start := p.Now()
				if err := cl.PutBlob(p, "bench", fmt.Sprintf("upload-%d", i), size, true); err != nil {
					panic(err)
				}
				elapsed := (p.Now() - start).Seconds()
				r.per.Add(float64(size) / 1e6 / elapsed)
				r.total += size
				if end := p.Now().Seconds(); end > r.lastEnd {
					r.lastEnd = end
				}
			})
		}
	}
	r.base = cloud.Engine.Now().Seconds()
	return r
}

// fig1Upload runs one upload round to completion on its own engine.
func fig1Upload(cfg Fig1Config, n, run int) (*metrics.Summary, float64) {
	r := fig1UploadStart(cfg, n, run, nil)
	r.cloud.Engine.Run()
	return r.finish()
}

// runFig1Domains is RunFig1's cell computation with intra-cell parallelism:
// each (level, run, direction) round is one self-contained simulation unit,
// and units shard across sim.Domains groups of width cfg.Domains (batches of
// groups in turn shard over the scheduler pool). Unit traces are identical
// to the serial path's rounds — same cloud seed, same build sequence — so
// the reassembled cells are bit-identical at every domain count.
func runFig1Domains(cfg Fig1Config, pool *sched.Pool) []fig1Cell {
	runs := cfg.Runs
	dirs := 2
	if cfg.SkipUpload {
		dirs = 1
	}
	total := len(cfg.Clients) * runs * dirs
	type roundResult struct {
		per *metrics.Summary
		agg float64
	}
	units := domainBatches(pool, cfg.Domains, total, cfg.DomainStats,
		func(u int, eng *sim.Engine) func() roundResult {
			cell, dir := u/dirs, u%dirs
			n, run := cfg.Clients[cell/runs], cell%runs
			var r *fig1Round
			if dir == 0 {
				r = fig1DownloadStart(cfg, n, run, eng)
			} else {
				r = fig1UploadStart(cfg, n, run, eng)
			}
			return func() roundResult {
				per, agg := r.finish()
				return roundResult{per, agg}
			}
		})
	cells := make([]fig1Cell, len(cfg.Clients)*runs)
	for c := range cells {
		d := units[c*dirs]
		cells[c].down, cells[c].downAgg = d.per, d.agg
		if dirs == 2 {
			up := units[c*dirs+1]
			cells[c].up, cells[c].upAgg = up.per, up.agg
		}
	}
	return cells
}

// fig1CloudOn builds a round's cloud on eng, or on a fresh standalone
// engine when eng is nil (the legacy serial path).
func fig1CloudOn(eng *sim.Engine, cfg Fig1Config, salt int) *azure.Cloud {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(salt)*1_000_003}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	if eng == nil {
		return azure.NewCloud(ccfg)
	}
	return azure.NewCloudOn(eng, ccfg)
}

// Anchors compares the reproduction against the published Fig. 1 numbers.
func (r *Fig1Result) Anchors() []Anchor {
	var out []Anchor
	find := func(n int) *Fig1Point {
		for i := range r.Points {
			if r.Points[i].Clients == n {
				return &r.Points[i]
			}
		}
		return nil
	}
	if p := find(1); p != nil {
		out = append(out, Anchor{"download per-client @1 (100 Mbit NIC bound)", "MB/s", 13, p.DownMBps})
	}
	if p := find(32); p != nil {
		out = append(out, Anchor{"download per-client @32 (half of single)", "MB/s", 6.5, p.DownMBps})
	}
	if p := find(128); p != nil {
		out = append(out, Anchor{"download aggregate peak @128", "MB/s", 393.4, p.DownAggMBps})
	}
	if p := find(64); p != nil && p.UpMBps > 0 {
		out = append(out, Anchor{"upload per-client @64", "MB/s", 1.25, p.UpMBps})
	}
	if p := find(192); p != nil && p.UpMBps > 0 {
		out = append(out, Anchor{"upload per-client @192", "MB/s", 0.65, p.UpMBps})
		out = append(out, Anchor{"upload aggregate max @192", "MB/s", 124.25, p.UpAggMBps})
	}
	return out
}
