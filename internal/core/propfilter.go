package core

import (
	"fmt"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// PropFilterConfig scales the Section 6.1 ablation: querying a ~220k-entity
// partition with property filters instead of keys, at increasing
// concurrency. The paper observed over half of 32 concurrent clients timing
// out.
type PropFilterConfig struct {
	Proto
	Entities  int // partition population (paper: ~220k)
	PerClient int // filter queries per client
}

// DefaultPropFilterConfig is the paper-scale protocol.
func DefaultPropFilterConfig() PropFilterConfig {
	p := Defaults()
	p.Clients = []int{1, 8, 32}
	return PropFilterConfig{Proto: p, Entities: 220000, PerClient: 1}
}

// PropFilterPoint is the outcome at one concurrency level.
type PropFilterPoint struct {
	Clients     int
	Queries     int
	Timeouts    int
	MeanLatency float64 // seconds, successful queries only
}

// PropFilterResult is the ablation dataset.
type PropFilterResult struct {
	Entities int
	Points   []PropFilterPoint
}

// RunPropFilter executes the property-filter ablation. Each concurrency
// level populates its own cloud, so levels shard over cfg.Workers.
func RunPropFilter(cfg PropFilterConfig) *PropFilterResult {
	if cfg.Entities == 0 {
		cfg.Entities = 220000
	}
	if cfg.Clients == nil {
		cfg.Clients = []int{1, 8, 32}
	}
	if cfg.PerClient == 0 {
		cfg.PerClient = 1
	}
	res := &PropFilterResult{Entities: cfg.Entities}
	pool := sched.New(cfg.Workers)
	res.Points = sched.Map(pool, len(cfg.Clients), func(li int) PropFilterPoint {
		return runPropFilterLevel(cfg, cfg.Clients[li])
	})
	return res
}

func runPropFilterLevel(cfg PropFilterConfig, n int) PropFilterPoint {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(n)}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	cloud.Table.CreateTable("bench")
	for i := 0; i < cfg.Entities; i++ {
		e := &tablesvc.Entity{
			PartitionKey: "part",
			RowKey:       fmt.Sprintf("row-%06d", i),
			Props:        map[string]tablesvc.Prop{"A": tablesvc.IntProp(int64(i % 100))},
		}
		cloud.Table.Backdoor("bench", e)
	}
	pt := PropFilterPoint{Clients: n}
	var okCount int
	var okSec float64
	for c := 0; c < n; c++ {
		cloud.Engine.Spawn("scan", func(p *sim.Proc) {
			for i := 0; i < cfg.PerClient; i++ {
				start := p.Now()
				_, err := cloud.Table.QueryFilter(p, "bench", "part",
					func(e *tablesvc.Entity) bool { return e.Props["A"].Int == 7 })
				pt.Queries++
				if storerr.IsCode(err, storerr.CodeTimeout) {
					pt.Timeouts++
					continue
				}
				if err != nil {
					panic(err)
				}
				okCount++
				okSec += (p.Now() - start).Seconds()
			}
		})
	}
	cloud.Engine.Run()
	if okCount > 0 {
		pt.MeanLatency = okSec / float64(okCount)
	}
	return pt
}

// Anchors compares against the Section 6.1 claim.
func (r *PropFilterResult) Anchors() []Anchor {
	var out []Anchor
	for _, pt := range r.Points {
		if pt.Clients == 32 {
			out = append(out, Anchor{
				"filter-query timeout share @32 clients (>50%)", "%",
				55, float64(pt.Timeouts) / float64(pt.Queries) * 100,
			})
		}
		if pt.Clients == 1 {
			out = append(out, Anchor{
				"filter-query timeout share @1 client", "%",
				0, float64(pt.Timeouts) / float64(pt.Queries) * 100,
			})
		}
	}
	return out
}
