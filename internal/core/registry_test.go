package core

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRegistryNamesComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "table1", "tcp", "propfilter", "queuedepth",
		"replication", "sqlcompare", "startup", "fig2sizes", "fig3sizes",
		"fig8geo",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		e, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if e.Name() != n {
			t.Fatalf("Lookup(%q).Name() = %q", n, e.Name())
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if len(Experiments()) != len(want) {
		t.Fatalf("Experiments() = %d entries", len(Experiments()))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(experiment{"fig1", func(p Proto) Result { return nil }})
}

func TestProtoApply(t *testing.T) {
	base := Proto{Seed: 42, Clients: []int{1, 2}, Runs: 3}
	got := Proto{Workers: 4, Scale: QuickScale}.Apply(base)
	if got.Seed != 42 || got.Runs != 3 || got.Workers != 4 || got.Scale != QuickScale {
		t.Fatalf("apply kept wrong fields: %+v", got)
	}
	got = Proto{Seed: 7, Clients: []int{9}, Runs: 1}.Apply(base)
	if got.Seed != 7 || got.Clients[0] != 9 || got.Runs != 1 {
		t.Fatalf("apply dropped overrides: %+v", got)
	}
}

// reducedProto returns a shrunk protocol for name, small enough that the
// scheduler equivalence test can run every experiment at three widths.
func reducedProto(name string) Proto {
	p := Proto{Seed: 11, Scale: QuickScale, Clients: []int{1, 8}}
	switch name {
	case "fig1":
		p.Runs = 2
		p.Size = 8 << 20 // 8 MB blobs
	case "fig2":
		p.Size = 1024
	case "table1":
		p.Clients = nil
		p.Runs = 8
	case "tcp", "queuedepth":
		p.Clients = nil
	case "propfilter":
		p.Clients = []int{1, 4}
	case "startup":
		p.Clients = nil
		p.Runs = 3
	case "replication":
		p.Clients = nil
		p.Size = 8 << 20
	case "fig2sizes":
		// One ladder level per entity size: the 220k-entity backfill makes
		// each cell expensive, and four sizes already exercise the
		// flattened (size, level) grid.
		p.Clients = []int{4}
	}
	return p
}

// TestSchedulerEquivalence is the registry-wide determinism property: every
// registered experiment, run at reduced scale, must produce byte-identical
// encoded results and identical anchors at 2 and 4 workers vs serial.
func TestSchedulerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			p := reducedProto(e.Name())
			p.Workers = 1
			serial := e.Run(p)
			g := newGoldenHasher()
			encodeResult(g, serial)
			want := g.bytes()
			wantAnchors := serial.Anchors()
			for _, workers := range []int{2, 4} {
				p.Workers = workers
				got := e.Run(p)
				gg := newGoldenHasher()
				encodeResult(gg, got)
				if !bytes.Equal(gg.bytes(), want) {
					t.Fatalf("%s at %d workers: encoded result differs from serial (%d vs %d bytes)",
						e.Name(), workers, len(gg.bytes()), len(want))
				}
				if !reflect.DeepEqual(got.Anchors(), wantAnchors) {
					t.Fatalf("%s at %d workers: anchors differ\nserial:   %v\nparallel: %v",
						e.Name(), workers, wantAnchors, got.Anchors())
				}
			}
		})
	}
}
