package core

import (
	"strings"
	"testing"
)

// Anchor-surface tests: every experiment must produce its expected anchor
// set with sane values at reduced scale, since cmd/azvalidate and the
// benchmark metrics all hang off these.

func TestFig1AnchorsComplete(t *testing.T) {
	r := RunFig1(Fig1Config{Proto: Proto{Seed: 2, Clients: []int{1, 32, 64, 128, 192}, Runs: 1}, BlobMB: 32})
	anchors := r.Anchors()
	want := []string{
		"download per-client @1", "download per-client @32",
		"download aggregate peak @128", "upload per-client @64",
		"upload per-client @192", "upload aggregate max @192",
	}
	if len(anchors) != len(want) {
		t.Fatalf("anchors = %d, want %d", len(anchors), len(want))
	}
	for i, w := range want {
		if !strings.Contains(anchors[i].Name, w) {
			t.Fatalf("anchor %d = %q, want contains %q", i, anchors[i].Name, w)
		}
		if anchors[i].Measured <= 0 {
			t.Fatalf("anchor %q non-positive", anchors[i].Name)
		}
	}
}

func TestFig1SkipUpload(t *testing.T) {
	r := RunFig1(Fig1Config{Proto: Proto{Seed: 2, Clients: []int{1, 64}, Runs: 1}, BlobMB: 16, SkipUpload: true})
	if r.Points[0].UpMBps != 0 {
		t.Fatal("upload measured despite SkipUpload")
	}
	// Upload anchors must be absent.
	for _, a := range r.Anchors() {
		if strings.Contains(a.Name, "upload") {
			t.Fatalf("upload anchor %q present with SkipUpload", a.Name)
		}
	}
}

func TestFig3AnchorsComplete(t *testing.T) {
	r := RunFig3(Fig3Config{Proto: Proto{Seed: 2, Clients: []int{16, 64, 128, 192}}, OpsEach: 25})
	names := map[string]bool{}
	for _, a := range r.Anchors() {
		names[a.Name] = true
		if a.Measured <= 0 {
			t.Fatalf("anchor %q non-positive", a.Name)
		}
	}
	for _, w := range []string{
		"add aggregate peak @64", "receive aggregate peak @64",
		"peek aggregate @128", "peek aggregate @192 (still rising)",
		"per-client add @16 (15-20 ops/s)",
	} {
		if !names[w] {
			t.Fatalf("missing anchor %q (have %v)", w, names)
		}
	}
}

func TestFig3AnchorsPartialLadder(t *testing.T) {
	// Missing concurrency levels simply omit their anchors.
	r := RunFig3(Fig3Config{Proto: Proto{Seed: 2, Clients: []int{8}}, OpsEach: 20})
	if len(r.Anchors()) != 0 {
		t.Fatalf("anchors for absent levels: %v", r.Anchors())
	}
}

func TestTCPAnchorValues(t *testing.T) {
	r := RunTCP(TCPConfig{Proto: Proto{Seed: 2}, LatencySamples: 2000, BandwidthPairs: 40, TransfersPer: 2})
	anchors := r.Anchors()
	if len(anchors) != 5 {
		t.Fatalf("anchors = %d, want 5", len(anchors))
	}
	for _, a := range anchors {
		if a.Measured < 0 {
			t.Fatalf("anchor %q negative", a.Name)
		}
	}
}

func TestAggregateHelpers(t *testing.T) {
	p := Fig3Point{Clients: 10, AddOps: 2, PeekOps: 3, ReceiveOps: 4}
	if p.AggAdd() != 20 || p.AggPeek() != 30 || p.AggReceive() != 40 {
		t.Fatal("aggregate helpers wrong")
	}
}

func TestTable1CellAutoCreates(t *testing.T) {
	res := RunTable1(Table1Config{Proto: Proto{Seed: 2, Runs: 4}})
	s := res.Cell(0, 0, "Nonexistent")
	if s == nil || s.N() != 0 {
		t.Fatal("Cell should auto-create empty summaries")
	}
}
