package core

import (
	"errors"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
)

// StartupScalingConfig drives a prediction the paper's data implies but
// does not plot: time-until-all-instances-ready as a function of deployment
// size. The first instance costs the Table 1 run time; each further
// instance adds the observed 60-100 s serial readiness lag (Section 4.1
// observation 3: "Azure does not serve a request for multiple VMs at the
// same time"), so large deployments pay startup nearly linear in size.
// All sizes share one cloud (deployments reuse the warmed fabric), so the
// sweep is a single cell: it never parallelizes internally.
type StartupScalingConfig struct {
	Proto       // Runs: samples per size
	Sizes []int // instance counts to sweep
	Role  fabric.Role
}

// DefaultStartupScalingConfig sweeps 1-16 small workers.
func DefaultStartupScalingConfig() StartupScalingConfig {
	p := Defaults()
	p.Runs = 20
	return StartupScalingConfig{Proto: p, Sizes: []int{1, 2, 4, 8, 16}, Role: fabric.Worker}
}

// StartupScalingPoint is one deployment size's readiness statistics.
type StartupScalingPoint struct {
	Instances  int
	FirstReady metrics.Summary // seconds
	AllReady   metrics.Summary // seconds
}

// StartupScalingResult is the sweep outcome.
type StartupScalingResult struct {
	Points []StartupScalingPoint
}

// RunStartupScaling executes the sweep.
func RunStartupScaling(cfg StartupScalingConfig) *StartupScalingResult {
	if cfg.Sizes == nil {
		cfg.Sizes = DefaultStartupScalingConfig().Sizes
	}
	if cfg.Runs == 0 {
		cfg.Runs = 20
	}
	res := &StartupScalingResult{}
	ccfg := azure.Config{Seed: cfg.Seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	cloud.Controller.Quota = 1 << 20
	mgmt := cloud.Management()

	for _, n := range cfg.Sizes {
		pt := StartupScalingPoint{Instances: n}
		cloud.Engine.Spawn("sweep", func(p *sim.Proc) {
			for r := 0; r < cfg.Runs; r++ {
				d, _, err := mgmt.Deploy(p, fabric.DeploymentSpec{
					Name: "s", Role: cfg.Role, Size: fabric.Small, Instances: n,
				})
				if err != nil {
					panic(err)
				}
				_, first, last, err := mgmt.Run(p, d)
				if err != nil {
					if errors.Is(err, fabric.ErrStartupFailed) {
						if _, derr := mgmt.Delete(p, d); derr != nil {
							panic(derr)
						}
						r--
						continue
					}
					panic(err)
				}
				pt.FirstReady.AddDuration(first)
				pt.AllReady.AddDuration(last)
				if _, err := mgmt.Suspend(p, d); err != nil {
					panic(err)
				}
				if _, err := mgmt.Delete(p, d); err != nil {
					panic(err)
				}
			}
		})
		cloud.Engine.Run()
		res.Points = append(res.Points, pt)
	}
	return res
}

// MarginalSecondsPerInstance fits the serial readiness lag: the slope of
// all-ready time over instance count, from the sweep's extreme points.
func (r *StartupScalingResult) MarginalSecondsPerInstance() float64 {
	if len(r.Points) < 2 {
		return 0
	}
	a, b := r.Points[0], r.Points[len(r.Points)-1]
	return (b.AllReady.Mean() - a.AllReady.Mean()) / float64(b.Instances-a.Instances)
}

// Anchors compares the fitted serial readiness lag against the 60-100 s
// per-instance figure of Section 4.1.
func (r *StartupScalingResult) Anchors() []Anchor {
	if len(r.Points) < 2 {
		return nil
	}
	return []Anchor{{"marginal startup lag per instance", "s", 80, r.MarginalSecondsPerInstance()}}
}
