package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"azureobs/internal/fabric"
	"azureobs/internal/geo"
)

// Trace goldens: every experiment below is hashed over the exact float64 bit
// patterns of its outputs (including sample insertion order, which reflects
// event ordering). The expected hashes were captured from the seed
// (from-scratch, map-based) netsim solver; the incremental fast path must
// reproduce each simulation trace bit-for-bit, so any hash drift here means
// an optimization changed observable behaviour, not just speed.
//
// To re-capture after an intentional behaviour change:
//
//	GOLDEN_PRINT=1 go test ./internal/core -run TestTraceGoldens -v

// goldenHasher folds encoded result fields into an FNV-64a hash and keeps
// the raw byte stream, so the same encoders serve both the trace goldens
// (compact hash) and the scheduler equivalence test (byte comparison).
type goldenHasher struct {
	h   hash.Hash64
	buf bytes.Buffer
}

func newGoldenHasher() *goldenHasher {
	return &goldenHasher{h: fnv.New64a()}
}

func (g *goldenHasher) write(b []byte) {
	g.h.Write(b)
	g.buf.Write(b)
}

func (g *goldenHasher) f64(x float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	g.write(b[:])
}

func (g *goldenHasher) i64(x int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(x))
	g.write(b[:])
}

func (g *goldenHasher) sum() uint64 { return g.h.Sum64() }

func (g *goldenHasher) bytes() []byte { return g.buf.Bytes() }

func (g *goldenHasher) summary(s interface {
	N() uint64
	Mean() float64
	Std() float64
}) {
	g.i64(int64(s.N()))
	g.f64(s.Mean())
	g.f64(s.Std())
}

// encodeResult serializes a result's observable fields in a fixed order.
// The per-type field orders predate the encoder and must not change: the
// goldenTraces hashes below were captured over exactly these streams.
func encodeResult(g *goldenHasher, res Result) {
	switch r := res.(type) {
	case *Fig1Result:
		for _, p := range r.Points {
			g.i64(int64(p.Clients))
			g.f64(p.DownMBps)
			g.f64(p.DownAggMBps)
			g.f64(p.UpMBps)
			g.f64(p.UpAggMBps)
			g.f64(p.DownMBpsStddev)
		}
	case *Fig2Result:
		for _, p := range r.Points {
			g.i64(int64(p.Clients))
			g.f64(p.InsertOps)
			g.f64(p.QueryOps)
			g.f64(p.UpdateOps)
			g.f64(p.DeleteOps)
			g.i64(int64(p.InsertSurvivors))
			g.i64(int64(p.DeleteSurvivors))
		}
	case *Fig3Result:
		for _, p := range r.Points {
			g.i64(int64(p.Clients))
			g.f64(p.AddOps)
			g.f64(p.PeekOps)
			g.f64(p.ReceiveOps)
		}
	case *TCPResult:
		for _, v := range r.LatencyMS.Values() {
			g.f64(v)
		}
		for _, v := range r.BandwidthMBps.Values() {
			g.f64(v)
		}
	case *ReplicationResult:
		for _, p := range r.Points {
			g.i64(int64(p.Replicas))
			g.f64(p.PerClientMBps)
			g.f64(p.AggregateMBps)
			g.f64(p.SpeedupVsOne)
			g.i64(int64(p.PerBlobClients))
		}
	case *Table1Result:
		// Hash a fixed cell list rather than map iteration order.
		for _, role := range []fabric.Role{fabric.Worker, fabric.Web} {
			for _, size := range []fabric.Size{fabric.Small, fabric.Medium, fabric.Large, fabric.ExtraLarge} {
				for _, phase := range []string{"Create", "Run", "Add", "Suspend", "Delete"} {
					g.summary(r.Cell(role, size, phase))
				}
			}
		}
		for _, v := range r.FirstReadyWorkerSmall.Values() {
			g.f64(v)
		}
		for _, v := range r.FirstReadyWebSmall.Values() {
			g.f64(v)
		}
		g.i64(int64(r.SuccessRuns))
		g.i64(int64(r.FailedRuns))
	case *PropFilterResult:
		for _, p := range r.Points {
			g.i64(int64(p.Clients))
			g.i64(int64(p.Queries))
			g.i64(int64(p.Timeouts))
			g.f64(p.MeanLatency)
		}
	case *QueueDepthResult:
		g.f64(r.SmallRate)
		g.f64(r.LargeRate)
	case *SQLCompareResult:
		for _, p := range r.Points {
			g.i64(int64(p.Clients))
			g.f64(p.SQLInsertOps)
			g.f64(p.SQLSelectOps)
			g.f64(p.TableInsertOps)
			g.f64(p.TableQueryOps)
			g.i64(int64(p.ThrottledOpens))
			g.i64(int64(p.ConnectedOpens))
		}
	case *StartupScalingResult:
		for i := range r.Points {
			p := &r.Points[i]
			g.i64(int64(p.Instances))
			g.summary(&p.FirstReady)
			g.summary(&p.AllReady)
		}
	case *Fig2SizeSweep:
		for i, sub := range r.Results {
			g.i64(int64(r.Sizes[i]))
			encodeResult(g, sub)
		}
	case *Fig3SizeSweep:
		for i, sub := range r.Results {
			g.i64(int64(r.Sizes[i]))
			encodeResult(g, sub)
		}
	case *Fig8GeoResult:
		g.i64(int64(r.Regions))
		for _, rep := range []*geo.Report{r.Lag, r.RYW, r.Kill} {
			encodeGeoReport(g, rep)
		}
	default:
		panic(fmt.Sprintf("no encoder for result type %T", res))
	}
}

// encodeGeoReport serializes every field of a geo world report in
// declaration order — the fig8geo equivalence test byte-compares these
// streams across (workers, domains) sweeps.
func encodeGeoReport(g *goldenHasher, r *geo.Report) {
	g.i64(int64(r.Regions))
	g.i64(r.ReadsOK)
	g.i64(r.ReadsFailed)
	g.i64(r.WritesOK)
	g.i64(r.WritesFailed)
	g.i64(r.RemoteReads)
	g.i64(r.Commits)
	g.i64(r.Applies)
	g.f64(r.LagMeanSec)
	g.f64(r.LagMaxSec)
	g.f64(r.LagP50Sec)
	g.f64(r.LagP95Sec)
	g.i64(r.StaleReads)
	g.f64(r.StaleFrac)
	g.f64(r.RTOSec)
	g.f64(r.RPOSec)
	g.i64(r.LostWrites)
	g.i64(r.KilledFlaps)
	g.i64(r.TotalFlaps)
	g.i64(r.KilledFailed)
	g.i64(r.DeadVMs)
	g.f64(r.MeanLatencySec)
	g.f64(r.FinalVirtualSec)
}

// goldenTraces are the expected hashes, captured from the seed solver.
//
// These hashes double as the chaos-isolation pin: the chaos engine
// (internal/chaos) draws only from label-forked "chaos/*" streams, so with
// chaos disabled — as in every run below — introducing it changed no hash.
// Any future drift here under a chaos-related diff means that isolation
// broke.
//
// fig1 (both seeds), replication, propfilter and sqlcompare were regenerated
// when the storage services moved onto the reqpath pipeline: blob request
// latency, table scan latency and the SQL handshake now draw from dedicated
// per-stage "reqpath/latency" streams instead of the service's shared
// stream. The other five traces (fig2, fig3, queuedepth, table1, tcp) are
// bit-identical across that refactor — station contention and fabric paths
// draw from the same streams as before.
var goldenTraces = map[string]uint64{
	"fig1/seed42":        0xaf4a3dddc3b41031,
	"fig1/seed7":         0x5791b04a862afec3,
	"fig2/seed42":        0xcb599ca2efbae722,
	"fig3/seed42":        0x8a623ee40b857a3a,
	"propfilter/seed42":  0xc6dbf6abef0a04af,
	"queuedepth/seed42":  0xb23d12bd169dadbb,
	"replication/seed42": 0x04ac861d2f727926,
	"sqlcompare/seed42":  0xab1b6071084e3a89,
	"table1/seed42":      0x4e784a63e88ba312,
	"tcp/seed42":         0x78f20dbc473c956b,
}

// goldenConfigs builds the fixed reduced-scale runs the goldens hash. The
// scheduler width is the only knob the golden harness varies: at any
// width the hashes must match the serial captures above.
func goldenRuns(workers int) map[string]Result {
	w := func(p Proto) Proto {
		p.Workers = workers
		return p
	}
	return map[string]Result{
		"fig1/seed42": RunFig1(Fig1Config{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 8, 32, 64, 128, 192}, Runs: 1}), BlobMB: 32}),
		"fig1/seed7": RunFig1(Fig1Config{
			Proto: w(Proto{Seed: 7, Clients: []int{1, 64, 192}, Runs: 2}), BlobMB: 16}),
		"fig2/seed42": RunFig2(Fig2Config{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 8, 64}}), EntitySize: 4096,
			Inserts: 40, Queries: 40, Updates: 20}),
		"fig3/seed42": RunFig3(Fig3Config{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 16, 64, 192}}), MsgSize: 512, OpsEach: 25}),
		"tcp/seed42": RunTCP(TCPConfig{
			Proto: w(Proto{Seed: 42}), LatencySamples: 500, BandwidthPairs: 40, TransfersPer: 2}),
		"replication/seed42": RunReplication(ReplicationConfig{
			Proto: w(Proto{Seed: 42}), Clients: 64, BlobMB: 32, Replicas: []int{1, 4}}),
		"table1/seed42": RunTable1(Table1Config{Proto: w(Proto{Seed: 42, Runs: 16})}),
		"propfilter/seed42": RunPropFilter(PropFilterConfig{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 32}}), Entities: 60000}),
		"queuedepth/seed42": RunQueueDepth(QueueDepthConfig{
			Proto: w(Proto{Seed: 42}), SmallDepth: 5000, LargeDepth: 50000}),
		"sqlcompare/seed42": RunSQLCompare(SQLCompareConfig{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 64}}), OpsEach: 25}),
	}
}

func traceHashes(workers int) map[string]uint64 {
	out := map[string]uint64{}
	for k, r := range goldenRuns(workers) {
		g := newGoldenHasher()
		encodeResult(g, r)
		out[k] = g.sum()
	}
	return out
}

func TestTraceGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("trace goldens are slow")
	}
	got := traceHashes(1)
	if os.Getenv("GOLDEN_PRINT") != "" {
		for _, k := range sortedKeys(got) {
			fmt.Printf("\t%q: %#016x,\n", k, got[k])
		}
	}
	for _, k := range sortedKeys(got) {
		want, ok := goldenTraces[k]
		if !ok {
			t.Errorf("no golden recorded for %s (got %#016x)", k, got[k])
			continue
		}
		if got[k] != want {
			t.Errorf("trace %s = %#016x, want %#016x (simulation no longer bit-identical)", k, got[k], want)
		}
	}
}

// TestTraceGoldensParallel is the scheduler's sharpest acceptance test: the
// same golden hashes must come out of a 4-wide pool.
func TestTraceGoldensParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("trace goldens are slow")
	}
	got := traceHashes(4)
	for _, k := range sortedKeys(got) {
		if want := goldenTraces[k]; got[k] != want {
			t.Errorf("trace %s at 4 workers = %#016x, want %#016x (parallel run not bit-identical)", k, got[k], want)
		}
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
