package core

import (
	"math"
	"testing"
)

func TestShapeSimilarity(t *testing.T) {
	a := []float64{10, 8, 6, 4}
	b := []float64{5, 4, 3, 2} // same shape, half scale
	if s := ShapeSimilarity(a, b); s > 1e-9 {
		t.Fatalf("scaled copies should score 0, got %v", s)
	}
	c := []float64{10, 2, 6, 4} // distorted
	if s := ShapeSimilarity(a, c); s < 0.5 {
		t.Fatalf("distorted curve scored too similar: %v", s)
	}
	if ShapeSimilarity(a, []float64{1, 2}) != 1 {
		t.Fatal("length mismatch should score 1")
	}
	if ShapeSimilarity(a, []float64{1, 0, 1, 1}) != 1 {
		t.Fatal("nonpositive values should score 1")
	}
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := medianOf([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
}

// TestFig2ShapesSimilarAcrossEntitySizes reproduces Section 3.2: "the shape
// of the performance curves for different entity sizes are similar". We run
// 1 kB vs 16 kB at modest scale and require point-wise shape agreement
// within 35% for insert and query.
func TestFig2ShapesSimilarAcrossEntitySizes(t *testing.T) {
	base := Fig2Config{Proto: Proto{Seed: 5, Clients: []int{1, 8, 32, 96}}, Inserts: 40, Queries: 40, Updates: 10}
	sw := RunFig2Sizes(base, []int{1024, 16384})
	small, large := sw.Results[0], sw.Results[1]
	if s := ShapeSimilarity(small.InsertCurve(), large.InsertCurve()); s > 0.35 {
		t.Fatalf("insert shapes diverge: %.2f", s)
	}
	if s := ShapeSimilarity(small.QueryCurve(), large.QueryCurve()); s > 0.35 {
		t.Fatalf("query shapes diverge: %.2f", s)
	}
	// Larger entities are somewhat slower in absolute terms.
	if large.Points[0].InsertOps >= small.Points[0].InsertOps {
		t.Fatal("16 kB inserts not slower than 1 kB")
	}
}

// TestFig3ShapesSimilarAcrossMessageSizes reproduces Section 3.3: "the shape
// of the performance curve for each message size is very similar".
func TestFig3ShapesSimilarAcrossMessageSizes(t *testing.T) {
	base := Fig3Config{Proto: Proto{Seed: 5, Clients: []int{1, 16, 64, 128}}, OpsEach: 30}
	sw := RunFig3Sizes(base, []int{512, 8192})
	small, large := sw.Results[0], sw.Results[1]
	if s := ShapeSimilarity(small.AddCurve(), large.AddCurve()); s > 0.3 {
		t.Fatalf("add shapes diverge: %.2f", s)
	}
	if s := ShapeSimilarity(small.ReceiveCurve(), large.ReceiveCurve()); s > 0.3 {
		t.Fatalf("receive shapes diverge: %.2f", s)
	}
	// 512 B - 8 kB payloads barely move absolute rates (paper: >10 ops/s
	// either way at ≤32 writers).
	r512 := small.Points[1].AddOps
	r8k := large.Points[1].AddOps
	if math.Abs(r512-r8k)/r512 > 0.15 {
		t.Fatalf("message size moved add rate too much: %.1f vs %.1f", r512, r8k)
	}
}

// TestFig2SixtyFourKExceptionOnly64k verifies the published exception: the
// overload timeouts appear at 64 kB with 128 clients but not at 16 kB.
func TestFig2SixtyFourKExceptionOnly64k(t *testing.T) {
	base := Fig2Config{Proto: Proto{Seed: 5, Clients: []int{128}}, Inserts: 300, Queries: 1, Updates: 1}
	sw := RunFig2Sizes(base, []int{16384, 65536})
	if s := sw.Results[0].Points[0].InsertSurvivors; s != 128 {
		t.Fatalf("16 kB @128: %d/128 finished; overload should not trigger", s)
	}
	if s := sw.Results[1].Points[0].InsertSurvivors; s == 128 {
		t.Fatal("64 kB @128: all finished; overload should trigger")
	}
}
