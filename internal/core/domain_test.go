package core

import (
	"bytes"
	"fmt"
	"testing"

	"azureobs/internal/sim"
)

// domainRuns executes the domain-capable golden configs at the given
// (workers, domains) point. The three runs cover the three sharding shapes:
// fig1 proc clients, fig1 flat clients (seed7 exercises actors under the
// windowed coordinator), and fig2's driver-process phase sequencing.
func domainRuns(workers, domains int) map[string]Result {
	w := func(p Proto) Proto {
		p.Workers = workers
		p.Domains = domains
		return p
	}
	return map[string]Result{
		"fig1/seed42": RunFig1(Fig1Config{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 8, 32, 64, 128, 192}, Runs: 1}), BlobMB: 32}),
		"fig1/seed7": RunFig1(Fig1Config{
			Proto: w(Proto{Seed: 7, Clients: []int{1, 64, 192}, Runs: 2, Flat: true}), BlobMB: 16}),
		"fig2/seed42": RunFig2(Fig2Config{
			Proto: w(Proto{Seed: 42, Clients: []int{1, 8, 64}}), EntitySize: 4096,
			Inserts: 40, Queries: 40, Updates: 20}),
	}
}

func domainEncodings(workers, domains int) map[string][]byte {
	out := map[string][]byte{}
	for k, r := range domainRuns(workers, domains) {
		g := newGoldenHasher()
		encodeResult(g, r)
		out[k] = append([]byte(nil), g.bytes()...)
	}
	return out
}

// TestDomainEquivalence is the tentpole acceptance test: fig1 and fig2
// cells sharded over domains ∈ {1, 2, 4}, across scheduler widths ∈ {1, 4},
// produce byte-identical result encodings — and identical anchors — to the
// legacy single-engine path, and the non-flat runs still reproduce the
// recorded golden trace hashes exactly.
func TestDomainEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("domain equivalence sweeps are slow")
	}
	baseline := domainEncodings(1, 0) // legacy path, serial pool
	baseAnchors := map[string][]Anchor{}
	for k, r := range domainRuns(1, 0) {
		baseAnchors[k] = r.Anchors()
	}

	for _, workers := range []int{1, 4} {
		for _, domains := range []int{1, 2, 4} {
			got := domainEncodings(workers, domains)
			for k, enc := range got {
				if !bytes.Equal(enc, baseline[k]) {
					t.Errorf("workers=%d domains=%d: %s encoding differs from legacy path",
						workers, domains, k)
				}
			}
			for k, r := range domainRuns(workers, domains) {
				a, b := r.Anchors(), baseAnchors[k]
				if fmt.Sprint(a) != fmt.Sprint(b) {
					t.Errorf("workers=%d domains=%d: %s anchors differ:\n%v\n%v",
						workers, domains, k, a, b)
				}
			}
		}
	}

	// The sweep's seed42 runs use the exact golden configs, so their hashes
	// must equal the recorded seed-solver captures — the domain refactor
	// cannot have moved the baseline it is being compared against.
	for _, key := range []string{"fig1/seed42", "fig2/seed42"} {
		g := newGoldenHasher()
		g.write(baseline[key])
		if got, want := g.sum(), goldenTraces[key]; got != want {
			t.Errorf("legacy %s = %#016x, want recorded golden %#016x", key, got, want)
		}
	}
}

// TestDomainStatsAccumulates checks the Proto.DomainStats sink: a domain run
// reports one group per batch with coordinator timing recorded.
func TestDomainStatsAccumulates(t *testing.T) {
	if testing.Short() {
		t.Skip("domain stats run is slow")
	}
	var acc sim.DomainAccum
	p := Proto{Seed: 42, Clients: []int{1, 8}, Runs: 1, Workers: 1, Domains: 2}
	p.DomainStats = &acc
	RunFig1(Fig1Config{Proto: p, BlobMB: 8})
	// Two levels × one run × two directions = 4 units → 2 groups of width 2.
	if acc.Groups != 2 || acc.Width != 2 {
		t.Fatalf("accumulated %d groups width %d, want 2 groups width 2", acc.Groups, acc.Width)
	}
	if acc.Busy <= 0 || acc.Wall <= 0 || acc.Rounds < acc.Groups {
		t.Fatalf("coordinator accounting empty: busy=%v wall=%v rounds=%d",
			acc.Busy, acc.Wall, acc.Rounds)
	}
	if u := acc.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("utilization %v out of range", u)
	}
}
