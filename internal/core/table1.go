package core

import (
	"errors"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// Table1Config scales the VM lifecycle experiment. The paper's protocol
// (Section 4.1): each run randomly picks a role and size, creates a fresh
// deployment sized to fit the 20-core quota while allowing doubling, then
// times create → run → add (doubling) → suspend → delete. 431 successful
// runs were collected; the startup failure rate was 2.6%.
// All runs share one cloud and one pick stream, so the experiment is a
// single cell: it never parallelizes internally, only across experiments.
type Table1Config struct {
	Proto // Runs: successful runs to collect (paper: 431)
}

// DefaultTable1Config is the paper-scale protocol.
func DefaultTable1Config() Table1Config {
	p := Defaults()
	p.Runs = 431
	return Table1Config{Proto: p}
}

// PhaseKey identifies one cell of Table 1.
type PhaseKey struct {
	Role  fabric.Role
	Size  fabric.Size
	Phase string // "Create", "Run", "Add", "Suspend", "Delete"
}

// Table1Result is the reproduced Table 1 plus the derived readiness
// statistics quoted in the text.
type Table1Result struct {
	Cells map[PhaseKey]*metrics.Summary

	// FirstReadySmall collects first-instance readiness for small
	// deployments per role, for the percentile claims (85% ≤ 9 min etc.).
	FirstReadyWorkerSmall *metrics.Sample
	FirstReadyWebSmall    *metrics.Sample
	// LagFirstToLast collects the 1st→4th instance lag for small
	// deployments.
	LagFirstToLast *metrics.Sample

	SuccessRuns int
	FailedRuns  int
}

// FailureRate returns the observed startup failure rate.
func (r *Table1Result) FailureRate() float64 {
	total := r.SuccessRuns + r.FailedRuns
	if total == 0 {
		return 0
	}
	return float64(r.FailedRuns) / float64(total)
}

// Cell returns the summary for one (role, size, phase).
func (r *Table1Result) Cell(role fabric.Role, size fabric.Size, phase string) *metrics.Summary {
	s, ok := r.Cells[PhaseKey{role, size, phase}]
	if !ok {
		s = &metrics.Summary{}
		r.Cells[PhaseKey{role, size, phase}] = s
	}
	return s
}

// RunTable1 executes the VM lifecycle experiment.
func RunTable1(cfg Table1Config) *Table1Result {
	if cfg.Runs == 0 {
		cfg.Runs = 431
	}
	res := &Table1Result{
		Cells:                 make(map[PhaseKey]*metrics.Summary),
		FirstReadyWorkerSmall: metrics.NewSample(cfg.Runs),
		FirstReadyWebSmall:    metrics.NewSample(cfg.Runs),
		LagFirstToLast:        metrics.NewSample(cfg.Runs),
	}
	ccfg := azure.Config{Seed: cfg.Seed}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	mgmt := cloud.Management()
	pick := simrand.New(cfg.Seed).Fork("table1-pick")

	roles := []fabric.Role{fabric.Worker, fabric.Web}
	sizes := []fabric.Size{fabric.Small, fabric.Medium, fabric.Large, fabric.ExtraLarge}

	cloud.Engine.Spawn("table1", func(p *sim.Proc) {
		for res.SuccessRuns < cfg.Runs {
			role := roles[pick.IntN(len(roles))]
			size := sizes[pick.IntN(len(sizes))]
			if !runOnce(p, mgmt, res, role, size) {
				res.FailedRuns++
			} else {
				res.SuccessRuns++
			}
		}
	})
	cloud.Engine.Run()
	return res
}

// runOnce performs one full lifecycle; returns false on startup failure.
func runOnce(p *sim.Proc, mgmt *azure.Management, res *Table1Result, role fabric.Role, size fabric.Size) bool {
	spec := fabric.DeploymentSpec{Name: "t1", Role: role, Size: size}
	d, createDur, err := mgmt.Deploy(p, spec)
	if err != nil {
		panic(err)
	}
	_, firstReady, lastReady, err := mgmt.Run(p, d)
	if err != nil {
		if errors.Is(err, fabric.ErrStartupFailed) {
			if _, derr := mgmt.Delete(p, d); derr != nil {
				panic(derr)
			}
			return false
		}
		panic(err)
	}

	res.Cell(role, size, "Create").AddDuration(createDur)
	// Table 1's Run column is interpreted as first-instance readiness (see
	// DESIGN.md): the paper's own text quotes ~9 min for a small worker
	// instance, matching the 533 s table entry, while the 1st→4th lag is
	// reported separately.
	res.Cell(role, size, "Run").AddDuration(firstReady)
	if size == fabric.Small {
		if role == fabric.Worker {
			res.FirstReadyWorkerSmall.AddDuration(firstReady)
		} else {
			res.FirstReadyWebSmall.AddDuration(firstReady)
		}
		res.LagFirstToLast.AddDuration(lastReady - firstReady)
	}

	// Add (doubling) — N/A for extra large.
	if fabric.Params(role, size).HasAdd() {
		addDur, err := mgmt.Add(p, d, len(d.VMs()))
		switch {
		case err == nil:
			res.Cell(role, size, "Add").AddDuration(addDur)
		case errors.Is(err, fabric.ErrStartupFailed):
			// Add-phase startup failure: skip the sample, keep the run.
		default:
			panic(err)
		}
	}

	susDur, err := mgmt.Suspend(p, d)
	if err != nil {
		panic(err)
	}
	res.Cell(role, size, "Suspend").AddDuration(susDur)

	delDur, err := mgmt.Delete(p, d)
	if err != nil {
		panic(err)
	}
	res.Cell(role, size, "Delete").AddDuration(delDur)
	return true
}

// Anchors compares the reproduction against the published Table 1 cells and
// the derived claims of Section 4.1.
func (r *Table1Result) Anchors() []Anchor {
	var out []Anchor
	check := func(role fabric.Role, size fabric.Size, phase string) {
		paper := paperStat(role, size, phase)
		if paper == 0 {
			return
		}
		s := r.Cell(role, size, phase)
		if s.N() == 0 {
			return
		}
		out = append(out, Anchor{
			Name:     role.String() + "/" + size.String() + "/" + phase + " avg",
			Unit:     "s",
			Paper:    paper,
			Measured: s.Mean(),
		})
	}
	for _, role := range []fabric.Role{fabric.Worker, fabric.Web} {
		for _, size := range []fabric.Size{fabric.Small, fabric.Medium, fabric.Large, fabric.ExtraLarge} {
			for _, phase := range []string{"Create", "Run", "Add", "Suspend", "Delete"} {
				check(role, size, phase)
			}
		}
	}
	if r.LagFirstToLast.N() > 0 {
		out = append(out, Anchor{"1st→4th instance lag (small)", "s", 240, r.LagFirstToLast.Mean()})
	}
	if r.FirstReadyWorkerSmall.N() > 0 {
		out = append(out, Anchor{"quickest worker-small first instance", "s",
			450, r.FirstReadyWorkerSmall.Quantile(0)})
	}
	out = append(out, Anchor{"startup failure rate", "%", 2.6, r.FailureRate() * 100})
	return out
}

// paperStat returns the published Table 1 average for a cell (0 if N/A).
func paperStat(role fabric.Role, size fabric.Size, phase string) float64 {
	ps := fabric.Params(role, size)
	switch phase {
	case "Create":
		return ps.Create.Avg
	case "Run":
		return ps.Run.Avg
	case "Add":
		return ps.Add.Avg
	case "Suspend":
		return ps.Suspend.Avg
	case "Delete":
		return ps.Delete.Avg
	}
	return 0
}

// ReadinessPercentiles reports the fraction of small-instance first
// readiness within the thresholds quoted in Section 4.1.
type ReadinessPercentiles struct {
	WorkerWithin9Min, WorkerWithin10Min float64
	WebWithin10Min, WebWithin11Min      float64
}

// Percentiles computes the readiness fractions.
func (r *Table1Result) Percentiles() ReadinessPercentiles {
	return ReadinessPercentiles{
		WorkerWithin9Min:  r.FirstReadyWorkerSmall.FracLE((9 * time.Minute).Seconds()),
		WorkerWithin10Min: r.FirstReadyWorkerSmall.FracLE((10 * time.Minute).Seconds()),
		WebWithin10Min:    r.FirstReadyWebSmall.FracLE((10 * time.Minute).Seconds()),
		WebWithin11Min:    r.FirstReadyWebSmall.FracLE((11 * time.Minute).Seconds()),
	}
}
