package core

import (
	"azureobs/internal/core/sched"
	"azureobs/internal/sim"
)

// domainBatches executes total independent simulation units across
// sim.Domains groups of the given width, and returns each unit's result in
// unit order. It is the bridge between the two parallelism layers: batches
// of consecutive units form one Domains group each (units u, u+1, …,
// u+domains-1 on domains 0..domains-1), and the batches themselves shard
// over the cell scheduler's pool, so -workers and -domains compose without
// either layer knowing about the other.
//
// start builds unit u's world on the engine it is given and returns the
// unit's finisher, which the caller of domainBatches sees invoked exactly
// once, after the unit's group run completes, in unit order within the
// batch. Build-time engine runs (staging a blob, warming a table) are
// allowed: the group coordinator re-runs a drained member at its advanced
// clock, exactly as a standalone engine would.
//
// Every unit must be self-contained — its own engine, cloud, RNG streams
// derived from the unit's coordinates alone — which is the same isolation
// contract sched.Map imposes on cells, pushed one level down. Under it,
// results are bit-identical at every (workers, domains) combination.
func domainBatches[T any](pool *sched.Pool, domains, total int, acc *sim.DomainAccum, start func(u int, eng *sim.Engine) func() T) []T {
	if domains < 1 {
		domains = 1
	}
	batches := (total + domains - 1) / domains
	chunks := sched.Map(pool, batches, func(b int) []T {
		lo := b * domains
		hi := lo + domains
		if hi > total {
			hi = total
		}
		g := sim.NewDomains(hi - lo)
		finish := make([]func() T, hi-lo)
		for u := lo; u < hi; u++ {
			finish[u-lo] = start(u, g.Domain(u-lo))
		}
		g.Run()
		if acc != nil {
			acc.Add(g.Stats())
		}
		out := make([]T, hi-lo)
		for i, fn := range finish {
			out[i] = fn()
		}
		return out
	})
	out := make([]T, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
