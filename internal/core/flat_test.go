package core

import (
	"bytes"
	"math"
	"runtime"
	"testing"
	"time"
)

// flatHash runs fig1 with the given knobs and returns the golden-encoded
// byte stream plus its hash, and the anchors derived from the result.
func fig1Encoded(cfg Fig1Config) ([]byte, uint64, []Anchor) {
	res := RunFig1(cfg)
	g := newGoldenHasher()
	encodeResult(g, res)
	return g.bytes(), g.sum(), res.Anchors()
}

// TestFlatEquivalence is the tentpole's hard requirement: fig1 run on the
// flat-actor path must produce a byte-identical golden encoding (every
// float64 bit pattern, in insertion order) and identical anchors to the
// goroutine path, at every scheduler width. A single differing draw or
// reordered event anywhere in the flat request path shows up here.
func TestFlatEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("flat equivalence sweep is slow")
	}
	base := Fig1Config{
		Proto:  Proto{Seed: 42, Clients: []int{1, 8, 32}, Runs: 2},
		BlobMB: 16,
	}
	for _, workers := range []int{1, 2, 4} {
		cfg := base
		cfg.Workers = workers

		goroBytes, goroHash, goroAnchors := fig1Encoded(cfg)

		cfg.Flat = true
		flatBytes, flatHash, flatAnchors := fig1Encoded(cfg)

		if !bytes.Equal(goroBytes, flatBytes) {
			t.Fatalf("workers=%d: flat trace diverges from goroutine trace (hashes %#016x vs %#016x)",
				workers, flatHash, goroHash)
		}
		if len(flatAnchors) != len(goroAnchors) {
			t.Fatalf("workers=%d: anchor count %d (flat) vs %d (goroutine)",
				workers, len(flatAnchors), len(goroAnchors))
		}
		for i := range goroAnchors {
			if flatAnchors[i] != goroAnchors[i] {
				t.Errorf("workers=%d: anchor %q = %+v (flat), want %+v",
					workers, goroAnchors[i].Name, flatAnchors[i], goroAnchors[i])
			}
		}
	}
}

// TestFlatGoldenHashes pins flat mode to the recorded golden hashes: the
// flat path must reproduce the exact seed-solver traces, not merely agree
// with whatever the goroutine path currently does.
func TestFlatGoldenHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("trace goldens are slow")
	}
	runs := map[string]Fig1Config{
		"fig1/seed42": {
			Proto: Proto{Seed: 42, Clients: []int{1, 8, 32, 64, 128, 192}, Runs: 1, Flat: true}, BlobMB: 32},
		"fig1/seed7": {
			Proto: Proto{Seed: 7, Clients: []int{1, 64, 192}, Runs: 2, Flat: true}, BlobMB: 16},
	}
	for name, cfg := range runs {
		_, got, _ := fig1Encoded(cfg)
		if want := goldenTraces[name]; got != want {
			t.Errorf("flat %s = %#016x, want %#016x (flat path not bit-identical to seed trace)", name, got, want)
		}
	}
}

// TestFlatNoGoroutineLeak checks that the flat path runs clients without
// spawning a goroutine per client: the process's goroutine count after a
// flat round settles back to (at most) where it started.
func TestFlatNoGoroutineLeak(t *testing.T) {
	cfg := Fig1Config{
		Proto:      Proto{Seed: 42, Clients: []int{64}, Runs: 1, Flat: true},
		BlobMB:     4,
		SkipUpload: true,
	}
	before := runtime.NumGoroutine()
	RunFig1(cfg)
	// Give any stray goroutines a moment to exit before counting.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("flat fig1 leaked goroutines: %d before, %d after", before, after)
	}
}

// TestFig1AggDegenerate pins the scale-exposed NaN fix: a cell that moves
// no bytes over no elapsed time reports aggregate 0, not 0/0 = NaN, and a
// zero-client sweep produces finite (zero) point fields in both modes.
func TestFig1AggDegenerate(t *testing.T) {
	if agg := fig1Agg(0, 0, 0); agg != 0 {
		t.Fatalf("fig1Agg(0,0,0) = %v, want 0", agg)
	}
	if agg := fig1Agg(0, 5, 5); agg != 0 {
		t.Fatalf("fig1Agg with lastEnd==base = %v, want 0", agg)
	}
	if agg := fig1Agg(1_000_000, 3, 1); agg != 0.5 {
		t.Fatalf("fig1Agg(1MB over 2s) = %v, want 0.5", agg)
	}
	for _, flat := range []bool{false, true} {
		cfg := Fig1Config{
			Proto:      Proto{Seed: 42, Clients: []int{0}, Runs: 1, Flat: flat},
			BlobMB:     4,
			SkipUpload: true,
		}
		res := RunFig1(cfg)
		if len(res.Points) != 1 {
			t.Fatalf("flat=%v: got %d points, want 1", flat, len(res.Points))
		}
		p := res.Points[0]
		for _, v := range []float64{p.DownMBps, p.DownAggMBps, p.UpMBps, p.UpAggMBps, p.DownMBpsStddev} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("flat=%v: zero-client point has non-finite field: %+v", flat, p)
			}
		}
	}
}
