package core

import "azureobs/internal/sim"

// Scale selects which variant of an experiment's protocol a registry Run
// uses. The concrete numbers for each scale live with the experiment's
// ConfigFor function, so cmd/azbench and cmd/azvalidate no longer carry
// their own (drifting) copies of the reduced protocols.
type Scale int

const (
	// PaperScale is the full protocol as published (1-192 client ladders,
	// 1 GB blobs, 431 lifecycle runs, …).
	PaperScale Scale = iota
	// QuickScale is the reduced protocol behind azbench -quick: fast
	// local runs that still show every qualitative effect.
	QuickScale
	// ValidateScale is the calibrated reduced protocol cmd/azvalidate
	// checks anchors against; its tolerances are tuned to these shapes.
	ValidateScale
)

func (s Scale) String() string {
	switch s {
	case QuickScale:
		return "quick"
	case ValidateScale:
		return "validate"
	default:
		return "paper"
	}
}

// Proto is the block of scale knobs shared by every experiment config:
// the root seed, the concurrency ladder, the repetition count, and the
// scheduler width. Experiment configs embed it, so existing field access
// (cfg.Seed, cfg.Clients, cfg.Runs) keeps working; the registry entry
// points take a bare Proto and expand it into the experiment's concrete
// config via its ConfigFor function.
//
// Scale and Size are consulted only on the registry path: direct RunX
// callers pass fully-specified configs and may leave them zero.
type Proto struct {
	Seed    uint64
	Clients []int // concurrency ladder, where the experiment sweeps one
	Runs    int   // repetitions, where the experiment repeats
	Workers int   // scheduler width for independent cells; ≤1 = serial

	Scale Scale // which protocol variant a registry Run expands to
	Size  int   // payload-size override in bytes (blob/entity/message); 0 = scale default

	// Flat runs each client as a kernel-driven flat actor instead of a
	// goroutine process, where the experiment supports it (fig1). Traces are
	// bit-identical either way; flat mode exists for client counts where a
	// goroutine per client is too expensive.
	Flat bool

	// Domains shards each cell's independent simulation units across a
	// sim.Domains group of this width, where the experiment supports it
	// (fig1, fig2): units run concurrently inside the deterministic windowed
	// coordinator instead of serially on one engine. 0 keeps the legacy
	// single-engine path; traces are bit-identical at every width. Composes
	// with Workers — cells shard over the pool, units within a cell over
	// domains.
	Domains int

	// DomainStats, when non-nil, accumulates coordinator accounting
	// (rounds, mail, busy/wall) across every Domains group the run creates.
	DomainStats *sim.DomainAccum
}

// Defaults returns the Proto block the paper-scale protocols start from:
// the paper's seed, serial execution. Experiments layer their own ladder
// and repetition defaults on top.
func Defaults() Proto {
	return Proto{Seed: 42, Workers: 1}
}

// Apply merges the caller's explicit knobs into a scale-derived base
// block: Workers always transfers, Seed when set (0 keeps the scale
// default of 42 usable as "unspecified"), Clients and Runs only when the
// caller overrode them.
func (p Proto) Apply(base Proto) Proto {
	if p.Seed != 0 {
		base.Seed = p.Seed
	}
	base.Workers = p.Workers
	if p.Clients != nil {
		base.Clients = p.Clients
	}
	if p.Runs != 0 {
		base.Runs = p.Runs
	}
	base.Scale = p.Scale
	base.Size = p.Size
	base.Flat = p.Flat
	base.Domains = p.Domains
	base.DomainStats = p.DomainStats
	return base
}
