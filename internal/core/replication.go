package core

import (
	"fmt"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// ReplicationConfig scales the Section 6.1 recommendation ablation: "using
// data replication on the blob storage to expand the server-side bandwidth
// limit". The service caps a single blob near 400 MB/s; storing k copies
// under distinct names and spreading readers multiplies the achievable
// aggregate.
type ReplicationConfig struct {
	Proto
	Clients  int // shadows Proto.Clients: one fixed reader count, not a ladder
	BlobMB   int64
	Replicas []int
}

// DefaultReplicationConfig ablates 1x/2x/4x replication with enough readers
// (128 per replica at k=4) that every replica still saturates the per-blob
// cap; fewer clients under-drive the replicas and understate the k-fold
// expansion.
func DefaultReplicationConfig() ReplicationConfig {
	return ReplicationConfig{Proto: Defaults(), Clients: 512, BlobMB: 256, Replicas: []int{1, 2, 4}}
}

// ReplicationPoint is the outcome for one replica count.
type ReplicationPoint struct {
	Replicas       int
	PerClientMBps  float64
	AggregateMBps  float64
	SpeedupVsOne   float64
	PerBlobClients int
}

// ReplicationResult is the ablation dataset.
type ReplicationResult struct {
	Clients int
	Points  []ReplicationPoint
}

// RunReplication executes the ablation. Each replica count is an isolated
// cell and shards over cfg.Workers; SpeedupVsOne is derived after the
// ordered collection so it never depends on completion order.
func RunReplication(cfg ReplicationConfig) *ReplicationResult {
	if cfg.Clients == 0 {
		cfg.Clients = 128
	}
	if cfg.BlobMB == 0 {
		cfg.BlobMB = 256
	}
	if cfg.Replicas == nil {
		cfg.Replicas = []int{1, 2, 4}
	}
	res := &ReplicationResult{Clients: cfg.Clients}
	pool := sched.New(cfg.Workers)
	res.Points = sched.Map(pool, len(cfg.Replicas), func(i int) ReplicationPoint {
		return runReplicationCell(cfg, cfg.Replicas[i])
	})
	if len(res.Points) > 0 {
		base := res.Points[0].AggregateMBps
		for i := range res.Points {
			res.Points[i].SpeedupVsOne = res.Points[i].AggregateMBps / base
		}
	}
	return res
}

func runReplicationCell(cfg ReplicationConfig, k int) ReplicationPoint {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(k)}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	for r := 0; r < k; r++ {
		cloud.Blob.Seed("data", fmt.Sprintf("copy-%d", r), cfg.BlobMB*netsim.MB)
	}
	vms := cloud.Controller.ReadyFleet(cfg.Clients, fabric.Worker, fabric.Small)
	var per metrics.Summary
	for i := 0; i < cfg.Clients; i++ {
		i := i
		cl := cloud.NewClient(vms[i], i)
		cloud.Engine.Spawn("dl", func(p *sim.Proc) {
			start := p.Now()
			n, err := cl.GetBlob(p, "data", fmt.Sprintf("copy-%d", i%k))
			if err != nil {
				panic(err)
			}
			per.Add(float64(n) / 1e6 / (p.Now() - start).Seconds())
		})
	}
	cloud.Engine.Run()
	return ReplicationPoint{
		Replicas:       k,
		PerClientMBps:  per.Mean(),
		AggregateMBps:  per.Mean() * float64(cfg.Clients),
		PerBlobClients: cfg.Clients / k,
	}
}

// Anchors reports the ablation's headline: k-way replication lifts the
// single-blob aggregate cap roughly k-fold.
func (r *ReplicationResult) Anchors() []Anchor {
	var out []Anchor
	for _, pt := range r.Points {
		if pt.Replicas == 4 {
			out = append(out, Anchor{"aggregate speedup @4 replicas", "x", 4, pt.SpeedupVsOne})
		}
	}
	return out
}
