package core

import (
	"fmt"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// SQLCompareConfig scales the SQL Azure vs table storage comparison the
// HPDC 2010 version of the paper ran (the journal revision omitted it for
// space): the same key-addressed insert/select workload against both tiers
// across a concurrency ladder. SQL latency constants are era-plausible but
// uncalibrated (see internal/storage/sqlsvc); the comparison's value is the
// qualitative contrast — a connection-capped relational tier versus the
// shared-nothing table service.
type SQLCompareConfig struct {
	Proto
	RowSize int
	OpsEach int
}

// DefaultSQLCompareConfig mirrors the table experiment's ladder.
func DefaultSQLCompareConfig() SQLCompareConfig {
	p := Defaults()
	p.Clients = []int{1, 8, 32, 64, 128}
	return SQLCompareConfig{Proto: p, RowSize: 1024, OpsEach: 100}
}

// SQLComparePoint is the outcome at one concurrency level.
type SQLComparePoint struct {
	Clients        int
	SQLInsertOps   float64 // per connected client
	SQLSelectOps   float64
	TableInsertOps float64
	TableQueryOps  float64
	ThrottledOpens int // SQL connections rejected at this level
	ConnectedOpens int
}

// SQLCompareResult is the comparison dataset.
type SQLCompareResult struct {
	Points []SQLComparePoint
}

// RunSQLCompare executes the comparison. Each ladder level is an isolated
// pair of clouds and shards over cfg.Workers.
func RunSQLCompare(cfg SQLCompareConfig) *SQLCompareResult {
	if cfg.Clients == nil {
		cfg.Clients = DefaultSQLCompareConfig().Clients
	}
	if cfg.RowSize == 0 {
		cfg.RowSize = 1024
	}
	if cfg.OpsEach == 0 {
		cfg.OpsEach = 100
	}
	res := &SQLCompareResult{}
	pool := sched.New(cfg.Workers)
	res.Points = sched.Map(pool, len(cfg.Clients), func(i int) SQLComparePoint {
		return runSQLCompareLevel(cfg, cfg.Clients[i])
	})
	return res
}

// Anchors reports the comparison's qualitative claims: the table tier keeps
// accepting clients past the point where SQL Azure throttles connections.
func (r *SQLCompareResult) Anchors() []Anchor {
	var out []Anchor
	for _, pt := range r.Points {
		if pt.Clients == 128 {
			out = append(out, Anchor{"SQL throttled opens @128 (>0)", "clients", 64,
				float64(pt.ThrottledOpens)})
		}
	}
	return out
}

func runSQLCompareLevel(cfg SQLCompareConfig, n int) SQLComparePoint {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(n)*7919}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	pt := SQLComparePoint{Clients: n}

	// SQL side.
	cloud.SQL.CreateDatabase("bench", sqlsvc.Business)
	for c := 0; c < n; c++ {
		for i := 0; i < cfg.OpsEach; i++ {
			cloud.SQL.Seed("bench", "rows", fmt.Sprintf("pre-%d-%d", c, i), cfg.RowSize)
		}
	}
	var sqlInsertOps, sqlSelectOps int
	var sqlInsertSec, sqlSelectSec float64
	for c := 0; c < n; c++ {
		c := c
		cloud.Engine.Spawn("sql", func(p *sim.Proc) {
			conn, err := cloud.SQL.Open(p, "bench", c)
			if storerr.IsCode(err, storerr.CodeServerBusy) {
				pt.ThrottledOpens++
				return
			}
			if err != nil {
				panic(err)
			}
			pt.ConnectedOpens++
			defer conn.Close()
			start := p.Now()
			for i := 0; i < cfg.OpsEach; i++ {
				if err := conn.Insert(p, "rows", fmt.Sprintf("n-%d-%d", c, i), cfg.RowSize); err != nil {
					panic(err)
				}
				sqlInsertOps++
			}
			sqlInsertSec += (p.Now() - start).Seconds()
			start = p.Now()
			for i := 0; i < cfg.OpsEach; i++ {
				if _, err := conn.Select(p, "rows", fmt.Sprintf("pre-%d-%d", c, i)); err != nil {
					panic(err)
				}
				sqlSelectOps++
			}
			sqlSelectSec += (p.Now() - start).Seconds()
		})
	}
	cloud.Engine.Run()
	if sqlInsertSec > 0 {
		pt.SQLInsertOps = float64(sqlInsertOps) / sqlInsertSec
	}
	if sqlSelectSec > 0 {
		pt.SQLSelectOps = float64(sqlSelectOps) / sqlSelectSec
	}

	// Table storage side (fresh cloud so stations start cold).
	cloud2 := azure.NewCloud(ccfg)
	cloud2.Table.CreateTable("bench")
	for c := 0; c < n; c++ {
		for i := 0; i < cfg.OpsEach; i++ {
			cloud2.Table.Backdoor("bench",
				tablesvc.PaddedEntity("part", fmt.Sprintf("pre-%d-%d", c, i), cfg.RowSize))
		}
	}
	var tabInsertOps, tabQueryOps int
	var tabInsertSec, tabQuerySec float64
	for c := 0; c < n; c++ {
		c := c
		cloud2.Engine.Spawn("tab", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < cfg.OpsEach; i++ {
				e := tablesvc.PaddedEntity("part", fmt.Sprintf("n-%d-%d", c, i), cfg.RowSize)
				if err := cloud2.Table.Insert(p, "bench", e); err != nil {
					panic(err)
				}
				tabInsertOps++
			}
			tabInsertSec += (p.Now() - start).Seconds()
			start = p.Now()
			for i := 0; i < cfg.OpsEach; i++ {
				if _, err := cloud2.Table.Get(p, "bench", "part", fmt.Sprintf("pre-%d-%d", c, i)); err != nil {
					panic(err)
				}
				tabQueryOps++
			}
			tabQuerySec += (p.Now() - start).Seconds()
		})
	}
	cloud2.Engine.Run()
	pt.TableInsertOps = float64(tabInsertOps) / tabInsertSec
	pt.TableQueryOps = float64(tabQueryOps) / tabQuerySec
	return pt
}
