// Package core is the measurement framework of the reproduction: one
// experiment type per artifact of the paper's evaluation (Figs. 1-5,
// Table 1, plus the Section 6 ablations), each re-running the paper's exact
// client protocol against the simulated cloud and reporting paper-vs-
// measured anchor points.
//
// Every experiment is deterministic given its seed; scale knobs (client
// counts, op counts, blob sizes) default to the paper's protocol but can be
// reduced for quick benchmarking.
package core

import "fmt"

// Anchor is one published data point compared against the reproduction.
type Anchor struct {
	Name     string  // what is being compared
	Unit     string  // measurement unit
	Paper    float64 // value reported in the paper
	Measured float64 // value this reproduction measured
}

// RelErr returns |measured−paper|/|paper| (0 when paper is 0).
func (a Anchor) RelErr() float64 {
	if a.Paper == 0 {
		return 0
	}
	d := a.Measured - a.Paper
	if d < 0 {
		d = -d
	}
	p := a.Paper
	if p < 0 {
		p = -p
	}
	return d / p
}

func (a Anchor) String() string {
	return fmt.Sprintf("%-46s paper=%10.2f  measured=%10.2f %-8s (%.1f%% off)",
		a.Name, a.Paper, a.Measured, a.Unit, a.RelErr()*100)
}

// DefaultClientCounts is the concurrency ladder used across the storage
// experiments (the paper sweeps 1-192 concurrent clients).
func DefaultClientCounts() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128, 192} }
