package core

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// geoGoldenConfig is the fixed reduced-scale fig8geo run the equivalence
// test hashes: small enough to sweep six (workers, domains) points, big
// enough that every scenario quantity (lag quantiles, staleness, RTO/RPO,
// flaps) is nonzero where it should be.
func geoGoldenConfig(workers, domains int) Fig8GeoConfig {
	p := Proto{Seed: 42, Workers: workers, Domains: domains}
	return Fig8GeoConfig{
		Proto:            p,
		Regions:          4,
		ClientsPerRegion: 24,
		HotNames:         8,
		BlobBytes:        256 << 10,
		MeanThink:        2 * time.Second,
		Horizon:          60 * time.Second,
		Window:           20 * time.Millisecond,
	}
}

func geoEncoding(workers, domains int) ([]byte, *Fig8GeoResult) {
	r := RunFig8Geo(geoGoldenConfig(workers, domains))
	g := newGoldenHasher()
	encodeResult(g, r)
	return append([]byte(nil), g.bytes()...), r
}

// geoGoldenTrace pins the serial domains=1 capture; recapture with
//
//	GOLDEN_PRINT=1 go test ./internal/core -run TestGeoEquivalence -v
const geoGoldenTrace = 0xf839a09537813d7d

// TestGeoEquivalence is the cross-DC determinism pin, in the
// TestDomainEquivalence discipline: fig8geo at domains ∈ {1, 2, 4} ×
// workers ∈ {1, 4} produces byte-identical result encodings and identical
// anchors, and the serial run reproduces the recorded golden hash.
func TestGeoEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("geo equivalence sweeps are slow")
	}
	baseline, baseRes := geoEncoding(1, 1)
	baseAnchors := fmt.Sprint(baseRes.Anchors())

	g := newGoldenHasher()
	g.write(baseline)
	if os.Getenv("GOLDEN_PRINT") != "" {
		fmt.Printf("\tgeoGoldenTrace = %#016x\n", g.sum())
	}
	if got := g.sum(); got != uint64(geoGoldenTrace) {
		t.Errorf("fig8geo serial trace = %#016x, want recorded golden %#016x", got, uint64(geoGoldenTrace))
	}

	for _, workers := range []int{1, 4} {
		for _, domains := range []int{1, 2, 4} {
			if workers == 1 && domains == 1 {
				continue
			}
			enc, res := geoEncoding(workers, domains)
			if !bytes.Equal(enc, baseline) {
				t.Errorf("workers=%d domains=%d: fig8geo encoding differs from serial baseline",
					workers, domains)
			}
			if a := fmt.Sprint(res.Anchors()); a != baseAnchors {
				t.Errorf("workers=%d domains=%d: anchors differ:\n%v\n%v",
					workers, domains, a, baseAnchors)
			}
		}
	}

	// The scenario quantities the anchors report must actually be live in
	// this reduced world, or the equivalence sweep pins vacuous zeros.
	if baseRes.Lag.LagP50Sec <= 0 || baseRes.Lag.StaleReads == 0 {
		t.Errorf("lag scenario inert: %+v", baseRes.Lag)
	}
	if baseRes.RYW.StaleReads != 0 || baseRes.RYW.RemoteReads == 0 {
		t.Errorf("read-your-writes scenario inert: %+v", baseRes.RYW)
	}
	if baseRes.Kill.RTOSec <= 0 || baseRes.Kill.KilledFlaps != 2 {
		t.Errorf("kill scenario inert: %+v", baseRes.Kill)
	}
}
