package core

import (
	"fmt"

	"azureobs/internal/azure"
	"azureobs/internal/core/sched"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// Fig2Config scales the table storage experiment. The paper's protocol
// (Section 3.2): each client inserts 500 entities into one partition
// (~220k total at 192 clients), queries the same entity 500 times by keys,
// updates one shared entity 100 times unconditionally, then deletes its own
// 500 entities. Entity sizes 1-64 kB.
type Fig2Config struct {
	Proto
	EntitySize int // bytes (paper figure: 4096)
	Inserts    int // per client (paper: 500)
	Queries    int // per client (paper: 500)
	Updates    int // per client (paper: 100)
}

// DefaultFig2Config is the paper-scale protocol at 4 kB entities.
func DefaultFig2Config() Fig2Config {
	p := Defaults()
	p.Clients = DefaultClientCounts()
	return Fig2Config{
		Proto:      p,
		EntitySize: 4096,
		Inserts:    500,
		Queries:    500,
		Updates:    100,
	}
}

func (cfg Fig2Config) withDefaults() Fig2Config {
	if cfg.Clients == nil {
		cfg.Clients = DefaultClientCounts()
	}
	if cfg.EntitySize == 0 {
		cfg.EntitySize = 4096
	}
	if cfg.Inserts == 0 {
		cfg.Inserts = 500
	}
	if cfg.Queries == 0 {
		cfg.Queries = 500
	}
	if cfg.Updates == 0 {
		cfg.Updates = 100
	}
	return cfg
}

// Fig2Point holds per-client ops/s for the four operations at one
// concurrency level, plus the count of clients that finished all inserts
// (all of them except in the 64 kB overload regime).
type Fig2Point struct {
	Clients   int
	InsertOps float64
	QueryOps  float64
	UpdateOps float64
	DeleteOps float64

	InsertSurvivors int
	DeleteSurvivors int
}

// Fig2Result is the reproduced Fig. 2 dataset.
type Fig2Result struct {
	EntitySize int
	Points     []Fig2Point
}

// RunFig2 executes the table operation sweep. Each concurrency level is an
// independent cell (its own cloud, seed salted by the level alone), so the
// ladder shards over cfg.Workers with bit-identical results at any width.
func RunFig2(cfg Fig2Config) *Fig2Result {
	cfg = cfg.withDefaults()
	res := &Fig2Result{EntitySize: cfg.EntitySize}
	pool := sched.New(cfg.Workers)
	if cfg.Domains > 0 {
		// Intra-cell parallelism: each level is a self-contained simulation
		// unit, sharded across sim.Domains groups (and group batches over
		// the pool). The level's phases run under a driver process instead
		// of repeated engine drains; the trace is identical either way.
		res.Points = domainBatches(pool, cfg.Domains, len(cfg.Clients), cfg.DomainStats,
			func(u int, eng *sim.Engine) func() Fig2Point {
				return fig2LevelStart(cfg, cfg.Clients[u], eng)
			})
	} else {
		res.Points = sched.Map(pool, len(cfg.Clients), func(i int) Fig2Point {
			return runFig2Level(cfg, cfg.Clients[i])
		})
	}
	return res
}

// phaseRate runs one closed-loop phase over all clients and returns the mean
// per-client ops rate and the number of clients that completed every op.
// A client that hits a server timeout aborts its run (the paper counts these
// as clients that "have encountered timeout exceptions").
func phaseRate(cloud *azure.Cloud, clients, opsEach int,
	op func(p *sim.Proc, client, i int) error) (rate float64, survivors int) {
	var totalOps int
	var totalSec float64
	for c := 0; c < clients; c++ {
		c := c
		cloud.Engine.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			start := p.Now()
			done := 0
			for i := 0; i < opsEach; i++ {
				if err := op(p, c, i); err != nil {
					if storerr.IsCode(err, storerr.CodeTimeout) {
						break
					}
					panic(err)
				}
				done++
			}
			totalOps += done
			totalSec += (p.Now() - start).Seconds()
			if done == opsEach {
				survivors++
			}
		})
	}
	cloud.Engine.Run()
	return float64(totalOps) / totalSec, survivors
}

// runFig2Phases executes a level's four phases on cloud through the given
// phase executor, which runs one closed-loop phase over n clients and
// returns (mean per-client rate, survivors). The op bodies live here, once,
// so the legacy drain-per-phase path and the domain driver-process path
// issue literally the same operations.
func runFig2Phases(cfg Fig2Config, cloud *azure.Cloud, n int,
	phase func(opsEach int, op func(p *sim.Proc, c, i int) error) (float64, int)) Fig2Point {
	pt := Fig2Point{Clients: n}

	// Insert phase.
	pt.InsertOps, pt.InsertSurvivors = phase(cfg.Inserts, func(p *sim.Proc, c, i int) error {
		e := tablesvc.PaddedEntity("part", fmt.Sprintf("row-%03d-%04d", c, i), cfg.EntitySize)
		return cloud.Table.Insert(p, "bench", e)
	})

	// The paper's partition holds ~220k entities after the insert phase;
	// top up so later phases see that density regardless of client count.
	backfill(cloud, 220000, cfg.EntitySize)

	// Query phase: each client queries the same entity repeatedly by keys.
	pt.QueryOps, _ = phase(cfg.Queries, func(p *sim.Proc, c, i int) error {
		_, err := cloud.Table.Get(p, "bench", "part", fmt.Sprintf("row-%03d-0000", c))
		return err
	})

	// Update phase: all clients update one shared entity, unconditionally.
	pt.UpdateOps, _ = phase(cfg.Updates, func(p *sim.Proc, c, i int) error {
		return cloud.Table.Update(p, "bench",
			tablesvc.PaddedEntity("part", "row-000-0000", cfg.EntitySize))
	})

	// Delete phase: each client removes the entities it inserted.
	pt.DeleteOps, pt.DeleteSurvivors = phase(cfg.Inserts, func(p *sim.Proc, c, i int) error {
		err := cloud.Table.Delete(p, "bench", "part", fmt.Sprintf("row-%03d-%04d", c, i))
		if storerr.IsCode(err, storerr.CodeNotFound) {
			return nil // client aborted its insert phase early
		}
		return err
	})
	return pt
}

func runFig2Level(cfg Fig2Config, n int) Fig2Point {
	cloud := fig2CloudOn(nil, cfg, n)
	cloud.Table.CreateTable("bench")
	return runFig2Phases(cfg, cloud, n,
		func(opsEach int, op func(p *sim.Proc, c, i int) error) (float64, int) {
			return phaseRate(cloud, n, opsEach, op)
		})
}

// fig2LevelStart builds one level on a domain member engine and returns its
// harvester. The level's phases cannot drain the engine themselves mid
// group-run, so a driver process sequences them: each phase fans its clients
// out under a sim.WaitGroup and parks until the last one finishes, waking at
// exactly the virtual instant the legacy path's Run would have returned at.
// Client spawn order, spawn instants and every storage draw are unchanged,
// so the level's trace — and Fig2Point — is bit-identical to runFig2Level.
func fig2LevelStart(cfg Fig2Config, n int, eng *sim.Engine) func() Fig2Point {
	cloud := fig2CloudOn(eng, cfg, n)
	cloud.Table.CreateTable("bench")
	var pt Fig2Point
	cloud.Engine.Spawn("fig2-driver", func(drv *sim.Proc) {
		pt = runFig2Phases(cfg, cloud, n,
			func(opsEach int, op func(p *sim.Proc, c, i int) error) (float64, int) {
				return phaseRateIn(drv, cloud, n, opsEach, op)
			})
	})
	return func() Fig2Point { return pt }
}

// phaseRateIn is phaseRate driven from inside a simulation: the driver
// process spawns the same clients the drain-per-phase path does and parks on
// a WaitGroup instead of returning to a host-side Run loop.
func phaseRateIn(drv *sim.Proc, cloud *azure.Cloud, clients, opsEach int,
	op func(p *sim.Proc, client, i int) error) (rate float64, survivors int) {
	var totalOps int
	var totalSec float64
	var wg sim.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Go(cloud.Engine, fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			start := p.Now()
			done := 0
			for i := 0; i < opsEach; i++ {
				if err := op(p, c, i); err != nil {
					if storerr.IsCode(err, storerr.CodeTimeout) {
						break
					}
					panic(err)
				}
				done++
			}
			totalOps += done
			totalSec += (p.Now() - start).Seconds()
			if done == opsEach {
				survivors++
			}
		})
	}
	wg.Wait(drv)
	return float64(totalOps) / totalSec, survivors
}

// fig2CloudOn builds a level's cloud on eng, or on a fresh standalone
// engine when eng is nil (the legacy serial path).
func fig2CloudOn(eng *sim.Engine, cfg Fig2Config, n int) *azure.Cloud {
	ccfg := azure.Config{Seed: cfg.Seed + uint64(n)*104729}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	if eng == nil {
		return azure.NewCloud(ccfg)
	}
	return azure.NewCloudOn(eng, ccfg)
}

// backfill fills the bench partition up to total entities without spending
// simulated time.
func backfill(cloud *azure.Cloud, total, size int) {
	have := cloud.Table.PartitionSize("bench", "part")
	for i := 0; have+i < total; i++ {
		e := tablesvc.PaddedEntity("part", fmt.Sprintf("fill-%06d", i), size)
		cloud.Table.Backdoor("bench", e)
	}
}

// Anchors compares against the published Fig. 2 narrative.
func (r *Fig2Result) Anchors() []Anchor {
	var out []Anchor
	find := func(n int) *Fig2Point {
		for i := range r.Points {
			if r.Points[i].Clients == n {
				return &r.Points[i]
			}
		}
		return nil
	}
	p1, p128, p192 := find(1), find(128), find(192)
	if p1 != nil {
		out = append(out, Anchor{"insert per-client @1", "ops/s", 27, p1.InsertOps})
	}
	// The paper reports where aggregate throughput peaks: Update at 8
	// concurrent clients, Delete at 128 (Section 3.2).
	if len(r.Points) >= 4 {
		argmax := func(agg func(Fig2Point) float64) int {
			best, bestN := -1.0, 0
			for _, p := range r.Points {
				if v := agg(p); v > best {
					best, bestN = v, p.Clients
				}
			}
			return bestN
		}
		out = append(out, Anchor{"update aggregate peak location", "clients", 8,
			float64(argmax(func(p Fig2Point) float64 { return p.UpdateOps * float64(p.Clients) }))})
		out = append(out, Anchor{"delete aggregate peak location", "clients", 128,
			float64(argmax(func(p Fig2Point) float64 { return p.DeleteOps * float64(p.Clients) }))})
	}
	if p128 != nil && p192 != nil {
		out = append(out, Anchor{"delete aggregate @128 vs @192 ratio (>1)", "x",
			1.1, p128.DeleteOps * 128 / (p192.DeleteOps * 192)})
	}
	if r.EntitySize >= 65536 {
		if p128 != nil {
			out = append(out, Anchor{"64kB insert survivors @128", "clients", 94, float64(p128.InsertSurvivors)})
		}
		if p192 != nil {
			out = append(out, Anchor{"64kB insert survivors @192", "clients", 89, float64(p192.InsertSurvivors)})
		}
	}
	return out
}
