package core

// Size sweeps: the paper ran the table experiment at entity sizes 1, 4, 16
// and 64 kB and the queue experiment at message sizes 512 B, 1, 4 and 8 kB,
// reporting that "the shape of the performance curves for different entity
// sizes are similar" (Section 3.2) and likewise for queues (Section 3.3) —
// with the single exception of the 64 kB insert/delete overload at 128/192
// clients. These sweeps regenerate that claim.

// PaperEntitySizes are the entity sizes of Section 3.2.
func PaperEntitySizes() []int { return []int{1024, 4096, 16384, 65536} }

// PaperMessageSizes are the message sizes of Section 3.3.
func PaperMessageSizes() []int { return []int{512, 1024, 4096, 8192} }

// Fig2SizeSweep runs the table experiment at each entity size.
type Fig2SizeSweep struct {
	Sizes   []int
	Results []*Fig2Result
}

// RunFig2Sizes executes the entity-size sweep with a shared base config.
func RunFig2Sizes(base Fig2Config, sizes []int) *Fig2SizeSweep {
	if sizes == nil {
		sizes = PaperEntitySizes()
	}
	sw := &Fig2SizeSweep{Sizes: sizes}
	for _, s := range sizes {
		cfg := base
		cfg.EntitySize = s
		cfg.Seed = base.Seed + uint64(s)
		sw.Results = append(sw.Results, RunFig2(cfg))
	}
	return sw
}

// ShapeSimilarity quantifies how similar two concurrency curves are:
// the maximum relative deviation of their point-wise ratios from the median
// ratio. Curves that differ only by a vertical scale factor score 0.
func ShapeSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 1
	}
	ratios := make([]float64, 0, len(a))
	for i := range a {
		if b[i] <= 0 || a[i] <= 0 {
			return 1
		}
		ratios = append(ratios, a[i]/b[i])
	}
	// median ratio
	med := medianOf(ratios)
	worst := 0.0
	for _, r := range ratios {
		d := r/med - 1
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: tiny inputs
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// InsertCurve extracts the per-client insert rates in client order.
func (r *Fig2Result) InsertCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.InsertOps
	}
	return out
}

// QueryCurve extracts the per-client query rates.
func (r *Fig2Result) QueryCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.QueryOps
	}
	return out
}

// Fig3SizeSweep runs the queue experiment at each message size.
type Fig3SizeSweep struct {
	Sizes   []int
	Results []*Fig3Result
}

// RunFig3Sizes executes the message-size sweep with a shared base config.
func RunFig3Sizes(base Fig3Config, sizes []int) *Fig3SizeSweep {
	if sizes == nil {
		sizes = PaperMessageSizes()
	}
	sw := &Fig3SizeSweep{Sizes: sizes}
	for _, s := range sizes {
		cfg := base
		cfg.MsgSize = s
		cfg.Seed = base.Seed + uint64(s)
		sw.Results = append(sw.Results, RunFig3(cfg))
	}
	return sw
}

// AddCurve extracts the per-client Add rates.
func (r *Fig3Result) AddCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.AddOps
	}
	return out
}

// ReceiveCurve extracts the per-client Receive rates.
func (r *Fig3Result) ReceiveCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.ReceiveOps
	}
	return out
}
