package core

import "azureobs/internal/core/sched"

// Size sweeps: the paper ran the table experiment at entity sizes 1, 4, 16
// and 64 kB and the queue experiment at message sizes 512 B, 1, 4 and 8 kB,
// reporting that "the shape of the performance curves for different entity
// sizes are similar" (Section 3.2) and likewise for queues (Section 3.3) —
// with the single exception of the 64 kB insert/delete overload at 128/192
// clients. These sweeps regenerate that claim.

// PaperEntitySizes are the entity sizes of Section 3.2.
func PaperEntitySizes() []int { return []int{1024, 4096, 16384, 65536} }

// PaperMessageSizes are the message sizes of Section 3.3.
func PaperMessageSizes() []int { return []int{512, 1024, 4096, 8192} }

// Fig2SizeSweep runs the table experiment at each entity size.
type Fig2SizeSweep struct {
	Sizes   []int
	Results []*Fig2Result
}

// RunFig2Sizes executes the entity-size sweep with a shared base config.
// The (size, level) grid is flattened into one pool so a sweep saturates
// base.Workers even when single sizes have few ladder levels.
func RunFig2Sizes(base Fig2Config, sizes []int) *Fig2SizeSweep {
	if sizes == nil {
		sizes = PaperEntitySizes()
	}
	cfgs := make([]Fig2Config, len(sizes))
	for si, s := range sizes {
		cfg := base
		cfg.EntitySize = s
		cfg.Seed = base.Seed + uint64(s)
		cfgs[si] = cfg.withDefaults()
	}
	levels := len(cfgs[0].Clients)
	pool := sched.New(base.Workers)
	pts := sched.Map(pool, len(sizes)*levels, func(i int) Fig2Point {
		cfg := cfgs[i/levels]
		return runFig2Level(cfg, cfg.Clients[i%levels])
	})
	sw := &Fig2SizeSweep{Sizes: sizes}
	for si, s := range sizes {
		sw.Results = append(sw.Results, &Fig2Result{
			EntitySize: s,
			Points:     pts[si*levels : (si+1)*levels],
		})
	}
	return sw
}

// Anchors reports the sweep's headline claim: the concurrency curves keep
// their shape across entity sizes (worst insert-curve deviation vs the
// smallest size, as a percentage — the paper says the shapes are similar).
func (sw *Fig2SizeSweep) Anchors() []Anchor {
	if len(sw.Results) < 2 {
		return nil
	}
	worst := 0.0
	base := sw.Results[0].QueryCurve()
	for _, r := range sw.Results[1:] {
		if d := ShapeSimilarity(base, r.QueryCurve()); d > worst {
			worst = d
		}
	}
	return []Anchor{{"worst query-curve shape deviation across sizes", "%", 0, worst * 100}}
}

// ShapeSimilarity quantifies how similar two concurrency curves are:
// the maximum relative deviation of their point-wise ratios from the median
// ratio. Curves that differ only by a vertical scale factor score 0.
func ShapeSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 1
	}
	ratios := make([]float64, 0, len(a))
	for i := range a {
		if b[i] <= 0 || a[i] <= 0 {
			return 1
		}
		ratios = append(ratios, a[i]/b[i])
	}
	// median ratio
	med := medianOf(ratios)
	worst := 0.0
	for _, r := range ratios {
		d := r/med - 1
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: tiny inputs
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// InsertCurve extracts the per-client insert rates in client order.
func (r *Fig2Result) InsertCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.InsertOps
	}
	return out
}

// QueryCurve extracts the per-client query rates.
func (r *Fig2Result) QueryCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.QueryOps
	}
	return out
}

// Fig3SizeSweep runs the queue experiment at each message size.
type Fig3SizeSweep struct {
	Sizes   []int
	Results []*Fig3Result
}

// RunFig3Sizes executes the message-size sweep with a shared base config,
// flattening the (size, level) grid as in RunFig2Sizes.
func RunFig3Sizes(base Fig3Config, sizes []int) *Fig3SizeSweep {
	if sizes == nil {
		sizes = PaperMessageSizes()
	}
	cfgs := make([]Fig3Config, len(sizes))
	for si, s := range sizes {
		cfg := base
		cfg.MsgSize = s
		cfg.Seed = base.Seed + uint64(s)
		cfgs[si] = cfg.withDefaults()
	}
	levels := len(cfgs[0].Clients)
	pool := sched.New(base.Workers)
	pts := sched.Map(pool, len(sizes)*levels, func(i int) Fig3Point {
		cfg := cfgs[i/levels]
		return runFig3Level(cfg, cfg.Clients[i%levels])
	})
	sw := &Fig3SizeSweep{Sizes: sizes}
	for si, s := range sizes {
		sw.Results = append(sw.Results, &Fig3Result{
			MsgSize: s,
			Points:  pts[si*levels : (si+1)*levels],
		})
	}
	return sw
}

// Anchors mirrors Fig2SizeSweep.Anchors for the queue sweep.
func (sw *Fig3SizeSweep) Anchors() []Anchor {
	if len(sw.Results) < 2 {
		return nil
	}
	worst := 0.0
	base := sw.Results[0].ReceiveCurve()
	for _, r := range sw.Results[1:] {
		if d := ShapeSimilarity(base, r.ReceiveCurve()); d > worst {
			worst = d
		}
	}
	return []Anchor{{"worst receive-curve shape deviation across sizes", "%", 0, worst * 100}}
}

// AddCurve extracts the per-client Add rates.
func (r *Fig3Result) AddCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.AddOps
	}
	return out
}

// ReceiveCurve extracts the per-client Receive rates.
func (r *Fig3Result) ReceiveCurve() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.ReceiveOps
	}
	return out
}
