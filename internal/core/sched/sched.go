// Package sched runs independent, deterministic experiment cells over a
// bounded worker pool.
//
// The contract that keeps parallel runs bit-identical to serial ones is
// isolation: a cell must derive everything it needs (sim engine, cloud,
// RNG streams) from its own index and seed, and share no mutable state
// with any other cell. Every experiment in internal/core already builds a
// fresh simulated cloud per cell with a seed computed from the cell's
// coordinates alone, so the pool only owns dispatch, bounded concurrency,
// ordered result collection, and wall-clock/utilization accounting — it
// changes when a cell runs, never what it computes.
//
// With one worker, Map degenerates to a plain serial loop on the caller's
// goroutine: no channels, no goroutines, no nondeterminism of any kind.
// That path is the reference the golden traces are captured against; the
// parallel path must (and, by the isolation contract, provably does)
// reproduce it bit for bit.
package sched

import (
	"sync"
	"time"
)

// Pool is a bounded-width dispatcher for independent experiment cells.
// A Pool may be reused across Map calls; its Stats accumulate.
type Pool struct {
	workers int

	mu    sync.Mutex
	stats Stats
}

// Stats is the pool's wall-clock and utilization accounting.
type Stats struct {
	Cells   int           // cells executed across all Map calls
	Busy    time.Duration // summed per-cell execution time
	Wall    time.Duration // summed Map wall time
	MaxCell time.Duration // slowest single cell seen — the serial floor
}

// Utilization is the fraction of the pool's worker-seconds spent inside
// cells: Busy / (workers × Wall). Serial pools score ~1 by construction;
// a parallel pool scores low when cells are too few or too uneven to keep
// every worker busy.
func (s Stats) Utilization(workers int) float64 {
	if s.Wall <= 0 || workers < 1 {
		return 0
	}
	return s.Busy.Seconds() / (float64(workers) * s.Wall.Seconds())
}

// New returns a pool of the given width. Widths below 1 clamp to 1
// (serial), so a zero-valued Workers knob always means "today's behaviour".
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Pool) account(cells int, busy, wall time.Duration) {
	p.mu.Lock()
	p.stats.Cells += cells
	p.stats.Busy += busy
	p.stats.Wall += wall
	// Single-cell accounting records the per-cell duration in busy; batch
	// accounting (cells != 1) carries sums, which must not pollute the max.
	if cells == 1 && busy > p.stats.MaxCell {
		p.stats.MaxCell = busy
	}
	p.mu.Unlock()
}

// Map runs fn(0) … fn(n-1) over the pool and returns the results in index
// order regardless of completion order. Cells must be independent (see the
// package comment); under that contract the returned slice is identical
// for every pool width.
//
// A panicking cell stops dispatch of not-yet-started cells, and the first
// panic value is re-raised on the caller's goroutine once in-flight cells
// drain — matching the serial path, where a cell panic unwinds Map itself.
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	start := time.Now()
	if p.workers == 1 || n <= 1 {
		// Per-cell accounting (not one batched call) so MaxCell — the
		// serial floor a wider pool cannot beat — is recorded on this path
		// too; the wall posts once at the end, panic or not.
		defer func() { p.account(0, 0, time.Since(start)) }()
		for i := 0; i < n; i++ {
			cellStart := time.Now()
			out[i] = fn(i)
			p.account(1, time.Since(cellStart), 0)
		}
		return out
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		wg        sync.WaitGroup
		idx       = make(chan int)
		panicked  any
		panicOnce sync.Once
		abort     = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicked = r
								close(abort)
							})
						}
					}()
					cellStart := time.Now()
					out[i] = fn(i)
					p.account(1, time.Since(cellStart), 0)
				}()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-abort:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	p.account(0, 0, time.Since(start))
	if panicked != nil {
		panic(panicked)
	}
	return out
}
