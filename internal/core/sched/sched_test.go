package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNewClampsWidth(t *testing.T) {
	for _, w := range []int{-3, 0, 1} {
		if got := New(w).Workers(); got != 1 {
			t.Fatalf("New(%d).Workers() = %d, want 1", w, got)
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		p := New(w)
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	p := New(4)
	if got := Map(p, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("empty map returned %v", got)
	}
	if got := Map(p, 1, func(i int) string { return "x" }); got[0] != "x" {
		t.Fatalf("single map returned %v", got)
	}
}

func TestMapRunsEveryCellOnce(t *testing.T) {
	var calls [64]int32
	p := New(8)
	Map(p, len(calls), func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	p := New(workers)
	Map(p, 30, func(i int) struct{} {
		n := atomic.AddInt32(&cur, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return struct{}{}
	})
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Fatalf("observed %d concurrent cells, pool width %d", got, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := New(w)
		func() {
			defer func() {
				if r := recover(); r != "cell 3 exploded" {
					t.Fatalf("workers=%d: recovered %v", w, r)
				}
			}()
			Map(p, 8, func(i int) int {
				if i == 3 {
					panic("cell 3 exploded")
				}
				return i
			})
			t.Fatalf("workers=%d: Map returned after panic", w)
		}()
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(2)
	Map(p, 10, func(i int) struct{} {
		time.Sleep(time.Millisecond)
		return struct{}{}
	})
	st := p.Stats()
	if st.Cells != 10 {
		t.Fatalf("Cells = %d, want 10", st.Cells)
	}
	if st.Busy < 10*time.Millisecond {
		t.Fatalf("Busy = %v, want ≥ 10ms", st.Busy)
	}
	if st.Wall <= 0 {
		t.Fatalf("Wall = %v", st.Wall)
	}
	u := st.Utilization(p.Workers())
	if u <= 0 || u > 1.5 { // loose: timers are coarse under CI load
		t.Fatalf("Utilization = %v", u)
	}
	if (Stats{}).Utilization(4) != 0 {
		t.Fatal("zero stats should report zero utilization")
	}
}

// TestStatsMaxCell pins the slowest-cell floor on both Map paths: it must
// reflect the single slowest cell, not any batched sum.
func TestStatsMaxCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		Map(p, 6, func(i int) struct{} {
			if i == 3 {
				time.Sleep(20 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
			return struct{}{}
		})
		st := p.Stats()
		if st.MaxCell < 20*time.Millisecond {
			t.Fatalf("workers=%d: MaxCell = %v, want ≥ 20ms", workers, st.MaxCell)
		}
		// Six cells totalling ≥ 25ms of busy: a MaxCell near Busy would mean
		// a batched sum leaked into the per-cell maximum.
		if st.MaxCell >= st.Busy {
			t.Fatalf("workers=%d: MaxCell %v not below Busy %v", workers, st.MaxCell, st.Busy)
		}
	}
}

// TestMapDeterministicAcrossWidths is the pool-level statement of the
// bit-identity contract: independent cells produce the same result slice
// at any width.
func TestMapDeterministicAcrossWidths(t *testing.T) {
	cell := func(i int) uint64 {
		// A cell-local PRNG seeded only by the cell index.
		x := uint64(i)*2862933555777941757 + 3037000493
		for k := 0; k < 1000; k++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		return x
	}
	want := Map(New(1), 64, cell)
	for _, w := range []int{2, 4, 8} {
		got := Map(New(w), 64, cell)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d diverged", w, i)
			}
		}
	}
}
