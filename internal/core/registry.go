package core

import (
	"fmt"
	"sync"
)

// Experiment is one runnable artifact of the paper's evaluation. Every
// experiment registers itself here so drivers (cmd/azbench, cmd/azvalidate)
// select by name instead of each maintaining its own figure list.
type Experiment interface {
	// Name is the registry key ("fig1", "table1", …).
	Name() string
	// Run expands the Proto into the experiment's concrete config at the
	// requested Scale and executes it, sharding independent cells over
	// Proto.Workers scheduler workers.
	Run(Proto) Result
}

// Result is an experiment outcome. Every result can report its
// paper-vs-measured anchor points; experiments without published numbers
// return an empty set.
type Result interface {
	Anchors() []Anchor
}

var (
	regMu   sync.RWMutex
	regList []Experiment // registration order — the canonical run order
	regMap  = map[string]Experiment{}
)

// Register adds an experiment to the registry. It panics on duplicate
// names: two experiments claiming one name is a programming error the
// drivers could otherwise silently mask.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regMap[e.Name()]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.Name()))
	}
	regMap[e.Name()] = e
	regList = append(regList, e)
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := regMap[name]
	return e, ok
}

// Names lists the registered experiment names in registration order (the
// order `azbench -run all` executes them).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regList))
	for i, e := range regList {
		out[i] = e.Name()
	}
	return out
}

// Experiments returns the registered experiments in registration order.
func Experiments() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Experiment(nil), regList...)
}

// experiment is the standard adapter: a name plus a Proto-expanding run
// function.
type experiment struct {
	name string
	run  func(Proto) Result
}

func (e experiment) Name() string       { return e.name }
func (e experiment) Run(p Proto) Result { return e.run(p) }

func init() {
	Register(experiment{"fig1", func(p Proto) Result { return RunFig1(Fig1ConfigFor(p)) }})
	Register(experiment{"fig2", func(p Proto) Result { return RunFig2(Fig2ConfigFor(p)) }})
	Register(experiment{"fig3", func(p Proto) Result { return RunFig3(Fig3ConfigFor(p)) }})
	Register(experiment{"table1", func(p Proto) Result { return RunTable1(Table1ConfigFor(p)) }})
	Register(experiment{"tcp", func(p Proto) Result { return RunTCP(TCPConfigFor(p)) }})
	Register(experiment{"propfilter", func(p Proto) Result { return RunPropFilter(PropFilterConfigFor(p)) }})
	Register(experiment{"queuedepth", func(p Proto) Result { return RunQueueDepth(QueueDepthConfigFor(p)) }})
	Register(experiment{"replication", func(p Proto) Result { return RunReplication(ReplicationConfigFor(p)) }})
	Register(experiment{"sqlcompare", func(p Proto) Result { return RunSQLCompare(SQLCompareConfigFor(p)) }})
	Register(experiment{"startup", func(p Proto) Result { return RunStartupScaling(StartupConfigFor(p)) }})
	Register(experiment{"fig2sizes", func(p Proto) Result {
		return RunFig2Sizes(Fig2SizesBaseFor(p), PaperEntitySizes())
	}})
	Register(experiment{"fig3sizes", func(p Proto) Result {
		return RunFig3Sizes(Fig3SizesBaseFor(p), PaperMessageSizes())
	}})
	Register(experiment{"fig8geo", func(p Proto) Result { return RunFig8Geo(Fig8GeoConfigFor(p)) }})
}
