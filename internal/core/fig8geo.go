package core

import (
	"time"

	"azureobs/internal/core/sched"
	"azureobs/internal/geo"
)

// fig8geo is the cross-DC artifact family the ROADMAP's multi-datacenter
// item calls for: the paper measures one datacenter, so these anchors are
// nominal design-point values of the geo model (the replication/sqlcompare
// precedent) rather than published measurements. Three scenario worlds run
// as independent cells:
//
//   - "lag": eventual reads with a flash crowd on one region — the
//     replication-lag distribution and the eventual stale-read fraction.
//   - "ryw": read-your-writes mode — every read served by the primary,
//     zero staleness, at the price of a cross-region read share.
//   - "kill": the primary region dies whole and is repaired — failover
//     RTO, RPO exposure, lost-write count and routing-flap discipline.
//
// Each world is domain-sharded (one domain per region is the natural
// partition); traces are bit-identical at every (workers, domains)
// combination, pinned by TestGeoEquivalence.

// Fig8GeoConfig sizes the three scenario worlds.
type Fig8GeoConfig struct {
	Proto
	Regions          int
	ClientsPerRegion int
	HotNames         int
	BlobBytes        int64
	MeanThink        time.Duration
	Horizon          time.Duration
	Window           time.Duration
}

// DefaultFig8GeoConfig is the paper-scale protocol: four regions, the
// paper's top concurrency rung in each.
func DefaultFig8GeoConfig() Fig8GeoConfig {
	return Fig8GeoConfig{
		Proto:            Defaults(),
		Regions:          4,
		ClientsPerRegion: 192,
		HotNames:         16,
		BlobBytes:        256 << 10,
		MeanThink:        2 * time.Second,
		Horizon:          240 * time.Second,
		Window:           20 * time.Millisecond,
	}
}

func (cfg Fig8GeoConfig) withDefaults() Fig8GeoConfig {
	def := DefaultFig8GeoConfig()
	if cfg.Regions == 0 {
		cfg.Regions = def.Regions
	}
	if cfg.ClientsPerRegion == 0 {
		cfg.ClientsPerRegion = def.ClientsPerRegion
	}
	if cfg.HotNames == 0 {
		cfg.HotNames = def.HotNames
	}
	if cfg.BlobBytes == 0 {
		cfg.BlobBytes = def.BlobBytes
	}
	if cfg.MeanThink == 0 {
		cfg.MeanThink = def.MeanThink
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = def.Horizon
	}
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return cfg
}

// worldConfig expands scenario i into its geo world. Scenario seeds are
// decorrelated by a salt coprime to the per-region salt inside geo, so no
// two regions across scenarios share a stream root.
func (cfg Fig8GeoConfig) worldConfig(scenario int) geo.Config {
	gc := geo.Config{
		Seed:             cfg.Seed + uint64(scenario)*271_828_181,
		Regions:          cfg.Regions,
		Domains:          cfg.Domains,
		Window:           cfg.Window,
		Horizon:          cfg.Horizon,
		ClientsPerRegion: cfg.ClientsPerRegion,
		MeanThink:        cfg.MeanThink,
		HotNames:         cfg.HotNames,
		BlobBytes:        cfg.BlobBytes,
		RecordReads:      true,
	}
	switch scenario {
	case 0: // replication lag under a flash crowd, eventual reads
		gc.LagSamples = true
		gc.FlashRegion = 1
		gc.FlashStart = cfg.Horizon / 3
		gc.FlashDur = cfg.Horizon / 6
	case 1: // read-your-writes
		gc.ReadMode = geo.ReadPrimary
	case 2: // primary region kill + repair
		gc.KillAt = 2 * cfg.Horizon / 5
		gc.RepairAt = 3 * cfg.Horizon / 5
	}
	return gc
}

// Fig8GeoResult carries the three scenario reports.
type Fig8GeoResult struct {
	Regions int
	Lag     *geo.Report // eventual reads + flash crowd
	RYW     *geo.Report // read-your-writes mode
	Kill    *geo.Report // primary region kill + repair
}

// RunFig8Geo executes the three scenario worlds, sharded over the cell
// scheduler; each world additionally shards its regions over cfg.Domains.
func RunFig8Geo(cfg Fig8GeoConfig) *Fig8GeoResult {
	cfg = cfg.withDefaults()
	pool := sched.New(cfg.Workers)
	reports := sched.Map(pool, 3, func(i int) *geo.Report {
		w := geo.NewWorld(cfg.worldConfig(i))
		w.Run()
		if cfg.DomainStats != nil {
			cfg.DomainStats.Add(w.Stats())
		}
		return w.Report()
	})
	return &Fig8GeoResult{
		Regions: cfg.Regions,
		Lag:     reports[0],
		RYW:     reports[1],
		Kill:    reports[2],
	}
}

// Anchors reports the geo design points. Paper values are nominal model
// targets calibrated at validation scale, not published measurements — the
// paper stops at one datacenter.
func (r *Fig8GeoResult) Anchors() []Anchor {
	pct := func(n, d int64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	return []Anchor{
		{"geo replication lag p50", "s", 0.09, r.Lag.LagP50Sec},
		{"geo replication lag p95", "s", 0.13, r.Lag.LagP95Sec},
		{"stale read fraction (eventual)", "%", 4.5, 100 * r.Lag.StaleFrac},
		{"stale read fraction (read-your-writes)", "%", 0, 100 * r.RYW.StaleFrac},
		{"cross-region read share (read-your-writes)", "%", 75, pct(r.RYW.RemoteReads, r.RYW.ReadsOK)},
		{"region-kill failover RTO", "s", 3.2, r.Kill.RTOSec},
		{"region-kill RPO exposure", "s", 0.05, r.Kill.RPOSec},
		{"acked writes lost at region kill", "writes", 1, float64(r.Kill.LostWrites)},
		{"failover routing flaps (kill+repair)", "flaps", 2, float64(r.Kill.KilledFlaps)},
	}
}
