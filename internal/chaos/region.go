// Region-scale fault injection: the marquee chaos scenario is killing a
// whole simulated Azure region — every host crashes at once and every
// storage endpoint goes dark — and later restoring it, so geo experiments
// can measure failover RTO (first successful read served elsewhere) and
// RPO (acknowledged writes that had not replicated out).
package chaos

import (
	"azureobs/internal/azure"
	"azureobs/internal/storage/reqpath"
)

// KillRegion takes a whole region down in one instant: every host is
// crashed (failing resident VMs and firing the fabric's host-down hooks)
// and all four storage services switch to blackout, so in-flight and future
// requests fail fast instead of hanging. It returns the number of VMs that
// died with the region. Must run in the region's engine context.
func KillRegion(c *azure.Cloud) int {
	dead := 0
	for _, h := range c.DC.Hosts() {
		dead += len(c.DC.CrashHost(h))
	}
	for _, svc := range azure.StorageServices {
		c.StoragePipeline(svc).SetOutage(reqpath.OutageBlackout)
	}
	return dead
}

// RestoreRegion repairs a region killed by KillRegion: hosts reboot and the
// storage outages lift. Durable storage state (blob metadata, tables,
// queues) is modeled as surviving the outage — the 2009 Azure storage
// stack persisted through compute loss — so only in-flight work and
// unreplicated geo state are lost. Must run in the region's engine context.
func RestoreRegion(c *azure.Cloud) {
	for _, h := range c.DC.Hosts() {
		c.DC.RebootHost(h)
	}
	for _, svc := range azure.StorageServices {
		c.StoragePipeline(svc).SetOutage(reqpath.OutageNone)
	}
}
