package chaos

import (
	"fmt"
	"io"
	"sort"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/storage/reqpath"
)

func reqpathMode(class Class) reqpath.Outage {
	if class == ClassStorageBlackout {
		return reqpath.OutageBlackout
	}
	return reqpath.OutageBrownout
}

// Report is a campaign's accumulating failure taxonomy, in the shape of the
// paper's §5 study: incident counts by class, mean time to repair, VMs
// killed, and the work the campaign lost to crashes vs. later recovered
// through re-execution.
type Report struct {
	injected map[Class]uint64
	repaired map[Class]uint64
	mttr     map[Class]*metrics.Summary

	// VMsKilled counts VM instances failed by host crashes.
	VMsKilled uint64

	// WorkLost is task execution time thrown away when a crash killed the
	// worker mid-task; WorkRecovered is the portion of those tasks' nominal
	// work that later completed on another attempt. Both are credited by the
	// campaign layer (modis), which is what observes executions.
	WorkLost      time.Duration
	WorkRecovered time.Duration

	// Violations is the invariant-harness violation count, filled in by the
	// campaign driver after the run from sim.Invariants.
	Violations uint64
}

// NewReport returns an empty report, ready to Merge per-shard reports into.
func NewReport() *Report { return newReport() }

func newReport() *Report {
	return &Report{
		injected: make(map[Class]uint64),
		repaired: make(map[Class]uint64),
		mttr:     make(map[Class]*metrics.Summary),
	}
}

func (r *Report) inject(c Class, repair time.Duration) {
	r.injected[c]++
	s := r.mttr[c]
	if s == nil {
		s = &metrics.Summary{}
		r.mttr[c] = s
	}
	s.AddDuration(repair)
}

func (r *Report) repairedInc(c Class) { r.repaired[c]++ }

// Injected returns the number of incidents injected for a class.
func (r *Report) Injected(c Class) uint64 { return r.injected[c] }

// Repaired returns the number of incidents whose repair completed inside the
// campaign horizon. Injected minus repaired is the number of incidents still
// open at the end of the run.
func (r *Report) Repaired(c Class) uint64 { return r.repaired[c] }

// TotalInjected sums incidents across every class.
func (r *Report) TotalInjected() uint64 {
	var n uint64
	for _, c := range Classes {
		n += r.injected[c]
	}
	return n
}

// MTTR returns the mean time to repair for a class (the mean of the repair
// delays paired with its injections), or 0 with no incidents.
func (r *Report) MTTR(c Class) time.Duration {
	s := r.mttr[c]
	if s == nil || s.N() == 0 {
		return 0
	}
	return time.Duration(s.Mean() * float64(time.Second))
}

// AddWorkLost credits crash-lost execution time (campaign layer).
func (r *Report) AddWorkLost(d time.Duration) { r.WorkLost += d }

// AddWorkRecovered credits re-executed work that a crash had interrupted
// (campaign layer).
func (r *Report) AddWorkRecovered(d time.Duration) { r.WorkRecovered += d }

// Merge folds another report into this one — the chaosreport experiment runs
// independent scenario cells and merges per-scenario taxonomies for its
// combined anchors.
func (r *Report) Merge(o *Report) {
	for c, n := range o.injected {
		r.injected[c] += n
	}
	for c, n := range o.repaired {
		r.repaired[c] += n
	}
	keys := make([]Class, 0, len(o.mttr))
	for c := range o.mttr {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, c := range keys {
		s := r.mttr[c]
		if s == nil {
			s = &metrics.Summary{}
			r.mttr[c] = s
		}
		s.Merge(o.mttr[c])
	}
	r.VMsKilled += o.VMsKilled
	r.WorkLost += o.WorkLost
	r.WorkRecovered += o.WorkRecovered
	r.Violations += o.Violations
}

// Render writes the §5-style taxonomy table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%-20s %9s %9s %12s\n", "failure class", "injected", "repaired", "mean TTR")
	for _, c := range Classes {
		if r.injected[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-20s %9d %9d %12s\n",
			c, r.injected[c], r.repaired[c], r.MTTR(c).Round(time.Second))
	}
	fmt.Fprintf(w, "\nVMs killed by crashes: %d\n", r.VMsKilled)
	fmt.Fprintf(w, "work lost to crashes:  %s\n", r.WorkLost.Round(time.Second))
	fmt.Fprintf(w, "work recovered:        %s\n", r.WorkRecovered.Round(time.Second))
	fmt.Fprintf(w, "invariant violations:  %d\n", r.Violations)
}
