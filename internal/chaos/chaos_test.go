package chaos

import (
	"testing"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/netsim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
)

func testCloud(seed uint64) *azure.Cloud {
	cfg := azure.Config{Seed: seed}
	cfg.Fabric = fabric.Config{Hosts: 16, HostsPerRack: 4}
	return azure.NewCloud(cfg)
}

func newEngine(c *azure.Cloud, cfg Config) *Engine {
	return New(c, simrand.New(1).Fork("chaos"), cfg)
}

// A scripted crash fails the host's starting/ready residents, records the
// incident, and the paired reboot brings the host back up.
func TestScriptedCrashAndReboot(t *testing.T) {
	c := testCloud(7)
	vms := c.Controller.ReadyFleet(8, fabric.Worker, fabric.Small)
	target := vms[0].Host
	resident := 0
	for _, vm := range vms {
		if vm.Host == target {
			resident++
		}
	}
	e := newEngine(c, Config{Script: []ScriptEvent{
		{At: time.Hour, Class: ClassHostCrash, Host: target.ID, Repair: 30 * time.Minute},
	}})
	e.Start()

	c.Engine.RunUntil(80 * time.Minute)
	if !target.Down() {
		t.Fatal("host not down after scripted crash")
	}
	if vms[0].State() != fabric.VMFailed {
		t.Fatalf("resident VM state = %v, want failed", vms[0].State())
	}
	if got := e.Report().VMsKilled; got != uint64(resident) {
		t.Fatalf("VMsKilled = %d, want %d", got, resident)
	}
	if c.DC.Crashes() != 1 {
		t.Fatalf("datacenter crash count = %d", c.DC.Crashes())
	}

	c.Engine.RunUntil(2 * time.Hour)
	if target.Down() {
		t.Fatal("host still down after repair window")
	}
	if e.Report().Injected(ClassHostCrash) != 1 || e.Report().Repaired(ClassHostCrash) != 1 {
		t.Fatalf("crash books: injected=%d repaired=%d",
			e.Report().Injected(ClassHostCrash), e.Report().Repaired(ClassHostCrash))
	}
	if got, want := e.Report().MTTR(ClassHostCrash), 30*time.Minute; got != want {
		t.Fatalf("MTTR = %v, want %v", got, want)
	}
}

// A scripted degradation dilates the host for exactly the repair window.
func TestScriptedDegrade(t *testing.T) {
	c := testCloud(8)
	h := c.DC.Hosts()[3]
	e := newEngine(c, Config{Script: []ScriptEvent{
		{At: time.Hour, Class: ClassHostDegrade, Host: h.ID, Factor: 5, Repair: time.Hour},
	}})
	e.Start()

	c.Engine.RunUntil(90 * time.Minute)
	if got := h.Slowdown(); got != 5 {
		t.Fatalf("slowdown = %v, want 5", got)
	}
	c.Engine.RunUntil(3 * time.Hour)
	if got := h.Slowdown(); got != 1 {
		t.Fatalf("slowdown after repair = %v, want 1", got)
	}
}

// A partition squeezes every NIC in the rack to PartitionEps and restores the
// exact prior capacities on repair; overlapping partitions of the same rack
// collapse into one.
func TestPartitionRestoresCapacity(t *testing.T) {
	c := testCloud(9)
	rack := 1
	hosts := c.DC.RackHosts(rack)
	saved := make([]netsim.Bandwidth, len(hosts))
	for i, h := range hosts {
		saved[i] = h.NIC.Capacity()
	}
	e := newEngine(c, Config{Script: []ScriptEvent{
		{At: time.Hour, Class: ClassRackPartition, Rack: rack, Repair: time.Hour},
		{At: 90 * time.Minute, Class: ClassRackPartition, Rack: rack, Repair: time.Hour},
	}})
	e.Start()

	c.Engine.RunUntil(70 * time.Minute)
	for _, h := range hosts {
		if h.NIC.Capacity() != PartitionEps {
			t.Fatalf("NIC capacity %v during partition, want %v", h.NIC.Capacity(), PartitionEps)
		}
	}
	c.Engine.RunUntil(4 * time.Hour)
	for i, h := range hosts {
		if h.NIC.Capacity() != saved[i] {
			t.Fatalf("NIC capacity %v after repair, want %v", h.NIC.Capacity(), saved[i])
		}
	}
	if e.Report().Injected(ClassRackPartition) != 2 || e.Report().Repaired(ClassRackPartition) != 2 {
		t.Fatalf("partition books: injected=%d repaired=%d",
			e.Report().Injected(ClassRackPartition), e.Report().Repaired(ClassRackPartition))
	}
}

// A storage blackout flips the service pipeline's outage mode for the window.
func TestScriptedServiceOutage(t *testing.T) {
	c := testCloud(10)
	e := newEngine(c, Config{Script: []ScriptEvent{
		{At: time.Hour, Class: ClassStorageBlackout, Service: "queue", Repair: 20 * time.Minute},
		{At: 2 * time.Hour, Class: ClassStorageBrownout, Service: "blob", Repair: 20 * time.Minute},
	}})
	e.Start()

	c.Engine.RunUntil(70 * time.Minute)
	if got := c.Queue.Pipeline().Outage(); got != reqpath.OutageBlackout {
		t.Fatalf("queue outage mode = %v, want blackout", got)
	}
	if got := c.Blob.Pipeline().Outage(); got != reqpath.OutageNone {
		t.Fatalf("blob outage mode = %v before its window", got)
	}
	c.Engine.RunUntil(130 * time.Minute)
	if got := c.Queue.Pipeline().Outage(); got != reqpath.OutageNone {
		t.Fatalf("queue outage mode = %v after repair", got)
	}
	if got := c.Blob.Pipeline().Outage(); got != reqpath.OutageBrownout {
		t.Fatalf("blob outage mode = %v, want brownout", got)
	}
	c.Engine.RunUntil(4 * time.Hour)
	if got := c.Blob.Pipeline().Outage(); got != reqpath.OutageNone {
		t.Fatalf("blob outage mode = %v at end", got)
	}
}

// Two identical stochastic campaigns produce identical taxonomies — the
// determinism contract behind the workers∈{1,2,4} experiment sharding.
func TestStochasticDeterminism(t *testing.T) {
	runOnce := func() *Report {
		c := testCloud(11)
		cfg := DefaultConfig()
		cfg.HostCrash.MeanInterarrival = 6 * time.Hour
		cfg.RackPartition.MeanInterarrival = 12 * time.Hour
		cfg.StorageBlackout.MeanInterarrival = 12 * time.Hour
		cfg.StorageBrownout.MeanInterarrival = 8 * time.Hour
		cfg.HostDegrade.MeanInterarrival = 10 * time.Hour
		cfg.Horizon = 5 * 24 * time.Hour
		e := newEngine(c, cfg)
		e.Start()
		c.Engine.RunUntil(6 * 24 * time.Hour)
		return e.Report()
	}
	a, b := runOnce(), runOnce()
	if a.TotalInjected() == 0 {
		t.Fatal("no incidents injected in 5 days of accelerated chaos")
	}
	for _, cl := range Classes {
		if a.Injected(cl) != b.Injected(cl) || a.Repaired(cl) != b.Repaired(cl) {
			t.Fatalf("%s: run A %d/%d, run B %d/%d", cl,
				a.Injected(cl), a.Repaired(cl), b.Injected(cl), b.Repaired(cl))
		}
		if a.MTTR(cl) != b.MTTR(cl) {
			t.Fatalf("%s MTTR: %v vs %v", cl, a.MTTR(cl), b.MTTR(cl))
		}
	}
	if a.VMsKilled != b.VMsKilled {
		t.Fatalf("VMsKilled: %d vs %d", a.VMsKilled, b.VMsKilled)
	}
}

// Every stochastic process repairs what it injects once the horizon passes
// and repairs drain; the horizon stops injection.
func TestHorizonAndRepairDrain(t *testing.T) {
	c := testCloud(12)
	cfg := DefaultConfig()
	cfg.HostCrash.MeanInterarrival = 4 * time.Hour
	cfg.Horizon = 3 * 24 * time.Hour
	e := newEngine(c, cfg)
	e.Start()
	// Run far past the horizon: all repairs (bounded by the longest window)
	// must have fired.
	c.Engine.RunUntil(5 * 24 * time.Hour)
	for _, cl := range Classes {
		if e.Report().Injected(cl) != e.Report().Repaired(cl) {
			t.Fatalf("%s: %d injected but %d repaired after drain",
				cl, e.Report().Injected(cl), e.Report().Repaired(cl))
		}
	}
	if e.Report().Injected(ClassHostCrash) == 0 {
		t.Fatal("no crashes in 3 days at 4 h MTBF")
	}
}

// Merge folds counts, MTTR samples and the scalar tallies.
func TestReportMerge(t *testing.T) {
	a, b := newReport(), newReport()
	a.inject(ClassHostCrash, 10*time.Minute)
	b.inject(ClassHostCrash, 30*time.Minute)
	b.inject(ClassRackPartition, time.Hour)
	b.repairedInc(ClassRackPartition)
	a.VMsKilled, b.VMsKilled = 2, 3
	a.Merge(b)
	if a.Injected(ClassHostCrash) != 2 || a.Injected(ClassRackPartition) != 1 {
		t.Fatalf("merged counts wrong: %d, %d",
			a.Injected(ClassHostCrash), a.Injected(ClassRackPartition))
	}
	if got, want := a.MTTR(ClassHostCrash), 20*time.Minute; got != want {
		t.Fatalf("merged MTTR = %v, want %v", got, want)
	}
	if a.VMsKilled != 5 {
		t.Fatalf("merged VMsKilled = %d", a.VMsKilled)
	}
}
