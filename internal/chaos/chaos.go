// Package chaos is a deterministic fault-campaign engine layered over the
// fabric, network and storage simulations. It injects the failure classes of
// the paper's §5 production study — host crashes (killing resident VMs and
// forcing fabric re-acquisition), transient host degradation windows,
// rack-level network partitions, and storage-service brownouts/blackouts —
// as scheduled or stochastic events, pairs each injection with a repair
// timer, and accumulates a per-campaign Report reproducing the §5 failure
// taxonomy (counts by class, MTTR, work lost vs. recovered).
//
// Determinism: every fault class draws from its own named stream forked as
// "chaos/<class>" from the campaign root. Forking is label-based, so merely
// enabling chaos — or enabling one class — never perturbs the draws of any
// other stream in the simulation: all chaos-free traces stay bit-identical
// (pinned by the golden-trace tests in internal/core).
package chaos

import (
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
)

// Class names a §5 failure class.
type Class string

// Failure classes, matching the taxonomy of the paper's eight-month
// ModisAzure failure study.
const (
	ClassHostCrash       Class = "host crash"
	ClassHostDegrade     Class = "degraded host"
	ClassRackPartition   Class = "rack partition"
	ClassStorageBrownout Class = "storage brownout"
	ClassStorageBlackout Class = "storage blackout"
)

// Classes lists the failure classes in canonical report order.
var Classes = []Class{
	ClassHostCrash, ClassHostDegrade, ClassRackPartition,
	ClassStorageBrownout, ClassStorageBlackout,
}

// PartitionEps is the residual link capacity during a rack partition. The
// max-min solver requires strictly positive capacities, so a partition
// squeezes NICs to a crawl (1 KB/s — a 4 KB queue message takes minutes)
// rather than literally zero.
const PartitionEps = 1 * netsim.KBps

// Process is one stochastic fault process: incidents arrive Poisson with the
// given mean gap; each incident is repaired after a uniformly drawn delay.
// A zero MeanInterarrival disables the process (and its stream draws
// nothing).
type Process struct {
	MeanInterarrival time.Duration
	RepairLo         time.Duration
	RepairHi         time.Duration
}

// Enabled reports whether the process injects anything.
func (p Process) Enabled() bool { return p.MeanInterarrival > 0 }

func (p Process) repair(rng *simrand.RNG) time.Duration {
	if p.RepairHi <= p.RepairLo {
		return p.RepairLo
	}
	return simrand.Duration(simrand.Uniform{
		Lo: p.RepairLo.Seconds(), Hi: p.RepairHi.Seconds()}, rng)
}

// ScriptEvent is one deterministic scheduled injection — regression tests
// use scripts to place a fault at an exact instant.
type ScriptEvent struct {
	At    time.Duration
	Class Class
	// Host targets ClassHostCrash / ClassHostDegrade.
	Host int
	// Rack targets ClassRackPartition.
	Rack int
	// Service targets the storage classes ("blob", "table", "queue", "sql").
	Service string
	// Repair is the outage duration; defaults to 30 minutes.
	Repair time.Duration
	// Factor is the ClassHostDegrade slowdown; defaults to 5.
	Factor float64
}

// Config is a fault-campaign plan: one stochastic process per class plus an
// optional script.
type Config struct {
	HostCrash       Process
	HostDegrade     Process
	RackPartition   Process
	StorageBlackout Process
	StorageBrownout Process

	// DegradeLo/DegradeHi bound the slowdown factor of stochastic
	// degradation windows; defaults 4–6.5 (the fabric episode calibration).
	DegradeLo, DegradeHi float64

	// Services are the storage services eligible for outages; defaults to
	// all four.
	Services []string

	// Script is the deterministic injection schedule, run alongside any
	// stochastic processes.
	Script []ScriptEvent

	// Horizon stops stochastic injection (repairs still run); zero means
	// no limit.
	Horizon time.Duration
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.HostCrash.Enabled() || c.HostDegrade.Enabled() ||
		c.RackPartition.Enabled() || c.StorageBlackout.Enabled() ||
		c.StorageBrownout.Enabled() || len(c.Script) > 0
}

// DefaultConfig returns a §5-shaped campaign plan: crashes every couple of
// days somewhere in the fleet, rarer rack partitions and storage outages,
// repair times from minutes to hours. Rates are per-datacenter, calibrated
// so a multi-week ModisAzure campaign sees a handful of incidents per class.
func DefaultConfig() Config {
	return Config{
		HostCrash:       Process{MeanInterarrival: 40 * time.Hour, RepairLo: 15 * time.Minute, RepairHi: 2 * time.Hour},
		HostDegrade:     Process{MeanInterarrival: 80 * time.Hour, RepairLo: 2 * time.Hour, RepairHi: 12 * time.Hour},
		RackPartition:   Process{MeanInterarrival: 120 * time.Hour, RepairLo: 5 * time.Minute, RepairHi: 45 * time.Minute},
		StorageBlackout: Process{MeanInterarrival: 160 * time.Hour, RepairLo: 2 * time.Minute, RepairHi: 20 * time.Minute},
		StorageBrownout: Process{MeanInterarrival: 60 * time.Hour, RepairLo: 10 * time.Minute, RepairHi: 90 * time.Minute},
		DegradeLo:       4.0,
		DegradeHi:       6.5,
	}
}

// Engine runs one fault campaign against a cloud.
type Engine struct {
	cloud  *azure.Cloud
	cfg    Config
	rng    *simrand.RNG
	report *Report

	partitioned map[int][]netsim.Bandwidth // rack → saved NIC capacities
	inOutage    map[string]bool            // service → outage active
}

// New builds a campaign engine over the cloud. rng should be a stream forked
// for chaos alone (e.g. root.Fork("chaos")); each fault class forks its own
// "chaos/<class>" sub-stream from it.
func New(cloud *azure.Cloud, rng *simrand.RNG, cfg Config) *Engine {
	if cfg.DegradeLo < 1 {
		cfg.DegradeLo = 4.0
	}
	if cfg.DegradeHi < cfg.DegradeLo {
		cfg.DegradeHi = cfg.DegradeLo + 2.5
	}
	if len(cfg.Services) == 0 {
		cfg.Services = azure.StorageServices
	}
	return &Engine{
		cloud:       cloud,
		cfg:         cfg,
		rng:         rng,
		report:      newReport(),
		partitioned: make(map[int][]netsim.Bandwidth),
		inOutage:    make(map[string]bool),
	}
}

// Report returns the campaign's accumulating failure taxonomy.
func (e *Engine) Report() *Report { return e.report }

// Start spawns the injection daemons and schedules any scripted events. Call
// once, before (or at) time zero of the campaign run.
func (e *Engine) Start() {
	eng := e.cloud.Engine
	if e.cfg.HostCrash.Enabled() {
		e.spawnProcess("chaos/crash", e.cfg.HostCrash, e.injectCrash)
	}
	if e.cfg.HostDegrade.Enabled() {
		e.spawnProcess("chaos/degrade", e.cfg.HostDegrade, e.injectDegrade)
	}
	if e.cfg.RackPartition.Enabled() {
		e.spawnProcess("chaos/partition", e.cfg.RackPartition, e.injectPartition)
	}
	if e.cfg.StorageBlackout.Enabled() {
		e.spawnProcess("chaos/blackout", e.cfg.StorageBlackout, e.injectBlackout)
	}
	if e.cfg.StorageBrownout.Enabled() {
		e.spawnProcess("chaos/brownout", e.cfg.StorageBrownout, e.injectBrownout)
	}
	if len(e.cfg.Script) > 0 {
		srng := e.rng.Fork("chaos/script")
		for _, ev := range e.cfg.Script {
			ev := ev
			eng.ScheduleDaemon(ev.At, func() { e.injectScripted(ev, srng) })
		}
	}
}

// spawnProcess runs one stochastic fault process as a daemon: Poisson gaps
// on the class's own stream, one injection per arrival.
func (e *Engine) spawnProcess(label string, proc Process, inject func(rng *simrand.RNG, repair time.Duration)) {
	rng := e.rng.Fork(label)
	e.cloud.Engine.SpawnDaemon(label, func(p *sim.Proc) {
		for {
			gap := simrand.Duration(simrand.Exponential{
				Rate: 1 / proc.MeanInterarrival.Seconds()}, rng)
			p.Sleep(gap)
			if e.cfg.Horizon > 0 && p.Now() > e.cfg.Horizon {
				return
			}
			inject(rng, proc.repair(rng))
		}
	})
}

// pickHost draws a host index and linearly probes to the next live host, so
// the draw count per injection is constant regardless of fleet health.
func (e *Engine) pickHost(rng *simrand.RNG) *fabric.Host {
	hosts := e.cloud.DC.Hosts()
	idx := rng.IntN(len(hosts))
	for i := 0; i < len(hosts); i++ {
		h := hosts[(idx+i)%len(hosts)]
		if !h.Down() {
			return h
		}
	}
	return nil
}

func (e *Engine) injectCrash(rng *simrand.RNG, repair time.Duration) {
	h := e.pickHost(rng)
	if h == nil {
		return // whole fleet down; nothing left to crash
	}
	e.crashHost(h, repair)
}

func (e *Engine) crashHost(h *fabric.Host, repair time.Duration) {
	dc := e.cloud.DC
	failed := dc.CrashHost(h)
	e.report.inject(ClassHostCrash, repair)
	e.report.VMsKilled += uint64(len(failed))
	e.cloud.Engine.AfterDaemon(repair, func() {
		dc.RebootHost(h)
		e.report.repairedInc(ClassHostCrash)
	})
}

func (e *Engine) injectDegrade(rng *simrand.RNG, repair time.Duration) {
	h := e.pickHost(rng)
	factor := simrand.Uniform{Lo: e.cfg.DegradeLo, Hi: e.cfg.DegradeHi}.Sample(rng)
	if h == nil {
		return // draws above keep the stream aligned even when skipping
	}
	e.degradeHost(h, factor, repair)
}

func (e *Engine) degradeHost(h *fabric.Host, factor float64, repair time.Duration) {
	dc := e.cloud.DC
	dc.DegradeHost(h, factor)
	e.report.inject(ClassHostDegrade, repair)
	e.cloud.Engine.AfterDaemon(repair, func() {
		dc.RestoreHost(h, factor)
		e.report.repairedInc(ClassHostDegrade)
	})
}

func (e *Engine) injectPartition(rng *simrand.RNG, repair time.Duration) {
	rack := rng.IntN(e.cloud.DC.Racks())
	e.partitionRack(rack, repair)
}

// partitionRack squeezes every NIC in the rack to PartitionEps and restores
// the saved capacities on repair. An already-partitioned rack is left alone
// (the incident is still counted as injected and immediately repaired, so
// the books stay balanced).
func (e *Engine) partitionRack(rack int, repair time.Duration) {
	dc := e.cloud.DC
	e.report.inject(ClassRackPartition, repair)
	if e.partitioned[rack] != nil {
		e.report.repairedInc(ClassRackPartition)
		return
	}
	hosts := dc.RackHosts(rack)
	if len(hosts) == 0 {
		e.report.repairedInc(ClassRackPartition)
		return
	}
	saved := make([]netsim.Bandwidth, len(hosts))
	for i, h := range hosts {
		saved[i] = h.NIC.Capacity()
		dc.Net().SetLinkCapacity(h.NIC, PartitionEps)
	}
	e.partitioned[rack] = saved
	e.cloud.Engine.AfterDaemon(repair, func() {
		for i, h := range hosts {
			dc.Net().SetLinkCapacity(h.NIC, saved[i])
		}
		delete(e.partitioned, rack)
		e.report.repairedInc(ClassRackPartition)
	})
}

func (e *Engine) injectBlackout(rng *simrand.RNG, repair time.Duration) {
	svc := e.cfg.Services[rng.IntN(len(e.cfg.Services))]
	e.serviceOutage(svc, ClassStorageBlackout, repair)
}

func (e *Engine) injectBrownout(rng *simrand.RNG, repair time.Duration) {
	svc := e.cfg.Services[rng.IntN(len(e.cfg.Services))]
	e.serviceOutage(svc, ClassStorageBrownout, repair)
}

// serviceOutage puts one storage service into brownout or blackout until the
// repair fires. Overlapping outages on the same service collapse: the second
// incident is counted and instantly repaired.
func (e *Engine) serviceOutage(svc string, class Class, repair time.Duration) {
	e.report.inject(class, repair)
	if e.inOutage[svc] {
		e.report.repairedInc(class)
		return
	}
	mode := reqpathMode(class)
	pl := e.cloud.StoragePipeline(svc)
	pl.SetOutage(mode)
	e.inOutage[svc] = true
	e.cloud.Engine.AfterDaemon(repair, func() {
		pl.SetOutage(reqpath.OutageNone)
		delete(e.inOutage, svc)
		e.report.repairedInc(class)
	})
}

func (e *Engine) injectScripted(ev ScriptEvent, rng *simrand.RNG) {
	repair := ev.Repair
	if repair <= 0 {
		repair = 30 * time.Minute
	}
	switch ev.Class {
	case ClassHostCrash:
		h := e.hostByID(ev.Host)
		if h != nil && !h.Down() {
			e.crashHost(h, repair)
		}
	case ClassHostDegrade:
		factor := ev.Factor
		if factor <= 1 {
			factor = 5.0
		}
		if h := e.hostByID(ev.Host); h != nil {
			e.degradeHost(h, factor, repair)
		}
	case ClassRackPartition:
		e.partitionRack(ev.Rack, repair)
	case ClassStorageBlackout:
		e.serviceOutage(ev.Service, ClassStorageBlackout, repair)
	case ClassStorageBrownout:
		e.serviceOutage(ev.Service, ClassStorageBrownout, repair)
	default:
		panic(fmt.Sprintf("chaos: unknown scripted class %q", ev.Class))
	}
	_ = rng // scripted events draw nothing today; the stream is reserved
}

func (e *Engine) hostByID(id int) *fabric.Host {
	hosts := e.cloud.DC.Hosts()
	if id < 0 || id >= len(hosts) {
		return nil
	}
	return hosts[id]
}
