// Package wire exposes the simulated cloud over the 2009-era Windows Azure
// REST surface: blob PUT/GET/HEAD/DELETE, table entity CRUD plus partition
// query, queue put/peek/get/delete with visibility timeouts, and a minimal
// Service Management endpoint whose lifecycle calls return 202 with a
// pollable operation — the long-running-operation shape Section 4.1's test
// program drove.
//
// The facade is a boundary adapter, not a second implementation: every
// request body routes to the same storage-service code the in-process SDK
// uses, via the flat (actor) request twins, and every storage error renders
// through the single storerr.Class table into the classic XML envelope.
// HTTP arrives on arbitrary goroutines; a Gate (normally sim.RealTime)
// serialises each request onto the engine, where it runs as a flat
// continuation on a pooled connection actor — no goroutine per request
// enters the kernel, and a recorded arrival order replays bit-identically
// (see Replay).
package wire

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/sim"
	"azureobs/internal/storage/blobsvc"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// Gate serialises closures onto the engine goroutine. Do runs fn (and, for
// free-run gates, drains the virtual work it started) and reports false if
// the gate is closed. sim.RealTime implements it.
type Gate interface {
	Do(fn func()) bool
}

// InlineGate is the test/replay gate: Do runs fn on the calling goroutine
// and, when drain is set, drains the engine afterwards. The caller owns the
// single-threading.
type InlineGate struct {
	eng   *sim.Engine
	drain bool
}

// NewInlineGate builds an inline gate; drain selects whether each Do runs
// the engine to quiescence (false lets tests observe in-progress state).
func NewInlineGate(eng *sim.Engine, drain bool) *InlineGate {
	return &InlineGate{eng: eng, drain: drain}
}

// Do implements Gate.
func (g *InlineGate) Do(fn func()) bool {
	fn()
	if g.drain {
		g.eng.Run()
	}
	return true
}

// Drain runs the engine to quiescence — for drain=false gates that want to
// advance explicitly.
func (g *InlineGate) Drain() { g.eng.Run() }

// opKind enumerates the routed operations.
type opKind int

const (
	opInvalid opKind = iota
	opContainerCreate
	opBlobPut
	opBlobGet
	opBlobHead
	opBlobDelete
	opTableCreate
	opEntityInsert
	opEntityGet
	opEntityUpdate
	opEntityDelete
	opPartitionQuery
	opQueueCreate
	opMsgPut
	opMsgPeek
	opMsgGet
	opMsgDelete
	opMgmtDeploy
	opMgmtAdd
	opMgmtSuspend
	opMgmtDelete
	opFaultsSet
)

// wireOp is one parsed request in canonical form: everything is derived
// from (method, uri, size, body), which is exactly what the recorder
// persists, so a replayed arrival dispatches identically to the live one.
type wireOp struct {
	kind   opKind
	method string
	uri    string // canonical request URI (path + folded query)
	size   int64
	body   string

	// blob
	container, blob string
	overwrite       bool
	// table
	table, pk, rk string
	// queue
	queue      string
	receipt    string
	visibility time.Duration
	// management
	spec  deploySpec
	count int
	// faults
	service string
	faults  reqpath.FaultConfig
	reset   bool

	invalid string // non-empty: reject with 400 and this message
}

// parseOp builds the canonical op. It never touches the engine.
func parseOp(method, uri string, size int64, body string) *wireOp {
	op := &wireOp{kind: opInvalid, method: method, uri: uri, size: size, body: body, overwrite: true}
	u, err := url.ParseRequestURI(uri)
	if err != nil {
		op.invalid = "unparseable request URI"
		return op
	}
	segs := splitPath(u.Path)
	q := u.Query()
	if s := q.Get("size"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n >= 0 {
			op.size = n
		}
	}
	if op.size == 0 {
		op.size = int64(len(body))
	}
	if q.Get("ifabsent") == "1" {
		op.overwrite = false
	}
	if len(segs) == 0 {
		op.invalid = "empty path"
		return op
	}
	switch segs[0] {
	case "table":
		parseTableOp(op, method, segs, q)
	case "queue":
		parseQueueOp(op, method, segs, q)
	case "management":
		parseMgmtOp(op, method, segs, q)
	case "control":
		parseControlOp(op, method, segs, q)
	case "healthz", "operations":
		// Served directly by ServeHTTP; reaching the router is a mistake.
		op.invalid = "reserved path"
	default:
		parseBlobOp(op, method, segs)
	}
	return op
}

func splitPath(p string) []string {
	var segs []string
	for _, s := range strings.Split(p, "/") {
		if s != "" {
			segs = append(segs, s)
		}
	}
	return segs
}

func parseBlobOp(op *wireOp, method string, segs []string) {
	switch {
	case len(segs) == 1 && method == "PUT":
		op.kind, op.container = opContainerCreate, segs[0]
	case len(segs) == 2:
		op.container, op.blob = segs[0], segs[1]
		switch method {
		case "PUT":
			op.kind = opBlobPut
		case "GET":
			op.kind = opBlobGet
		case "HEAD":
			op.kind = opBlobHead
		case "DELETE":
			op.kind = opBlobDelete
		default:
			op.invalid = "unsupported blob method " + method
		}
	default:
		op.invalid = "blob path must be /<container>/<blob>"
	}
}

func parseTableOp(op *wireOp, method string, segs []string, q url.Values) {
	switch {
	case len(segs) == 2 && method == "PUT":
		op.kind, op.table = opTableCreate, segs[1]
	case len(segs) == 3 && method == "GET":
		op.kind, op.table, op.pk = opPartitionQuery, segs[1], segs[2]
	case len(segs) == 4:
		op.table, op.pk, op.rk = segs[1], segs[2], segs[3]
		switch method {
		case "POST":
			op.kind = opEntityInsert
		case "GET":
			op.kind = opEntityGet
		case "PUT":
			op.kind = opEntityUpdate
		case "DELETE":
			op.kind = opEntityDelete
		default:
			op.invalid = "unsupported entity method " + method
		}
	default:
		op.invalid = "table path must be /table/<name>[/<pk>[/<rk>]]"
	}
}

func parseQueueOp(op *wireOp, method string, segs []string, q url.Values) {
	switch {
	case len(segs) == 2 && method == "PUT":
		op.kind, op.queue = opQueueCreate, segs[1]
	case len(segs) == 3 && segs[2] == "messages":
		op.queue = segs[1]
		switch method {
		case "POST":
			op.kind = opMsgPut
		case "GET":
			if q.Get("peekonly") == "true" {
				op.kind = opMsgPeek
			} else {
				op.kind = opMsgGet
				if s := q.Get("visibilitytimeout"); s != "" {
					if sec, err := strconv.ParseFloat(s, 64); err == nil && sec > 0 {
						op.visibility = time.Duration(sec * float64(time.Second))
					}
				}
			}
		default:
			op.invalid = "unsupported messages method " + method
		}
	case len(segs) == 4 && segs[2] == "messages" && method == "DELETE":
		op.kind, op.queue, op.receipt = opMsgDelete, segs[1], segs[3]
	default:
		op.invalid = "queue path must be /queue/<name>/messages[/<popreceipt>]"
	}
}

func parseControlOp(op *wireOp, method string, segs []string, q url.Values) {
	if len(segs) == 2 && segs[1] == "faults" && method == "POST" {
		op.kind = opFaultsSet
		op.service = q.Get("service")
		op.reset = q.Get("reset") == "1"
		op.faults = reqpath.FaultConfig{
			ConnFailProb:    qFloat(q, "conn"),
			ServerBusyProb:  qFloat(q, "busy"),
			ReadFailProb:    qFloat(q, "read"),
			CorruptReadProb: qFloat(q, "corrupt"),
		}
		return
	}
	op.invalid = "unknown control path"
}

func qFloat(q url.Values, key string) float64 {
	v, err := strconv.ParseFloat(q.Get(key), 64)
	if err != nil {
		return 0
	}
	return v
}

// wireResult is the engine-side outcome of one request, rendered to HTTP
// (or hashed, in replay) by the caller. A non-nil err overrides everything
// else and renders as the XML error envelope via storerr.Class.
type wireResult struct {
	status   int
	location string // Location header (mgmt 202s)
	reqID    string // x-ms-request-id
	popRcpt  string // x-ms-popreceipt
	ctype    string
	body     string
	bodySize int64 // stream this many zero bytes instead of body
	err      error
}

// render flattens a result to the trace observables shared by HTTP serving
// and replay hashing.
func (r *wireResult) render() (status int, code string, size int64) {
	if r.err != nil {
		st, c, _ := errorParts(r.err)
		return st, c, 0
	}
	if r.bodySize > 0 {
		return r.status, "", r.bodySize
	}
	return r.status, "", int64(len(r.body))
}

// Facade routes canonical ops into the cloud. All fields except the
// operations table are engine-side state, touched only from Gate-serialised
// closures; the operations table is mutex-guarded so poll handlers can read
// it without entering the engine.
type Facade struct {
	cloud *azure.Cloud
	gate  Gate
	rec   *Recorder

	free     []*conn
	nextConn int

	mgmt *mgmtState
}

// New builds a facade over cloud, serialised by gate. A nil gate is valid
// for Replay, which drives start directly.
func New(cloud *azure.Cloud, gate Gate) *Facade {
	return &Facade{cloud: cloud, gate: gate, mgmt: newMgmtState()}
}

// Cloud returns the wrapped cloud.
func (f *Facade) Cloud() *azure.Cloud { return f.cloud }

// SetRecorder installs an arrival recorder (nil to remove). Engine-side;
// install before serving.
func (f *Facade) SetRecorder(rec *Recorder) { f.rec = rec }

// start dispatches one canonical op on the engine goroutine; deliver is
// called exactly once with the outcome, at the virtual instant the request
// completes.
func (f *Facade) start(op *wireOp, deliver func(wireResult)) {
	if f.rec != nil {
		f.rec.record(f.cloud.Engine.Now(), op)
	}
	if op.invalid != "" {
		deliver(wireResult{err: &wireError{status: 400, code: "InvalidUri", msg: op.invalid}})
		return
	}
	switch op.kind {
	case opContainerCreate:
		f.cloud.Blob.CreateContainer(op.container)
		deliver(wireResult{status: 201})
	case opTableCreate:
		f.cloud.Table.CreateTable(op.table)
		deliver(wireResult{status: 201})
	case opQueueCreate:
		f.cloud.Queue.CreateQueue(op.queue)
		deliver(wireResult{status: 201})
	case opFaultsSet:
		f.setFaults(op, deliver)
	case opMgmtDeploy, opMgmtAdd, opMgmtSuspend, opMgmtDelete:
		f.startMgmt(op, deliver)
	default:
		f.acquire().run(op, deliver)
	}
}

func (f *Facade) setFaults(op *wireOp, deliver func(wireResult)) {
	names := []string{op.service}
	if op.service == "" || op.service == "all" {
		names = azure.StorageServices
	}
	for _, name := range names {
		ok := false
		for _, s := range azure.StorageServices {
			if s == name {
				ok = true
			}
		}
		if !ok {
			deliver(wireResult{err: &wireError{status: 400, code: "InvalidInput", msg: "unknown service " + name}})
			return
		}
		pl := f.cloud.StoragePipeline(name)
		if op.reset {
			pl.ResetFaults()
		} else {
			pl.SetFaults(op.faults)
		}
	}
	deliver(wireResult{status: 204})
}

// acquire pops a pooled connection (LIFO, so reuse is deterministic under a
// recorded arrival order) or builds the next one.
func (f *Facade) acquire() *conn {
	if n := len(f.free); n > 0 {
		c := f.free[n-1]
		f.free = f.free[:n-1]
		return c
	}
	c := &conn{f: f, id: f.nextConn}
	f.nextConn++
	c.a.Bind(f.cloud.Engine, fmt.Sprintf("wire-conn-%d", c.id))
	c.dispatch = c.run2
	c.onBlobSize = c.blobSizeDone
	c.onBlobOK = c.blobOKDone
	c.onBlobErr = c.blobErrDone
	c.onEnt = c.entDone
	c.onEnts = c.entsDone
	c.onWrite = c.writeDone
	c.onAdd = c.addDone
	c.onPeek = c.peekDone
	c.onRecv = c.recvDone
	c.onQDel = c.qDelDone
	return c
}

func (f *Facade) release(c *conn) { f.free = append(f.free, c) }

// conn is one pooled wire connection: an actor plus lazily created flat
// request state against each storage service. The connection id keys the
// blob session's random streams, so the Nth connection ever created behaves
// identically across a recording and its replay.
type conn struct {
	f  *Facade
	id int
	a  sim.Actor

	sess   *blobsvc.Session
	tget   *tablesvc.GetFlat
	twrite *tablesvc.WriteFlat
	tquery *tablesvc.QueryFlat
	qreq   *queuesvc.ReqFlat

	op      *wireOp
	deliver func(wireResult)

	// cached continuations and completion callbacks (one-time allocations)
	dispatch   func()
	onBlobSize func(int64, error)
	onBlobOK   func(bool, error)
	onBlobErr  func(error)
	onEnt      func(*tablesvc.Entity, error)
	onEnts     func([]*tablesvc.Entity, error)
	onWrite    func(error)
	onAdd      func(uint64, error)
	onPeek     func(*queuesvc.Message, bool, error)
	onRecv     func(*queuesvc.Message, queuesvc.Receipt, bool, error)
	onQDel     func(error)
}

// The flat request objects are created on first use, keyed to this conn's
// cached callbacks, so a connection that only ever serves queues allocates
// no blob or table state.
func (c *conn) session() *blobsvc.Session {
	if c.sess == nil {
		c.sess = c.f.cloud.Blob.NewSession(c.id)
	}
	return c.sess
}

func (c *conn) getFlat() *tablesvc.GetFlat {
	if c.tget == nil {
		c.tget = c.f.cloud.Table.NewGetFlat(c.onEnt)
	}
	return c.tget
}

func (c *conn) writeFlat() *tablesvc.WriteFlat {
	if c.twrite == nil {
		c.twrite = c.f.cloud.Table.NewWriteFlat(c.onWrite)
	}
	return c.twrite
}

func (c *conn) queryFlat() *tablesvc.QueryFlat {
	if c.tquery == nil {
		c.tquery = c.f.cloud.Table.NewQueryFlat(c.onEnts)
	}
	return c.tquery
}

func (c *conn) queueReq() *queuesvc.ReqFlat {
	if c.qreq == nil {
		c.qreq = c.f.cloud.Queue.NewReqFlat()
	}
	return c.qreq
}

func (c *conn) run(op *wireOp, deliver func(wireResult)) {
	c.op, c.deliver = op, deliver
	c.a.Go(c.dispatch)
}

func (c *conn) run2() {
	op := c.op
	switch op.kind {
	case opBlobGet:
		c.session().GetFlat(&c.a, op.container, op.blob, c.onBlobSize)
	case opBlobPut:
		c.session().PutFlat(&c.a, op.container, op.blob, op.size, op.overwrite, c.onBlobSize)
	case opBlobHead:
		c.session().ExistsFlat(&c.a, op.container, op.blob, c.onBlobOK)
	case opBlobDelete:
		c.session().DeleteFlat(&c.a, op.container, op.blob, c.onBlobErr)
	case opEntityGet:
		c.getFlat().Begin(&c.a, op.table, op.pk, op.rk)
	case opEntityInsert:
		c.writeFlat().BeginInsert(&c.a, op.table, entityFor(op))
	case opEntityUpdate:
		c.writeFlat().BeginUpdate(&c.a, op.table, entityFor(op))
	case opEntityDelete:
		c.writeFlat().BeginDelete(&c.a, op.table, op.pk, op.rk)
	case opPartitionQuery:
		c.queryFlat().Begin(&c.a, op.table, op.pk, nil)
	case opMsgPut:
		q, ok := c.f.cloud.Queue.GetQueue(op.queue)
		if !ok {
			c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Add", "queue "+op.queue))
			return
		}
		c.queueReq().BeginAdd(&c.a, q, op.body, int(op.size), c.onAdd)
	case opMsgPeek:
		q, ok := c.f.cloud.Queue.GetQueue(op.queue)
		if !ok {
			c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Peek", "queue "+op.queue))
			return
		}
		c.queueReq().BeginPeek(&c.a, q, c.onPeek)
	case opMsgGet:
		q, ok := c.f.cloud.Queue.GetQueue(op.queue)
		if !ok {
			c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Receive", "queue "+op.queue))
			return
		}
		c.queueReq().BeginReceive(&c.a, q, op.visibility, c.onRecv)
	case opMsgDelete:
		q, ok := c.f.cloud.Queue.GetQueue(op.queue)
		if !ok {
			c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Delete", "queue "+op.queue))
			return
		}
		rcpt, ok := queuesvc.ParseReceipt(op.receipt)
		if !ok {
			c.finish(wireResult{err: &wireError{status: 400, code: "InvalidInput", msg: "malformed pop receipt"}})
			return
		}
		c.queueReq().BeginDelete(&c.a, q, rcpt, c.onQDel)
	default:
		c.finish(wireResult{err: &wireError{status: 400, code: "InvalidUri", msg: "unroutable operation"}})
	}
}

func entityFor(op *wireOp) *tablesvc.Entity {
	return tablesvc.PaddedEntity(op.pk, op.rk, int(op.size))
}

// finish delivers the outcome, releases the connection and finishes the
// actor. Every request path on the connection ends here exactly once.
func (c *conn) finish(r wireResult) {
	deliver := c.deliver
	c.op, c.deliver = nil, nil
	c.f.release(c)
	c.a.Finish()
	deliver(r)
}

func (c *conn) finishErr(err error) { c.finish(wireResult{err: err}) }

// --- completion callbacks (cached once per conn) ---

func (c *conn) blobSizeDone(n int64, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	if c.op.kind == opBlobGet {
		c.finish(wireResult{status: 200, ctype: "application/octet-stream", bodySize: n})
		return
	}
	c.finish(wireResult{status: 201})
}

func (c *conn) blobOKDone(ok bool, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	if !ok {
		c.finishErr(storerr.New(storerr.CodeNotFound, "blob.Exists", c.op.container+"/"+c.op.blob))
		return
	}
	c.finish(wireResult{status: 200})
}

func (c *conn) blobErrDone(err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	c.finish(wireResult{status: 202})
}

func (c *conn) entDone(e *tablesvc.Entity, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	c.finish(wireResult{status: 200, ctype: "application/json", body: entityJSON(e)})
}

func (c *conn) entsDone(es []*tablesvc.Entity, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range es {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(entityJSON(e))
	}
	b.WriteByte(']')
	c.finish(wireResult{status: 200, ctype: "application/json", body: b.String()})
}

func (c *conn) writeDone(err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	if c.op.kind == opEntityInsert {
		c.finish(wireResult{status: 201})
		return
	}
	c.finish(wireResult{status: 204})
}

func (c *conn) addDone(id uint64, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	c.finish(wireResult{
		status: 201, ctype: "application/xml",
		body: xmlHeader + "<QueueMessage><MessageId>" + strconv.FormatUint(id, 10) + "</MessageId></QueueMessage>",
	})
}

func (c *conn) peekDone(m *queuesvc.Message, ok bool, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	if !ok {
		c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Peek", "no visible messages"))
		return
	}
	c.finish(wireResult{status: 200, ctype: "application/xml", body: messagesXML(m, "")})
}

func (c *conn) recvDone(m *queuesvc.Message, rcpt queuesvc.Receipt, ok bool, err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	if !ok {
		c.finishErr(storerr.New(storerr.CodeNotFound, "queue.Receive", "no visible messages"))
		return
	}
	c.finish(wireResult{status: 200, ctype: "application/xml", popRcpt: rcpt.String(), body: messagesXML(m, rcpt.String())})
}

func (c *conn) qDelDone(err error) {
	if err != nil {
		c.finishErr(err)
		return
	}
	c.finish(wireResult{status: 204})
}

func entityJSON(e *tablesvc.Entity) string {
	return fmt.Sprintf(`{"PartitionKey":%q,"RowKey":%q,"Size":%d}`, e.PartitionKey, e.RowKey, e.Size())
}

func messagesXML(m *queuesvc.Message, popReceipt string) string {
	var b strings.Builder
	b.WriteString(xmlHeader)
	b.WriteString("<QueueMessagesList><QueueMessage><MessageId>")
	b.WriteString(strconv.FormatUint(m.ID, 10))
	b.WriteString("</MessageId><DequeueCount>")
	b.WriteString(strconv.Itoa(m.Dequeues))
	b.WriteString("</DequeueCount><MessageText>")
	xmlEscapeTo(&b, m.Body)
	b.WriteString("</MessageText>")
	if popReceipt != "" {
		b.WriteString("<PopReceipt>")
		b.WriteString(popReceipt)
		b.WriteString("</PopReceipt>")
	}
	b.WriteString("</QueueMessage></QueueMessagesList>")
	return b.String()
}
