package wire

import (
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// maxBody bounds request bodies read into memory. Payload size is normally
// declared out-of-band (x-ms-size / ?size=) precisely so large simulated
// objects never cross the wire as real bytes.
const maxBody = 4 << 20

// ServeHTTP implements http.Handler. The request is parsed to canonical
// form on the HTTP goroutine; only the resulting closure crosses the Gate
// onto the engine. Poll-style reads (healthz, /operations/<id>,
// /control/echoerr) are answered directly — they touch no engine state and
// deliberately stay out of the arrival record.
func (f *Facade) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	segs := splitPath(r.URL.Path)
	if len(segs) > 0 {
		switch segs[0] {
		case "healthz":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n") //nolint:errcheck
			return
		case "operations":
			f.serveOperation(w, segs)
			return
		case "control":
			if len(segs) == 2 && segs[1] == "echoerr" {
				f.serveEchoErr(w, r)
				return
			}
		}
	}

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			writeErrorRaw(w, 400, "InvalidInput", "unreadable request body")
			return
		}
	}
	uri := r.URL.RequestURI()
	// Fold the headers that carry op semantics into the canonical URI, so
	// the recorded form captures them.
	if r.Header.Get("If-None-Match") == "*" {
		uri = addQuery(uri, "ifabsent=1")
	}
	if s := r.Header.Get("x-ms-size"); s != "" {
		uri = addQuery(uri, "size="+url.QueryEscape(s))
	}
	op := parseOp(r.Method, uri, int64(len(body)), string(body))

	resCh := make(chan wireResult, 1)
	ok := f.gate.Do(func() {
		f.start(op, func(res wireResult) { resCh <- res })
	})
	if !ok {
		writeErrorRaw(w, 503, "ServerBusy", "server is shutting down")
		return
	}
	// Free-run gates drain before Do returns, so the result is already
	// buffered; paced gates deliver when virtual time catches up.
	f.writeResult(w, r, <-resCh)
}

func addQuery(uri, kv string) string {
	if strings.Contains(uri, "?") {
		return uri + "&" + kv
	}
	return uri + "?" + kv
}

func (f *Facade) serveOperation(w http.ResponseWriter, segs []string) {
	if len(segs) != 2 {
		writeErrorRaw(w, 400, "InvalidUri", "operations path must be /operations/<id>")
		return
	}
	o, ok := f.mgmt.snapshot(segs[1])
	if !ok {
		writeErrorRaw(w, 404, "NotFound", "operation "+segs[1])
		return
	}
	body := operationXML(o)
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, body) //nolint:errcheck
}

// serveEchoErr routes ?code=<storerr code> through the real error path —
// the handle the all-codes wire test pulls to verify the envelope for codes
// that need elaborate fault setups to produce organically.
func (f *Facade) serveEchoErr(w http.ResponseWriter, r *http.Request) {
	code := r.URL.Query().Get("code")
	if code == "" {
		writeErrorRaw(w, 400, "InvalidInput", "code query parameter required")
		return
	}
	writeError(w, synthErr(code))
}

func (f *Facade) writeResult(w http.ResponseWriter, r *http.Request, res wireResult) {
	if res.err != nil {
		writeError(w, res.err)
		return
	}
	h := w.Header()
	if res.reqID != "" {
		h.Set("x-ms-request-id", res.reqID)
	}
	if res.location != "" {
		h.Set("Location", res.location)
	}
	if res.popRcpt != "" {
		h.Set("x-ms-popreceipt", res.popRcpt)
	}
	if res.ctype != "" {
		h.Set("Content-Type", res.ctype)
	}
	if res.bodySize > 0 {
		h.Set("Content-Length", strconv.FormatInt(res.bodySize, 10))
		w.WriteHeader(res.status)
		if r.Method != "HEAD" {
			writeZeros(w, res.bodySize)
		}
		return
	}
	if res.body != "" {
		h.Set("Content-Length", strconv.Itoa(len(res.body)))
	}
	w.WriteHeader(res.status)
	if res.body != "" {
		io.WriteString(w, res.body) //nolint:errcheck
	}
}

// writeZeros streams n zero bytes — simulated blob payloads have size but
// no content.
func writeZeros(w io.Writer, n int64) {
	buf := make([]byte, 32*1024)
	for n > 0 {
		chunk := int64(len(buf))
		if n < chunk {
			chunk = n
		}
		m, err := w.Write(buf[:chunk])
		n -= int64(m)
		if err != nil {
			return
		}
	}
}
