package wire

import (
	_ "embed"
	"strings"

	"azureobs/internal/azure"
	"azureobs/internal/core"
)

// arrivalsLog is the exemplar recorded session the wirereplay experiment
// replays: a pass over the full REST surface captured in the WriteTo format.
//
//go:embed testdata/arrivals.log
var arrivalsLog string

// replaySeed pins the replay cloud. The experiment deliberately ignores
// Proto.Seed: the anchor is bit-identity of one recorded session, not a
// statistic over seeds, and the pinned hash below belongs to this seed.
const replaySeed = 1009

// pinnedTraceHash is the FNV-64a of the exemplar session's trace. Any
// change to the kernel's event ordering, the storage services' virtual
// timing, or the facade's routing that alters a single completion instant
// or status flips this hash — it is the wire-level equivalent of the
// simbench trace anchors.
const pinnedTraceHash = 0x141561a31017e6f0

type replayResult struct {
	anchors []core.Anchor
}

func (r replayResult) Anchors() []core.Anchor { return r.anchors }

type replayExperiment struct{}

func (replayExperiment) Name() string { return "wirereplay" }

func (replayExperiment) Run(p core.Proto) core.Result {
	arrivals, err := ParseArrivals(strings.NewReader(arrivalsLog))
	if err != nil {
		panic("wire: embedded arrivals.log is malformed: " + err.Error())
	}
	trace := Replay(azure.Config{Seed: replaySeed}, arrivals)
	match := 0.0
	if TraceHash(trace) == pinnedTraceHash {
		match = 1
	}
	return replayResult{anchors: []core.Anchor{
		{Name: "wire replay requests served", Unit: "requests",
			Paper: float64(len(arrivals)), Measured: float64(len(trace))},
		{Name: "wire replay trace hash match", Unit: "bool",
			Paper: 1, Measured: match},
	}}
}

func init() { core.Register(replayExperiment{}) }
