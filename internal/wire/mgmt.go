package wire

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

// deploySpec is the parsed form of a deployment request.
type deploySpec struct {
	name      string
	role      fabric.Role
	size      fabric.Size
	instances int
	packageMB float64
}

// operation is one long-running Service Management operation. The paper's
// Section 4.1 deployment phases run minutes of virtual time, so lifecycle
// calls answer 202 immediately and clients poll /operations/<id> — the
// classic x-ms-request-id flow.
type operation struct {
	id     string
	status string // "InProgress", "Succeeded", "Failed"
	code   string // wire code when Failed
	msg    string
}

// mgmtState tracks operations and deployments. The ops map is read by HTTP
// poll handlers off the engine goroutine, hence the mutex; deployments are
// engine-side only.
type mgmtState struct {
	mu     sync.Mutex
	ops    map[string]*operation
	nextOp int

	deps map[string]*fabric.Deployment
}

func newMgmtState() *mgmtState {
	return &mgmtState{
		ops:  make(map[string]*operation),
		deps: make(map[string]*fabric.Deployment),
	}
}

func (m *mgmtState) newOp() *operation {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextOp++
	o := &operation{id: fmt.Sprintf("op-%d", m.nextOp), status: "InProgress"}
	m.ops[o.id] = o
	return o
}

func (m *mgmtState) complete(o *operation, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		o.status = "Succeeded"
		return
	}
	o.status = "Failed"
	_, o.code, o.msg = errorParts(err)
}

// snapshot returns a copy of the operation for rendering, or false.
func (m *mgmtState) snapshot(id string) (operation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.ops[id]
	if !ok {
		return operation{}, false
	}
	return *o, true
}

// operationXML renders the poll body.
func operationXML(o operation) string {
	var b strings.Builder
	b.WriteString(xmlHeader)
	b.WriteString("<Operation><ID>")
	xmlEscapeTo(&b, o.id)
	b.WriteString("</ID><Status>")
	b.WriteString(o.status)
	b.WriteString("</Status>")
	if o.status == "Failed" {
		b.WriteString("<Error><Code>")
		xmlEscapeTo(&b, o.code)
		b.WriteString("</Code><Message>")
		xmlEscapeTo(&b, o.msg)
		b.WriteString("</Message></Error>")
	}
	b.WriteString("</Operation>")
	return b.String()
}

// parseMgmtOp routes /management/deployments... paths:
//
//	POST   /management/deployments?name=X&role=worker&size=small&instances=4&package=20
//	POST   /management/deployments/<name>/add?count=N
//	POST   /management/deployments/<name>/suspend
//	DELETE /management/deployments/<name>
func parseMgmtOp(op *wireOp, method string, segs []string, q url.Values) {
	if len(segs) < 2 || segs[1] != "deployments" {
		op.invalid = "unknown management path"
		return
	}
	switch {
	case len(segs) == 2 && method == "POST":
		op.kind = opMgmtDeploy
		op.spec = deploySpec{
			name:      q.Get("name"),
			instances: qInt(q, "instances", 0),
			packageMB: qFloat(q, "package"),
		}
		switch q.Get("role") {
		case "", "worker":
			op.spec.role = fabric.Worker
		case "web":
			op.spec.role = fabric.Web
		default:
			op.invalid = "role must be worker or web"
			return
		}
		switch q.Get("size") {
		case "", "small":
			op.spec.size = fabric.Small
		case "medium":
			op.spec.size = fabric.Medium
		case "large":
			op.spec.size = fabric.Large
		case "extralarge":
			op.spec.size = fabric.ExtraLarge
		default:
			op.invalid = "unknown VM size " + q.Get("size")
			return
		}
		if op.spec.name == "" {
			op.invalid = "deployment name required"
		}
	case len(segs) == 3 && method == "DELETE":
		op.kind = opMgmtDelete
		op.spec.name = segs[2]
	case len(segs) == 4 && method == "POST" && segs[3] == "add":
		op.kind = opMgmtAdd
		op.spec.name = segs[2]
		op.count = qInt(q, "count", 1)
	case len(segs) == 4 && method == "POST" && segs[3] == "suspend":
		op.kind = opMgmtSuspend
		op.spec.name = segs[2]
	default:
		op.invalid = "unknown management path"
	}
}

func qInt(q url.Values, key string, def int) int {
	n, err := strconv.Atoi(q.Get(key))
	if err != nil {
		return def
	}
	return n
}

// startMgmt answers 202 with a pollable operation and runs the lifecycle
// phases on a spawned proc. Existence checks happen at submission (the
// deployments map is engine-side), so NotFound and Conflict are prompt;
// fabric-level failures surface through the operation's Failed state.
func (f *Facade) startMgmt(op *wireOp, deliver func(wireResult)) {
	m := f.mgmt
	var d *fabric.Deployment
	if op.kind == opMgmtDeploy {
		if _, exists := m.deps[op.spec.name]; exists {
			deliver(wireResult{err: storerr.New(storerr.CodeConflict, "management.Deploy", "deployment "+op.spec.name+" already exists")})
			return
		}
	} else {
		var ok bool
		d, ok = m.deps[op.spec.name]
		if !ok {
			deliver(wireResult{err: storerr.New(storerr.CodeNotFound, "management", "deployment "+op.spec.name)})
			return
		}
	}
	o := m.newOp()
	kind, spec, count := op.kind, op.spec, op.count
	mgmt := f.cloud.Management()
	f.cloud.Engine.Spawn("wire-mgmt-"+o.id, func(p *sim.Proc) {
		var err error
		switch kind {
		case opMgmtDeploy:
			var dep *fabric.Deployment
			dep, _, err = mgmt.Deploy(p, fabric.DeploymentSpec{
				Name:      spec.name,
				Role:      spec.role,
				Size:      spec.size,
				Instances: spec.instances,
				PackageMB: spec.packageMB,
			})
			if err == nil {
				_, _, _, err = mgmt.Run(p, dep)
			}
			if err == nil {
				m.deps[spec.name] = dep
			}
		case opMgmtAdd:
			_, err = mgmt.Add(p, d, count)
		case opMgmtSuspend:
			_, err = mgmt.Suspend(p, d)
		case opMgmtDelete:
			_, err = mgmt.Delete(p, d)
			if err == nil {
				delete(m.deps, spec.name)
			}
		}
		m.complete(o, err)
	})
	deliver(wireResult{status: 202, reqID: o.id, location: "/operations/" + o.id})
}
