package wire

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"azureobs/internal/storage/storerr"
)

// xmlHeader opens every XML body the facade writes, byte-for-byte the 2009
// storage service prologue.
const xmlHeader = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"

var xmlEsc = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
)

func xmlEscapeTo(b *strings.Builder, s string) {
	// Replacer.WriteString on a strings.Builder cannot fail.
	xmlEsc.WriteString(b, s) //nolint:errcheck
}

// wireError is a facade-level failure (bad URI, malformed input) that never
// reached a storage service and so carries its own status and wire code.
type wireError struct {
	status int
	code   string
	msg    string
}

func (e *wireError) Error() string { return e.code + ": " + e.msg }

// errorParts maps any error to the (HTTP status, wire code, message) triple
// the envelope carries. Storage errors route through storerr.Class — the
// one table — so the facade cannot drift from the client library's view of
// an error. Foreign errors classify as InternalError/500.
func errorParts(err error) (status int, code, msg string) {
	var we *wireError
	if errors.As(err, &we) {
		return we.status, we.code, we.msg
	}
	var se *storerr.Error
	if errors.As(err, &se) {
		cl := storerr.Class(se.Code)
		return cl.Status, cl.Wire, se.Error()
	}
	return 500, string(storerr.CodeInternal), err.Error()
}

// synthErr builds a storage error carrying an arbitrary code — the echoerr
// control endpoint routes it through the same errorParts/Class path real
// failures take.
func synthErr(code string) error {
	return storerr.New(storerr.Code(code), "wire.echoerr", "synthesized "+code+" for envelope check")
}

// ErrorXML renders the classic storage error envelope. Exported so tests
// (and clients parsing responses) can pin the exact bytes.
func ErrorXML(code, msg string) string {
	var b strings.Builder
	b.WriteString(xmlHeader)
	b.WriteString("<Error><Code>")
	xmlEscapeTo(&b, code)
	b.WriteString("</Code><Message>")
	xmlEscapeTo(&b, msg)
	b.WriteString("</Message></Error>")
	return b.String()
}

func writeError(w http.ResponseWriter, err error) {
	status, code, msg := errorParts(err)
	writeErrorRaw(w, status, code, msg)
}

func writeErrorRaw(w http.ResponseWriter, status int, code, msg string) {
	body := ErrorXML(code, msg)
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	h.Set("x-ms-error-code", code)
	w.WriteHeader(status)
	io.WriteString(w, body) //nolint:errcheck
}
