package wire

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net/url"
	"strconv"
	"strings"
	"time"

	"azureobs/internal/azure"
)

// Arrival is one recorded request in canonical form: the virtual instant it
// reached the facade plus the (method, uri, size, body) tuple every op is
// parsed from. An arrival log is a complete, replayable description of a
// serving session.
type Arrival struct {
	At     time.Duration
	Method string
	URI    string
	Size   int64
	Body   string
}

// Recorder captures arrivals as they pass through the facade. It is
// engine-side state: record runs only on the gate goroutine, so no lock.
type Recorder struct {
	arrivals []Arrival
}

// NewRecorder builds an empty recorder; install with Facade.SetRecorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) record(at time.Duration, op *wireOp) {
	r.arrivals = append(r.arrivals, Arrival{
		At: at, Method: op.method, URI: op.uri, Size: op.size, Body: op.body,
	})
}

// Arrivals returns the captured log. Call only after serving has stopped.
func (r *Recorder) Arrivals() []Arrival { return r.arrivals }

// WriteTo serialises the log in the one-line-per-arrival text format:
//
//	<at_ns> <method> <uri> <size> <body-escaped|->
//
// The body is query-escaped so the line stays whitespace-delimited.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, a := range r.arrivals {
		body := "-"
		if a.Body != "" {
			body = url.QueryEscape(a.Body)
		}
		m, err := fmt.Fprintf(w, "%d %s %s %d %s\n", a.At.Nanoseconds(), a.Method, a.URI, a.Size, body)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ParseArrivals reads the WriteTo format. Blank lines and #-comments are
// skipped; a malformed line is an error naming its number.
func ParseArrivals(r io.Reader) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 5 {
			return nil, fmt.Errorf("wire: arrivals line %d: want 5 fields, got %d", lineNo, len(f))
		}
		ns, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wire: arrivals line %d: bad timestamp %q", lineNo, f[0])
		}
		size, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wire: arrivals line %d: bad size %q", lineNo, f[3])
		}
		body := ""
		if f[4] != "-" {
			body, err = url.QueryUnescape(f[4])
			if err != nil {
				return nil, fmt.Errorf("wire: arrivals line %d: bad body escape", lineNo)
			}
		}
		out = append(out, Arrival{
			At: time.Duration(ns), Method: f[1], URI: f[2], Size: size, Body: body,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TraceEntry is one request's observable outcome in a replay: when it
// arrived, the virtual instant it completed, and what the wire answered.
type TraceEntry struct {
	Index  int
	At     time.Duration
	End    time.Duration
	Status int
	Code   string
	Size   int64
}

// Replay drives a recorded arrival log through a fresh facade on a fresh
// cloud, entirely in virtual time: each arrival is scheduled at its recorded
// instant and dispatched exactly as the live facade would have. The
// returned trace is a pure function of (cfg, arrivals) — replaying a
// recording twice yields bit-identical traces, which TraceHash pins.
func Replay(cfg azure.Config, arrivals []Arrival) []TraceEntry {
	cloud := azure.NewCloud(cfg)
	f := New(cloud, nil)
	out := make([]TraceEntry, len(arrivals))
	for i := range arrivals {
		i := i
		ar := arrivals[i]
		cloud.Engine.Schedule(ar.At, func() {
			op := parseOp(ar.Method, ar.URI, ar.Size, ar.Body)
			f.start(op, func(r wireResult) {
				status, code, size := r.render()
				out[i] = TraceEntry{
					Index: i, At: ar.At, End: cloud.Engine.Now(),
					Status: status, Code: code, Size: size,
				}
			})
		})
	}
	cloud.Engine.Run()
	return out
}

// TraceHash folds a trace to one FNV-64a word — the bit-identity anchor.
func TraceHash(entries []TraceEntry) uint64 {
	h := fnv.New64a()
	for _, e := range entries {
		fmt.Fprintf(h, "%d|%d|%d|%d|%s|%d\n",
			e.Index, e.At.Nanoseconds(), e.End.Nanoseconds(), e.Status, e.Code, e.Size)
	}
	return h.Sum64()
}
