package wire

import (
	"strings"
	"testing"

	"azureobs/internal/azure"
	"azureobs/internal/core"
)

func embeddedArrivals(t *testing.T) []Arrival {
	t.Helper()
	arrivals, err := ParseArrivals(strings.NewReader(arrivalsLog))
	if err != nil {
		t.Fatalf("embedded arrivals.log: %v", err)
	}
	if len(arrivals) == 0 {
		t.Fatal("embedded arrivals.log is empty")
	}
	return arrivals
}

// TestReplayDeterminism replays the exemplar session twice on fresh clouds
// and requires bit-identical traces — the facade adds no hidden
// nondeterminism on top of the kernel.
func TestReplayDeterminism(t *testing.T) {
	arrivals := embeddedArrivals(t)
	cfg := azure.Config{Seed: replaySeed}
	a := Replay(cfg, arrivals)
	b := Replay(cfg, arrivals)
	if len(a) != len(arrivals) || len(b) != len(arrivals) {
		t.Fatalf("trace lengths %d/%d, want %d", len(a), len(b), len(arrivals))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d diverges between replays:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
	if ha, hb := TraceHash(a), TraceHash(b); ha != hb {
		t.Fatalf("trace hashes diverge: %#x vs %#x", ha, hb)
	}
	for i, e := range a {
		if e.End < e.At {
			t.Errorf("entry %d completed at %v before its arrival %v", i, e.End, e.At)
		}
		if e.Status == 0 {
			t.Errorf("entry %d has no status", i)
		}
	}
}

// TestReplayPinnedHash is the bit-identity anchor: the exemplar session's
// trace hash is pinned, so any change to kernel ordering, service timing or
// facade routing that shifts one completion instant fails here (and in the
// wirereplay registry experiment). On failure the full trace is logged for
// re-pinning after an intentional change.
func TestReplayPinnedHash(t *testing.T) {
	arrivals := embeddedArrivals(t)
	trace := Replay(azure.Config{Seed: replaySeed}, arrivals)
	h := TraceHash(trace)
	if h != pinnedTraceHash {
		for _, e := range trace {
			t.Logf("%3d at=%-12v end=%-14v status=%d code=%q size=%d",
				e.Index, e.At, e.End, e.Status, e.Code, e.Size)
		}
		t.Fatalf("trace hash %#x, pinned %#x", h, uint64(pinnedTraceHash))
	}
}

// TestReplayExperimentAnchors runs the registered experiment end to end.
func TestReplayExperimentAnchors(t *testing.T) {
	res := replayExperiment{}.Run(core.Proto{})
	anchors := res.Anchors()
	if len(anchors) != 2 {
		t.Fatalf("got %d anchors, want 2", len(anchors))
	}
	for _, a := range anchors {
		if a.Measured != a.Paper {
			t.Errorf("anchor %q: measured %v, want %v", a.Name, a.Measured, a.Paper)
		}
	}
}

// TestArrivalLogRoundTrip pins the text format: record → serialize → parse
// reproduces the arrivals exactly, including escaped bodies.
func TestArrivalLogRoundTrip(t *testing.T) {
	rec := NewRecorder()
	rec.record(0, parseOp("PUT", "/c", 0, ""))
	rec.record(1500, parseOp("POST", "/queue/q/messages", 0, "hello world & <xml>"))
	rec.record(3000, parseOp("PUT", "/c/blob?ifabsent=1", 1024, ""))
	var b strings.Builder
	if _, err := rec.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArrivals(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\nlog:\n%s", err, b.String())
	}
	if len(parsed) != len(rec.Arrivals()) {
		t.Fatalf("round trip length %d, want %d", len(parsed), len(rec.Arrivals()))
	}
	for i, want := range rec.Arrivals() {
		if parsed[i] != want {
			t.Errorf("arrival %d: got %+v, want %+v", i, parsed[i], want)
		}
	}
}

// TestParseArrivalsRejectsMalformed pins the error behaviour.
func TestParseArrivalsRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"not a number PUT /c 0 -",
		"0 PUT /c",
		"0 PUT /c zero -",
		"0 PUT /c 0 %zz",
	} {
		if _, err := ParseArrivals(strings.NewReader(line)); err == nil {
			t.Errorf("line %q parsed without error", line)
		}
	}
}
