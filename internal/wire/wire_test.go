package wire

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

const testSeed = 7331

// testServer is a live facade behind a real HTTP listener, free-running on
// a RealTime gate — the full production stack minus the network.
type testServer struct {
	t     *testing.T
	cloud *azure.Cloud
	rt    *sim.RealTime
	f     *Facade
	srv   *httptest.Server
}

func newTestServer(t *testing.T) *testServer {
	t.Helper()
	cloud := azure.NewCloud(azure.Config{Seed: testSeed})
	rt := sim.NewRealTime(cloud.Engine, sim.FreeRun)
	f := New(cloud, rt)
	srv := httptest.NewServer(f)
	go rt.Serve()
	t.Cleanup(func() {
		srv.Close()
		rt.Close()
	})
	return &testServer{t: t, cloud: cloud, rt: rt, f: f, srv: srv}
}

// do issues one request and returns the response with its body drained.
func (ts *testServer) do(method, path string, header map[string]string) (*http.Response, string) {
	ts.t.Helper()
	req, err := http.NewRequest(method, ts.srv.URL+path, nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatalf("%s %s: %v", method, path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		ts.t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	return resp, string(body)
}

func (ts *testServer) want(method, path string, header map[string]string, wantStatus int) (*http.Response, string) {
	ts.t.Helper()
	resp, body := ts.do(method, path, header)
	if resp.StatusCode != wantStatus {
		ts.t.Fatalf("%s %s: status %d, want %d (body %q)", method, path, resp.StatusCode, wantStatus, body)
	}
	return resp, body
}

func TestWireBlobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	size := map[string]string{"x-ms-size": "1048576"}

	ts.want("PUT", "/files", nil, 201)
	ts.want("PUT", "/files/report", size, 201)
	ts.want("HEAD", "/files/report", nil, 200)

	resp, body := ts.want("GET", "/files/report", nil, 200)
	if resp.ContentLength != 1048576 || int64(len(body)) != 1048576 {
		t.Fatalf("GET length %d (body %d), want 1048576", resp.ContentLength, len(body))
	}
	if strings.Trim(body, "\x00") != "" {
		t.Fatal("blob payload is not all zero bytes")
	}

	// Conditional create against an existing blob: the classic 409.
	resp, body = ts.do("PUT", "/files/report", map[string]string{"x-ms-size": "10", "If-None-Match": "*"})
	if resp.StatusCode != 409 {
		t.Fatalf("conditional PUT status %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get("x-ms-error-code"); got != "BlobAlreadyExists" {
		t.Fatalf("x-ms-error-code %q, want BlobAlreadyExists", got)
	}
	if !strings.Contains(body, "<Code>BlobAlreadyExists</Code>") {
		t.Fatalf("envelope missing code: %q", body)
	}

	ts.want("DELETE", "/files/report", nil, 202)
	ts.want("HEAD", "/files/report", nil, 404)
	ts.want("GET", "/files/report", nil, 404)
	ts.want("DELETE", "/files/report", nil, 404)
}

func TestWireTableLifecycle(t *testing.T) {
	ts := newTestServer(t)

	ts.want("PUT", "/table/jobs", nil, 201)
	ts.want("POST", "/table/jobs/p1/r2", map[string]string{"x-ms-size": "2048"}, 201)
	ts.want("POST", "/table/jobs/p1/r1", map[string]string{"x-ms-size": "1024"}, 201)

	resp, _ := ts.do("POST", "/table/jobs/p1/r1", nil)
	if resp.StatusCode != 409 || resp.Header.Get("x-ms-error-code") != "Conflict" {
		t.Fatalf("duplicate insert: status %d code %q, want 409 Conflict",
			resp.StatusCode, resp.Header.Get("x-ms-error-code"))
	}

	_, body := ts.want("GET", "/table/jobs/p1/r1", nil, 200)
	if body != `{"PartitionKey":"p1","RowKey":"r1","Size":1024}` {
		t.Fatalf("entity JSON = %q", body)
	}

	// Partition query returns the whole partition sorted by RowKey.
	_, body = ts.want("GET", "/table/jobs/p1", nil, 200)
	want := `[{"PartitionKey":"p1","RowKey":"r1","Size":1024},{"PartitionKey":"p1","RowKey":"r2","Size":2048}]`
	if body != want {
		t.Fatalf("partition query = %q\nwant %q", body, want)
	}

	ts.want("PUT", "/table/jobs/p1/r1", map[string]string{"x-ms-size": "4096"}, 204)
	ts.want("DELETE", "/table/jobs/p1/r1", nil, 204)
	ts.want("GET", "/table/jobs/p1/r1", nil, 404)
	ts.want("PUT", "/table/jobs/p1/r1", nil, 404) // update of a deleted row
	ts.want("DELETE", "/table/jobs/p1/r1", nil, 404)
	ts.want("POST", "/table/nosuch/p/r", nil, 404) // missing table
}

func TestWireQueueLifecycle(t *testing.T) {
	ts := newTestServer(t)

	ts.want("PUT", "/queue/tasks", nil, 201)

	_, body := ts.want("POST", "/queue/tasks/messages?size=512", nil, 201)
	if body != xmlHeader+"<QueueMessage><MessageId>1</MessageId></QueueMessage>" {
		t.Fatalf("add body = %q", body)
	}

	// Peek shows the message without a pop receipt.
	_, body = ts.want("GET", "/queue/tasks/messages?peekonly=true", nil, 200)
	if strings.Contains(body, "<PopReceipt>") || !strings.Contains(body, "<MessageId>1</MessageId>") {
		t.Fatalf("peek body = %q", body)
	}

	// Receive hides the message and hands out the receipt.
	resp, body := ts.want("GET", "/queue/tasks/messages?visibilitytimeout=60", nil, 200)
	rcpt := resp.Header.Get("x-ms-popreceipt")
	if rcpt == "" || !strings.Contains(body, "<PopReceipt>"+rcpt+"</PopReceipt>") {
		t.Fatalf("receive: receipt header %q, body %q", rcpt, body)
	}
	if !strings.Contains(body, "<DequeueCount>1</DequeueCount>") {
		t.Fatalf("receive body missing dequeue count: %q", body)
	}

	// Hidden: both peek and a second receive come up empty.
	ts.want("GET", "/queue/tasks/messages?peekonly=true", nil, 404)
	ts.want("GET", "/queue/tasks/messages", nil, 404)

	ts.want("DELETE", "/queue/tasks/messages/"+rcpt, nil, 204)
	ts.want("DELETE", "/queue/tasks/messages/"+rcpt, nil, 404) // already deleted

	// A stale receipt (redelivered message, new token) is a Conflict.
	ts.want("POST", "/queue/tasks/messages?size=16", nil, 201)
	resp, _ = ts.want("GET", "/queue/tasks/messages?visibilitytimeout=60", nil, 200)
	stale := resp.Header.Get("x-ms-popreceipt")
	ts.rt.Do(func() {}) // no-op; engine idle, virtual time frozen below timeout
	// Force redelivery by receiving after the visibility lapses: advance
	// virtual time with an engine-side sleeper.
	ts.rt.Do(func() {
		ts.cloud.Engine.Spawn("advance", func(p *sim.Proc) { p.Sleep(2 * time.Minute) })
	})
	resp, _ = ts.want("GET", "/queue/tasks/messages?visibilitytimeout=60", nil, 200)
	fresh := resp.Header.Get("x-ms-popreceipt")
	if fresh == stale {
		t.Fatalf("receipt unchanged across redelivery: %q", fresh)
	}
	resp, _ = ts.do("DELETE", "/queue/tasks/messages/"+stale, nil)
	if resp.StatusCode != 409 || resp.Header.Get("x-ms-error-code") != "Conflict" {
		t.Fatalf("stale delete: status %d code %q, want 409 Conflict",
			resp.StatusCode, resp.Header.Get("x-ms-error-code"))
	}

	ts.want("DELETE", "/queue/tasks/messages/garbage", nil, 400)
	ts.want("GET", "/queue/nosuch/messages", nil, 404)
}

// TestWireErrorEnvelopeAllCodes drives every storerr code through the
// facade's real error path and pins the status from storerr.Class and the
// envelope bytes exactly.
func TestWireErrorEnvelopeAllCodes(t *testing.T) {
	ts := newTestServer(t)
	codes := []storerr.Code{
		storerr.CodeTimeout, storerr.CodeServerBusy, storerr.CodeBlobExists,
		storerr.CodeNotFound, storerr.CodeConflict, storerr.CodeCorruptRead,
		storerr.CodeConnection, storerr.CodeInternal,
		storerr.Code("SomeFutureCode"), // unknown codes pass through at 500
	}
	for _, code := range codes {
		t.Run(string(code), func(t *testing.T) {
			cl := storerr.Class(code)
			resp, body := ts.do("GET", "/control/echoerr?code="+string(code), nil)
			if resp.StatusCode != cl.Status {
				t.Fatalf("status %d, want %d", resp.StatusCode, cl.Status)
			}
			if got := resp.Header.Get("x-ms-error-code"); got != cl.Wire {
				t.Fatalf("x-ms-error-code %q, want %q", got, cl.Wire)
			}
			want := ErrorXML(cl.Wire, synthErr(string(code)).Error())
			if body != want {
				t.Fatalf("envelope:\n got %q\nwant %q", body, want)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/xml" {
				t.Fatalf("Content-Type %q", ct)
			}
		})
	}
}

// TestWireOrganicErrors produces each reachable error end to end — real
// service failures surfacing through the wire, not synthesized envelopes.
func TestWireOrganicErrors(t *testing.T) {
	ts := newTestServer(t)
	ts.want("PUT", "/data", nil, 201)
	ts.want("PUT", "/data/blob", map[string]string{"x-ms-size": "4096"}, 201)

	cases := []struct {
		name       string
		faults     string // query for /control/faults, "" for none
		method     string
		path       string
		wantStatus int
		wantCode   string
	}{
		{"not found", "", "GET", "/data/missing", 404, "ResourceNotFound"},
		{"server busy", "service=blob&busy=1", "GET", "/data/blob", 503, "ServerBusy"},
		{"connection failure", "service=blob&conn=1", "GET", "/data/blob", 500, "ConnectionFailure"},
		{"read failure", "service=blob&read=1", "GET", "/data/blob", 500, "OperationTimedOut"},
		{"corrupt read", "service=blob&corrupt=1", "GET", "/data/blob", 500, "CorruptRead"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.faults != "" {
				ts.want("POST", "/control/faults?"+tc.faults, nil, 204)
				defer ts.want("POST", "/control/faults?service=blob&reset=1", nil, 204)
			}
			resp, body := ts.do(tc.method, tc.path, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			if got := resp.Header.Get("x-ms-error-code"); got != tc.wantCode {
				t.Fatalf("x-ms-error-code %q, want %q", got, tc.wantCode)
			}
			if !strings.Contains(body, "<Code>"+tc.wantCode+"</Code>") {
				t.Fatalf("envelope missing <Code>%s</Code>: %q", tc.wantCode, body)
			}
		})
	}

	// Unknown fault target is rejected.
	ts.want("POST", "/control/faults?service=nosuch&busy=1", nil, 400)
}

// TestWireMgmtLRO exercises the 202 + poll flow over HTTP (free-run: the
// operation completes during the drain, so the poll shows Succeeded) and
// the facade-level InProgress state under a non-draining gate.
func TestWireMgmtLRO(t *testing.T) {
	ts := newTestServer(t)

	resp, _ := ts.want("POST", "/management/deployments?name=app&role=worker&size=small&instances=2", nil, 202)
	opURL := resp.Header.Get("Location")
	if opURL == "" || resp.Header.Get("x-ms-request-id") == "" {
		t.Fatalf("202 missing Location/x-ms-request-id: %v", resp.Header)
	}
	_, body := ts.want("GET", opURL, nil, 200)
	if !strings.Contains(body, "<Status>Succeeded</Status>") {
		t.Fatalf("deploy operation: %q", body)
	}

	// Add, suspend, delete — each its own pollable operation.
	for _, step := range []struct{ method, path string }{
		{"POST", "/management/deployments/app/add?count=2"},
		{"POST", "/management/deployments/app/suspend"},
		{"DELETE", "/management/deployments/app"},
	} {
		resp, _ := ts.want(step.method, step.path, nil, 202)
		_, body := ts.want("GET", resp.Header.Get("Location"), nil, 200)
		if !strings.Contains(body, "<Status>Succeeded</Status>") {
			t.Fatalf("%s %s operation: %q", step.method, step.path, body)
		}
	}

	// Deleted: lifecycle calls on the name are prompt 404s.
	ts.want("POST", "/management/deployments/app/suspend", nil, 404)
	// Duplicate create of a live deployment is a prompt 409.
	ts.want("POST", "/management/deployments?name=again&role=worker&size=small&instances=1", nil, 202)
	ts.want("POST", "/management/deployments?name=again&role=worker&size=small&instances=1", nil, 409)

	ts.want("GET", "/operations/op-999", nil, 404)
	ts.want("GET", "/healthz", nil, 200)
}

// TestWireMgmtInProgress observes the InProgress state with a non-draining
// inline gate: the 202 lands before the engine runs a single event.
func TestWireMgmtInProgress(t *testing.T) {
	cloud := azure.NewCloud(azure.Config{Seed: testSeed})
	f := New(cloud, NewInlineGate(cloud.Engine, false))

	var res wireResult
	f.start(parseOp("POST", "/management/deployments?name=d&role=worker&size=small&instances=1", 0, ""),
		func(r wireResult) { res = r })
	if res.status != 202 || res.reqID == "" {
		t.Fatalf("deploy result %+v, want 202 with request id", res)
	}
	o, ok := f.mgmt.snapshot(res.reqID)
	if !ok || o.status != "InProgress" {
		t.Fatalf("operation before drain: %+v ok=%v, want InProgress", o, ok)
	}
	cloud.Engine.Run()
	o, _ = f.mgmt.snapshot(res.reqID)
	if o.status != "Succeeded" {
		t.Fatalf("operation after drain: %+v, want Succeeded", o)
	}
	if xml := operationXML(o); !strings.Contains(xml, "<Status>Succeeded</Status>") {
		t.Fatalf("operation XML: %q", xml)
	}
}

// TestWirePacedSmoke serves one instant and one latent request through a
// paced gate: virtual time tracks the wall clock, so the blob GET's virtual
// latency plays out across ticks.
func TestWirePacedSmoke(t *testing.T) {
	cloud := azure.NewCloud(azure.Config{Seed: testSeed})
	rt := sim.NewRealTime(cloud.Engine, sim.Paced)
	rt.SetTick(time.Millisecond)
	f := New(cloud, rt)
	srv := httptest.NewServer(f)
	go rt.Serve()
	defer func() {
		srv.Close()
		rt.Close()
	}()

	for _, step := range []struct {
		method, path string
		header       map[string]string
		want         int
	}{
		{"PUT", "/c", nil, 201},
		{"PUT", "/c/b", map[string]string{"x-ms-size": "1024"}, 201},
		{"GET", "/c/b", nil, 200},
	} {
		req, _ := http.NewRequest(step.method, srv.URL+step.path, nil)
		for k, v := range step.header {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", step.method, step.path, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != step.want {
			t.Fatalf("%s %s: status %d, want %d", step.method, step.path, resp.StatusCode, step.want)
		}
	}
}

// TestWireRecordedSessionReplays is the record/replay acceptance at the
// HTTP level: a live free-run session is recorded, then replayed on a fresh
// cloud with the same seed, and every request must resolve to the same
// status, code and size.
func TestWireRecordedSessionReplays(t *testing.T) {
	ts := newTestServer(t)
	rec := NewRecorder()
	ts.rt.Do(func() { ts.f.SetRecorder(rec) })

	type obs struct {
		status int
		code   string
		size   int64
	}
	var live []obs
	issue := func(method, path string, header map[string]string) {
		resp, body := ts.do(method, path, header)
		live = append(live, obs{resp.StatusCode, resp.Header.Get("x-ms-error-code"), int64(len(body))})
	}

	issue("PUT", "/logs", nil)
	issue("PUT", "/logs/day1", map[string]string{"x-ms-size": "65536"})
	issue("GET", "/logs/day1", nil)
	issue("HEAD", "/logs/day1", nil)
	issue("GET", "/logs/missing", nil)
	issue("PUT", "/queue/work", nil)
	issue("POST", "/queue/work/messages?size=256", nil)
	issue("GET", "/queue/work/messages?visibilitytimeout=30", nil)
	issue("PUT", "/table/t", nil)
	issue("POST", "/table/t/pk/rk", map[string]string{"x-ms-size": "512"})
	issue("GET", "/table/t/pk", nil)

	var arrivals []Arrival
	ts.rt.Do(func() { arrivals = rec.Arrivals() })
	if len(arrivals) != len(live) {
		t.Fatalf("recorded %d arrivals for %d requests", len(arrivals), len(live))
	}

	trace := Replay(azure.Config{Seed: testSeed}, arrivals)
	for i, e := range trace {
		// Sizes compare only for successful body-carrying responses: HEAD
		// strips the body on the live side, and error envelopes are not
		// part of the replay trace (the status+code is).
		wantSize := live[i].size
		if arrivals[i].Method == "HEAD" || e.Code != "" {
			wantSize = e.Size
		}
		if e.Status != live[i].status || e.Code != live[i].code || e.Size != wantSize {
			t.Errorf("request %d (%s %s): replay (%d,%q,%d) vs live (%d,%q,%d)",
				i, arrivals[i].Method, arrivals[i].URI,
				e.Status, e.Code, e.Size, live[i].status, live[i].code, wantSize)
		}
	}

	// The recorded session replays identically a second time.
	if h1, h2 := TraceHash(trace), TraceHash(Replay(azure.Config{Seed: testSeed}, arrivals)); h1 != h2 {
		t.Fatalf("replay hashes diverge: %#x vs %#x", h1, h2)
	}
}

// TestWireBadRequests pins the facade-level 400 paths.
func TestWireBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{"PATCH", "/c/b"},
		{"POST", "/table/t"},
		{"GET", "/"},
		{"POST", "/management/deployments?role=martian&name=x"},
		{"POST", "/management/deployments"}, // no name
		{"GET", "/control/echoerr"},         // no code
	} {
		resp, _ := ts.do(tc.method, tc.path, nil)
		if resp.StatusCode != 400 {
			t.Errorf("%s %s: status %d, want 400", tc.method, tc.path, resp.StatusCode)
		}
	}
}
