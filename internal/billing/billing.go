// Package billing models the February-2010 Windows Azure commercial pricing
// and the economic reasoning of the paper's Section 5.1: "the cost to store
// 1 GB for 1 month is nearly the same as it does to run a small VM instance
// for one hour, so storing intermediate products to conserve computation is
// a valid strategy as long as the data is used within a month."
//
// A Meter accumulates the billable activity of a simulated deployment
// (instance time, stored byte-months, transactions, egress); the
// StoreVsRecompute analysis computes the break-even reuse horizon behind
// ModisAzure's cache-everything design.
package billing

import (
	"fmt"
	"time"

	"azureobs/internal/fabric"
)

// Rates is a price sheet in USD.
type Rates struct {
	SmallVMHour    float64 // per small instance hour; larger sizes scale by cores
	StorageGBMonth float64 // per GB stored per month
	TxPer10k       float64 // per 10,000 storage transactions
	EgressGB       float64 // per GB transferred out
	IngressGB      float64 // per GB transferred in
}

// Rates2010 is the Windows Azure price sheet at commercial launch
// (February 2010, North America / Europe).
func Rates2010() Rates {
	return Rates{
		SmallVMHour:    0.12,
		StorageGBMonth: 0.15,
		TxPer10k:       0.01,
		EgressGB:       0.15,
		IngressGB:      0.10,
	}
}

// month is the billing month used for storage proration.
const month = 30 * 24 * time.Hour

// gb is a decimal gigabyte.
const gb = 1e9

// Meter accumulates billable usage.
type Meter struct {
	Rates Rates

	vmHours      float64 // small-instance-equivalent hours
	byteMonths   float64 // bytes × months
	transactions uint64
	egressBytes  float64
	ingressBytes float64
}

// NewMeter creates a meter with the given price sheet.
func NewMeter(r Rates) *Meter { return &Meter{Rates: r} }

// ChargeCompute bills an instance of the given size for the duration.
// Larger sizes bill proportionally to cores, as Azure did.
func (m *Meter) ChargeCompute(size fabric.Size, d time.Duration) {
	m.vmHours += d.Hours() * float64(size.Cores())
}

// ChargeStorage bills bytes held for the duration.
func (m *Meter) ChargeStorage(bytes int64, d time.Duration) {
	m.byteMonths += float64(bytes) * (float64(d) / float64(month))
}

// ChargeTransactions bills n storage operations.
func (m *Meter) ChargeTransactions(n uint64) { m.transactions += n }

// ChargeEgress bills bytes leaving the datacenter.
func (m *Meter) ChargeEgress(bytes int64) { m.egressBytes += float64(bytes) }

// ChargeIngress bills bytes entering the datacenter.
func (m *Meter) ChargeIngress(bytes int64) { m.ingressBytes += float64(bytes) }

// Breakdown itemises the bill.
type Breakdown struct {
	Compute, Storage, Transactions, Egress, Ingress float64
}

// Total sums the bill.
func (b Breakdown) Total() float64 {
	return b.Compute + b.Storage + b.Transactions + b.Egress + b.Ingress
}

func (b Breakdown) String() string {
	return fmt.Sprintf("compute $%.2f + storage $%.2f + tx $%.2f + egress $%.2f + ingress $%.2f = $%.2f",
		b.Compute, b.Storage, b.Transactions, b.Egress, b.Ingress, b.Total())
}

// Bill computes the itemised charges.
func (m *Meter) Bill() Breakdown {
	return Breakdown{
		Compute:      m.vmHours * m.Rates.SmallVMHour,
		Storage:      m.byteMonths / gb * m.Rates.StorageGBMonth,
		Transactions: float64(m.transactions) / 10000 * m.Rates.TxPer10k,
		Egress:       m.egressBytes / gb * m.Rates.EgressGB,
		Ingress:      m.ingressBytes / gb * m.Rates.IngressGB,
	}
}

// StoreVsRecompute evaluates the Section 5.1 trade: a product of productGB
// that costs computeHours of small-instance time to regenerate, reused once
// after reuseAfter. It returns the cost of keeping it stored until reuse
// versus recomputing it at reuse time.
func StoreVsRecompute(r Rates, productGB, computeHours float64, reuseAfter time.Duration) (storeCost, recomputeCost float64) {
	storeCost = productGB * r.StorageGBMonth * (float64(reuseAfter) / float64(month))
	recomputeCost = computeHours * r.SmallVMHour
	return storeCost, recomputeCost
}

// BreakEvenHorizon returns how long a product can sit in storage before
// storing it costs more than regenerating it.
func BreakEvenHorizon(r Rates, productGB, computeHours float64) time.Duration {
	if productGB <= 0 {
		return time.Duration(1<<62 - 1)
	}
	months := computeHours * r.SmallVMHour / (productGB * r.StorageGBMonth)
	return time.Duration(months * float64(month))
}
