package billing

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/fabric"
)

func TestPaperSection51Claim(t *testing.T) {
	// "the cost to store 1 GB for 1 month is nearly the same as it does to
	// run a small VM instance for one hour"
	r := Rates2010()
	store, recompute := StoreVsRecompute(r, 1, 1, month)
	if math.Abs(store-recompute)/recompute > 0.3 {
		t.Fatalf("store $%.3f vs 1 VM-hour $%.3f: not 'nearly the same'", store, recompute)
	}
	// Storing is the better deal within about a month, not much beyond.
	horizon := BreakEvenHorizon(r, 1, 1)
	if horizon < 20*24*time.Hour || horizon > 40*24*time.Hour {
		t.Fatalf("break-even horizon = %v, want ~1 month", horizon)
	}
	s2, r2 := StoreVsRecompute(r, 1, 1, month/2)
	if s2 >= r2 {
		t.Fatal("storing for half a month should beat recomputing")
	}
	s3, r3 := StoreVsRecompute(r, 1, 1, 3*month)
	if s3 <= r3 {
		t.Fatal("storing for three months should lose to recomputing")
	}
}

func TestMeterCompute(t *testing.T) {
	m := NewMeter(Rates2010())
	m.ChargeCompute(fabric.Small, 10*time.Hour)
	m.ChargeCompute(fabric.ExtraLarge, time.Hour) // 8 cores = 8 small-hours
	b := m.Bill()
	want := 18 * 0.12
	if math.Abs(b.Compute-want) > 1e-9 {
		t.Fatalf("compute = $%.4f, want $%.4f", b.Compute, want)
	}
}

func TestMeterStorageProration(t *testing.T) {
	m := NewMeter(Rates2010())
	m.ChargeStorage(2_000_000_000, month/2) // 2 GB for half a month
	b := m.Bill()
	if math.Abs(b.Storage-0.15) > 1e-9 {
		t.Fatalf("storage = $%.4f, want $0.15", b.Storage)
	}
}

func TestMeterTransactionsAndTransfer(t *testing.T) {
	m := NewMeter(Rates2010())
	m.ChargeTransactions(100000) // 10 × 10k
	m.ChargeEgress(10_000_000_000)
	m.ChargeIngress(10_000_000_000)
	b := m.Bill()
	if math.Abs(b.Transactions-0.10) > 1e-9 {
		t.Fatalf("tx = $%.4f", b.Transactions)
	}
	if math.Abs(b.Egress-1.5) > 1e-9 || math.Abs(b.Ingress-1.0) > 1e-9 {
		t.Fatalf("egress/ingress = $%.2f/$%.2f", b.Egress, b.Ingress)
	}
	if math.Abs(b.Total()-(0.10+1.5+1.0)) > 1e-9 {
		t.Fatalf("total = $%.4f", b.Total())
	}
}

func TestBreakdownString(t *testing.T) {
	m := NewMeter(Rates2010())
	m.ChargeCompute(fabric.Small, time.Hour)
	if s := m.Bill().String(); s == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestBreakEvenDegenerate(t *testing.T) {
	if h := BreakEvenHorizon(Rates2010(), 0, 1); h < 1000*24*time.Hour {
		t.Fatal("zero-size product should store forever")
	}
}

// TestModisEconomics reproduces the design reasoning of Section 5.1 at
// ModisAzure's parameters: a reprojection product is a few hundred MB and
// takes several minutes of small-instance compute; its break-even storage
// horizon comfortably exceeds the inter-request reuse interval, so caching
// intermediates was the right call.
func TestModisEconomics(t *testing.T) {
	r := Rates2010()
	// ~300 MB product, ~6 min of compute.
	horizon := BreakEvenHorizon(r, 0.3, 0.1)
	if horizon < 5*24*time.Hour {
		t.Fatalf("break-even = %v; caching would not have paid off", horizon)
	}
	// But a 4 TB raw dataset (the full decade of MODIS input) is cheaper to
	// keep than to re-download only because transfer also costs money;
	// pure storage of 4 TB runs $600/month.
	m := NewMeter(r)
	m.ChargeStorage(4_000_000_000_000, month)
	if b := m.Bill(); b.Storage < 500 || b.Storage > 700 {
		t.Fatalf("4 TB-month = $%.0f, want ~$600", b.Storage)
	}
}
