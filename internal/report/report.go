// Package report renders experiment results as aligned text tables, ASCII
// CDF/series plots and CSV — the output layer of cmd/azbench and
// cmd/modisazure.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"azureobs/internal/metrics"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			parts[i] = v
		case float64:
			parts[i] = fmt.Sprintf(format, v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(parts...)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// CDFPlot renders a sample's cumulative distribution as an ASCII plot:
// probability on the y axis, value on the x axis.
func CDFPlot(w io.Writer, title, xlabel string, s *metrics.Sample, width, height int) {
	if s.N() == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	lo, hi := s.Quantile(0), s.Quantile(1)
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s\n", title)
	for row := height; row >= 1; row-- {
		p := float64(row) / float64(height)
		v := s.Quantile(p)
		pos := int((v - lo) / (hi - lo) * float64(width-1))
		fmt.Fprintf(w, "%5.2f |%s*\n", p, strings.Repeat(" ", pos))
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "       %-12.4g%s%12.4g  (%s)\n", lo,
		strings.Repeat(" ", max(0, width-24)), hi, xlabel)
}

// SeriesPlot renders a time series as a vertical-bar ASCII chart (one column
// per point, downsampled to width).
func SeriesPlot(w io.Writer, title, ylabel string, ts *metrics.TimeSeries, width, height int) {
	n := ts.Len()
	if n == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if width <= 0 || width > n {
		width = n
	}
	if height <= 0 {
		height = 10
	}
	// Downsample by max within buckets (spikes must stay visible).
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		m := math.Inf(-1)
		for j := lo; j < hi && j < n; j++ {
			if ts.Values[j] > m {
				m = ts.Values[j]
			}
		}
		vals[i] = m
	}
	peak := ts.Max()
	if peak <= 0 {
		peak = 1
	}
	fmt.Fprintf(w, "%s  (peak %.2f %s)\n", title, ts.Max(), ylabel)
	for row := height; row >= 1; row-- {
		cut := float64(row) / float64(height) * peak
		var b strings.Builder
		for _, v := range vals {
			if v >= cut && v > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(w, "%8.2f |%s\n", cut, b.String())
	}
	fmt.Fprintf(w, "         +%s\n", strings.Repeat("-", width))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
