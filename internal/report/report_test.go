package report

import (
	"strings"
	"testing"
	"time"

	"azureobs/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Aligned: both data rows have the value column at the same offset.
	if strings.Index(lines[3], "1") != strings.Index(lines[1], "value") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowTruncation(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "extra")
	if len(tb.Rows[0]) != 1 {
		t.Fatal("extra cells not dropped")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "x", "y", "n")
	tb.AddRowf("%.2f", "label", 3.14159, 7)
	row := tb.Rows[0]
	if row[0] != "label" || row[1] != "3.14" || row[2] != "7" {
		t.Fatalf("row = %v", row)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`va"l`, "x,y")
	var b strings.Builder
	tb.CSV(&b)
	out := b.String()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"x,y"`) {
		t.Fatalf("csv escaping broken: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header broken: %s", out)
	}
}

func TestCDFPlot(t *testing.T) {
	s := metrics.NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	var b strings.Builder
	CDFPlot(&b, "Latency CDF", "ms", s, 40, 8)
	out := b.String()
	if !strings.Contains(out, "Latency CDF") || !strings.Contains(out, "*") {
		t.Fatalf("plot broken:\n%s", out)
	}
	if strings.Count(out, "*") != 8 {
		t.Fatalf("want 8 points, got %d", strings.Count(out, "*"))
	}
}

func TestCDFPlotEmpty(t *testing.T) {
	var b strings.Builder
	CDFPlot(&b, "Empty", "x", metrics.NewSample(0), 10, 5)
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty sample not handled")
	}
}

func TestSeriesPlot(t *testing.T) {
	ts := &metrics.TimeSeries{}
	for d := 0; d < 100; d++ {
		v := 0.0
		if d == 50 {
			v = 16
		}
		ts.Add(time.Duration(d)*24*time.Hour, v)
	}
	var b strings.Builder
	SeriesPlot(&b, "Fig 7", "%", ts, 50, 8)
	out := b.String()
	if !strings.Contains(out, "peak 16.00") {
		t.Fatalf("peak missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("spike not drawn:\n%s", out)
	}
}

func TestSeriesPlotEmpty(t *testing.T) {
	var b strings.Builder
	SeriesPlot(&b, "none", "%", &metrics.TimeSeries{}, 10, 5)
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty series not handled")
	}
}
