package geo

import (
	"testing"

	"azureobs/internal/sim"
)

func TestMain(m *testing.M) {
	// Every engine in this package's tests runs with kernel invariant
	// checks on — the region-kill scenarios assert under sim.Invariants.
	sim.SetDefaultInvariants(true)
	m.Run()
}
