package geo

import (
	"testing"
	"time"
)

// killConfig scripts the marquee chaos scenario: the primary region dies
// whole at 30s and is repaired at 45s, under eventual reads so the killed
// population fails over.
func killConfig() Config {
	cfg := testConfig()
	cfg.Horizon = 75 * time.Second
	cfg.KillRegion = 0
	cfg.KillAt = 30 * time.Second
	cfg.RepairAt = 45 * time.Second
	return cfg
}

// TestRegionKillRTO_RPO asserts the failover quantities under
// sim.Invariants (enabled for the whole package in TestMain): RTO is the
// first successful read the killed population gets served elsewhere, and
// RPO is the exposure window of acknowledged-but-unreplicated writes.
func TestRegionKillRTO_RPO(t *testing.T) {
	cfg := killConfig()
	w := NewWorld(cfg)
	w.Run()
	rep := w.Report()

	if rep.DeadVMs < 0 || rep.KilledFailed == 0 {
		t.Fatalf("kill did not bite: %+v", rep)
	}
	if rep.RTOSec <= 0 {
		t.Fatalf("killed population never failed over: %+v", rep)
	}
	// Detection needs at most FailTimeout of silence plus one backoff
	// cycle; anything beyond that is a traffic-manager regression.
	maxRTO := (cfg.FailTimeout + 4 * time.Second).Seconds()
	if rep.RTOSec > maxRTO {
		t.Fatalf("RTO %.2fs exceeds detection bound %.2fs", rep.RTOSec, maxRTO)
	}
	// RPO is bounded by the replication lag at the kill instant; with a
	// sub-second fault-free lag, losing more than 2s of writes means the
	// pump stalled long before the kill.
	if rep.RPOSec < 0 || rep.RPOSec > 2 {
		t.Fatalf("RPO %.3fs out of the lag-explainable band", rep.RPOSec)
	}
	if rep.LostWrites > 0 && rep.RPOSec == 0 {
		t.Fatalf("lost %d writes with zero RPO window", rep.LostWrites)
	}
	// Durability catch-up: after repair the pumps replay their backlog, so
	// the log is fully replicated by drain even though writes were exposed
	// at the kill instant.
	if got, want := rep.Applies, rep.Commits*int64(rep.Regions-1); got != want {
		t.Fatalf("backlog not drained after repair: %d applies, want %d", got, want)
	}
	// Reads that succeeded during the chaos are still exactly explainable.
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRegionKillNoRoutingFlap is the FalseKills-style regression: one kill
// plus one repair must cost the killed region's router exactly two target
// transitions (home→failover at detection, failover→home after the
// repromote hold) and must not perturb any other region's routing at all.
// A detector misconfiguration — FailTimeout under the heartbeat period,
// hold-down too short for the repair settle — shows up here as extra
// flaps.
func TestRegionKillNoRoutingFlap(t *testing.T) {
	cfg := killConfig()
	w := NewWorld(cfg)
	w.Run()
	rep := w.Report()
	if rep.KilledFlaps != 2 {
		t.Fatalf("killed region's router flapped %d times, want exactly 2", rep.KilledFlaps)
	}
	if rest := rep.TotalFlaps - rep.KilledFlaps; rest != 0 {
		t.Fatalf("healthy regions flapped %d times during the kill", rest)
	}
}

// TestRegionKillSecondary kills a non-primary region: its population fails
// over for reads, writes elsewhere are unaffected, and the replication
// stream buffered during the outage applies at repair.
func TestRegionKillSecondary(t *testing.T) {
	cfg := killConfig()
	cfg.KillRegion = 2
	w := NewWorld(cfg)
	w.Run()
	rep := w.Report()
	if rep.RTOSec <= 0 {
		t.Fatalf("killed secondary's population never failed over: %+v", rep)
	}
	if rep.LostWrites != 0 {
		t.Fatalf("killing a secondary lost %d acknowledged writes", rep.LostWrites)
	}
	if got, want := rep.Applies, rep.Commits*int64(rep.Regions-1); got != want {
		t.Fatalf("outage-buffered stream not applied at repair: %d applies, want %d", got, want)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRegionKillDomainEquivalence pins the chaos scenario's whole report
// across domain widths — the kill, detection, failover and repair all land
// identically no matter how the regions are sharded.
func TestRegionKillDomainEquivalence(t *testing.T) {
	var base *Report
	for _, d := range []int{1, 2, 4} {
		cfg := killConfig()
		cfg.Domains = d
		w := NewWorld(cfg)
		w.Run()
		rep := w.Report()
		if d == 1 {
			base = rep
			continue
		}
		if *rep != *base {
			t.Fatalf("domains=%d diverged:\n%+v\nwant:\n%+v", d, rep, base)
		}
	}
}
