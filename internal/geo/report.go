package geo

import (
	"fmt"
	"sort"
	"time"

	"azureobs/internal/metrics"
)

// Report aggregates one world run into the quantities the fig8geo
// experiments anchor: traffic counters, the replication-lag distribution,
// the stale-read fraction under the configured consistency mode, and — when
// a kill was scripted — failover RTO, RPO and routing-flap counts. All
// fields are domain-invariant; geobench hashes the whole struct.
type Report struct {
	Regions int

	ReadsOK      int64
	ReadsFailed  int64
	WritesOK     int64
	WritesFailed int64
	RemoteReads  int64
	Commits      int64
	Applies      int64

	LagMeanSec float64
	LagMaxSec  float64
	LagP50Sec  float64 // when cfg.LagSamples
	LagP95Sec  float64 // when cfg.LagSamples

	StaleReads int64   // when cfg.RecordReads
	StaleFrac  float64 // stale / successful reads

	RTOSec       float64 // when cfg.KillAt > 0
	RPOSec       float64
	LostWrites   int64
	KilledFlaps  int64
	TotalFlaps   int64
	KilledFailed int64 // failed reads in the killed region's population
	DeadVMs      int64

	MeanLatencySec  float64
	FinalVirtualSec float64
}

// Report computes the post-run aggregate. Call after Run; it walks all
// regions' state single-threaded in region order, so every derived number
// is independent of the domain count.
func (w *World) Report() *Report {
	cfg := &w.cfg
	rep := &Report{Regions: cfg.Regions}
	var lag, lat metrics.Summary
	var lagS *metrics.Sample
	if cfg.LagSamples {
		lagS = metrics.NewSample(4096)
	}
	for i, r := range w.regions {
		p := r.pop
		rep.ReadsOK += p.readsOK
		rep.ReadsFailed += p.readsFailed
		rep.WritesOK += p.writesOK
		rep.WritesFailed += p.writesFailed
		rep.RemoteReads += p.remoteReads
		rep.TotalFlaps += r.router.flaps
		lat.Merge(&p.latency)
		if i != w.store.primary {
			rs := w.store.replicas[i]
			rep.Applies += rs.applies
			lag.Merge(&rs.lag)
			if lagS != nil && rs.lagS != nil {
				for _, v := range rs.lagS.Values() {
					lagS.Add(v)
				}
			}
		}
	}
	rep.Commits = int64(len(w.store.commits))
	if lag.N() > 0 {
		rep.LagMeanSec = lag.Mean()
		rep.LagMaxSec = lag.Max()
	}
	if lagS != nil && lagS.N() > 0 {
		rep.LagP50Sec = lagS.Quantile(0.50)
		rep.LagP95Sec = lagS.Quantile(0.95)
	}
	if lat.N() > 0 {
		rep.MeanLatencySec = lat.Mean()
	}
	rep.FinalVirtualSec = w.Now().Seconds()

	if cfg.RecordReads {
		perName := w.commitsByName()
		for _, r := range w.regions {
			for _, rec := range r.pop.recs {
				if rec.ver < freshVersion(perName[rec.name], rec.at) {
					rep.StaleReads++
				}
			}
		}
		if rep.ReadsOK > 0 {
			rep.StaleFrac = float64(rep.StaleReads) / float64(rep.ReadsOK)
		}
	}

	if cfg.KillAt > 0 {
		killT := cfg.KillAt
		kr := w.regions[cfg.KillRegion]
		rep.KilledFlaps = kr.router.flaps
		rep.KilledFailed = kr.pop.readsFailed
		rep.DeadVMs = int64(kr.deadVMs)
		if kr.pop.firstFailover > 0 {
			rep.RTOSec = (kr.pop.firstFailover - killT).Seconds()
		}
		// RPO: writes acknowledged by killT that no secondary had applied
		// yet. Had the primary never come back, these would be gone; the
		// exposure window is killT minus the earliest such commit.
		earliest := time.Duration(-1)
		for v, rec := range w.store.commits {
			if rec.Commit > killT {
				break
			}
			visible := false
			for s := range w.regions {
				if s == w.store.primary {
					continue
				}
				rs := w.store.replicas[s]
				if v < len(rs.applyAt) && rs.applyAt[v] <= killT {
					visible = true
					break
				}
			}
			if !visible {
				rep.LostWrites++
				if earliest < 0 {
					earliest = rec.Commit
				}
			}
		}
		if rep.LostWrites > 0 {
			rep.RPOSec = (killT - earliest).Seconds()
		}
	}
	return rep
}

// commitsByName splits the commit log into per-name version-ordered
// sublists.
func (w *World) commitsByName() [][]commitRec {
	perName := make([][]commitRec, w.cfg.HotNames)
	for _, rec := range w.store.commits {
		perName[rec.Name] = append(perName[rec.Name], rec)
	}
	return perName
}

// freshVersion returns the latest version of a name committed at or before
// t (0 when the seed version is still the latest). recs is version- and
// commit-time-ordered.
func freshVersion(recs []commitRec, t time.Duration) uint64 {
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Commit > t })
	if i == 0 {
		return 0
	}
	return recs[i-1].Version
}

// CheckConsistency is the linearizability-style checker behind the
// consistency property tests. It asserts, from the recorded read log and
// replication bookkeeping:
//
//   - Read-your-writes on the primary: every read served by the primary
//     replica observed exactly the latest version committed at or before
//     its linearization instant — never stale.
//
//   - Prefix explainability on secondaries: every read served by a
//     secondary observed exactly the version determined by that replica's
//     applied prefix at the serve instant. A secondary can be behind, but
//     only by its replication lag — it can never serve a version out of
//     prefix order or one newer than its watermark.
//
//   - Prefix integrity: each secondary applied versions 1,2,3,… in order,
//     never before their commit instants, with nondecreasing apply times.
//
// Requires cfg.RecordReads. Returns the first violation found, nil if the
// run is consistent.
func (w *World) CheckConsistency() error {
	if !w.cfg.RecordReads {
		return fmt.Errorf("geo: CheckConsistency needs Config.RecordReads")
	}
	commits := w.store.commits
	for s, rs := range w.store.replicas {
		if s == w.store.primary {
			continue
		}
		if len(rs.applyAt) > len(commits) {
			return fmt.Errorf("geo: region %d applied %d versions, only %d committed",
				s, len(rs.applyAt), len(commits))
		}
		for v := range rs.applyAt {
			if rs.applyAt[v] < commits[v].Commit {
				return fmt.Errorf("geo: region %d applied version %d at %v before its commit at %v",
					s, v+1, rs.applyAt[v], commits[v].Commit)
			}
			if v > 0 && rs.applyAt[v] < rs.applyAt[v-1] {
				return fmt.Errorf("geo: region %d apply times regress at version %d", s, v+1)
			}
		}
	}
	perName := w.commitsByName()
	for _, r := range w.regions {
		for _, rec := range r.pop.recs {
			want := w.expectedVersion(rec.served, rec.name, rec.at, perName)
			if rec.ver != want {
				return fmt.Errorf("geo: read of %q at %v served by region %d saw version %d, explainable version is %d",
					w.names[rec.name], rec.at, rec.served, rec.ver, want)
			}
		}
	}
	return nil
}

// expectedVersion is the one version a read served by region s at instant t
// must have observed: the globally freshest commit for primary serves, the
// applied-prefix-limited freshest for secondary serves.
func (w *World) expectedVersion(s, name int, t time.Duration, perName [][]commitRec) uint64 {
	if s == w.store.primary {
		return freshVersion(perName[name], t)
	}
	rs := w.store.replicas[s]
	// Watermark: how many versions this replica had applied by t.
	wm := uint64(sort.Search(len(rs.applyAt), func(i int) bool { return rs.applyAt[i] > t }))
	// Latest version of the name within the applied prefix.
	recs := perName[name]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Version > wm })
	if i == 0 {
		return 0
	}
	return recs[i-1].Version
}
