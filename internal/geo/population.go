package geo

import (
	"math"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/blobsvc"
)

// population is one region's closed-loop client fleet, driven entirely
// through the flat-client fast path: every client is an embedded
// sim.Actor state machine with cached continuations — no goroutine, no
// channel, no per-operation allocation — so 100k+ clients per region stay
// cheap. Think times follow a per-region diurnal sinusoid plus an optional
// flash crowd; each operation consults the region's Router, so a dead home
// region redirects load exactly when the traffic manager detects the
// silence.
type population struct {
	r       *region
	clients []client

	readsOK, readsFailed   int64
	writesOK, writesFailed int64
	remoteReads            int64
	firstFailover          time.Duration // first off-home read success after KillAt
	latency                metrics.Summary
	recs                   []readRec
}

// readRec is one successful read, recorded when cfg.RecordReads: which
// replica served it, what version it observed and the linearization
// instant the version snapshot was taken at.
type readRec struct {
	served int
	name   int
	ver    uint64
	at     time.Duration
}

// client is one closed-loop flat client.
type client struct {
	p     *population
	a     sim.Actor
	sig   sim.Signal
	sess  *blobsvc.Session
	rng   *simrand.RNG
	phase float64

	attempt int
	write   bool
	name    int
	target  int
	opStart time.Duration

	// remote completion results, filled by remoteDone before sig.Fire.
	rServer int
	rVer    uint64
	rServe  time.Duration
	rErr    error

	onStart    func()
	onIssue    func()
	onLocalGet func(int64, error)
	onLocalPut func(int64, error)
	onUpSent   func()
	onRemote   func()
}

func newPopulation(r *region) *population {
	p := &population{r: r}
	p.clients = make([]client, r.w.cfg.ClientsPerRegion)
	for j := range p.clients {
		c := &p.clients[j]
		c.p = p
		c.rng = r.rng.ForkN("client", j)
		c.phase = float64(r.index) / float64(r.w.cfg.Regions)
		c.sess = r.cloud.Blob.NewSession(j)
		c.a.Bind(r.eng(), "geo-client")
		c.onStart = c.start
		c.onIssue = c.issue
		c.onLocalGet = c.localGet
		c.onLocalPut = c.localPut
		c.onUpSent = c.upSent
		c.onRemote = c.remoteResult
		c.a.Go(c.onStart)
	}
	return p
}

// start staggers the fleet: every client thinks once before its first
// request.
func (c *client) start() { c.a.Sleep(c.nextThink(), c.onIssue) }

// issue begins one operation (or one retry of the in-flight operation).
func (c *client) issue() {
	now := c.a.Now()
	cfg := &c.p.r.w.cfg
	if now >= cfg.Horizon {
		c.a.Finish()
		return
	}
	if c.attempt == 0 {
		c.write = c.rng.Hit(cfg.WriteFrac)
		c.name = int(c.rng.Float64() * float64(cfg.HotNames))
		if c.name >= cfg.HotNames {
			c.name = cfg.HotNames - 1
		}
	}
	c.opStart = now
	home := c.p.r.index
	st := c.p.r.w.store
	if c.write || cfg.ReadMode == ReadPrimary {
		// Writes always commit at the primary; read-your-writes reads are
		// served by it.
		c.target = st.primary
	} else {
		c.target = c.p.r.router.Pick()
	}
	if c.target == home {
		if c.write {
			c.sess.PutFlat(&c.a, Container, c.p.r.w.names[c.name], cfg.BlobBytes, true, c.onLocalPut)
			return
		}
		// Linearization point: the home replica's visible version, read at
		// the issue instant, is what this read observes.
		rs := st.replicas[home]
		c.rVer = rs.vals[c.name]
		c.rServe = now
		c.sess.GetFlat(&c.a, Container, c.p.r.w.names[c.name], c.onLocalGet)
		return
	}
	if c.write {
		// Store-and-forward: push the payload across the home trunk toward
		// the primary before handing the request over.
		c.p.r.cloud.DC.Net().TransferFlat(&c.a, cfg.BlobBytes, c.onUpSent, c.p.r.lh.Trunk(c.target))
		return
	}
	c.sendRemote()
}

func (c *client) upSent() { c.sendRemote() }

// sendRemote forwards the request to the target region's gateway and parks
// the actor until the response message fires the signal.
func (c *client) sendRemote() {
	w := c.p.r.w
	home := c.p.r.index
	target, write, name := c.target, c.write, c.name
	cl := c
	w.send(home, target, w.oneWay(home, target), func() {
		w.regions[target].gw.handle(cl, write, name, w.cfg.BlobBytes, home)
	})
	c.sig.WaitFlat(&c.a, c.onRemote)
}

// remoteDone is called by the transport when the response message drains
// at the home region; it wakes the parked actor.
func (c *client) remoteDone(server int, ver uint64, serveAt time.Duration, err error) {
	c.rServer, c.rVer, c.rServe, c.rErr = server, ver, serveAt, err
	c.sig.Fire()
}

func (c *client) remoteResult() { c.finish(c.rServer, c.rVer, c.rServe, c.rErr) }

func (c *client) localGet(_ int64, err error) {
	c.finish(c.p.r.index, c.rVer, c.rServe, err)
}

func (c *client) localPut(size int64, err error) {
	if err == nil {
		// Local writes only happen when home is the primary.
		c.p.r.w.store.commit(c.name, size)
	}
	c.finish(c.p.r.index, 0, 0, err)
}

// finish settles one attempt: success records and thinks, failure backs
// off and retries (re-routing on every retry, which is how a failover
// target is adopted).
func (c *client) finish(server int, ver uint64, serveAt time.Duration, err error) {
	now := c.a.Now()
	p := c.p
	cfg := &p.r.w.cfg
	if err != nil {
		if c.write {
			p.writesFailed++
		} else {
			p.readsFailed++
		}
		c.attempt++
		c.a.Sleep(c.backoff(), c.onIssue)
		return
	}
	c.attempt = 0
	p.latency.AddDuration(now - c.opStart)
	if c.write {
		p.writesOK++
	} else {
		p.readsOK++
		if server != p.r.index {
			p.remoteReads++
			if cfg.KillAt > 0 && now >= cfg.KillAt && p.firstFailover == 0 {
				p.firstFailover = now
			}
		}
		if cfg.RecordReads {
			p.recs = append(p.recs, readRec{served: server, name: c.name, ver: ver, at: serveAt})
		}
	}
	if now >= cfg.Horizon {
		c.a.Finish()
		return
	}
	c.a.Sleep(c.nextThink(), c.onIssue)
}

// backoff is the deterministic retry curve: 250ms·2^(attempt-1) capped at
// 2s, plus up to 100ms of client-stream jitter so a failed region's whole
// population does not retry in lockstep.
func (c *client) backoff() time.Duration {
	sh := c.attempt - 1
	if sh > 3 {
		sh = 3
	}
	base := 250 * time.Millisecond << sh
	jitter := time.Duration(c.rng.Float64() * float64(100*time.Millisecond))
	return base + jitter
}

// nextThink draws the closed-loop think time, modulated by the region's
// diurnal phase and the flash-crowd window.
func (c *client) nextThink() time.Duration {
	cfg := &c.p.r.w.cfg
	now := c.a.Now()
	rate := 1.0
	if cfg.DiurnalAmp > 0 {
		x := float64(now)/float64(cfg.DayLength) + c.phase
		rate += cfg.DiurnalAmp * math.Sin(2*math.Pi*x)
	}
	if cfg.FlashDur > 0 && c.p.r.index == cfg.FlashRegion &&
		now >= cfg.FlashStart && now < cfg.FlashStart+cfg.FlashDur {
		rate *= cfg.FlashBoost
	}
	if rate < 0.05 {
		rate = 0.05
	}
	return time.Duration(c.rng.ExpFloat64() * float64(cfg.MeanThink) / rate)
}
