package geo

import (
	"time"
)

// Policy selects how the global traffic manager maps a client population
// onto a serving region.
type Policy int

const (
	// PolicyNearest serves from the lowest-RTT healthy region (the home
	// region, when it is up — home RTT is always the minimum).
	PolicyNearest Policy = iota
	// PolicyFailover pins to the home region and walks the ring
	// home+1, home+2, … to the first healthy region when home is down.
	PolicyFailover
)

// Route is the pure routing function: given a policy, a client's home
// region, the current health vector and the RTT vector from home, it
// returns the serving region. It is total — every input, including an
// all-down health vector, yields a valid index — and its tie-break is
// deterministic (lowest index wins among equal-RTT healthy regions). With
// no healthy region it returns home: the request will fail fast there and
// the client's retry loop re-routes when health recovers.
func Route(p Policy, home int, healthy []bool, rtt []time.Duration) int {
	n := len(healthy)
	if n == 0 {
		return home
	}
	if home < 0 || home >= n {
		home = 0
	}
	if healthy[home] {
		return home
	}
	switch p {
	case PolicyFailover:
		for d := 1; d < n; d++ {
			j := (home + d) % n
			if healthy[j] {
				return j
			}
		}
	default: // PolicyNearest
		best, bestRTT := -1, time.Duration(0)
		for j := 0; j < n; j++ {
			if !healthy[j] {
				continue
			}
			r := time.Duration(0)
			if j < len(rtt) {
				r = rtt[j]
			}
			if best < 0 || r < bestRTT {
				best, bestRTT = j, r
			}
		}
		if best >= 0 {
			return best
		}
	}
	return home
}

// Router is one region's view of global health: heartbeat arrivals stamp
// lastHeard, silence past FailTimeout marks a region down, and a repaired
// region is held out of rotation for RepromoteHold after it is heard again
// (hysteresis — without it, routing would flap between home and the
// failover target while a repair settles).
type Router struct {
	r *region

	lastHeard []time.Duration
	everDown  []bool
	reviveAt  []time.Duration

	healthy []bool          // scratch, rebuilt per Pick
	rtt     []time.Duration // static RTT row from home

	picked   bool
	lastPick int
	flaps    int64
}

func newRouter(r *region) *Router {
	n := r.w.cfg.Regions
	rt := &Router{
		r:         r,
		lastHeard: make([]time.Duration, n),
		everDown:  make([]bool, n),
		reviveAt:  make([]time.Duration, n),
		healthy:   make([]bool, n),
		rtt:       make([]time.Duration, n),
	}
	for j := 0; j < n; j++ {
		rt.rtt[j] = 2 * r.w.oneWay(r.index, j)
	}
	return rt
}

// heard records a health probe from region src. A probe that breaks a
// silence longer than FailTimeout starts the hold-down clock.
func (rt *Router) heard(src int) {
	now := rt.r.eng().Now()
	if now-rt.lastHeard[src] > rt.r.w.cfg.FailTimeout {
		rt.everDown[src] = true
		rt.reviveAt[src] = now
	}
	rt.lastHeard[src] = now
}

// up reports whether region j is currently routable from this router's
// view. Initial lastHeard of zero gives every region a grace window of
// FailTimeout from the start of time, before the first probes land.
func (rt *Router) up(j int) bool {
	now := rt.r.eng().Now()
	if now-rt.lastHeard[j] > rt.r.w.cfg.FailTimeout {
		return false
	}
	if rt.everDown[j] && now-rt.reviveAt[j] < rt.r.w.cfg.RepromoteHold {
		return false
	}
	return true
}

// Pick routes one request from this region's population and counts target
// transitions (flaps). A healthy steady state never flaps; one region-kill
// plus repair costs exactly two transitions (home→failover at detection,
// failover→home after the hold-down).
func (rt *Router) Pick() int {
	for j := range rt.healthy {
		rt.healthy[j] = rt.up(j)
	}
	t := Route(rt.r.w.cfg.Policy, rt.r.index, rt.healthy, rt.rtt)
	if rt.picked && t != rt.lastPick {
		rt.flaps++
	}
	rt.picked = true
	rt.lastPick = t
	return t
}

// Flaps returns the number of routing-target transitions this router has
// made (the FalseKills-style regression quantity).
func (rt *Router) Flaps() int64 { return rt.flaps }
