// Package geo assembles N simulated Azure regions — each a full
// azure.Cloud on its own datacenter fabric — into one deterministic
// multi-datacenter world: long-haul trunk links join the regions, a
// geo-replicated blob container spans them (asynchronous replication with
// measurable lag; read-your-writes on the primary, eventual on
// secondaries), a heartbeat-driven global traffic manager routes
// per-region client populations with diurnal and flash-crowd arrival
// curves, and a chaos schedule can kill and repair a whole region to
// measure failover RTO/RPO.
//
// Execution is domain-sharded: the world always runs on a windowed
// sim.Domains group — one domain per region is the natural partition — and
// the trace is bit-identical at every domain count. Two mechanisms make
// that hold:
//
//   - Region state is disjoint. Each region owns its engine-local cloud,
//     RNG root (cfg.Seed + region·1_000_003), replica bookkeeping and
//     population, so a region's causal order never depends on which other
//     regions share its engine.
//
//   - Cross-region effects are canonicalized. All inter-region
//     communication goes through World.send, which stamps each message
//     with a per-(src,dst) sequence number and delivers it into the
//     destination's inbox at a window boundary; a per-region drain event
//     then sorts the boundary's arrivals by (source region, sequence) —
//     both domain-invariant quantities — before executing them. Arrival
//     boundaries are pure functions of the send instant and the window
//     size, so neither timing nor ordering can vary with the domain count.
package geo

import (
	"sort"
	"strconv"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/chaos"
	"azureobs/internal/fabric"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// ConsistencyMode selects what a population's reads demand.
type ConsistencyMode int

const (
	// ReadEventual serves reads from the client's home replica (or a
	// failover target's replica): cheap, local, possibly stale by the
	// replication lag.
	ReadEventual ConsistencyMode = iota
	// ReadPrimary serves every read from the primary replica —
	// read-your-writes, at the price of cross-region round trips for
	// clients homed elsewhere.
	ReadPrimary
)

// Config sizes and scripts a multi-region world. Zero-valued fields take
// DefaultConfig values.
type Config struct {
	Seed    uint64
	Regions int
	Domains int           // sim.Domains width, clamped to [1, Regions]
	Window  time.Duration // virtual-time window of the domain coordinator
	Horizon time.Duration // populations stop issuing at this virtual time

	// Population shape (per region).
	ClientsPerRegion int
	MeanThink        time.Duration
	WriteFrac        float64
	HotNames         int
	BlobBytes        int64
	ReadMode         ConsistencyMode
	Policy           Policy

	// Arrival-curve modulation: a diurnal sinusoid phase-shifted per
	// region plus an optional flash crowd multiplying one region's rate.
	DiurnalAmp  float64
	DayLength   time.Duration
	FlashRegion int
	FlashStart  time.Duration
	FlashDur    time.Duration // 0 disables the flash crowd
	FlashBoost  float64

	// Traffic manager: heartbeat probe period, the silence threshold that
	// marks a region down, and the hold-down before a repaired region is
	// routed to again (the anti-flap hysteresis).
	Heartbeat     time.Duration
	FailTimeout   time.Duration
	RepromoteHold time.Duration

	// Geography: long-haul trunk capacity and the one-way propagation
	// delay model BaseOneWay + HopOneWay·|i−j| (LocalProbe within a
	// region).
	TrunkBW    netsim.Bandwidth
	BaseOneWay time.Duration
	HopOneWay  time.Duration
	LocalProbe time.Duration

	// Per-region datacenter size.
	Hosts        int
	HostsPerRack int

	// Geo-replication: the primary region for the geo container.
	Primary int

	// Chaos schedule: KillAt > 0 kills KillRegion at that instant;
	// RepairAt > KillAt restores it.
	KillRegion int
	KillAt     time.Duration
	RepairAt   time.Duration

	// Observability: RecordReads keeps per-read records for the
	// consistency checker and stale-fraction accounting; LagSamples keeps
	// raw replication-lag samples for quantiles. Both off is the cheap
	// benchmarking mode.
	RecordReads bool
	LagSamples  bool
}

// DefaultConfig returns the calibrated small-world default: four regions
// at validation scale.
func DefaultConfig() Config {
	return Config{
		Seed:             42,
		Regions:          4,
		Domains:          1,
		Window:           20 * time.Millisecond,
		Horizon:          120 * time.Second,
		ClientsPerRegion: 48,
		MeanThink:        2 * time.Second,
		WriteFrac:        0.1,
		HotNames:         16,
		BlobBytes:        256 << 10,
		DiurnalAmp:       0.6,
		DayLength:        240 * time.Second,
		FlashBoost:       4,
		Heartbeat:        2 * time.Second,
		FailTimeout:      5 * time.Second,
		RepromoteHold:    6 * time.Second,
		TrunkBW:          250 * netsim.MBps,
		BaseOneWay:       30 * time.Millisecond,
		HopOneWay:        25 * time.Millisecond,
		LocalProbe:       2 * time.Millisecond,
		Hosts:            32,
		HostsPerRack:     8,
	}
}

func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.Regions == 0 {
		cfg.Regions = def.Regions
	}
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = def.Horizon
	}
	if cfg.ClientsPerRegion == 0 {
		cfg.ClientsPerRegion = def.ClientsPerRegion
	}
	if cfg.MeanThink == 0 {
		cfg.MeanThink = def.MeanThink
	}
	if cfg.WriteFrac == 0 {
		cfg.WriteFrac = def.WriteFrac
	}
	if cfg.HotNames == 0 {
		cfg.HotNames = def.HotNames
	}
	if cfg.BlobBytes == 0 {
		cfg.BlobBytes = def.BlobBytes
	}
	if cfg.DayLength == 0 {
		cfg.DayLength = def.DayLength
	}
	if cfg.FlashBoost == 0 {
		cfg.FlashBoost = def.FlashBoost
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = def.Heartbeat
	}
	if cfg.FailTimeout == 0 {
		cfg.FailTimeout = def.FailTimeout
	}
	if cfg.RepromoteHold == 0 {
		cfg.RepromoteHold = def.RepromoteHold
	}
	if cfg.TrunkBW == 0 {
		cfg.TrunkBW = def.TrunkBW
	}
	if cfg.BaseOneWay == 0 {
		cfg.BaseOneWay = def.BaseOneWay
	}
	if cfg.HopOneWay == 0 {
		cfg.HopOneWay = def.HopOneWay
	}
	if cfg.LocalProbe == 0 {
		cfg.LocalProbe = def.LocalProbe
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = def.Hosts
	}
	if cfg.HostsPerRack == 0 {
		cfg.HostsPerRack = def.HostsPerRack
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	if cfg.Domains > cfg.Regions {
		cfg.Domains = cfg.Regions
	}
	return cfg
}

// Container is the geo-replicated blob container every region carries.
const Container = "geo"

// message is one canonicalized cross-region delivery.
type message struct {
	src int
	seq uint64
	fn  func()
}

// World is a running multi-region simulation.
type World struct {
	cfg     Config
	group   *sim.Domains
	regions []*region
	store   *geoStore
	names   []string
	ran     bool

	// requestedDomains is the pre-clamp Config.Domains ask; withDefaults
	// cuts it to the region count (a domain with no region would idle every
	// round), and Stats surfaces the difference rather than hiding it.
	requestedDomains int
}

// region is one datacenter plus everything homed in it. All of its fields
// are mutated only from its own engine's context once the world runs.
type region struct {
	w     *World
	index int
	cloud *azure.Cloud
	lh    *fabric.LongHaul
	rng   *simrand.RNG

	router *Router
	gw     *gateway
	pumps  []*pump // primary region only: one per secondary, nil at self
	pop    *population

	down    bool
	deadVMs int

	outSeq     []uint64 // per-destination cross-region sequence numbers
	inbox      []message
	drainArmed bool
	drainFn    func()
}

func (r *region) eng() *sim.Engine { return r.cloud.Engine }

// NewWorld builds the regions, trunks, replicas, routers, populations and
// chaos schedule. Call Run once to execute to drain.
func NewWorld(cfg Config) *World {
	requested := cfg.Domains
	cfg = cfg.withDefaults()
	if requested < 1 {
		requested = cfg.Domains // defaulted, not clamped
	}
	w := &World{cfg: cfg, requestedDomains: requested}
	w.group = sim.NewDomains(cfg.Domains)
	w.group.SetWindow(cfg.Window)

	w.names = make([]string, cfg.HotNames)
	for k := range w.names {
		w.names[k] = "obj-" + strconv.Itoa(k)
	}

	w.regions = make([]*region, cfg.Regions)
	for i := range w.regions {
		ccfg := azure.Config{
			Seed: cfg.Seed + uint64(i)*1_000_003,
			Fabric: fabric.Config{
				Hosts:        cfg.Hosts,
				HostsPerRack: cfg.HostsPerRack,
				Degradation:  false,
			},
		}
		cloud := azure.NewCloudOn(w.group.Domain(i%cfg.Domains), ccfg)
		r := &region{
			w:      w,
			index:  i,
			cloud:  cloud,
			rng:    simrand.New(cfg.Seed + 7_777_777).ForkN("georegion", i),
			outSeq: make([]uint64, cfg.Regions),
		}
		r.lh = fabric.NewLongHaul(cloud.DC, i, w.oneWayRow(i), cfg.TrunkBW)
		r.drainFn = r.drainInbox
		w.regions[i] = r
	}

	w.store = newGeoStore(w, cfg.Primary)
	for _, r := range w.regions {
		r.router = newRouter(r)
		r.gw = newGateway(r)
		r.pop = newPopulation(r)
		r.scheduleHeartbeat(1)
	}

	if cfg.KillAt > 0 {
		kr := w.regions[cfg.KillRegion]
		kr.eng().Schedule(cfg.KillAt, func() { w.kill(cfg.KillRegion) })
		if cfg.RepairAt > cfg.KillAt {
			kr.eng().Schedule(cfg.RepairAt, func() { w.repair(cfg.KillRegion) })
		}
	}
	return w
}

// Run executes the world to drain and returns the coordinator stats.
func (w *World) Run() sim.DomainStats {
	if w.ran {
		panic("geo: World.Run called twice")
	}
	w.ran = true
	w.group.Run()
	return w.Stats()
}

// Stats returns the coordinator stats (valid after Run), with Requested
// carrying the pre-clamp Config.Domains ask.
func (w *World) Stats() sim.DomainStats {
	s := w.group.Stats()
	s.Requested = w.requestedDomains
	return s
}

// RequestedDomains returns the Config.Domains ask before the region-count
// clamp; EffectiveDomains the width the world actually runs at.
func (w *World) RequestedDomains() int { return w.requestedDomains }

// EffectiveDomains returns the clamped domain width.
func (w *World) EffectiveDomains() int { return w.cfg.Domains }

// EventsFired sums fired events across all member engines.
func (w *World) EventsFired() uint64 { return w.group.EventsFired() }

// Now returns the maximum member virtual clock.
func (w *World) Now() time.Duration { return w.group.Now() }

// MailDelivered returns the cross-domain mail count (domain-count
// dependent; excluded from trace hashes).
func (w *World) MailDelivered() uint64 { return w.group.MailDelivered() }

// oneWayRow builds region i's propagation-delay row: LocalProbe at self,
// BaseOneWay + HopOneWay·distance elsewhere.
func (w *World) oneWayRow(i int) []time.Duration {
	row := make([]time.Duration, w.cfg.Regions)
	for j := range row {
		row[j] = w.oneWay(i, j)
	}
	return row
}

func (w *World) oneWay(i, j int) time.Duration {
	if i == j {
		return w.cfg.LocalProbe
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	return w.cfg.BaseOneWay + time.Duration(d)*w.cfg.HopOneWay
}

// send delivers fn into region dst at the first window boundary after
// now+delay on src's clock. The arrival boundary is a pure function of the
// send instant and the window size; the (src, seq) stamp fixes the
// execution order among same-boundary arrivals. Must run in src's engine
// context.
func (w *World) send(src, dst int, delay time.Duration, fn func()) {
	r := w.regions[src]
	eng := r.eng()
	m := message{src: src, seq: r.outSeq[dst], fn: fn}
	r.outSeq[dst]++
	dd := dst % w.cfg.Domains
	eng.Schedule(eng.Now()+delay, func() {
		eng.Send(dd, func() { w.regions[dst].enqueue(m) })
	})
}

// enqueue buffers a boundary arrival and arms the region's drain at the
// current instant. All of a boundary's mail callbacks run before the drain
// (the drain event is scheduled later at the same timestamp), so the drain
// sees the complete arrival set and can sort it canonically.
func (r *region) enqueue(m message) {
	r.inbox = append(r.inbox, m)
	if !r.drainArmed {
		r.drainArmed = true
		eng := r.eng()
		eng.Schedule(eng.Now(), r.drainFn)
	}
}

// drainInbox executes one boundary's arrivals in (source region, sequence)
// order — a total order independent of the domain count.
func (r *region) drainInbox() {
	r.drainArmed = false
	msgs := r.inbox
	r.inbox = nil
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].seq < msgs[j].seq
	})
	for _, m := range msgs {
		m.fn()
	}
}

// scheduleHeartbeat arms the k-th health-probe tick. Ticks are foreground
// events on the absolute grid k·Heartbeat, gated by the horizon, so every
// region beats the same number of times regardless of how long its
// engine-mates keep their shared engine busy.
func (r *region) scheduleHeartbeat(k int64) {
	at := time.Duration(k) * r.w.cfg.Heartbeat
	if at > r.w.cfg.Horizon {
		return
	}
	r.eng().Schedule(at, func() {
		r.beat()
		r.scheduleHeartbeat(k + 1)
	})
}

// beat sends one health probe to every region (including a loopback probe
// to self, so a region's own router tracks local health uniformly). A down
// region stops beating, which is exactly what its peers' routers detect.
func (r *region) beat() {
	if r.down {
		return
	}
	src := r.index
	for dst := range r.w.regions {
		target := r.w.regions[dst]
		r.w.send(src, dst, r.w.oneWay(src, dst), func() {
			target.router.heard(src)
		})
	}
}

// kill takes region i down: every host crashes, storage goes dark, pumps
// and heartbeats stall. Runs in region i's engine context at cfg.KillAt.
func (w *World) kill(i int) {
	r := w.regions[i]
	r.down = true
	r.deadVMs = chaos.KillRegion(r.cloud)
}

// repair restores region i: hosts reboot, outages lift, buffered
// replication applies, and the region's own replication pumps (when it is
// the primary) resume draining their backlog.
func (w *World) repair(i int) {
	r := w.regions[i]
	chaos.RestoreRegion(r.cloud)
	r.down = false
	w.store.replicas[i].applyPending(r)
	for _, p := range r.pumps {
		if p != nil {
			p.kick()
		}
	}
}
