package geo

import (
	"fmt"
	"testing"
	"time"
)

// testConfig is the shared small-world shape: 4 regions, short horizon,
// read recording on for the checkers.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ClientsPerRegion = 24
	cfg.Horizon = 60 * time.Second
	cfg.HotNames = 8
	cfg.RecordReads = true
	return cfg
}

// TestWorldRuns is the basic smoke: the world drains, every population
// makes progress, replication reaches every secondary and lag is positive.
func TestWorldRuns(t *testing.T) {
	w := NewWorld(testConfig())
	w.Run()
	rep := w.Report()
	if rep.ReadsOK == 0 || rep.WritesOK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Commits == 0 {
		t.Fatalf("no commits")
	}
	if got, want := rep.Applies, rep.Commits*int64(rep.Regions-1); got != want {
		t.Fatalf("fault-free replication incomplete: %d applies, want %d", got, want)
	}
	if rep.LagMeanSec <= 0 {
		t.Fatalf("replication lag not measured: %+v", rep)
	}
	if rep.TotalFlaps != 0 {
		t.Fatalf("healthy steady state flapped %d times", rep.TotalFlaps)
	}
}

// TestWorldDomainEquivalence pins the tentpole determinism claim at the
// package level: the full report is identical at every domain count.
func TestWorldDomainEquivalence(t *testing.T) {
	base := ""
	for _, d := range []int{1, 2, 4} {
		cfg := testConfig()
		cfg.Domains = d
		cfg.LagSamples = true
		w := NewWorld(cfg)
		w.Run()
		enc := fmt.Sprintf("%+v", w.Report())
		if d == 1 {
			base = enc
			continue
		}
		if enc != base {
			t.Fatalf("domains=%d diverged:\n%s\nwant:\n%s", d, enc, base)
		}
	}
}
