package geo

import (
	"fmt"
	"testing"
	"time"
)

// testConfig is the shared small-world shape: 4 regions, short horizon,
// read recording on for the checkers.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ClientsPerRegion = 24
	cfg.Horizon = 60 * time.Second
	cfg.HotNames = 8
	cfg.RecordReads = true
	return cfg
}

// TestWorldRuns is the basic smoke: the world drains, every population
// makes progress, replication reaches every secondary and lag is positive.
func TestWorldRuns(t *testing.T) {
	w := NewWorld(testConfig())
	w.Run()
	rep := w.Report()
	if rep.ReadsOK == 0 || rep.WritesOK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Commits == 0 {
		t.Fatalf("no commits")
	}
	if got, want := rep.Applies, rep.Commits*int64(rep.Regions-1); got != want {
		t.Fatalf("fault-free replication incomplete: %d applies, want %d", got, want)
	}
	if rep.LagMeanSec <= 0 {
		t.Fatalf("replication lag not measured: %+v", rep)
	}
	if rep.TotalFlaps != 0 {
		t.Fatalf("healthy steady state flapped %d times", rep.TotalFlaps)
	}
}

// TestWorldDomainEquivalence pins the tentpole determinism claim at the
// package level: the full report is identical at every domain count.
func TestWorldDomainEquivalence(t *testing.T) {
	base := ""
	for _, d := range []int{1, 2, 4} {
		cfg := testConfig()
		cfg.Domains = d
		cfg.LagSamples = true
		w := NewWorld(cfg)
		w.Run()
		enc := fmt.Sprintf("%+v", w.Report())
		if d == 1 {
			base = enc
			continue
		}
		if enc != base {
			t.Fatalf("domains=%d diverged:\n%s\nwant:\n%s", d, enc, base)
		}
	}
}

// TestDomainClampSurfaced pins the no-silent-caps contract: asking for more
// domains than regions runs clamped, and the clamp is visible in the
// accessors and in DomainStats.Requested rather than disappearing.
func TestDomainClampSurfaced(t *testing.T) {
	cfg := testConfig()
	cfg.Domains = 16 // testConfig has 4 regions
	cfg.ClientsPerRegion = 4
	cfg.Horizon = 5 * time.Second
	w := NewWorld(cfg)
	if got := w.RequestedDomains(); got != 16 {
		t.Errorf("RequestedDomains = %d, want 16", got)
	}
	if got := w.EffectiveDomains(); got != 4 {
		t.Errorf("EffectiveDomains = %d, want 4 (region count)", got)
	}
	w.Run()
	st := w.Stats()
	if st.Domains != 4 || st.Requested != 16 {
		t.Errorf("Stats = {Domains: %d, Requested: %d}, want {4, 16}", st.Domains, st.Requested)
	}

	// An unclamped ask reports Requested == Domains: no false alarms.
	cfg2 := testConfig()
	cfg2.Domains = 2
	cfg2.ClientsPerRegion = 4
	cfg2.Horizon = 5 * time.Second
	w2 := NewWorld(cfg2)
	w2.Run()
	if st := w2.Stats(); st.Domains != 2 || st.Requested != 2 {
		t.Errorf("unclamped Stats = {Domains: %d, Requested: %d}, want {2, 2}", st.Domains, st.Requested)
	}
}
