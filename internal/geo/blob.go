package geo

import (
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/storage/blobsvc"
)

// The geo-replication protocol, in one paragraph: all writes commit at the
// single primary region, which assigns a global, monotonically increasing
// version and appends a commit record to its log. One replication pump per
// secondary then streams committed records out asynchronously — each
// record's payload crosses the primary's long-haul trunk (contending with
// every other flow on that fabric), rides the one-way propagation delay,
// and applies at the secondary in strict version order (a single-source
// FIFO, so every secondary's state is always some prefix of the primary's
// log). Replication lag is the apply instant minus the commit instant —
// the quantity the fig8geo experiments measure — and a region's visible
// version for a name is what its local reads serve, which is what makes
// eventual staleness and read-your-writes observable, checkable
// quantities.

// commitRec is one committed write in the primary's log. Version is
// 1-based; index Version-1 addresses the log slice.
type commitRec struct {
	Version uint64
	Name    int // hot-name index
	Size    int64
	Commit  time.Duration
}

// geoStore is the world-spanning geo-replicated container: the primary's
// commit log plus one replica bookkeeping block per region. The log and
// version counter are owned by the primary region's engine; each replica
// block is owned by its region's engine; the post-run report reads it all
// single-threaded.
type geoStore struct {
	w        *World
	primary  int
	nextVer  uint64
	commits  []commitRec
	replicas []*replicaState
}

// replicaState is one region's view of the geo container.
type replicaState struct {
	region  int
	vals    []uint64   // per hot name: latest locally visible version
	applyAt []time.Duration // applyAt[v-1] = when version v became visible here
	pending []commitRec
	applies int64
	lag     metrics.Summary
	lagS    *metrics.Sample
}

func newGeoStore(w *World, primary int) *geoStore {
	st := &geoStore{w: w, primary: primary}
	st.replicas = make([]*replicaState, w.cfg.Regions)
	for i, r := range w.regions {
		rs := &replicaState{region: i, vals: make([]uint64, w.cfg.HotNames)}
		if w.cfg.LagSamples && i != primary {
			rs.lagS = metrics.NewSample(4096)
		}
		st.replicas[i] = rs
		// Every region carries version 0 of every hot name from the start,
		// so no read path ever sees NotFound.
		for _, name := range w.names {
			r.cloud.Blob.Seed(Container, name, w.cfg.BlobBytes)
		}
	}
	pr := w.regions[primary]
	pr.pumps = make([]*pump, w.cfg.Regions)
	for i := range w.regions {
		if i == primary {
			continue
		}
		pr.pumps[i] = newPump(pr, i)
	}
	return st
}

// commit assigns the next version at the primary, applies it locally
// (read-your-writes: a primary read after the ack always sees it) and
// hands it to every replication pump. Must run in the primary's engine
// context; callers are the primary's own clients and the primary gateway
// serving forwarded writes.
func (st *geoStore) commit(name int, size int64) commitRec {
	pr := st.w.regions[st.primary]
	st.nextVer++
	rec := commitRec{Version: st.nextVer, Name: name, Size: size, Commit: pr.eng().Now()}
	st.commits = append(st.commits, rec)
	rs := st.replicas[st.primary]
	rs.vals[name] = rec.Version
	rs.applyAt = append(rs.applyAt, rec.Commit)
	for _, p := range pr.pumps {
		if p != nil {
			p.enqueue(rec)
		}
	}
	return rec
}

// applyCommit makes one replicated version visible at a secondary. While
// the region is down the record is buffered — durable storage survives the
// outage, but a dark region serves nothing and its apply instant is the
// repair instant. Runs in the secondary's engine context (inside a drain).
func (r *region) applyCommit(rec commitRec) {
	rs := r.w.store.replicas[r.index]
	if r.down {
		rs.pending = append(rs.pending, rec)
		return
	}
	rs.applyOne(r, rec)
}

func (rs *replicaState) applyOne(r *region, rec commitRec) {
	now := r.eng().Now()
	if rec.Version > rs.vals[rec.Name] {
		rs.vals[rec.Name] = rec.Version
	}
	rs.applyAt = append(rs.applyAt, now)
	rs.applies++
	lag := now - rec.Commit
	rs.lag.AddDuration(lag)
	if rs.lagS != nil {
		rs.lagS.AddDuration(lag)
	}
	// Hot-set sizes are constant, so the local blob copy normally already
	// matches and Apply is a no-op.
	r.cloud.Blob.Apply(Container, r.w.names[rec.Name], rec.Size)
}

// applyPending drains the records buffered during an outage, in version
// order (they arrived in order and were buffered in order).
func (rs *replicaState) applyPending(r *region) {
	pend := rs.pending
	rs.pending = nil
	for _, rec := range pend {
		rs.applyOne(r, rec)
	}
}

// pump streams the primary's commit log toward one secondary: an actor
// that, for each queued record, pushes the payload through the primary's
// long-haul trunk (capacity-shared with all other primary egress) and then
// schedules the apply after the one-way propagation delay. A region kill
// freezes the pump mid-queue — the unsent suffix is the RPO exposure — and
// repair resumes it.
type pump struct {
	r    *region // the primary region
	dst  int
	a    sim.Actor
	q    []commitRec
	head int
	busy bool
	cur  commitRec

	onStep func()
	onSent func()
}

func newPump(pr *region, dst int) *pump {
	p := &pump{r: pr, dst: dst}
	p.a.Bind(pr.eng(), "geo-pump")
	p.onStep = p.step
	p.onSent = p.sent
	return p
}

func (p *pump) enqueue(rec commitRec) {
	p.q = append(p.q, rec)
	if !p.busy && !p.r.down {
		p.busy = true
		p.a.Go(p.onStep)
	}
}

// kick resumes a pump stalled by an outage.
func (p *pump) kick() {
	if !p.busy && p.head < len(p.q) {
		p.busy = true
		p.a.Go(p.onStep)
	}
}

func (p *pump) step() {
	if p.r.down {
		p.busy = false
		p.a.Finish()
		return
	}
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
		p.busy = false
		p.a.Finish()
		return
	}
	p.cur = p.q[p.head]
	p.r.cloud.DC.Net().TransferFlat(&p.a, p.cur.Size, p.onSent, p.r.lh.Trunk(p.dst))
}

func (p *pump) sent() {
	if p.r.down {
		// The region died mid-transfer; the record stays queued and the
		// bytes are resent after repair.
		p.busy = false
		p.a.Finish()
		return
	}
	rec := p.cur
	p.head++
	dst := p.dst
	w := p.r.w
	w.send(p.r.index, dst, w.oneWay(p.r.index, dst), func() {
		w.regions[dst].applyCommit(rec)
	})
	p.step()
}

// gateway serves cross-region requests arriving at a region: forwarded
// writes landing at the primary, and remote reads from populations that
// failed over (eventual mode) or are homed elsewhere (read-your-writes
// mode). Each in-flight request holds a pooled remoteOp — an actor with
// its own blob session — so concurrent remote requests contend on the
// region's storage like any local client would.
type gateway struct {
	r    *region
	free []*remoteOp
	made int
}

func newGateway(r *region) *gateway { return &gateway{r: r} }

// remoteOp is one cross-region request being served.
type remoteOp struct {
	gw   *gateway
	a    sim.Actor
	sess *blobsvc.Session

	cl    *client
	write bool
	name  int
	size  int64
	from  int

	ver     uint64
	serveAt time.Duration
	err     error

	onStart func()
	onBlob  func(int64, error)
	onTrunk func()
}

func (g *gateway) acquire() *remoteOp {
	if n := len(g.free); n > 0 {
		op := g.free[n-1]
		g.free = g.free[:n-1]
		return op
	}
	op := &remoteOp{gw: g}
	op.a.Bind(g.r.eng(), "geo-gw")
	// Gateway session ids live far above the client id range so their
	// random streams never collide with local populations.
	op.sess = g.r.cloud.Blob.NewSession(1_000_000 + g.made)
	g.made++
	op.onStart = op.start
	op.onBlob = op.blobDone
	op.onTrunk = op.trunkDone
	return op
}

// handle admits one forwarded request. Runs in this region's engine
// context (inside a drain).
func (g *gateway) handle(cl *client, write bool, name int, size int64, from int) {
	op := g.acquire()
	op.cl, op.write, op.name, op.size, op.from = cl, write, name, size, from
	op.ver, op.serveAt, op.err = 0, 0, nil
	op.a.Go(op.onStart)
}

func (op *remoteOp) start() {
	r := op.gw.r
	if op.write {
		op.sess.PutFlat(&op.a, Container, r.w.names[op.name], op.size, true, op.onBlob)
		return
	}
	// The version snapshot is the read's linearization point: taken here,
	// at the serving replica, before the timed download.
	rs := r.w.store.replicas[r.index]
	op.ver = rs.vals[op.name]
	op.serveAt = op.a.Now()
	op.sess.GetFlat(&op.a, Container, r.w.names[op.name], op.onBlob)
}

func (op *remoteOp) blobDone(size int64, err error) {
	if err != nil {
		op.err = err
		op.respond()
		return
	}
	r := op.gw.r
	if op.write {
		rec := r.w.store.commit(op.name, op.size)
		op.ver = rec.Version
		op.serveAt = rec.Commit
		op.respond()
		return
	}
	// Ship the payload home across this region's long-haul trunk.
	r.cloud.DC.Net().TransferFlat(&op.a, size, op.onTrunk, r.lh.Trunk(op.from))
}

func (op *remoteOp) trunkDone() { op.respond() }

func (op *remoteOp) respond() {
	r := op.gw.r
	cl, server, ver, serveAt, err := op.cl, r.index, op.ver, op.serveAt, op.err
	r.w.send(server, op.from, r.w.oneWay(server, op.from), func() {
		cl.remoteDone(server, ver, serveAt, err)
	})
	op.cl = nil
	op.err = nil
	g := op.gw
	op.a.Finish()
	g.free = append(g.free, op)
}
