package geo

import (
	"testing"
	"time"
)

func TestRouteHomeWhenHealthy(t *testing.T) {
	healthy := []bool{true, true, true, true}
	rtt := []time.Duration{100, 10, 20, 30}
	for _, p := range []Policy{PolicyNearest, PolicyFailover} {
		// Home wins while healthy even when another region has lower RTT:
		// home RTT is the model minimum in the world, but Route itself must
		// not betray the pin.
		if got := Route(p, 0, healthy, rtt); got != 0 {
			t.Fatalf("policy %v: healthy home not chosen, got %d", p, got)
		}
	}
}

func TestRouteFailoverRing(t *testing.T) {
	healthy := []bool{false, false, true, true}
	if got := Route(PolicyFailover, 0, healthy, nil); got != 2 {
		t.Fatalf("failover from 0 with {2,3} healthy: got %d, want 2 (ring order)", got)
	}
	if got := Route(PolicyFailover, 3, []bool{true, false, false, false}, nil); got != 0 {
		t.Fatalf("failover wraps the ring: got %d, want 0", got)
	}
}

func TestRouteNearestTieBreak(t *testing.T) {
	healthy := []bool{false, true, true, true}
	rtt := []time.Duration{0, 50, 50, 50}
	// Equal RTTs: the lowest index must win, deterministically.
	if got := Route(PolicyNearest, 0, healthy, rtt); got != 1 {
		t.Fatalf("tie-break: got %d, want 1", got)
	}
	rtt[2] = 40
	if got := Route(PolicyNearest, 0, healthy, rtt); got != 2 {
		t.Fatalf("nearest: got %d, want 2", got)
	}
}

func TestRouteTotalAllDown(t *testing.T) {
	healthy := []bool{false, false, false}
	for _, p := range []Policy{PolicyNearest, PolicyFailover} {
		if got := Route(p, 1, healthy, nil); got != 1 {
			t.Fatalf("all-down must return home: got %d", got)
		}
	}
	if got := Route(PolicyNearest, 0, nil, nil); got != 0 {
		t.Fatalf("empty health vector must return home: got %d", got)
	}
}

// FuzzGeoRoute fuzzes policy totality over arbitrary health/latency
// vectors: Route must always return a valid region, never route to a down
// region while any healthy one exists, respect the home pin, and
// tie-break deterministically.
func FuzzGeoRoute(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(4), uint16(0b1111), uint32(30), uint32(25))
	f.Add(uint8(1), uint8(3), uint8(4), uint16(0b0001), uint32(30), uint32(0))
	f.Add(uint8(0), uint8(2), uint8(7), uint16(0), uint32(5), uint32(1))
	f.Fuzz(func(t *testing.T, pol, home, n uint8, healthMask uint16, base, hop uint32) {
		regions := 1 + int(n%16)
		p := Policy(pol % 2)
		h := int(home) % regions
		healthy := make([]bool, regions)
		anyHealthy := false
		for j := range healthy {
			healthy[j] = healthMask>>j&1 == 1
			anyHealthy = anyHealthy || healthy[j]
		}
		rtt := make([]time.Duration, regions)
		for j := range rtt {
			rtt[j] = time.Duration(base+uint32(j)*hop) * time.Microsecond
		}

		got := Route(p, h, healthy, rtt)
		if got < 0 || got >= regions {
			t.Fatalf("Route(%v,%d,%v) = %d out of range", p, h, healthy, got)
		}
		if got2 := Route(p, h, healthy, rtt); got2 != got {
			t.Fatalf("nondeterministic: %d then %d", got, got2)
		}
		if anyHealthy && !healthy[got] {
			t.Fatalf("routed to down region %d with healthy regions in %v", got, healthy)
		}
		if !anyHealthy && got != h {
			t.Fatalf("all-down must return home %d, got %d", h, got)
		}
		if healthy[h] && got != h {
			t.Fatalf("healthy home %d not honored, got %d", h, got)
		}
		if anyHealthy && !healthy[h] {
			switch p {
			case PolicyFailover:
				// First healthy region in ring order from home.
				for d := 1; d < regions; d++ {
					j := (h + d) % regions
					if healthy[j] {
						if got != j {
							t.Fatalf("failover ring: got %d, want %d", got, j)
						}
						break
					}
				}
			case PolicyNearest:
				// Minimal (rtt, index) among healthy regions.
				for j := 0; j < regions; j++ {
					if !healthy[j] {
						continue
					}
					if rtt[j] < rtt[got] || (rtt[j] == rtt[got] && j < got) {
						t.Fatalf("nearest: got %d (rtt %v), but %d (rtt %v) is better",
							got, rtt[got], j, rtt[j])
					}
				}
			}
		}
	})
}
