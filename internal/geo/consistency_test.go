package geo

import (
	"testing"
	"time"

	"azureobs/internal/storage/reqpath"
)

// The consistency property tests drive the linearizability-style checker
// (World.CheckConsistency) across fault-free and brownout schedules, in
// both consistency modes: read-your-writes must never observe a stale blob
// on the primary, and every secondary read must be explainable by that
// replica's applied prefix at the serve instant.

func TestConsistencyFaultFree(t *testing.T) {
	for name, mode := range map[string]ConsistencyMode{
		"eventual": ReadEventual,
		"primary":  ReadPrimary,
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.ReadMode = mode
			w := NewWorld(cfg)
			w.Run()
			rep := w.Report()
			if err := w.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if mode == ReadPrimary {
				if rep.StaleReads != 0 {
					t.Fatalf("read-your-writes mode served %d stale reads", rep.StaleReads)
				}
				if rep.RemoteReads == 0 {
					t.Fatalf("read-your-writes mode never crossed regions — the primary pin is not exercised")
				}
			} else {
				if rep.StaleReads == 0 {
					t.Fatalf("eventual mode saw no stale reads at all — replication lag is not observable")
				}
			}
		})
	}
}

// TestConsistencyBrownout throttles one secondary's blob service through a
// brownout window: requests fail and retry, but every read that does
// succeed must still be exactly explainable.
func TestConsistencyBrownout(t *testing.T) {
	cfg := testConfig()
	w := NewWorld(cfg)
	r := w.regions[2]
	r.eng().Schedule(20*time.Second, func() {
		r.cloud.StoragePipeline("blob").SetOutage(reqpath.OutageBrownout)
	})
	r.eng().Schedule(35*time.Second, func() {
		r.cloud.StoragePipeline("blob").SetOutage(reqpath.OutageNone)
	})
	w.Run()
	rep := w.Report()
	if rep.ReadsFailed == 0 {
		t.Fatalf("brownout injected but nothing failed: %+v", rep)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The brownout throttles serving, not replication: the log still fully
	// replicates by drain.
	if got, want := rep.Applies, rep.Commits*int64(rep.Regions-1); got != want {
		t.Fatalf("replication incomplete under brownout: %d applies, want %d", got, want)
	}
}
