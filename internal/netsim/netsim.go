// Package netsim models the datacenter network as a fluid, flow-level
// system: transfers are flows traversing a path of links, and the rate of
// every active flow is the progressive-filling max-min fair allocation over
// link capacities. When the flow set changes, rates are recomputed and every
// flow's completion event is rescheduled.
//
// Links may carry a concurrency-dependent effective capacity
// (SetCapacityFn), which is how the calibrated "black box" overheads of the
// paper's storage front-ends are expressed: the paper measured aggregate
// service bandwidth that grows sub-linearly and eventually peaks as client
// count rises, without being able to attribute the loss to any internal
// component (Section 3.1).
package netsim

import (
	"fmt"
	"math"
	"time"

	"azureobs/internal/sim"
)

// Bandwidth is expressed in bytes per second. The paper reports MB/s with
// decimal megabytes (1 Gbit/s Ethernet ≙ 125 MB/s), so MBps = 1e6 B/s.
type Bandwidth float64

// Common bandwidth units.
const (
	Bps  Bandwidth = 1
	KBps           = 1000 * Bps
	MBps           = 1000 * KBps
	GBps           = 1000 * MBps
)

// MB is a convenience for sizing transfers in decimal megabytes.
const MB int64 = 1_000_000

// GB is a convenience for sizing transfers in decimal gigabytes.
const GB int64 = 1_000_000_000

// Link is one capacity-constrained network segment: a VM NIC, a storage
// front-end's egress trunk, a rack uplink.
type Link struct {
	name  string
	cap   Bandwidth
	capFn func(nflows int) Bandwidth

	nflows int // active flows crossing this link
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's nominal capacity.
func (l *Link) Capacity() Bandwidth { return l.cap }

// Flows returns the number of active flows crossing the link.
func (l *Link) Flows() int { return l.nflows }

// SetCapacityFn installs a concurrency-dependent effective capacity. When
// set, it overrides the nominal capacity whenever at least one flow is
// active. Effective capacity must be positive for every n ≥ 1.
func (l *Link) SetCapacityFn(fn func(nflows int) Bandwidth) { l.capFn = fn }

// effectiveCap returns the capacity available to n concurrent flows.
func (l *Link) effectiveCap(n int) Bandwidth {
	if l.capFn != nil {
		return l.capFn(n)
	}
	return l.cap
}

// Flow is one active transfer.
type Flow struct {
	path      []*Link
	remaining float64 // bytes
	rate      float64 // bytes/sec, assigned by the solver
	updated   time.Duration
	completed bool
	done      sim.Signal
	complete  *sim.Event
}

// Rate returns the flow's current max-min fair rate in bytes/sec.
func (f *Flow) Rate() Bandwidth { return Bandwidth(f.rate) }

// Remaining returns the bytes not yet delivered (as of the last settle).
func (f *Flow) Remaining() float64 { return f.remaining }

// Fabric owns the links and active flows of one simulated network and keeps
// the max-min allocation current as flows come and go.
type Fabric struct {
	eng   *sim.Engine
	flows []*Flow
}

// NewFabric creates an empty network bound to the engine.
func NewFabric(eng *sim.Engine) *Fabric {
	return &Fabric{eng: eng}
}

// NewLink creates a link with the given nominal capacity (> 0).
func (f *Fabric) NewLink(name string, capacity Bandwidth) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity %v", name, capacity))
	}
	return &Link{name: name, cap: capacity}
}

// ActiveFlows returns the number of in-flight flows.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// Transfer moves size bytes across the given path, blocking the calling
// process until the last byte arrives, and returns the elapsed virtual time.
// A killed process abandons the transfer; the flow is withdrawn and the
// bandwidth it held is redistributed.
func (f *Fabric) Transfer(p *sim.Proc, size int64, path ...*Link) time.Duration {
	if size <= 0 {
		return 0
	}
	start := p.Now()
	fl := f.StartFlow(size, path...)
	defer func() {
		if rec := recover(); rec != nil {
			f.abandon(fl)
			panic(rec)
		}
	}()
	fl.done.Wait(p)
	return p.Now() - start
}

// StartFlow injects a flow without blocking. The returned flow's done signal
// fires on completion. Most callers want Transfer; StartFlow exists for
// event-driven users and tests.
func (f *Fabric) StartFlow(size int64, path ...*Link) *Flow {
	if len(path) == 0 {
		panic("netsim: flow with empty path")
	}
	fl := &Flow{path: path, remaining: float64(size), updated: f.eng.Now()}
	f.settle()
	f.flows = append(f.flows, fl)
	for _, l := range path {
		l.nflows++
	}
	f.reallocate()
	return fl
}

// abandon withdraws an incomplete flow (killed sender).
func (f *Fabric) abandon(fl *Flow) {
	if fl.completed {
		return
	}
	f.settle()
	f.remove(fl)
	f.reallocate()
}

func (f *Fabric) remove(fl *Flow) {
	fl.completed = true
	if fl.complete != nil {
		f.eng.Cancel(fl.complete)
		fl.complete = nil
	}
	for i, x := range f.flows {
		if x == fl {
			f.flows = append(f.flows[:i], f.flows[i+1:]...)
			break
		}
	}
	for _, l := range fl.path {
		l.nflows--
	}
}

// settle credits every active flow with the bytes moved since the last rate
// change.
func (f *Fabric) settle() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		dt := (now - fl.updated).Seconds()
		if dt > 0 && fl.rate > 0 {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.updated = now
	}
}

// reallocate computes the max-min fair rates by progressive filling and
// reschedules every flow's completion event.
func (f *Fabric) reallocate() {
	if len(f.flows) == 0 {
		return
	}
	// Collect the links in use.
	type linkState struct {
		link   *Link
		capRem float64
		unfix  int
	}
	states := make(map[*Link]*linkState)
	for _, fl := range f.flows {
		for _, l := range fl.path {
			st, ok := states[l]
			if !ok {
				st = &linkState{link: l, capRem: float64(l.effectiveCap(l.nflows))}
				states[l] = st
			}
			st.unfix++
		}
	}
	fixed := make(map[*Flow]bool, len(f.flows))
	for len(fixed) < len(f.flows) {
		// Find the bottleneck: the link whose fair share for its unfixed
		// flows is smallest. Iterate flows (deterministic order) rather than
		// the map to pick ties stably.
		var bottleneck *linkState
		share := math.Inf(1)
		for _, fl := range f.flows {
			if fixed[fl] {
				continue
			}
			for _, l := range fl.path {
				st := states[l]
				if st.unfix == 0 {
					continue
				}
				s := st.capRem / float64(st.unfix)
				if s < share {
					share = s
					bottleneck = st
				}
			}
		}
		if bottleneck == nil {
			// No constraining link (cannot happen with non-empty paths).
			for _, fl := range f.flows {
				if !fixed[fl] {
					fl.rate = math.Inf(1)
					fixed[fl] = true
				}
			}
			break
		}
		if share < 0 {
			share = 0
		}
		for _, fl := range f.flows {
			if fixed[fl] {
				continue
			}
			onBottleneck := false
			for _, l := range fl.path {
				if states[l] == bottleneck {
					onBottleneck = true
					break
				}
			}
			if !onBottleneck {
				continue
			}
			fl.rate = share
			fixed[fl] = true
			for _, l := range fl.path {
				st := states[l]
				st.capRem -= share
				if st.capRem < 0 {
					st.capRem = 0
				}
				st.unfix--
			}
		}
	}
	f.reschedule()
}

// reschedule cancels and re-creates each flow's completion event from its
// current remaining bytes and rate.
func (f *Fabric) reschedule() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		fl := fl
		if fl.complete != nil {
			f.eng.Cancel(fl.complete)
			fl.complete = nil
		}
		if fl.rate <= 0 {
			continue // stalled; a future reallocate will revive it
		}
		var at time.Duration
		if math.IsInf(fl.rate, 1) || fl.remaining <= 0.5 {
			at = now
		} else {
			at = now + time.Duration(fl.remaining/fl.rate*float64(time.Second))
			if at < now {
				at = now
			}
		}
		fl.complete = f.eng.Schedule(at, func() { f.onComplete(fl) })
	}
}

func (f *Fabric) onComplete(fl *Flow) {
	fl.complete = nil
	f.settle()
	if fl.remaining > 0.5 {
		// Prediction went stale (rates changed at this same instant);
		// reallocate will reschedule.
		f.reallocate()
		return
	}
	f.remove(fl)
	fl.done.Fire()
	f.reallocate()
}
