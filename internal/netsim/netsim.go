// Package netsim models the datacenter network as a fluid, flow-level
// system: transfers are flows traversing a path of links, and the rate of
// every active flow is the progressive-filling max-min fair allocation over
// link capacities. When the flow set changes, rates are recomputed and every
// flow's completion event is rescheduled.
//
// Links may carry a concurrency-dependent effective capacity
// (SetCapacityFn), which is how the calibrated "black box" overheads of the
// paper's storage front-ends are expressed: the paper measured aggregate
// service bandwidth that grows sub-linearly and eventually peaks as client
// count rises, without being able to attribute the loss to any internal
// component (Section 3.1).
//
// # Allocation fast path
//
// The closed-loop sweeps of Sections 3.1–3.3 churn hundreds of concurrent
// flows through one fabric, and every arrival or completion triggers a
// reallocation, so this is the simulator's hottest path. The solver is
// incremental: per-link state lives on the Link itself (stamped with a pass
// epoch instead of rebuilt in a map), links are grouped into connected
// components with a union-find pass, and only the components whose flow set
// changed since the last solve are re-run — flows in untouched components
// keep their rates and their scheduled completion events. Completion events
// are only re-created when the predicted completion time actually moved, and
// retired events are recycled through the kernel's event pool.
//
// The fast path is bit-exact with the from-scratch progressive-filling
// solver: components never interact (a flow's rate depends only on links it
// can reach through shared flows), flows are scanned in arrival order so
// tie-breaking between equally-loaded links is unchanged, and kept events
// fire at exactly the time a recomputation would have produced. The
// property tests cross-check incremental against from-scratch allocations on
// random churn sequences, and internal/core's trace goldens pin whole
// experiment runs to the bit.
package netsim

import (
	"fmt"
	"math"
	"time"

	"azureobs/internal/sim"
)

// Bandwidth is expressed in bytes per second. The paper reports MB/s with
// decimal megabytes (1 Gbit/s Ethernet ≙ 125 MB/s), so MBps = 1e6 B/s.
type Bandwidth float64

// Common bandwidth units.
const (
	Bps  Bandwidth = 1
	KBps           = 1000 * Bps
	MBps           = 1000 * KBps
	GBps           = 1000 * MBps
)

// MB is a convenience for sizing transfers in decimal megabytes.
const MB int64 = 1_000_000

// GB is a convenience for sizing transfers in decimal gigabytes.
const GB int64 = 1_000_000_000

// Link is one capacity-constrained network segment: a VM NIC, a storage
// front-end's egress trunk, a rack uplink.
type Link struct {
	name  string
	cap   Bandwidth
	capFn func(nflows int) Bandwidth

	nflows int // active flows crossing this link

	// Solver scratch, owned by the fabric. epoch-stamped fields are valid
	// only for the reallocation pass whose epoch matches, which is what lets
	// the solver skip rebuilding per-link state in a map on every call.
	epoch    uint64  // pass this link was last collected in
	capEpoch uint64  // pass capRem was last initialised in
	comp     int     // union-find node id within the epoch pass
	unfix    int     // flows crossing this link not yet fixed by the solver
	capRem   float64 // capacity not yet claimed by fixed flows
	dirty    bool    // flow set changed since the last solve
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's nominal capacity.
func (l *Link) Capacity() Bandwidth { return l.cap }

// Flows returns the number of active flows crossing the link.
func (l *Link) Flows() int { return l.nflows }

// SetCapacityFn installs a concurrency-dependent effective capacity. When
// set, it overrides the nominal capacity whenever at least one flow is
// active. Effective capacity must be positive for every n ≥ 1; the solver
// validates this at allocation time and panics with the link name on a
// curve that dips to zero or below, since such a link would otherwise stall
// every flow crossing it forever.
func (l *Link) SetCapacityFn(fn func(nflows int) Bandwidth) { l.capFn = fn }

// effectiveCap returns the capacity available to n concurrent flows.
func (l *Link) effectiveCap(n int) Bandwidth {
	if l.capFn != nil {
		return l.capFn(n)
	}
	return l.cap
}

// Flow is one active transfer.
type Flow struct {
	path      []*Link
	remaining float64 // bytes
	rate      float64 // bytes/sec, assigned by the solver
	updated   time.Duration
	completed bool
	done      sim.Signal
	complete  *sim.Event
	onFire    func() // cached completion callback (one closure per flow)
	index     int    // position in Fabric.flows; -1 once removed
}

// Rate returns the flow's current max-min fair rate in bytes/sec.
func (f *Flow) Rate() Bandwidth { return Bandwidth(f.rate) }

// Remaining returns the bytes not yet delivered (as of the last settle).
func (f *Flow) Remaining() float64 { return f.remaining }

// Fabric owns the links and active flows of one simulated network and keeps
// the max-min allocation current as flows come and go.
type Fabric struct {
	eng   *sim.Engine
	flows []*Flow

	// Incremental-solver state: links whose flow set changed since the last
	// solve, plus reusable scratch buffers so a reallocation allocates
	// nothing in steady state.
	epoch      uint64
	dirtyLinks []*Link
	ufParent   []int
	compDirty  []bool
	unfixed    []*Flow
}

// NewFabric creates an empty network bound to the engine.
func NewFabric(eng *sim.Engine) *Fabric {
	return &Fabric{eng: eng}
}

// NewLink creates a link with the given nominal capacity (> 0).
func (f *Fabric) NewLink(name string, capacity Bandwidth) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity %v", name, capacity))
	}
	return &Link{name: name, cap: capacity}
}

// SetLinkCapacity changes a link's nominal capacity at runtime — the chaos
// engine's rack partitions squeeze NICs to an epsilon rate and restore them
// on repair. Flows in progress are settled at their old rates first, then the
// component containing the link re-solves; completion events move
// accordingly. Capacity must stay positive (use a small epsilon, not zero).
// Links driven by SetCapacityFn ignore the nominal value.
func (f *Fabric) SetLinkCapacity(l *Link, capacity Bandwidth) {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity %v", l.name, capacity))
	}
	if capacity == l.cap {
		return
	}
	f.settle()
	l.cap = capacity
	f.markDirty(l)
	f.reallocate()
}

// ActiveFlows returns the number of in-flight flows.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// Transfer moves size bytes across the given path, blocking the calling
// process until the last byte arrives, and returns the elapsed virtual time.
// A killed process abandons the transfer; the flow is withdrawn and the
// bandwidth it held is redistributed.
func (f *Fabric) Transfer(p *sim.Proc, size int64, path ...*Link) time.Duration {
	if size <= 0 {
		return 0
	}
	start := p.Now()
	fl := f.StartFlow(size, path...)
	defer func() {
		if rec := recover(); rec != nil {
			f.abandon(fl)
			panic(rec)
		}
	}()
	fl.done.Wait(p)
	return p.Now() - start
}

// TransferFlat is the flat-actor form of Transfer: it injects the flow and
// arms then to run at the instant the last byte arrives, without parking a
// goroutine. A zero-size transfer completes synchronously (then runs before
// TransferFlat returns), mirroring Transfer's immediate return. Flat actors
// have no Kill, so there is no implicit abandon path — then always runs.
func (f *Fabric) TransferFlat(a *sim.Actor, size int64, then func(), path ...*Link) {
	if size <= 0 {
		then()
		return
	}
	fl := f.StartFlow(size, path...)
	fl.done.WaitFlat(a, then)
}

// StartFlow injects a flow without blocking. The returned flow's done signal
// fires on completion. Most callers want Transfer; StartFlow exists for
// event-driven users and tests.
func (f *Fabric) StartFlow(size int64, path ...*Link) *Flow {
	if len(path) == 0 {
		panic("netsim: flow with empty path")
	}
	fl := &Flow{path: path, remaining: float64(size), updated: f.eng.Now()}
	fl.onFire = func() { f.onComplete(fl) }
	f.settle()
	fl.index = len(f.flows)
	f.flows = append(f.flows, fl)
	for _, l := range path {
		l.nflows++
		f.markDirty(l)
	}
	f.reallocate()
	return fl
}

// Abandon withdraws an incomplete flow started with StartFlow: the flow is
// removed, its done signal never fires, and its bandwidth is redistributed.
// Abandoning a completed (or already abandoned) flow is a no-op. Transfer
// callers never need this — a killed sender abandons implicitly.
func (f *Fabric) Abandon(fl *Flow) { f.abandon(fl) }

// abandon withdraws an incomplete flow (killed sender).
func (f *Fabric) abandon(fl *Flow) {
	if fl.completed {
		return
	}
	f.settle()
	f.remove(fl)
	f.reallocate()
}

func (f *Fabric) remove(fl *Flow) {
	if fl.index < 0 {
		return
	}
	fl.completed = true
	if fl.complete != nil {
		// Lazy cancel: the event stays queued until the kernel pops it, and
		// CancelRecycle hands its allocation back to the pool at that point.
		f.eng.CancelRecycle(fl.complete)
		fl.complete = nil
	}
	// O(1) swap-delete: the flow knows its own slot.
	i, last := fl.index, len(f.flows)-1
	f.flows[i] = f.flows[last]
	f.flows[i].index = i
	f.flows[last] = nil
	f.flows = f.flows[:last]
	fl.index = -1
	for _, l := range fl.path {
		l.nflows--
		f.markDirty(l)
	}
}

// markDirty records that a link's flow set (and hence its effective
// capacity) changed, so the component containing it must be re-solved.
func (f *Fabric) markDirty(l *Link) {
	if !l.dirty {
		l.dirty = true
		f.dirtyLinks = append(f.dirtyLinks, l)
	}
}

func (f *Fabric) clearDirty() {
	for _, l := range f.dirtyLinks {
		l.dirty = false
	}
	f.dirtyLinks = f.dirtyLinks[:0]
}

// settle credits every active flow with the bytes moved since the last rate
// change.
func (f *Fabric) settle() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		dt := (now - fl.updated).Seconds()
		if dt > 0 && fl.rate > 0 {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.updated = now
	}
}

// reallocate brings rates and completion events up to date after a change.
// Rate recomputation runs only when some link's flow set actually changed;
// the stale-prediction path (a completion event firing at the same instant
// rates moved) needs only a reschedule, because an unchanged flow set
// re-solves to bit-identical rates.
func (f *Fabric) reallocate() {
	if len(f.flows) == 0 {
		f.clearDirty()
		return
	}
	if len(f.dirtyLinks) > 0 {
		f.solve()
		f.clearDirty()
	}
	f.reschedule()
}

// solve recomputes max-min fair rates by progressive filling for every flow
// whose connected component contains a dirty link. Components are computed
// fresh each pass (links only carry epoch-stamped scratch), but flows of
// clean components are never scanned by the filling loop and keep their
// rates: allocations in one component are independent of every other, so
// skipping them is exact, not an approximation.
func (f *Fabric) solve() {
	f.epoch++
	// Pass 1: stamp links with this epoch, count crossing flows, and union
	// each flow's path links into one component.
	f.ufParent = f.ufParent[:0]
	for _, fl := range f.flows {
		first := fl.path[0]
		for _, l := range fl.path {
			if l.epoch != f.epoch {
				l.epoch = f.epoch
				l.unfix = 0
				l.comp = len(f.ufParent)
				f.ufParent = append(f.ufParent, l.comp)
			}
			l.unfix++
			if l != first {
				f.union(first.comp, l.comp)
			}
		}
	}
	// Pass 2: mark components containing a dirty link. Dirty links no
	// longer crossed by any flow (a departed flow's private segment) carry a
	// stale epoch and drop out here.
	if cap(f.compDirty) < len(f.ufParent) {
		f.compDirty = make([]bool, len(f.ufParent))
	}
	f.compDirty = f.compDirty[:len(f.ufParent)]
	for i := range f.compDirty {
		f.compDirty[i] = false
	}
	for _, l := range f.dirtyLinks {
		if l.epoch == f.epoch {
			f.compDirty[f.find(l.comp)] = true
		}
	}
	// Pass 3: gather the flows of dirty components — in arrival order, which
	// is what keeps bottleneck tie-breaking identical to the from-scratch
	// solver — and initialise remaining capacity on the links they cross.
	f.unfixed = f.unfixed[:0]
	for _, fl := range f.flows {
		if !f.compDirty[f.find(fl.path[0].comp)] {
			continue
		}
		f.unfixed = append(f.unfixed, fl)
		for _, l := range fl.path {
			if l.capEpoch == f.epoch {
				continue
			}
			l.capEpoch = f.epoch
			c := float64(l.effectiveCap(l.nflows))
			if !(c > 0) {
				panic(fmt.Sprintf(
					"netsim: link %q effective capacity %v with %d flows; capacity functions must be positive for every n ≥ 1",
					l.name, Bandwidth(c), l.nflows))
			}
			l.capRem = c
		}
	}
	// Pass 4: progressive filling. Each round, the bottleneck is the link
	// whose fair share for its unfixed flows is smallest — scanned in flow
	// arrival order (not map order) so ties resolve stably — and every
	// unfixed flow crossing it is fixed at that share.
	unfixed := f.unfixed
	for len(unfixed) > 0 {
		var bottleneck *Link
		share := math.Inf(1)
		for _, fl := range unfixed {
			for _, l := range fl.path {
				if l.unfix == 0 {
					continue
				}
				s := l.capRem / float64(l.unfix)
				if s < share {
					share = s
					bottleneck = l
				}
			}
		}
		if bottleneck == nil {
			// No constraining link (cannot happen with non-empty paths).
			for _, fl := range unfixed {
				fl.rate = math.Inf(1)
			}
			break
		}
		if share < 0 {
			share = 0
		}
		n := 0
		for _, fl := range unfixed {
			onBottleneck := false
			for _, l := range fl.path {
				if l == bottleneck {
					onBottleneck = true
					break
				}
			}
			if !onBottleneck {
				unfixed[n] = fl
				n++
				continue
			}
			fl.rate = share
			for _, l := range fl.path {
				l.capRem -= share
				if l.capRem < 0 {
					l.capRem = 0
				}
				l.unfix--
			}
		}
		unfixed = unfixed[:n]
	}
}

// find returns the union-find root of scratch node x.
func (f *Fabric) find(x int) int {
	for f.ufParent[x] != x {
		f.ufParent[x] = f.ufParent[f.ufParent[x]] // path halving
		x = f.ufParent[x]
	}
	return x
}

func (f *Fabric) union(a, b int) {
	ra, rb := f.find(a), f.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		f.ufParent[rb] = ra
	} else {
		f.ufParent[ra] = rb
	}
}

// stampComponents rebuilds the union-find over the current flow set — the
// same pass-1 stamping solve performs — so component queries can run between
// solves. Burning an epoch here is safe: every solve pass restamps all the
// scratch it reads, so an extra epoch bump just looks like one more solve.
func (f *Fabric) stampComponents() {
	f.epoch++
	f.ufParent = f.ufParent[:0]
	for _, fl := range f.flows {
		first := fl.path[0]
		for _, l := range fl.path {
			if l.epoch != f.epoch {
				l.epoch = f.epoch
				l.unfix = 0
				l.comp = len(f.ufParent)
				f.ufParent = append(f.ufParent, l.comp)
			}
			if l != first {
				f.union(first.comp, l.comp)
			}
		}
	}
}

// Components returns the number of connected components in the active flow
// graph: flows are connected when their paths share a link. This is the
// kernel-sharding partition oracle — flows in different components can never
// influence each other's rates (a solve touches exactly one component), so a
// workload whose flow graph stays partitioned into k components is safe to
// split across up to k simulation domains, one fabric per domain, with no
// cross-domain mail. Links no flow currently crosses count toward no
// component.
func (f *Fabric) Components() int {
	f.stampComponents()
	n := 0
	for i := range f.ufParent {
		if f.find(i) == i {
			n++
		}
	}
	return n
}

// SameComponent reports whether two active flows share a connected component
// — whether any chain of overlapping paths couples their rate allocations.
// Flows in different components are independent: domain-sharding them apart
// cannot change either one's trace.
func (f *Fabric) SameComponent(a, b *Flow) bool {
	f.stampComponents()
	return f.find(a.path[0].comp) == f.find(b.path[0].comp)
}

// reschedule brings each flow's completion event in line with its current
// remaining bytes and rate. An event is re-created only when the predicted
// completion time actually moved; an unchanged prediction keeps the
// already-scheduled event, and retired events return to the kernel pool.
func (f *Fabric) reschedule() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			// Stalled; a future reallocate will revive it.
			if fl.complete != nil {
				f.eng.CancelRecycle(fl.complete)
				fl.complete = nil
			}
			continue
		}
		var at time.Duration
		if math.IsInf(fl.rate, 1) || fl.remaining <= 0.5 {
			at = now
		} else {
			at = now + time.Duration(fl.remaining/fl.rate*float64(time.Second))
			if at <= now {
				// The prediction rounded down to a zero (or negative)
				// duration while bytes remain outstanding. Scheduling at
				// `now` would fire, settle zero elapsed time, and reallocate
				// right back here — a same-instant ping-pong that never
				// drains the flow. One nanosecond is below any reportable
				// timescale and guarantees progress.
				at = now + 1
			}
		}
		if fl.complete != nil {
			if fl.complete.Time() == at {
				continue
			}
			// Sift the pending event to its new slot in place. The event
			// takes a fresh sequence number, exactly as the old
			// cancel/recycle/schedule round trip did, so traces stay
			// bit-identical while the hot reallocation path skips the heap
			// removal and free-list churn entirely.
			f.eng.Reschedule(fl.complete, at)
			continue
		}
		fl.complete = f.eng.Schedule(at, fl.onFire)
	}
}

func (f *Fabric) onComplete(fl *Flow) {
	ev := fl.complete
	fl.complete = nil
	if ev != nil {
		f.eng.Recycle(ev)
	}
	f.settle()
	if fl.remaining > 0.5 {
		if !math.IsInf(fl.rate, 1) {
			// Prediction went stale (rates changed at this same instant);
			// reallocate will reschedule.
			f.reallocate()
			return
		}
		// An unconstrained flow delivers instantly; zero elapsed time moved
		// no bytes in settle, so finish it by hand rather than ping-pong.
		fl.remaining = 0
	}
	f.remove(fl)
	fl.done.Fire()
	f.reallocate()
}
