package netsim

import (
	"fmt"
	"math"
)

// ProfilePoint is one knot of a concurrency→capacity calibration curve.
type ProfilePoint struct {
	N        int       // concurrent flows
	Capacity Bandwidth // effective aggregate capacity at N flows
}

// CapacityProfile builds a concurrency-dependent effective-capacity function
// from calibration knots, interpolating linearly in log2(n) between them and
// clamping outside the knot range. This is the shape used to encode the
// paper's measured aggregate service bandwidth curves (e.g. blob download:
// NIC-bound to 8 clients, ~208 MB/s at 32, peaking at ~393 MB/s at 128).
//
// Knots must have strictly increasing N ≥ 1 and positive capacities.
func CapacityProfile(points ...ProfilePoint) func(nflows int) Bandwidth {
	if len(points) == 0 {
		panic("netsim: empty capacity profile")
	}
	for i, p := range points {
		if p.N < 1 || p.Capacity <= 0 {
			panic(fmt.Sprintf("netsim: bad profile point %+v", p))
		}
		if i > 0 && p.N <= points[i-1].N {
			panic("netsim: profile points must have increasing N")
		}
	}
	pts := append([]ProfilePoint(nil), points...)
	return func(n int) Bandwidth {
		if n < 1 {
			n = 1
		}
		if n <= pts[0].N {
			return pts[0].Capacity
		}
		last := pts[len(pts)-1]
		if n >= last.N {
			return last.Capacity
		}
		for i := 1; i < len(pts); i++ {
			if n <= pts[i].N {
				a, b := pts[i-1], pts[i]
				fa, fb := math.Log2(float64(a.N)), math.Log2(float64(b.N))
				frac := (math.Log2(float64(n)) - fa) / (fb - fa)
				return a.Capacity + Bandwidth(frac)*(b.Capacity-a.Capacity)
			}
		}
		return last.Capacity
	}
}
