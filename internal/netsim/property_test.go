package netsim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"azureobs/internal/sim"
)

// buildRandomScenario creates links and flows from fuzz input and returns
// the fabric with all flows injected (no engine run yet).
func buildRandomScenario(seed uint64, nLinksRaw, nFlowsRaw uint8) (*Fabric, []*Flow, []*Link) {
	rng := rand.New(rand.NewPCG(seed, 99))
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	nLinks := int(nLinksRaw%6) + 1
	nFlows := int(nFlowsRaw%24) + 1
	links := make([]*Link, nLinks)
	for i := range links {
		links[i] = fab.NewLink("l", Bandwidth(1+rng.Float64()*99)*MBps)
	}
	flows := make([]*Flow, nFlows)
	for i := range flows {
		// Random non-empty path of 1-3 distinct links.
		pathLen := rng.IntN(3) + 1
		if pathLen > nLinks {
			pathLen = nLinks
		}
		perm := rng.Perm(nLinks)
		path := make([]*Link, pathLen)
		for j := 0; j < pathLen; j++ {
			path[j] = links[perm[j]]
		}
		flows[i] = fab.StartFlow(int64(1+rng.IntN(1000))*MB, path...)
	}
	return fab, flows, links
}

// Property: the max-min allocation never oversubscribes any link, and every
// flow gets a strictly positive rate.
func TestPropertyMaxMinFeasibleAndLive(t *testing.T) {
	f := func(seed uint64, nl, nf uint8) bool {
		_, flows, links := buildRandomScenario(seed, nl, nf)
		loads := map[*Link]float64{}
		for _, fl := range flows {
			if fl.rate <= 0 {
				return false // starvation
			}
			for _, l := range fl.path {
				loads[l] += fl.rate
			}
		}
		for _, l := range links {
			if load, ok := loads[l]; ok {
				if load > float64(l.effectiveCap(l.nflows))*(1+1e-9) {
					return false // oversubscribed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the allocation is max-min fair in the Pareto sense — every flow
// is bottlenecked by at least one saturated link on its path (no flow could
// be sped up without slowing another).
func TestPropertyEveryFlowBottlenecked(t *testing.T) {
	f := func(seed uint64, nl, nf uint8) bool {
		_, flows, _ := buildRandomScenario(seed, nl, nf)
		loads := map[*Link]float64{}
		for _, fl := range flows {
			for _, l := range fl.path {
				loads[l] += fl.rate
			}
		}
		for _, fl := range flows {
			saturated := false
			for _, l := range fl.path {
				if loads[l] >= float64(l.effectiveCap(l.nflows))*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flows sharing an identical path receive equal rates.
func TestPropertyEqualPathEqualRate(t *testing.T) {
	f := func(seed uint64, nFlowsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		a := fab.NewLink("a", Bandwidth(1+rng.Float64()*50)*MBps)
		b := fab.NewLink("b", Bandwidth(1+rng.Float64()*50)*MBps)
		n := int(nFlowsRaw%10) + 2
		flows := make([]*Flow, n)
		for i := range flows {
			flows[i] = fab.StartFlow(int64(1+rng.IntN(100))*MB, a, b)
		}
		first := flows[0].rate
		for _, fl := range flows[1:] {
			if diff := fl.rate - first; diff > 1e-6*first || diff < -1e-6*first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total delivered bytes equal total injected bytes once every
// transfer completes, and the elapsed time respects the tightest link.
func TestPropertyConservationUnderChurn(t *testing.T) {
	f := func(seed uint64, nFlowsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		trunk := fab.NewLink("trunk", Bandwidth(10+rng.Float64()*90)*MBps)
		n := int(nFlowsRaw%12) + 1
		var totalBytes int64
		var last time.Duration
		done := 0
		for i := 0; i < n; i++ {
			size := int64(1+rng.IntN(200)) * MB
			start := time.Duration(rng.IntN(10000)) * time.Millisecond
			totalBytes += size
			eng.SpawnAt(start, "tx", func(p *sim.Proc) {
				fab.Transfer(p, size, trunk)
				done++
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		eng.Run()
		if done != n || fab.ActiveFlows() != 0 {
			return false
		}
		// All bytes crossed one link: elapsed ≥ bytes/capacity.
		minTime := float64(totalBytes) / float64(trunk.Capacity())
		return last.Seconds() >= minTime*(1-1e-9)-0.011
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
