package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"azureobs/internal/sim"
)

// buildRandomScenario creates links and flows from fuzz input and returns
// the fabric with all flows injected (no engine run yet).
func buildRandomScenario(seed uint64, nLinksRaw, nFlowsRaw uint8) (*Fabric, []*Flow, []*Link) {
	rng := rand.New(rand.NewPCG(seed, 99))
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	nLinks := int(nLinksRaw%6) + 1
	nFlows := int(nFlowsRaw%24) + 1
	links := make([]*Link, nLinks)
	for i := range links {
		links[i] = fab.NewLink("l", Bandwidth(1+rng.Float64()*99)*MBps)
	}
	flows := make([]*Flow, nFlows)
	for i := range flows {
		// Random non-empty path of 1-3 distinct links.
		pathLen := rng.IntN(3) + 1
		if pathLen > nLinks {
			pathLen = nLinks
		}
		perm := rng.Perm(nLinks)
		path := make([]*Link, pathLen)
		for j := 0; j < pathLen; j++ {
			path[j] = links[perm[j]]
		}
		flows[i] = fab.StartFlow(int64(1+rng.IntN(1000))*MB, path...)
	}
	return fab, flows, links
}

// Property: the max-min allocation never oversubscribes any link, and every
// flow gets a strictly positive rate.
func TestPropertyMaxMinFeasibleAndLive(t *testing.T) {
	f := func(seed uint64, nl, nf uint8) bool {
		_, flows, links := buildRandomScenario(seed, nl, nf)
		loads := map[*Link]float64{}
		for _, fl := range flows {
			if fl.rate <= 0 {
				return false // starvation
			}
			for _, l := range fl.path {
				loads[l] += fl.rate
			}
		}
		for _, l := range links {
			if load, ok := loads[l]; ok {
				if load > float64(l.effectiveCap(l.nflows))*(1+1e-9) {
					return false // oversubscribed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the allocation is max-min fair in the Pareto sense — every flow
// is bottlenecked by at least one saturated link on its path (no flow could
// be sped up without slowing another).
func TestPropertyEveryFlowBottlenecked(t *testing.T) {
	f := func(seed uint64, nl, nf uint8) bool {
		_, flows, _ := buildRandomScenario(seed, nl, nf)
		loads := map[*Link]float64{}
		for _, fl := range flows {
			for _, l := range fl.path {
				loads[l] += fl.rate
			}
		}
		for _, fl := range flows {
			saturated := false
			for _, l := range fl.path {
				if loads[l] >= float64(l.effectiveCap(l.nflows))*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flows sharing an identical path receive equal rates.
func TestPropertyEqualPathEqualRate(t *testing.T) {
	f := func(seed uint64, nFlowsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		a := fab.NewLink("a", Bandwidth(1+rng.Float64()*50)*MBps)
		b := fab.NewLink("b", Bandwidth(1+rng.Float64()*50)*MBps)
		n := int(nFlowsRaw%10) + 2
		flows := make([]*Flow, n)
		for i := range flows {
			flows[i] = fab.StartFlow(int64(1+rng.IntN(100))*MB, a, b)
		}
		first := flows[0].rate
		for _, fl := range flows[1:] {
			if diff := fl.rate - first; diff > 1e-6*first || diff < -1e-6*first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total delivered bytes equal total injected bytes once every
// transfer completes, and the elapsed time respects the tightest link.
func TestPropertyConservationUnderChurn(t *testing.T) {
	f := func(seed uint64, nFlowsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		trunk := fab.NewLink("trunk", Bandwidth(10+rng.Float64()*90)*MBps)
		n := int(nFlowsRaw%12) + 1
		var totalBytes int64
		var last time.Duration
		done := 0
		for i := 0; i < n; i++ {
			size := int64(1+rng.IntN(200)) * MB
			start := time.Duration(rng.IntN(10000)) * time.Millisecond
			totalBytes += size
			eng.SpawnAt(start, "tx", func(p *sim.Proc) {
				fab.Transfer(p, size, trunk)
				done++
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		eng.Run()
		if done != n || fab.ActiveFlows() != 0 {
			return false
		}
		// All bytes crossed one link: elapsed ≥ bytes/capacity.
		minTime := float64(totalBytes) / float64(trunk.Capacity())
		return last.Seconds() >= minTime*(1-1e-9)-0.011
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// scratchRates recomputes the max-min fair allocation from scratch with an
// independent map-based progressive-filling solver — the seed implementation
// the incremental fast path replaced — without touching any fabric state.
// It is the oracle for the incremental-consistency properties below.
func scratchRates(f *Fabric) map[*Flow]float64 {
	type linkState struct {
		capRem float64
		unfix  int
	}
	ls := map[*Link]*linkState{}
	for _, fl := range f.flows {
		for _, l := range fl.path {
			st := ls[l]
			if st == nil {
				st = &linkState{capRem: float64(l.effectiveCap(l.nflows))}
				ls[l] = st
			}
			st.unfix++
		}
	}
	rates := map[*Flow]float64{}
	unfixed := map[*Flow]bool{}
	for _, fl := range f.flows {
		unfixed[fl] = true
	}
	for len(unfixed) > 0 {
		var bottleneck *Link
		share := math.Inf(1)
		for _, fl := range f.flows {
			if !unfixed[fl] {
				continue
			}
			for _, l := range fl.path {
				st := ls[l]
				if st.unfix == 0 {
					continue
				}
				if s := st.capRem / float64(st.unfix); s < share {
					share = s
					bottleneck = l
				}
			}
		}
		if bottleneck == nil {
			for fl := range unfixed {
				rates[fl] = math.Inf(1)
			}
			break
		}
		if share < 0 {
			share = 0
		}
		for _, fl := range f.flows {
			if !unfixed[fl] {
				continue
			}
			on := false
			for _, l := range fl.path {
				if l == bottleneck {
					on = true
					break
				}
			}
			if !on {
				continue
			}
			rates[fl] = share
			for _, l := range fl.path {
				st := ls[l]
				st.capRem -= share
				if st.capRem < 0 {
					st.capRem = 0
				}
				st.unfix--
			}
			delete(unfixed, fl)
		}
	}
	return rates
}

// assertMatchesScratch compares every live flow's incremental rate and
// completion-event time bitwise against the from-scratch oracle.
func assertMatchesScratch(f *Fabric, now time.Duration) string {
	want := scratchRates(f)
	for _, fl := range f.flows {
		if w := want[fl]; fl.rate != w {
			return fmt.Sprintf("flow rate %v, from-scratch solver says %v (Δbits)", fl.rate, w)
		}
		if fl.rate <= 0 {
			if fl.complete != nil {
				return "stalled flow still holds a completion event"
			}
			continue
		}
		var at time.Duration
		if math.IsInf(fl.rate, 1) || fl.remaining <= 0.5 {
			at = now
		} else {
			at = now + time.Duration(fl.remaining/fl.rate*float64(time.Second))
			if at <= now {
				at = now + 1
			}
		}
		if fl.complete == nil {
			return "live flow has no completion event"
		}
		if got := fl.complete.Time(); got < at {
			// A kept event may never be earlier than the fresh prediction;
			// equal is the required case (reschedule recomputes every time).
			return fmt.Sprintf("completion event at %v, fresh prediction %v", got, at)
		} else if got != at {
			return fmt.Sprintf("stale completion event: %v vs predicted %v", got, at)
		}
	}
	return ""
}

// Property: after every arrival and departure in a random churn sequence at
// a single instant, the incremental solver's rates and completion times are
// bit-identical to a from-scratch recomputation.
func TestPropertyIncrementalMatchesScratchStatic(t *testing.T) {
	f := func(seed uint64, nLinksRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 271))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		nLinks := int(nLinksRaw%6) + 1
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = fab.NewLink("l", Bandwidth(1+rng.Float64()*99)*MBps)
		}
		var live []*Flow
		ops := int(opsRaw%40) + 10
		for op := 0; op < ops; op++ {
			if len(live) > 0 && rng.IntN(3) == 0 {
				i := rng.IntN(len(live))
				fab.abandon(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				pathLen := rng.IntN(3) + 1
				if pathLen > nLinks {
					pathLen = nLinks
				}
				perm := rng.Perm(nLinks)
				path := make([]*Link, pathLen)
				for j := range path {
					path[j] = links[perm[j]]
				}
				live = append(live, fab.StartFlow(int64(1+rng.IntN(1000))*MB, path...))
			}
			if msg := assertMatchesScratch(fab, eng.Now()); msg != "" {
				t.Logf("seed=%d op=%d: %s", seed, op, msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same consistency holds while virtual time advances, so the
// check also exercises settle, the event-keep path in reschedule, and
// component skipping against partially-delivered flows.
func TestPropertyIncrementalMatchesScratchTimed(t *testing.T) {
	f := func(seed uint64, nLinksRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 997))
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		nLinks := int(nLinksRaw%5) + 2
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = fab.NewLink("l", Bandwidth(1+rng.Float64()*99)*MBps)
		}
		var live []*Flow
		ops := int(opsRaw%30) + 10
		for op := 0; op < ops; op++ {
			// Let the simulation advance; completions prune `live`.
			eng.RunUntil(eng.Now() + time.Duration(rng.IntN(500))*time.Millisecond)
			n := 0
			for _, fl := range live {
				if !fl.completed {
					live[n] = fl
					n++
				}
			}
			live = live[:n]
			if len(live) > 0 && rng.IntN(3) == 0 {
				i := rng.IntN(len(live))
				fab.abandon(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				pathLen := rng.IntN(3) + 1
				if pathLen > nLinks {
					pathLen = nLinks
				}
				perm := rng.Perm(nLinks)
				path := make([]*Link, pathLen)
				for j := range path {
					path[j] = links[perm[j]]
				}
				live = append(live, fab.StartFlow(int64(1+rng.IntN(200))*MB, path...))
			}
			if msg := assertMatchesScratch(fab, eng.Now()); msg != "" {
				t.Logf("seed=%d op=%d t=%v: %s", seed, op, eng.Now(), msg)
				return false
			}
		}
		eng.Run()
		return fab.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
