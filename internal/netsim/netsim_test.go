package netsim

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/sim"
)

func TestSingleFlowRate(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	nic := fab.NewLink("nic", 10*MBps)
	var elapsed time.Duration
	eng.Spawn("tx", func(p *sim.Proc) {
		elapsed = fab.Transfer(p, 100*MB, nic)
	})
	eng.Run()
	want := 10 * time.Second
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if fab.ActiveFlows() != 0 {
		t.Fatalf("flows left: %d", fab.ActiveFlows())
	}
}

func TestBottleneckIsMinLink(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	a := fab.NewLink("a", 100*MBps)
	b := fab.NewLink("b", 5*MBps)
	var elapsed time.Duration
	eng.Spawn("tx", func(p *sim.Proc) {
		elapsed = fab.Transfer(p, 50*MB, a, b)
	})
	eng.Run()
	if elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s (5 MB/s bottleneck)", elapsed)
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	shared := fab.NewLink("shared", 10*MBps)
	var t1, t2 time.Duration
	eng.Spawn("tx1", func(p *sim.Proc) { t1 = fab.Transfer(p, 50*MB, shared) })
	eng.Spawn("tx2", func(p *sim.Proc) { t2 = fab.Transfer(p, 50*MB, shared) })
	eng.Run()
	// Both share 5 MB/s, finish together at 10s.
	if t1 != 10*time.Second || t2 != 10*time.Second {
		t.Fatalf("elapsed = %v, %v; want both 10s", t1, t2)
	}
}

func TestRateRecomputesWhenFlowEnds(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	shared := fab.NewLink("shared", 10*MBps)
	var tBig time.Duration
	eng.Spawn("small", func(p *sim.Proc) { fab.Transfer(p, 10*MB, shared) })
	eng.Spawn("big", func(p *sim.Proc) { tBig = fab.Transfer(p, 60*MB, shared) })
	eng.Run()
	// Phase 1: both at 5 MB/s until small finishes at t=2s (10MB).
	// Big then has 50MB left at 10 MB/s → +5s → total 7s.
	if tBig != 7*time.Second {
		t.Fatalf("big elapsed = %v, want 7s", tBig)
	}
}

func TestRateRecomputesWhenFlowJoins(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	shared := fab.NewLink("shared", 10*MBps)
	var tFirst time.Duration
	eng.Spawn("first", func(p *sim.Proc) { tFirst = fab.Transfer(p, 40*MB, shared) })
	eng.Spawn("second", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		fab.Transfer(p, 100*MB, shared)
	})
	eng.Run()
	// First: 20MB in [0,2s) at 10 MB/s, then 20MB at 5 MB/s → 2+4 = 6s.
	if tFirst != 6*time.Second {
		t.Fatalf("first elapsed = %v, want 6s", tFirst)
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Flow A crosses narrow (3) and wide (30); flow B crosses wide only.
	// Max-min: A gets 3 (narrow-bound), B gets 27.
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	narrow := fab.NewLink("narrow", 3*MBps)
	wide := fab.NewLink("wide", 30*MBps)
	fa := fab.StartFlow(1000*MB, narrow, wide)
	fb := fab.StartFlow(1000*MB, wide)
	if math.Abs(float64(fa.Rate()-3*MBps)) > 1 {
		t.Fatalf("flow A rate = %v, want 3 MB/s", fa.Rate())
	}
	if math.Abs(float64(fb.Rate()-27*MBps)) > 1 {
		t.Fatalf("flow B rate = %v, want 27 MB/s", fb.Rate())
	}
	_ = eng
}

func TestManyFlowsEqualShare(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	trunk := fab.NewLink("trunk", 120*MBps)
	done := 0
	for i := 0; i < 12; i++ {
		eng.Spawn("tx", func(p *sim.Proc) {
			fab.Transfer(p, 100*MB, trunk)
			done++
			if got := p.Now(); got != 10*time.Second {
				t.Errorf("flow finished at %v, want 10s", got)
			}
		})
	}
	eng.Run()
	if done != 12 {
		t.Fatalf("done = %d, want 12", done)
	}
}

func TestCapacityFn(t *testing.T) {
	// Effective capacity halves when 2 flows are active: each flow then
	// gets 2.5 MB/s instead of 5.
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("svc", 10*MBps)
	l.SetCapacityFn(func(n int) Bandwidth {
		if n >= 2 {
			return 5 * MBps
		}
		return 10 * MBps
	})
	var t1 time.Duration
	eng.Spawn("a", func(p *sim.Proc) { t1 = fab.Transfer(p, 25*MB, l) })
	eng.Spawn("b", func(p *sim.Proc) { fab.Transfer(p, 25*MB, l) })
	eng.Run()
	if t1 != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s (2.5 MB/s each)", t1)
	}
}

func TestKilledSenderReleasesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	shared := fab.NewLink("shared", 10*MBps)
	var victim *sim.Proc
	victim = eng.Spawn("victim", func(p *sim.Proc) {
		fab.Transfer(p, 1000*MB, shared)
		t.Error("victim transfer completed despite kill")
	})
	var tOther time.Duration
	eng.Spawn("other", func(p *sim.Proc) { tOther = fab.Transfer(p, 50*MB, shared) })
	eng.After(2*time.Second, func() { victim.Kill() })
	eng.Run()
	// Other: 10MB in [0,2s) at 5 MB/s, then 40MB at 10 MB/s → 2+4 = 6s.
	if tOther != 6*time.Second {
		t.Fatalf("other elapsed = %v, want 6s", tOther)
	}
	if fab.ActiveFlows() != 0 {
		t.Fatalf("flows left: %d", fab.ActiveFlows())
	}
}

func TestZeroSizeTransfer(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("l", MBps)
	var elapsed time.Duration = -1
	eng.Spawn("tx", func(p *sim.Proc) { elapsed = fab.Transfer(p, 0, l) })
	eng.Run()
	if elapsed != 0 {
		t.Fatalf("zero transfer took %v", elapsed)
	}
}

func TestSimultaneousCompletions(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("l", 10*MBps)
	finished := 0
	for i := 0; i < 4; i++ {
		eng.Spawn("tx", func(p *sim.Proc) {
			fab.Transfer(p, 25*MB, l)
			finished++
		})
	}
	eng.Run()
	if finished != 4 {
		t.Fatalf("finished = %d, want 4", finished)
	}
	if !eng.Drained() {
		t.Fatal("engine not drained")
	}
}

func TestAggregateConservation(t *testing.T) {
	// Total bytes delivered per unit time never exceeds link capacity:
	// 8 staggered flows over a 16 MB/s link moving 16 MB each must take at
	// least 8 s in aggregate terms.
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("l", 16*MBps)
	var last time.Duration
	for i := 0; i < 8; i++ {
		i := i
		eng.Spawn("tx", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 250 * time.Millisecond)
			fab.Transfer(p, 16*MB, l)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	if last < 8*time.Second-time.Millisecond {
		t.Fatalf("all flows done at %v; faster than capacity allows (8s minimum)", last)
	}
}

func TestCapacityProfileInterpolation(t *testing.T) {
	fn := CapacityProfile(
		ProfilePoint{N: 1, Capacity: 50 * MBps},
		ProfilePoint{N: 8, Capacity: 110 * MBps},
		ProfilePoint{N: 128, Capacity: 393 * MBps},
	)
	if got := fn(1); got != 50*MBps {
		t.Fatalf("fn(1) = %v", got)
	}
	if got := fn(0); got != 50*MBps {
		t.Fatalf("fn(0) clamps to first knot, got %v", got)
	}
	if got := fn(8); got != 110*MBps {
		t.Fatalf("fn(8) = %v", got)
	}
	if got := fn(500); got != 393*MBps {
		t.Fatalf("fn(500) clamps to last knot, got %v", got)
	}
	// Midpoint in log space between 8 and 128 is 32.
	if got := fn(32); math.Abs(float64(got-(110+393)/2*MBps)) > float64(MBps)/2 {
		t.Fatalf("fn(32) = %v, want ~251.5 MB/s", got)
	}
	// Monotone between knots.
	prev := fn(1)
	for n := 2; n <= 200; n++ {
		cur := fn(n)
		if cur < prev {
			t.Fatalf("profile not monotone at n=%d", n)
		}
		prev = cur
	}
}

func TestCapacityProfileValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { CapacityProfile() })
	mustPanic("bad N", func() { CapacityProfile(ProfilePoint{N: 0, Capacity: MBps}) })
	mustPanic("non-increasing", func() {
		CapacityProfile(ProfilePoint{N: 4, Capacity: MBps}, ProfilePoint{N: 4, Capacity: MBps})
	})
}

func TestEmptyPathPanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("empty path did not panic")
		}
	}()
	fab.StartFlow(1 * MB)
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		trunk := fab.NewLink("trunk", 100*MBps)
		var out []time.Duration
		for i := 0; i < 20; i++ {
			i := i
			nic := fab.NewLink("nic", 13*MBps)
			eng.Spawn("tx", func(p *sim.Proc) {
				p.Sleep(time.Duration(i*37) * time.Millisecond)
				fab.Transfer(p, int64(i+1)*10*MB, nic, trunk)
				out = append(out, p.Now())
			})
		}
		eng.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
