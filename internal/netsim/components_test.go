package netsim

import (
	"testing"
	"time"

	"azureobs/internal/sim"
)

// TestComponentsPartition pins the domain-sharding oracle: disjoint
// client↔service pairs are separate components, flows chained through any
// shared link collapse into one, and querying between solves must not
// disturb rate allocation (the solver restamps its scratch every pass).
func TestComponentsPartition(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)

	if fab.Components() != 0 {
		t.Fatalf("empty fabric has %d components", fab.Components())
	}

	// Four disjoint pairs, each flow on its own private two-link path.
	const pairs = 4
	flows := make([]*Flow, pairs)
	for i := 0; i < pairs; i++ {
		a := fab.NewLink("up", 10*MBps)
		b := fab.NewLink("down", 10*MBps)
		flows[i] = fab.StartFlow(100*MB, a, b)
	}
	if got := fab.Components(); got != pairs {
		t.Fatalf("disjoint pairs: %d components, want %d", got, pairs)
	}
	if fab.SameComponent(flows[0], flows[1]) {
		t.Fatal("disjoint flows report a shared component")
	}
	if !fab.SameComponent(flows[0], flows[0]) {
		t.Fatal("flow not in its own component")
	}

	// One shared egress link chains two of the pairs together.
	shared := fab.NewLink("shared-egress", 10*MBps)
	bridge0 := fab.StartFlow(100*MB, flows[0].path[0], shared)
	bridge1 := fab.StartFlow(100*MB, flows[1].path[0], shared)
	if got := fab.Components(); got != pairs-1 {
		t.Fatalf("after bridging: %d components, want %d", got, pairs-1)
	}
	if !fab.SameComponent(flows[0], flows[1]) {
		t.Fatal("bridged flows still report separate components")
	}
	if fab.SameComponent(flows[0], flows[2]) {
		t.Fatal("unbridged flow pulled into the bridged component")
	}

	// The query is read-only with respect to allocation: the solver's next
	// pass restamps everything, so rates match a never-queried fabric.
	fab.Abandon(bridge0)
	fab.Abandon(bridge1)
	for _, fl := range flows {
		fab.Abandon(fl)
	}
	if got := fab.Components(); got != 0 {
		t.Fatalf("after abandoning all flows: %d components", got)
	}
}

// TestComponentsQueryPreservesTrace runs the same contended workload with
// and without interleaved Components queries and requires identical finish
// times — the oracle must be a pure observer.
func TestComponentsQueryPreservesTrace(t *testing.T) {
	run := func(query bool) []int64 {
		eng := sim.NewEngine()
		fab := NewFabric(eng)
		shared := fab.NewLink("shared", 10*MBps)
		var done []int64
		for i := 0; i < 3; i++ {
			i := i
			eng.Spawn("tx", func(p *sim.Proc) {
				p.Sleep(time.Duration(i) * time.Millisecond)
				fab.Transfer(p, 25*MB, shared)
				done = append(done, int64(p.Now()))
			})
		}
		if query {
			for i := 1; i <= 8; i++ {
				eng.ScheduleDaemon(time.Duration(i)*time.Second, func() {
					fab.Components()
				})
			}
		}
		eng.Run()
		return done
	}
	plain, queried := run(false), run(true)
	for i := range plain {
		if plain[i] != queried[i] {
			t.Fatalf("finish %d moved: %v vs %v", i, plain[i], queried[i])
		}
	}
}
