package netsim

import (
	"strings"
	"testing"
	"time"

	"azureobs/internal/sim"
)

// runBounded steps the engine at most maxEvents times, failing the test if
// the calendar is still live afterwards. The ping-pong regressions below
// previously looped forever at a single instant, so the tests must not rely
// on Run() returning.
func runBounded(t *testing.T, eng *sim.Engine, maxEvents int) {
	t.Helper()
	for i := 0; i < maxEvents; i++ {
		if !eng.Step() {
			return
		}
	}
	t.Fatalf("engine still live after %d events at t=%v (zero-duration ping-pong?)", maxEvents, eng.Now())
}

// Regression: a completion prediction that truncates to a sub-nanosecond
// residual used to reschedule at the current instant forever. 1001 bytes at
// 1.7 GB/s predicts completion at 588 ns; settling there leaves 1.4 bytes
// (> the 0.5-byte done threshold), and the fresh prediction of +0.82 ns
// truncated back to the same instant — an infinite zero-duration loop.
func TestSubNanosecondResidualTerminates(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("fast", Bandwidth(1.7)*GBps)
	fl := fab.StartFlow(1001, l)
	runBounded(t, eng, 100)
	if fab.ActiveFlows() != 0 {
		t.Fatalf("flow never completed: remaining=%v rate=%v", fl.Remaining(), fl.Rate())
	}
	// 1001 bytes / 1.7e9 B/s = 588.8 ns; the 1 ns progress bump may land at
	// 589 ns but must not drift beyond the next nanosecond.
	if got := eng.Now(); got < 588 || got > 589 {
		t.Fatalf("completed at %v, want 588-589ns", got)
	}
}

// Regression: a same-instant rate change used to ping-pong. Flows A (1000 B)
// and B (2001 B) share a 2 GB/s link at 1 GB/s each; A completes at exactly
// 1000 ns and B's rate doubles. B's refreshed prediction lands at 1500 ns
// with 1 byte still outstanding there, and the +0.5 ns residual truncated to
// a zero-duration event at 1500 ns, rescheduling itself forever.
func TestSameInstantRateChangeTerminates(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("shared", 2*GBps)
	fab.StartFlow(1000, l)
	fb := fab.StartFlow(2001, l)
	var doneAt time.Duration = -1
	eng.Spawn("waitB", func(p *sim.Proc) {
		fb.done.Wait(p)
		doneAt = p.Now()
	})
	runBounded(t, eng, 100)
	if fab.ActiveFlows() != 0 {
		t.Fatalf("flows never drained: %d active", fab.ActiveFlows())
	}
	if doneAt != 1501 {
		t.Fatalf("flow B completed at %v, want 1501ns (1500ns prediction + 1ns residual bump)", doneAt)
	}
}

// A capacity curve that dips to zero or below must fail loudly at allocation
// time, naming the link — previously every flow crossing it just stalled
// forever with no diagnostic.
func TestCapacityFnNonPositivePanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("frontend-42", 10*MBps)
	l.SetCapacityFn(func(n int) Bandwidth {
		if n >= 2 {
			return 0 // broken calibration curve
		}
		return 10 * MBps
	})
	fab.StartFlow(10*MB, l) // n=1: fine
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("zero effective capacity did not panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "frontend-42") {
			t.Fatalf("panic %v does not name the offending link", rec)
		}
	}()
	fab.StartFlow(10*MB, l) // n=2: capacity 0 → must panic
}

// A negative capacity curve is just as fatal as a zero one.
func TestCapacityFnNegativePanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	l := fab.NewLink("neg", 10*MBps)
	l.SetCapacityFn(func(n int) Bandwidth { return Bandwidth(-float64(n)) * MBps })
	defer func() {
		if recover() == nil {
			t.Fatal("negative effective capacity did not panic")
		}
	}()
	fab.StartFlow(MB, l)
}

// Completion events survive churn that does not move their firing time: a
// flow on a private link must keep its scheduled event (same *sim.Event)
// while unrelated flows come and go.
func TestUnrelatedChurnKeepsCompletionEvent(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	private := fab.NewLink("private", 10*MBps)
	other := fab.NewLink("other", 10*MBps)
	fl := fab.StartFlow(100*MB, private)
	ev := fl.complete
	if ev == nil {
		t.Fatal("no completion event scheduled")
	}
	tmp := fab.StartFlow(50*MB, other)
	fab.abandon(tmp)
	if fl.complete != ev {
		t.Fatal("churn on a disjoint component replaced an unchanged flow's completion event")
	}
	if got := ev.Time(); got != 10*time.Second {
		t.Fatalf("completion time %v, want 10s", got)
	}
	eng.Run()
	if fab.ActiveFlows() != 0 {
		t.Fatalf("flows left: %d", fab.ActiveFlows())
	}
}
