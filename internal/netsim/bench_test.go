package netsim

import (
	"fmt"
	"testing"
	"time"

	"azureobs/internal/sim"
)

// fig1Topology builds the blob-download shape of the paper's Section 3.1
// sweep: one shared service trunk with a concurrency-dependent capacity
// profile, plus one private access link per client.
func fig1Topology(fab *Fabric, clients int) (trunk *Link, nics []*Link) {
	trunk = fab.NewLink("trunk", 400*MBps)
	trunk.SetCapacityFn(CapacityProfile(
		ProfilePoint{N: 1, Capacity: 50 * MBps},
		ProfilePoint{N: 8, Capacity: 110 * MBps},
		ProfilePoint{N: 32, Capacity: 208 * MBps},
		ProfilePoint{N: 128, Capacity: 393 * MBps},
		ProfilePoint{N: 192, Capacity: 388 * MBps},
	))
	nics = make([]*Link, clients)
	for i := range nics {
		nics[i] = fab.NewLink("nic", 13*MBps)
	}
	return trunk, nics
}

// BenchmarkFlowChurn measures one arrival+departure churn cycle against a
// standing population of n-1 flows — the hot path of every closed-loop
// client sweep. Each iteration is two reallocations (one per churn event).
func BenchmarkFlowChurn(b *testing.B) {
	for _, n := range []int{1, 32, 192} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			eng := sim.NewEngine()
			fab := NewFabric(eng)
			trunk, nics := fig1Topology(fab, n)
			flows := make([]*Flow, n)
			for i := range flows {
				flows[i] = fab.StartFlow(1000*GB, trunk, nics[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % n
				fab.abandon(flows[slot])
				flows[slot] = fab.StartFlow(1000*GB, trunk, nics[slot])
			}
		})
	}
}

// BenchmarkFlowChurnStaggered is the same churn measured while the engine
// clock advances, so settle/reschedule run against nonzero elapsed time.
func BenchmarkFlowChurnStaggered(b *testing.B) {
	const n = 192
	eng := sim.NewEngine()
	fab := NewFabric(eng)
	trunk, nics := fig1Topology(fab, n)
	flows := make([]*Flow, n)
	for i := range flows {
		flows[i] = fab.StartFlow(1000*GB, trunk, nics[i])
	}
	next := eng.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += time.Microsecond
		eng.RunUntil(next)
		slot := i % n
		fab.abandon(flows[slot])
		flows[slot] = fab.StartFlow(1000*GB, trunk, nics[slot])
	}
}

// BenchmarkSweepTransfers runs a closed-loop transfer sweep end to end:
// every client repeatedly transfers through the shared trunk, so the
// benchmark covers the full event loop (schedule, settle, solve, complete).
func BenchmarkSweepTransfers(b *testing.B) {
	for _, n := range []int{32, 192} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				fab := NewFabric(eng)
				trunk, nics := fig1Topology(fab, n)
				for c := 0; c < n; c++ {
					c := c
					eng.Spawn("tx", func(p *sim.Proc) {
						for r := 0; r < 4; r++ {
							fab.Transfer(p, 8*MB, trunk, nics[c])
						}
					})
				}
				eng.Run()
			}
		})
	}
}
