// Package autoscale implements a startup-aware reactive scaling controller
// for simulated Azure deployments — the operational counterpart of the
// paper's Section 6.2 recommendation: dynamic scale-out works, but every
// added instance arrives ~10 minutes after it is requested (Table 1), so a
// controller must account for in-flight capacity and, when latency matters,
// keep hot standbys.
//
// The controller watches a work backlog (a queue length probe), compares it
// against the fleet's drain capability, and grows or shrinks a worker
// deployment between configured bounds. Capacity that has been requested
// but is still starting counts toward the plan, which prevents the classic
// over-provisioning spiral during the startup window.
package autoscale

import (
	"errors"
	"fmt"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
)

// Config tunes the controller.
type Config struct {
	// Min and Max bound the worker count.
	Min, Max int
	// TargetBacklogPerWorker is the backlog the controller tolerates per
	// running worker before scaling out.
	TargetBacklogPerWorker float64
	// EvalInterval is the control loop period.
	EvalInterval time.Duration
	// ScaleInIdleEvals is how many consecutive under-loaded evaluations are
	// required before scaling in (hysteresis).
	ScaleInIdleEvals int
	// Standby keeps this many workers above the computed need — the hot
	// standby option; 0 is pure reactive.
	Standby int
	// Step bounds how many instances one scale-out adds.
	Step int
}

// DefaultConfig returns a conservative controller.
func DefaultConfig() Config {
	return Config{
		Min:                    1,
		Max:                    20,
		TargetBacklogPerWorker: 4,
		EvalInterval:           time.Minute,
		ScaleInIdleEvals:       5,
		Step:                   4,
	}
}

// Decision records one control action, for inspection and tests.
type Decision struct {
	At      time.Duration
	Backlog int
	Running int
	Pending int
	Delta   int // requested change (+ out, − in, 0 hold)
}

// Controller runs the scaling loop.
type Controller struct {
	cloud *azure.Cloud
	cfg   Config

	// Backlog reports the current queued work items.
	Backlog func() int
	// OnReady is called for each instance that becomes available; the
	// application attaches its worker loop there.
	OnReady func(vm *fabric.VM)
	// OnRetire is called when an instance is being scaled in; the
	// application must stop using it.
	OnRetire func(vm *fabric.VM)

	running []*fabric.VM
	pending int // instances requested but not yet ready
	idle    int // consecutive under-loaded evaluations

	Decisions []Decision
	// InstanceSeconds accumulates billed capacity (running instances
	// integrated over time).
	InstanceSeconds float64
	// BacklogSeries samples the backlog each evaluation.
	BacklogSeries metrics.TimeSeries

	stopped bool
}

// New creates a controller. Backlog, OnReady and OnRetire must be set
// before Start.
func New(cloud *azure.Cloud, cfg Config) *Controller {
	if cfg.Min < 0 || cfg.Max < cfg.Min {
		panic(fmt.Sprintf("autoscale: bad bounds [%d,%d]", cfg.Min, cfg.Max))
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	if cfg.EvalInterval <= 0 {
		cfg.EvalInterval = time.Minute
	}
	return &Controller{cloud: cloud, cfg: cfg}
}

// Running returns the currently usable worker count.
func (c *Controller) Running() int { return len(c.running) }

// Pending returns instances requested but still starting.
func (c *Controller) Pending() int { return c.pending }

// Stop ends the control loop at its next evaluation.
func (c *Controller) Stop() { c.stopped = true }

// Start launches the controller as a daemon process: it provisions the
// initial fleet (Min + Standby) and then runs the evaluation loop until
// Stop.
func (c *Controller) Start() {
	if c.Backlog == nil || c.OnReady == nil || c.OnRetire == nil {
		panic("autoscale: Backlog/OnReady/OnRetire must be set")
	}
	c.cloud.Engine.SpawnDaemon("autoscaler", func(p *sim.Proc) {
		c.provision(p, c.cfg.Min+c.cfg.Standby)
		last := p.Now()
		for !c.stopped {
			p.Sleep(c.cfg.EvalInterval)
			c.InstanceSeconds += float64(len(c.running)) * (p.Now() - last).Seconds()
			last = p.Now()
			c.evaluate(p)
		}
	})
}

// evaluate runs one control decision.
func (c *Controller) evaluate(p *sim.Proc) {
	backlog := c.Backlog()
	c.BacklogSeries.Add(p.Now(), float64(backlog))
	capacityPlanned := len(c.running) + c.pending
	need := int(float64(backlog)/c.cfg.TargetBacklogPerWorker+0.999) + c.cfg.Standby
	if need < c.cfg.Min+c.cfg.Standby {
		need = c.cfg.Min + c.cfg.Standby
	}
	if need > c.cfg.Max {
		need = c.cfg.Max
	}
	delta := 0
	switch {
	case need > capacityPlanned:
		delta = need - capacityPlanned
		if delta > c.cfg.Step {
			delta = c.cfg.Step
		}
		c.idle = 0
		c.provisionAsync(p, delta)
	case need < len(c.running) && c.pending == 0:
		c.idle++
		if c.idle >= c.cfg.ScaleInIdleEvals {
			delta = -(len(c.running) - need)
			c.retire(-delta)
			c.idle = 0
		}
	default:
		c.idle = 0
	}
	c.Decisions = append(c.Decisions, Decision{
		At: p.Now(), Backlog: backlog, Running: len(c.running),
		Pending: c.pending, Delta: delta,
	})
}

// provision blocks until n instances are ready (used for the initial fleet).
func (c *Controller) provision(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	vms := c.startDeployment(p, n)
	for _, vm := range vms {
		c.running = append(c.running, vm)
		c.OnReady(vm)
	}
}

// provisionAsync requests n instances without blocking the control loop:
// the startup happens on a separate process and the capacity is counted as
// pending until ready — the Table 1 run time made this distinction matter.
func (c *Controller) provisionAsync(p *sim.Proc, n int) {
	c.pending += n
	c.cloud.Engine.SpawnDaemon("scale-out", func(q *sim.Proc) {
		vms := c.startDeployment(q, n)
		c.pending -= n
		if c.stopped {
			return
		}
		for _, vm := range vms {
			c.running = append(c.running, vm)
			c.OnReady(vm)
		}
	})
}

// startDeployment creates and runs a deployment, retrying startup failures.
func (c *Controller) startDeployment(p *sim.Proc, n int) []*fabric.VM {
	mgmt := c.cloud.Management()
	for attempt := 0; ; attempt++ {
		d, _, err := mgmt.Deploy(p, fabric.DeploymentSpec{
			Name:      fmt.Sprintf("scale-%d-%d", p.Now()/time.Second, attempt),
			Role:      fabric.Worker,
			Size:      fabric.Small,
			Instances: n,
		})
		if err != nil {
			panic(err)
		}
		if _, _, _, err := mgmt.Run(p, d); err != nil {
			if errors.Is(err, fabric.ErrStartupFailed) {
				if _, derr := mgmt.Delete(p, d); derr != nil {
					panic(derr)
				}
				continue
			}
			panic(err)
		}
		return d.VMs()
	}
}

// retire removes n workers from the tail of the fleet.
func (c *Controller) retire(n int) {
	for i := 0; i < n && len(c.running) > 0; i++ {
		vm := c.running[len(c.running)-1]
		c.running = c.running[:len(c.running)-1]
		c.OnRetire(vm)
	}
}
