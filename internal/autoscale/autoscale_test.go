package autoscale

import (
	"testing"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
)

// harness wires a controller to a synthetic task queue drained by simple
// workers (1 task/minute each).
type harness struct {
	cloud   *azure.Cloud
	ctl     *Controller
	backlog int
	done    int
	retired map[*fabric.VM]bool
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	ccfg := azure.Config{Seed: 3}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = false
	cloud := azure.NewCloud(ccfg)
	cloud.Controller.Quota = 1 << 20 // research-account quota
	h := &harness{cloud: cloud, retired: map[*fabric.VM]bool{}}
	h.ctl = New(cloud, cfg)
	h.ctl.Backlog = func() int { return h.backlog }
	h.ctl.OnRetire = func(vm *fabric.VM) { h.retired[vm] = true }
	h.ctl.OnReady = func(vm *fabric.VM) {
		cloud.Engine.SpawnDaemon("worker", func(p *sim.Proc) {
			for !h.retired[vm] {
				if h.backlog > 0 {
					h.backlog--
					vm.Execute(p, time.Minute)
					h.done++
				} else {
					p.Sleep(10 * time.Second)
				}
			}
		})
	}
	return h
}

func TestScaleOutOnBurst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min, cfg.Max, cfg.Step = 2, 16, 8
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.Schedule(30*time.Minute, func() { h.backlog += 200 })
	h.cloud.Engine.RunUntil(3 * time.Hour)

	if h.done < 200 {
		t.Fatalf("only %d/200 tasks done after 3h", h.done)
	}
	sawScaleOut, peakRunning := false, 0
	for _, d := range h.ctl.Decisions {
		if d.Delta > 0 {
			sawScaleOut = true
			if d.Delta > cfg.Step {
				t.Fatalf("scale-out step %d exceeds configured %d", d.Delta, cfg.Step)
			}
		}
		if d.Running > peakRunning {
			peakRunning = d.Running
		}
		if d.Running+d.Pending > cfg.Max {
			t.Fatalf("planned capacity %d exceeds Max %d", d.Running+d.Pending, cfg.Max)
		}
	}
	if !sawScaleOut {
		t.Fatal("no scale-out decision recorded")
	}
	if peakRunning <= cfg.Min {
		t.Fatalf("fleet never grew past Min: peak %d", peakRunning)
	}
	// After the burst the controller returns to Min (scale-in works end to
	// end in the same scenario).
	if h.ctl.Running() != cfg.Min {
		t.Fatalf("fleet = %d at the end, want Min=%d", h.ctl.Running(), cfg.Min)
	}
}

func TestPendingCapacityPreventsOvershoot(t *testing.T) {
	// With a ~10-minute startup and 1-minute evaluations, a controller that
	// ignored pending capacity would request more instances on every
	// evaluation of the same backlog. Ours must not: while the first
	// scale-out is starting, further evaluations of an unchanged need hold.
	cfg := DefaultConfig()
	cfg.Min, cfg.Max, cfg.Step = 1, 40, 4
	cfg.TargetBacklogPerWorker = 10
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.Schedule(10*time.Minute, func() { h.backlog += 35 }) // need ≈ 4 workers
	h.cloud.Engine.RunUntil(25 * time.Minute)

	requested := 0
	for _, d := range h.ctl.Decisions {
		if d.Delta > 0 {
			requested += d.Delta
		}
	}
	if requested > 8 {
		t.Fatalf("requested %d instances for a need of ~4: pending capacity ignored", requested)
	}
}

func TestScaleInAfterHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min, cfg.Max, cfg.Step = 1, 12, 6
	cfg.ScaleInIdleEvals = 3
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.Schedule(10*time.Minute, func() { h.backlog += 100 })
	h.cloud.Engine.RunUntil(5 * time.Hour)

	if h.ctl.Running() != cfg.Min {
		t.Fatalf("fleet = %d long after the burst, want Min=%d", h.ctl.Running(), cfg.Min)
	}
	if len(h.retired) == 0 {
		t.Fatal("no instances retired")
	}
}

func TestStandbyProvisionsExtra(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min, cfg.Max, cfg.Standby = 2, 16, 3
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.RunUntil(30 * time.Minute)
	if h.ctl.Running() != cfg.Min+cfg.Standby {
		t.Fatalf("idle fleet = %d, want Min+Standby = %d", h.ctl.Running(), cfg.Min+cfg.Standby)
	}
}

func TestStandbyDrainsBurstFaster(t *testing.T) {
	drainTime := func(standby int) time.Duration {
		cfg := DefaultConfig()
		cfg.Min, cfg.Max, cfg.Standby, cfg.Step = 2, 20, standby, 8
		h := newHarness(t, cfg)
		h.ctl.Start()
		h.cloud.Engine.Schedule(30*time.Minute, func() { h.backlog += 150 })
		var drained time.Duration
		h.cloud.Engine.SpawnDaemon("probe", func(p *sim.Proc) {
			for {
				p.Sleep(time.Minute)
				if drained == 0 && p.Now() > 31*time.Minute && h.backlog == 0 {
					drained = p.Now()
				}
			}
		})
		h.cloud.Engine.RunUntil(4 * time.Hour)
		if drained == 0 {
			t.Fatalf("standby=%d: burst never drained", standby)
		}
		return drained
	}
	cold := drainTime(0)
	hot := drainTime(8)
	if hot >= cold {
		t.Fatalf("hot standby (%v) not faster than cold (%v)", hot, cold)
	}
}

func TestInstanceSecondsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min, cfg.Max = 2, 4
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.RunUntil(2 * time.Hour)
	// 2 workers × ~2 h ≈ 14400 instance-seconds (minus startup).
	if h.ctl.InstanceSeconds < 10000 || h.ctl.InstanceSeconds > 15000 {
		t.Fatalf("instance-seconds = %.0f, want ~14000", h.ctl.InstanceSeconds)
	}
}

func TestStopHaltsLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min = 1
	h := newHarness(t, cfg)
	h.ctl.Start()
	h.cloud.Engine.Schedule(30*time.Minute, func() { h.ctl.Stop() })
	h.cloud.Engine.RunUntil(2 * time.Hour)
	n := len(h.ctl.Decisions)
	h.cloud.Engine.RunUntil(3 * time.Hour)
	if len(h.ctl.Decisions) != n {
		t.Fatal("controller kept deciding after Stop")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds accepted")
		}
	}()
	New(nil, Config{Min: 5, Max: 2})
}
