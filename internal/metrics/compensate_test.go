package metrics

import (
	"math"
	"testing"
	"time"
)

// cancellation is the classic compensated-summation torture case: the small
// term is annihilated by the large pair under naive (and plain-Kahan)
// accumulation, so the naive mean is 0 while the true mean is 1/3.
var cancellation = []float64{1e16, 1, -1e16}

func naiveMean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestSampleMeanCompensated is the regression the naive implementation
// fails: the exact mean of the cancellation sequence is 1/3.
func TestSampleMeanCompensated(t *testing.T) {
	if m := naiveMean(cancellation); m == 1.0/3 {
		t.Fatalf("torture case no longer defeats naive summation (naive mean = %v); pick a harder one", m)
	}
	s := NewSample(3)
	for _, x := range cancellation {
		s.Add(x)
	}
	if m := s.Mean(); m != 1.0/3 {
		t.Fatalf("Sample.Mean = %v, want exactly %v", m, 1.0/3)
	}
}

func TestHistogramMeanCompensated(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	for _, x := range cancellation {
		h.Add(x)
	}
	if m := h.Mean(); m != 1.0/3 {
		t.Fatalf("Histogram.Mean = %v, want exactly %v", m, 1.0/3)
	}
	// The in-range accounting must be untouched by compensation.
	if h.Under() != 1 || h.Over() != 1 || h.N() != 3 {
		t.Fatalf("histogram counters off: under=%d over=%d n=%d", h.Under(), h.Over(), h.N())
	}
}

func TestTimeSeriesMeanCompensated(t *testing.T) {
	var ts TimeSeries
	for i, x := range cancellation {
		ts.Add(time.Duration(i), x)
	}
	if m := ts.Mean(); m != 1.0/3 {
		t.Fatalf("TimeSeries.Mean = %v, want exactly %v", m, 1.0/3)
	}
}

// TestSummaryStdDegenerate pins the scale-exposed stddev contract: a
// single-observation summary (Runs == 1) and an empty summary both report
// stddev exactly 0, never NaN or ±Inf, and cancellation-induced negative
// m2 clamps to zero variance.
func TestSummaryStdDegenerate(t *testing.T) {
	var empty Summary
	if v := empty.Std(); v != 0 {
		t.Fatalf("empty Summary.Std = %v, want 0", v)
	}
	var one Summary
	one.Add(13.25)
	if v := one.Std(); v != 0 {
		t.Fatalf("n=1 Summary.Std = %v, want 0", v)
	}
	if v := one.Var(); v != 0 {
		t.Fatalf("n=1 Summary.Var = %v, want 0", v)
	}

	// Force the negative-m2 corner directly: rounding in Welford/Merge can
	// leave m2 a tiny negative value, whose square root would be NaN.
	neg := Summary{n: 5, mean: 1, m2: -1e-30}
	if v := neg.Var(); v != 0 {
		t.Fatalf("negative-m2 Var = %v, want clamp to 0", v)
	}
	if v := neg.Std(); v != 0 || math.IsNaN(v) {
		t.Fatalf("negative-m2 Std = %v, want 0", v)
	}
}
