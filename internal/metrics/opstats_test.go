package metrics

import (
	"testing"
	"time"
)

func TestOpStats(t *testing.T) {
	os := NewOpStats()
	os.Record("blob.Get", 10*time.Millisecond, "")
	os.Record("blob.Get", 30*time.Millisecond, "OperationTimedOut")
	os.Record("table.Insert", 5*time.Millisecond, "")
	os.Record("blob.Get", 20*time.Millisecond, "OperationTimedOut")

	if got := os.Ops(); len(got) != 2 || got[0] != "blob.Get" || got[1] != "table.Insert" {
		t.Fatalf("ops = %v, want insertion order [blob.Get table.Insert]", got)
	}
	g := os.Get("blob.Get")
	if g.OK != 1 || g.Errors.Get("OperationTimedOut") != 2 || g.Latency.N() != 3 {
		t.Fatalf("blob.Get stat = OK=%d errs=%d n=%d", g.OK, g.Errors.Get("OperationTimedOut"), g.Latency.N())
	}
	if mean := g.Latency.Mean(); mean < 0.019 || mean > 0.021 {
		t.Fatalf("blob.Get mean latency = %v, want 20ms", mean)
	}
	if os.Total() != 4 || os.TotalErrors() != 2 {
		t.Fatalf("totals = %d/%d, want 4 requests, 2 errors", os.Total(), os.TotalErrors())
	}
	if os.Get("missing") != nil {
		t.Fatal("missing op should be nil")
	}
}
