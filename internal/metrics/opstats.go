package metrics

import "time"

// OpStat aggregates one operation's outcomes: a latency summary over all
// requests (successes and failures), the success count, and error counts
// keyed by storage error code.
type OpStat struct {
	Latency Summary
	OK      uint64
	Errors  *CounterSet
}

// OpStats tallies per-operation latency and error statistics, keyed by
// operation name ("blob.Get", "table.Insert", ...). Iteration order is
// insertion order, so reports are stable. It is the sink behind the storage
// pipeline's hooks — the per-service observability the paper's Section 6.3
// monitoring infrastructure provided.
type OpStats struct {
	names []string
	m     map[string]*OpStat
}

// NewOpStats returns an empty tally.
func NewOpStats() *OpStats {
	return &OpStats{m: make(map[string]*OpStat)}
}

// Record tallies one completed operation. errCode is the storage error code
// ("" for success).
func (os *OpStats) Record(op string, d time.Duration, errCode string) {
	st, ok := os.m[op]
	if !ok {
		st = &OpStat{Errors: NewCounterSet()}
		os.m[op] = st
		os.names = append(os.names, op)
	}
	st.Latency.AddDuration(d)
	if errCode == "" {
		st.OK++
	} else {
		st.Errors.Inc(errCode, 1)
	}
}

// Get returns the named operation's stats, or nil if it was never recorded.
func (os *OpStats) Get(op string) *OpStat { return os.m[op] }

// Ops returns the recorded operation names in insertion order.
func (os *OpStats) Ops() []string { return os.names }

// TotalErrors sums error counts across all operations.
func (os *OpStats) TotalErrors() uint64 {
	var t uint64
	for _, n := range os.names {
		t += os.m[n].Errors.Total()
	}
	return t
}

// Total sums request counts (successes and failures) across all operations.
func (os *OpStats) Total() uint64 {
	var t uint64
	for _, n := range os.names {
		t += os.m[n].Latency.N()
	}
	return t
}
