package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// population var is 4; unbiased sample var = 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 {
		t.Fatal("empty summary stats not zero")
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("mean = %v, want 1.5", s.Mean())
	}
}

func TestSummaryMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var all, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged var = %v, want %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Merge(&b) // both empty: no-op
	if a.N() != 0 {
		t.Fatal("merge of empties non-empty")
	}
	b.Add(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.FracLE(1)) {
		t.Fatal("empty sample should return NaN")
	}
}

func TestSampleFracLE(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{1, 1, 2, 3, 10} {
		s.Add(x)
	}
	if got := s.FracLE(1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("FracLE(1) = %v, want 0.4", got)
	}
	if got := s.FracLE(2.5); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("FracLE(2.5) = %v, want 0.6", got)
	}
	if got := s.FracLE(0); got != 0 {
		t.Fatalf("FracLE(0) = %v, want 0", got)
	}
	if got := s.FracLE(100); got != 1 {
		t.Fatalf("FracLE(100) = %v, want 1", got)
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF levels = %d", len(cdf))
	}
	if cdf[9].P != 1 || cdf[9].Value != 1000 {
		t.Fatalf("last CDF point = %+v", cdf[9])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].P <= cdf[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestSampleInterleavedAddQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	_ = s.Median()
	s.Add(1) // must re-sort after a post-query Add
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("min after interleaved add = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under(), h.Over())
	}
	// bins: [0,2): {0,1.9}=2, [2,4): {2}=1, [4,6): {5}=1, [6,8): 0, [8,10): {9.999}=1
	want := []uint64{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Bin(i) != w {
			t.Fatalf("bin %d = %d, want %d", i, h.Bin(i), w)
		}
	}
	lo, hi := h.BinBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bin 2 bounds = [%v,%v)", lo, hi)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5} {
		h.Add(x)
	}
	c := h.Cumulative()
	want := []float64{0.25, 0.75, 1.0, 1.0}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("cumulative = %v, want %v", c, want)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(time.Hour, 5)
	ts.Add(2*time.Hour, 3)
	if ts.Len() != 3 {
		t.Fatalf("len = %d", ts.Len())
	}
	if ts.Max() != 5 {
		t.Fatalf("max = %v", ts.Max())
	}
	if math.Abs(ts.Mean()-3) > 1e-12 {
		t.Fatalf("mean = %v", ts.Mean())
	}
}

func TestTimeSeriesOrdering(t *testing.T) {
	var ts TimeSeries
	ts.Add(time.Hour, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	ts.Add(time.Minute, 2)
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("Success", 10)
	c.Inc("Unknown failure", 3)
	c.Inc("Success", 5)
	if c.Get("Success") != 15 {
		t.Fatalf("Success = %d", c.Get("Success"))
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "Success" || names[1] != "Unknown failure" {
		t.Fatalf("names = %v (insertion order expected)", names)
	}
	if c.Total() != 18 {
		t.Fatalf("total = %d", c.Total())
	}
}

// Property: Summary mean/var agree with direct computation.
func TestPropertySummaryMatchesDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, r := range raw {
			s.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Var()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []int16, qs [5]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, r := range raw {
			s.Add(float64(r))
		}
		sorted := append([]float64(nil), s.Values()...)
		sort.Float64s(sorted)
		qf := make([]float64, 0, 5)
		for _, q := range qs {
			qf = append(qf, float64(q)/255)
		}
		sort.Float64s(qf)
		prev := math.Inf(-1)
		for _, q := range qf {
			v := s.Quantile(q)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
