// Package metrics collects and summarises measurements produced by the
// simulated experiments: streaming moments, exact quantiles, histograms,
// CDFs and time series — the statistical toolkit behind every table and
// figure the benchmark harness regenerates.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates streaming count/mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for n < 2). Cancellation in
// Welford updates or Merge can leave m2 a tiny negative number; that would
// surface as a NaN standard deviation, so it clamps to 0.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.m2 / float64(s.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	return s.max
}

// Sum returns n × mean.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds other into s, as if every observation of other had been Added.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.mean += delta * n2 / tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.Std(), s.min, s.max)
}

// neumaierAdd folds x into a compensated running sum (Neumaier's variant of
// Kahan summation: unlike plain Kahan it stays exact when the new term is
// larger than the running sum). The true total is sum + comp.
//
// Million-client cells push counts where naive accumulation loses real
// precision: summing 1e6 latencies spanning six orders of magnitude drifts
// the mean by measurable ulps, and pathological orders ([1e16, 1, -1e16])
// lose the small term entirely.
func neumaierAdd(sum, comp, x float64) (float64, float64) {
	t := sum + x
	if math.Abs(sum) >= math.Abs(x) {
		comp += (sum - t) + x
	} else {
		comp += (x - t) + sum
	}
	return t, comp
}

// compensatedSum returns the Neumaier-compensated total of xs.
func compensatedSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		sum, comp = neumaierAdd(sum, comp, x)
	}
	return sum + comp
}

// Sample stores every observation for exact quantiles and CDF export. For
// the scales in this repository (≤ a few million points) exact storage is
// cheaper than the error analysis a sketch would demand.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the observations in sorted order. The returned slice is
// owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// between order statistics. Empty samples return NaN.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		s.sort()
		return s.xs[0]
	}
	if q >= 1 {
		s.sort()
		return s.xs[len(s.xs)-1]
	}
	s.sort()
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo] + frac*(s.xs[lo+1]-s.xs[lo])
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean, accumulated with compensated summation.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return compensatedSum(s.xs) / float64(len(s.xs))
}

// FracLE returns the fraction of observations ≤ x.
func (s *Sample) FracLE(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDF returns (value, cumulative probability) pairs at the given number of
// evenly spaced probability levels, suitable for plotting the paper's
// cumulative histograms.
func (s *Sample) CDF(levels int) []CDFPoint {
	pts := make([]CDFPoint, 0, levels)
	for i := 1; i <= levels; i++ {
		p := float64(i) / float64(levels)
		pts = append(pts, CDFPoint{Value: s.Quantile(p), P: p})
	}
	return pts
}

// CDFPoint is one point of an exported CDF.
type CDFPoint struct {
	Value float64
	P     float64
}

// Histogram counts observations into fixed-width bins over [Lo, Hi); values
// outside the range land in under/overflow counters.
type Histogram struct {
	Lo, Hi float64
	bins   []uint64
	under  uint64
	over   uint64
	n      uint64
	sum    float64
	comp   float64 // Neumaier compensation for sum
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic(fmt.Sprintf("metrics: bad histogram range [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum, h.comp = neumaierAdd(h.sum, h.comp, x)
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.bins)))
		if i == len(h.bins) { // guard FP edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the total observation count.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the mean of all observations (including out-of-range ones).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return (h.sum + h.comp) / float64(h.n)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// BinBounds returns the [lo, hi) bounds of bin i.
func (h *Histogram) BinBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Under and Over return the out-of-range counters.
func (h *Histogram) Under() uint64 { return h.under }

// Over returns the count of observations ≥ Hi.
func (h *Histogram) Over() uint64 { return h.over }

// Cumulative returns, for each bin upper edge, the fraction of in-range-or-
// under observations at or below it.
func (h *Histogram) Cumulative() []float64 {
	out := make([]float64, len(h.bins))
	var run uint64 = h.under
	for i, c := range h.bins {
		run += c
		out[i] = float64(run) / float64(h.n)
	}
	return out
}

// TimeSeries records (time, value) points, e.g. the daily timeout
// percentage of Fig. 7.
type TimeSeries struct {
	Times  []time.Duration
	Values []float64
}

// Add appends a point; times must be nondecreasing.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		panic("metrics: time series times must be nondecreasing")
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Max returns the maximum value (NaN when empty).
func (ts *TimeSeries) Max() float64 {
	if len(ts.Values) == 0 {
		return math.NaN()
	}
	m := ts.Values[0]
	for _, v := range ts.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean value (NaN when empty), accumulated with
// compensated summation.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return math.NaN()
	}
	return compensatedSum(ts.Values) / float64(len(ts.Values))
}

// CounterSet is a named tally, used for the ModisAzure failure taxonomy
// (Table 2). Iteration order is insertion order, so reports are stable.
type CounterSet struct {
	names  []string
	counts map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]uint64)}
}

// Inc adds delta to the named counter, creating it if needed.
func (c *CounterSet) Inc(name string, delta uint64) {
	if _, ok := c.counts[name]; !ok {
		c.names = append(c.names, name)
	}
	c.counts[name] += delta
}

// Get returns the named counter (0 if absent).
func (c *CounterSet) Get(name string) uint64 { return c.counts[name] }

// Names returns counter names in insertion order.
func (c *CounterSet) Names() []string { return c.names }

// Total returns the sum of all counters.
func (c *CounterSet) Total() uint64 {
	var t uint64
	for _, n := range c.names {
		t += c.counts[n]
	}
	return t
}
