package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// domainTrace records one fired step of a scripted workload for trace
// comparison: which unit, which step, and the virtual instant it ran at.
type domainTrace struct {
	unit int
	step int
	at   time.Duration
}

// runPingUnit spawns a self-contained workload on e: a little proc chain that
// sleeps pseudo-random (but unit-deterministic) intervals and appends to out.
// The same unit started on any engine produces the same relative trace.
func runPingUnit(e *Engine, unit, steps int, out *[]domainTrace) {
	e.Spawn(fmt.Sprintf("unit%d", unit), func(p *Proc) {
		for s := 0; s < steps; s++ {
			d := time.Duration((unit*7+s*13)%17+1) * time.Millisecond
			p.Sleep(d)
			*out = append(*out, domainTrace{unit: unit, step: s, at: p.Now()})
		}
	})
}

// TestDomainSingleDegenerates pins the zero-cost path: a one-domain group
// runs the member inline and produces exactly the standalone engine's trace,
// clock, event count and round count 1.
func TestDomainSingleDegenerates(t *testing.T) {
	var solo []domainTrace
	se := NewEngine()
	for u := 0; u < 4; u++ {
		runPingUnit(se, u, 6, &solo)
	}
	se.Run()

	var grouped []domainTrace
	g := NewDomains(1)
	for u := 0; u < 4; u++ {
		runPingUnit(g.Domain(0), u, 6, &grouped)
	}
	g.Run()

	if len(solo) != len(grouped) {
		t.Fatalf("trace length: solo %d grouped %d", len(solo), len(grouped))
	}
	for i := range solo {
		if solo[i] != grouped[i] {
			t.Fatalf("trace[%d]: solo %+v grouped %+v", i, solo[i], grouped[i])
		}
	}
	if se.EventsFired() != g.EventsFired() {
		t.Fatalf("events fired: solo %d grouped %d", se.EventsFired(), g.EventsFired())
	}
	if se.Now() != g.Now() {
		t.Fatalf("clock: solo %v grouped %v", se.Now(), g.Now())
	}
	if g.Rounds() != 1 {
		t.Fatalf("single unbounded domain took %d rounds, want 1", g.Rounds())
	}
	if !g.Drained() {
		t.Fatal("group not drained after Run")
	}
}

// TestDomainDisjointEquivalence is the core tentpole property: N disjoint
// units sharded across domains produce, per unit, exactly the trace the unit
// produces alone on its own engine — unbounded and under a small window, at
// several widths.
func TestDomainDisjointEquivalence(t *testing.T) {
	const units, steps = 8, 10

	// Reference: each unit alone on a standalone engine.
	ref := make([][]domainTrace, units)
	for u := 0; u < units; u++ {
		e := NewEngine()
		runPingUnit(e, u, steps, &ref[u])
		e.Run()
	}

	for _, n := range []int{1, 2, 4, 8} {
		for _, window := range []time.Duration{0, 5 * time.Millisecond, time.Second} {
			got := make([][]domainTrace, units)
			g := NewDomains(n)
			g.SetWindow(window)
			for u := 0; u < units; u++ {
				runPingUnit(g.Domain(u%n), u, steps, &got[u])
			}
			g.Run()
			for u := 0; u < units; u++ {
				if len(got[u]) != len(ref[u]) {
					t.Fatalf("n=%d window=%v unit %d: %d steps, want %d",
						n, window, u, len(got[u]), len(ref[u]))
				}
				for i := range ref[u] {
					if got[u][i] != ref[u][i] {
						t.Fatalf("n=%d window=%v unit %d trace[%d]: got %+v want %+v",
							n, window, u, i, got[u][i], ref[u][i])
					}
				}
			}
			if !g.Drained() {
				t.Fatalf("n=%d window=%v: not drained", n, window)
			}
			if window > 0 && g.Rounds() < 2 && n > 1 {
				// 10 steps of ≥1ms sleeps under a 5ms window must cross
				// boundaries; the 1s window legitimately takes one round.
				if window < 100*time.Millisecond {
					t.Fatalf("n=%d window=%v: only %d rounds", n, window, g.Rounds())
				}
			}
		}
	}
}

// TestDomainMailDeterminism runs a two-domain ping-pong over the boundary
// mailbox twice and asserts identical traces, delivery counts and rounds.
func TestDomainMailDeterminism(t *testing.T) {
	run := func() ([]string, uint64, int) {
		var log []string
		g := NewDomains(2)
		g.SetWindow(10 * time.Millisecond)
		var volley func(from, hops int) func()
		volley = func(from, hops int) func() {
			return func() {
				self := 1 - from
				e := g.Domain(self)
				log = append(log, fmt.Sprintf("hop%d@dom%d@%v", hops, self, e.Now()))
				if hops < 6 {
					e.Send(from, volley(self, hops+1))
				}
			}
		}
		// Seed the rally from domain 0's own event so the first Send happens
		// in kernel context during round 1.
		g.Domain(0).Schedule(3*time.Millisecond, func() {
			g.Domain(0).Send(1, volley(0, 1))
		})
		g.Run()
		return log, g.MailDelivered(), g.Rounds()
	}

	log1, mail1, rounds1 := run()
	log2, mail2, rounds2 := run()
	if strings.Join(log1, ";") != strings.Join(log2, ";") {
		t.Fatalf("mail trace not reproducible:\n%v\n%v", log1, log2)
	}
	if mail1 != mail2 || rounds1 != rounds2 {
		t.Fatalf("accounting not reproducible: mail %d/%d rounds %d/%d", mail1, mail2, rounds1, rounds2)
	}
	// The seed send plus hops 1..5 re-sending: six deliveries, six hops
	// logged, each landing at a successive window boundary.
	if mail1 != 6 || len(log1) != 6 {
		t.Fatalf("delivered %d mailbox events over %d hops, want 6 and 6", mail1, len(log1))
	}
}

// TestDomainMailMergeOrder pins the deterministic merge: sends queued by
// several source domains in one round are delivered in (source domain index,
// send order) order, regardless of goroutine interleaving during the round.
func TestDomainMailMergeOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var order []string
		g := NewDomains(4)
		g.SetWindow(time.Millisecond)
		// Domains 1..3 each send two messages to domain 0 during round one.
		// Source 3 schedules its kernel event earliest in virtual time —
		// merge order must still be by domain index, not by send time.
		for src := 1; src < 4; src++ {
			src := src
			at := time.Duration(4-src) * 100 * time.Microsecond
			g.Domain(src).Schedule(at, func() {
				for k := 0; k < 2; k++ {
					k := k
					g.Domain(src).Send(0, func() {
						order = append(order, fmt.Sprintf("src%d/%d", src, k))
					})
				}
			})
		}
		g.Run()
		want := "src1/0;src1/1;src2/0;src2/1;src3/0;src3/1"
		if got := strings.Join(order, ";"); got != want {
			t.Fatalf("trial %d merge order:\ngot  %s\nwant %s", trial, got, want)
		}
	}
}

// TestDomainWindowBoundary pins the half-open window: an event at exactly
// T+W belongs to the next round, and boundary mail lands at the boundary.
func TestDomainWindowBoundary(t *testing.T) {
	g := NewDomains(2)
	const w = 10 * time.Millisecond
	g.SetWindow(w)

	var fired []time.Duration
	e0 := g.Domain(0)
	e0.Schedule(w-time.Nanosecond, func() { fired = append(fired, e0.Now()) }) // round 1
	e0.Schedule(w, func() { fired = append(fired, e0.Now()) })                 // exactly at boundary → round 2
	e0.Schedule(w+time.Nanosecond, func() { fired = append(fired, e0.Now()) }) // round 2

	var mailAt time.Duration = -1
	g.Domain(1).Schedule(time.Millisecond, func() {
		g.Domain(1).Send(0, func() { mailAt = g.Domain(0).Now() })
	})
	g.Run()

	want := []time.Duration{w - time.Nanosecond, w, w + time.Nanosecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want events at %v", fired, want)
	}
	for i, at := range want {
		if fired[i] != at {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], at)
		}
	}
	if mailAt != w {
		t.Fatalf("boundary mail delivered at %v, want %v", mailAt, w)
	}
	if g.Rounds() < 2 {
		t.Fatalf("boundary-straddling run took %d rounds, want >= 2", g.Rounds())
	}
}

// TestDomainWindowSkipAhead: a huge gap between event clusters must not cost
// one round per empty window.
func TestDomainWindowSkipAhead(t *testing.T) {
	g := NewDomains(2)
	g.SetWindow(time.Millisecond)
	for i := 0; i < 2; i++ {
		e := g.Domain(i)
		e.Schedule(time.Duration(i)*100*time.Microsecond, func() {})
		e.Schedule(time.Hour+time.Duration(i)*100*time.Microsecond, func() {})
	}
	g.Run()
	// An hour of 1ms windows is 3.6M rounds if walked naively; skip-ahead
	// needs a handful.
	if g.Rounds() > 4 {
		t.Fatalf("sparse calendar took %d rounds, want <= 4", g.Rounds())
	}
}

// TestDomainPanicPropagation: a panic inside any domain's round (here a proc
// panic, which the member kernel re-raises on its round goroutine) surfaces
// from Domains.Run, lowest domain index first, with workers released.
func TestDomainPanicPropagation(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewDomains(4)
	for i := 0; i < 4; i++ {
		i := i
		g.Domain(i).Spawn("worker", func(p *Proc) {
			p.Sleep(time.Millisecond)
			if i >= 2 {
				panic(fmt.Sprintf("boom-dom%d", i))
			}
			p.Sleep(time.Millisecond)
		})
	}
	got := func() (r any) {
		defer func() { r = recover() }()
		g.Run()
		return nil
	}()
	if got == nil {
		t.Fatal("Domains.Run did not propagate the domain panic")
	}
	if s, ok := got.(string); !ok || !strings.Contains(s, "boom-dom2") {
		t.Fatalf("propagated %v, want the lowest-index panic boom-dom2", got)
	}
	// Give retired worker goroutines a moment to exit, then check none leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after panic unwind, %d before — workers leaked", now, before)
	}
}

// TestDomainStuckRunReturns: a domain whose processes can never advance (live
// proc, empty calendar) must not spin the coordinator; Run returns with the
// group undrained, mirroring a leaked process under Engine.Run.
func TestDomainStuckRunReturns(t *testing.T) {
	g := NewDomains(2)
	var sig Signal
	g.Domain(0).Spawn("parked", func(p *Proc) {
		sig.Wait(p) // never fired
	})
	g.Domain(1).Spawn("fine", func(p *Proc) { p.Sleep(time.Millisecond) })

	done := make(chan struct{})
	go func() { g.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Domains.Run looped on a stuck domain")
	}
	if g.Drained() {
		t.Fatal("group reports drained with a parked process leaked")
	}
	if g.Domain(1).Now() != time.Millisecond {
		t.Fatalf("healthy domain stopped at %v", g.Domain(1).Now())
	}
}

// TestDomainWorkerReuseAcrossRounds: parked proc workers survive window
// barriers — rounds must not retire and respawn the pool.
func TestDomainWorkerReuse(t *testing.T) {
	g := NewDomains(2)
	g.SetWindow(time.Millisecond)
	for i := 0; i < 2; i++ {
		e := g.Domain(i)
		e.Spawn("driver", func(p *Proc) {
			for s := 0; s < 50; s++ {
				p.Sleep(time.Millisecond) // one window boundary per step
			}
		})
	}
	g.Run()
	if g.Rounds() < 25 {
		t.Fatalf("expected many rounds, got %d", g.Rounds())
	}
	for i := 0; i < 2; i++ {
		e := g.Domain(i)
		if e.WorkersCreated() > 2 {
			t.Fatalf("domain %d created %d workers across %d rounds; pool not reused",
				i, e.WorkersCreated(), g.Rounds())
		}
	}
}

// TestDomainSendOutsideGroup: Send panics on a standalone engine and on a
// bad destination index.
func TestDomainSendValidation(t *testing.T) {
	e := NewEngine()
	mustPanic(t, "Send outside group", func() { e.Send(0, func() {}) })
	g := NewDomains(2)
	mustPanic(t, "Send out of range", func() { g.Domain(0).Send(2, func() {}) })
	mustPanic(t, "Send nil fn", func() { g.Domain(0).Send(1, nil) })
	mustPanic(t, "NewDomains(0)", func() { NewDomains(0) })
	mustPanic(t, "negative window", func() { g.SetWindow(-1) })
}

// TestDomainStats sanity-checks the coordinator accounting surface.
func TestDomainStats(t *testing.T) {
	g := NewDomains(2)
	g.SetWindow(time.Millisecond)
	for i := 0; i < 2; i++ {
		runPingUnit(g.Domain(i), i, 20, new([]domainTrace))
	}
	g.Run()
	s := g.Stats()
	if s.Domains != 2 || s.Rounds != g.Rounds() || len(s.PerDomainBusy) != 2 {
		t.Fatalf("stats shape: %+v", s)
	}
	if s.Wall <= 0 || s.Busy <= 0 {
		t.Fatalf("stats timing not recorded: %+v", s)
	}
	if u := s.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("utilization %v out of range", u)
	}
	var acc DomainAccum
	acc.Add(s)
	acc.Add(s)
	if acc.Groups != 2 || acc.Width != 2 || acc.Rounds != 2*s.Rounds {
		t.Fatalf("accum: groups=%d width=%d rounds=%d", acc.Groups, acc.Width, acc.Rounds)
	}
	if u := acc.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("accum utilization %v out of range", u)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}
