package sim

import (
	"fmt"
	"testing"
	"time"
)

// mailScriptOp is one decoded fuzz instruction: node src sends to node dst,
// dt ticks after src's previous send.
type mailScriptOp struct {
	src, dst int
	dt       time.Duration
}

// decodeMailScript turns raw fuzz bytes into a bounded send script over
// mailFuzzNodes logical nodes.
func decodeMailScript(data []byte) []mailScriptOp {
	const maxOps = 256
	ops := make([]mailScriptOp, 0, len(data)/3)
	for i := 0; i+2 < len(data) && len(ops) < maxOps; i += 3 {
		ops = append(ops, mailScriptOp{
			src: int(data[i]) % mailFuzzNodes,
			dst: int(data[i+1]) % mailFuzzNodes,
			dt:  time.Duration(data[i+2]%64+1) * mailFuzzTick,
		})
	}
	return ops
}

const (
	mailFuzzNodes  = 8
	mailFuzzTick   = time.Microsecond
	mailFuzzWindow = 16 * mailFuzzTick
)

// runMailScript executes the script over a Domains group of the given
// width, with the geo buffer-and-sort delivery discipline: node n lives on
// domain n%width, every message is stamped (src, per-pair seq) at send
// time, receivers buffer raw boundary arrivals and drain them sorted by
// (src, seq). It returns each node's drained delivery log.
func runMailScript(width int, ops []mailScriptOp) [][]string {
	type msg struct {
		src int
		seq uint64
	}
	g := NewDomains(width)
	g.SetWindow(mailFuzzWindow)

	logs := make([][]string, mailFuzzNodes)
	inbox := make([][]msg, mailFuzzNodes)
	armed := make([]bool, mailFuzzNodes)
	outSeq := make([][]uint64, mailFuzzNodes) // per (src, dst) pair
	for n := 0; n < mailFuzzNodes; n++ {
		outSeq[n] = make([]uint64, mailFuzzNodes)
	}
	drain := func(node int) {
		armed[node] = false
		b := inbox[node]
		inbox[node] = b[:0]
		// Insertion sort by (src, seq): raw arrival order is (source
		// domain, send order), which depends on the width; this canonical
		// order must not.
		for i := 1; i < len(b); i++ {
			for j := i; j > 0 && (b[j].src < b[j-1].src ||
				(b[j].src == b[j-1].src && b[j].seq < b[j-1].seq)); j-- {
				b[j], b[j-1] = b[j-1], b[j]
			}
		}
		for _, m := range b {
			logs[node] = append(logs[node], fmt.Sprintf("%d:%d@%d", m.src, m.seq, g.Domain(node%width).Now()/mailFuzzTick))
		}
	}

	// Schedule the script: each op fires on src's engine dt after the
	// node's previous op, and mails a stamped message to dst.
	next := make([]time.Duration, mailFuzzNodes)
	for _, op := range ops {
		op := op
		next[op.src] += op.dt
		src := g.Domain(op.src % width)
		src.Schedule(next[op.src], func() {
			outSeq[op.src][op.dst]++
			m := msg{src: op.src, seq: outSeq[op.src][op.dst]}
			src.Send(op.dst%width, func() {
				dstEng := g.Domain(op.dst % width)
				inbox[op.dst] = append(inbox[op.dst], m)
				if !armed[op.dst] {
					armed[op.dst] = true
					node := op.dst
					dstEng.Schedule(dstEng.Now(), func() { drain(node) })
				}
			})
		})
	}
	g.Run()
	return logs
}

// FuzzDomainMailOrder asserts the window-boundary mail contract the
// campaign and geo layers build on: for any send script, the canonical
// (src, seq)-sorted delivery order — and the boundary each message lands
// on — is invariant under the domain width and under goroutine
// interleaving (each width runs twice; run the target under -race to make
// the second claim sharp).
func FuzzDomainMailOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 5, 1, 0, 5, 2, 3, 40, 3, 2, 1})
	f.Add([]byte{7, 0, 63, 0, 7, 63, 7, 0, 1, 0, 0, 9})
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeMailScript(data)
		var want [][]string
		for _, width := range []int{1, 2, 4, 8} {
			for rep := 0; rep < 2; rep++ {
				got := runMailScript(width, ops)
				if want == nil {
					want = got
					continue
				}
				for n := range got {
					if len(got[n]) != len(want[n]) {
						t.Fatalf("width=%d rep=%d node=%d: %d deliveries, want %d\ngot  %v\nwant %v",
							width, rep, n, len(got[n]), len(want[n]), got[n], want[n])
					}
					for k := range got[n] {
						if got[n][k] != want[n][k] {
							t.Fatalf("width=%d rep=%d node=%d delivery %d: %q, want %q",
								width, rep, n, k, got[n][k], want[n][k])
						}
					}
				}
			}
		}
	})
}
