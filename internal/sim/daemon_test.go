package sim

import (
	"testing"
	"time"
)

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.Spawn("work", func(p *Proc) { p.Sleep(10 * time.Second) })
	e.Run() // must terminate despite the immortal daemon
	if e.Now() != 10*time.Second {
		t.Fatalf("Run stopped at %v, want 10s", e.Now())
	}
	if ticks < 9 || ticks > 10 {
		t.Fatalf("daemon ticked %d times before the foreground drained, want ~10", ticks)
	}
	if !e.Drained() {
		t.Fatal("engine with only daemon work should report drained")
	}
}

func TestDaemonEventsFireDuringForegroundWork(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AfterDaemon(time.Second, func() { fired = true })
	e.Schedule(5*time.Second, func() {})
	e.Run()
	if !fired {
		t.Fatal("daemon event before the last foreground event did not fire")
	}
}

func TestDaemonEventsBeyondForegroundDoNotFire(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AfterDaemon(10*time.Second, func() { fired = true })
	e.Schedule(time.Second, func() {})
	e.Run()
	if fired {
		t.Fatal("daemon event after the last foreground event fired under Run")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock advanced to %v chasing a daemon event", e.Now())
	}
}

func TestRunUntilFiresDaemons(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Hour)
			ticks++
		}
	})
	e.RunUntil(24 * time.Hour)
	if ticks != 24 {
		t.Fatalf("daemon ticked %d times in 24h under RunUntil, want 24", ticks)
	}
}

func TestDaemonCanWakeForegroundProcess(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	e.SpawnDaemon("producer", func(p *Proc) {
		for i := 0; ; i++ {
			p.Sleep(time.Second)
			q.Put(i)
		}
	})
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for len(got) < 3 {
			got = append(got, q.Get(p))
		}
	})
	e.Run()
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("got = %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("finished at %v, want 3s", e.Now())
	}
}

func TestKillDaemon(t *testing.T) {
	e := NewEngine()
	ticks := 0
	d := e.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.Schedule(5*time.Second+time.Millisecond, func() { d.Kill() })
	e.Schedule(20*time.Second, func() {})
	e.Run()
	if ticks != 5 {
		t.Fatalf("killed daemon ticked %d times, want 5", ticks)
	}
	if !d.Finished() {
		t.Fatal("killed daemon not finished")
	}
}

func TestLiveProcsIgnoresDaemons(t *testing.T) {
	e := NewEngine()
	e.SpawnDaemon("d", func(p *Proc) {
		for {
			p.Sleep(time.Minute)
		}
	})
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs counts daemons: %d", e.LiveProcs())
	}
	e.Spawn("w", func(p *Proc) { p.Sleep(time.Second) })
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1", e.LiveProcs())
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after run = %d", e.LiveProcs())
	}
}

func TestCancelForegroundAllowsTermination(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Hour, func() {})
	e.SpawnDaemon("d", func(p *Proc) {
		for {
			p.Sleep(time.Minute)
		}
	})
	e.Cancel(ev)
	e.Run() // nothing foreground left: returns immediately
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v with no foreground work", e.Now())
	}
}
