package sim

import (
	"testing"
	"time"
)

func TestRecycleReusesAllocation(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Cancel(ev)
	eng.Recycle(ev)
	fired := false
	ev2 := eng.Schedule(2*time.Second, func() { fired = true })
	if ev2 != ev {
		t.Fatal("schedule did not reuse the recycled event")
	}
	if ev2.Time() != 2*time.Second || ev2.Canceled() {
		t.Fatalf("recycled event carries stale state: at=%v canceled=%v", ev2.Time(), ev2.Canceled())
	}
	eng.Run()
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

func TestRecycleFromInsideCallback(t *testing.T) {
	eng := NewEngine()
	var ev *Event
	ev = eng.Schedule(time.Second, func() { eng.Recycle(ev) })
	eng.Run()
	if ev2 := eng.Schedule(2*time.Second, func() {}); ev2 != ev {
		t.Fatal("event recycled from its own callback was not reused")
	}
}

func TestRecycleNilIsNoop(t *testing.T) {
	NewEngine().Recycle(nil)
}

func TestRecycleScheduledPanics(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("recycling a still-scheduled event did not panic")
		}
	}()
	eng.Recycle(ev)
}

func TestRecycleTwicePanics(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Cancel(ev)
	eng.Recycle(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle did not panic")
		}
	}()
	eng.Recycle(ev)
}

func TestRecycledEventsDoNotAlias(t *testing.T) {
	// A recycled event reused for a different callback must fire the new
	// callback at the new time, with ordering against fresh events intact.
	eng := NewEngine()
	var order []int
	a := eng.Schedule(time.Second, func() {})
	eng.Cancel(a)
	eng.Recycle(a)
	eng.Schedule(2*time.Second, func() { order = append(order, 1) }) // reuses a
	eng.Schedule(2*time.Second, func() { order = append(order, 2) }) // fresh
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}
