package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestCancelRecycleReusesAllocation(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Schedule(2*time.Second, func() {}) // keeps Run stepping past the cancel
	eng.CancelRecycle(ev)
	// The canceled event is still queued (lazy delete); the free list gets
	// it back only once the pop loop discards it.
	if eng.FreeEvents() != 0 {
		t.Fatalf("free list has %d events before the lazy pop", eng.FreeEvents())
	}
	eng.Run()
	if eng.FreeEvents() != 1 {
		t.Fatalf("free list has %d events after the lazy pop, want 1", eng.FreeEvents())
	}
	fired := false
	ev2 := eng.Schedule(2*time.Second, func() { fired = true })
	if ev2 != ev {
		t.Fatal("schedule did not reuse the recycled event")
	}
	if ev2.Time() != 2*time.Second || ev2.Canceled() {
		t.Fatalf("recycled event carries stale state: at=%v canceled=%v", ev2.Time(), ev2.Canceled())
	}
	eng.Run()
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

func TestCancelRecycleAfterFire(t *testing.T) {
	// On an already-fired event, CancelRecycle recycles immediately.
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Run()
	eng.CancelRecycle(ev)
	if eng.FreeEvents() != 1 {
		t.Fatalf("free list has %d events, want 1", eng.FreeEvents())
	}
	if ev2 := eng.Schedule(2*time.Second, func() {}); ev2 != ev {
		t.Fatal("schedule did not reuse the recycled event")
	}
}

func TestRecycleFromInsideCallback(t *testing.T) {
	eng := NewEngine()
	var ev *Event
	ev = eng.Schedule(time.Second, func() { eng.Recycle(ev) })
	eng.Run()
	if ev2 := eng.Schedule(2*time.Second, func() {}); ev2 != ev {
		t.Fatal("event recycled from its own callback was not reused")
	}
}

func TestRecycleNilIsNoop(t *testing.T) {
	NewEngine().Recycle(nil)
	NewEngine().CancelRecycle(nil)
}

func TestRecycleScheduledPanics(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("recycling a still-scheduled event did not panic")
		}
	}()
	eng.Recycle(ev)
}

func TestRecycleCanceledStillQueuedPanics(t *testing.T) {
	// Cancel is lazy for internal heap slots: the event stays in the
	// calendar, so a hand Recycle in the old cancel-then-recycle order
	// would hand out an event the heap still points at. It must panic,
	// with a message that names the fix. (Canceled leaves detach eagerly;
	// the extra events below give ev children so it stays queued.)
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	for i := 2; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Second, func() {})
	}
	eng.Cancel(ev)
	if !ev.Canceled() || ev.index < 0 {
		t.Fatalf("canceled=%v index=%d; want a canceled event still queued", ev.Canceled(), ev.index)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("recycling a canceled-but-queued event did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "CancelRecycle") {
			t.Fatalf("panic %v does not point the caller at CancelRecycle", r)
		}
	}()
	eng.Recycle(ev)
}

func TestRecycleCanceledAfterLazyPop(t *testing.T) {
	// The other order: once the kernel has lazily popped the canceled
	// event, the holder may recycle it by hand.
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Schedule(2*time.Second, func() {}) // keeps Run going past the cancel
	eng.Cancel(ev)
	eng.Run()
	eng.Recycle(ev)
	if ev2 := eng.Schedule(3*time.Second, func() {}); ev2 != ev {
		t.Fatal("schedule did not reuse the recycled event")
	}
}

func TestRecycleTwicePanics(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.Run()
	eng.Recycle(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle did not panic")
		}
	}()
	eng.Recycle(ev)
}

func TestCancelRecycleTwicePanics(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(time.Second, func() {})
	eng.CancelRecycle(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double CancelRecycle did not panic")
		}
	}()
	eng.CancelRecycle(ev)
}

func TestRecycledEventsDoNotAlias(t *testing.T) {
	// A recycled event reused for a different callback must fire the new
	// callback at the new time, with ordering against fresh events intact.
	eng := NewEngine()
	var order []int
	a := eng.Schedule(time.Second, func() {})
	eng.CancelRecycle(a)
	eng.Schedule(2*time.Second, func() { order = append(order, 1) })
	eng.Schedule(2*time.Second, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestEventPoolAdaptiveCap(t *testing.T) {
	// The free-list cap tracks the calendar's high-water mark: a cell that
	// legitimately keeps n > minEventPool events in flight can retire and
	// re-schedule all of them through the pool instead of thrashing the
	// allocator at a fixed 4096.
	eng := NewEngine()
	n := minEventPool + 512
	evs := make([]*Event, n)
	for i := range evs {
		evs[i] = eng.Schedule(time.Duration(i), func() {})
	}
	eng.Run()
	for _, ev := range evs {
		eng.Recycle(ev)
	}
	if got := eng.FreeEvents(); got != n {
		t.Fatalf("free list holds %d events, want highwater %d", got, n)
	}
	// The cap is the high-water mark, not unbounded: one more recycle beyond
	// it is dropped for the GC (but still marked pooled, so a double recycle
	// of a dropped event is caught like any other).
	extra := &Event{index: -1}
	eng.recycle(extra)
	if got := eng.FreeEvents(); got != n {
		t.Fatalf("free list grew past its cap: %d events, want %d", got, n)
	}
	if !extra.pooled {
		t.Fatal("dropped event not marked pooled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle of a dropped event did not panic")
		}
	}()
	eng.Recycle(evs[n-1])
}

// TestEventPoolBurstReuse is the regression test for the adaptive cap: when
// a burst far larger than the old fixed 4096 cap retires en masse and is
// then re-scheduled (the pattern a broadcast wake over a large flat-client
// cell produces every round), the second burst must come entirely from the
// free list. With the fixed cap, n-4096 events per round were dropped to the
// GC and re-allocated.
func TestEventPoolBurstReuse(t *testing.T) {
	eng := NewEngine()
	n := 2 * minEventPool
	fn := func() {}
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i), fn)
	}
	eng.Run() // retire the whole burst; reclaim is off, recycle by hand below
	// The events above were not engine-owned, so they are garbage now; model
	// the engine-owned path (reclaim) instead: schedule, run, repeat.
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			eng.scheduleOwned(eng.Now()+time.Duration(i+1), fn, false, true)
		}
		eng.Run()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		eng.scheduleOwned(eng.Now()+time.Duration(i+1), fn, false, true)
	}
	eng.Run()
	runtime.ReadMemStats(&after)
	if allocs := after.Mallocs - before.Mallocs; allocs > 64 {
		t.Fatalf("re-scheduling a %d-event burst allocated %d times, want ~0", n, allocs)
	}
}

func TestEventPoolCapBounds(t *testing.T) {
	eng := NewEngine()
	if got := eng.poolCap(); got != minEventPool {
		t.Fatalf("idle engine pool cap = %d, want floor %d", got, minEventPool)
	}
	eng.eventsHigh = maxEventPoolCap + 5
	if got := eng.poolCap(); got != maxEventPoolCap {
		t.Fatalf("pool cap = %d, want ceiling %d", got, maxEventPoolCap)
	}
}
