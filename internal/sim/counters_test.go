package sim

import (
	"testing"
	"time"
)

// interior reports whether ev currently occupies an internal heap slot, so
// canceling it must take the lazy corpse path (leaf cancels detach eagerly
// and never touch the dead counter).
func interior(e *Engine, ev *Event) bool {
	return ev.index >= 0 && ev.index<<2+1 <= len(e.events)-1
}

// TestCountersUnderCancelChurn pins the observability counters — Pending,
// FreeEvents, EventsFired — across a cancel-heavy script that drives the
// calendar through corpse accumulation, an organic compaction, and
// reclaim-path recycling. Pending must track live entries exactly at every
// checkpoint — heap length minus corpses — never the raw length.
func TestCountersUnderCancelChurn(t *testing.T) {
	const early, late = 64, 1000
	e := NewEngine()
	// The early population keeps the calendar alive; the late bulk (far
	// future, so none of its corpses can drift to the root and get popped)
	// is what the cancel storm shreds.
	earlyEvs := make([]*Event, early)
	for i := range earlyEvs {
		earlyEvs[i] = e.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	lateEvs := make([]*Event, late)
	for i := range lateEvs {
		lateEvs[i] = e.Schedule(time.Hour+time.Duration(i+1)*time.Millisecond, func() {})
	}
	scheduled := early + late
	if e.Pending() != scheduled || e.FreeEvents() != 0 || e.EventsFired() != 0 {
		t.Fatalf("fresh calendar: Pending=%d FreeEvents=%d Fired=%d",
			e.Pending(), e.FreeEvents(), e.EventsFired())
	}

	// Corpse-parking checkpoint: cancel a batch of interior late events.
	// They hold their heap slots, so raw length overstates the live queue —
	// the exact state the Pending fix is about.
	canceled := 0
	for _, ev := range lateEvs {
		if canceled == 40 {
			break
		}
		if interior(e, ev) {
			e.Cancel(ev)
			canceled++
		}
	}
	if canceled != 40 || e.dead != 40 {
		t.Fatalf("corpse seeding: canceled=%d dead=%d", canceled, e.dead)
	}
	if got, want := e.Pending(), scheduled-canceled; got != want || len(e.events) != scheduled {
		t.Fatalf("with corpses parked: Pending=%d want %d (len=%d dead=%d)",
			got, want, len(e.events), e.dead)
	}

	// Cancel storm: shred the whole late bulk through the reclaim path.
	// Interior cancels stack up corpses while leaf cancels detach eagerly
	// and shrink the heap under them — the ratio that arms the compactor.
	recycledCancels := 0
	compacted := false
	for _, ev := range lateEvs {
		if ev.canceled {
			continue
		}
		wasInterior := interior(e, ev)
		e.CancelRecycle(ev)
		canceled++
		recycledCancels++
		if wasInterior && e.dead == 0 {
			// An interior cancel always increments dead; finding it at zero
			// means noteDead just ran the compactor.
			compacted = true
		}
		if got, want := e.Pending(), scheduled-canceled; got != want {
			t.Fatalf("mid-storm: Pending=%d want %d (len=%d dead=%d)",
				got, want, len(e.events), e.dead)
		}
	}
	if !compacted && e.dead > 0 {
		// The storm left the threshold crossed but happened to end on leaf
		// cancels, which never run the dead-ratio check. One more interior
		// corpse trips it: an event earlier than everything pending sifts
		// straight into the root region, which is interior by construction.
		trigger := e.Schedule(time.Microsecond, func() {})
		scheduled++
		if !interior(e, trigger) {
			t.Fatalf("sift-to-root trigger landed in a leaf slot (index %d, len %d)",
				trigger.index, len(e.events))
		}
		e.CancelRecycle(trigger)
		canceled++
		recycledCancels++
		if e.dead == 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatalf("compaction never triggered: len=%d dead=%d canceled=%d",
			len(e.events), e.dead, canceled)
	}
	if got, want := e.Pending(), scheduled-canceled; got != want {
		t.Fatalf("post-compaction: Pending=%d want %d (len=%d dead=%d)",
			got, want, len(e.events), e.dead)
	}
	if len(e.events) != e.Pending() {
		t.Fatalf("compaction left corpses behind: len=%d Pending=%d", len(e.events), e.Pending())
	}
	// Every reclaim-path cancel is back on the free list now: leaf cancels
	// recycle at detach, corpses at the compaction that just swept them.
	// (Minus one when the compaction trigger was needed: its Schedule draws
	// an event back out of the very pool the storm filled.)
	if e.FreeEvents() < recycledCancels-1 {
		t.Fatalf("FreeEvents=%d after %d reclaim cancels and a compaction",
			e.FreeEvents(), recycledCancels)
	}

	// Drain the survivors: every scheduled event has now either fired or
	// been canceled, and nothing else may fire.
	e.Run()
	if want := uint64(scheduled - canceled); e.EventsFired() != want {
		t.Fatalf("EventsFired=%d after drain, want %d", e.EventsFired(), want)
	}
	if e.Pending() != 0 || len(e.events) != 0 || e.dead != 0 {
		t.Fatalf("after Run: Pending=%d len=%d dead=%d", e.Pending(), len(e.events), e.dead)
	}
	if !e.Drained() {
		t.Fatal("engine not drained")
	}
}

// TestPendingExcludesCorpseRoots covers the remaining lazy-delete path: a
// corpse sitting at the heap root (never a leaf in any heap with children)
// is skipped by the pop loop, and Pending must exclude it the whole way.
func TestPendingExcludesCorpseRoots(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(time.Millisecond, func() {})
	for i := 2; i <= 8; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Cancel(first) // root of an 8-entry heap: interior, stays as a corpse
	if e.dead != 1 {
		t.Fatalf("root cancel took the leaf path (dead=%d); test premise broken", e.dead)
	}
	if got := e.Pending(); got != 7 {
		t.Fatalf("Pending=%d with a root corpse, want 7", got)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 7 || e.EventsFired() != 7 {
		t.Fatalf("stepped %d events (fired counter %d), want 7", fired, e.EventsFired())
	}
	if e.Pending() != 0 || e.dead != 0 {
		t.Fatalf("after drain: Pending=%d dead=%d", e.Pending(), e.dead)
	}
}
