package sim

import "time"

// Actor is the flat counterpart of a process: a client-scale activity
// compiled into a continuation-passing state machine that the kernel drives
// directly, with no goroutine, no handoff channels and no Proc descriptor.
// Where a Proc blocks (Sleep, Signal.Wait), an Actor instead *arms* a
// continuation — a cached step function run by the next wake event — and
// returns to the kernel. The entire per-actor cost is this struct plus one
// cached trampoline closure; a million parked actors cost megabytes, not the
// gigabytes of stacks a million parked goroutines would.
//
// Equivalence with the process API is exact by construction: every point
// where a process schedules a kernel event (the spawn start event, a sleep's
// wake, a signal fire's wake) the actor schedules exactly one event through
// the same engine-owned reclaim path, consuming the same sequence number the
// process path would. A driver ported from Spawn to Go/Sleep/WaitFlat
// therefore produces a bit-identical trace. See DESIGN.md §11 for when to
// use which API.
//
// Discipline: every step must either arm a continuation (Sleep, a WaitFlat
// registration, or a nested flat call that does so) or call Finish before
// returning; a step that does neither has silently leaked the actor, and the
// trampoline panics. Actors have no Kill — activities needing cancellation
// or structured teardown stay on the process API.
type Actor struct {
	eng    *Engine
	name   string
	daemon bool
	live   bool // started (Go) and not yet finished
	armed  bool // a continuation is registered for the next wake
	next   func()
	wake   *Event // pending wake event, nil while externally parked
	onWake func() // cached trampoline; the only closure an actor allocates

	// waiter is the actor's embedded signal waiter, reused across WaitFlat
	// registrations so parking on a signal allocates nothing. One signal
	// wait may be outstanding at a time.
	waiter sigWaiter
}

// Bind attaches the actor to an engine and allocates its trampoline. It must
// be called once, before Go. name labels kernel panics.
func (a *Actor) Bind(e *Engine, name string) {
	if a.eng != nil {
		panic("sim: Actor bound twice")
	}
	a.eng = e
	a.name = name
	a.onWake = a.step
}

// Engine returns the engine the actor is bound to.
func (a *Actor) Engine() *Engine { return a.eng }

// Now returns the engine's current virtual time.
func (a *Actor) Now() time.Duration { return a.eng.now }

// Name returns the label given to Bind.
func (a *Actor) Name() string { return a.name }

// Live reports whether the actor has started and not yet finished.
func (a *Actor) Live() bool { return a.live }

// Go starts the actor: first runs at the current virtual time, scheduled
// exactly as a process spawn's start event would be. The actor counts as
// foreground work until Finish.
func (a *Actor) Go(first func()) { a.GoAt(a.eng.now, first) }

// GoAt starts the actor at absolute virtual time at.
func (a *Actor) GoAt(at time.Duration, first func()) {
	if a.eng == nil {
		panic("sim: Actor not bound")
	}
	if a.live {
		panic("sim: Actor " + a.name + " started twice")
	}
	a.live = true
	if !a.daemon {
		a.eng.flats++
	}
	a.armEvent(at, first)
}

// Sleep arms then to run d from now — the actor-side mirror of Proc.Sleep,
// scheduling one wake event through the same engine-owned path.
func (a *Actor) Sleep(d time.Duration, then func()) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	a.armEvent(a.eng.now+d, then)
}

// Finish ends the actor. It may start again with Go (the trampoline and
// engine binding are retained).
func (a *Actor) Finish() {
	if !a.live {
		panic("sim: Finish of an actor that is not live")
	}
	a.live = false
	if !a.daemon {
		a.eng.flats--
	}
}

// armEvent registers then and schedules the wake that runs it.
func (a *Actor) armEvent(at time.Duration, then func()) {
	a.arm(then)
	a.wake = a.eng.scheduleOwned(at, a.onWake, a.daemon, true)
}

// arm registers then as the continuation without scheduling anything; the
// wake comes from outside (a signal fire, a completing flow). Kernel
// primitives call this; drivers use Sleep / WaitFlat.
func (a *Actor) arm(then func()) {
	if a.armed {
		panic("sim: actor " + a.name + " armed twice")
	}
	if then == nil {
		panic("sim: actor " + a.name + " armed with nil continuation")
	}
	a.armed = true
	a.next = then
}

// wakeNow schedules the externally armed continuation to run at the current
// instant — the actor-side mirror of Proc.wakeNow, used by Signal.Fire.
func (a *Actor) wakeNow() {
	if a.wake != nil {
		panic("sim: double wake of actor " + a.name)
	}
	if !a.armed {
		panic("sim: wake of actor " + a.name + " with no continuation armed")
	}
	a.wake = a.eng.scheduleOwned(a.eng.now, a.onWake, a.daemon, true)
}

// step is the trampoline every wake event runs: consume the armed
// continuation, execute it, and enforce the arm-or-finish discipline.
func (a *Actor) step() {
	a.wake = nil
	a.armed = false
	fn := a.next
	a.next = nil
	fn()
	if a.live && !a.armed {
		panic("sim: actor " + a.name + " step returned without arming a continuation or calling Finish")
	}
}
