package sim

import (
	"testing"
	"time"
)

func TestWaitGroupForkJoin(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	finished := 0
	var joinAt time.Duration
	e.Spawn("parent", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * time.Second
			wg.Go(e, "child", func(q *Proc) {
				q.Sleep(d)
				finished++
			})
		}
		wg.Wait(p)
		joinAt = p.Now()
	})
	e.Run()
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
	if joinAt != 3*time.Second {
		t.Fatalf("join at %v, want 3s (slowest child)", joinAt)
	}
}

func TestWaitGroupZeroCountReturnsImmediately(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	var at time.Duration = -1
	e.Spawn("p", func(p *Proc) {
		wg.Wait(p)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("empty wait blocked until %v", at)
	}
}

func TestWaitGroupManualAddDone(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(2)
	released := false
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		released = true
	})
	e.Schedule(time.Second, func() { wg.Done() })
	e.Schedule(2*time.Second, func() { wg.Done() })
	e.Run()
	if !released {
		t.Fatal("waiter not released")
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d", wg.Count())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	var wg WaitGroup
	defer func() {
		if recover() == nil {
			t.Fatal("negative count did not panic")
		}
	}()
	wg.Done()
}

func TestWaitGroupKilledChildStillCounts(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	var joinAt time.Duration
	var child *Proc
	e.Spawn("parent", func(p *Proc) {
		child = wg.Go(e, "child", func(q *Proc) { q.Sleep(time.Hour) })
		wg.Wait(p)
		joinAt = p.Now()
	})
	e.Schedule(time.Second, func() { child.Kill() })
	e.Run()
	if joinAt != time.Second {
		t.Fatalf("join at %v; killed child did not release the group", joinAt)
	}
}
