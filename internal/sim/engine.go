// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock through a priority queue of events.
// Simulated activities can be expressed either as plain scheduled callbacks
// (Engine.Schedule / Engine.After) or as processes (Engine.Spawn): ordinary
// Go functions running on their own goroutines that block on kernel
// primitives such as Proc.Sleep, Resource.Acquire or Queue.Get.
//
// Determinism: at most one goroutine — the kernel or exactly one process —
// runs at any instant. Control is handed over synchronously through
// unbuffered channels, and simultaneous events fire in schedule order
// (ties broken by a monotonically increasing sequence number). Two runs of
// the same program with the same seeds produce identical traces.
//
// The calendar is a hand-rolled 4-ary min-heap of *Event ordered by
// (time, sequence), with lazy deletion: Cancel marks the event and the pop
// loop discards marked entries, so the high-churn reschedule patterns of the
// network solver cost O(1) per cancel instead of an O(log n) removal. See
// DESIGN.md §10 for the data-structure rationale and the determinism
// argument.
package sim

import (
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// the caller can Cancel it before it fires (e.g. a transfer whose completion
// time must be recomputed when network rates change).
//
// Daemon events model background activity (environment processes such as
// host degradation): they fire like any other event while the simulation is
// alive, but do not by themselves keep Run going — Run returns once only
// daemon events remain.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	// pfn/proc are the closure-free form used for kernel-internal process
	// events (start, wake): pfn is a method expression like (*Proc).wakeup —
	// a package-level value — so scheduling a sleep or spawn allocates no
	// closure. Exactly one of fn and pfn is set.
	pfn  func(*Proc)
	proc *Proc

	index    int // heap index; -1 once popped
	canceled bool
	daemon   bool
	pooled   bool // sitting in the engine's free list (Recycle called)
	reclaim  bool // engine-owned: recycled automatically once it leaves the heap
}

// Time reports the virtual time at which the event is (or was) scheduled.
func (ev *Event) Time() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// The calendar heap is 4-ary: children of slot i live at 4i+1..4i+4. A wider
// node trades deeper compare fans on the way down for roughly half the tree
// depth, which wins on the pop-heavy pattern of a simulation calendar (every
// event is popped exactly once, while sift-up after push usually stops after
// one level because times are mostly appended in near order). The heap is
// specialized to events — no container/heap interface calls, no any
// round-trips — and each slot carries the (at, seq) sort key inline, so the
// sift loops compare contiguous memory and only touch the Event (to update
// its slot index, for Reschedule's sift-in-place) when an entry actually
// moves.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *Event
}

// before is the calendar's total order: earlier time first, ties broken by
// schedule sequence. It is the one comparison all sift loops inline.
func (a heapEntry) before(b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// heapPush appends ev and restores the heap order upward.
func (e *Engine) heapPush(ev *Event) {
	h := e.events
	i := len(h)
	nv := heapEntry{at: ev.at, seq: ev.seq, ev: ev}
	h = append(h, nv)
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if p.before(nv) {
			break
		}
		h[i] = p
		p.ev.index = i
		i = parent
	}
	h[i] = nv
	ev.index = i
	e.events = h
	if len(h) > e.eventsHigh {
		e.eventsHigh = len(h)
	}
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *Event {
	h := e.events
	root := h[0].ev
	root.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = heapEntry{}
	h = h[:n]
	e.events = h
	if n > 0 {
		h[0] = last
		last.ev.index = 0
		e.heapSiftDown(0)
	}
	return root
}

// heapSiftDown restores heap order from slot i toward the leaves.
func (e *Engine) heapSiftDown(i int) {
	h := e.events
	n := len(h)
	nv := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		mv := h[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if cv := h[c]; cv.before(mv) {
				m, mv = c, cv
			}
		}
		if nv.before(mv) {
			break
		}
		h[i] = mv
		mv.ev.index = i
		i = m
	}
	h[i] = nv
	nv.ev.index = i
}

// heapSiftUp restores heap order from slot i toward the root.
func (e *Engine) heapSiftUp(i int) {
	h := e.events
	nv := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if p.before(nv) {
			break
		}
		h[i] = p
		p.ev.index = i
		i = parent
	}
	h[i] = nv
	nv.ev.index = i
}

// The event free list is capped adaptively: at least minEventPool (absorbing
// ordinary churn spikes such as a 192-flow reallocation storm), growing with
// the calendar's own high-water mark so a cell whose steady state keeps, say,
// 1M wake events in flight can retire and re-schedule them all through the
// pool instead of thrashing alloc/free at a fixed 4096. maxEventPoolCap
// bounds the pool so a one-off spike can still be released to the GC rather
// than pinned forever.
const (
	minEventPool    = 4096
	maxEventPoolCap = 1 << 21
)

// poolCap returns the free list's current capacity limit.
func (e *Engine) poolCap() int {
	c := e.eventsHigh
	if c < minEventPool {
		c = minEventPool
	}
	if c > maxEventPoolCap {
		c = maxEventPoolCap
	}
	return c
}

// Engine is a discrete-event simulation kernel. The zero value is not ready
// for use; construct one with NewEngine.
type Engine struct {
	now     time.Duration
	events  []heapEntry // 4-ary min-heap by (at, seq)
	seq     uint64
	running bool
	stopped bool

	// procs counts live (spawned, not yet finished) non-daemon processes,
	// for leak detection in Drained.
	procs int

	// flats counts live (started, not yet finished) non-daemon flat actors.
	// Like procs, a live flat actor is foreground work: it may be parked on a
	// signal with no event of its own pending, waiting for someone else's
	// event to fire it.
	flats int

	// foreground counts pending non-daemon, non-canceled events; Run stops
	// when it reaches zero. Cancel decrements it immediately even though the
	// canceled event stays queued until lazily popped.
	foreground int

	// dead counts canceled events still occupying heap slots. When they
	// outnumber the live events the heap is compacted in one O(n) pass, so
	// a cancel-heavy burst cannot degrade every subsequent pop.
	dead int

	// fired counts executed events, exposed for instrumentation and tests.
	fired uint64

	// pendingPanic carries a panic raised inside a process goroutine back to
	// the kernel goroutine, so it surfaces from Run() on the caller's stack.
	pendingPanic *procPanic

	// pool holds recycled Event structs for reuse by the scheduling methods.
	// High-churn subsystems (netsim reschedules every active flow's
	// completion on each rate change) return events here via Recycle instead
	// of leaving one garbage Event per churn event. Capped at poolCap().
	pool []*Event

	// eventsHigh is the calendar's high-water mark (pending entries,
	// including corpses awaiting lazy deletion); it sizes the free list.
	eventsHigh int

	// idle holds parked workers: goroutines (with their handoff channel
	// pairs) whose process finished and which the next Spawn reuses instead
	// of starting a fresh goroutine. Drained when Run/RunUntil returns so an
	// abandoned engine leaks no goroutines.
	idle []*worker

	// Worker-pool accounting, exposed for the simbench observability record
	// and pool-leak guards.
	procsSpawned   uint64
	workersCreated uint64
	workersReused  uint64
	workersLive    int
	workersPeak    int

	// inv is the invariant harness; nil unless EnableInvariants was called
	// (or SetDefaultInvariants flipped the package default before NewEngine).
	inv *Invariants

	// group/domIndex place the engine inside a sim.Domains group: group is
	// nil for a standalone engine, and domIndex is the engine's position in
	// the group's deterministic merge order. Set once by NewDomains.
	group    *Domains
	domIndex int
}

type procPanic struct {
	value any
	stack []byte
	proc  string
}

func (e *Engine) checkPanic() {
	if pp := e.pendingPanic; pp != nil {
		e.pendingPanic = nil
		panic(fmt.Sprintf("sim: panic in process %q: %v\n%s", pp.proc, pp.value, pp.stack))
	}
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	e := &Engine{}
	if defaultInvariants.Load() != 0 {
		e.EnableInvariants(true)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of live scheduled, not-yet-fired events.
// Canceled corpses awaiting their lazy pop are excluded: they can never
// fire, so counting them would overstate the queue in invariant checks,
// pool-cap reasoning and bench output whenever a cancel-heavy workload
// leaves the calendar full of dead entries.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// LiveProcs returns the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// LiveActors returns the number of started flat actors that have not
// finished.
func (e *Engine) LiveActors() int { return e.flats }

// FreeEvents returns the number of events currently parked in the free list.
func (e *Engine) FreeEvents() int { return len(e.pool) }

// ProcsSpawned returns the number of processes ever spawned — each one would
// have been a fresh goroutine before worker reuse.
func (e *Engine) ProcsSpawned() uint64 { return e.procsSpawned }

// WorkersCreated returns the number of worker goroutines actually started.
func (e *Engine) WorkersCreated() uint64 { return e.workersCreated }

// WorkersReused returns the number of Spawns served by a parked worker.
func (e *Engine) WorkersReused() uint64 { return e.workersReused }

// WorkersPeak returns the high-water mark of live worker goroutines; it
// tracks peak process concurrency, not total spawns, unless the pool leaks.
func (e *Engine) WorkersPeak() int { return e.workersPeak }

// Schedule arranges for fn to run at absolute virtual time at. Scheduling in
// the past panics: the simulated world cannot rewrite history.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	return e.schedule(at, fn, false)
}

// ScheduleDaemon schedules a daemon event: it fires normally but does not
// keep Run alive on its own.
func (e *Engine) ScheduleDaemon(at time.Duration, fn func()) *Event {
	return e.schedule(at, fn, true)
}

func (e *Engine) schedule(at time.Duration, fn func(), daemon bool) *Event {
	return e.scheduleOwned(at, fn, daemon, false)
}

// scheduleOwned is schedule plus the reclaim flag: a reclaimed event belongs
// to the engine and returns to the free list on its own as soon as it leaves
// the heap — right before its callback runs, or at the lazy pop that
// discards it after a cancel. Only kernel-internal events (process start and
// wake events) are scheduled this way; external callers hold references and
// must keep explicit Recycle control.
func (e *Engine) scheduleOwned(at time.Duration, fn func(), daemon, reclaim bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	*ev = Event{at: at, seq: e.seq, fn: fn, daemon: daemon, reclaim: reclaim}
	e.seq++
	e.heapPush(ev)
	if !daemon {
		e.foreground++
	}
	return ev
}

// scheduleProc schedules a kernel-internal process event: pfn is a method
// expression (no closure allocation) applied to p when the event fires. All
// such events are engine-owned (reclaim): they recycle themselves, so the
// wake event a sleep retires is immediately reusable for the next sleep.
func (e *Engine) scheduleProc(at time.Duration, pfn func(*Proc), p *Proc, daemon bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	*ev = Event{at: at, seq: e.seq, pfn: pfn, proc: p, daemon: daemon, reclaim: true}
	e.seq++
	e.heapPush(ev)
	if !daemon {
		e.foreground++
	}
	return ev
}

// alloc pops an Event from the free list, or mints one.
func (e *Engine) alloc() *Event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return ev
	}
	return &Event{}
}

// After arranges for fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// AfterDaemon arranges a daemon event d from now.
func (e *Engine) AfterDaemon(d time.Duration, fn func()) *Event {
	return e.ScheduleDaemon(e.now+d, fn)
}

// Cancel marks the event so it will not fire. The cancel is lazy — O(1): the
// event stays in the calendar and is discarded when the pop loop reaches it.
// It is safe to cancel an event twice or after it fired; later cancels are
// no-ops.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	// A canceled event can never fire, so drop the callback references now: a
	// corpse awaiting its lazy pop must not keep the closure's captures — for
	// long-dated timers, potentially megabytes of request state — reachable.
	ev.fn, ev.pfn, ev.proc = nil, nil, nil
	if ev.index >= 0 {
		if !ev.daemon {
			e.foreground--
		}
		if e.tryRemoveLeaf(ev) {
			if ev.reclaim {
				e.recycle(ev)
			}
		} else {
			e.noteDead()
		}
	}
}

// tryRemoveLeaf detaches a canceled event from the calendar immediately when
// it occupies a leaf slot, reporting whether it did. Three quarters of a
// 4-ary heap is leaves, and pulling one out is O(1): the vacated slot takes
// the last entry, which as a fellow leaf can only need to move up. Internal
// slots would need a full sift cascade — exactly what lazy deletion exists
// to avoid — so those stay for the pop loop or the compactor.
func (e *Engine) tryRemoveLeaf(ev *Event) bool {
	h := e.events
	i := ev.index
	n := len(h) - 1
	if i<<2+1 <= n {
		return false // has a child; leave it for lazy deletion
	}
	last := h[n]
	h[n] = heapEntry{}
	e.events = h[:n]
	ev.index = -1
	if i < n {
		h[i] = last
		last.ev.index = i
		e.heapSiftUp(i)
	}
	return true
}

// noteDead records one more canceled event left in the heap, compacting the
// calendar once corpses outnumber live entries. Compaction keeps lazy
// deletion O(1) amortized without letting a cancel storm (every flow of a
// large mesh rescheduled away at once) bloat the heap that every later pop
// must sift through.
func (e *Engine) noteDead() {
	e.dead++
	if e.dead > len(e.events)/2 && len(e.events) >= 64 {
		e.compact()
	}
}

// compact removes canceled events from the calendar in one pass: filter,
// then restore the heap property bottom-up in O(n). Relative order of the
// survivors is untouched — order is decided by (at, seq) alone — so traces
// are unaffected.
func (e *Engine) compact() {
	h := e.events
	n := 0
	for _, entry := range h {
		ev := entry.ev
		if ev.canceled {
			ev.index = -1
			if ev.reclaim {
				e.recycle(ev)
			}
			continue
		}
		h[n] = entry
		ev.index = n
		n++
	}
	for i := n; i < len(h); i++ {
		h[i] = heapEntry{}
	}
	e.events = h[:n]
	for i := (n - 2) >> 2; i >= 0; i-- {
		e.heapSiftDown(i)
	}
	e.dead = 0
}

// CancelRecycle cancels ev and hands its allocation back to the engine: the
// event returns to the free list automatically once the pop loop discards it
// (immediately, if it already fired). The caller must drop its reference —
// with lazy cancellation a canceled event cannot be recycled by hand until
// it leaves the heap, which only the kernel observes. Calling it twice, or
// after Recycle, panics like a double free.
func (e *Engine) CancelRecycle(ev *Event) {
	if ev == nil {
		return
	}
	if ev.pooled {
		panic("sim: CancelRecycle of an already recycled event")
	}
	if ev.reclaim {
		panic("sim: CancelRecycle called twice on the same event")
	}
	if !ev.canceled {
		ev.canceled = true
		ev.fn, ev.pfn, ev.proc = nil, nil, nil // as in Cancel: corpses retain nothing
		if ev.index >= 0 {
			if !ev.daemon {
				e.foreground--
			}
			// Leaf removal and compaction both pop ev from the heap right
			// here; the index check below then recycles it immediately.
			if !e.tryRemoveLeaf(ev) {
				e.noteDead()
			}
		}
	}
	if ev.index >= 0 {
		ev.reclaim = true
	} else {
		e.recycle(ev)
	}
}

// Reschedule moves a still-pending event to a new time, exactly as if it had
// been canceled and a fresh event scheduled for at: the event takes a fresh
// sequence number, so its ordering against other events at the same instant
// is bit-identical to the cancel+schedule path — while the Event struct and
// its callback are reused in place with one sift instead of a heap removal,
// a free-list round trip and a push. Rescheduling an event that already
// fired, was canceled, or was recycled panics.
func (e *Engine) Reschedule(ev *Event, at time.Duration) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if ev == nil || ev.canceled || ev.pooled || ev.index < 0 {
		panic("sim: Reschedule of an event that is not pending")
	}
	old := ev.at
	ev.at = at
	ev.seq = e.seq
	e.seq++
	e.events[ev.index].at = at
	e.events[ev.index].seq = ev.seq
	// A fresh (larger) seq never moves an event up past an equal-time entry,
	// so only one direction of sift is needed per time change.
	if at >= old {
		e.heapSiftDown(ev.index)
	} else {
		e.heapSiftUp(ev.index)
	}
}

// Recycle returns an event to the engine's free list so a later scheduling
// call can reuse the allocation. Only the holder of the last reference may
// recycle, and only once the event has left the calendar: after its callback
// ran (recycling from inside the callback is fine). A canceled event stays
// queued until the kernel lazily pops it — use CancelRecycle to hand such an
// event back without waiting. Recycling an event that is still scheduled, or
// twice, panics — a stale recycled pointer would silently corrupt whatever
// event reuses the slot.
func (e *Engine) Recycle(ev *Event) {
	if ev == nil {
		return
	}
	if ev.index >= 0 {
		if ev.canceled {
			panic("sim: Recycle of a canceled event still queued; cancellation is lazy — use CancelRecycle, or wait until the kernel pops it")
		}
		panic("sim: Recycle of an event still scheduled")
	}
	if ev.pooled {
		panic("sim: Recycle called twice on the same event")
	}
	e.recycle(ev)
}

// recycle parks ev in the free list, or drops it once the list is at its
// high-water mark. The caller has already validated ownership.
func (e *Engine) recycle(ev *Event) {
	ev.pooled = true
	ev.reclaim = false
	ev.fn = nil
	ev.pfn = nil
	ev.proc = nil
	if len(e.pool) < e.poolCap() {
		e.pool = append(e.pool, ev)
	}
}

// Step fires the next event, advancing the clock. It returns false when the
// calendar holds no live events. Canceled events reaching the root are
// discarded here — the deferred half of the lazy Cancel.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.heapPop()
		if ev.canceled {
			e.dead--
			if ev.reclaim {
				e.recycle(ev)
			}
			continue
		}
		if !ev.daemon {
			e.foreground--
		}
		if e.inv != nil && ev.at < e.now {
			e.inv.Checkf(false, "event time %v before clock %v", ev.at, e.now)
		}
		e.now = ev.at
		e.fired++
		fn, pfn, parg := ev.fn, ev.pfn, ev.proc
		if ev.reclaim {
			// Kernel-owned event: back to the free list before the callback,
			// so a wake event is immediately reusable for the next sleep the
			// woken process performs.
			e.recycle(ev)
		}
		if pfn != nil {
			pfn(parg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until no foreground (non-daemon) work remains or Stop is
// called. Foreground work is a pending non-daemon event or a live non-daemon
// process: daemon events keep firing while either exists (a daemon may be
// what wakes a parked process), and are left pending once neither does.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	e.stopped = false
	defer func() {
		e.running = false
		e.releaseIdleWorkers()
	}()
	e.runToDrain()
}

// runToDrain is Run's kernel loop: fire events until no foreground work
// remains or Stop is called. It is split from Run so a Domains coordinator
// round can drive the same loop without the enter/exit bookkeeping — in
// particular without retiring parked workers, which the coordinator reuses
// across window rounds and releases once, when the whole group run ends.
func (e *Engine) runToDrain() {
	for !e.stopped {
		if e.foreground == 0 && e.procs == 0 && e.flats == 0 {
			break
		}
		if !e.Step() {
			break
		}
	}
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (if it is later than the last event fired). Events scheduled
// exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline time.Duration) {
	if e.running {
		panic("sim: RunUntil reentered")
	}
	e.running = true
	e.stopped = false
	defer func() {
		e.running = false
		e.releaseIdleWorkers()
	}()
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek: heap root is slot 0. Canceled roots are discarded without
		// firing regardless of the deadline.
		next := e.events[0].ev
		if next.canceled {
			e.heapPop()
			e.dead--
			if next.reclaim {
				e.recycle(next)
			}
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run / RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Drained reports whether the simulation has fully quiesced: no pending
// foreground events, no live non-daemon processes and no live flat actors. A
// false result after Run() usually means a process or actor leaked — it is
// blocked on a primitive nobody will ever signal.
func (e *Engine) Drained() bool {
	return e.foreground == 0 && e.procs == 0 && e.flats == 0
}
