// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock through a priority queue of events.
// Simulated activities can be expressed either as plain scheduled callbacks
// (Engine.Schedule / Engine.After) or as processes (Engine.Spawn): ordinary
// Go functions running on their own goroutines that block on kernel
// primitives such as Proc.Sleep, Resource.Acquire or Queue.Get.
//
// Determinism: at most one goroutine — the kernel or exactly one process —
// runs at any instant. Control is handed over synchronously through
// unbuffered channels, and simultaneous events fire in schedule order
// (ties broken by a monotonically increasing sequence number). Two runs of
// the same program with the same seeds produce identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// the caller can Cancel it before it fires (e.g. a transfer whose completion
// time must be recomputed when network rates change).
//
// Daemon events model background activity (environment processes such as
// host degradation): they fire like any other event while the simulation is
// alive, but do not by themselves keep Run going — Run returns once only
// daemon events remain.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index; -1 once popped or canceled
	canceled bool
	daemon   bool
	pooled   bool // sitting in the engine's free list (Recycle called)
}

// Time reports the virtual time at which the event is (or was) scheduled.
func (ev *Event) Time() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel. The zero value is not ready
// for use; construct one with NewEngine.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	running bool
	stopped bool

	// procs counts live (spawned, not yet finished) non-daemon processes,
	// for leak detection in Drained.
	procs int

	// foreground counts pending non-daemon, non-canceled events; Run stops
	// when it reaches zero.
	foreground int

	// fired counts executed events, exposed for instrumentation and tests.
	fired uint64

	// pendingPanic carries a panic raised inside a process goroutine back to
	// the kernel goroutine, so it surfaces from Run() on the caller's stack.
	pendingPanic *procPanic

	// pool holds recycled Event structs for reuse by the scheduling methods.
	// High-churn subsystems (netsim reschedules every active flow's
	// completion on each rate change) return events here via Recycle instead
	// of leaving one garbage Event per churn event.
	pool []*Event

	// inv is the invariant harness; nil unless EnableInvariants was called
	// (or SetDefaultInvariants flipped the package default before NewEngine).
	inv *Invariants
}

type procPanic struct {
	value any
	stack []byte
	proc  string
}

func (e *Engine) checkPanic() {
	if pp := e.pendingPanic; pp != nil {
		e.pendingPanic = nil
		panic(fmt.Sprintf("sim: panic in process %q: %v\n%s", pp.proc, pp.value, pp.stack))
	}
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	e := &Engine{}
	if defaultInvariants.Load() != 0 {
		e.EnableInvariants(true)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events
// (including canceled ones that have not been popped).
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs returns the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// Schedule arranges for fn to run at absolute virtual time at. Scheduling in
// the past panics: the simulated world cannot rewrite history.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	return e.schedule(at, fn, false)
}

// ScheduleDaemon schedules a daemon event: it fires normally but does not
// keep Run alive on its own.
func (e *Engine) ScheduleDaemon(at time.Duration, fn func()) *Event {
	return e.schedule(at, fn, true)
}

func (e *Engine) schedule(at time.Duration, fn func(), daemon bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	}
	e.seq++
	heap.Push(&e.events, ev)
	if !daemon {
		e.foreground++
	}
	return ev
}

// After arranges for fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// AfterDaemon arranges a daemon event d from now.
func (e *Engine) AfterDaemon(d time.Duration, fn func()) *Event {
	return e.ScheduleDaemon(e.now+d, fn)
}

// Cancel removes the event from the calendar if it has not fired. It is safe
// to cancel an event twice or after it fired; later cancels are no-ops.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
		ev.index = -1
		if !ev.daemon {
			e.foreground--
		}
	}
}

// Recycle returns an event to the engine's free list so a later scheduling
// call can reuse the allocation. Only the holder of the last reference may
// recycle, and only once the event can no longer fire: after its callback ran
// (recycling from inside the callback is fine) or after Cancel. Recycling an
// event that is still on the calendar, or twice, panics — a stale recycled
// pointer would silently corrupt whatever event reuses the slot.
func (e *Engine) Recycle(ev *Event) {
	if ev == nil {
		return
	}
	if ev.index >= 0 {
		panic("sim: Recycle of an event still scheduled")
	}
	if ev.pooled {
		panic("sim: Recycle called twice on the same event")
	}
	ev.pooled = true
	ev.fn = nil
	e.pool = append(e.pool, ev)
}

// Step fires the next event, advancing the clock. It returns false when the
// calendar is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if !ev.daemon {
			e.foreground--
		}
		e.inv.Checkf(ev.at >= e.now, "event time %v before clock %v", ev.at, e.now)
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until no foreground (non-daemon) work remains or Stop is
// called. Foreground work is a pending non-daemon event or a live non-daemon
// process: daemon events keep firing while either exists (a daemon may be
// what wakes a parked process), and are left pending once neither does.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		if e.foreground == 0 && e.procs == 0 {
			break
		}
		if !e.Step() {
			break
		}
	}
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (if it is later than the last event fired). Events scheduled
// exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline time.Duration) {
	if e.running {
		panic("sim: RunUntil reentered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek: heap root is index 0.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run / RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Drained reports whether the simulation has fully quiesced: no pending
// foreground events and no live non-daemon processes. A false result after
// Run() usually means a process leaked — it is blocked on a primitive
// nobody will ever signal.
func (e *Engine) Drained() bool {
	return e.foreground == 0 && e.procs == 0
}
