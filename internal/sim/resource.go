package sim

import "fmt"

// Resource is a counted, FIFO-fair resource: a pool of capacity units that
// processes acquire and release. It models k-server stations (service
// front-ends, disk arms, CPU cores). The zero value is unusable; create one
// with NewResource.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// stats
	totalAcquired uint64
	maxQueue      int
}

type resWaiter struct {
	p       *Proc
	n       int
	granted bool
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// MaxQueueLen returns the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// TotalAcquired returns the number of successful acquisitions.
func (r *Resource) TotalAcquired() uint64 { return r.totalAcquired }

// Acquire obtains n units (1 ≤ n ≤ capacity), blocking in FIFO order until
// they are available. A process killed while waiting is removed from the
// queue and unwound.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	p.killCheck()
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		r.totalAcquired++
		r.check()
		return
	}
	w := &resWaiter{p: p, n: n}
	r.waiters = append(r.waiters, w)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	defer func() {
		if rec := recover(); rec != nil {
			// Killed while waiting. If the grant had already landed but the
			// wakeup was pre-empted by the kill, give the units back.
			if w.granted {
				r.inUse -= w.n
				r.totalAcquired--
				r.grant()
			}
			panic(rec)
		}
	}()
	p.suspend(func() { r.remove(w) })
}

// TryAcquire obtains n units only if immediately available, returning
// whether it succeeded. It never blocks and never queues.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: try-acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		r.totalAcquired++
		return true
	}
	return false
}

// Release returns n units and grants as many queued waiters as now fit, in
// FIFO order. Release may be called from any kernel-context code, including
// a different process from the acquirer.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of resource %q (in use %d)", n, r.name, r.inUse))
	}
	r.inUse -= n
	r.grant()
}

func (r *Resource) grant() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return // strict FIFO: do not let later small requests overtake
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		r.totalAcquired++
		w.granted = true
		w.p.wakeNow()
	}
	r.check()
}

// check asserts the resource level is inside [0, capacity]; the unwind paths
// (a killed waiter returning a pre-empted grant) are the historically fragile
// spots this guards.
func (r *Resource) check() {
	r.eng.Invariants().Checkf(r.inUse >= 0 && r.inUse <= r.capacity,
		"resource %q level %d outside [0, %d]", r.name, r.inUse, r.capacity)
}

func (r *Resource) remove(w *resWaiter) {
	for i, q := range r.waiters {
		if q == w {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			return
		}
	}
}

// Use acquires n units, runs the critical section for the given service
// time, and releases. It is the common pattern for modelling a station
// visit.
func (r *Resource) Use(p *Proc, n int, hold func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	hold()
}
