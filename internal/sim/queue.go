package sim

import "time"

// Queue is an unbounded FIFO message store connecting producer and consumer
// processes. Put never blocks; Get blocks until an item is available. It is
// the kernel-level building block under the simulated Azure queue service
// and the ModisAzure task queues.
type Queue[T any] struct {
	items   []T
	getters []*getWaiter[T]
	puts    uint64
	gets    uint64
}

type getWaiter[T any] struct {
	p        *Proc
	item     T
	released bool
	timedOut bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiting returns the number of blocked consumers.
func (q *Queue[T]) Waiting() int { return len(q.getters) }

// Puts returns the total number of items ever put.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Gets returns the total number of items ever delivered.
func (q *Queue[T]) Gets() uint64 { return q.gets }

// Put appends an item, waking the longest-waiting consumer if any. It may be
// called from any kernel-context code.
func (q *Queue[T]) Put(item T) {
	q.puts++
	for len(q.getters) > 0 {
		w := q.getters[0]
		q.getters = q.getters[1:]
		if w.released {
			continue
		}
		w.released = true
		w.item = item
		q.gets++
		w.p.wakeNow()
		return
	}
	q.items = append(q.items, item)
}

// TryGet removes and returns the head item without blocking, reporting
// whether one was available.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.gets++
	return item, true
}

// check asserts item conservation: everything ever put was either delivered
// or is still buffered. The kill-unwind repath (reputIfKilled) is the spot
// this historically guards.
func (q *Queue[T]) check(p *Proc) {
	p.eng.Invariants().Checkf(q.puts == q.gets+uint64(len(q.items)),
		"queue conservation: %d puts != %d gets + %d buffered", q.puts, q.gets, len(q.items))
}

// Get removes and returns the head item, blocking the process until one is
// available. Consumers are served in FIFO order.
func (q *Queue[T]) Get(p *Proc) T {
	p.killCheck()
	q.check(p)
	if item, ok := q.TryGet(); ok {
		return item
	}
	w := &getWaiter[T]{p: p}
	q.getters = append(q.getters, w)
	defer q.reputIfKilled(w)
	p.suspend(func() { q.removeGetter(w) })
	return w.item
}

// reputIfKilled runs on the unwind path of a killed consumer: if an item had
// already been handed to it but the wakeup was pre-empted by the kill, the
// item goes back to the head of the queue so no message is lost.
func (q *Queue[T]) reputIfKilled(w *getWaiter[T]) {
	if rec := recover(); rec != nil {
		if w.released && !w.timedOut {
			q.items = append([]T{w.item}, q.items...)
			q.gets--
		}
		panic(rec)
	}
}

// GetTimeout is Get with a deadline: it returns the zero value and false if
// no item arrived within d.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	p.killCheck()
	q.check(p)
	if item, ok := q.TryGet(); ok {
		return item, true
	}
	w := &getWaiter[T]{p: p}
	q.getters = append(q.getters, w)
	timer := p.eng.After(d, func() {
		if w.released {
			return
		}
		w.released = true
		w.timedOut = true
		q.removeGetter(w)
		w.p.wakeNow()
	})
	// CancelRecycle rather than Cancel: the timer is dead either way (fired
	// or canceled), and this hands the allocation back to the event pool.
	defer p.eng.CancelRecycle(timer)
	defer q.reputIfKilled(w)
	p.suspend(func() { q.removeGetter(w) })
	if w.timedOut {
		var zero T
		return zero, false
	}
	return w.item, true
}

func (q *Queue[T]) removeGetter(w *getWaiter[T]) {
	for i, g := range q.getters {
		if g == w {
			q.getters = append(q.getters[:i], q.getters[i+1:]...)
			return
		}
	}
}
