package sim

import (
	"testing"
	"time"
)

// Kernel hot-path microbenchmarks. The same four workloads are surfaced at
// fixed scale by `azbench -run simbench` (cmd/azbench/simbench.go), which
// compares against embedded pre-overhaul baselines; these go-bench variants
// are for interactive profiling work:
//
//	go test -run xx -bench BenchmarkCancelChurn -cpuprofile cpu.out ./internal/sim
//
// churnTick spreads replacement events pseudo-randomly (Fibonacci hashing)
// over a window ahead of the clock so the heap sees realistic disorder.
const benchTick = time.Microsecond

func benchAt(e *Engine, i, pop int) time.Duration {
	return e.Now() + benchTick + time.Duration(uint32(i)*2654435761%uint32(pop))*benchTick
}

// BenchmarkCancelChurn is the netsim remove pattern: per fired completion,
// one flow retires its pending completion (CancelRecycle + Schedule of the
// successor) and the reallocated bandwidth moves seven others — the same
// composite the azbench cancel-churn suite runs.
func BenchmarkCancelChurn(b *testing.B) {
	const pop = 1024
	e := NewEngine()
	evs := make([]*Event, pop)
	var refill []int
	fns := make([]func(), pop)
	for s := range fns {
		s := s
		fns[s] = func() {
			e.Recycle(evs[s])
			evs[s] = nil
			refill = append(refill, s)
		}
	}
	for s := range evs {
		evs[s] = e.Schedule(benchAt(e, s, pop), fns[s])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			s := (i*8 + k) % pop
			at := benchAt(e, i+k, pop)
			switch {
			case evs[s] == nil:
				evs[s] = e.Schedule(at, fns[s])
			case k == 0:
				e.CancelRecycle(evs[s])
				evs[s] = e.Schedule(at, fns[s])
			default:
				e.Reschedule(evs[s], at)
			}
		}
		e.Step()
		for _, s := range refill {
			evs[s] = e.Schedule(benchAt(e, i+s, pop), fns[s])
		}
		refill = refill[:0]
	}
}

// BenchmarkRescheduleChurn is the hot move path: a still-pending completion
// sifts in place to a new time.
func BenchmarkRescheduleChurn(b *testing.B) {
	const pop = 1024
	e := NewEngine()
	evs := make([]*Event, pop)
	var refill []int
	fns := make([]func(), pop)
	for s := range fns {
		s := s
		fns[s] = func() {
			e.Recycle(evs[s])
			refill = append(refill, s)
		}
	}
	for s := range evs {
		evs[s] = e.Schedule(benchAt(e, s, pop), fns[s])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			s := (i*8 + k) % pop
			if evs[s] != nil {
				e.Reschedule(evs[s], benchAt(e, i+k, pop))
			} else {
				evs[s] = e.Schedule(benchAt(e, i+k, pop), fns[s])
			}
		}
		e.Step()
		for _, s := range refill {
			evs[s] = e.Schedule(benchAt(e, i+s, pop), fns[s])
		}
		refill = refill[:0]
	}
}

func benchChild(p *Proc) {}

// BenchmarkSpawnChurn is the closed-loop client pattern: one short-lived
// process per request. With worker reuse the steady state should allocate
// only the Proc itself.
func BenchmarkSpawnChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i += 64 {
			n := 64
			if rem := b.N - i; rem < n {
				n = rem
			}
			for j := 0; j < n; j++ {
				e.Spawn("child", benchChild)
			}
			p.Yield()
		}
	})
	e.Run()
}

// BenchmarkSleepLadder exercises the wake-event fast path: a fixed cohort of
// processes sleeping staggered durations.
func BenchmarkSleepLadder(b *testing.B) {
	const procs = 64
	e := NewEngine()
	total := b.N
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for i := 0; i < procs; i++ {
		share := total / procs
		if i < total%procs {
			share++
		}
		e.Spawn("sleeper", func(p *Proc) {
			for k := 0; k < share; k++ {
				p.Sleep(time.Duration((i+k)%7+1) * time.Millisecond)
				done++
			}
		})
	}
	e.Run()
	if done != total {
		b.Fatalf("done = %d, want %d", done, total)
	}
}

// BenchmarkMixed pushes producers and timeout-guarded consumers through a
// queue and a resource — the full primitive stack under one benchmark.
func BenchmarkMixed(b *testing.B) {
	e := NewEngine()
	q := NewQueue[int]()
	r := NewResource(e, "disk", 4)
	b.ReportAllocs()
	b.ResetTimer()
	const pairs = 8
	for i := 0; i < pairs; i++ {
		share := b.N / pairs
		if i < b.N%pairs {
			share++
		}
		e.Spawn("producer", func(p *Proc) {
			for k := 0; k < share; k++ {
				r.Use(p, 1, func() { p.Sleep(200 * time.Microsecond) })
				q.Put(k)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for k := 0; k < share; k++ {
				q.GetTimeout(p, time.Millisecond)
			}
		})
	}
	e.Run()
}

// BenchmarkDomainMail is the cross-domain mail path: four domains, each
// mailing eight messages per window to the others — Send gather, flushMail
// pooled batch assembly, deliverBatch slice recycling. The azbench
// mail-churn suite runs the same shape at fixed scale; this variant is for
// interactive profiling:
//
//	go test -run xx -bench BenchmarkDomainMail -cpuprofile cpu.out ./internal/sim
func BenchmarkDomainMail(b *testing.B) {
	const width, perRound = 4, 8
	g := NewDomains(width)
	g.SetWindow(100 * time.Microsecond)
	received := make([]int, width)
	rounds := b.N / (width * perRound)
	if rounds < 1 {
		rounds = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for d := 0; d < width; d++ {
		d := d
		eng := g.Domain(d)
		eng.Spawn("mailer", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				for j := 0; j < perRound; j++ {
					dst := (d + j + 1) % width
					eng.Send(dst, func() { received[dst]++ })
				}
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	g.Run()
	b.StopTimer()
	total := 0
	for _, n := range received {
		total += n
	}
	if want := width * perRound * rounds; total != want {
		b.Fatalf("delivered %d of %d", total, want)
	}
}
