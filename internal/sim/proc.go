package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	procCreated   procState = iota // spawned, start event not yet fired
	procRunning                    // its goroutine holds the execution token
	procSuspended                  // parked on a kernel primitive
	procFinished                   // body returned or was killed
)

// Proc is a simulated process: a goroutine that runs user code and blocks on
// kernel primitives. Exactly one of {kernel, some process} executes at any
// instant; the handoff is synchronous through unbuffered channels, which
// keeps the simulation deterministic regardless of the Go scheduler.
type Proc struct {
	eng  *Engine
	name string

	resume chan resumeMsg // kernel -> process
	yield  chan struct{}  // process -> kernel

	state  procState
	killed bool
	daemon bool

	// wake is the scheduled event that will resume this process, when it is
	// suspended with a known resume time (Sleep) or has been selected for
	// wakeup by a primitive. Kill cancels it to avoid a double resume.
	wake *Event

	// detach removes the process from the wait list it is parked on, so a
	// Kill can take it out of a Resource/Signal/Queue queue. It must be
	// idempotent. nil when not parked on a list.
	detach func()
}

type resumeMsg struct {
	kill bool
}

// killError is the panic payload used to unwind a killed process. It is
// recovered by the spawn wrapper and never escapes user code.
type killError struct{ name string }

func (k killError) Error() string { return "sim: process killed: " + k.name }

// ErrKilled is returned by primitives that report interruption by Kill.
var ErrKilled = errors.New("sim: process killed")

// Spawn starts fn as a new process at the current virtual time. The body
// begins executing when the kernel reaches the start event, before any event
// scheduled afterwards at the same timestamp.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnDaemon starts fn as a daemon process: it runs like any process while
// the simulation is alive, but neither its wakeups nor its liveness keep
// Run going. Use it for environment processes (failure injectors, background
// churn) that would otherwise run the clock forever.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(e.now, name, fn, true)
}

// SpawnAt starts fn as a new process at absolute virtual time at.
func (e *Engine) SpawnAt(at time.Duration, name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(at, name, fn, false)
}

func (e *Engine) spawnAt(at time.Duration, name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
		daemon: daemon,
	}
	if !daemon {
		e.procs++
	}
	e.schedule(at, func() {
		if p.killed {
			p.state = procFinished
			if !p.daemon {
				e.procs--
			}
			return
		}
		p.state = procRunning
		go p.run(fn)
		// Wait for the process to park or finish before the kernel
		// continues: the synchronous handoff that makes this deterministic.
		<-p.yield
		e.checkPanic()
	}, daemon)
	return p
}

func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killError); !ok {
				// Genuine panic in user code. Transport it to the kernel
				// goroutine so it surfaces from Run() on the caller's stack.
				p.eng.pendingPanic = &procPanic{value: r, stack: debug.Stack(), proc: p.name}
			}
		}
		p.state = procFinished
		if !p.daemon {
			p.eng.procs--
		}
		p.yield <- struct{}{}
	}()
	fn(p)
}

// suspend parks the process until some kernel-context actor schedules its
// resume. detach (may be nil) must remove the process from whatever wait
// list it is on; Kill uses it. suspend must only be called from the
// process's own goroutine.
func (p *Proc) suspend(detach func()) {
	p.detach = detach
	p.state = procSuspended
	p.yield <- struct{}{}
	msg := <-p.resume
	p.state = procRunning
	p.detach = nil
	if msg.kill {
		panic(killError{p.name})
	}
}

// scheduleResumeAt arranges the kernel to hand control back to the suspended
// process at absolute time at. Must be called from kernel context, and only
// when no resume is already pending.
func (p *Proc) scheduleResumeAt(at time.Duration, kill bool) {
	if p.wake != nil {
		panic("sim: double resume scheduled for process " + p.name)
	}
	p.wake = p.eng.schedule(at, func() {
		p.wake = nil
		p.resume <- resumeMsg{kill: kill}
		<-p.yield
		p.eng.checkPanic()
	}, p.daemon)
}

// wakeNow schedules an immediate (current-instant) resume. FIFO order among
// same-instant wakeups is preserved by event sequence numbers.
func (p *Proc) wakeNow() { p.scheduleResumeAt(p.eng.now, false) }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Finished reports whether the process body has returned or been killed.
func (p *Proc) Finished() bool { return p.state == procFinished }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// Sleep suspends the process for d of virtual time. Negative d panics.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.killCheck()
	p.scheduleResumeAt(p.eng.now+d, false)
	p.suspend(nil)
}

// SleepUntil suspends the process until absolute virtual time t, which must
// not be in the past.
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.eng.now {
		panic(fmt.Sprintf("sim: SleepUntil %v before now %v", t, p.eng.now))
	}
	p.killCheck()
	p.scheduleResumeAt(t, false)
	p.suspend(nil)
}

// Yield lets every other event/process scheduled at the current instant run
// before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill terminates the process at its next (or current) suspension point.
// Killing a finished process is a no-op. A process may kill itself, in which
// case it unwinds immediately. Kill on another process must be made from
// kernel context (an event callback or another process's turn).
func (p *Proc) Kill() {
	if p.state == procFinished || p.killed {
		return
	}
	p.killed = true
	switch p.state {
	case procRunning:
		// Only the process itself can observe itself running; self-kill.
		panic(killError{p.name})
	case procSuspended:
		if p.wake != nil {
			p.eng.Cancel(p.wake)
			p.wake = nil
		}
		if p.detach != nil {
			p.detach()
			p.detach = nil
		}
		p.scheduleResumeAt(p.eng.now, true)
	case procCreated:
		// Start event will observe killed and finish immediately.
	}
}

func (p *Proc) killCheck() {
	if p.killed {
		panic(killError{p.name})
	}
}
