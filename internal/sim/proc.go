package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	procCreated   procState = iota // spawned, start event not yet fired
	procRunning                    // its goroutine holds the execution token
	procSuspended                  // parked on a kernel primitive
	procFinished                   // body returned or was killed
)

// Proc is a simulated process: user code running on a worker goroutine that
// blocks on kernel primitives. Exactly one of {kernel, some process} executes
// at any instant; the handoff is synchronous through unbuffered channels,
// which keeps the simulation deterministic regardless of the Go scheduler.
type Proc struct {
	eng  *Engine
	name string

	// w is the worker executing this process's body: a goroutine plus its
	// resume/yield channel pair, leased from the engine's parked-worker pool
	// when the start event fires and returned when the body finishes. nil
	// before start and after the worker is handed back.
	w *worker

	state  procState
	killed bool
	daemon bool

	// wakeKill is latched by scheduleResumeAt and read by the wake event:
	// keeping it on the Proc (instead of capturing it in a per-wake closure)
	// is what lets every wake share the closure-free (*Proc).wakeup path.
	wakeKill bool

	// body holds the user function between Spawn and the start event.
	body func(p *Proc)

	// wake is the scheduled event that will resume this process, when it is
	// suspended with a known resume time (Sleep) or has been selected for
	// wakeup by a primitive. Kill cancels it to avoid a double resume.
	wake *Event

	// detach removes the process from the wait list it is parked on, so a
	// Kill can take it out of a Resource/Signal/Queue queue. It must be
	// idempotent. nil when not parked on a list.
	detach func()
}

type resumeMsg struct {
	kill bool
}

// worker is a reusable process executor: one goroutine plus the unbuffered
// channel pair used for the deterministic kernel↔process handoff. A closed-
// loop benchmark cell spawns one process per request — hundreds of thousands
// of processes whose peak concurrency is only a few hundred — so leasing
// workers from a parked pool replaces millions of goroutine + channel-pair
// creations with a handful.
type worker struct {
	task   chan workItem // kernel -> worker: run a process body
	resume chan resumeMsg
	yield  chan struct{}
}

type workItem struct {
	p  *Proc
	fn func(p *Proc)
}

func (w *worker) loop() {
	for item := range w.task {
		w.exec(&item)
	}
}

// exec runs one process body. It empties the workItem slot it is handed
// before dispatching: a worker can park idle across whole GC cycles, and a
// lingering workItem on its stack would keep the last process — and
// everything the body closure captured — reachable.
func (w *worker) exec(item *workItem) {
	p, fn := item.p, item.fn
	*item = workItem{}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killError); !ok {
				// Genuine panic in user code. Transport it to the kernel
				// goroutine so it surfaces from Run() on the caller's stack.
				p.eng.pendingPanic = &procPanic{value: r, stack: debug.Stack(), proc: p.name}
			}
		}
		p.state = procFinished
		if !p.daemon {
			p.eng.procs--
		}
		w.yield <- struct{}{}
	}()
	fn(p)
}

// maxIdleWorkers caps the parked-worker pool; beyond it, finishing workers
// retire. Idle workers cost a goroutine each, so the cap bounds the standing
// footprint at roughly the peak concurrency any experiment actually reaches.
const maxIdleWorkers = 1024

// getWorker leases a parked worker, or starts a fresh one. Kernel context.
func (e *Engine) getWorker() *worker {
	if n := len(e.idle); n > 0 {
		w := e.idle[n-1]
		e.idle[n-1] = nil
		e.idle = e.idle[:n-1]
		e.workersReused++
		return w
	}
	w := &worker{
		task:   make(chan workItem),
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
	}
	e.workersCreated++
	e.workersLive++
	if e.workersLive > e.workersPeak {
		e.workersPeak = e.workersLive
	}
	go w.loop()
	return w
}

// parkWorker returns a worker whose process finished to the idle pool, or
// retires it (closing its task channel ends the goroutine). Kill and panic
// unwinds retire the worker rather than reuse it: both leave by a recover,
// and a retired worker is provably clean at the cost of one goroutine spawn
// on a path that is rare by construction. Kernel context.
func (e *Engine) parkWorker(p *Proc, w *worker) {
	if p.killed || e.pendingPanic != nil || len(e.idle) >= maxIdleWorkers {
		close(w.task)
		e.workersLive--
		return
	}
	e.idle = append(e.idle, w)
}

// releaseIdleWorkers retires every parked worker. Run/RunUntil call it on
// the way out so an engine abandoned after a run leaks no goroutines; the
// next run simply rebuilds the pool on first spawn.
func (e *Engine) releaseIdleWorkers() {
	for i, w := range e.idle {
		close(w.task)
		e.idle[i] = nil
		e.workersLive--
	}
	e.idle = e.idle[:0]
}

// killError is the panic payload used to unwind a killed process. It is
// recovered by the worker's exec wrapper and never escapes user code.
type killError struct{ name string }

func (k killError) Error() string { return "sim: process killed: " + k.name }

// ErrKilled is returned by primitives that report interruption by Kill.
var ErrKilled = errors.New("sim: process killed")

// Spawn starts fn as a new process at the current virtual time. The body
// begins executing when the kernel reaches the start event, before any event
// scheduled afterwards at the same timestamp.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnDaemon starts fn as a daemon process: it runs like any process while
// the simulation is alive, but neither its wakeups nor its liveness keep
// Run going. Use it for environment processes (failure injectors, background
// churn) that would otherwise run the clock forever.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(e.now, name, fn, true)
}

// SpawnAt starts fn as a new process at absolute virtual time at.
func (e *Engine) SpawnAt(at time.Duration, name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(at, name, fn, false)
}

func (e *Engine) spawnAt(at time.Duration, name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		daemon: daemon,
		body:   fn,
	}
	if !daemon {
		e.procs++
	}
	e.procsSpawned++
	e.scheduleProc(at, (*Proc).start, p, daemon)
	return p
}

// start is the start event's body (kernel context): lease a worker, hand it
// the process body, and wait for the first park or finish — the synchronous
// handoff that makes the simulation deterministic.
func (p *Proc) start() {
	e := p.eng
	fn := p.body
	p.body = nil
	if p.killed {
		p.state = procFinished
		if !p.daemon {
			e.procs--
		}
		return
	}
	p.state = procRunning
	w := e.getWorker()
	p.w = w
	w.task <- workItem{p: p, fn: fn}
	<-w.yield
	if p.state == procFinished {
		p.w = nil
		e.parkWorker(p, w)
	}
	e.checkPanic()
}

// wakeup is the wake event's body (kernel context): resume the suspended
// process and wait for it to park again or finish.
func (p *Proc) wakeup() {
	e := p.eng
	p.wake = nil
	kill := p.wakeKill
	p.wakeKill = false
	w := p.w
	w.resume <- resumeMsg{kill: kill}
	<-w.yield
	if p.state == procFinished {
		p.w = nil
		e.parkWorker(p, w)
	}
	e.checkPanic()
}

// suspend parks the process until some kernel-context actor schedules its
// resume. detach (may be nil) must remove the process from whatever wait
// list it is on; Kill uses it. suspend must only be called from the
// process's own goroutine.
func (p *Proc) suspend(detach func()) {
	p.detach = detach
	p.state = procSuspended
	w := p.w
	w.yield <- struct{}{}
	msg := <-w.resume
	p.state = procRunning
	p.detach = nil
	if msg.kill {
		panic(killError{p.name})
	}
}

// scheduleResumeAt arranges the kernel to hand control back to the suspended
// process at absolute time at. Must be called from kernel context, and only
// when no resume is already pending. The wake event is engine-owned: the
// kernel recycles it automatically when it fires or when a Kill's cancel is
// lazily popped.
func (p *Proc) scheduleResumeAt(at time.Duration, kill bool) {
	if p.wake != nil {
		panic("sim: double resume scheduled for process " + p.name)
	}
	p.wakeKill = kill
	p.wake = p.eng.scheduleProc(at, (*Proc).wakeup, p, p.daemon)
}

// wakeNow schedules an immediate (current-instant) resume. FIFO order among
// same-instant wakeups is preserved by event sequence numbers.
func (p *Proc) wakeNow() { p.scheduleResumeAt(p.eng.now, false) }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Finished reports whether the process body has returned or been killed.
func (p *Proc) Finished() bool { return p.state == procFinished }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// Sleep suspends the process for d of virtual time. Negative d panics.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.killCheck()
	p.scheduleResumeAt(p.eng.now+d, false)
	p.suspend(nil)
}

// SleepUntil suspends the process until absolute virtual time t, which must
// not be in the past.
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.eng.now {
		panic(fmt.Sprintf("sim: SleepUntil %v before now %v", t, p.eng.now))
	}
	p.killCheck()
	p.scheduleResumeAt(t, false)
	p.suspend(nil)
}

// Yield lets every other event/process scheduled at the current instant run
// before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill terminates the process at its next (or current) suspension point.
// Killing a finished process is a no-op. A process may kill itself, in which
// case it unwinds immediately. Kill on another process must be made from
// kernel context (an event callback or another process's turn).
func (p *Proc) Kill() {
	if p.state == procFinished || p.killed {
		return
	}
	p.killed = true
	switch p.state {
	case procRunning:
		// Only the process itself can observe itself running; self-kill.
		panic(killError{p.name})
	case procSuspended:
		if p.wake != nil {
			// Lazy cancel; the event is engine-owned (reclaim), so it
			// returns to the free list when the pop loop discards it.
			p.eng.Cancel(p.wake)
			p.wake = nil
		}
		if p.detach != nil {
			p.detach()
			p.detach = nil
		}
		p.scheduleResumeAt(p.eng.now, true)
	case procCreated:
		// Start event will observe killed and finish immediately.
	}
}

func (p *Proc) killCheck() {
	if p.killed {
		panic(killError{p.name})
	}
}
