package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestActorSleepLoop drives one actor through a sleep chain and checks the
// foreground accounting that keeps Run alive until Finish.
func TestActorSleepLoop(t *testing.T) {
	e := NewEngine()
	var a Actor
	a.Bind(e, "looper")
	var times []time.Duration
	rounds := 0
	var step func()
	step = func() {
		times = append(times, e.Now())
		rounds++
		if rounds == 3 {
			a.Finish()
			return
		}
		a.Sleep(time.Second, step)
	}
	a.GoAt(time.Second, step)
	if e.LiveActors() != 1 {
		t.Fatalf("LiveActors = %d before run, want 1", e.LiveActors())
	}
	e.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(times) != 3 || times[0] != want[0] || times[1] != want[1] || times[2] != want[2] {
		t.Fatalf("step times = %v, want %v", times, want)
	}
	if !e.Drained() || e.LiveActors() != 0 {
		t.Fatalf("drained=%v liveActors=%d after run", e.Drained(), e.LiveActors())
	}
}

// TestActorTraceMatchesProc runs the same sleep/signal program once on the
// process API and once flat, and checks the kernel observables that define a
// trace — event count, sequence numbers consumed, completion time — match
// exactly.
func TestActorTraceMatchesProc(t *testing.T) {
	run := func(flat bool) (fired uint64, seq uint64, end time.Duration) {
		e := NewEngine()
		var sig Signal
		e.Schedule(5*time.Millisecond, func() { sig.Fire() })
		if flat {
			var a Actor
			a.Bind(e, "client")
			var afterSleep, afterSig func()
			afterSleep = func() { sig.WaitFlat(&a, afterSig) }
			afterSig = func() {
				a.Sleep(time.Millisecond, func() { a.Finish() })
			}
			a.Go(func() { a.Sleep(2*time.Millisecond, afterSleep) })
		} else {
			e.Spawn("client", func(p *Proc) {
				p.Sleep(2 * time.Millisecond)
				sig.Wait(p)
				p.Sleep(time.Millisecond)
			})
		}
		e.Run()
		if !e.Drained() {
			t.Fatalf("flat=%v: engine not drained", flat)
		}
		return e.EventsFired(), e.seq, e.Now()
	}
	gf, gs, ge := run(false)
	ff, fs, fe := run(true)
	if gf != ff || gs != fs || ge != fe {
		t.Fatalf("proc run (fired=%d seq=%d end=%v) != flat run (fired=%d seq=%d end=%v)",
			gf, gs, ge, ff, fs, fe)
	}
}

// TestActorSignalMixedOrder parks a proc and an actor on one signal and
// checks Fire releases them in arrival order.
func TestActorSignalMixedOrder(t *testing.T) {
	e := NewEngine()
	var sig Signal
	var order []string
	e.Spawn("proc-waiter", func(p *Proc) {
		sig.Wait(p)
		order = append(order, "proc")
	})
	var a Actor
	a.Bind(e, "actor-waiter")
	a.Go(func() {
		sig.WaitFlat(&a, func() {
			order = append(order, "actor")
			a.Finish()
		})
	})
	e.Schedule(time.Second, func() { sig.Fire() })
	e.Run()
	if len(order) != 2 || order[0] != "proc" || order[1] != "actor" {
		t.Fatalf("wake order = %v, want [proc actor]", order)
	}
	if !e.Drained() {
		t.Fatal("engine not drained")
	}
}

// TestActorLeak checks that an actor parked on a signal nobody fires is
// reported by Drained/LiveActors, like a leaked process.
func TestActorLeak(t *testing.T) {
	e := NewEngine()
	var sig Signal
	var a Actor
	a.Bind(e, "stuck")
	a.Go(func() { sig.WaitFlat(&a, func() { a.Finish() }) })
	e.Run()
	if e.Drained() || e.LiveActors() != 1 {
		t.Fatalf("drained=%v liveActors=%d, want leak reported", e.Drained(), e.LiveActors())
	}
}

// TestActorStepDiscipline checks the trampoline panics when a step neither
// arms a continuation nor finishes — a silently leaked actor otherwise.
func TestActorStepDiscipline(t *testing.T) {
	e := NewEngine()
	var a Actor
	a.Bind(e, "sloppy")
	a.Go(func() {}) // neither arms nor finishes
	defer func() {
		if recover() == nil {
			t.Fatal("step without arm/Finish did not panic")
		}
	}()
	e.Run()
}

// TestActorDoubleArm checks that arming twice within one step panics.
func TestActorDoubleArm(t *testing.T) {
	e := NewEngine()
	var a Actor
	a.Bind(e, "eager")
	step := func() { a.Finish() }
	a.Go(func() {
		a.Sleep(time.Second, step)
		a.Sleep(time.Second, step)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("double arm did not panic")
		}
	}()
	e.Run()
}

// TestActorSteadyStateZeroAlloc checks the flat event path allocates nothing
// at steady state: after one warm-up round, a population of sleeping actors
// larger than the old fixed pool cap keeps rescheduling through the free
// list with zero fresh allocations.
func TestActorSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	n := minEventPool + 1024
	type client struct {
		a      Actor
		rounds int
		step   func()
	}
	clients := make([]client, n)
	for i := range clients {
		c := &clients[i]
		c.a.Bind(e, "c")
		c.step = func() {
			c.rounds++
			if c.rounds >= 16 {
				c.a.Finish()
				return
			}
			c.a.Sleep(time.Millisecond, c.step)
		}
		c.a.Go(c.step)
	}
	// Warm-up: three rounds populate the free list and size the calendar.
	e.RunUntil(2 * time.Millisecond)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e.RunUntil(12 * time.Millisecond)
	runtime.ReadMemStats(&after)

	steps := 10 * uint64(n)
	allocs := after.Mallocs - before.Mallocs
	// Tolerate incidental runtime allocations, but n sleeps per round means
	// even a fraction of an alloc per op would blow through this bound.
	if allocs > 64 {
		t.Fatalf("steady-state flat path allocated %d times over %d events (want ~0)", allocs, steps)
	}

	e.Run()
	if !e.Drained() {
		t.Fatal("engine not drained after all actors finished")
	}
}
