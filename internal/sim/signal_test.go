package sim

import (
	"testing"
	"time"
)

func TestSignalFireReleasesAll(t *testing.T) {
	e := NewEngine()
	var s Signal
	released := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			released++
		})
	}
	e.Schedule(time.Second, func() { s.Fire() })
	e.Run()
	if released != 4 {
		t.Fatalf("released = %d, want 4", released)
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", s.Waiting())
	}
}

func TestSignalFireOne(t *testing.T) {
	e := NewEngine()
	var s Signal
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			s.Wait(p)
			order = append(order, i)
		})
	}
	e.Schedule(time.Second, func() {
		if !s.FireOne() {
			t.Error("FireOne found no waiter")
		}
	})
	e.Schedule(2*time.Second, func() { s.FireOne() })
	e.Schedule(3*time.Second, func() { s.FireOne() })
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("release order = %v, want FIFO", order)
		}
	}
}

func TestSignalFireNobodyWaiting(t *testing.T) {
	var s Signal
	s.Fire() // must not panic
	if s.FireOne() {
		t.Fatal("FireOne with no waiters returned true")
	}
}

func TestSignalLateWaiterMissesFire(t *testing.T) {
	e := NewEngine()
	var s Signal
	var lateAt time.Duration = -1
	e.Schedule(time.Second, func() { s.Fire() })
	e.Spawn("late", func(p *Proc) {
		p.Sleep(2 * time.Second)
		s.Wait(p)
		lateAt = p.Now()
	})
	e.Schedule(5*time.Second, func() { s.Fire() })
	e.Run()
	if lateAt != 5*time.Second {
		t.Fatalf("late waiter released at %v, want 5s (second fire)", lateAt)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine()
	var s Signal
	var timedOut, gotSignal bool
	e.Spawn("w", func(p *Proc) {
		timedOut = s.WaitTimeout(p, 2*time.Second)
		gotSignal = !s.WaitTimeout(p, 10*time.Second)
	})
	e.Schedule(5*time.Second, func() { s.Fire() })
	e.Run()
	if !timedOut {
		t.Fatal("first wait should have timed out")
	}
	if !gotSignal {
		t.Fatal("second wait should have been signalled")
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", s.Waiting())
	}
}

func TestSignalKillWaiter(t *testing.T) {
	e := NewEngine()
	var s Signal
	victim := e.Spawn("victim", func(p *Proc) {
		s.Wait(p)
		t.Error("victim released after kill")
	})
	e.Schedule(time.Second, func() { victim.Kill() })
	e.Schedule(2*time.Second, func() { s.Fire() })
	e.Run()
	if !victim.Finished() || !e.Drained() {
		t.Fatal("killed signal waiter did not clean up")
	}
}

func TestSignalFiresCounter(t *testing.T) {
	var s Signal
	s.Fire()
	s.Fire()
	if s.Fires() != 2 {
		t.Fatalf("Fires = %d, want 2", s.Fires())
	}
}
