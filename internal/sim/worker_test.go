package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// The worker pool must be invisible to simulation semantics: these tests
// drive the lifecycle edges (kill, panic, daemon, Stop) with reuse active
// and assert that accounting — especially Drained leak detection — behaves
// exactly as it did when every process owned a fresh goroutine.

func TestWorkerReusedAcrossSequentialSpawns(t *testing.T) {
	e := NewEngine()
	const n = 100
	ran := 0
	e.Spawn("driver", func(p *Proc) {
		// Children run strictly one after another, so a single worker must
		// serve them all.
		for i := 0; i < n; i++ {
			e.Spawn("child", func(p *Proc) { ran++ })
			p.Yield()
		}
	})
	e.Run()
	if ran != n {
		t.Fatalf("ran %d children, want %d", ran, n)
	}
	if got := e.ProcsSpawned(); got != n+1 {
		t.Fatalf("ProcsSpawned = %d, want %d", got, n+1)
	}
	// Driver and the first child overlap (driver is suspended in Yield while
	// children run), so two workers suffice for n+1 processes.
	if got := e.WorkersCreated(); got > 2 {
		t.Fatalf("WorkersCreated = %d, want ≤ 2 for sequential spawns", got)
	}
	if got := e.WorkersReused(); got < n-2 {
		t.Fatalf("WorkersReused = %d, want ≥ %d", got, n-2)
	}
	if peak := e.WorkersPeak(); peak > 2 {
		t.Fatalf("WorkersPeak = %d, want ≤ 2", peak)
	}
	if !e.Drained() {
		t.Fatal("engine not drained")
	}
}

func TestKillSleepingWithWorkerPool(t *testing.T) {
	e := NewEngine()
	// Warm the pool so the victim runs on a reused worker.
	e.Spawn("warm", func(p *Proc) {})
	e.Run()

	var victim *Proc
	cleanup := false
	victim = e.Spawn("victim", func(p *Proc) {
		defer func() { cleanup = true }()
		p.Sleep(time.Hour)
		t.Error("victim survived kill")
	})
	e.Schedule(time.Second, func() { victim.Kill() })
	e.Run()
	if !cleanup {
		t.Fatal("deferred cleanup did not run on kill unwind")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock at %v, want 1s (kill must not run the canceled wake)", e.Now())
	}
	if !victim.Finished() || !e.Drained() {
		t.Fatalf("finished=%v drained=%v after kill", victim.Finished(), e.Drained())
	}
}

func TestKillUnwindRetiresWorker(t *testing.T) {
	e := NewEngine()
	var victim *Proc
	victim = e.Spawn("victim", func(p *Proc) { p.Sleep(time.Hour) })
	e.Schedule(time.Second, func() { victim.Kill() })
	e.Run()
	// The kill unwind leaves by a recover; the worker retires rather than
	// rejoining the pool, and the Run-exit drain retires any idle ones, so
	// no worker goroutines remain either way.
	if live := e.workersLive; live != 0 {
		t.Fatalf("workersLive = %d after kill + run exit, want 0", live)
	}
	// A later spawn simply builds a fresh worker and runs normally.
	ran := false
	e.Spawn("after", func(p *Proc) { ran = true })
	e.Run()
	if !ran || !e.Drained() {
		t.Fatalf("ran=%v drained=%v after respawn", ran, e.Drained())
	}
}

func TestPanicUnwindRetiresWorkerAndPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("warm", func(p *Proc) {})
	e.Run()
	e.Spawn("bomb", func(p *Proc) { panic("boom") })
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("user panic did not propagate out of Run")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "boom") || !strings.Contains(s, "bomb") {
				t.Fatalf("panic %v does not carry payload and process name", r)
			}
		}()
		e.Run()
	}()
	if live := e.workersLive; live != 0 {
		t.Fatalf("workersLive = %d after panic unwind, want 0", live)
	}
}

func TestDaemonFinishParksWorker(t *testing.T) {
	e := NewEngine()
	daemonRan, childRan := false, false
	e.SpawnDaemon("bg", func(p *Proc) {
		p.Sleep(time.Second)
		daemonRan = true
	})
	e.Spawn("fg", func(p *Proc) {
		p.Sleep(1500 * time.Millisecond)
		// The daemon finished at 1s and parked its worker; this child must
		// reuse it rather than grow the pool.
		e.Spawn("child", func(p *Proc) { childRan = true })
		p.Sleep(time.Second)
	})
	e.Run()
	if !daemonRan || !childRan {
		t.Fatalf("daemonRan=%v childRan=%v", daemonRan, childRan)
	}
	if !e.Drained() {
		t.Fatal("engine not drained — daemon finish must not leak liveness")
	}
	if got := e.WorkersCreated(); got != 2 {
		t.Fatalf("WorkersCreated = %d, want 2 (daemon's worker reused for child)", got)
	}
	if got := e.WorkersReused(); got != 1 {
		t.Fatalf("WorkersReused = %d, want 1", got)
	}
}

func TestSpawnAfterStop(t *testing.T) {
	e := NewEngine()
	e.Spawn("first", func(p *Proc) {
		p.Sleep(time.Second)
		e.Stop()
	})
	e.Run()
	// Now spawn with the engine stopped between runs; the next Run must
	// rebuild the (drained) worker pool and run the process normally.
	ran := false
	e.Spawn("second", func(p *Proc) { ran = true })
	if e.Drained() {
		t.Fatal("Drained must be false while second is pending")
	}
	e.Run()
	if !ran || !e.Drained() {
		t.Fatalf("ran=%v drained=%v after resumed run", ran, e.Drained())
	}
}

func TestDrainedLeakDetectionWithWorkerPool(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	e.Spawn("leaker", func(p *Proc) { q.Get(p) }) // nobody will ever Put
	e.Spawn("fine", func(p *Proc) { p.Sleep(time.Second) })
	e.Run()
	if e.Drained() {
		t.Fatal("Drained reported true with a process parked forever")
	}
	if got := e.LiveProcs(); got != 1 {
		t.Fatalf("LiveProcs = %d, want 1 leaked process", got)
	}
}

func TestRunExitReleasesIdleWorkers(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Spawn("p", func(p *Proc) { p.Sleep(time.Duration(i) * time.Millisecond) })
	}
	before := runtime.NumGoroutine()
	e.Run()
	if live := e.workersLive; live != 0 {
		t.Fatalf("workersLive = %d after Run, want 0 (idle pool drained)", live)
	}
	// Give the retired goroutines a moment to exit, then check none leaked.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after Run, %d before — workers leaked", now, before)
	}
}

func TestWakeEventsRecycleAutomatically(t *testing.T) {
	// A process sleeping in a loop must reuse one wake Event from the pool
	// rather than minting one per sleep.
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	e.Run()
	// Start event + wake event is all this workload ever needed live at
	// once; the free list holds what was retired, far fewer than 50.
	if free := e.FreeEvents(); free > 2 {
		t.Fatalf("free list holds %d events, want ≤ 2 — wake events not reused in place", free)
	}
}
