package sim

import (
	"testing"
	"time"
)

func TestQueuePutThenGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []int
	e.Spawn("c", func(p *Proc) {
		got = append(got, q.Get(p))
		got = append(got, q.Get(p))
	})
	e.Schedule(0, func() { q.Put(1); q.Put(2) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got = %v, want [1 2]", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string]()
	var at time.Duration
	var item string
	e.Spawn("c", func(p *Proc) {
		item = q.Get(p)
		at = p.Now()
	})
	e.Schedule(7*time.Second, func() { q.Put("late") })
	e.Run()
	if item != "late" || at != 7*time.Second {
		t.Fatalf("got %q at %v, want \"late\" at 7s", item, at)
	}
}

func TestQueueConsumersFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []struct{ consumer, item int }
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("c", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			v := q.Get(p)
			got = append(got, struct{ consumer, item int }{i, v})
		})
	}
	e.Schedule(time.Second, func() {
		q.Put(100)
		q.Put(101)
		q.Put(102)
	})
	e.Run()
	for i, g := range got {
		if g.consumer != i || g.item != 100+i {
			t.Fatalf("delivery %d = %+v, want consumer %d item %d", i, g, i, 100+i)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(5)
	v, ok := q.TryGet()
	if !ok || v != 5 {
		t.Fatalf("TryGet = %d,%v want 5,true", v, ok)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var okFirst, okSecond bool
	var at time.Duration
	e.Spawn("c", func(p *Proc) {
		_, okFirst = q.GetTimeout(p, 2*time.Second)
		at = p.Now()
		var v int
		v, okSecond = q.GetTimeout(p, 10*time.Second)
		if v != 9 {
			t.Errorf("second GetTimeout item = %d, want 9", v)
		}
	})
	e.Schedule(5*time.Second, func() { q.Put(9) })
	e.Run()
	if okFirst {
		t.Fatal("first GetTimeout should have timed out")
	}
	if at != 2*time.Second {
		t.Fatalf("timeout returned at %v, want 2s", at)
	}
	if !okSecond {
		t.Fatal("second GetTimeout should have received the item")
	}
	if q.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", q.Waiting())
	}
}

func TestQueueKilledConsumerRequeuesItem(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	victim := e.Spawn("victim", func(p *Proc) {
		q.Get(p)
		t.Error("victim received item despite kill")
	})
	// Put and kill in the same instant: Put hands the item to the victim,
	// then the kill pre-empts the wakeup. The item must survive.
	e.Schedule(time.Second, func() {
		q.Put(42)
		victim.Kill()
	})
	var rescued int
	e.Spawn("rescuer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		rescued = q.Get(p)
	})
	e.Run()
	if rescued != 42 {
		t.Fatalf("rescued = %d, want 42 (item lost on kill)", rescued)
	}
}

func TestQueueKilledWaiterRemoved(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	victim := e.Spawn("victim", func(p *Proc) { q.Get(p) })
	e.Schedule(time.Second, func() { victim.Kill() })
	var got int
	e.Spawn("other", func(p *Proc) {
		p.Sleep(2 * time.Second)
		got = q.Get(p)
	})
	e.Schedule(3*time.Second, func() { q.Put(7) })
	e.Run()
	if got != 7 {
		t.Fatalf("other consumer got %d, want 7", got)
	}
	if !e.Drained() {
		t.Fatal("engine not drained")
	}
}

func TestQueueCounters(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	e.Spawn("c", func(p *Proc) {
		q.Get(p)
		q.Get(p)
	})
	e.Schedule(0, func() { q.Put(1); q.Put(2); q.Put(3) })
	e.Run()
	if q.Puts() != 3 || q.Gets() != 2 || q.Len() != 1 {
		t.Fatalf("Puts=%d Gets=%d Len=%d, want 3,2,1", q.Puts(), q.Gets(), q.Len())
	}
}
