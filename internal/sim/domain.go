package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// Domains couples N engines — domains — into one parallel simulation with a
// deterministic schedule. Each domain owns everything a standalone Engine
// owns: its own 4-ary calendar, sequence counter, event free list and
// parked-worker pool, so every existing subsystem (netsim fabrics, storage
// services, whole azure clouds) binds to a domain exactly as it binds to an
// engine today, with zero API churn.
//
// Execution proceeds in rounds. In each round every domain runs its own
// kernel loop on its own goroutine, either to drain (window 0, the default)
// or through the half-open virtual-time window [·, T+W) set by SetWindow;
// a barrier then merges the round deterministically: cross-domain sends
// queued during the round are delivered as events at the boundary time,
// ordered by source domain index first and per-domain send order (which is
// per-domain seq order) second. Two runs of the same program therefore
// produce identical traces regardless of how the host schedules the round
// goroutines — the same bit-identical guarantee the cell scheduler
// (internal/core/sched) gives across experiment cells, pushed down into a
// single cell.
//
// The determinism argument, in full:
//
//  1. Within a round, a domain is an ordinary Engine run: one goroutine at
//     a time, (time, seq) total order. Deterministic by the kernel's own
//     contract.
//  2. Domains share no simulation state. The only cross-domain channel is
//     the boundary mailbox, which a domain appends to during its round
//     (only its own kernel goroutine writes its queue) and the coordinator
//     reads strictly after the round barrier.
//  3. The mailbox flush order — (source domain index, send order) — and
//     the delivery time — the round's boundary — are pure functions of
//     simulation state, not of host scheduling. Delivered mail consumes
//     destination sequence numbers in that fixed order.
//  4. Window boundaries are pure functions of simulation state too: the
//     grid anchors at virtual time zero, and the skip-ahead that jumps
//     empty windows depends only on calendar contents.
//
// Boundary-queued delivery means cross-domain latency quantizes up to the
// window: a send lands at the end of the window it was issued in, never
// mid-window. Workloads built from disjoint client↔service pairs (the
// experiment cells core shards onto domains) need no mail at all; the
// mailbox is the growth hook for coupled topologies, which pick W as their
// cross-domain latency floor.
type Domains struct {
	members []*Engine
	window  time.Duration

	// Adaptive window state (SetAdaptiveWindow): the coordinator doubles or
	// halves window between rounds to steer per-round fired-event counts
	// toward adaptTarget. Fired counts are deterministic simulation state,
	// so the boundary sequence stays reproducible.
	adaptive           bool
	adaptMin, adaptMax time.Duration
	adaptTarget        uint64

	// mail[src] is the boundary mailbox of domain src: appended only by
	// src's kernel goroutine during a round, flushed only by the
	// coordinator after the round barrier.
	mail [][]mailMsg

	// batch[dst] is the pooled per-destination delivery batch: the
	// coordinator gathers a boundary's mail for dst into it (in the
	// (source domain, send order) merge order) and schedules one event —
	// batchFn[dst] — that runs the batch and truncates it for reuse.
	// armed[dst] reports that such an event is pending; gathering into an
	// armed batch is safe (the pending event delivers appended entries at
	// the same clamped instant, in order) and covers the corner where a
	// destination's clock outran the boundary so its batch event has not
	// fired yet. The slices recycle across rounds like the event free
	// list, capped at maxMailSliceCap entries.
	batch   [][]func()
	armed   []bool
	batchFn []func()

	// labels[i] is domain i's precomputed pprof label set; every round
	// goroutine (and the worker goroutines its kernel spawns, which
	// inherit goroutine labels) runs under it, so CPU profiles attribute
	// samples to domains.
	labels []pprof.LabelSet

	rounds    int
	delivered uint64
	busy      []time.Duration
	wall      time.Duration
	panics    []any
	running   bool
}

// maxMailSliceCap bounds the capacity retained by recycled mail queues and
// delivery batches, mirroring the event free-list cap: a one-off mail burst
// should not pin its high-water backing array forever.
const maxMailSliceCap = 1 << 16

// mailMsg is one queued cross-domain send.
type mailMsg struct {
	dst int
	fn  func()
}

// NewDomains creates a group of n fresh engines. n must be at least 1; a
// single-domain group degenerates to the plain serial kernel loop, which is
// what keeps the one-domain path byte-identical to a standalone engine.
func NewDomains(n int) *Domains {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewDomains(%d): need at least one domain", n))
	}
	d := &Domains{
		members: make([]*Engine, n),
		mail:    make([][]mailMsg, n),
		batch:   make([][]func(), n),
		armed:   make([]bool, n),
		batchFn: make([]func(), n),
		labels:  make([]pprof.LabelSet, n),
		busy:    make([]time.Duration, n),
		panics:  make([]any, n),
	}
	for i := range d.members {
		e := NewEngine()
		e.group = d
		e.domIndex = i
		d.members[i] = e
		dst := i
		d.batchFn[i] = func() { d.deliverBatch(dst) }
		d.labels[i] = pprof.Labels("domain", strconv.Itoa(i))
	}
	return d
}

// N returns the number of domains in the group.
func (d *Domains) N() int { return len(d.members) }

// Domain returns the i'th member engine. Build each domain's simulated
// world on its engine exactly as on a standalone one.
func (d *Domains) Domain(i int) *Engine { return d.members[i] }

// SetWindow sets the virtual-time window width for subsequent Run calls.
// Zero (the default) runs every round to drain — the right choice when
// domains exchange no mail, since it needs exactly one round. A positive
// window bounds how far any domain runs ahead of the others, which bounds
// cross-domain mail latency to one window.
func (d *Domains) SetWindow(w time.Duration) {
	if w < 0 {
		panic("sim: negative domain window")
	}
	if d.running {
		panic("sim: SetWindow during Domains.Run")
	}
	d.window = w
	d.adaptive = false
}

// SetAdaptiveWindow makes the window self-tuning: it starts at min and,
// between rounds, doubles whenever the round fired fewer than half of
// targetEvents (barrier overhead dominates — widen) and halves whenever it
// fired more than twice targetEvents (cross-domain mail latency quantizes
// up to the window — narrow), clamped to [min, max]. Skip-ahead over empty
// windows is preserved. The adjustment reads only fired-event counts, which
// are deterministic simulation state, so the boundary sequence — and with
// it every trace — remains bit-identical run to run and across domain
// widths.
func (d *Domains) SetAdaptiveWindow(min, max time.Duration, targetEvents int) {
	if d.running {
		panic("sim: SetAdaptiveWindow during Domains.Run")
	}
	if min <= 0 || max < min || targetEvents < 1 {
		panic(fmt.Sprintf("sim: SetAdaptiveWindow(%v, %v, %d): need 0 < min ≤ max and target ≥ 1",
			min, max, targetEvents))
	}
	d.window = min
	d.adaptive = true
	d.adaptMin, d.adaptMax = min, max
	d.adaptTarget = uint64(targetEvents)
}

// Window returns the current window width (0 = run-to-drain rounds). Under
// SetAdaptiveWindow it reports the width the next round will use.
func (d *Domains) Window() time.Duration { return d.window }

// adaptWindow applies the adaptive-window rule after a bounded round that
// fired delta events group-wide.
func (d *Domains) adaptWindow(delta uint64) {
	if !d.adaptive {
		return
	}
	switch {
	case delta < d.adaptTarget/2 && d.window < d.adaptMax:
		if d.window *= 2; d.window > d.adaptMax {
			d.window = d.adaptMax
		}
	case delta > d.adaptTarget*2 && d.window > d.adaptMin:
		if d.window /= 2; d.window < d.adaptMin {
			d.window = d.adaptMin
		}
	}
}

// Now returns the latest virtual time any domain has reached.
func (d *Domains) Now() time.Duration { return d.maxNow() }

// EventsFired returns the total events executed across all domains.
func (d *Domains) EventsFired() uint64 {
	var n uint64
	for _, m := range d.members {
		n += m.fired
	}
	return n
}

// Pending returns the total live pending events across all domains.
func (d *Domains) Pending() int {
	n := 0
	for _, m := range d.members {
		n += m.Pending()
	}
	return n
}

// Drained reports whether every domain has fully quiesced (see
// Engine.Drained) and no boundary mail is waiting.
func (d *Domains) Drained() bool {
	for _, m := range d.members {
		if !m.Drained() {
			return false
		}
	}
	return !d.mailQueued()
}

// Rounds returns the number of coordinator rounds Run has executed.
func (d *Domains) Rounds() int { return d.rounds }

// MailDelivered returns the number of boundary mailbox events delivered.
func (d *Domains) MailDelivered() uint64 { return d.delivered }

// DomainIndex returns the engine's index within its Domains group, or 0
// for a standalone engine.
func (e *Engine) DomainIndex() int { return e.domIndex }

// Send queues fn for delivery to domain dst of this engine's group. The
// callback runs as an event on dst's engine at the next window boundary
// (with window 0: when every domain has drained its current round), after
// all of dst's own events of the round. Sends merge deterministically:
// source domain index first, then per-source send order. Send panics on an
// engine that is not part of a Domains group.
func (e *Engine) Send(dst int, fn func()) {
	if e.group == nil {
		panic("sim: Send from an engine outside a Domains group")
	}
	e.group.send(e.domIndex, dst, fn)
}

func (d *Domains) send(src, dst int, fn func()) {
	if dst < 0 || dst >= len(d.members) {
		panic(fmt.Sprintf("sim: Send to domain %d of a %d-domain group", dst, len(d.members)))
	}
	if fn == nil {
		panic("sim: Send with nil callback")
	}
	d.mail[src] = append(d.mail[src], mailMsg{dst: dst, fn: fn})
}

// Run executes the group until every domain drains and no boundary mail
// remains. Panics raised inside any domain (including process panics, which
// each member kernel re-raises on its round goroutine) are re-raised here
// after the round barrier; when several domains panic in one round, the
// lowest domain index wins — deterministically.
func (d *Domains) Run() {
	if d.running {
		panic("sim: Domains.Run reentered")
	}
	for _, m := range d.members {
		if m.running {
			panic("sim: Domains.Run with a member engine already running")
		}
		m.stopped = false
	}
	d.running = true
	start := time.Now()
	defer func() {
		d.wall += time.Since(start)
		d.running = false
		for _, m := range d.members {
			m.releaseIdleWorkers()
		}
	}()

	bounded := d.window > 0
	// Window grid origin is virtual time zero: boundaries land on multiples
	// of the window regardless of how far setup runs advanced the clocks.
	var t time.Duration
	for {
		if !d.anyRunnable() && !d.mailQueued() {
			break
		}
		var limit time.Duration
		if bounded {
			// Skip empty windows: jump the grid to the last boundary at or
			// before the earliest pending event. Calendar contents are
			// deterministic, so the boundary sequence is too.
			if next, ok := d.earliestPending(); ok && next >= t+d.window {
				t += (next - t) / d.window * d.window
			}
			limit = t + d.window
			t = limit
		}
		d.rounds++
		before := d.EventsFired()
		d.runRound(bounded, limit)
		if pv := d.takePanic(); pv != nil {
			panic(pv)
		}
		boundary := limit
		if !bounded {
			boundary = d.maxNow()
		}
		d.flushMail(boundary)
		if bounded {
			d.adaptWindow(d.EventsFired() - before)
		}
	}
}

// RunUntil executes the group in bounded rounds until virtual time reaches
// deadline — the windowed counterpart of Engine.RunUntil for horizon-bounded
// workloads (a campaign that runs for N days rather than to drain). Events
// scheduled exactly at the deadline do fire, matching Engine.RunUntil, and
// every member clock is advanced to the deadline on return. Mail queued in
// the final round (or addressed past the horizon) stays queued: the horizon
// cut it off exactly as it cuts off pending events. RunUntil requires a
// positive window — SetWindow or SetAdaptiveWindow first — because an
// unbounded round could run arbitrarily far past the deadline.
func (d *Domains) RunUntil(deadline time.Duration) {
	if d.running {
		panic("sim: Domains.RunUntil reentered")
	}
	if d.window <= 0 {
		panic("sim: Domains.RunUntil needs a window — call SetWindow or SetAdaptiveWindow first")
	}
	for _, m := range d.members {
		if m.running {
			panic("sim: Domains.RunUntil with a member engine already running")
		}
		m.stopped = false
	}
	d.running = true
	start := time.Now()
	defer func() {
		d.wall += time.Since(start)
		d.running = false
		for _, m := range d.members {
			m.releaseIdleWorkers()
		}
	}()

	// runWindow's limit is exclusive, so the last round runs to deadline+1:
	// events at exactly the deadline fire, later ones do not.
	end := deadline + 1
	var t time.Duration
	for t < end {
		if !d.anyRunnable() && !d.mailQueued() {
			break
		}
		if next, ok := d.earliestPending(); ok && next >= t+d.window {
			t += (next - t) / d.window * d.window
			if t >= end {
				break // every remaining event lies past the deadline
			}
		}
		limit := t + d.window
		if limit > end {
			limit = end
		}
		t = limit
		d.rounds++
		before := d.EventsFired()
		d.runRound(true, limit)
		if pv := d.takePanic(); pv != nil {
			panic(pv)
		}
		if limit < end {
			d.flushMail(limit)
		}
		d.adaptWindow(d.EventsFired() - before)
	}
	for _, m := range d.members {
		if m.now < deadline {
			m.now = deadline
		}
	}
}

// runRound executes one window (or drain) round: every domain's kernel loop
// on its own goroutine, with a full barrier before the coordinator touches
// any shared state again. A single-domain group runs inline — no goroutine,
// no barrier — so it is exactly the serial kernel loop.
func (d *Domains) runRound(bounded bool, limit time.Duration) {
	if len(d.members) == 1 {
		d.roundOn(d.members[0], bounded, limit)
		return
	}
	var wg sync.WaitGroup
	for _, m := range d.members {
		wg.Add(1)
		go func(m *Engine) {
			defer wg.Done()
			d.roundOn(m, bounded, limit)
		}(m)
	}
	wg.Wait()
}

// roundOn runs one domain's share of a round, capturing any panic in the
// domain's slot (each round goroutine writes only its own index) for the
// coordinator to re-raise deterministically after the barrier.
func (d *Domains) roundOn(m *Engine, bounded bool, limit time.Duration) {
	t0 := time.Now()
	defer func() {
		d.busy[m.domIndex] += time.Since(t0)
		m.running = false
		if r := recover(); r != nil {
			d.panics[m.domIndex] = r
		}
	}()
	m.running = true
	// The label set makes profiles attribute kernel time (and the worker
	// goroutines this round spawns, which inherit goroutine labels) to
	// "domain=<index>".
	pprof.Do(context.Background(), d.labels[m.domIndex], func(context.Context) {
		if bounded {
			m.runWindow(limit)
		} else {
			m.runToDrain()
		}
	})
}

// runWindow fires the engine's events with time strictly before limit — the
// half-open window [·, limit) of one coordinator round; an event at exactly
// the boundary belongs to the next window. Unlike RunUntil it neither
// advances the clock to the boundary (a domain's clock sits at its last
// fired event; boundary mail is scheduled at the boundary regardless) nor
// fires daemon-only tails: exactly as in Run, events fire only while
// foreground work remains.
func (e *Engine) runWindow(limit time.Duration) {
	for !e.stopped {
		if e.foreground == 0 && e.procs == 0 && e.flats == 0 {
			return
		}
		if len(e.events) == 0 {
			return
		}
		next := e.events[0]
		if next.ev.canceled {
			e.heapPop()
			e.dead--
			if next.ev.reclaim {
				e.recycle(next.ev)
			}
			continue
		}
		if next.at >= limit {
			return
		}
		e.Step()
	}
}

// runnable reports whether the engine would fire at least one more event
// given an unbounded window: foreground work, plus — for parked processes
// and actors, which hold no event of their own — a live event somewhere to
// move the world forward. A domain with live processes but an empty (or
// corpse-only) calendar is stuck, exactly like a leaked process under Run,
// and must not keep the coordinator looping.
func (e *Engine) runnable() bool {
	if e.stopped {
		return false
	}
	if e.foreground > 0 {
		return true
	}
	return (e.procs > 0 || e.flats > 0) && e.Pending() > 0
}

func (d *Domains) anyRunnable() bool {
	for _, m := range d.members {
		if m.runnable() {
			return true
		}
	}
	return false
}

func (d *Domains) mailQueued() bool {
	for _, q := range d.mail {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

func (d *Domains) maxNow() time.Duration {
	var t time.Duration
	for _, m := range d.members {
		if m.now > t {
			t = m.now
		}
	}
	return t
}

// earliestPending returns the smallest calendar-root time across domains.
// Corpses (canceled entries) count: a corpse's time can only pick an
// earlier window — at worst one extra empty round — and corpse state is as
// deterministic as live state, so the boundary sequence stays reproducible.
func (d *Domains) earliestPending() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, m := range d.members {
		if len(m.events) == 0 {
			continue
		}
		if at := m.events[0].at; !ok || at < best {
			best, ok = at, true
		}
	}
	return best, ok
}

// flushMail delivers every queued cross-domain send at the boundary time,
// iterating sources in domain-index order and each source's queue in send
// order — the deterministic merge. Rather than one event per message, the
// merge gathers each destination's mail into its pooled batch and schedules
// a single batch event per destination: the batch runs its callbacks in the
// merge order and bumps the destination's fired count by the message count,
// so EventsFired stays per-message (width-invariant for workloads whose
// message count is) and the only observable change versus per-message
// events is one heap push instead of n.
func (d *Domains) flushMail(boundary time.Duration) {
	for src := range d.mail {
		msgs := d.mail[src]
		if len(msgs) == 0 {
			continue
		}
		for i := range msgs {
			d.batch[msgs[i].dst] = append(d.batch[msgs[i].dst], msgs[i].fn)
			msgs[i] = mailMsg{} // corpse discipline: queues retain nothing
			d.delivered++
		}
		if cap(msgs) > maxMailSliceCap {
			d.mail[src] = nil
		} else {
			d.mail[src] = msgs[:0]
		}
	}
	for dst := range d.batch {
		if len(d.batch[dst]) == 0 || d.armed[dst] {
			// Armed: the destination's pending batch event has not fired
			// (its clock outran a lagging boundary, or it stopped). The
			// entries just appended ride along — same delivery instant,
			// merge order preserved.
			continue
		}
		m := d.members[dst]
		at := boundary
		if at < m.now {
			// A drained domain's clock can sit past a lagging window
			// boundary; deliver at its present instead of its past. The
			// clamp is itself deterministic: member clocks are.
			at = m.now
		}
		d.armed[dst] = true
		m.Schedule(at, d.batchFn[dst])
	}
}

// deliverBatch is the body of a destination's batch event: run the gathered
// callbacks in merge order and recycle the batch slice. It executes on the
// destination's kernel goroutine; the coordinator only touches the batch
// between rounds, on the far side of the round barrier.
func (d *Domains) deliverBatch(dst int) {
	d.armed[dst] = false
	b := d.batch[dst]
	m := d.members[dst]
	// Step counted the batch event once; count the rest of the messages so
	// EventsFired matches per-message delivery exactly.
	m.fired += uint64(len(b) - 1)
	for i := range b {
		fn := b[i]
		b[i] = nil
		fn()
	}
	if cap(b) > maxMailSliceCap {
		d.batch[dst] = nil
	} else {
		d.batch[dst] = b[:0]
	}
}

// takePanic collects the round's captured panics and returns the one to
// re-raise: lowest domain index first. All slots are cleared.
func (d *Domains) takePanic() any {
	var pv any
	for i := range d.panics {
		if pv == nil && d.panics[i] != nil {
			pv = d.panics[i]
		}
		d.panics[i] = nil
	}
	return pv
}

// DomainStats is the coordinator's accounting for one group.
type DomainStats struct {
	Domains int // group width
	// Requested is the width the caller asked for — greater than Domains
	// when a layer above clamped the ask (geo clamps to its region count,
	// modis to its shard count). Stats fills it with the actual width; the
	// clamping layer overwrites it so reports can surface the cap instead
	// of letting it pass silently.
	Requested int
	Rounds    int // coordinator rounds executed
	Mail    uint64        // boundary mailbox events delivered
	Busy    time.Duration // summed in-round execution time across domains
	Wall    time.Duration // total Run wall time

	// PerDomainBusy is each domain's summed in-round time; the spread shows
	// whether speedup is bounded by load imbalance across domains.
	PerDomainBusy []time.Duration
}

// Utilization is the fraction of the group's domain-seconds spent running
// kernels: Busy / (Domains × Wall). A perfectly balanced, mail-free group
// scores near 1; low values mean domains idled at round barriers.
func (s DomainStats) Utilization() float64 {
	if s.Wall <= 0 || s.Domains < 1 {
		return 0
	}
	return s.Busy.Seconds() / (float64(s.Domains) * s.Wall.Seconds())
}

// Stats returns a snapshot of the group's accounting.
func (d *Domains) Stats() DomainStats {
	s := DomainStats{
		Domains:       len(d.members),
		Requested:     len(d.members),
		Rounds:        d.rounds,
		Mail:          d.delivered,
		Wall:          d.wall,
		PerDomainBusy: append([]time.Duration(nil), d.busy...),
	}
	for _, b := range d.busy {
		s.Busy += b
	}
	return s
}

// DomainAccum sums coordinator stats across many Domains groups. An
// experiment that shards its cells into per-batch groups adds each group's
// stats here; Add is safe from concurrent scheduler workers. Read the
// totals only after the runs complete.
type DomainAccum struct {
	mu     sync.Mutex
	Groups int
	Rounds int
	Mail   uint64
	Width  int // widest group seen
	// Clamped counts groups that ran narrower than their caller asked
	// (Requested > Domains) — bench reports surface it; no silent caps.
	Clamped int
	Busy    time.Duration
	Wall    time.Duration
}

// Add folds one group's stats into the accumulator.
func (a *DomainAccum) Add(s DomainStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.Groups++
	a.Rounds += s.Rounds
	a.Mail += s.Mail
	if s.Domains > a.Width {
		a.Width = s.Domains
	}
	if s.Requested > s.Domains {
		a.Clamped++
	}
	a.Busy += s.Busy
	a.Wall += s.Wall
}

// Utilization is summed busy domain-seconds over width × summed group wall
// seconds. Tail batches narrower than the widest group (and groups run
// concurrently by the cell scheduler) make this a lower bound on true
// per-group utilization, which is the conservative direction for a bench
// report.
func (a *DomainAccum) Utilization() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Wall <= 0 || a.Width < 1 {
		return 0
	}
	return a.Busy.Seconds() / (float64(a.Width) * a.Wall.Seconds())
}
