package sim

import (
	"fmt"
	"sync/atomic"
)

// Invariants is the kernel's self-check harness. It is off by default —
// production sweeps pay nothing for it — and is switched on per engine with
// Engine.EnableInvariants, or for a whole test binary with
// SetDefaultInvariants (typically from TestMain).
//
// Checks never draw random numbers and never advance the clock, so enabling
// them cannot perturb a trace: a run with invariants on produces bit-identical
// results to the same run with them off.
//
// Two modes:
//   - fail-fast (tests): the first violation panics with its message, so the
//     offending event is at the top of the stack.
//   - recording (chaos campaigns, modisazure -chaos): violations accumulate
//     and are reported at the end of the run; the campaign itself continues.
type Invariants struct {
	failFast   bool
	violations []string
	dropped    uint64 // violations beyond maxViolations, counted not stored
}

// maxViolations bounds recording-mode memory: a systemic bug firing once per
// event would otherwise hoard the whole run's event log as strings.
const maxViolations = 256

// defaultInvariants selects the mode NewEngine starts in: 0 = off,
// 1 = fail-fast. Read atomically so parallel test packages can flip it in
// TestMain before any engine exists.
var defaultInvariants atomic.Int32

// SetDefaultInvariants makes every subsequently constructed Engine start with
// fail-fast invariant checking enabled (or disabled again). Test packages
// across the repo call this from TestMain so that every simulation run in the
// suite is continuously checked.
func SetDefaultInvariants(on bool) {
	if on {
		defaultInvariants.Store(1)
	} else {
		defaultInvariants.Store(0)
	}
}

// EnableInvariants switches invariant checking on for this engine and returns
// the harness. failFast selects panic-on-violation; recording mode (false)
// collects violations for later inspection. Calling it again returns the
// existing harness (the mode of the first call wins).
func (e *Engine) EnableInvariants(failFast bool) *Invariants {
	if e.inv == nil {
		e.inv = &Invariants{failFast: failFast}
	}
	return e.inv
}

// Invariants returns the engine's harness, or nil when checking is off. The
// nil result is safe to use: all Invariants methods are nil-receiver no-ops,
// so call sites read eng.Invariants().Checkf(...) without a guard.
func (e *Engine) Invariants() *Invariants { return e.inv }

// Checkf records a violation when ok is false. In fail-fast mode it panics
// with the formatted message; in recording mode it appends to the violation
// log. A nil receiver (checking disabled) does nothing — but callers should
// still keep condition evaluation cheap, since arguments are evaluated either
// way.
func (inv *Invariants) Checkf(ok bool, format string, args ...any) {
	if inv == nil || ok {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if inv.failFast {
		panic("sim: invariant violated: " + msg)
	}
	if len(inv.violations) < maxViolations {
		inv.violations = append(inv.violations, msg)
	} else {
		inv.dropped++
	}
}

// Violations returns a copy of the recorded violation messages (recording
// mode; fail-fast panics before anything is recorded). Nil receiver returns
// nil.
func (inv *Invariants) Violations() []string {
	if inv == nil {
		return nil
	}
	out := make([]string, len(inv.violations))
	copy(out, inv.violations)
	return out
}

// ViolationCount returns the total number of violations observed, including
// any dropped beyond the recording cap. Nil receiver returns 0.
func (inv *Invariants) ViolationCount() uint64 {
	if inv == nil {
		return 0
	}
	return uint64(len(inv.violations)) + inv.dropped
}
