package sim

// WaitGroup tracks a set of outstanding activities; Wait parks the caller
// until the count reaches zero. It is the simulated analogue of
// sync.WaitGroup for fork-join patterns such as parallel range downloads.
// The zero value is ready to use.
type WaitGroup struct {
	count int
	done  Signal
}

// Add increases (or with negative delta decreases) the outstanding count.
// A count dropping to zero releases all waiters; dropping below zero panics.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.count == 0 {
		wg.done.Fire()
	}
}

// Done decrements the count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the outstanding count.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait parks the process until the count is zero. A zero count returns
// immediately.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.done.Wait(p)
}

// Go spawns fn as a process accounted in the wait group: Add(1) now,
// Done when fn returns (or is killed).
func (wg *WaitGroup) Go(e *Engine, name string, fn func(p *Proc)) *Proc {
	wg.Add(1)
	return e.Spawn(name, func(p *Proc) {
		defer wg.Done()
		fn(p)
	})
}
