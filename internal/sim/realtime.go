package sim

import (
	"sync"
	"time"
)

// RTMode selects how RealTime advances the simulation clock.
type RTMode int

const (
	// FreeRun drains the engine after each batch of submissions: virtual
	// time jumps as far as the parked work requires and stands still
	// otherwise. A submission's downstream effects (a parked request's
	// completion) are visible by the time the next submission runs, which
	// makes free-run serving deterministic given the arrival order.
	FreeRun RTMode = iota
	// Paced advances virtual time in step with the wall clock: every tick
	// the engine runs up to the virtual instant corresponding to the wall
	// time elapsed since Serve began. Latencies become observable in real
	// time; determinism then depends on wall-clock arrival times.
	Paced
)

func (m RTMode) String() string {
	if m == Paced {
		return "paced"
	}
	return "freerun"
}

type rtSubmission struct {
	fn   func()
	done chan struct{}
}

// RealTime bridges wall-clock callers — an HTTP server, a CLI — onto a
// deterministic Engine. The engine is not safe for concurrent use, so
// RealTime makes its Serve goroutine the engine's only driver: callers
// submit closures with Do, Serve runs them between engine runs, and
// everything the closure starts (actors, procs, events) executes on the
// Serve goroutine too.
//
// The kernel itself never blocks on wall time; RealTime is strictly a
// boundary adapter, and a simulation driven entirely by Do submissions in a
// recorded order replays bit-identically through Engine.Run alone.
type RealTime struct {
	eng  *Engine
	mode RTMode
	tick time.Duration

	mu     sync.Mutex
	inbox  []rtSubmission
	closed bool

	wake chan struct{} // 1-buffered doorbell
	done chan struct{} // closed when Serve returns
}

// NewRealTime wraps eng. Serve must be started by the caller.
func NewRealTime(eng *Engine, mode RTMode) *RealTime {
	return &RealTime{
		eng:  eng,
		mode: mode,
		tick: 10 * time.Millisecond,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// Engine returns the wrapped engine. Touch it only from inside Do closures.
func (rt *RealTime) Engine() *Engine { return rt.eng }

// Mode returns the clock-advance mode.
func (rt *RealTime) Mode() RTMode { return rt.mode }

// SetTick adjusts the paced-mode polling interval (default 10ms). Call
// before Serve.
func (rt *RealTime) SetTick(d time.Duration) {
	if d > 0 {
		rt.tick = d
	}
}

// Do runs fn on the Serve goroutine and returns once fn has executed (in
// free-run mode, also once the engine has drained the work fn started). It
// reports false if the RealTime is closed and fn was not run. Do must not
// be called from inside a submission: fn blocks the only goroutine that
// could serve it.
func (rt *RealTime) Do(fn func()) bool {
	sub := rtSubmission{fn: fn, done: make(chan struct{})}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return false
	}
	rt.inbox = append(rt.inbox, sub)
	rt.mu.Unlock()
	rt.ring()
	select {
	case <-sub.done:
		return true
	case <-rt.done:
		// Serve exited; a submission enqueued before close is still run on
		// the final sweep, so reaching here means it never was.
		return false
	}
}

func (rt *RealTime) ring() {
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// Serve drives the engine until Close. It is the engine's sole driver while
// running and must be called exactly once, typically on its own goroutine.
func (rt *RealTime) Serve() {
	defer close(rt.done)
	wallEpoch := time.Now()
	virtEpoch := rt.eng.Now()
	for {
		rt.mu.Lock()
		batch := rt.inbox
		rt.inbox = nil
		closed := rt.closed
		rt.mu.Unlock()

		for i := range batch {
			batch[i].fn()
			close(batch[i].done)
		}
		switch rt.mode {
		case FreeRun:
			// Drain on demand: only a submission can create foreground work.
			if len(batch) > 0 {
				rt.eng.Run()
			}
		case Paced:
			rt.eng.RunUntil(virtEpoch + time.Since(wallEpoch))
		}
		if closed {
			if len(batch) == 0 {
				return
			}
			continue // sweep any submissions racing the close
		}
		if rt.mode == FreeRun {
			<-rt.wake
		} else {
			select {
			case <-rt.wake:
			case <-time.After(rt.tick):
			}
		}
	}
}

// Close stops Serve after it sweeps any pending submissions, and waits for
// it to return. Later Do calls report false. Close is idempotent.
func (rt *RealTime) Close() {
	rt.mu.Lock()
	already := rt.closed
	rt.closed = true
	rt.mu.Unlock()
	if !already {
		rt.ring()
	}
	<-rt.done
}
