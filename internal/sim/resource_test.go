package sim

import (
	"testing"
	"time"
)

func TestResourceImmediateAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	var heldAt time.Duration = -1
	e.Spawn("p", func(p *Proc) {
		r.Acquire(p, 2)
		heldAt = p.Now()
		r.Release(2)
	})
	e.Run()
	if heldAt != 0 {
		t.Fatalf("acquire blocked unnecessarily; got time %v", heldAt)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after release, want 0", r.InUse())
	}
}

func TestResourceBlocksUntilRelease(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	var secondAt time.Duration
	e.Spawn("first", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(5 * time.Second)
		r.Release(1)
	})
	e.Spawn("second", func(p *Proc) {
		r.Acquire(p, 1)
		secondAt = p.Now()
		r.Release(1)
	})
	e.Run()
	if secondAt != 5*time.Second {
		t.Fatalf("second acquired at %v, want 5s", secondAt)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	var order []int
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(time.Second)
		r.Release(1)
	})
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger arrival
			r.Acquire(p, 1)
			order = append(order, i)
			r.Release(1)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceNoOvertaking(t *testing.T) {
	// A queued 2-unit request must not be overtaken by a later 1-unit
	// request even when 1 unit is free (strict FIFO).
	e := NewEngine()
	r := NewResource(e, "srv", 2)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(time.Second)
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Second)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("order = %v; strict FIFO violated", order)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire failed on free resource")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded on exhausted resource")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestResourceKillWaiter(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	var got []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	victim := e.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Second)
		r.Acquire(p, 1)
		got = append(got, "victim")
		r.Release(1)
	})
	e.Spawn("survivor", func(p *Proc) {
		p.Sleep(2 * time.Second)
		r.Acquire(p, 1)
		got = append(got, "survivor")
		r.Release(1)
	})
	e.Schedule(3*time.Second, func() { victim.Kill() })
	e.Run()
	if len(got) != 1 || got[0] != "survivor" {
		t.Fatalf("got = %v, want only survivor", got)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after drain, want 0 (kill leaked units)", r.InUse())
	}
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(time.Second)
			r.Release(1)
		})
	}
	e.Run()
	if r.TotalAcquired() != 4 {
		t.Fatalf("TotalAcquired = %d, want 4", r.TotalAcquired())
	}
	if r.MaxQueueLen() != 3 {
		t.Fatalf("MaxQueueLen = %d, want 3", r.MaxQueueLen())
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "srv", 1)
	var end time.Duration
	e.Spawn("a", func(p *Proc) {
		r.Use(p, 1, func() { p.Sleep(2 * time.Second) })
	})
	e.Spawn("b", func(p *Proc) {
		r.Use(p, 1, func() { p.Sleep(2 * time.Second) })
		end = p.Now()
	})
	e.Run()
	if end != 4*time.Second {
		t.Fatalf("serialized Use ended at %v, want 4s", end)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", r.InUse())
	}
}

func TestResourceInvalidArgs(t *testing.T) {
	e := NewEngine()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewResource(e, "x", 0) })
	r := NewResource(e, "x", 2)
	mustPanic("over-release", func() { r.Release(1) })
	mustPanic("try-acquire too many", func() { r.TryAcquire(3) })
}
