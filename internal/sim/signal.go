package sim

import "time"

// Signal is a broadcast condition: processes Wait on it and are all released
// by the next Fire. It carries no payload; pair it with shared state the
// waker updates before firing. The zero value is usable.
type Signal struct {
	waiters []*sigWaiter
	fires   uint64
}

// sigWaiter parks either a process or a flat actor; exactly one of p and a
// is set. Actor waiters are embedded in the Actor and reused, so flat waits
// allocate nothing.
type sigWaiter struct {
	p        *Proc
	a        *Actor
	released bool
	timedOut bool
}

// wake releases the parked party at the current instant; both sides schedule
// exactly one engine-owned wake event, so mixed proc/actor waiter lists fire
// in arrival order with identical traces.
func (w *sigWaiter) wake() {
	if w.p != nil {
		w.p.wakeNow()
	} else {
		w.a.wakeNow()
	}
}

// Fires returns how many times the signal has fired.
func (s *Signal) Fires() uint64 { return s.fires }

// Waiting returns the number of parked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Wait parks the process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	p.killCheck()
	w := &sigWaiter{p: p}
	s.waiters = append(s.waiters, w)
	p.suspend(func() { s.remove(w) })
}

// WaitTimeout parks the process until the next Fire or until d elapses,
// whichever is first. It reports whether the wait timed out.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	p.killCheck()
	w := &sigWaiter{p: p}
	s.waiters = append(s.waiters, w)
	timer := p.eng.After(d, func() {
		if w.released {
			return
		}
		w.released = true
		w.timedOut = true
		s.remove(w)
		w.p.wakeNow()
	})
	// CancelRecycle rather than Cancel: the timer is dead either way (fired
	// or canceled), and this hands the allocation back to the event pool.
	defer p.eng.CancelRecycle(timer)
	p.suspend(func() { s.remove(w) })
	return w.timedOut
}

// Fire releases every currently parked process, in arrival order. Processes
// that start waiting after Fire returns wait for the next one.
func (s *Signal) Fire() {
	s.fires++
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.released {
			continue
		}
		w.released = true
		w.wake()
	}
}

// FireOne releases the longest-waiting parked process, if any, and reports
// whether one was released.
func (s *Signal) FireOne() bool {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.released {
			continue
		}
		s.fires++
		w.released = true
		w.wake()
		return true
	}
	return false
}

// WaitFlat parks a flat actor on the signal: the next Fire runs then at the
// fire instant, exactly when a parked process's wake would run. The actor's
// embedded waiter is reused, so the wait allocates nothing — which also
// means an actor can wait on at most one signal at a time. There is no flat
// timeout wait; actors needing one stay on the process API.
func (s *Signal) WaitFlat(a *Actor, then func()) {
	a.arm(then)
	a.waiter = sigWaiter{a: a}
	s.waiters = append(s.waiters, &a.waiter)
}

func (s *Signal) remove(w *sigWaiter) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}
