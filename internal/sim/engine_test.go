package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("now = %v, want 3s", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(5*time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("After fired at %v, want 7s", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(0, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(time.Second, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (deadline-inclusive)", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("now = %v, want 3s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events after second RunUntil, want 5", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("now advanced to %v, want deadline 10s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("ran %d events, want 4 (stopped)", count)
	}
	e.Run() // resumes from where it stopped
	if count != 10 {
		t.Fatalf("ran %d events after resume, want 10", count)
	}
}

func TestDrained(t *testing.T) {
	e := NewEngine()
	if !e.Drained() {
		t.Fatal("fresh engine not drained")
	}
	ev := e.Schedule(time.Second, func() {})
	if e.Drained() {
		t.Fatal("engine with pending event reported drained")
	}
	e.Cancel(ev)
	if !e.Drained() {
		t.Fatal("engine with only canceled events reported not drained")
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", e.EventsFired())
	}
}

// Property: for any set of schedule times, events fire in nondecreasing time
// order, with ties in insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		e := NewEngine()
		type firing struct {
			at  time.Duration
			seq int
		}
		var fired []firing
		for i, r := range raw {
			i, d := i, time.Duration(r)*time.Millisecond
			e.Schedule(d, func() { fired = append(fired, firing{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].seq < fired[b].seq
		}) {
			return false
		}
		// Also must be exactly sorted as executed (stable order).
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving cancellations never disturbs ordering of survivors,
// and canceled events never fire.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		e := NewEngine()
		n := 50 + rng.Intn(100)
		events := make([]*Event, n)
		firedIdx := map[int]bool{}
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				firedIdx[i] = true
			})
		}
		canceled := map[int]bool{}
		for i := 0; i < n/3; i++ {
			j := rng.Intn(n)
			e.Cancel(events[j])
			canceled[j] = true
		}
		e.Run()
		for i := 0; i < n; i++ {
			if canceled[i] && firedIdx[i] {
				t.Fatalf("trial %d: canceled event %d fired", trial, i)
			}
			if !canceled[i] && !firedIdx[i] {
				t.Fatalf("trial %d: live event %d never fired", trial, i)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine()
		rng := rand.New(rand.NewSource(7))
		var trace []time.Duration
		var rec func()
		rec = func() {
			trace = append(trace, e.Now())
			if len(trace) < 200 {
				e.After(time.Duration(rng.Intn(50)+1)*time.Millisecond, rec)
			}
		}
		e.Schedule(0, rec)
		e.Schedule(0, rec)
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
