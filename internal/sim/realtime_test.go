package sim

import (
	"testing"
	"time"
)

// TestRealTimeFreeRunDrains checks the free-run contract: each submission's
// downstream virtual work is fully drained before the next submission runs,
// with virtual time standing still between submissions.
func TestRealTimeFreeRunDrains(t *testing.T) {
	eng := NewEngine()
	rt := NewRealTime(eng, FreeRun)
	go rt.Serve()

	var afterFirst, afterSecond time.Duration
	if !rt.Do(func() {
		eng.Spawn("sleeper", func(p *Proc) { p.Sleep(5 * time.Second) })
	}) {
		t.Fatal("Do refused on open RealTime")
	}
	rt.Do(func() { afterFirst = eng.Now() })
	rt.Do(func() {
		eng.Spawn("sleeper2", func(p *Proc) { p.Sleep(2 * time.Second) })
	})
	rt.Do(func() { afterSecond = eng.Now() })
	rt.Close()

	if afterFirst != 5*time.Second {
		t.Fatalf("clock after first drain = %v, want 5s", afterFirst)
	}
	if afterSecond != 7*time.Second {
		t.Fatalf("clock after second drain = %v, want 7s", afterSecond)
	}
	if !eng.Drained() {
		t.Fatal("engine not drained after Close")
	}
}

// TestRealTimeFreeRunActorCompletion parks an actor continuation and checks
// its result is visible when Do returns — the shape a wire request takes.
func TestRealTimeFreeRunActorCompletion(t *testing.T) {
	eng := NewEngine()
	rt := NewRealTime(eng, FreeRun)
	go rt.Serve()
	defer rt.Close()

	res := make(chan time.Duration, 1)
	rt.Do(func() {
		var a Actor
		a.Bind(eng, "req")
		a.Go(func() {
			a.Sleep(300*time.Millisecond, func() {
				res <- eng.Now()
				a.Finish()
			})
		})
	})
	select {
	case at := <-res:
		if at != 300*time.Millisecond {
			t.Fatalf("completion at %v, want 300ms", at)
		}
	default:
		t.Fatal("free-run Do returned before the parked request completed")
	}
}

// TestRealTimePacedTracksWallClock checks paced mode advances virtual time
// with the wall clock and completes parked work without new submissions.
func TestRealTimePacedTracksWallClock(t *testing.T) {
	eng := NewEngine()
	rt := NewRealTime(eng, Paced)
	rt.SetTick(time.Millisecond)
	go rt.Serve()
	defer rt.Close()

	res := make(chan struct{})
	rt.Do(func() {
		eng.Spawn("sleeper", func(p *Proc) {
			p.Sleep(20 * time.Millisecond)
			close(res)
		})
	})
	select {
	case <-res:
	case <-time.After(5 * time.Second):
		t.Fatal("paced engine did not reach the 20ms virtual sleep in 5s of wall time")
	}
	var now time.Duration
	rt.Do(func() { now = eng.Now() })
	if now < 20*time.Millisecond {
		t.Fatalf("virtual clock = %v, want ≥ 20ms", now)
	}
}

// TestRealTimeCloseRejectsLateDo pins the close semantics.
func TestRealTimeCloseRejectsLateDo(t *testing.T) {
	eng := NewEngine()
	rt := NewRealTime(eng, FreeRun)
	go rt.Serve()
	rt.Close()
	rt.Close() // idempotent
	if rt.Do(func() {}) {
		t.Fatal("Do succeeded on closed RealTime")
	}
}

// TestRealTimeConcurrentDo hammers Do from many goroutines and checks every
// accepted submission ran exactly once on the serve goroutine.
func TestRealTimeConcurrentDo(t *testing.T) {
	eng := NewEngine()
	rt := NewRealTime(eng, FreeRun)
	go rt.Serve()

	const n = 64
	ran := make(chan int, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		go func() {
			rt.Do(func() {
				eng.Spawn("w", func(p *Proc) {
					p.Sleep(time.Millisecond)
					ran <- i
				})
			})
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	rt.Close()
	if len(ran) != n {
		t.Fatalf("%d of %d submissions completed", len(ran), n)
	}
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		v := <-ran
		if seen[v] {
			t.Fatalf("submission %d ran twice", v)
		}
		seen[v] = true
	}
}
