package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wokeAt []time.Duration
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		wokeAt = append(wokeAt, p.Now())
		p.Sleep(2 * time.Second)
		wokeAt = append(wokeAt, p.Now())
	})
	e.Run()
	if len(wokeAt) != 2 || wokeAt[0] != 3*time.Second || wokeAt[1] != 5*time.Second {
		t.Fatalf("wokeAt = %v, want [3s 5s]", wokeAt)
	}
	if !e.Drained() {
		t.Fatal("engine not drained after process finished")
	}
}

func TestProcInterleavesWithEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", func(p *Proc) {
		order = append(order, "p@0")
		p.Sleep(2 * time.Second)
		order = append(order, "p@2")
	})
	e.Schedule(time.Second, func() { order = append(order, "ev@1") })
	e.Run()
	want := []string{"p@0", "ev@1", "p@2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("spawn order not FIFO: %v", order)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started time.Duration = -1
	e.SpawnAt(4*time.Second, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 4*time.Second {
		t.Fatalf("started at %v, want 4s", started)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKillSleeping(t *testing.T) {
	e := NewEngine()
	reached := false
	victim := e.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	e.Schedule(time.Second, func() { victim.Kill() })
	e.Run()
	if reached {
		t.Fatal("killed process ran past its sleep")
	}
	if !victim.Finished() {
		t.Fatal("killed process not finished")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v; kill should not wait out the sleep", e.Now())
	}
	if !e.Drained() {
		t.Fatal("engine not drained after kill")
	}
}

func TestKillBeforeStart(t *testing.T) {
	e := NewEngine()
	ran := false
	p := e.SpawnAt(time.Minute, "unborn", func(p *Proc) { ran = true })
	e.Schedule(time.Second, func() { p.Kill() })
	e.Run()
	if ran {
		t.Fatal("killed-before-start process ran")
	}
	if !p.Finished() || !e.Drained() {
		t.Fatal("killed-before-start process did not finish cleanly")
	}
}

func TestKillFinishedNoop(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("quick", func(p *Proc) {})
	e.Schedule(time.Second, func() { p.Kill() })
	e.Run()
	if !p.Finished() {
		t.Fatal("process not finished")
	}
}

func TestSelfKill(t *testing.T) {
	e := NewEngine()
	after := false
	p := e.Spawn("suicidal", func(p *Proc) {
		p.Kill()
		after = true
	})
	e.Run()
	if after {
		t.Fatal("code after self-kill executed")
	}
	if !p.Finished() {
		t.Fatal("self-killed process not finished")
	}
}

func TestKillDeferredCleanupRuns(t *testing.T) {
	e := NewEngine()
	cleaned := false
	victim := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
	})
	e.Schedule(time.Second, func() { victim.Kill() })
	e.Run()
	if !cleaned {
		t.Fatal("defer in killed process did not run")
	}
}

func TestUserPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Error("user panic swallowed by kernel")
		}
	}()
	e.Run()
}

func TestSleepZeroRunsOthersFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "a")
	})
	e.Schedule(0, func() { order = append(order, "ev") })
	e.Run()
	// a spawns (seq 0) and immediately re-queues behind ev (seq 1).
	if len(order) != 2 || order[0] != "ev" || order[1] != "a" {
		t.Fatalf("order = %v, want [ev a]", order)
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			d := time.Duration((i*7)%13) * time.Millisecond
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d + time.Millisecond)
					trace = append(trace, p.Name())
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestLiveProcsAccounting(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Sleep(time.Second) })
	e.Spawn("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2", e.LiveProcs())
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after run, want 0", e.LiveProcs())
	}
}
