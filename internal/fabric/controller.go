package fabric

import (
	"errors"
	"fmt"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// Fabric controller errors.
var (
	// ErrQuotaExceeded is returned when a deployment would exceed the
	// account's core quota.
	ErrQuotaExceeded = errors.New("fabric: core quota exceeded")
	// ErrAddUnsupported is returned for the Add phase on extra-large
	// deployments (reported N/A in Table 1).
	ErrAddUnsupported = errors.New("fabric: add instances unsupported for this size")
	// ErrStartupFailed is the 2.6%-probability VM startup failure.
	ErrStartupFailed = errors.New("fabric: VM startup failed")
	// ErrBadState is returned when a phase is requested in the wrong
	// deployment state.
	ErrBadState = errors.New("fabric: deployment in wrong state for request")
)

// DeploymentState tracks the coarse deployment lifecycle.
type DeploymentState int

// DeploymentState values.
const (
	DeploymentCreated DeploymentState = iota
	DeploymentRunning
	DeploymentSuspended
	DeploymentDeleted
)

// DeploymentSpec describes a new cloud deployment.
type DeploymentSpec struct {
	Name      string
	Role      Role
	Size      Size
	Instances int
	// PackageMB is the application package size; the create phase scales
	// with it (Section 4.1 observation 5).
	PackageMB float64
}

// Deployment is a created application deployment and its role instances.
type Deployment struct {
	Spec  DeploymentSpec
	state DeploymentState
	vms   []*VM
}

// State returns the deployment state.
func (d *Deployment) State() DeploymentState { return d.state }

// VMs returns the deployment's instances (empty until the run phase).
func (d *Deployment) VMs() []*VM { return d.vms }

// ReadyTimes returns each instance's last ready transition, in instance
// order — the harness uses this for the first-vs-fourth instance lag stats.
func (d *Deployment) ReadyTimes() []time.Duration {
	out := make([]time.Duration, len(d.vms))
	for i, vm := range d.vms {
		out[i] = vm.readyAt
	}
	return out
}

// Controller is the fabric controller: the management-API backend that
// creates, starts, grows, suspends and deletes deployments.
type Controller struct {
	dc           *Datacenter
	rng          *simrand.RNG
	seq          int
	used         int // cores in use
	replacements int // crash-replacement VMs provisioned
	// Quota is the account core limit; the CTP default is CoreQuota (20).
	// The paper's storage experiments ran under a raised research quota.
	Quota int
}

// NewController creates a controller over the datacenter with the default
// 20-core account quota.
func NewController(dc *Datacenter) *Controller {
	return &Controller{dc: dc, rng: dc.rng.Fork("controller"), Quota: CoreQuota}
}

// CreateDeployment uploads and creates a deployment (the "create" phase),
// blocking the caller for the deployment time. Instances exist but are
// stopped afterwards.
func (c *Controller) CreateDeployment(p *sim.Proc, spec DeploymentSpec) (*Deployment, error) {
	if spec.Instances <= 0 {
		spec.Instances = spec.Size.DefaultInstances()
	}
	if spec.PackageMB <= 0 {
		spec.PackageMB = defaultPackageMB
	}
	cores := spec.Instances * spec.Size.Cores()
	if c.used+cores > c.Quota {
		return nil, fmt.Errorf("%w: need %d cores, %d in use, quota %d",
			ErrQuotaExceeded, cores, c.used, c.Quota)
	}
	c.used += cores
	stats := Params(spec.Role, spec.Size)
	dur := stats.Create.Dist().Sample(c.rng) + createSecPerMB*(spec.PackageMB-defaultPackageMB)
	if dur < 1 {
		dur = 1
	}
	p.Sleep(secs(dur))
	d := &Deployment{Spec: spec, state: DeploymentCreated}
	for i := 0; i < spec.Instances; i++ {
		d.vms = append(d.vms,
			c.dc.newVM(fmt.Sprintf("%s/%d", spec.Name, i), spec.Role, spec.Size, VMStopped))
	}
	c.seq++
	return d, nil
}

// RunDeployment starts all instances (the "run" phase) and blocks until the
// last becomes ready. The first instance readiness is sampled from the
// Table 1 run distribution; subsequent instances trail by the observed
// 60-100 s inter-instance lag (Section 4.1 observation 3: Azure does not
// serve a request for multiple VMs at the same time). With probability 2.6%
// the phase fails (Section 4.1: VM startup failure rate).
func (c *Controller) RunDeployment(p *sim.Proc, d *Deployment) error {
	if d.state != DeploymentCreated && d.state != DeploymentSuspended {
		return fmt.Errorf("%w: run in state %d", ErrBadState, d.state)
	}
	stats := Params(d.Spec.Role, d.Spec.Size)
	if c.rng.Hit(startupFailureRate) {
		// The failed startup burns a run-scale amount of wall clock before
		// the fabric reports it.
		p.Sleep(secs(simrand.Uniform{Lo: stats.Run.Avg, Hi: 3 * stats.Run.Avg}.Sample(c.rng)))
		return ErrStartupFailed
	}
	eng := p.Engine()
	for _, vm := range d.vms {
		vm.setState(eng, VMStarting)
	}
	at := stats.Run.Dist().Sample(c.rng) // first instance readiness
	var last time.Duration
	for i, vm := range d.vms {
		vm := vm
		if i > 0 {
			at += simrand.Uniform{Lo: instanceLagLoSec, Hi: instanceLagHiSec}.Sample(c.rng)
		}
		ready := p.Now() + secs(at)
		last = ready
		eng.Schedule(ready, func() {
			// A chaos host crash may have failed the instance mid-start; the
			// pending ready transition then dies with it.
			if vm.state != VMStarting {
				return
			}
			vm.setState(eng, VMReady)
			vm.readyAt = ready
		})
	}
	// Block until the last instance's ready transition has landed.
	p.SleepUntil(last)
	p.Yield()
	d.state = DeploymentRunning
	return nil
}

// AddInstances grows a running deployment by n instances (the "add" phase)
// and blocks until the new instances are ready. Table 1 reports this phase
// N/A for extra-large deployments.
func (c *Controller) AddInstances(p *sim.Proc, d *Deployment, n int) error {
	if d.state != DeploymentRunning {
		return fmt.Errorf("%w: add in state %d", ErrBadState, d.state)
	}
	stats := Params(d.Spec.Role, d.Spec.Size)
	if !stats.HasAdd() {
		return ErrAddUnsupported
	}
	cores := n * d.Spec.Size.Cores()
	if c.used+cores > c.Quota {
		return fmt.Errorf("%w: need %d more cores, %d in use, quota %d",
			ErrQuotaExceeded, cores, c.used, c.Quota)
	}
	c.used += cores
	if c.rng.Hit(startupFailureRate) {
		p.Sleep(secs(simrand.Uniform{Lo: stats.Add.Avg, Hi: 2 * stats.Add.Avg}.Sample(c.rng)))
		c.used -= cores
		return ErrStartupFailed
	}
	// The last new instance lands at the sampled phase duration; earlier
	// ones are lag-spaced before it.
	total := stats.Add.Dist().Sample(c.rng)
	if total < 1 {
		total = 1
	}
	offsets := make([]float64, n)
	at := total
	for i := n - 1; i >= 0; i-- {
		offsets[i] = at
		at -= simrand.Uniform{Lo: instanceLagLoSec, Hi: instanceLagHiSec}.Sample(c.rng)
		if at < 1 {
			at = 1
		}
	}
	base := p.Now()
	eng := p.Engine()
	for i := 0; i < n; i++ {
		vm := c.dc.newVM(fmt.Sprintf("%s/%d", d.Spec.Name, len(d.vms)),
			d.Spec.Role, d.Spec.Size, VMStopped)
		vm.setState(eng, VMStarting)
		d.vms = append(d.vms, vm)
		ready := base + secs(offsets[i])
		eng.Schedule(ready, func() {
			if vm.state != VMStarting {
				return
			}
			vm.setState(eng, VMReady)
			vm.readyAt = ready
		})
	}
	p.SleepUntil(base + secs(total))
	p.Yield()
	d.Spec.Instances += n // keep the quota release on delete consistent
	return nil
}

// SuspendDeployment stops all instances (the "suspend" phase).
func (c *Controller) SuspendDeployment(p *sim.Proc, d *Deployment) error {
	if d.state != DeploymentRunning {
		return fmt.Errorf("%w: suspend in state %d", ErrBadState, d.state)
	}
	stats := Params(d.Spec.Role, d.Spec.Size)
	p.Sleep(secs(stats.Suspend.Dist().Sample(c.rng)))
	for _, vm := range d.vms {
		// Crash-failed instances stay failed through suspend; everything
		// else stops.
		if vm.state != VMFailed {
			vm.setState(p.Engine(), VMStopped)
		}
	}
	d.state = DeploymentSuspended
	return nil
}

// DeleteDeployment removes the deployment (the "delete" phase) and releases
// its quota.
func (c *Controller) DeleteDeployment(p *sim.Proc, d *Deployment) error {
	if d.state != DeploymentSuspended && d.state != DeploymentCreated {
		return fmt.Errorf("%w: delete in state %d", ErrBadState, d.state)
	}
	stats := Params(d.Spec.Role, d.Spec.Size)
	p.Sleep(secs(stats.Delete.Dist().Sample(c.rng)))
	for _, vm := range d.vms {
		vm.setState(p.Engine(), VMDeleted)
		vm.Host.detach(vm)
	}
	d.state = DeploymentDeleted
	c.used -= d.Spec.Instances * d.Spec.Size.Cores()
	return nil
}

// CoresInUse returns the account's current core consumption.
func (c *Controller) CoresInUse() int { return c.used }

// ReadyFleet provisions n already-ready VMs outside any quota, bypassing the
// startup phases. The paper's storage experiments ran against long-lived
// worker fleets whose startup is not part of the measurement; this helper
// gives experiments that steady state directly.
func (c *Controller) ReadyFleet(n int, role Role, size Size) []*VM {
	vms := make([]*VM, n)
	for i := range vms {
		vms[i] = c.dc.newVM(fmt.Sprintf("fleet/%d", i), role, size, VMReady)
	}
	return vms
}

// ReplacementVM provisions one ready instance to replace a crash-failed
// fleet member (the fabric "re-acquiring" capacity after a node failure,
// Section 5). Replacement names carry their own counter so original fleet
// naming — and hence every chaos-free trace — is untouched.
func (c *Controller) ReplacementVM(role Role, size Size) *VM {
	vm := c.dc.newVM(fmt.Sprintf("fleet/r%d", c.replacements), role, size, VMReady)
	c.replacements++
	return vm
}

// secs converts float seconds to a duration.
func secs(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}
