package fabric

import "azureobs/internal/simrand"

// Role is the Azure VM role type: web roles sit behind the load balancer and
// run IIS; worker roles do not (Section 3 of the paper).
type Role int

// Role values.
const (
	Worker Role = iota
	Web
)

func (r Role) String() string {
	if r == Web {
		return "Web"
	}
	return "Worker"
}

// Size is the Azure VM size (Section 4.1: small, medium, large, extra large).
type Size int

// Size values.
const (
	Small Size = iota
	Medium
	Large
	ExtraLarge
)

func (s Size) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	default:
		return "ExtraLarge"
	}
}

// Cores returns the CPU cores for a size; Azure CTP charged quota in cores
// with a 20-core limit on normal accounts.
func (s Size) Cores() int {
	switch s {
	case Small:
		return 1
	case Medium:
		return 2
	case Large:
		return 4
	default:
		return 8
	}
}

// DefaultInstances returns the deployment size the paper used per VM size to
// stay below the 20-core account limit while allowing doubling: 4 small,
// 2 medium, 1 large, 1 extra large.
func (s Size) DefaultInstances() int {
	switch s {
	case Small:
		return 4
	case Medium:
		return 2
	default:
		return 1
	}
}

// Stat is an (average, standard deviation) pair in seconds, as published in
// Table 1.
type Stat struct {
	Avg, Std float64
}

// Dist returns a zero-truncated normal whose truncated mean matches the
// published average (important for cells like "delete: 6 ± 5 s", where
// naive truncation would inflate the mean by ~20%).
func (s Stat) Dist() simrand.Dist { return simrand.PosNormalMean(s.Avg, s.Std) }

// PhaseStats holds the five lifecycle phase statistics for one (role, size)
// combination.
type PhaseStats struct {
	Create  Stat
	Run     Stat
	Add     Stat // zero Stat means N/A (extra large cannot double)
	Suspend Stat
	Delete  Stat
}

// HasAdd reports whether the Add phase is supported (the paper reports N/A
// for extra-large deployments).
func (ps PhaseStats) HasAdd() bool { return ps.Add.Avg > 0 }

// phaseParams reproduces Table 1 of the paper verbatim: request times in
// seconds for worker-role and web-role VMs of each size.
var phaseParams = map[Role]map[Size]PhaseStats{
	Worker: {
		Small:      {Create: Stat{86, 27}, Run: Stat{533, 36}, Add: Stat{1026, 355}, Suspend: Stat{40, 30}, Delete: Stat{6, 5}},
		Medium:     {Create: Stat{61, 10}, Run: Stat{591, 42}, Add: Stat{740, 176}, Suspend: Stat{37, 12}, Delete: Stat{5, 3}},
		Large:      {Create: Stat{54, 11}, Run: Stat{660, 91}, Add: Stat{774, 137}, Suspend: Stat{35, 8}, Delete: Stat{6, 6}},
		ExtraLarge: {Create: Stat{51, 9}, Run: Stat{790, 30}, Suspend: Stat{42, 19}, Delete: Stat{6, 5}},
	},
	Web: {
		Small:      {Create: Stat{86, 17}, Run: Stat{594, 32}, Add: Stat{1132, 478}, Suspend: Stat{86, 14}, Delete: Stat{6, 2}},
		Medium:     {Create: Stat{61, 10}, Run: Stat{637, 77}, Add: Stat{789, 181}, Suspend: Stat{92, 17}, Delete: Stat{6, 6}},
		Large:      {Create: Stat{52, 9}, Run: Stat{679, 40}, Add: Stat{670, 155}, Suspend: Stat{94, 14}, Delete: Stat{5, 3}},
		ExtraLarge: {Create: Stat{55, 16}, Run: Stat{827, 40}, Suspend: Stat{96, 3}, Delete: Stat{6, 8}},
	},
}

// Params returns the published Table 1 statistics for a (role, size) pair.
func Params(r Role, s Size) PhaseStats { return phaseParams[r][s] }

// Calibration constants for the fabric controller, derived from the paper's
// Section 4.1 observations.
const (
	// startupFailureRate is the observed VM startup failure rate (2.6%).
	startupFailureRate = 0.026

	// createSecPerMB is the package-size sensitivity of the create phase:
	// "a 1.2 MB application starts 30 s faster than a 5 MB application"
	// → ~7.9 s/MB around the default package.
	createSecPerMB = 30.0 / 3.8

	// defaultPackageMB is the package size at which Table 1's create stats
	// were measured; create times shift by createSecPerMB around it.
	defaultPackageMB = 5.0

	// instanceLagLoSec/HiSec bound the readiness lag between consecutive
	// instances of one deployment: "a 4 min lag between the 1st instance
	// and the 4th instance" → ~80 s per gap.
	instanceLagLoSec = 60.0
	instanceLagHiSec = 100.0

	// CoreQuota is the Azure CTP per-account core limit.
	CoreQuota = 20
)
