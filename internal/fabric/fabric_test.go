package fabric

import (
	"errors"
	"math"
	"testing"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

func newDC(t *testing.T, degradation bool) (*sim.Engine, *Datacenter) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Degradation = degradation
	return eng, New(eng, simrand.New(1), cfg)
}

func TestSizeCores(t *testing.T) {
	cases := map[Size]int{Small: 1, Medium: 2, Large: 4, ExtraLarge: 8}
	for s, want := range cases {
		if s.Cores() != want {
			t.Fatalf("%v cores = %d, want %d", s, s.Cores(), want)
		}
	}
}

func TestDefaultInstancesUnderQuota(t *testing.T) {
	// The paper sizes deployments so doubling stays under 20 cores.
	for _, s := range []Size{Small, Medium, Large, ExtraLarge} {
		n := s.DefaultInstances()
		if 2*n*s.Cores() > CoreQuota {
			t.Fatalf("%v: doubling %d instances exceeds quota", s, n)
		}
	}
}

func TestParamsMatchTable1(t *testing.T) {
	// Spot-check Table 1 entries.
	ws := Params(Worker, Small)
	if ws.Create.Avg != 86 || ws.Run.Avg != 533 || ws.Add.Avg != 1026 || ws.Suspend.Avg != 40 || ws.Delete.Avg != 6 {
		t.Fatalf("worker small params wrong: %+v", ws)
	}
	wx := Params(Web, ExtraLarge)
	if wx.Run.Avg != 827 || wx.Suspend.Avg != 96 {
		t.Fatalf("web XL params wrong: %+v", wx)
	}
	if Params(Worker, ExtraLarge).HasAdd() {
		t.Fatal("worker XL should have no Add phase (Table 1 N/A)")
	}
	if !Params(Web, Large).HasAdd() {
		t.Fatal("web large should have an Add phase")
	}
}

func TestCreateRunLifecycle(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	var d *Deployment
	var createDur, runDur time.Duration
	eng.Spawn("test", func(p *sim.Proc) {
		t0 := p.Now()
		var err error
		d, err = ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: Small})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		createDur = p.Now() - t0
		if len(d.VMs()) != 4 {
			t.Errorf("instances = %d, want 4 (small default)", len(d.VMs()))
		}
		t1 := p.Now()
		if err := ctl.RunDeployment(p, d); err != nil {
			t.Errorf("run: %v", err)
			return
		}
		runDur = p.Now() - t1
		for _, vm := range d.VMs() {
			if vm.State() != VMReady {
				t.Errorf("vm %s state %v after run", vm.Name, vm.State())
			}
		}
		if err := ctl.SuspendDeployment(p, d); err != nil {
			t.Errorf("suspend: %v", err)
		}
		if err := ctl.DeleteDeployment(p, d); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	eng.Run()
	if d.State() != DeploymentDeleted {
		t.Fatalf("final state = %v", d.State())
	}
	// Create ~86s ± a few sigma; run ≥ first-instance time.
	if createDur < 20*time.Second || createDur > 300*time.Second {
		t.Fatalf("create duration %v implausible", createDur)
	}
	if runDur < 400*time.Second {
		t.Fatalf("run duration %v implausible for 4 staggered instances", runDur)
	}
	if ctl.CoresInUse() != 0 {
		t.Fatalf("cores in use after delete = %d", ctl.CoresInUse())
	}
}

func TestRunStatistics(t *testing.T) {
	// Over many runs, the sampled first-instance readiness must recover the
	// Table 1 worker-small mean (533 s) and the 1st→4th lag ~4 min.
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	ctl.Quota = 1 << 30
	var firstStat, lagStat metrics.Summary
	eng.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			d, err := ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: Small})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			start := p.Now()
			if err := ctl.RunDeployment(p, d); err != nil {
				if errors.Is(err, ErrStartupFailed) {
					_ = ctl.DeleteDeployment(p, d)
					continue
				}
				t.Errorf("run: %v", err)
				return
			}
			rt := d.ReadyTimes()
			firstStat.AddDuration(rt[0] - start)
			lagStat.AddDuration(rt[3] - rt[0])
			_ = ctl.SuspendDeployment(p, d)
			_ = ctl.DeleteDeployment(p, d)
		}
	})
	eng.Run()
	if math.Abs(firstStat.Mean()-533) > 15 {
		t.Fatalf("first-instance mean = %.1f s, want ~533", firstStat.Mean())
	}
	if lagStat.Mean() < 200 || lagStat.Mean() > 280 {
		t.Fatalf("1st→4th lag mean = %.1f s, want ~240", lagStat.Mean())
	}
}

func TestAddDoublesDeployment(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	eng.Spawn("test", func(p *sim.Proc) {
		d, _ := ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: Medium})
		if err := ctl.RunDeployment(p, d); err != nil {
			t.Errorf("run: %v", err)
			return
		}
		before := p.Now()
		if err := ctl.AddInstances(p, d, 2); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		if len(d.VMs()) != 4 {
			t.Errorf("instances after add = %d, want 4", len(d.VMs()))
		}
		for _, vm := range d.VMs() {
			if vm.State() != VMReady {
				t.Errorf("vm %s not ready after add", vm.Name)
			}
		}
		if p.Now()-before < 200*time.Second {
			t.Errorf("add took %v; Table 1 says ~740 s", p.Now()-before)
		}
	})
	eng.Run()
	if ctl.CoresInUse() != 8 {
		t.Fatalf("cores = %d, want 8", ctl.CoresInUse())
	}
}

func TestAddUnsupportedForXL(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	eng.Spawn("test", func(p *sim.Proc) {
		d, _ := ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: ExtraLarge})
		if err := ctl.RunDeployment(p, d); err != nil {
			return // startup failure: fine for this test
		}
		if err := ctl.AddInstances(p, d, 1); !errors.Is(err, ErrAddUnsupported) {
			t.Errorf("add on XL = %v, want ErrAddUnsupported", err)
		}
	})
	eng.Run()
}

func TestQuotaEnforced(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	eng.Spawn("test", func(p *sim.Proc) {
		// 21 small instances exceed the 20-core quota.
		_, err := ctl.CreateDeployment(p, DeploymentSpec{Name: "big", Role: Worker, Size: Small, Instances: 21})
		if !errors.Is(err, ErrQuotaExceeded) {
			t.Errorf("create 21 small = %v, want ErrQuotaExceeded", err)
		}
		// 2 XL (16 cores) fits; a third does not.
		d, err := ctl.CreateDeployment(p, DeploymentSpec{Name: "xl", Role: Worker, Size: ExtraLarge, Instances: 2})
		if err != nil {
			t.Errorf("create 2 XL: %v", err)
			return
		}
		_, err = ctl.CreateDeployment(p, DeploymentSpec{Name: "xl2", Role: Worker, Size: ExtraLarge, Instances: 1})
		if !errors.Is(err, ErrQuotaExceeded) {
			t.Errorf("create beyond quota = %v, want ErrQuotaExceeded", err)
		}
		_ = d
	})
	eng.Run()
}

func TestPhaseStateMachine(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	eng.Spawn("test", func(p *sim.Proc) {
		d, _ := ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: Large})
		if err := ctl.SuspendDeployment(p, d); !errors.Is(err, ErrBadState) {
			t.Errorf("suspend before run = %v, want ErrBadState", err)
		}
		if err := ctl.AddInstances(p, d, 1); !errors.Is(err, ErrBadState) {
			t.Errorf("add before run = %v, want ErrBadState", err)
		}
		// Delete directly from created state is allowed (cleanup path).
		if err := ctl.DeleteDeployment(p, d); err != nil {
			t.Errorf("delete from created: %v", err)
		}
		if err := ctl.DeleteDeployment(p, d); !errors.Is(err, ErrBadState) {
			t.Errorf("double delete = %v, want ErrBadState", err)
		}
	})
	eng.Run()
}

func TestCreateScalesWithPackageSize(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	ctl.Quota = 1 << 30
	var small, big metrics.Summary
	eng.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			t0 := p.Now()
			d, _ := ctl.CreateDeployment(p, DeploymentSpec{Name: "s", Role: Worker, Size: Small, PackageMB: 1.2})
			small.AddDuration(p.Now() - t0)
			_ = ctl.DeleteDeployment(p, d)
			t0 = p.Now()
			d, _ = ctl.CreateDeployment(p, DeploymentSpec{Name: "b", Role: Worker, Size: Small, PackageMB: 5})
			big.AddDuration(p.Now() - t0)
			_ = ctl.DeleteDeployment(p, d)
		}
	})
	eng.Run()
	diff := big.Mean() - small.Mean()
	if diff < 20 || diff > 40 {
		t.Fatalf("5MB - 1.2MB create diff = %.1f s, want ~30", diff)
	}
}

func TestStartupFailureRate(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	ctl.Quota = 1 << 30
	failures, runs := 0, 500
	eng.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < runs; i++ {
			d, _ := ctl.CreateDeployment(p, DeploymentSpec{Name: "app", Role: Worker, Size: Small})
			if err := ctl.RunDeployment(p, d); errors.Is(err, ErrStartupFailed) {
				failures++
				_ = ctl.DeleteDeployment(p, d)
				continue
			}
			_ = ctl.SuspendDeployment(p, d)
			_ = ctl.DeleteDeployment(p, d)
		}
	})
	eng.Run()
	rate := float64(failures) / float64(runs)
	if rate < 0.005 || rate > 0.06 {
		t.Fatalf("startup failure rate = %.3f, want ~0.026", rate)
	}
}

func TestReadyFleet(t *testing.T) {
	_, dc := newDC(t, false)
	ctl := NewController(dc)
	vms := ctl.ReadyFleet(192, Worker, Small)
	if len(vms) != 192 {
		t.Fatalf("fleet size = %d", len(vms))
	}
	hosts := map[int]bool{}
	for _, vm := range vms {
		if vm.State() != VMReady {
			t.Fatal("fleet VM not ready")
		}
		hosts[vm.Host.ID] = true
	}
	if len(hosts) < 100 {
		t.Fatalf("fleet spread over %d hosts; placement too concentrated", len(hosts))
	}
}

func TestDeploymentSpansFaultDomains(t *testing.T) {
	// Azure spreads a deployment's instances across fault domains; the
	// round-robin placement must put a multi-instance deployment on
	// distinct hosts in more than one rack.
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	eng.Spawn("test", func(p *sim.Proc) {
		d, err := ctl.CreateDeployment(p, DeploymentSpec{Name: "ha", Role: Worker, Size: Small, Instances: 8})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		hosts := map[int]bool{}
		racks := map[int]bool{}
		for _, vm := range d.VMs() {
			hosts[vm.Host.ID] = true
			racks[vm.Host.Rack] = true
		}
		if len(hosts) != 8 {
			t.Errorf("instances share hosts: %d distinct", len(hosts))
		}
		if len(racks) < 2 {
			t.Errorf("deployment confined to %d rack(s)", len(racks))
		}
	})
	eng.Run()
}

func TestExecuteDilation(t *testing.T) {
	eng, dc := newDC(t, false)
	ctl := NewController(dc)
	vm := ctl.ReadyFleet(1, Worker, Small)[0]
	eng.Spawn("task", func(p *sim.Proc) {
		if d := vm.Execute(p, 10*time.Minute); d != 10*time.Minute {
			t.Errorf("healthy execute = %v, want 10m", d)
		}
		vm.Host.slowdown = 5
		if d := vm.Execute(p, 10*time.Minute); d != 50*time.Minute {
			t.Errorf("degraded execute = %v, want 50m", d)
		}
	})
	eng.Run()
}

func TestDegradationEpisodes(t *testing.T) {
	eng, dc := newDC(t, true)
	sawDegraded, sawHealed := false, false
	eng.Spawn("probe", func(p *sim.Proc) {
		for {
			p.Sleep(time.Hour)
			if dc.DegradedHosts() > 0 {
				sawDegraded = true
			} else if sawDegraded {
				sawHealed = true
			}
		}
	})
	eng.RunUntil(30 * 24 * time.Hour)
	if dc.Episodes() == 0 {
		t.Fatal("no degradation episodes in 30 days")
	}
	if !sawDegraded {
		t.Fatal("no degraded hosts ever observed")
	}
	if !sawHealed {
		t.Fatal("degradation episodes never healed")
	}
}

func TestTCPLatencyDistribution(t *testing.T) {
	_, dc := newDC(t, false)
	rng := simrand.New(9)
	s := metrics.NewSample(10000)
	for i := 0; i < 10000; i++ {
		s.AddDuration(dc.TCPLatency(rng))
	}
	// Fig. 4: ~50% ≤ 1 ms, ~75% ≤ 2 ms.
	if p := s.FracLE(0.001); math.Abs(p-0.50) > 0.03 {
		t.Fatalf("P(≤1ms) = %.3f, want ~0.50", p)
	}
	if p := s.FracLE(0.002); math.Abs(p-0.75) > 0.03 {
		t.Fatalf("P(≤2ms) = %.3f, want ~0.75", p)
	}
}

func TestPairBandwidthDistribution(t *testing.T) {
	_, dc := newDC(t, false)
	ctl := NewController(dc)
	vms := ctl.ReadyFleet(200, Worker, Small)
	rng := simrand.New(11)
	s := metrics.NewSample(1000)
	for i := 0; i+1 < len(vms); i += 2 {
		for rep := 0; rep < 10; rep++ {
			l := dc.PairBandwidthLink(vms[i], vms[i+1], rng)
			s.Add(float64(l.Capacity()) / 1e6)
		}
	}
	// Fig. 5: ~50% ≥ 90 MB/s, ~15% ≤ 30 MB/s, hard cap 125 MB/s.
	if p := 1 - s.FracLE(90); p < 0.36 || p > 0.64 {
		t.Fatalf("P(≥90MB/s) = %.3f, want ~0.50 (100-pair sample)", p)
	}
	if p := s.FracLE(30); p < 0.08 || p > 0.22 {
		t.Fatalf("P(≤30MB/s) = %.3f, want ~0.15", p)
	}
	if s.Quantile(1) > 125.0001 {
		t.Fatalf("max pair bandwidth %.1f exceeds GigE", s.Quantile(1))
	}
}
