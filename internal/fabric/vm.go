package fabric

import (
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// VMState is the externally visible instance status, matching the status
// transitions the paper's test program polls ("stopped" → "ready"), plus the
// failed state a host crash forces (Section 5: node failures kill resident
// instances until the fabric re-acquires capacity).
type VMState int

// VMState values.
const (
	VMStopped VMState = iota
	VMStarting
	VMReady
	VMSuspending
	VMDeleted
	VMFailed
)

func (s VMState) String() string {
	switch s {
	case VMStopped:
		return "stopped"
	case VMStarting:
		return "starting"
	case VMReady:
		return "ready"
	case VMSuspending:
		return "suspending"
	case VMFailed:
		return "failed"
	default:
		return "deleted"
	}
}

// legalVMNext is the instance lifecycle state machine. Every state write goes
// through VM.setState, which checks the edge against this table when the
// engine's invariant harness is on — the chaos engine's crash/reboot paths
// are validated against exactly the same machine as the fabric controller's
// phase transitions.
var legalVMNext = map[VMState][]VMState{
	VMStopped:    {VMStarting, VMDeleted},
	VMStarting:   {VMReady, VMStopped, VMFailed}, // stopped: suspend races an in-flight start
	VMReady:      {VMStopped, VMSuspending, VMFailed},
	VMSuspending: {VMStopped},
	VMFailed:     {VMDeleted},
	VMDeleted:    {},
}

func legalVMTransition(from, to VMState) bool {
	for _, s := range legalVMNext[from] {
		if s == to {
			return true
		}
	}
	return false
}

// VM is one role instance.
type VM struct {
	Name string
	Role Role
	Size Size
	Host *Host

	state   VMState
	readyAt time.Duration // virtual time the instance last became ready
}

// State returns the instance status.
func (vm *VM) State() VMState { return vm.state }

// setState moves the instance through its lifecycle, checking the transition
// against legalVMNext when invariants are enabled.
func (vm *VM) setState(eng *sim.Engine, s VMState) {
	eng.Invariants().Checkf(legalVMTransition(vm.state, s),
		"fabric: illegal VM transition %v -> %v (%s)", vm.state, s, vm.Name)
	vm.state = s
}

// ReadyAt returns when the instance last transitioned to ready.
func (vm *VM) ReadyAt() time.Duration { return vm.readyAt }

// NIC returns the network link the VM sends and receives through (the host
// GigE adapter, shared with co-located VMs).
func (vm *VM) NIC() *netsim.Link { return vm.Host.NIC }

// Execute runs CPU-bound work of nominal duration d on the VM, dilated by
// the host's compute slowdown as sampled at start. It returns the actual
// elapsed time. This dilation is what turns degradation episodes into the
// paper's "VM task execution timeouts": a 4-6x slowdown stretches a 10-min
// task past the 4x-mean kill threshold.
func (vm *VM) Execute(p *sim.Proc, d time.Duration) time.Duration {
	dilated := time.Duration(float64(d) * vm.Host.slowdown)
	p.Sleep(dilated)
	return dilated
}
