// Package fabric models the physical datacenter (hosts, racks, network
// placement quality, degradation episodes) and the Windows Azure fabric
// controller: deployments, role instances, and the five lifecycle phases the
// paper measures in Table 1 (create, run, add, suspend, delete).
package fabric

import (
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// netQualityClass is the placement quality of a host's network path to the
// rest of the datacenter. The three-class mixture reproduces the Fig. 5
// distribution of pair bandwidth: ~50% of pairs ≥90 MB/s (both endpoints
// well placed), ~15% ≤30 MB/s (at least one endpoint congested).
type netQualityClass int

const (
	netGood netQualityClass = iota
	netFair
	netBad
)

// Host is one physical machine. VMs placed on a degraded host run slower by
// the current slowdown factor — the mechanism behind the paper's "VM task
// execution timeout" observations (Section 5.2).
type Host struct {
	ID   int
	Rack int

	// NIC is the host's GigE adapter (shared by its VMs).
	NIC *netsim.Link

	// netQuality scales the bandwidth this host can sustain to a remote
	// peer, in (0, 1]; sampled from the placement mixture at boot.
	netQuality float64

	// slowdown is the current compute dilation factor; 1 when healthy.
	slowdown float64

	// down marks a crashed host: its VMs have failed and the placement
	// cursor skips it until RebootHost.
	down bool

	// residents are the VMs currently placed on this host; a crash fails
	// every starting/ready one of them.
	residents []*VM
}

// Slowdown returns the host's current compute dilation factor (≥ 1).
func (h *Host) Slowdown() float64 { return h.slowdown }

// Degraded reports whether the host is currently in a degradation episode.
func (h *Host) Degraded() bool { return h.slowdown > 1 }

// Down reports whether the host is crashed and awaiting repair.
func (h *Host) Down() bool { return h.down }

// Residents returns the number of VMs currently placed on the host.
func (h *Host) Residents() int { return len(h.residents) }

// detach removes a VM from the host's resident list (it failed or was
// deleted).
func (h *Host) detach(vm *VM) {
	for i, r := range h.residents {
		if r == vm {
			h.residents = append(h.residents[:i], h.residents[i+1:]...)
			return
		}
	}
}

// NetQuality returns the host's placement-quality multiplier in (0, 1].
func (h *Host) NetQuality() float64 { return h.netQuality }

// sampleNetQuality draws a host's placement quality from the calibrated
// three-class mixture.
func sampleNetQuality(rng *simrand.RNG) float64 {
	u := rng.Float64()
	switch {
	case u < 0.715: // good: pair of goods lands in 90-117 MB/s
		return simrand.Uniform{Lo: 0.72, Hi: 0.94}.Sample(rng)
	case u < 0.92: // fair: 30-90 MB/s
		return simrand.Uniform{Lo: 0.24, Hi: 0.72}.Sample(rng)
	default: // bad: ≤30 MB/s tail (congested/oversubscribed placement)
		return simrand.Uniform{Lo: 0.04, Hi: 0.24}.Sample(rng)
	}
}

// DegradationConfig parameterises the host-degradation process: episodes
// arrive as a Poisson process; each strikes a random fraction of hosts with
// a 4-6x slowdown for a bounded duration. The defaults are calibrated so
// that, with the ModisAzure 4x-mean task timeout policy, the daily timeout
// share spans 0-16% of executions as in Fig. 7.
type DegradationConfig struct {
	// MeanInterarrival is the mean time between episode onsets.
	MeanInterarrival time.Duration
	// FracLo/FracHi bound the fraction of hosts affected per episode.
	FracLo, FracHi float64
	// SlowLo/SlowHi bound the compute dilation during an episode.
	SlowLo, SlowHi float64
	// DurLo/DurHi bound the episode duration.
	DurLo, DurHi time.Duration
}

// DefaultDegradation returns the calibrated episode process.
func DefaultDegradation() DegradationConfig {
	return DegradationConfig{
		MeanInterarrival: 60 * time.Hour,
		FracLo:           0.02,
		FracHi:           0.35,
		SlowLo:           4.0,
		SlowHi:           6.5,
		DurLo:            2 * time.Hour,
		DurHi:            18 * time.Hour,
	}
}

// startDegradation runs the episode process forever on the engine.
func (dc *Datacenter) startDegradation(cfg DegradationConfig) {
	rng := dc.rng.Fork("degradation")
	dc.eng.SpawnDaemon("degradation", func(p *sim.Proc) {
		for {
			gap := simrand.Duration(simrand.Exponential{Rate: 1 / cfg.MeanInterarrival.Seconds()}, rng)
			p.Sleep(gap)
			frac := simrand.Uniform{Lo: cfg.FracLo, Hi: cfg.FracHi}.Sample(rng)
			slow := simrand.Uniform{Lo: cfg.SlowLo, Hi: cfg.SlowHi}.Sample(rng)
			dur := simrand.Duration(simrand.Uniform{
				Lo: cfg.DurLo.Seconds(), Hi: cfg.DurHi.Seconds()}, rng)
			victims := dc.pickHosts(rng, frac)
			for _, h := range victims {
				h.slowdown = slow
			}
			dc.episodes++
			p.Engine().AfterDaemon(dur, func() {
				for _, h := range victims {
					if h.slowdown == slow {
						h.slowdown = 1
					}
				}
			})
		}
	})
}

// pickHosts samples ⌈frac×N⌉ distinct hosts.
func (dc *Datacenter) pickHosts(rng *simrand.RNG, frac float64) []*Host {
	n := int(frac*float64(len(dc.hosts)) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(dc.hosts) {
		n = len(dc.hosts)
	}
	perm := rng.Perm(len(dc.hosts))
	out := make([]*Host, n)
	for i := 0; i < n; i++ {
		out[i] = dc.hosts[perm[i]]
	}
	return out
}
