package fabric

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/simrand"
)

func TestRoleAndSizeStrings(t *testing.T) {
	if Worker.String() != "Worker" || Web.String() != "Web" {
		t.Fatal("role strings wrong")
	}
	wants := map[Size]string{Small: "Small", Medium: "Medium", Large: "Large", ExtraLarge: "ExtraLarge"}
	for s, w := range wants {
		if s.String() != w {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestVMStateStrings(t *testing.T) {
	wants := map[VMState]string{
		VMStopped: "stopped", VMStarting: "starting", VMReady: "ready",
		VMSuspending: "suspending", VMDeleted: "deleted",
	}
	for s, w := range wants {
		if s.String() != w {
			t.Fatalf("state %d = %q, want %q", s, s.String(), w)
		}
	}
}

// TestStatDistRecoversPublishedMoments samples every Table 1 cell's
// distribution and checks the truncated mean lands on the published AVG —
// including the high-variance cells (delete 6±5) where naive truncation
// would bias upward.
func TestStatDistRecoversPublishedMoments(t *testing.T) {
	rng := simrand.New(5)
	for _, role := range []Role{Worker, Web} {
		for _, size := range []Size{Small, Medium, Large, ExtraLarge} {
			ps := Params(role, size)
			cells := map[string]Stat{
				"create": ps.Create, "run": ps.Run,
				"suspend": ps.Suspend, "delete": ps.Delete,
			}
			if ps.HasAdd() {
				cells["add"] = ps.Add
			}
			for name, stat := range cells {
				var s metrics.Summary
				d := stat.Dist()
				for i := 0; i < 20000; i++ {
					s.Add(d.Sample(rng))
				}
				if math.Abs(s.Mean()-stat.Avg)/stat.Avg > 0.05 {
					t.Fatalf("%v/%v/%s: sampled mean %.2f vs published %.2f",
						role, size, name, s.Mean(), stat.Avg)
				}
				if s.Min() < 0 {
					t.Fatalf("%v/%v/%s produced negative duration", role, size, name)
				}
			}
		}
	}
}

func TestDegradationConfigOverride(t *testing.T) {
	eng, _ := newDC(t, false)
	cfg := DefaultConfig()
	cfg.Degradation = true
	custom := DefaultDegradation()
	custom.FracLo, custom.FracHi = 0.99, 1.0 // everything degrades
	custom.MeanInterarrival = time.Minute    // almost immediately
	custom.DurLo, custom.DurHi = time.Hour, 2*time.Hour
	cfg.DegradationConfig = &custom
	dc := New(eng, simrand.New(3), cfg)
	eng.RunUntil(30 * time.Minute)
	if dc.DegradedHosts() < len(dc.Hosts())*9/10 {
		t.Fatalf("override ignored: %d/%d degraded", dc.DegradedHosts(), len(dc.Hosts()))
	}
}

func TestPairBandwidthNeverExceedsGigE(t *testing.T) {
	_, dc := newDC(t, false)
	ctl := NewController(dc)
	vms := ctl.ReadyFleet(20, Worker, Small)
	rng := simrand.New(77)
	for i := 0; i < 500; i++ {
		l := dc.PairBandwidthLink(vms[i%20], vms[(i+1)%20], rng)
		if float64(l.Capacity()) > 125e6+1 {
			t.Fatalf("pair capacity %v exceeds GigE", l.Capacity())
		}
		if l.Capacity() <= 0 {
			t.Fatal("non-positive pair capacity")
		}
	}
}

func TestBadDatacenterConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	New(nil, simrand.New(1), Config{Hosts: 0, HostsPerRack: 8})
}
