package fabric

import (
	"fmt"
	"time"

	"azureobs/internal/netsim"
)

// LongHaul is one datacenter's wide-area side: a capacity-shared trunk link
// toward each peer region plus a fixed one-way propagation delay per pair.
// Trunks live on the owning datacenter's netsim fabric, so cross-region
// transfers contend with that region's own egress traffic while the
// union-find components keep each region's intra-DC reallocation
// incremental — a remote region's churn never touches this fabric at all.
// Propagation is not modeled inside netsim (links share capacity, not
// delay); the geo transport layers the one-way delay on top when it
// schedules the far-end delivery.
type LongHaul struct {
	self   int
	trunks []*netsim.Link
	oneWay []time.Duration
}

// NewLongHaul attaches region self's wide-area trunks to its datacenter.
// oneWay[j] is the propagation delay toward region j (oneWay[self] is the
// in-region loopback delay, used by local health probes); every pair gets a
// dedicated trunk of capacity trunkBW on dc's fabric.
func NewLongHaul(dc *Datacenter, self int, oneWay []time.Duration, trunkBW netsim.Bandwidth) *LongHaul {
	lh := &LongHaul{
		self:   self,
		trunks: make([]*netsim.Link, len(oneWay)),
		oneWay: append([]time.Duration(nil), oneWay...),
	}
	for p := range oneWay {
		if p == self {
			continue
		}
		lh.trunks[p] = dc.Net().NewLink(fmt.Sprintf("longhaul%d-%d", self, p), trunkBW)
	}
	return lh
}

// Trunk returns the capacity-shared link carrying traffic toward region dst.
func (lh *LongHaul) Trunk(dst int) *netsim.Link {
	if lh.trunks[dst] == nil {
		panic(fmt.Sprintf("fabric: region %d has no long-haul trunk to itself", dst))
	}
	return lh.trunks[dst]
}

// OneWay returns the propagation delay toward region dst.
func (lh *LongHaul) OneWay(dst int) time.Duration { return lh.oneWay[dst] }

// Peers returns the number of regions this long-haul side knows about
// (including self).
func (lh *LongHaul) Peers() int { return len(lh.oneWay) }
