package fabric

import (
	"fmt"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// gigE is the host NIC line rate: 1 Gbit/s ≙ 125 MB/s (the cap visible in
// the paper's Fig. 5).
const gigE = 125 * netsim.MBps

// Config sizes a simulated datacenter.
type Config struct {
	Hosts        int  // physical machines
	HostsPerRack int  // rack width
	Degradation  bool // run the host-degradation episode process
	// DegradationConfig overrides DefaultDegradation when Degradation is on.
	DegradationConfig *DegradationConfig
}

// DefaultConfig returns a datacenter big enough for the paper's 192-instance
// experiments plus the ~200-instance ModisAzure deployment.
func DefaultConfig() Config {
	return Config{Hosts: 256, HostsPerRack: 32, Degradation: true}
}

// Datacenter assembles the physical plant: hosts, network fabric and the
// degradation process. It also provides the inter-VM TCP latency and
// bandwidth models behind Figs. 4 and 5.
type Datacenter struct {
	eng *sim.Engine
	net *netsim.Fabric
	rng *simrand.RNG

	hosts        []*Host
	hostsPerRack int
	nextHost     int // placement cursor (rack-striding)

	episodes uint64 // degradation episodes started
	crashes  uint64 // host crashes injected

	// hostDown subscribers run (in kernel context) whenever CrashHost takes
	// a host down; the chaos-aware campaign uses this to kill and later
	// re-acquire the workers that lived there.
	hostDown []func(*Host, []*VM)

	latencyDist simrand.Dist
}

// New builds a datacenter on the engine, seeding all of its stochastic
// components from rng.
func New(eng *sim.Engine, rng *simrand.RNG, cfg Config) *Datacenter {
	if cfg.Hosts <= 0 || cfg.HostsPerRack <= 0 {
		panic(fmt.Sprintf("fabric: bad config %+v", cfg))
	}
	dc := &Datacenter{
		eng:          eng,
		net:          netsim.NewFabric(eng),
		rng:          rng.Fork("fabric"),
		hostsPerRack: cfg.HostsPerRack,
	}
	qrng := dc.rng.Fork("net-quality")
	for i := 0; i < cfg.Hosts; i++ {
		h := &Host{
			ID:         i,
			Rack:       i / cfg.HostsPerRack,
			NIC:        dc.net.NewLink(fmt.Sprintf("host%d-nic", i), gigE),
			netQuality: sampleNetQuality(qrng),
			slowdown:   1,
		}
		dc.hosts = append(dc.hosts, h)
	}
	// Fig. 4: cumulative TCP latency between two small VMs. Knots express
	// the published cumulative histogram: ~50% at 1 ms, 75% by 2 ms,
	// a LAN-like mode, and a thin tail to tens of ms.
	dc.latencyDist = simrand.NewEmpirical(
		simrand.CDFPoint{Value: 0.0005, P: 0.02},
		simrand.CDFPoint{Value: 0.001, P: 0.50},
		simrand.CDFPoint{Value: 0.002, P: 0.75},
		simrand.CDFPoint{Value: 0.004, P: 0.87},
		simrand.CDFPoint{Value: 0.010, P: 0.96},
		simrand.CDFPoint{Value: 0.040, P: 1.00},
	)
	if cfg.Degradation {
		dcfg := DefaultDegradation()
		if cfg.DegradationConfig != nil {
			dcfg = *cfg.DegradationConfig
		}
		dc.startDegradation(dcfg)
	}
	return dc
}

// Engine returns the simulation engine.
func (dc *Datacenter) Engine() *sim.Engine { return dc.eng }

// Net returns the network fabric.
func (dc *Datacenter) Net() *netsim.Fabric { return dc.net }

// Hosts returns the physical hosts.
func (dc *Datacenter) Hosts() []*Host { return dc.hosts }

// Episodes returns the number of degradation episodes started so far.
func (dc *Datacenter) Episodes() uint64 { return dc.episodes }

// DegradedHosts returns how many hosts are currently degraded.
func (dc *Datacenter) DegradedHosts() int {
	n := 0
	for _, h := range dc.hosts {
		if h.Degraded() {
			n++
		}
	}
	return n
}

// placeVM picks a host with a rack-striding cursor: successive placements
// land in different racks, approximating Azure's fault-domain spreading
// (consecutive instances of a deployment must not share a failure unit).
// Crashed hosts are skipped; with no crashes the cursor walk is unchanged.
func (dc *Datacenter) placeVM() *Host {
	n := len(dc.hosts)
	stride := dc.hostsPerRack + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	for tries := 0; tries < n; tries++ {
		h := dc.hosts[(dc.nextHost*stride)%n]
		dc.nextHost++
		if !h.down {
			return h
		}
	}
	panic("fabric: no host up for placement")
}

// newVM places a fresh instance on a host and registers it as a resident.
func (dc *Datacenter) newVM(name string, role Role, size Size, state VMState) *VM {
	h := dc.placeVM()
	vm := &VM{Name: name, Role: role, Size: size, Host: h, state: state}
	h.residents = append(h.residents, vm)
	return vm
}

// Racks returns the number of racks in the datacenter.
func (dc *Datacenter) Racks() int {
	return (len(dc.hosts) + dc.hostsPerRack - 1) / dc.hostsPerRack
}

// RackHosts returns the hosts in one rack.
func (dc *Datacenter) RackHosts(rack int) []*Host {
	lo := rack * dc.hostsPerRack
	hi := lo + dc.hostsPerRack
	if lo >= len(dc.hosts) {
		return nil
	}
	if hi > len(dc.hosts) {
		hi = len(dc.hosts)
	}
	return dc.hosts[lo:hi]
}

// Crashes returns the number of host crashes injected so far.
func (dc *Datacenter) Crashes() uint64 { return dc.crashes }

// OnHostDown registers fn to run (in kernel context, synchronously inside
// CrashHost) whenever a host crashes. fn receives the host and the VMs that
// failed with it.
func (dc *Datacenter) OnHostDown(fn func(*Host, []*VM)) {
	dc.hostDown = append(dc.hostDown, fn)
}

// CrashHost takes a host down, failing every starting/ready resident VM, and
// returns the failed instances. Crashing an already-down host is a no-op.
// The host stays out of placement until RebootHost.
func (dc *Datacenter) CrashHost(h *Host) []*VM {
	if h.down {
		return nil
	}
	h.down = true
	h.slowdown = 1 // whatever episode was running dies with the host
	var failed []*VM
	for _, vm := range append([]*VM(nil), h.residents...) {
		if vm.state == VMStarting || vm.state == VMReady {
			vm.setState(dc.eng, VMFailed)
			h.detach(vm)
			failed = append(failed, vm)
		}
	}
	dc.crashes++
	for _, fn := range dc.hostDown {
		fn(h, failed)
	}
	return failed
}

// RebootHost brings a crashed host back into service, healthy and empty of
// the VMs that failed with it. Rebooting an up host is a no-op.
func (dc *Datacenter) RebootHost(h *Host) {
	if !h.down {
		return
	}
	h.down = false
	h.slowdown = 1
}

// DegradeHost applies a compute dilation factor to one host (a chaos
// degradation window, as opposed to the autonomous episode process).
func (dc *Datacenter) DegradeHost(h *Host, factor float64) {
	if factor < 1 {
		factor = 1
	}
	h.slowdown = factor
}

// RestoreHost ends a degradation window, but only if the host still carries
// the factor this window applied — a crash/reboot or a later episode in
// between takes precedence.
func (dc *Datacenter) RestoreHost(h *Host, factor float64) {
	if h.slowdown == factor {
		h.slowdown = 1
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TCPLatency samples one inter-VM TCP roundtrip time (1-byte payload, Fig. 4
// protocol).
func (dc *Datacenter) TCPLatency(rng *simrand.RNG) time.Duration {
	return time.Duration(dc.latencyDist.Sample(rng) * float64(time.Second))
}

// PairBandwidthLink returns a private link whose capacity models the network
// path between two VMs: the GigE line rate scaled by the worse endpoint's
// placement quality, with a small per-measurement jitter. Transfers between
// the pair should traverse [a.NIC, link, b.NIC].
func (dc *Datacenter) PairBandwidthLink(a, b *VM, rng *simrand.RNG) *netsim.Link {
	q := a.Host.netQuality
	if b.Host.netQuality < q {
		q = b.Host.netQuality
	}
	jitter := simrand.Uniform{Lo: 0.97, Hi: 1.03}.Sample(rng)
	capacity := netsim.Bandwidth(float64(gigE) * q * jitter)
	if capacity > gigE {
		capacity = gigE
	}
	return dc.net.NewLink("pair", capacity)
}
