package azure

import (
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

// RetryPolicy governs how transient storage errors are retried — the "robust
// retry mechanisms" the paper's Section 5.2 found indispensable at scale.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (≥ 1).
	MaxAttempts int
	// Backoff is the wait before the second attempt.
	Backoff time.Duration
	// Multiplier grows the backoff each further attempt (≥ 1).
	Multiplier float64
	// MaxBackoff caps the grown backoff (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter spreads each wait uniformly over [(1-Jitter)·backoff, backoff].
	// Without it, a closed-loop client pool that hits ServerBusy at the same
	// instant retries in lockstep and re-collides on every attempt. Must be
	// in [0, 1]; 0 (the zero value) disables jitter.
	Jitter float64
	// Rand supplies the jitter draws. Required when Jitter > 0: it must be a
	// per-client stream (simrand.RNG.Fork) so runs stay reproducible and
	// adding a client never perturbs another client's schedule.
	Rand *simrand.RNG
}

// WithJitter returns a copy of the policy that jitters each backoff by up to
// the given fraction, drawing from rng.
func (rp RetryPolicy) WithJitter(fraction float64, rng *simrand.RNG) RetryPolicy {
	if fraction < 0 || fraction > 1 {
		panic("azure: retry jitter fraction must be in [0, 1]")
	}
	if fraction > 0 && rng == nil {
		panic("azure: retry jitter requires a simrand stream")
	}
	rp.Jitter = fraction
	rp.Rand = rng
	return rp
}

// DefaultRetryPolicy mirrors the storage client library's classic
// exponential policy: 4 attempts, 3 s initial backoff, doubling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 3 * time.Second, Multiplier: 2}
}

// NoRetry performs exactly one attempt.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// Do runs op, retrying retryable storage errors per the policy. It returns
// nil on eventual success, the last error otherwise. Non-retryable errors
// (conflicts, not-found) return immediately.
func (rp RetryPolicy) Do(p *sim.Proc, op func() error) error {
	attempts := rp.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := rp.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			wait := backoff
			if rp.Jitter > 0 {
				if rp.Rand == nil {
					panic("azure: RetryPolicy.Jitter set without a Rand stream")
				}
				wait = time.Duration(float64(wait) * (1 - rp.Jitter*rp.Rand.Float64()))
			}
			p.Sleep(wait)
			backoff = time.Duration(float64(backoff) * rp.Multiplier)
			if rp.MaxBackoff > 0 && backoff > rp.MaxBackoff {
				backoff = rp.MaxBackoff
			}
		}
		err = op()
		if err == nil {
			return nil
		}
		if !storerr.IsRetryable(err) {
			return err
		}
	}
	return err
}
