package azure

import (
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

// RetryPolicy governs how transient storage errors are retried — the "robust
// retry mechanisms" the paper's Section 5.2 found indispensable at scale.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (≥ 1).
	MaxAttempts int
	// Backoff is the wait before the second attempt.
	Backoff time.Duration
	// Multiplier grows the backoff each further attempt (≥ 1).
	Multiplier float64
	// MaxBackoff caps the grown backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy mirrors the storage client library's classic
// exponential policy: 4 attempts, 3 s initial backoff, doubling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 3 * time.Second, Multiplier: 2}
}

// NoRetry performs exactly one attempt.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// Do runs op, retrying retryable storage errors per the policy. It returns
// nil on eventual success, the last error otherwise. Non-retryable errors
// (conflicts, not-found) return immediately.
func (rp RetryPolicy) Do(p *sim.Proc, op func() error) error {
	attempts := rp.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := rp.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			p.Sleep(backoff)
			backoff = time.Duration(float64(backoff) * rp.Multiplier)
			if rp.MaxBackoff > 0 && backoff > rp.MaxBackoff {
				backoff = rp.MaxBackoff
			}
		}
		err = op()
		if err == nil {
			return nil
		}
		if !storerr.IsRetryable(err) {
			return err
		}
	}
	return err
}
