package azure

import (
	"errors"
	"testing"
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

func newCloud() *Cloud {
	cfg := Config{Seed: 1}
	cfg.Fabric = fabric.DefaultConfig()
	cfg.Fabric.Degradation = false
	return NewCloud(cfg)
}

func TestEndToEndStorageFlow(t *testing.T) {
	c := newCloud()
	vms := c.Controller.ReadyFleet(2, fabric.Worker, fabric.Small)
	cl := c.NewClient(vms[0], 0)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		cl.CreateContainer("data")
		if err := cl.PutBlob(p, "data", "input", 50_000_000, false); err != nil {
			t.Errorf("put: %v", err)
		}
		cl.CreateTable("requests")
		e := tablesvc.PaddedEntity("req", "001", 1024)
		if err := cl.InsertEntity(p, "requests", e); err != nil {
			t.Errorf("insert: %v", err)
		}
		q := cl.CreateQueue("tasks")
		if _, err := cl.AddMessage(p, q, "job-1", 512); err != nil {
			t.Errorf("add msg: %v", err)
		}
		rcv, err := cl.Receive(p, q, time.Minute)
		if err != nil || rcv.Msg.Body != "job-1" {
			t.Errorf("receive: %v", err)
			return
		}
		if _, err := cl.GetBlob(p, "data", "input"); err != nil {
			t.Errorf("get blob: %v", err)
		}
		got, err := cl.GetEntity(p, "requests", "req", "001")
		if err != nil || got.Size() != 1024 {
			t.Errorf("get entity: %v", err)
		}
		if err := cl.DeleteMessage(p, q, rcv.Receipt); err != nil {
			t.Errorf("delete msg: %v", err)
		}
	})
	c.Engine.Run()
}

func TestManagementLifecycleTiming(t *testing.T) {
	c := newCloud()
	m := c.Management()
	c.Engine.Spawn("mgmt", func(p *sim.Proc) {
		d, createDur, err := m.Deploy(p, fabric.DeploymentSpec{Name: "app", Role: fabric.Worker, Size: fabric.Small})
		if err != nil {
			t.Errorf("deploy: %v", err)
			return
		}
		if createDur <= 0 {
			t.Error("create duration not measured")
		}
		runDur, first, last, err := m.Run(p, d)
		if err != nil {
			return // startup failure possible
		}
		if first <= 0 || last < first || runDur < last {
			t.Errorf("run timings inconsistent: run=%v first=%v last=%v", runDur, first, last)
		}
		// Small deployments have 4 instances: 1st→4th lag should be minutes.
		if lag := last - first; lag < 2*time.Minute || lag > 7*time.Minute {
			t.Errorf("1st→last lag = %v, want ~4min", lag)
		}
		if addDur, err := m.Add(p, d, 4); err != nil {
			t.Errorf("add: %v", err)
		} else if addDur < 5*time.Minute {
			t.Errorf("add duration = %v, Table 1 says ~17min ± 6", addDur)
		}
		if susDur, err := m.Suspend(p, d); err != nil || susDur <= 0 {
			t.Errorf("suspend: %v %v", susDur, err)
		}
		if delDur, err := m.Delete(p, d); err != nil || delDur <= 0 {
			t.Errorf("delete: %v %v", delDur, err)
		}
	})
	c.Engine.Run()
}

func TestRetryPolicyRecovers(t *testing.T) {
	c := newCloud()
	c.Engine.Spawn("op", func(p *sim.Proc) {
		calls := 0
		start := p.Now()
		err := DefaultRetryPolicy().Do(p, func() error {
			calls++
			if calls < 3 {
				return storerr.New(storerr.CodeServerBusy, "test", "")
			}
			return nil
		})
		if err != nil {
			t.Errorf("retry did not recover: %v", err)
		}
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		// Backoffs: 3s + 6s = 9s.
		if got := p.Now() - start; got != 9*time.Second {
			t.Errorf("backoff time = %v, want 9s", got)
		}
	})
	c.Engine.Run()
}

func TestRetryPolicyStopsOnTerminal(t *testing.T) {
	c := newCloud()
	c.Engine.Spawn("op", func(p *sim.Proc) {
		calls := 0
		err := DefaultRetryPolicy().Do(p, func() error {
			calls++
			return storerr.New(storerr.CodeBlobExists, "blob.Put", "")
		})
		if !storerr.IsCode(err, storerr.CodeBlobExists) {
			t.Errorf("err = %v", err)
		}
		if calls != 1 {
			t.Errorf("terminal error retried %d times", calls)
		}
	})
	c.Engine.Run()
}

func TestRetryPolicyExhausts(t *testing.T) {
	c := newCloud()
	c.Engine.Spawn("op", func(p *sim.Proc) {
		calls := 0
		boom := storerr.New(storerr.CodeTimeout, "op", "")
		err := RetryPolicy{MaxAttempts: 3, Backoff: time.Second, Multiplier: 1}.Do(p, func() error {
			calls++
			return boom
		})
		if !errors.Is(err, boom) || calls != 3 {
			t.Errorf("err=%v calls=%d", err, calls)
		}
	})
	c.Engine.Run()
}

func TestRetryMaxBackoffCap(t *testing.T) {
	c := newCloud()
	c.Engine.Spawn("op", func(p *sim.Proc) {
		start := p.Now()
		_ = RetryPolicy{MaxAttempts: 4, Backoff: 4 * time.Second, Multiplier: 10, MaxBackoff: 5 * time.Second}.Do(p, func() error {
			return storerr.New(storerr.CodeTimeout, "op", "")
		})
		// Backoffs: 4s, then capped 5s, 5s → 14s.
		if got := p.Now() - start; got != 14*time.Second {
			t.Errorf("total backoff = %v, want 14s", got)
		}
	})
	c.Engine.Run()
}

// TestRetryRecoversInjectedFaults drives the full stack: a blob service
// with 30% transient fault injection, accessed through the default retry
// policy, must deliver far more reliably than bare calls — the Section 5.2
// "robust retry mechanisms" requirement, end to end.
func TestRetryRecoversInjectedFaults(t *testing.T) {
	cfg := Config{Seed: 8}
	cfg.Fabric = fabric.DefaultConfig()
	cfg.Fabric.Degradation = false
	cfg.Blob.ServerBusyProb = 0.2
	cfg.Blob.ConnFailProb = 0.1
	c := NewCloud(cfg)
	c.Blob.Seed("d", "b", 1_000_000)
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	const attempts = 200
	bareOK, retryOK := 0, 0
	c.Engine.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < attempts; i++ {
			if _, err := cl.GetBlob(p, "d", "b"); err == nil {
				bareOK++
			}
			err := DefaultRetryPolicy().Do(p, func() error {
				_, err := cl.GetBlob(p, "d", "b")
				return err
			})
			if err == nil {
				retryOK++
			}
		}
	})
	c.Engine.Run()
	if bareOK > attempts*8/10 {
		t.Fatalf("bare success %d/%d; fault injection ineffective", bareOK, attempts)
	}
	if retryOK < attempts*97/100 {
		t.Fatalf("retried success %d/%d; policy not recovering", retryOK, attempts)
	}
}

func TestTCPRoundtripAndSend(t *testing.T) {
	c := newCloud()
	vms := c.Controller.ReadyFleet(2, fabric.Worker, fabric.Small)
	cl := c.NewClient(vms[0], 0)
	c.Engine.Spawn("net", func(p *sim.Proc) {
		rtt := cl.TCPRoundtrip(p, vms[1])
		if rtt <= 0 || rtt > 50*time.Millisecond {
			t.Errorf("rtt = %v", rtt)
		}
		elapsed := cl.TCPSend(p, vms[1], 2_000_000_000)
		rate := 2000.0 / elapsed.Seconds() // MB/s
		if rate < 4 || rate > 125.1 {
			t.Errorf("pair bandwidth = %.1f MB/s, outside Fig. 5 range", rate)
		}
	})
	c.Engine.Run()
}

func TestClientRecorder(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.Seed("d", "b", 13_000_000)
	type rec struct {
		op  string
		d   time.Duration
		err error
	}
	var recs []rec
	cl.SetRecorder(func(op string, d time.Duration, err error) {
		recs = append(recs, rec{op, d, err})
	})
	c.Engine.Spawn("app", func(p *sim.Proc) {
		if _, err := cl.GetBlob(p, "d", "b"); err != nil {
			t.Error(err)
		}
		cl.CreateTable("t")
		if err := cl.InsertEntity(p, "t", tablesvc.PaddedEntity("p", "r", 512)); err != nil {
			t.Error(err)
		}
		if _, err := cl.GetBlob(p, "d", "missing"); err == nil {
			t.Error("expected not-found")
		}
	})
	c.Engine.Run()
	if len(recs) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(recs))
	}
	if recs[0].op != "blob.Get" || recs[0].d < 900*time.Millisecond {
		t.Fatalf("blob.Get record = %+v (13 MB at 13 MB/s ≈ 1 s)", recs[0])
	}
	if recs[1].op != "table.Insert" || recs[1].err != nil {
		t.Fatalf("table.Insert record = %+v", recs[1])
	}
	if recs[2].err == nil {
		t.Fatal("failed op recorded without error")
	}
	cl.SetRecorder(nil) // removable
	c.Engine.Spawn("app2", func(p *sim.Proc) { _, _ = cl.GetBlob(p, "d", "b") })
	c.Engine.Run()
	if len(recs) != 3 {
		t.Fatal("recorder fired after removal")
	}
}

func TestClientsAreIndependent(t *testing.T) {
	// Two clients on the same cloud must have distinct sessions (bandwidth
	// caps are per client).
	c := newCloud()
	vms := c.Controller.ReadyFleet(2, fabric.Worker, fabric.Small)
	c.Blob.CreateContainer("d")
	cl1 := c.NewClient(vms[0], 1)
	cl2 := c.NewClient(vms[1], 2)
	var t1, t2 time.Duration
	c.Engine.Spawn("a", func(p *sim.Proc) {
		_ = cl1.PutBlob(p, "d", "x1", 65_000_000, false)
		t1 = p.Now()
	})
	c.Engine.Spawn("b", func(p *sim.Proc) {
		_ = cl2.PutBlob(p, "d", "x2", 65_000_000, false)
		t2 = p.Now()
	})
	c.Engine.Run()
	// Two 6.5 MB/s-capped uploads of 65 MB ≈ 10 s each, concurrently —
	// if they shared one session link it would be ~20 s.
	if t1 > 13*time.Second || t2 > 13*time.Second {
		t.Fatalf("uploads serialized: %v %v", t1, t2)
	}
}

// TestQueueClientAPIEmptyIsNotFound pins the redesigned queue client
// surface: Peek/Receive report an empty queue as CodeNotFound on the single
// storerr axis, while the deprecated ok-channel methods keep their original
// shape for calibrated callers.
func TestQueueClientAPIEmptyIsNotFound(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		q := cl.CreateQueue("empty")
		if _, err := cl.Peek(p, q); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("Peek on empty = %v, want NotFound", err)
		}
		if _, err := cl.Receive(p, q, time.Minute); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("Receive on empty = %v, want NotFound", err)
		}
		if _, ok, err := cl.PeekMessage(p, q); ok || err != nil {
			t.Errorf("PeekMessage on empty = ok=%v err=%v, want ok=false err=nil", ok, err)
		}
		if _, err := cl.AddMessage(p, q, "m", 64); err != nil {
			t.Fatalf("add: %v", err)
		}
		m, err := cl.Peek(p, q)
		if err != nil || m.Body != "m" {
			t.Errorf("Peek = %v, %v", m, err)
		}
		rcv, err := cl.Receive(p, q, time.Minute)
		if err != nil || rcv.Msg.Body != "m" {
			t.Errorf("Receive = %v, %v", rcv, err)
		}
		if err := cl.DeleteMessage(p, q, rcv.Receipt); err != nil {
			t.Errorf("delete by received receipt: %v", err)
		}
	})
	c.Engine.Run()
}
