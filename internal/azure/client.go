package azure

import (
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/blobsvc"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// Client is a per-VM storage client. All operations block the calling
// process for the simulated service latency and return typed storage errors
// (package storerr) on failure.
type Client struct {
	cloud *Cloud
	vm    *fabric.VM
	id    int
	blob  *blobsvc.Session // lazily opened by blobSession

	rng *simrand.RNG

	// stats tallies every operation issued through this client — the
	// client-side error accounting the ModisAzure logs were built from.
	stats *metrics.OpStats

	// onOp, when set, observes every completed storage operation — the
	// client-side instrumentation hook applications use to build the
	// Section 6.3 monitoring infrastructure.
	onOp func(op string, d time.Duration, err error)

	// flat holds the client's flat-mode plumbing (cached completion
	// wrappers), created on first flat call.
	flat *clientFlat
}

// blobSession opens the client's blob session on first use.
func (cl *Client) blobSession() *blobsvc.Session {
	if cl.blob == nil {
		cl.blob = cl.cloud.Blob.NewSession(cl.id)
	}
	return cl.blob
}

// SetRecorder installs an observer called after every storage operation
// with its name, simulated latency and outcome. Pass nil to remove it.
func (cl *Client) SetRecorder(fn func(op string, d time.Duration, err error)) { cl.onOp = fn }

// Ops returns the client's per-operation latency/error tallies.
func (cl *Client) Ops() *metrics.OpStats { return cl.stats }

// observe wraps an operation with latency and error accounting. Every
// client API method goes through it, so the tallies cover the full surface.
func observe[T any](cl *Client, p *sim.Proc, op string, fn func() (T, error)) (T, error) {
	start := p.Now()
	v, err := fn()
	d := p.Now() - start
	cl.stats.Record(op, d, string(storerr.CodeOf(err)))
	if cl.onOp != nil {
		cl.onOp(op, d, err)
	}
	return v, err
}

// VM returns the instance the client runs on.
func (cl *Client) VM() *fabric.VM { return cl.vm }

// Cloud returns the client's cloud.
func (cl *Client) Cloud() *Cloud { return cl.cloud }

// --- Blob API ---

// CreateContainer creates a blob container if it does not exist.
func (cl *Client) CreateContainer(name string) { cl.cloud.Blob.CreateContainer(name) }

// GetBlob downloads a blob in full and returns its size.
func (cl *Client) GetBlob(p *sim.Proc, container, name string) (int64, error) {
	return observe(cl, p, "blob.Get", func() (int64, error) {
		return cl.blobSession().Get(p, container, name)
	})
}

// PutBlob uploads a blob. With overwrite false an existing name fails with
// CodeBlobExists.
func (cl *Client) PutBlob(p *sim.Proc, container, name string, size int64, overwrite bool) error {
	_, err := observe(cl, p, "blob.Put", func() (struct{}, error) {
		return struct{}{}, cl.blobSession().Put(p, container, name, size, overwrite)
	})
	return err
}

// BlobExists checks existence.
func (cl *Client) BlobExists(p *sim.Proc, container, name string) (bool, error) {
	return observe(cl, p, "blob.Exists", func() (bool, error) {
		return cl.blobSession().Exists(p, container, name)
	})
}

// DeleteBlob removes a blob.
func (cl *Client) DeleteBlob(p *sim.Proc, container, name string) error {
	_, err := observe(cl, p, "blob.Delete", func() (struct{}, error) {
		return struct{}{}, cl.blobSession().Delete(p, container, name)
	})
	return err
}

// --- Table API ---

// CreateTable creates a table if it does not exist.
func (cl *Client) CreateTable(name string) { cl.cloud.Table.CreateTable(name) }

// InsertEntity inserts a new entity.
func (cl *Client) InsertEntity(p *sim.Proc, table string, e *tablesvc.Entity) error {
	_, err := observe(cl, p, "table.Insert", func() (struct{}, error) {
		return struct{}{}, cl.cloud.Table.Insert(p, table, e)
	})
	return err
}

// GetEntity queries one entity by partition and row key (the indexed path).
func (cl *Client) GetEntity(p *sim.Proc, table, pk, rk string) (*tablesvc.Entity, error) {
	return observe(cl, p, "table.Query", func() (*tablesvc.Entity, error) {
		return cl.cloud.Table.Get(p, table, pk, rk)
	})
}

// UpdateEntity replaces an entity unconditionally.
func (cl *Client) UpdateEntity(p *sim.Proc, table string, e *tablesvc.Entity) error {
	_, err := observe(cl, p, "table.Update", func() (struct{}, error) {
		return struct{}{}, cl.cloud.Table.Update(p, table, e)
	})
	return err
}

// DeleteEntity removes an entity.
func (cl *Client) DeleteEntity(p *sim.Proc, table, pk, rk string) error {
	_, err := observe(cl, p, "table.Delete", func() (struct{}, error) {
		return struct{}{}, cl.cloud.Table.Delete(p, table, pk, rk)
	})
	return err
}

// QueryEntities scans a partition with a property filter (the non-indexed
// path the paper warns about).
func (cl *Client) QueryEntities(p *sim.Proc, table, pk string, pred func(*tablesvc.Entity) bool) ([]*tablesvc.Entity, error) {
	return observe(cl, p, "table.QueryFilter", func() ([]*tablesvc.Entity, error) {
		return cl.cloud.Table.QueryFilter(p, table, pk, pred)
	})
}

// --- Queue API ---

// CreateQueue creates (or fetches) a queue.
func (cl *Client) CreateQueue(name string) *queuesvc.Queue {
	return cl.cloud.Queue.CreateQueue(name)
}

// AddMessage enqueues a message body padded to size bytes.
func (cl *Client) AddMessage(p *sim.Proc, q *queuesvc.Queue, body string, size int) (uint64, error) {
	return observe(cl, p, "queue.Add", func() (uint64, error) {
		return cl.cloud.Queue.Add(p, q, body, size)
	})
}

// Peek returns the first visible message without state change. An empty
// queue is CodeNotFound — the same axis every other miss on the client API
// reports — so callers branch with storerr.IsCode instead of a second
// boolean channel.
func (cl *Client) Peek(p *sim.Proc, q *queuesvc.Queue) (*queuesvc.Message, error) {
	return observe(cl, p, "queue.Peek", func() (*queuesvc.Message, error) {
		m, ok, err := cl.cloud.Queue.Peek(p, q)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, storerr.New(storerr.CodeNotFound, "queue.Peek", "no visible messages")
		}
		return m, nil
	})
}

// Receive pops the first visible message, hiding it for the visibility
// window (zero means the service default), and returns it paired with the
// pop receipt that authorises its deletion. An empty queue is CodeNotFound,
// as Peek.
func (cl *Client) Receive(p *sim.Proc, q *queuesvc.Queue, visibility time.Duration) (*queuesvc.Received, error) {
	return observe(cl, p, "queue.Receive", func() (*queuesvc.Received, error) {
		m, rcpt, ok, err := cl.cloud.Queue.Receive(p, q, visibility)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, storerr.New(storerr.CodeNotFound, "queue.Receive", "no visible messages")
		}
		return &queuesvc.Received{Msg: m, Receipt: rcpt}, nil
	})
}

// PeekMessage returns the first visible message without state change, with
// an empty queue reported as ok=false rather than an error.
//
// Deprecated: use Peek, which folds the empty-queue case into the client's
// single storerr error axis (CodeNotFound). PeekMessage remains for callers
// calibrated against its ok-channel accounting (an empty peek records a
// success in Ops).
func (cl *Client) PeekMessage(p *sim.Proc, q *queuesvc.Queue) (*queuesvc.Message, bool, error) {
	type peek struct {
		m  *queuesvc.Message
		ok bool
	}
	v, err := observe(cl, p, "queue.Peek", func() (peek, error) {
		m, ok, err := cl.cloud.Queue.Peek(p, q)
		return peek{m, ok}, err
	})
	return v.m, v.ok, err
}

// ReceiveMessage pops the first visible message, hiding it for the
// visibility window.
//
// Deprecated: use Receive, which returns a *queuesvc.Received and reports
// an empty queue as CodeNotFound instead of a separate ok channel.
func (cl *Client) ReceiveMessage(p *sim.Proc, q *queuesvc.Queue, visibility time.Duration) (*queuesvc.Message, queuesvc.Receipt, bool, error) {
	type recv struct {
		m    *queuesvc.Message
		rcpt queuesvc.Receipt
		ok   bool
	}
	v, err := observe(cl, p, "queue.Receive", func() (recv, error) {
		m, rcpt, ok, err := cl.cloud.Queue.Receive(p, q, visibility)
		return recv{m, rcpt, ok}, err
	})
	return v.m, v.rcpt, v.ok, err
}

// DeleteMessage removes a received message by receipt.
func (cl *Client) DeleteMessage(p *sim.Proc, q *queuesvc.Queue, r queuesvc.Receipt) error {
	_, err := observe(cl, p, "queue.Delete", func() (struct{}, error) {
		return struct{}{}, cl.cloud.Queue.Delete(p, q, r)
	})
	return err
}

// --- Inter-VM TCP (internal endpoints, Section 4.2) ---

// TCPRoundtrip measures one 1-byte roundtrip to a peer VM over an internal
// TCP endpoint.
func (cl *Client) TCPRoundtrip(p *sim.Proc, peer *fabric.VM) time.Duration {
	d := cl.cloud.DC.TCPLatency(cl.rng)
	p.Sleep(d)
	return d
}

// TCPSend streams size bytes to a peer VM over an internal endpoint and
// returns the elapsed time. The achievable rate depends on both endpoints'
// placement quality (Fig. 5).
func (cl *Client) TCPSend(p *sim.Proc, peer *fabric.VM, size int64) time.Duration {
	link := cl.cloud.DC.PairBandwidthLink(cl.vm, peer, cl.rng)
	return cl.cloud.DC.Net().Transfer(p, size, cl.vm.NIC(), link, peer.NIC())
}
