package azure

import (
	"fmt"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

// FuzzRetryClassify asserts the retry classification is total: for an error
// carrying ANY code string — the taxonomy constants, the empty string, or
// arbitrary garbage — Retryable neither panics nor wavers, wrapping preserves
// the classification, and RetryPolicy.Do makes exactly 1 attempt on
// non-retryable errors and exactly MaxAttempts on persistently failing
// retryable ones. Nothing in between, nothing unbounded.
func FuzzRetryClassify(f *testing.F) {
	for _, c := range []string{
		string(storerr.CodeTimeout), string(storerr.CodeServerBusy),
		string(storerr.CodeBlobExists), string(storerr.CodeNotFound),
		string(storerr.CodeConflict), string(storerr.CodeCorruptRead),
		string(storerr.CodeConnection), string(storerr.CodeInternal),
		"", "TotallyMadeUpCode", "server busy\x00\xff",
	} {
		f.Add(c, "blob.Get")
	}
	f.Fuzz(func(t *testing.T, code, op string) {
		err := storerr.New(storerr.Code(code), op, "fuzzed")
		retryable := err.Retryable()
		if storerr.IsRetryable(err) != retryable {
			t.Fatalf("IsRetryable disagrees with Error.Retryable for code %q", code)
		}
		wrapped := fmt.Errorf("outer: %w", err)
		if storerr.CodeOf(wrapped) != storerr.Code(code) {
			t.Fatalf("CodeOf lost the code %q through wrapping", code)
		}
		if storerr.IsRetryable(wrapped) != retryable {
			t.Fatalf("wrapping changed retryability for code %q", code)
		}

		policy := RetryPolicy{MaxAttempts: 3, Backoff: time.Second, Multiplier: 2}
		attempts := 0
		eng := sim.NewEngine()
		eng.Spawn("op", func(p *sim.Proc) {
			got := policy.Do(p, func() error {
				attempts++
				return err
			})
			if storerr.CodeOf(got) != storerr.Code(code) {
				t.Errorf("Do returned %v, want code %q", got, code)
			}
		})
		eng.Run()
		want := 1
		if retryable {
			want = policy.MaxAttempts
		}
		if attempts != want {
			t.Fatalf("code %q (retryable=%v): %d attempts, want %d", code, retryable, attempts, want)
		}
	})
}
