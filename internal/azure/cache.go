package azure

import (
	"container/list"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
)

// localDiskBW approximates the local instance storage read rate of a small
// 2010 instance: cache hits are read from non-durable local disk, as
// ModisAzure did for already-downloaded source files.
const localDiskBW = 50 * netsim.MBps

// BlobCache is the client-side caching layer the paper's Section 6.1
// recommends: "using some extra data caching mechanisms on the client-side
// to expand the per-client bandwidth limit". It caches whole blobs on the
// VM's local storage with LRU eviction; hits cost a local disk read instead
// of a 13 MB/s service download.
type BlobCache struct {
	client   *Client
	capacity int64
	used     int64

	lru     *list.List // *cacheEntry, front = most recent
	entries map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	size int64
}

// NewBlobCache wraps the client with a local cache of the given byte
// capacity.
func (cl *Client) NewBlobCache(capacity int64) *BlobCache {
	if capacity <= 0 {
		panic("azure: non-positive cache capacity")
	}
	return &BlobCache{
		client:   cl,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Hits returns the number of cache hits so far.
func (c *BlobCache) Hits() uint64 { return c.hits }

// Misses returns the number of cache misses so far.
func (c *BlobCache) Misses() uint64 { return c.misses }

// Used returns the cached bytes.
func (c *BlobCache) Used() int64 { return c.used }

// Get returns the blob size, reading from local storage on a hit and from
// the blob service (then caching) on a miss.
func (c *BlobCache) Get(p *sim.Proc, container, name string) (size int64, hit bool, err error) {
	key := container + "/" + name
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		p.Sleep(time.Duration(float64(e.size) / float64(localDiskBW) * float64(time.Second)))
		return e.size, true, nil
	}
	c.misses++
	size, err = c.client.GetBlob(p, container, name)
	if err != nil {
		return 0, false, err
	}
	c.insert(key, size)
	return size, false, nil
}

// Invalidate drops a cached blob (e.g. after overwriting it).
func (c *BlobCache) Invalidate(container, name string) {
	key := container + "/" + name
	if el, ok := c.entries[key]; ok {
		c.used -= el.Value.(*cacheEntry).size
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

func (c *BlobCache) insert(key string, size int64) {
	if size > c.capacity {
		return // too big to cache
	}
	for c.used+size > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.used -= ev.size
		c.lru.Remove(back)
		delete(c.entries, ev.key)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, size: size})
	c.used += size
}

// ParallelGet downloads a blob over conns parallel range requests, each on
// its own connection — the client-side parallelism that sidesteps the
// per-connection service cap (each connection is limited to ~13 MB/s; k of
// them approach k x 13 until the per-blob ceiling binds). It returns the
// blob size.
func (cl *Client) ParallelGet(p *sim.Proc, container, name string, conns int) (int64, error) {
	if conns <= 1 {
		return cl.GetBlob(p, container, name)
	}
	b, ok := cl.cloud.Blob.Lookup(container, name)
	if !ok {
		// Surface the not-found through the normal timed path.
		return cl.GetBlob(p, container, name)
	}
	chunk := (b.Size + int64(conns) - 1) / int64(conns)
	var wg sim.WaitGroup
	var firstErr error
	for i := 0; i < conns; i++ {
		off := int64(i) * chunk
		length := chunk
		if off+length > b.Size {
			length = b.Size - off
		}
		sess := cl.cloud.Blob.NewSession(int(off) + conns) // distinct connection
		wg.Go(p.Engine(), "rangeget", func(q *sim.Proc) {
			if length > 0 {
				if _, err := sess.GetRange(q, container, name, off, length); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return 0, firstErr
	}
	return b.Size, nil
}
