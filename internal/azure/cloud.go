// Package azure is the client-facing SDK of the simulated Windows Azure
// platform: it assembles a whole cloud (compute fabric + the three storage
// services on a shared network) and exposes per-VM clients mirroring the
// 2009-era Azure Storage and Service Management APIs, including the error
// taxonomy and retry policies real applications needed.
//
// Everything runs inside a deterministic discrete-event simulation: a Cloud
// is bound to a sim.Engine, and all operations take the calling sim.Proc.
package azure

import (
	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/blobsvc"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/tablesvc"
)

// Config assembles a cloud. Zero-valued fields take defaults.
type Config struct {
	Seed   uint64
	Fabric fabric.Config
	Blob   blobsvc.Config
	Table  tablesvc.Config
	Queue  queuesvc.Config
	SQL    sqlsvc.Config
}

// Cloud is one simulated Windows Azure region: compute fabric plus storage
// account endpoints.
type Cloud struct {
	Engine     *sim.Engine
	DC         *fabric.Datacenter
	Controller *fabric.Controller
	Blob       *blobsvc.Service
	Table      *tablesvc.Service
	Queue      *queuesvc.Service
	SQL        *sqlsvc.Service

	rng *simrand.RNG
}

// NewCloud builds a cloud on a fresh engine.
func NewCloud(cfg Config) *Cloud {
	eng := sim.NewEngine()
	return NewCloudOn(eng, cfg)
}

// NewCloudOn builds a cloud on an existing engine.
func NewCloudOn(eng *sim.Engine, cfg Config) *Cloud {
	if cfg.Fabric.Hosts == 0 {
		cfg.Fabric = fabric.DefaultConfig()
	}
	rng := simrand.New(cfg.Seed)
	dc := fabric.New(eng, rng, cfg.Fabric)
	c := &Cloud{
		Engine:     eng,
		DC:         dc,
		Controller: fabric.NewController(dc),
		Blob:       blobsvc.New(eng, dc.Net(), rng, cfg.Blob),
		Table:      tablesvc.New(eng, rng, cfg.Table),
		Queue:      queuesvc.New(eng, rng, cfg.Queue),
		SQL:        sqlsvc.New(eng, rng, cfg.SQL),
		rng:        rng.Fork("cloud"),
	}
	return c
}

// NewClient opens a storage client bound to a VM. Each concurrent client
// must have its own Client: per-connection bandwidth caps and random streams
// are per-client state.
func (c *Cloud) NewClient(vm *fabric.VM, id int) *Client {
	return &Client{
		cloud: c,
		vm:    vm,
		blob:  c.Blob.NewSession(id),
		rng:   c.rng.ForkN("client", id),
	}
}

// Management returns a management-API client for deployment lifecycle
// operations.
func (c *Cloud) Management() *Management {
	return &Management{cloud: c}
}
