// Package azure is the client-facing SDK of the simulated Windows Azure
// platform: it assembles a whole cloud (compute fabric + the three storage
// services on a shared network) and exposes per-VM clients mirroring the
// 2009-era Azure Storage and Service Management APIs, including the error
// taxonomy and retry policies real applications needed.
//
// Everything runs inside a deterministic discrete-event simulation: a Cloud
// is bound to a sim.Engine, and all operations take the calling sim.Proc.
package azure

import (
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/blobsvc"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// Config assembles a cloud. Zero-valued fields take defaults.
type Config struct {
	Seed   uint64
	Fabric fabric.Config
	Blob   blobsvc.Config
	Table  tablesvc.Config
	Queue  queuesvc.Config
	SQL    sqlsvc.Config

	// Faults is the uniform fault-injection plan: each probability fills the
	// matching per-service field that was left zero, so one config line
	// injects the same transient-fault mix into every storage service (the
	// ModisAzure campaign's knob). A per-service probability set explicitly
	// wins. Read/corrupt faults apply to the blob payload path only.
	Faults reqpath.FaultConfig
}

// applyFaults overlays the uniform fault plan onto zero-valued per-service
// probabilities.
func (cfg *Config) applyFaults() {
	f := cfg.Faults
	fill := func(dst *float64, v float64) {
		if *dst == 0 {
			*dst = v
		}
	}
	fill(&cfg.Blob.ConnFailProb, f.ConnFailProb)
	fill(&cfg.Blob.ServerBusyProb, f.ServerBusyProb)
	fill(&cfg.Blob.ReadFailProb, f.ReadFailProb)
	fill(&cfg.Blob.CorruptReadProb, f.CorruptReadProb)
	fill(&cfg.Table.ConnFailProb, f.ConnFailProb)
	fill(&cfg.Table.ServerBusyProb, f.ServerBusyProb)
	fill(&cfg.Queue.ConnFailProb, f.ConnFailProb)
	fill(&cfg.Queue.ServerBusyProb, f.ServerBusyProb)
	fill(&cfg.SQL.ConnFailProb, f.ConnFailProb)
	fill(&cfg.SQL.ServerBusyProb, f.ServerBusyProb)
}

// Cloud is one simulated Windows Azure region: compute fabric plus storage
// account endpoints.
type Cloud struct {
	Engine     *sim.Engine
	DC         *fabric.Datacenter
	Controller *fabric.Controller
	Blob       *blobsvc.Service
	Table      *tablesvc.Service
	Queue      *queuesvc.Service
	SQL        *sqlsvc.Service

	// Ops aggregates every request served by any storage service, fed by a
	// pipeline hook on all four — the service-side half of the Section 6.3
	// monitoring story.
	Ops *metrics.OpStats

	rng *simrand.RNG
}

// NewCloud builds a cloud on a fresh engine.
func NewCloud(cfg Config) *Cloud {
	eng := sim.NewEngine()
	return NewCloudOn(eng, cfg)
}

// NewCloudOn builds a cloud on an existing engine.
func NewCloudOn(eng *sim.Engine, cfg Config) *Cloud {
	if cfg.Fabric.Hosts == 0 {
		cfg.Fabric = fabric.DefaultConfig()
	}
	cfg.applyFaults()
	rng := simrand.New(cfg.Seed)
	dc := fabric.New(eng, rng, cfg.Fabric)
	c := &Cloud{
		Engine:     eng,
		DC:         dc,
		Controller: fabric.NewController(dc),
		Blob:       blobsvc.New(eng, dc.Net(), rng, cfg.Blob),
		Table:      tablesvc.New(eng, rng, cfg.Table),
		Queue:      queuesvc.New(eng, rng, cfg.Queue),
		SQL:        sqlsvc.New(eng, rng, cfg.SQL),
		Ops:        metrics.NewOpStats(),
		rng:        rng.Fork("cloud"),
	}
	record := func(e reqpath.Event) {
		c.Ops.Record(e.Op, e.Latency, string(storerr.CodeOf(e.Err)))
	}
	for _, pl := range []*reqpath.Pipeline{
		c.Blob.Pipeline(), c.Table.Pipeline(), c.Queue.Pipeline(), c.SQL.Pipeline(),
	} {
		pl.AddHook(record)
	}
	return c
}

// StorageServices lists the storage service names in canonical order — the
// order chaos outage injection indexes into.
var StorageServices = []string{"blob", "table", "queue", "sql"}

// StoragePipeline returns the named service's request pipeline ("blob",
// "table", "queue", "sql") — the surface the chaos engine's storage
// brownout/blackout windows act on.
func (c *Cloud) StoragePipeline(name string) *reqpath.Pipeline {
	switch name {
	case "blob":
		return c.Blob.Pipeline()
	case "table":
		return c.Table.Pipeline()
	case "queue":
		return c.Queue.Pipeline()
	case "sql":
		return c.SQL.Pipeline()
	}
	panic("azure: unknown storage service " + name)
}

// NewClient opens a storage client bound to a VM. Each concurrent client
// must have its own Client: per-connection bandwidth caps and random streams
// are per-client state. The blob session is opened lazily on first blob use
// — at million-client scale, a table-only client must not pay for blob
// access links it never touches. Laziness cannot perturb traces: session
// streams are forked by label and index, drawing nothing at creation.
func (c *Cloud) NewClient(vm *fabric.VM, id int) *Client {
	return &Client{
		cloud: c,
		vm:    vm,
		id:    id,
		rng:   c.rng.ForkN("client", id),
		stats: metrics.NewOpStats(),
	}
}

// Management returns a management-API client for deployment lifecycle
// operations.
func (c *Cloud) Management() *Management {
	return &Management{cloud: c}
}
