package azure

import (
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

// retrySchedule runs one always-busy client through the policy and records
// the virtual time of every attempt after the first.
func retrySchedule(eng *sim.Engine, name string, rp RetryPolicy) *[]time.Duration {
	var attempts []time.Duration
	eng.Spawn(name, func(p *sim.Proc) {
		first := true
		_ = rp.Do(p, func() error {
			if !first {
				attempts = append(attempts, p.Now())
			}
			first = false
			return storerr.New(storerr.CodeServerBusy, "op", "")
		})
	})
	return &attempts
}

// Without jitter, clients that collide at t=0 retry in lockstep forever —
// the herd the paper's Section 5.2 retry guidance warns about. With a
// per-client jitter stream their schedules must desynchronize, while staying
// bit-reproducible under the same seed and unaffected by unrelated clients
// joining the run.
func TestRetryJitterDesynchronizesClients(t *testing.T) {
	base := RetryPolicy{MaxAttempts: 4, Backoff: 3 * time.Second, Multiplier: 2}

	// Lockstep control: identical schedules without jitter.
	{
		eng := sim.NewEngine()
		a := retrySchedule(eng, "a", base)
		b := retrySchedule(eng, "b", base)
		eng.Run()
		if len(*a) != 3 || len(*b) != 3 {
			t.Fatalf("attempt counts %d/%d, want 3/3", len(*a), len(*b))
		}
		for i := range *a {
			if (*a)[i] != (*b)[i] {
				t.Fatalf("unjittered clients desynchronized at attempt %d: %v vs %v", i, (*a)[i], (*b)[i])
			}
		}
	}

	run := func(seed uint64, clients int) [][]time.Duration {
		eng := sim.NewEngine()
		root := simrand.New(seed)
		scheds := make([]*[]time.Duration, clients)
		for i := 0; i < clients; i++ {
			rng := root.ForkN("retry", i)
			scheds[i] = retrySchedule(eng, "c", base.WithJitter(0.5, rng))
		}
		eng.Run()
		out := make([][]time.Duration, clients)
		for i, s := range scheds {
			out[i] = *s
		}
		return out
	}

	got := run(42, 3)
	for i, s := range got {
		if len(s) != 3 {
			t.Fatalf("client %d made %d retries, want 3", i, len(s))
		}
		for k, at := range s {
			// Each wait is uniform over [0.5, 1]×backoff; the k-th retry
			// therefore lands in [half, full] of the unjittered schedule.
			full := time.Duration(3*((1<<(k+1))-1)) * time.Second
			if at < full/2 || at > full {
				t.Fatalf("client %d retry %d at %v, outside [%v, %v]", i, k, at, full/2, full)
			}
		}
	}
	// Desynchronized: no two clients share a first-retry instant.
	for i := 0; i < len(got); i++ {
		for j := i + 1; j < len(got); j++ {
			if got[i][0] == got[j][0] {
				t.Fatalf("clients %d and %d retry in lockstep at %v despite jitter", i, j, got[i][0])
			}
		}
	}

	// Deterministic: same seed reproduces every schedule exactly.
	again := run(42, 3)
	for i := range got {
		for k := range got[i] {
			if got[i][k] != again[i][k] {
				t.Fatalf("seed 42 not reproducible: client %d retry %d %v vs %v", i, k, got[i][k], again[i][k])
			}
		}
	}

	// Stream isolation: adding a fourth client leaves the first three alone.
	wider := run(42, 4)
	for i := 0; i < 3; i++ {
		for k := range got[i] {
			if got[i][k] != wider[i][k] {
				t.Fatalf("adding a client perturbed client %d retry %d: %v vs %v", i, k, got[i][k], wider[i][k])
			}
		}
	}
}

func TestRetryJitterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("fraction out of range", func() {
		DefaultRetryPolicy().WithJitter(1.5, simrand.New(1))
	})
	mustPanic("nil rng", func() {
		DefaultRetryPolicy().WithJitter(0.5, nil)
	})
}
