package azure

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/sqlsvc"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// TestCloudOpsAccounting: every storage request — from any service, through
// the client or against the service directly — lands in Cloud.Ops via the
// pipeline hook, and client-issued ops land in Client.Ops too.
func TestCloudOpsAccounting(t *testing.T) {
	c := NewCloud(Config{Seed: 3})
	c.Blob.Seed("d", "b", 1000)
	c.Table.CreateTable("t")
	q := c.Queue.CreateQueue("q")
	c.SQL.CreateDatabase("db", 0)
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		if _, err := cl.GetBlob(p, "d", "b"); err != nil {
			t.Errorf("GetBlob: %v", err)
		}
		if _, err := cl.GetBlob(p, "d", "missing"); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("GetBlob missing = %v", err)
		}
		if err := cl.InsertEntity(p, "t", tablesvc.PaddedEntity("pk", "rk", 256)); err != nil {
			t.Errorf("InsertEntity: %v", err)
		}
		if _, err := cl.AddMessage(p, q, "m", 64); err != nil {
			t.Errorf("AddMessage: %v", err)
		}
		// Direct service access (no client) must still be observed.
		conn, err := c.SQL.Open(p, "db", 0)
		if err != nil {
			t.Errorf("sql.Open: %v", err)
		} else {
			conn.Close()
		}
	})
	c.Engine.Run()

	for _, op := range []string{"blob.Get", "table.Insert", "queue.Add", "sql.Open"} {
		if c.Ops.Get(op) == nil {
			t.Errorf("Cloud.Ops missing %q; have %v", op, c.Ops.Ops())
		}
	}
	g := c.Ops.Get("blob.Get")
	if g.OK != 1 || g.Errors.Get(string(storerr.CodeNotFound)) != 1 {
		t.Errorf("blob.Get cloud stats: OK=%d notfound=%d", g.OK, g.Errors.Get(string(storerr.CodeNotFound)))
	}
	if cg := cl.Ops().Get("blob.Get"); cg == nil || cg.Latency.N() != 2 {
		t.Errorf("client blob.Get stats missing or wrong count")
	}
	if cl.Ops().Get("sql.Open") != nil {
		t.Error("client stats picked up a non-client op")
	}
}

// TestUniformFaultConfig: one Config.Faults line injects the same conn-fail
// mix into all four services, at the configured rate.
func TestUniformFaultConfig(t *testing.T) {
	const prob = 0.25
	const n = 1200
	c := NewCloud(Config{Seed: 17, Faults: reqpath.FaultConfig{ConnFailProb: prob}})
	c.Blob.Seed("d", "b", 10)
	c.Table.CreateTable("t")
	c.Table.Backdoor("t", tablesvc.PaddedEntity("pk", "rk", 64))
	q := c.Queue.CreateQueue("q")
	c.SQL.CreateDatabase("db", 0)
	c.SQL.Seed("db", "t", "k", 64)
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)

	fails := map[string]int{}
	c.Engine.Spawn("app", func(p *sim.Proc) {
		count := func(svc string, err error) {
			if err == nil {
				return
			}
			if !storerr.IsCode(err, storerr.CodeConnection) {
				t.Errorf("%s: unexpected %v", svc, err)
				return
			}
			fails[svc]++
		}
		var conn *sqlsvc.Conn
		for i := 0; i < n; i++ {
			_, err := cl.GetBlob(p, "d", "b")
			count("blob", err)
			_, err = cl.GetEntity(p, "t", "pk", "rk")
			count("table", err)
			_, _, err = cl.PeekMessage(p, q)
			count("queue", err)
			if conn == nil {
				// Open is itself under fault injection; keep retrying so the
				// Select sample stays at n draws.
				for conn == nil {
					conn, err = c.SQL.Open(p, "db", 0)
					if err != nil && !storerr.IsCode(err, storerr.CodeConnection) {
						t.Errorf("sql.Open: %v", err)
						return
					}
				}
			}
			_, err = conn.Select(p, "t", "k")
			count("sql", err)
		}
	})
	c.Engine.Run()

	sigma := math.Sqrt(prob * (1 - prob) / n)
	for _, svc := range []string{"blob", "table", "queue", "sql"} {
		rate := float64(fails[svc]) / n
		if math.Abs(rate-prob) > 5*sigma {
			t.Errorf("%s conn-fail rate %.4f, configured %.2f (±%.4f)", svc, rate, prob, 5*sigma)
		}
	}
}

// TestFaultIsolationAcrossServices is the cross-service draw-order
// regression test: turning fault injection on for the table service must not
// move a single event in the queue service's trace, because every pipeline
// stage draws from its own named stream.
func TestFaultIsolationAcrossServices(t *testing.T) {
	trace := func(tableConnProb float64) []time.Duration {
		cfg := Config{Seed: 21}
		cfg.Table.ConnFailProb = tableConnProb
		c := NewCloud(cfg)
		c.Table.CreateTable("t")
		q := c.Queue.CreateQueue("q")
		var out []time.Duration
		c.Engine.Spawn("app", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				// Interleave table ops (whose faults are toggled) with queue
				// ops (whose timing is the trace under test).
				c.Table.Insert(p, "t", tablesvc.PaddedEntity("pk", "rk", 64+i))
				before := p.Now()
				if _, err := c.Queue.Add(p, q, "m", 128); err != nil {
					t.Errorf("queue.Add: %v", err)
				}
				out = append(out, p.Now()-before)
			}
		})
		c.Engine.Run()
		return out
	}
	clean := trace(0)
	faulty := trace(0.5)
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("queue op %d latency moved (%v -> %v) when table faults were enabled", i, clean[i], faulty[i])
		}
	}
}
