package azure

import (
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// clientFlat is a client's flat-mode plumbing: the observe() accounting
// compiled into cached completion wrappers, so a flat operation records into
// the client's OpStats and recorder hook exactly as a goroutine operation
// does, without allocating per request. One flat operation may be in flight
// per client — the closed-loop client shape.
type clientFlat struct {
	cl    *Client
	op    string
	start time.Duration

	blobDone func(int64, error)            // caller's blob completion
	entDone  func(*tablesvc.Entity, error) // caller's entity completion

	onBlob func(int64, error)            // cached observe wrapper for blob ops
	onEnt  func(*tablesvc.Entity, error) // cached observe wrapper for table Get
	tget   *tablesvc.GetFlat             // lazily built on first GetEntityFlat
}

func (cl *Client) flatState() *clientFlat {
	if cl.flat == nil {
		f := &clientFlat{cl: cl}
		f.onBlob = f.blobFinished
		f.onEnt = f.entFinished
		cl.flat = f
	}
	return cl.flat
}

func (f *clientFlat) begin(a *sim.Actor, op string) {
	if f.blobDone != nil || f.entDone != nil {
		panic("azure: client already has a flat operation in flight")
	}
	f.op = op
	f.start = a.Now()
}

// record is observe()'s accounting half, run at completion time.
func (f *clientFlat) record(err error) {
	cl := f.cl
	d := cl.cloud.Engine.Now() - f.start
	cl.stats.Record(f.op, d, string(storerr.CodeOf(err)))
	if cl.onOp != nil {
		cl.onOp(f.op, d, err)
	}
}

func (f *clientFlat) blobFinished(size int64, err error) {
	f.record(err)
	done := f.blobDone
	f.blobDone = nil
	done(size, err)
}

func (f *clientFlat) entFinished(ent *tablesvc.Entity, err error) {
	f.record(err)
	done := f.entDone
	f.entDone = nil
	done(ent, err)
}

// GetBlobFlat is the flat-actor form of GetBlob: instead of blocking a
// process it drives the request with a's continuations, and done receives
// the blob size (0 on error) at the instant GetBlob would have returned —
// after the client's stats and recorder hook have seen the operation, as
// with the goroutine path.
func (cl *Client) GetBlobFlat(a *sim.Actor, container, name string, done func(size int64, err error)) {
	f := cl.flatState()
	f.begin(a, "blob.Get")
	f.blobDone = done
	cl.blobSession().GetFlat(a, container, name, f.onBlob)
}

// PutBlobFlat is the flat-actor form of PutBlob; done receives the uploaded
// size and the outcome.
func (cl *Client) PutBlobFlat(a *sim.Actor, container, name string, size int64, overwrite bool, done func(size int64, err error)) {
	f := cl.flatState()
	f.begin(a, "blob.Put")
	f.blobDone = done
	cl.blobSession().PutFlat(a, container, name, size, overwrite, f.onBlob)
}

// GetEntityFlat is the flat-actor form of GetEntity.
func (cl *Client) GetEntityFlat(a *sim.Actor, table, pk, rk string, done func(*tablesvc.Entity, error)) {
	f := cl.flatState()
	if f.tget == nil {
		f.tget = cl.cloud.Table.NewGetFlat(f.onEnt)
	}
	f.begin(a, "table.Query")
	f.entDone = done
	f.tget.Begin(a, table, pk, rk)
}
