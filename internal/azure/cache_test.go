package azure

import (
	"testing"
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

func TestBlobCacheHitsAndMisses(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.Seed("d", "b", 65_000_000)
	cache := cl.NewBlobCache(500_000_000)
	var missDur, hitDur time.Duration
	c.Engine.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		_, hit, err := cache.Get(p, "d", "b")
		if err != nil || hit {
			t.Errorf("first get: hit=%v err=%v", hit, err)
		}
		missDur = p.Now() - t0
		t0 = p.Now()
		_, hit, err = cache.Get(p, "d", "b")
		if err != nil || !hit {
			t.Errorf("second get: hit=%v err=%v", hit, err)
		}
		hitDur = p.Now() - t0
	})
	c.Engine.Run()
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", cache.Hits(), cache.Misses())
	}
	// Miss: 65 MB at 13 MB/s ≈ 5 s. Hit: 65 MB at 50 MB/s ≈ 1.3 s.
	if hitDur*3 > missDur {
		t.Fatalf("cache hit (%v) not much faster than miss (%v)", hitDur, missDur)
	}
}

func TestBlobCacheLRUEviction(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	for _, n := range []string{"a", "b", "c"} {
		c.Blob.Seed("d", n, 40_000_000)
	}
	cache := cl.NewBlobCache(100_000_000) // fits two blobs
	c.Engine.Spawn("app", func(p *sim.Proc) {
		get := func(n string) bool {
			_, hit, err := cache.Get(p, "d", n)
			if err != nil {
				t.Fatal(err)
			}
			return hit
		}
		get("a")
		get("b")
		get("c") // evicts a (LRU)
		if get("a") {
			t.Error("a should have been evicted")
		}
		// Now b evicted (c then a are fresher).
		if get("c") == false {
			t.Error("c should still be cached")
		}
	})
	c.Engine.Run()
	if cache.Used() > 100_000_000 {
		t.Fatalf("cache over capacity: %d", cache.Used())
	}
}

func TestBlobCacheOversizeNotCached(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.Seed("d", "huge", 200_000_000)
	cache := cl.NewBlobCache(100_000_000)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		_, _, _ = cache.Get(p, "d", "huge")
		_, hit, _ := cache.Get(p, "d", "huge")
		if hit {
			t.Error("oversize blob was cached")
		}
	})
	c.Engine.Run()
}

func TestBlobCacheInvalidate(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.Seed("d", "b", 1_000_000)
	cache := cl.NewBlobCache(10_000_000)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		_, _, _ = cache.Get(p, "d", "b")
		cache.Invalidate("d", "b")
		_, hit, _ := cache.Get(p, "d", "b")
		if hit {
			t.Error("invalidated entry still hit")
		}
	})
	c.Engine.Run()
	if cache.Used() != 1_000_000 {
		t.Fatalf("used = %d after re-fetch, want 1MB", cache.Used())
	}
}

func TestBlobCacheMissPropagatesError(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.CreateContainer("d")
	cache := cl.NewBlobCache(10_000_000)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		_, _, err := cache.Get(p, "d", "ghost")
		if !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("err = %v", err)
		}
	})
	c.Engine.Run()
	if cache.Used() != 0 {
		t.Fatal("failed get left bytes in cache")
	}
}

func TestParallelGetBeatsSingleConnection(t *testing.T) {
	c := newCloud()
	vms := c.Controller.ReadyFleet(2, fabric.Worker, fabric.Small)
	c.Blob.Seed("d", "big", 130_000_000)
	cl := c.NewClient(vms[0], 0)
	var single, quad time.Duration
	c.Engine.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := cl.GetBlob(p, "d", "big"); err != nil {
			t.Error(err)
		}
		single = p.Now() - t0
		t0 = p.Now()
		if _, err := cl.ParallelGet(p, "d", "big", 4); err != nil {
			t.Error(err)
		}
		quad = p.Now() - t0
	})
	c.Engine.Run()
	// 130 MB: single connection ≈ 10 s at 13 MB/s; 4 connections ≈ 2.5 s.
	if quad*2 > single {
		t.Fatalf("parallel get (%v) not ≪ single (%v)", quad, single)
	}
}

func TestParallelGetSingleConnFallback(t *testing.T) {
	c := newCloud()
	vm := c.Controller.ReadyFleet(1, fabric.Worker, fabric.Small)[0]
	cl := c.NewClient(vm, 0)
	c.Blob.Seed("d", "b", 10_000_000)
	c.Engine.Spawn("app", func(p *sim.Proc) {
		n, err := cl.ParallelGet(p, "d", "b", 1)
		if err != nil || n != 10_000_000 {
			t.Errorf("fallback = %d, %v", n, err)
		}
		if _, err := cl.ParallelGet(p, "d", "ghost", 4); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("missing blob = %v", err)
		}
	})
	c.Engine.Run()
}
