package azure

import (
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/sim"
)

// Management is the Service Management API client: it drives deployment
// lifecycle phases and reports their wall-clock timings, exactly as the
// paper's test program did (Section 4.1).
type Management struct {
	cloud *Cloud
}

// PhaseTimes records the measured duration of each lifecycle phase of one
// test run.
type PhaseTimes struct {
	Create, Run, Add, Suspend, Delete time.Duration
	// FirstReady and LastReady time the run phase's instance readiness
	// transitions relative to the run request.
	FirstReady, LastReady time.Duration
}

// Deploy performs the create phase and returns the deployment.
func (m *Management) Deploy(p *sim.Proc, spec fabric.DeploymentSpec) (*fabric.Deployment, time.Duration, error) {
	start := p.Now()
	d, err := m.cloud.Controller.CreateDeployment(p, spec)
	return d, p.Now() - start, err
}

// Run starts the deployment and reports the phase duration plus instance
// readiness times.
func (m *Management) Run(p *sim.Proc, d *fabric.Deployment) (runDur, firstReady, lastReady time.Duration, err error) {
	start := p.Now()
	if err = m.cloud.Controller.RunDeployment(p, d); err != nil {
		return p.Now() - start, 0, 0, err
	}
	runDur = p.Now() - start
	rt := d.ReadyTimes()
	firstReady, lastReady = rt[0]-start, rt[0]-start
	for _, t := range rt {
		if t-start < firstReady {
			firstReady = t - start
		}
		if t-start > lastReady {
			lastReady = t - start
		}
	}
	return runDur, firstReady, lastReady, nil
}

// Add grows the deployment by n instances and reports the phase duration.
func (m *Management) Add(p *sim.Proc, d *fabric.Deployment, n int) (time.Duration, error) {
	start := p.Now()
	err := m.cloud.Controller.AddInstances(p, d, n)
	return p.Now() - start, err
}

// Suspend stops the deployment and reports the phase duration.
func (m *Management) Suspend(p *sim.Proc, d *fabric.Deployment) (time.Duration, error) {
	start := p.Now()
	err := m.cloud.Controller.SuspendDeployment(p, d)
	return p.Now() - start, err
}

// Delete removes the deployment and reports the phase duration.
func (m *Management) Delete(p *sim.Proc, d *fabric.Deployment) (time.Duration, error) {
	start := p.Now()
	err := m.cloud.Controller.DeleteDeployment(p, d)
	return p.Now() - start, err
}
