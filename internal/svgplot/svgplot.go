// Package svgplot renders experiment results as standalone SVG figures
// using only the standard library — line charts with optional log₂ x-axes
// (the paper's concurrency ladders), CDF curves (Figs. 4-5) and bar series
// (Fig. 7). cmd/azbench and cmd/modisazure write these next to their text
// output so the reproduced figures can be compared with the published ones
// side by side.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Name string
	X, Y []float64
}

// Kind selects the mark type.
type Kind int

// Plot kinds.
const (
	Lines Kind = iota
	Bars
)

// Plot is one figure.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// Log2X draws the x axis in log₂ space (client-count ladders).
	Log2X bool
	// Kind selects lines (default) or bars (single series).
	Kind Kind
	// W, H are the pixel dimensions (defaults 640x420).
	W, H int

	series []Series
}

// New creates a figure.
func New(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, W: 640, H: 420}
}

// Add appends a named series; x and y must have equal nonzero length.
func (p *Plot) Add(name string, x, y []float64) *Plot {
	if len(x) != len(y) || len(x) == 0 {
		panic("svgplot: series lengths must match and be nonzero")
	}
	p.series = append(p.series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return p
}

// palette is a color cycle distinguishable in grayscale print too.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const margin = 56

// Render writes the SVG document.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("svgplot: no series")
	}
	if p.W == 0 {
		p.W = 640
	}
	if p.H == 0 {
		p.H = 420
	}
	xmin, xmax, ymin, ymax := p.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		p.W, p.H, p.W, p.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		p.W/2, esc(p.Title))

	// Plot area.
	px0, py0 := margin, 40
	px1, py1 := p.W-24, p.H-margin
	toX := func(x float64) float64 {
		if p.Log2X {
			x = math.Log2(x)
		}
		lo, hi := xmin, xmax
		if p.Log2X {
			lo, hi = math.Log2(xmin), math.Log2(xmax)
		}
		if hi == lo {
			return float64(px0)
		}
		return float64(px0) + (x-lo)/(hi-lo)*float64(px1-px0)
	}
	toY := func(y float64) float64 {
		if ymax == ymin {
			return float64(py1)
		}
		return float64(py1) - (y-ymin)/(ymax-ymin)*float64(py1-py0)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", px0, py1, px1, py1)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", px0, py0, px0, py1)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		(px0+px1)/2, p.H-16, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(py0+py1)/2, (py0+py1)/2, esc(p.YLabel))

	// Ticks.
	for _, t := range p.xticks(xmin, xmax) {
		x := toX(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n", x, py1, x, py1+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			x, py1+16, fmtTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, 6) {
		y := toY(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", px0, y, px1, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			px0-6, y+3, fmtTick(t))
	}

	// Marks.
	for i, s := range p.series {
		color := palette[i%len(palette)]
		switch p.Kind {
		case Bars:
			barW := float64(px1-px0) / float64(len(s.X)) * 0.9
			for j := range s.X {
				x := toX(s.X[j])
				y := toY(s.Y[j])
				if s.Y[j] <= ymin {
					continue
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.1f" fill="%s"/>`+"\n",
					x-barW/2, y, math.Max(barW, 0.5), float64(py1)-y, color)
			}
		default:
			pts := make([]string, len(s.X))
			for j := range s.X {
				pts[j] = fmt.Sprintf("%.1f,%.1f", toX(s.X[j]), toY(s.Y[j]))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
			for j := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
					toX(s.X[j]), toY(s.Y[j]), color)
			}
		}
		// Legend.
		ly := py0 + 14 + i*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", px1-130, ly-9, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			px1-115, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes data extents; y always includes 0.
func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), 0
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	ymax *= 1.05
	return
}

// xticks places x-axis ticks: the actual ladder points in log mode, nice
// numbers otherwise.
func (p *Plot) xticks(xmin, xmax float64) []float64 {
	if p.Log2X {
		var out []float64
		for v := xmin; v <= xmax*1.0001; v *= 2 {
			out = append(out, v)
		}
		if len(out) > 0 && out[len(out)-1] < xmax*0.999 {
			out = append(out, xmax)
		}
		return out
	}
	return niceTicks(xmin, xmax, 8)
}

// niceTicks returns ~n round tick values spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch norm := rawStep / mag; {
	case norm < 1.5:
		step = mag
	case norm < 3.5:
		step = 2 * mag
	case norm < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi*1.0001; v += step {
		out = append(out, v)
	}
	return out
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
