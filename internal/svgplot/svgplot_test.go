package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, p *Plot) string {
	t.Helper()
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	return b.String()
}

// wellFormed parses the SVG as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg not well-formed: %v", err)
		}
	}
}

func TestLinePlot(t *testing.T) {
	p := New("Fig 1 — blob bandwidth", "concurrent clients", "MB/s")
	p.Log2X = true
	p.Add("download", []float64{1, 2, 4, 8, 16, 32, 64, 128, 192},
		[]float64{13, 13, 13, 13, 9.5, 6.5, 5, 3.07, 2.02})
	p.Add("upload", []float64{1, 2, 4, 8, 16, 32, 64, 128, 192},
		[]float64{6.5, 6.5, 6.5, 6.5, 5, 2.5, 1.25, 0.9, 0.65})
	svg := render(t, p)
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "Fig 1", "download", "upload", "MB/s", "concurrent clients"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// Log ladder ticks include the powers of two.
	for _, tick := range []string{">1<", ">2<", ">64<", ">128<"} {
		if !strings.Contains(svg, tick) {
			t.Fatalf("missing log tick %s", tick)
		}
	}
}

func TestBarPlot(t *testing.T) {
	p := New("Fig 7", "day", "% timeouts")
	p.Kind = Bars
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		if i == 50 {
			y[i] = 16
		}
	}
	p.Add("daily timeout share", x, y)
	svg := render(t, p)
	wellFormed(t, svg)
	if !strings.Contains(svg, "<rect") {
		t.Fatal("no bars drawn")
	}
	// Only the spike day produces a visible bar plus the background rect
	// and the legend swatch.
	if n := strings.Count(svg, "<rect"); n != 3 {
		t.Fatalf("rect count = %d, want 3 (background, one bar, legend)", n)
	}
}

func TestEscaping(t *testing.T) {
	p := New(`A<B & "C"`, "x", "y")
	p.Add("s<1>", []float64{1, 2}, []float64{1, 2})
	svg := render(t, p)
	wellFormed(t, svg)
	if strings.Contains(svg, `A<B`) {
		t.Fatal("title not escaped")
	}
}

func TestEmptyPlotErrors(t *testing.T) {
	var b strings.Builder
	if err := New("t", "x", "y").Render(&b); err == nil {
		t.Fatal("empty plot rendered")
	}
}

func TestMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	New("t", "x", "y").Add("s", []float64{1}, []float64{1, 2})
}

func TestConstantSeries(t *testing.T) {
	// Degenerate extents must not divide by zero.
	p := New("flat", "x", "y")
	p.Add("s", []float64{5, 5, 5}, []float64{0, 0, 0})
	svg := render(t, p)
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate plot produced NaN/Inf coordinates")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Fatalf("degenerate ticks = %v", got)
	}
	// Round steps only.
	ticks = niceTicks(0, 0.93, 5)
	for _, v := range ticks {
		scaled := v / 0.1
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("non-round tick %v in %v", v, ticks)
		}
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(128) != "128" {
		t.Fatalf("fmtTick(128) = %s", fmtTick(128))
	}
	if fmtTick(0.125) != "0.125" {
		t.Fatalf("fmtTick(0.125) = %s", fmtTick(0.125))
	}
}
