// Package queuesvc simulates the Windows Azure queue storage service as
// measured in Section 3.3 of the paper: a triple-replicated FIFO-ish message
// queue with Add, Peek, Receive and Delete operations, per-message
// visibility timeouts with automatic reappearance (the retry mechanism
// ModisAzure initially relied on), and contention behaviour calibrated to
// Fig. 3:
//
//   - Add and Receive need replica synchronisation; their aggregate
//     service-side throughput peaks at 64 concurrent clients
//     (569 and 424 ops/s respectively).
//   - Peek alters no state and keeps scaling: 3392 ops/s at 128 clients,
//     3878 at 192, still rising.
//   - Queue depth does not affect operation cost (verified from 200k to 2M
//     messages in the paper).
package queuesvc

import (
	"container/list"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// Config parameterises the service; zero fields take calibrated defaults.
type Config struct {
	Add, Peek, Receive, DeleteMsg station.Config

	// DefaultVisibility is applied when Receive is called with zero
	// visibility; MaxVisibility is the service-imposed cap (2 h in the
	// paper's deployment, which forced ModisAzure to build its own task
	// monitor for longer tasks).
	DefaultVisibility time.Duration
	MaxVisibility     time.Duration

	// ClientWriteBW/ClientReadBW convert message payloads into transfer
	// time added to each op.
	ClientWriteBW netsim.Bandwidth
	ClientReadBW  netsim.Bandwidth

	// Fault injection.
	ConnFailProb   float64
	ServerBusyProb float64
}

// DefaultConfig returns the Fig. 3 calibration.
func DefaultConfig() Config {
	return Config{
		Add:       station.Config{S0: 56 * time.Millisecond, N0: 64, Gamma: 2, CV: 0.25},
		Peek:      station.Config{S0: 32 * time.Millisecond, N0: 260, Gamma: 2, CV: 0.25},
		Receive:   station.Config{S0: 75 * time.Millisecond, N0: 64, Gamma: 2, CV: 0.25},
		DeleteMsg: station.Config{S0: 40 * time.Millisecond, N0: 128, Gamma: 2, CV: 0.25},

		DefaultVisibility: 30 * time.Second,
		MaxVisibility:     2 * time.Hour,

		ClientWriteBW: 6.5 * netsim.MBps,
		ClientReadBW:  13 * netsim.MBps,
	}
}

// Message is one queued message. Body is carried verbatim; Size may exceed
// len(Body) to model padded payloads without allocating them.
type Message struct {
	ID       uint64
	Body     string
	Size     int
	Inserted time.Duration
	Dequeues int

	visibleAt time.Duration
	receipt   uint64
	elem      *list.Element
	deleted   bool
}

// Receipt is the pop receipt required to delete a received message. It is
// invalidated if the message's visibility expires and another consumer
// receives it — the hazard that made ModisAzure's implicit-retry scheme
// unsafe for slow tasks.
type Receipt struct {
	MsgID uint64
	token uint64
}

// Service is one queue storage account endpoint.
type Service struct {
	cfg Config
	eng *sim.Engine
	rng *simrand.RNG

	add, peek, receive, del *station.Station

	queues map[string]*Queue
}

// Queue is one named message queue.
type Queue struct {
	name        string
	msgs        *list.List // *Message in arrival order
	byID        map[uint64]*Message
	nextID      uint64
	nextReceipt uint64
}

// New creates a queue service.
func New(eng *sim.Engine, rng *simrand.RNG, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Add.S0 == 0 {
		cfg.Add = def.Add
	}
	if cfg.Peek.S0 == 0 {
		cfg.Peek = def.Peek
	}
	if cfg.Receive.S0 == 0 {
		cfg.Receive = def.Receive
	}
	if cfg.DeleteMsg.S0 == 0 {
		cfg.DeleteMsg = def.DeleteMsg
	}
	if cfg.DefaultVisibility == 0 {
		cfg.DefaultVisibility = def.DefaultVisibility
	}
	if cfg.MaxVisibility == 0 {
		cfg.MaxVisibility = def.MaxVisibility
	}
	if cfg.ClientWriteBW == 0 {
		cfg.ClientWriteBW = def.ClientWriteBW
	}
	if cfg.ClientReadBW == 0 {
		cfg.ClientReadBW = def.ClientReadBW
	}
	r := rng.Fork("queuesvc")
	return &Service{
		cfg:     cfg,
		eng:     eng,
		rng:     r,
		add:     station.New(cfg.Add, r.Fork("add")),
		peek:    station.New(cfg.Peek, r.Fork("peek")),
		receive: station.New(cfg.Receive, r.Fork("receive")),
		del:     station.New(cfg.DeleteMsg, r.Fork("delete")),
		queues:  make(map[string]*Queue),
	}
}

// CreateQueue makes a queue (idempotent) and returns it.
func (s *Service) CreateQueue(name string) *Queue {
	q, ok := s.queues[name]
	if !ok {
		q = &Queue{name: name, msgs: list.New(), byID: make(map[uint64]*Message)}
		s.queues[name] = q
	}
	return q
}

// GetQueue returns an existing queue.
func (s *Service) GetQueue(name string) (*Queue, bool) {
	q, ok := s.queues[name]
	return q, ok
}

// Len returns the number of live (undeleted) messages, visible or not.
func (q *Queue) Len() int { return q.msgs.Len() }

// Prefill inserts n size-byte messages instantly — a test/bench helper for
// the paper's queue-depth invariance experiment (200k → 2M messages).
func (q *Queue) Prefill(n, size int) {
	for i := 0; i < n; i++ {
		q.nextID++
		m := &Message{ID: q.nextID, Size: size}
		m.elem = q.msgs.PushBack(m)
		q.byID[m.ID] = m
	}
}

func (s *Service) faults(op string) error {
	if s.rng.Hit(s.cfg.ConnFailProb) {
		return storerr.New(storerr.CodeConnection, op, "connection reset")
	}
	if s.rng.Hit(s.cfg.ServerBusyProb) {
		return storerr.New(storerr.CodeServerBusy, op, "throttled")
	}
	return nil
}

func (s *Service) writeTime(size int) time.Duration {
	return time.Duration(float64(size) / float64(s.cfg.ClientWriteBW) * float64(time.Second))
}

func (s *Service) readTime(size int) time.Duration {
	return time.Duration(float64(size) / float64(s.cfg.ClientReadBW) * float64(time.Second))
}

// Add appends a message with the given body, padded to size bytes.
func (s *Service) Add(p *sim.Proc, q *Queue, body string, size int) (uint64, error) {
	const op = "queue.Add"
	if err := s.faults(op); err != nil {
		return 0, err
	}
	if size < len(body) {
		size = len(body)
	}
	s.add.Visit(p, s.writeTime(size))
	q.nextID++
	m := &Message{ID: q.nextID, Body: body, Size: size, Inserted: p.Now()}
	m.elem = q.msgs.PushBack(m)
	q.byID[m.ID] = m
	return m.ID, nil
}

// firstVisible returns the first live visible message at the current time.
func (q *Queue) firstVisible(now time.Duration) *Message {
	for e := q.msgs.Front(); e != nil; e = e.Next() {
		m := e.Value.(*Message)
		if !m.deleted && m.visibleAt <= now {
			return m
		}
	}
	return nil
}

// Peek returns the first visible message without changing queue state, or
// ok=false when the queue has none.
func (s *Service) Peek(p *sim.Proc, q *Queue) (*Message, bool, error) {
	const op = "queue.Peek"
	if err := s.faults(op); err != nil {
		return nil, false, err
	}
	s.peek.Visit(p, 0)
	m := q.firstVisible(p.Now())
	if m == nil {
		return nil, false, nil
	}
	p.Sleep(s.readTime(m.Size))
	return m, true, nil
}

// Receive pops the first visible message, hiding it for the visibility
// window (clamped to MaxVisibility; zero means the service default). If the
// consumer does not Delete it in time it reappears for other consumers —
// the automatic retry behaviour of Section 5.2.
func (s *Service) Receive(p *sim.Proc, q *Queue, visibility time.Duration) (*Message, Receipt, bool, error) {
	const op = "queue.Receive"
	if err := s.faults(op); err != nil {
		return nil, Receipt{}, false, err
	}
	if visibility <= 0 {
		visibility = s.cfg.DefaultVisibility
	}
	if visibility > s.cfg.MaxVisibility {
		visibility = s.cfg.MaxVisibility
	}
	// The service time elapses first; the message is then selected and
	// hidden in one atomic instant, so concurrent receivers never race for
	// the same message. The payload transfer follows.
	s.receive.Visit(p, 0)
	m := q.firstVisible(p.Now())
	if m == nil {
		return nil, Receipt{}, false, nil
	}
	m.visibleAt = p.Now() + visibility
	m.Dequeues++
	q.nextReceipt++
	m.receipt = q.nextReceipt
	rcpt := Receipt{MsgID: m.ID, token: q.nextReceipt}
	p.Sleep(s.readTime(m.Size))
	return m, rcpt, true, nil
}

// Delete removes a received message. A stale receipt (the message timed out
// and was re-received) is a conflict — exactly the corrupted-output hazard
// the paper describes for slow tasks.
func (s *Service) Delete(p *sim.Proc, q *Queue, r Receipt) error {
	const op = "queue.Delete"
	if err := s.faults(op); err != nil {
		return err
	}
	s.del.Visit(p, 0)
	m, ok := q.byID[r.MsgID]
	if !ok || m.deleted {
		return storerr.Newf(storerr.CodeNotFound, op, "message %d", r.MsgID)
	}
	if m.receipt != r.token {
		return storerr.Newf(storerr.CodeConflict, op, "stale receipt for message %d", m.ID)
	}
	m.deleted = true
	q.msgs.Remove(m.elem)
	delete(q.byID, m.ID)
	return nil
}
