// Package queuesvc simulates the Windows Azure queue storage service as
// measured in Section 3.3 of the paper: a triple-replicated FIFO-ish message
// queue with Add, Peek, Receive and Delete operations, per-message
// visibility timeouts with automatic reappearance (the retry mechanism
// ModisAzure initially relied on), and contention behaviour calibrated to
// Fig. 3:
//
//   - Add and Receive need replica synchronisation; their aggregate
//     service-side throughput peaks at 64 concurrent clients
//     (569 and 424 ops/s respectively).
//   - Peek alters no state and keeps scaling: 3392 ops/s at 128 clients,
//     3878 at 192, still rising.
//   - Queue depth does not affect operation cost (verified from 200k to 2M
//     messages in the paper).
package queuesvc

import (
	"container/list"
	"strconv"
	"strings"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// Config parameterises the service; zero fields take calibrated defaults.
type Config struct {
	Add, Peek, Receive, DeleteMsg station.Config

	// DefaultVisibility is applied when Receive is called with zero
	// visibility; MaxVisibility is the service-imposed cap (2 h in the
	// paper's deployment, which forced ModisAzure to build its own task
	// monitor for longer tasks).
	DefaultVisibility time.Duration
	MaxVisibility     time.Duration

	// ClientWriteBW/ClientReadBW convert message payloads into transfer
	// time added to each op.
	ClientWriteBW netsim.Bandwidth
	ClientReadBW  netsim.Bandwidth

	// Fault injection.
	ConnFailProb   float64
	ServerBusyProb float64
}

// DefaultConfig returns the Fig. 3 calibration.
func DefaultConfig() Config {
	return Config{
		Add:       station.Config{S0: 56 * time.Millisecond, N0: 64, Gamma: 2, CV: 0.25},
		Peek:      station.Config{S0: 32 * time.Millisecond, N0: 260, Gamma: 2, CV: 0.25},
		Receive:   station.Config{S0: 75 * time.Millisecond, N0: 64, Gamma: 2, CV: 0.25},
		DeleteMsg: station.Config{S0: 40 * time.Millisecond, N0: 128, Gamma: 2, CV: 0.25},

		DefaultVisibility: 30 * time.Second,
		MaxVisibility:     2 * time.Hour,

		ClientWriteBW: 6.5 * netsim.MBps,
		ClientReadBW:  13 * netsim.MBps,
	}
}

// Message is one queued message. Body is carried verbatim; Size may exceed
// len(Body) to model padded payloads without allocating them.
type Message struct {
	ID       uint64
	Body     string
	Size     int
	Inserted time.Duration
	Dequeues int

	visibleAt time.Duration
	receipt   uint64
	elem      *list.Element
	deleted   bool
}

// Receipt is the pop receipt required to delete a received message. It is
// invalidated if the message's visibility expires and another consumer
// receives it — the hazard that made ModisAzure's implicit-retry scheme
// unsafe for slow tasks.
type Receipt struct {
	MsgID uint64
	token uint64
}

// String encodes the receipt in its wire form, "<msgID>.<token>". The token
// is unexported in-process; the wire form round-trips it so REST clients can
// present pop receipts back to the facade.
func (r Receipt) String() string {
	return strconv.FormatUint(r.MsgID, 10) + "." + strconv.FormatUint(r.token, 10)
}

// ParseReceipt decodes a wire receipt produced by String.
func ParseReceipt(s string) (Receipt, bool) {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return Receipt{}, false
	}
	id, err1 := strconv.ParseUint(s[:dot], 10, 64)
	tok, err2 := strconv.ParseUint(s[dot+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return Receipt{}, false
	}
	return Receipt{MsgID: id, token: tok}, true
}

// Received pairs a popped message with the receipt that authorises its
// deletion — the unit a successful Receive hands the consumer.
type Received struct {
	Msg     *Message
	Receipt Receipt
}

// Service is one queue storage account endpoint.
type Service struct {
	cfg Config
	eng *sim.Engine
	rng *simrand.RNG
	pl  *reqpath.Pipeline

	add, peek, receive, del *station.Station

	queues map[string]*Queue
}

// Queue is one named message queue.
type Queue struct {
	name        string
	msgs        *list.List // *Message in arrival order
	byID        map[uint64]*Message
	nextID      uint64
	nextReceipt uint64
}

// New creates a queue service.
func New(eng *sim.Engine, rng *simrand.RNG, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Add.S0 == 0 {
		cfg.Add = def.Add
	}
	if cfg.Peek.S0 == 0 {
		cfg.Peek = def.Peek
	}
	if cfg.Receive.S0 == 0 {
		cfg.Receive = def.Receive
	}
	if cfg.DeleteMsg.S0 == 0 {
		cfg.DeleteMsg = def.DeleteMsg
	}
	if cfg.DefaultVisibility == 0 {
		cfg.DefaultVisibility = def.DefaultVisibility
	}
	if cfg.MaxVisibility == 0 {
		cfg.MaxVisibility = def.MaxVisibility
	}
	if cfg.ClientWriteBW == 0 {
		cfg.ClientWriteBW = def.ClientWriteBW
	}
	if cfg.ClientReadBW == 0 {
		cfg.ClientReadBW = def.ClientReadBW
	}
	r := rng.Fork("queuesvc")
	return &Service{
		cfg: cfg,
		eng: eng,
		rng: r,
		pl: reqpath.New(r, reqpath.Config{
			Service: "queue",
			Faults: reqpath.FaultConfig{
				ConnFailProb:   cfg.ConnFailProb,
				ServerBusyProb: cfg.ServerBusyProb,
			},
			UploadBW:   cfg.ClientWriteBW,
			DownloadBW: cfg.ClientReadBW,
		}),
		add:     station.New(cfg.Add, r.Fork("add")),
		peek:    station.New(cfg.Peek, r.Fork("peek")),
		receive: station.New(cfg.Receive, r.Fork("receive")),
		del:     station.New(cfg.DeleteMsg, r.Fork("delete")),
		queues:  make(map[string]*Queue),
	}
}

// Pipeline exposes the service's request pipeline for hook installation.
func (s *Service) Pipeline() *reqpath.Pipeline { return s.pl }

// CreateQueue makes a queue (idempotent) and returns it.
func (s *Service) CreateQueue(name string) *Queue {
	q, ok := s.queues[name]
	if !ok {
		q = &Queue{name: name, msgs: list.New(), byID: make(map[uint64]*Message)}
		s.queues[name] = q
	}
	return q
}

// GetQueue returns an existing queue.
func (s *Service) GetQueue(name string) (*Queue, bool) {
	q, ok := s.queues[name]
	return q, ok
}

// Len returns the number of live (undeleted) messages, visible or not.
func (q *Queue) Len() int { return q.msgs.Len() }

// Prefill inserts n size-byte messages instantly — a test/bench helper for
// the paper's queue-depth invariance experiment (200k → 2M messages).
func (q *Queue) Prefill(n, size int) {
	for i := 0; i < n; i++ {
		q.nextID++
		m := &Message{ID: q.nextID, Size: size}
		m.elem = q.msgs.PushBack(m)
		q.byID[m.ID] = m
	}
}

// Add appends a message with the given body, padded to size bytes.
func (s *Service) Add(p *sim.Proc, q *Queue, body string, size int) (id uint64, err error) {
	err = s.pl.Do(p, "queue.Add", func(c *reqpath.Ctx) error {
		if size < len(body) {
			size = len(body)
		}
		c.Station(s.add, c.UploadCost(size))
		q.nextID++
		m := &Message{ID: q.nextID, Body: body, Size: size, Inserted: c.P.Now()}
		m.elem = q.msgs.PushBack(m)
		q.byID[m.ID] = m
		id = m.ID
		return nil
	})
	return id, err
}

// firstVisible returns the first live visible message at the current time.
func (q *Queue) firstVisible(now time.Duration) *Message {
	for e := q.msgs.Front(); e != nil; e = e.Next() {
		m := e.Value.(*Message)
		if !m.deleted && m.visibleAt <= now {
			return m
		}
	}
	return nil
}

// Peek returns the first visible message without changing queue state, or
// ok=false when the queue has none.
func (s *Service) Peek(p *sim.Proc, q *Queue) (msg *Message, ok bool, err error) {
	err = s.pl.Do(p, "queue.Peek", func(c *reqpath.Ctx) error {
		c.Station(s.peek, 0)
		m := q.firstVisible(c.P.Now())
		if m == nil {
			return nil
		}
		c.Download(m.Size)
		msg, ok = m, true
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return msg, ok, nil
}

// Receive pops the first visible message, hiding it for the visibility
// window (clamped to MaxVisibility; zero means the service default). If the
// consumer does not Delete it in time it reappears for other consumers —
// the automatic retry behaviour of Section 5.2.
func (s *Service) Receive(p *sim.Proc, q *Queue, visibility time.Duration) (msg *Message, rcpt Receipt, ok bool, err error) {
	err = s.pl.Do(p, "queue.Receive", func(c *reqpath.Ctx) error {
		if visibility <= 0 {
			visibility = s.cfg.DefaultVisibility
		}
		if visibility > s.cfg.MaxVisibility {
			visibility = s.cfg.MaxVisibility
		}
		// The service time elapses first; the message is then selected and
		// hidden in one atomic instant, so concurrent receivers never race
		// for the same message. The payload transfer follows.
		c.Station(s.receive, 0)
		m := q.firstVisible(c.P.Now())
		if m == nil {
			return nil
		}
		m.visibleAt = c.P.Now() + visibility
		m.Dequeues++
		q.nextReceipt++
		m.receipt = q.nextReceipt
		msg, rcpt, ok = m, Receipt{MsgID: m.ID, token: q.nextReceipt}, true
		c.Download(m.Size)
		return nil
	})
	if err != nil {
		return nil, Receipt{}, false, err
	}
	return msg, rcpt, ok, nil
}

// Delete removes a received message. A stale receipt (the message timed out
// and was re-received) is a conflict — exactly the corrupted-output hazard
// the paper describes for slow tasks.
func (s *Service) Delete(p *sim.Proc, q *Queue, r Receipt) error {
	return s.pl.Do(p, "queue.Delete", func(c *reqpath.Ctx) error {
		c.Station(s.del, 0)
		m, ok := q.byID[r.MsgID]
		if !ok || m.deleted {
			return c.Failf(storerr.CodeNotFound, "message %d", r.MsgID)
		}
		if m.receipt != r.token {
			return c.Failf(storerr.CodeConflict, "stale receipt for message %d", m.ID)
		}
		m.deleted = true
		q.msgs.Remove(m.elem)
		delete(q.byID, m.ID)
		return nil
	})
}
