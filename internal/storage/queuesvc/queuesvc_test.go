package queuesvc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

func newSvc() (*sim.Engine, *Service) {
	eng := sim.NewEngine()
	return eng, New(eng, simrand.New(1), Config{})
}

func TestAddReceiveDelete(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("tasks")
	eng.Spawn("c", func(p *sim.Proc) {
		id, err := svc.Add(p, q, "hello", 512)
		if err != nil || id == 0 {
			t.Errorf("add: %v", err)
			return
		}
		m, r, ok, err := svc.Receive(p, q, time.Minute)
		if err != nil || !ok {
			t.Errorf("receive: %v ok=%v", err, ok)
			return
		}
		if m.Body != "hello" || m.Size != 512 || m.Dequeues != 1 {
			t.Errorf("message = %+v", m)
		}
		if err := svc.Delete(p, q, r); err != nil {
			t.Errorf("delete: %v", err)
		}
		if q.Len() != 0 {
			t.Errorf("len after delete = %d", q.Len())
		}
	})
	eng.Run()
}

func TestReceiveEmptyQueue(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("empty")
	eng.Spawn("c", func(p *sim.Proc) {
		_, _, ok, err := svc.Receive(p, q, 0)
		if err != nil || ok {
			t.Errorf("receive on empty = ok=%v err=%v", ok, err)
		}
		_, ok, err = svc.Peek(p, q)
		if err != nil || ok {
			t.Errorf("peek on empty = ok=%v err=%v", ok, err)
		}
	})
	eng.Run()
}

func TestPeekDoesNotAlterState(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		_, _ = svc.Add(p, q, "m1", 512)
		m1, ok, _ := svc.Peek(p, q)
		m2, ok2, _ := svc.Peek(p, q)
		if !ok || !ok2 || m1.ID != m2.ID {
			t.Error("peek changed queue state")
		}
		if m1.Dequeues != 0 {
			t.Error("peek counted as dequeue")
		}
	})
	eng.Run()
}

func TestVisibilityTimeoutReappears(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		_, _ = svc.Add(p, q, "task", 512)
		m, _, ok, _ := svc.Receive(p, q, 10*time.Second)
		if !ok {
			t.Error("first receive failed")
			return
		}
		// Hidden: second receive sees nothing.
		_, _, ok, _ = svc.Receive(p, q, 10*time.Second)
		if ok {
			t.Error("received a hidden message")
		}
		// After visibility expires it reappears.
		p.Sleep(11 * time.Second)
		m2, _, ok, _ := svc.Receive(p, q, 10*time.Second)
		if !ok || m2.ID != m.ID {
			t.Error("message did not reappear after visibility timeout")
		}
		if m2.Dequeues != 2 {
			t.Errorf("dequeues = %d, want 2", m2.Dequeues)
		}
	})
	eng.Run()
}

func TestStaleReceiptConflict(t *testing.T) {
	// The slow-consumer hazard of Section 5.2: a task that overruns its
	// visibility loses its receipt to the next consumer.
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		_, _ = svc.Add(p, q, "task", 512)
		_, r1, _, _ := svc.Receive(p, q, 5*time.Second)
		p.Sleep(6 * time.Second) // overrun
		_, r2, ok, _ := svc.Receive(p, q, 5*time.Second)
		if !ok {
			t.Error("second consumer did not get the reappeared message")
			return
		}
		if err := svc.Delete(p, q, r1); !storerr.IsCode(err, storerr.CodeConflict) {
			t.Errorf("stale receipt delete = %v, want Conflict", err)
		}
		if err := svc.Delete(p, q, r2); err != nil {
			t.Errorf("fresh receipt delete: %v", err)
		}
	})
	eng.Run()
}

func TestDeleteMissing(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		err := svc.Delete(p, q, Receipt{MsgID: 42})
		if !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("delete missing = %v", err)
		}
	})
	eng.Run()
}

func TestVisibilityClampedToMax(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		_, _ = svc.Add(p, q, "m", 512)
		_, _, ok, _ := svc.Receive(p, q, 48*time.Hour) // beyond the 2h max
		if !ok {
			t.Error("receive failed")
			return
		}
		p.Sleep(2*time.Hour + time.Minute)
		_, _, ok, _ = svc.Receive(p, q, time.Minute)
		if !ok {
			t.Error("message not reappeared after the 2h visibility cap")
		}
	})
	eng.Run()
}

func TestFIFOAcrossConsumers(t *testing.T) {
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	var got []string
	eng.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			_, _ = svc.Add(p, q, fmt.Sprintf("m%d", i), 512)
		}
	})
	eng.Spawn("consumer", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		for {
			m, r, ok, _ := svc.Receive(p, q, time.Minute)
			if !ok {
				return
			}
			got = append(got, m.Body)
			_ = svc.Delete(p, q, r)
		}
	})
	eng.Run()
	if len(got) != 6 {
		t.Fatalf("consumed %d messages, want 6", len(got))
	}
	for i, b := range got {
		if b != fmt.Sprintf("m%d", i) {
			t.Fatalf("order = %v", got)
		}
	}
}

// queueRate runs the Fig. 3 protocol: n closed-loop clients doing ops
// against one queue; returns mean per-client ops/s.
func queueRate(t *testing.T, clients, opsEach int, op func(p *sim.Proc, svc *Service, q *Queue) error) float64 {
	t.Helper()
	eng, svc := newSvc()
	q := svc.CreateQueue("q")
	q.Prefill(clients*opsEach+1000, 512)
	var ops int
	var busy time.Duration
	for c := 0; c < clients; c++ {
		eng.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < opsEach; i++ {
				if err := op(p, svc, q); err != nil {
					t.Errorf("op: %v", err)
					return
				}
				ops++
			}
			busy += p.Now() - start
		})
	}
	eng.Run()
	// busy sums per-client elapsed time, so this is the per-client rate.
	return float64(ops) / busy.Seconds()
}

func addOp(p *sim.Proc, svc *Service, q *Queue) error {
	_, err := svc.Add(p, q, "x", 512)
	return err
}

func peekOp(p *sim.Proc, svc *Service, q *Queue) error {
	_, _, err := svc.Peek(p, q)
	return err
}

func recvOp(p *sim.Proc, svc *Service, q *Queue) error {
	_, _, _, err := svc.Receive(p, q, time.Hour)
	return err
}

func TestFig3AddPeaksAt64(t *testing.T) {
	a1 := queueRate(t, 1, 80, addOp)
	a64 := queueRate(t, 64, 40, addOp) * 64
	a192 := queueRate(t, 192, 30, addOp) * 192
	// Single client 15-20 ops/s; aggregate peak ~569 ops/s at 64.
	if a1 < 14 || a1 > 21 {
		t.Fatalf("1-client add = %.1f ops/s, want 15-20", a1)
	}
	if math.Abs(a64-569) > 60 {
		t.Fatalf("64-client add aggregate = %.1f, want ~569", a64)
	}
	if a192 >= a64 {
		t.Fatalf("add aggregate did not decline past 64: %.1f vs %.1f", a192, a64)
	}
}

func TestFig3ReceivePeaksAt64(t *testing.T) {
	r64 := queueRate(t, 64, 40, recvOp) * 64
	r192 := queueRate(t, 192, 30, recvOp) * 192
	if math.Abs(r64-424) > 50 {
		t.Fatalf("64-client receive aggregate = %.1f, want ~424", r64)
	}
	if r192 >= r64 {
		t.Fatalf("receive aggregate did not decline past 64: %.1f vs %.1f", r192, r64)
	}
}

func TestFig3PeekKeepsScaling(t *testing.T) {
	p128 := queueRate(t, 128, 40, peekOp) * 128
	p192 := queueRate(t, 192, 30, peekOp) * 192
	if p192 <= p128 {
		t.Fatalf("peek aggregate not rising 128→192: %.1f vs %.1f", p128, p192)
	}
	if math.Abs(p192-3878) > 450 {
		t.Fatalf("192-client peek aggregate = %.1f, want ~3878", p192)
	}
	if math.Abs(p128-3392) > 450 {
		t.Fatalf("128-client peek aggregate = %.1f, want ~3392", p128)
	}
}

func TestFig3ReceiveSlowerThanAdd(t *testing.T) {
	// "message retrieval was more affected by concurrency than message put"
	a32 := queueRate(t, 32, 40, addOp)
	r32 := queueRate(t, 32, 40, recvOp)
	if r32 >= a32 {
		t.Fatalf("receive (%.1f) not slower than add (%.1f) at 32 clients", r32, a32)
	}
	if a32 < 10 {
		t.Fatalf("32-writer per-client add = %.1f, want >10 (Section 6.1)", a32)
	}
}

func TestQueueDepthInvariance(t *testing.T) {
	// Paper: no performance variation from 200k to 2M messages. We compare
	// 20k vs 200k prefill at modest concurrency.
	rate := func(prefill int) float64 {
		eng, svc := newSvc()
		q := svc.CreateQueue("q")
		q.Prefill(prefill, 512)
		var ops int
		var busy time.Duration
		for c := 0; c < 8; c++ {
			eng.Spawn("client", func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < 40; i++ {
					if err := recvOp(p, svc, q); err != nil {
						t.Errorf("op: %v", err)
					}
					ops++
				}
				busy += p.Now() - start
			})
		}
		eng.Run()
		return float64(ops) / busy.Seconds()
	}
	small, large := rate(20000), rate(200000)
	if math.Abs(small-large)/small > 0.1 {
		t.Fatalf("queue depth affected rate: %.1f vs %.1f ops/s", small, large)
	}
}

func TestGetQueue(t *testing.T) {
	_, svc := newSvc()
	svc.CreateQueue("a")
	if _, ok := svc.GetQueue("a"); !ok {
		t.Fatal("existing queue not found")
	}
	if _, ok := svc.GetQueue("b"); ok {
		t.Fatal("missing queue found")
	}
	// CreateQueue is idempotent.
	q1 := svc.CreateQueue("a")
	q2 := svc.CreateQueue("a")
	if q1 != q2 {
		t.Fatal("CreateQueue not idempotent")
	}
}

func TestFaultInjection(t *testing.T) {
	eng := sim.NewEngine()
	svc := New(eng, simrand.New(1), Config{ConnFailProb: 1})
	q := svc.CreateQueue("q")
	eng.Spawn("c", func(p *sim.Proc) {
		if _, err := svc.Add(p, q, "m", 1); !storerr.IsCode(err, storerr.CodeConnection) {
			t.Errorf("add under conn failure = %v", err)
		}
	})
	eng.Run()
}
