package queuesvc

import (
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

type qObs struct {
	at   time.Duration
	code storerr.Code
	id   uint64
	ok   bool
}

// TestReqFlatTraceMatchesBlocking runs the same queue workload — add, peek,
// receive, delete, visibility overrun, stale-receipt conflict — once on the
// blocking API and once flat, and checks per-op completion instants,
// outcomes, events fired and the final clock match exactly.
func TestReqFlatTraceMatchesBlocking(t *testing.T) {
	runBlocking := func() (trace []qObs, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		q := svc.CreateQueue("q")
		eng.Spawn("c", func(p *sim.Proc) {
			rec := func(id uint64, ok bool, err error) {
				trace = append(trace, qObs{p.Now(), storerr.CodeOf(err), id, ok})
			}
			id, err := svc.Add(p, q, "m1", 512)
			rec(id, err == nil, err)
			id, err = svc.Add(p, q, "m2", 2048)
			rec(id, err == nil, err)

			m, ok, err := svc.Peek(p, q)
			rec(msgID(m), ok, err)

			m, r1, ok, err := svc.Receive(p, q, 5*time.Second)
			rec(msgID(m), ok, err)

			err = svc.Delete(p, q, r1)
			rec(0, err == nil, err)
			err = svc.Delete(p, q, r1) // already deleted → NotFound
			rec(0, err == nil, err)

			// Overrun: receive m2 with a short window, let it reappear, then
			// present the stale receipt.
			m, r2, ok, err := svc.Receive(p, q, 5*time.Second)
			rec(msgID(m), ok, err)
			p.Sleep(6 * time.Second)
			m, r3, ok, err := svc.Receive(p, q, time.Minute)
			rec(msgID(m), ok, err)
			err = svc.Delete(p, q, r2) // stale → Conflict
			rec(0, err == nil, err)
			err = svc.Delete(p, q, r3)
			rec(0, err == nil, err)

			m, ok, err = svc.Peek(p, q) // empty: ok=false, err=nil
			rec(msgID(m), ok, err)
		})
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	runFlat := func() (trace []qObs, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		q := svc.CreateQueue("q")
		var a sim.Actor
		a.Bind(eng, "c")
		r := svc.NewReqFlat()

		var rcpt1, rcpt2, rcpt3 Receipt
		var steps []func()
		step := 0
		next := func() {
			step++
			if step < len(steps) {
				steps[step]()
			} else {
				a.Finish()
			}
		}
		rec := func(id uint64, ok bool, err error) {
			trace = append(trace, qObs{a.Now(), storerr.CodeOf(err), id, ok})
		}
		addDone := func(id uint64, err error) { rec(id, err == nil, err); next() }
		peekDone := func(m *Message, ok bool, err error) { rec(msgID(m), ok, err); next() }
		delDone := func(err error) { rec(0, err == nil, err); next() }
		steps = []func(){
			func() { r.BeginAdd(&a, q, "m1", 512, addDone) },
			func() { r.BeginAdd(&a, q, "m2", 2048, addDone) },
			func() { r.BeginPeek(&a, q, peekDone) },
			func() {
				r.BeginReceive(&a, q, 5*time.Second, func(m *Message, rc Receipt, ok bool, err error) {
					rcpt1 = rc
					rec(msgID(m), ok, err)
					next()
				})
			},
			func() { r.BeginDelete(&a, q, rcpt1, delDone) },
			func() { r.BeginDelete(&a, q, rcpt1, delDone) },
			func() {
				r.BeginReceive(&a, q, 5*time.Second, func(m *Message, rc Receipt, ok bool, err error) {
					rcpt2 = rc
					rec(msgID(m), ok, err)
					a.Sleep(6*time.Second, next)
				})
			},
			func() {
				r.BeginReceive(&a, q, time.Minute, func(m *Message, rc Receipt, ok bool, err error) {
					rcpt3 = rc
					rec(msgID(m), ok, err)
					next()
				})
			},
			func() { r.BeginDelete(&a, q, rcpt2, delDone) },
			func() { r.BeginDelete(&a, q, rcpt3, delDone) },
			func() { r.BeginPeek(&a, q, peekDone) },
		}
		a.Go(steps[0])
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	bt, bf, be := runBlocking()
	ft, ff, fe := runFlat()
	if bf != ff || be != fe {
		t.Fatalf("blocking (fired=%d end=%v) != flat (fired=%d end=%v)", bf, be, ff, fe)
	}
	if len(bt) != len(ft) {
		t.Fatalf("trace lengths: blocking %d, flat %d", len(bt), len(ft))
	}
	for i := range bt {
		if bt[i] != ft[i] {
			t.Fatalf("op %d: blocking %+v != flat %+v", i, bt[i], ft[i])
		}
	}
	// Pin the interesting outcomes so the workload keeps covering them.
	if bt[5].code != storerr.CodeNotFound {
		t.Fatalf("double delete code = %q, want NotFound", bt[5].code)
	}
	if bt[8].code != storerr.CodeConflict {
		t.Fatalf("stale receipt code = %q, want Conflict", bt[8].code)
	}
	if last := bt[len(bt)-1]; last.ok || last.code != "" {
		t.Fatalf("empty peek = %+v, want ok=false err=nil", last)
	}
}

func msgID(m *Message) uint64 {
	if m == nil {
		return 0
	}
	return m.ID
}

// TestReceiptWireRoundTrip pins the wire encoding of pop receipts.
func TestReceiptWireRoundTrip(t *testing.T) {
	r := Receipt{MsgID: 42, token: 7}
	if r.String() != "42.7" {
		t.Fatalf("String() = %q, want 42.7", r.String())
	}
	got, ok := ParseReceipt("42.7")
	if !ok || got != r {
		t.Fatalf("ParseReceipt = %+v ok=%v", got, ok)
	}
	for _, bad := range []string{"", "42", "42.", ".7", "x.7", "42.y", "4 2.7"} {
		if _, ok := ParseReceipt(bad); ok {
			t.Fatalf("ParseReceipt(%q) accepted", bad)
		}
	}
}
