package queuesvc

import (
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
)

// qop selects which queue operation a flat request runs.
type qop int

const (
	qAdd qop = iota
	qPeek
	qReceive
	qDelete
)

// ReqFlat is caller-owned flat-mode state for the queue ops: the blocking
// bodies compiled into continuations on the caller's actor. The queue
// service runs every client through one service-level pipeline, so each
// flat client owns a ReqFlat (one outstanding request at a time) and reuses
// it for every op it ever issues.
//
// Stage order replicates the blocking twins verbatim: admission (the queue
// pipeline has no request-latency stage, so no wake is scheduled there),
// the op's station visit, then the op body at the visit's end — Receive
// selects and hides its message in that same atomic instant, before the
// payload download, exactly as the blocking form does, so flat and blocking
// consumers never race differently for the same message.
type ReqFlat struct {
	svc *Service
	a   *sim.Actor
	c   reqpath.CtxFlat

	op         qop
	q          *Queue
	body       string
	size       int
	visibility time.Duration
	m          *Message
	rcpt       Receipt

	addDone  func(id uint64, err error)
	peekDone func(msg *Message, ok bool, err error)
	recvDone func(msg *Message, rcpt Receipt, ok bool, err error)
	delDone  func(err error)

	afterVisit    func() // cached: runs when the station visit's sleep ends
	afterDownload func() // cached: runs when the payload download ends
}

// NewReqFlat builds flat request state against the service.
func (s *Service) NewReqFlat() *ReqFlat {
	r := &ReqFlat{svc: s}
	r.afterVisit = r.visited
	r.afterDownload = r.downloaded
	return r
}

// Init prepares an embedded (zero-value) ReqFlat in place.
func (r *ReqFlat) Init(s *Service) {
	if r.svc != nil {
		panic("queuesvc: ReqFlat initialised twice")
	}
	r.svc = s
	r.afterVisit = r.visited
	r.afterDownload = r.downloaded
}

// BeginAdd issues one flat Add on actor a, as Add; done receives the new
// message's id.
func (r *ReqFlat) BeginAdd(a *sim.Actor, q *Queue, body string, size int, done func(id uint64, err error)) {
	r.addDone = done
	if size < len(body) {
		size = len(body)
	}
	r.q, r.body, r.size = q, body, size
	if !r.begin(a, qAdd, "queue.Add") {
		return
	}
	r.a.Sleep(r.svc.add.BeginVisit(r.c.UploadCost(size)), r.afterVisit)
}

// BeginPeek issues one flat Peek on actor a, as Peek: ok=false with a nil
// error when no message is visible.
func (r *ReqFlat) BeginPeek(a *sim.Actor, q *Queue, done func(msg *Message, ok bool, err error)) {
	r.peekDone = done
	r.q = q
	if !r.begin(a, qPeek, "queue.Peek") {
		return
	}
	r.a.Sleep(r.svc.peek.BeginVisit(0), r.afterVisit)
}

// BeginReceive issues one flat Receive on actor a, as Receive (visibility
// zero means the service default; values above MaxVisibility clamp).
func (r *ReqFlat) BeginReceive(a *sim.Actor, q *Queue, visibility time.Duration, done func(msg *Message, rcpt Receipt, ok bool, err error)) {
	r.recvDone = done
	if visibility <= 0 {
		visibility = r.svc.cfg.DefaultVisibility
	}
	if visibility > r.svc.cfg.MaxVisibility {
		visibility = r.svc.cfg.MaxVisibility
	}
	r.q, r.visibility = q, visibility
	if !r.begin(a, qReceive, "queue.Receive") {
		return
	}
	r.a.Sleep(r.svc.receive.BeginVisit(0), r.afterVisit)
}

// BeginDelete issues one flat Delete on actor a, as Delete.
func (r *ReqFlat) BeginDelete(a *sim.Actor, q *Queue, rcpt Receipt, done func(err error)) {
	r.delDone = done
	r.q, r.rcpt = q, rcpt
	if !r.begin(a, qDelete, "queue.Delete") {
		return
	}
	r.a.Sleep(r.svc.del.BeginVisit(0), r.afterVisit)
}

// begin runs admission; it reports whether the request is still alive.
func (r *ReqFlat) begin(a *sim.Actor, op qop, name string) bool {
	if r.a != nil {
		panic("queuesvc: ReqFlat already has a request in flight")
	}
	r.a, r.op = a, op
	r.c.Begin(r.svc.pl, name, a.Now())
	if _, _, err := r.c.AdmitPre(); err != nil {
		r.finish(err)
		return false
	}
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return false
	}
	return true
}

func (r *ReqFlat) visited() {
	s, q, now := r.svc, r.q, r.a.Now()
	switch r.op {
	case qAdd:
		s.add.EndVisit()
		q.nextID++
		m := &Message{ID: q.nextID, Body: r.body, Size: r.size, Inserted: now}
		m.elem = q.msgs.PushBack(m)
		q.byID[m.ID] = m
		r.m = m
		r.finish(nil)
	case qPeek:
		s.peek.EndVisit()
		m := q.firstVisible(now)
		if m == nil {
			r.finish(nil)
			return
		}
		r.m = m
		r.a.Sleep(r.c.DownloadCost(m.Size), r.afterDownload)
	case qReceive:
		s.receive.EndVisit()
		m := q.firstVisible(now)
		if m == nil {
			r.finish(nil)
			return
		}
		m.visibleAt = now + r.visibility
		m.Dequeues++
		q.nextReceipt++
		m.receipt = q.nextReceipt
		r.m, r.rcpt = m, Receipt{MsgID: m.ID, token: q.nextReceipt}
		r.a.Sleep(r.c.DownloadCost(m.Size), r.afterDownload)
	case qDelete:
		s.del.EndVisit()
		m, ok := q.byID[r.rcpt.MsgID]
		if !ok || m.deleted {
			r.finish(r.c.Failf(storerr.CodeNotFound, "message %d", r.rcpt.MsgID))
			return
		}
		if m.receipt != r.rcpt.token {
			r.finish(r.c.Failf(storerr.CodeConflict, "stale receipt for message %d", m.ID))
			return
		}
		m.deleted = true
		q.msgs.Remove(m.elem)
		delete(q.byID, m.ID)
		r.finish(nil)
	}
}

func (r *ReqFlat) downloaded() { r.finish(nil) }

func (r *ReqFlat) finish(err error) {
	op, m, rcpt := r.op, r.m, r.rcpt
	addDone, peekDone, recvDone, delDone := r.addDone, r.peekDone, r.recvDone, r.delDone
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the next op immediately.
	r.a, r.q, r.m = nil, nil, nil
	r.body, r.rcpt = "", Receipt{}
	r.addDone, r.peekDone, r.recvDone, r.delDone = nil, nil, nil, nil
	switch op {
	case qAdd:
		var id uint64
		if err == nil && m != nil {
			id = m.ID
		}
		addDone(id, err)
	case qPeek:
		if err != nil {
			m = nil
		}
		peekDone(m, m != nil, err)
	case qReceive:
		if err != nil {
			m, rcpt = nil, Receipt{}
		}
		recvDone(m, rcpt, m != nil, err)
	case qDelete:
		delDone(err)
	}
}
