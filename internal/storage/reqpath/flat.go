package reqpath

import (
	"time"

	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

// CtxFlat is the flat-actor counterpart of Ctx: one in-flight request whose
// stages run as caller continuations instead of blocking a process. Services
// embed one in their per-session (or per-client) flat request state, so a
// steady-state request allocates nothing.
//
// Stage order and random-stream usage mirror Do/admit exactly — the same
// draws from the same streams in the same order — which is what makes a flat
// request trace-identical to its goroutine twin. The split is:
//
//	Begin → AdmitPre → [sleep the returned latency] → AdmitPost →
//	service body stages (Failf / ReadFault / CorruptRead / transfers) →
//	Finish
//
// where the caller owns the sleep (via its Actor) and the transfer (via
// netsim.TransferFlat).
type CtxFlat struct {
	pl    *Pipeline
	Op    string
	start time.Duration
}

// Begin arms the context for one request starting at virtual time now.
func (c *CtxFlat) Begin(pl *Pipeline, op string, now time.Duration) {
	c.pl, c.Op, c.start = pl, op, now
}

// AdmitPre is the admission half before the request-latency sleep: the
// outage gate, the conn-fail stage, then the latency draw. On success it
// returns the admission latency the caller must sleep before AdmitPost;
// hasSleep is false when the pipeline has no latency stage (the caller must
// then proceed to AdmitPost without scheduling a wake, as admit would).
func (c *CtxFlat) AdmitPre() (sleep time.Duration, hasSleep bool, err error) {
	pl := c.pl
	switch pl.hs.outage {
	case OutageBlackout:
		return 0, false, c.fail(FaultConn, "service blackout")
	case OutageBrownout:
		if pl.outage.Hit(BrownoutBusyProb) {
			return 0, false, c.fail(FaultBusy, "service brownout")
		}
	}
	if hit(pl.conn, pl.faultPlan().ConnFailProb) {
		return 0, false, c.fail(FaultConn, "connection reset")
	}
	if pl.cfg.Latency != nil {
		return simrand.Duration(pl.cfg.Latency, pl.latency), true, nil
	}
	return 0, false, nil
}

// AdmitPost is the admission half after the request-latency sleep: the
// server-busy stage.
func (c *CtxFlat) AdmitPost() error {
	if hit(c.pl.busy, c.pl.faultPlan().ServerBusyProb) {
		return c.fail(FaultBusy, "throttled")
	}
	return nil
}

// fail issues the ReplyStage mapping for an injected fault.
func (c *CtxFlat) fail(f Fault, msg string) error {
	return storerr.New(f.Code(), c.Op, msg)
}

// Failf builds a service-semantic error (not-found, conflict, ...) carrying
// the request's op.
func (c *CtxFlat) Failf(code storerr.Code, format string, args ...any) error {
	return storerr.Newf(code, c.Op, format, args...)
}

// ReadFault applies the server-side read-failure stage, as Ctx.ReadFault.
func (c *CtxFlat) ReadFault() error {
	if hit(c.pl.read, c.pl.faultPlan().ReadFailProb) {
		return c.fail(FaultRead, "read failed server-side")
	}
	return nil
}

// CorruptRead applies the post-download integrity stage, as Ctx.CorruptRead.
func (c *CtxFlat) CorruptRead(format string, args ...any) error {
	if hit(c.pl.corrupt, c.pl.faultPlan().CorruptReadProb) {
		return storerr.Newf(FaultCorrupt.Code(), c.Op, format, args...)
	}
	return nil
}

// Sample draws a duration from dist on the pipeline's latency stream, as
// Ctx.Sample — same stream, same draw order.
func (c *CtxFlat) Sample(dist simrand.Dist) time.Duration {
	return simrand.Duration(dist, c.pl.latency)
}

// TimeoutHit draws the timeout-stage Bernoulli trial, consuming exactly
// what Ctx.TimeoutFault's gate would. On a hit the caller must sleep
// ServerTimeout on its actor and finish with TimeoutErrf — the flat split
// of TimeoutFault's burn-then-fail.
func (c *CtxFlat) TimeoutHit(prob float64) bool {
	return hit(c.pl.timeout, prob)
}

// TimeoutErrf builds the timeout reply issued after the ServerTimeout
// burn, as Ctx.Timeout's error half.
func (c *CtxFlat) TimeoutErrf(format string, args ...any) error {
	return storerr.Newf(FaultTimeout.Code(), c.Op, format, args...)
}

// ServerTimeout returns the configured server-side deadline the caller
// must burn before delivering a timeout reply.
func (c *CtxFlat) ServerTimeout() time.Duration { return c.pl.cfg.ServerTimeout }

// UploadCost prices a size-byte client→service payload, as Ctx.UploadCost.
func (c *CtxFlat) UploadCost(size int) time.Duration {
	return bwCost(size, c.pl.cfg.UploadBW)
}

// DownloadCost prices a size-byte service→client payload, as
// Ctx.DownloadCost.
func (c *CtxFlat) DownloadCost(size int) time.Duration {
	return bwCost(size, c.pl.cfg.DownloadBW)
}

// Finish delivers the completed request to the pipeline's hooks; now is the
// completion instant and err the request's outcome (nil on success). It is
// the flat counterpart of Do's hook loop and must run exactly once per
// Begin, before the caller's own completion callback.
func (c *CtxFlat) Finish(now time.Duration, err error) {
	for _, h := range c.pl.hs.hooks {
		h(Event{Service: c.pl.cfg.Service, Op: c.Op, Start: c.start, Latency: now - c.start, Err: err})
	}
}
