package reqpath

import (
	"math"
	"testing"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

// FuzzFaultConfig drives a pipeline built from an arbitrary — including
// non-finite — fault mix and asserts the two totality properties the storage
// services rely on: Clamp always lands every probability in [0, 1], and a
// pipeline built from any raw mix never panics, failing only with typed
// storage errors.
func FuzzFaultConfig(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, uint64(1))
	f.Add(1.0, 1.0, 1.0, 1.0, uint64(2))
	f.Add(0.5, 0.25, 0.125, 0.0625, uint64(3))
	f.Add(-1.0, 2.0, math.Inf(1), math.NaN(), uint64(4))
	f.Add(1e308, -1e308, 1e-300, -0.0, uint64(5))
	f.Fuzz(func(t *testing.T, conn, busy, read, corrupt float64, seed uint64) {
		raw := FaultConfig{
			ConnFailProb:    conn,
			ServerBusyProb:  busy,
			ReadFailProb:    read,
			CorruptReadProb: corrupt,
		}
		cl := raw.Clamp()
		for _, p := range []float64{cl.ConnFailProb, cl.ServerBusyProb, cl.ReadFailProb, cl.CorruptReadProb} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("Clamp(%+v) left probability %v outside [0,1]", raw, p)
			}
		}

		// The raw (unclamped) mix goes straight into New: construction clamps.
		pl := New(simrand.New(seed), Config{Service: "fuzz", Faults: raw})
		eng := sim.NewEngine()
		eng.Spawn("req", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				err := pl.Do(p, "fuzz.op", func(c *Ctx) error {
					if err := c.ReadFault(); err != nil {
						return err
					}
					return c.CorruptRead("fuzzed corrupt read")
				})
				if err != nil && storerr.CodeOf(err) == "" {
					t.Errorf("untyped pipeline error: %v", err)
				}
			}
		})
		eng.Run()
	})
}
