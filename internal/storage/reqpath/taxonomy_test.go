package reqpath_test

import (
	"testing"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/sim"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// TestFaultTaxonomyUniformAcrossServices is the cross-layer contract of the
// ReplyStage: every service answers a given injected fault class with the
// same storerr code, and the azure client's RetryPolicy classifies that code
// the same way no matter which service produced it. A service-semantic
// failure (blob not-found) rides along as the non-retryable control.
func TestFaultTaxonomyUniformAcrossServices(t *testing.T) {
	var qref *queuesvc.Queue
	type svcCase struct {
		name string
		// run performs one op on a cloud configured with the case's faults.
		run func(c *azure.Cloud, p *sim.Proc) error
	}
	services := []svcCase{
		{"blob", func(c *azure.Cloud, p *sim.Proc) error {
			_, err := c.Blob.NewSession(0).Get(p, "d", "b")
			return err
		}},
		{"table", func(c *azure.Cloud, p *sim.Proc) error {
			return c.Table.Insert(p, "t", tablesvc.PaddedEntity("pk", "rk", 256))
		}},
		{"queue", func(c *azure.Cloud, p *sim.Proc) error {
			_, err := c.Queue.Add(p, qref, "m", 64)
			return err
		}},
		{"sql", func(c *azure.Cloud, p *sim.Proc) error {
			conn, err := c.SQL.Open(p, "db", 0)
			if err == nil {
				conn.Close()
			}
			return err
		}},
	}
	cases := []struct {
		name      string
		faults    reqpath.FaultConfig
		code      storerr.Code
		retryable bool
		// only restricts the case to services whose request path includes
		// the stage (read/corrupt are download stages: blob only).
		only string
	}{
		{"conn-fail", reqpath.FaultConfig{ConnFailProb: 1}, storerr.CodeConnection, true, ""},
		{"server-busy", reqpath.FaultConfig{ServerBusyProb: 1}, storerr.CodeServerBusy, true, ""},
		{"read-fail", reqpath.FaultConfig{ReadFailProb: 1}, storerr.CodeTimeout, true, "blob"},
		{"corrupt-read", reqpath.FaultConfig{CorruptReadProb: 1}, storerr.CodeCorruptRead, true, "blob"},
		{"not-found", reqpath.FaultConfig{}, storerr.CodeNotFound, false, "blob"},
	}
	for _, tc := range cases {
		for _, svc := range services {
			if tc.only != "" && tc.only != svc.name {
				continue
			}
			t.Run(tc.name+"/"+svc.name, func(t *testing.T) {
				cfg := azure.Config{Seed: 9, Faults: tc.faults}
				c := azure.NewCloud(cfg)
				if tc.code != storerr.CodeNotFound {
					c.Blob.Seed("d", "b", 512)
				}
				c.Table.CreateTable("t")
				qref = c.Queue.CreateQueue("q")
				c.SQL.CreateDatabase("db", 0)
				c.Engine.Spawn("op", func(p *sim.Proc) {
					err := svc.run(c, p)
					if !storerr.IsCode(err, tc.code) {
						t.Errorf("%s under %s: got %v, want code %s", svc.name, tc.name, err, tc.code)
						return
					}
					if got := storerr.IsRetryable(err); got != tc.retryable {
						t.Errorf("%s %s: IsRetryable = %v, want %v", svc.name, tc.name, got, tc.retryable)
					}
					// The RetryPolicy must act on that classification: a
					// retryable fault burns every attempt, a fatal one stops
					// at the first.
					rp := azure.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond, Multiplier: 1}
					attempts := 0
					rp.Do(p, func() error {
						attempts++
						return svc.run(c, p)
					})
					want := 1
					if tc.retryable {
						want = 3
					}
					if attempts != want {
						t.Errorf("%s %s: RetryPolicy made %d attempts, want %d", svc.name, tc.name, attempts, want)
					}
				})
				c.Engine.Run()
			})
		}
	}
}
