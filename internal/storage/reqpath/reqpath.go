// Package reqpath is the shared request pipeline of the simulated storage
// services. Every storage operation — blob, table, queue and SQL — flows
// through the same conceptual path the paper's measurements exercise:
//
//	admission (fault injection + request latency) →
//	service work (station contention, payload transfer, service faults) →
//	reply (uniform storerr taxonomy) →
//	hooks (per-request observation)
//
// The pipeline packages that path as composable stages so a service's op
// methods contain only semantics (lookups, state changes), never fault or
// transfer plumbing:
//
//   - FaultStage: conn-fail / server-busy on admission, read-fail /
//     corrupt-read / overload-timeout inside the body, each gated by a
//     per-op probability.
//   - StationStage: contention at a station.Station.
//   - TransferStage: payload cost, either through a netsim fabric path or a
//     fixed per-connection bandwidth.
//   - ReplyStage: the single Fault → storerr.Code mapping every service
//     shares, so the azure client's RetryPolicy classifies faults from any
//     service identically.
//
// Determinism: every stage draws from its own named simrand stream (forked
// as "reqpath/<stage>"), and disabled stages (probability 0 or 1) draw
// nothing. Enabling a fault on one stage therefore never perturbs the draws
// of another stage, and adding fault injection to one service never shifts
// another service's trace.
package reqpath

import (
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// Fault identifies an injected fault class.
type Fault int

// Fault classes injected by the pipeline (Table 2's transient categories).
const (
	// FaultConn is a transport failure before the request lands.
	FaultConn Fault = iota
	// FaultBusy is the throttling reply of an overloaded service.
	FaultBusy
	// FaultRead is a server-side read failure, surfaced as a timeout.
	FaultRead
	// FaultCorrupt is a client-side integrity failure after a download.
	FaultCorrupt
	// FaultTimeout is a server-side deadline expiry.
	FaultTimeout
)

// Code is the ReplyStage: the single mapping from injected fault classes to
// the storerr taxonomy. All services answer a given fault with the same
// code, which is what lets the azure RetryPolicy treat them uniformly.
func (f Fault) Code() storerr.Code {
	switch f {
	case FaultConn:
		return storerr.CodeConnection
	case FaultBusy:
		return storerr.CodeServerBusy
	case FaultRead, FaultTimeout:
		return storerr.CodeTimeout
	case FaultCorrupt:
		return storerr.CodeCorruptRead
	}
	return storerr.CodeInternal
}

// Outage is a service-wide health state imposed from outside the pipeline —
// the chaos engine's storage brownout/blackout windows (the paper's §5
// blob-write and SQL-connectivity incidents).
type Outage int

// Outage modes.
const (
	// OutageNone is normal service.
	OutageNone Outage = iota
	// OutageBrownout degrades the service: requests are throttled with
	// CodeServerBusy with probability BrownoutBusyProb.
	OutageBrownout
	// OutageBlackout takes the service down: every request fails immediately
	// with CodeConnection (retryable — short blackouts are absorbed by
	// client retry policies; long ones shed work, as in §5).
	OutageBlackout
)

// BrownoutBusyProb is the per-request throttle probability during a
// brownout.
const BrownoutBusyProb = 0.75

// FaultConfig is the per-service fault injection plan. All probabilities
// default to zero (no faults, no random draws).
type FaultConfig struct {
	// ConnFailProb fails a request with CodeConnection before any service
	// work happens.
	ConnFailProb float64
	// ServerBusyProb throttles a request with CodeServerBusy after the
	// request latency but before the body runs.
	ServerBusyProb float64
	// ReadFailProb fails read-class ops server-side (CodeTimeout) where the
	// service calls Ctx.ReadFault.
	ReadFailProb float64
	// CorruptReadProb corrupts downloaded payloads (CodeCorruptRead) where
	// the service calls Ctx.CorruptRead.
	CorruptReadProb float64
}

// Clamp returns the config with every probability forced into [0, 1]; NaN
// collapses to 0. New applies it, so a pipeline never sees a probability the
// Bernoulli stage cannot handle — arbitrary (fuzzer-shaped) configs are safe.
func (fc FaultConfig) Clamp() FaultConfig {
	fc.ConnFailProb = clamp01(fc.ConnFailProb)
	fc.ServerBusyProb = clamp01(fc.ServerBusyProb)
	fc.ReadFailProb = clamp01(fc.ReadFailProb)
	fc.CorruptReadProb = clamp01(fc.CorruptReadProb)
	return fc
}

func clamp01(p float64) float64 {
	switch {
	case p > 0 && p <= 1:
		return p
	case p > 1:
		return 1
	default: // ≤ 0 or NaN
		return 0
	}
}

// Event is one completed request, delivered to hooks after the reply is
// decided. Latency covers admission through body, faults included.
type Event struct {
	Service string
	Op      string
	Start   time.Duration
	Latency time.Duration
	Err     error
}

// Hook observes completed requests (metrics, oplog, client accounting).
type Hook func(Event)

// Config parameterises one service's pipeline.
type Config struct {
	// Service names the owning service in hook events ("blob", "table", ...).
	Service string
	// Faults is the fault injection plan.
	Faults FaultConfig
	// Latency, when set, is the per-request admission latency slept between
	// the conn-fail and server-busy checks (blob's RequestLatency).
	Latency simrand.Dist
	// Net carries Ctx.Transfer payloads; required only by services that
	// price transfers through the shared fabric (blob).
	Net *netsim.Fabric
	// UploadBW / DownloadBW price Ctx.Upload/Download payload costs for
	// services that model a fixed per-connection bandwidth instead of a
	// fabric path (table, queue, SQL).
	UploadBW   netsim.Bandwidth
	DownloadBW netsim.Bandwidth
	// ServerTimeout is the server-side deadline burned by Ctx.TimeoutFault
	// and Ctx.Timeout before the timeout reply is issued.
	ServerTimeout time.Duration
}

// hookSet is shared between a pipeline and all pipelines forked from it, so
// a hook installed on the service-level pipeline also observes requests on
// per-session pipelines (and vice versa), regardless of creation order. The
// outage mode lives here for the same reason: a blackout set on the
// service-level pipeline must bite every session.
type hookSet struct {
	hooks  []Hook
	outage Outage
	// faults, when non-nil, overrides the construction-time fault plan for
	// this pipeline and every fork sharing the hook set — the wire facade's
	// live fault-injection control surface. nil (the default) reads the
	// per-pipeline config, so the override costs healthy runs nothing and
	// perturbs no stream: the Bernoulli stages draw exactly as before until
	// a probability actually changes.
	faults *FaultConfig
}

// Pipeline executes requests for one service endpoint (or one session of
// it). Each fault/latency stage owns a named random stream.
type Pipeline struct {
	cfg  Config
	base *simrand.RNG
	hs   *hookSet

	conn, busy, read, corrupt, timeout, latency, outage *simrand.RNG
}

// New builds a pipeline drawing stage streams from rng. The streams are
// forked with stable "reqpath/<stage>" labels, so they are independent of
// any other fork of rng (station streams, service-internal draws).
func New(rng *simrand.RNG, cfg Config) *Pipeline {
	cfg.Faults = cfg.Faults.Clamp()
	pl := &Pipeline{cfg: cfg, base: rng, hs: &hookSet{}}
	pl.forkStages()
	return pl
}

// ForkN derives a session pipeline with its own stage streams (decorrelated
// by label and index) sharing the parent's config and hooks — blob sessions
// each carry one so concurrent clients draw independently.
func (pl *Pipeline) ForkN(label string, n int) *Pipeline {
	child := &Pipeline{cfg: pl.cfg, base: pl.base.ForkN(label, n), hs: pl.hs}
	child.forkStages()
	return child
}

func (pl *Pipeline) forkStages() {
	pl.conn = pl.base.Fork("reqpath/conn")
	pl.busy = pl.base.Fork("reqpath/busy")
	pl.read = pl.base.Fork("reqpath/read")
	pl.corrupt = pl.base.Fork("reqpath/corrupt")
	pl.timeout = pl.base.Fork("reqpath/timeout")
	pl.latency = pl.base.Fork("reqpath/latency")
	// The outage stream is always forked (label-forking never perturbs other
	// streams) but only drawn from during a brownout, so enabling chaos
	// leaves every healthy-period trace bit-identical.
	pl.outage = pl.base.Fork("reqpath/outage")
}

// AddHook installs a request observer on this pipeline and every pipeline
// sharing its hook set (ForkN parents and children).
func (pl *Pipeline) AddHook(h Hook) { pl.hs.hooks = append(pl.hs.hooks, h) }

// Config returns the pipeline's configuration.
func (pl *Pipeline) Config() Config { return pl.cfg }

// SetOutage imposes (or lifts) a service-wide outage. The mode is shared
// with every session pipeline forked from this one.
func (pl *Pipeline) SetOutage(o Outage) { pl.hs.outage = o }

// Outage returns the current service-wide outage mode.
func (pl *Pipeline) Outage() Outage { return pl.hs.outage }

// SetFaults overrides the fault plan for this pipeline and every fork
// sharing its hook set, effective for subsequent requests — the live
// injection knob behind the wire facade's /control/faults endpoint.
// Changing a probability between zero and non-zero shifts that stage's
// stream draws for later requests (as constructing the service with the
// new plan would); healthy stages stay untouched.
func (pl *Pipeline) SetFaults(fc FaultConfig) {
	fc = fc.Clamp()
	pl.hs.faults = &fc
}

// ResetFaults lifts a SetFaults override, returning every pipeline in the
// hook set to its construction-time fault plan.
func (pl *Pipeline) ResetFaults() { pl.hs.faults = nil }

// faultPlan returns the effective fault plan: the service-wide override
// when one is set, else this pipeline's own config.
func (pl *Pipeline) faultPlan() *FaultConfig {
	if pl.hs.faults != nil {
		return pl.hs.faults
	}
	return &pl.cfg.Faults
}

// hit draws a Bernoulli trial on the stage stream, consuming no randomness
// for the degenerate probabilities — a disabled stage must not perturb
// anything.
func hit(r *simrand.RNG, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Hit(p)
}

// Ctx is one in-flight request.
type Ctx struct {
	pl    *Pipeline
	P     *sim.Proc
	Op    string
	start time.Duration
}

// Do runs one request: admission (conn-fail → request latency →
// server-busy), then body, then hook delivery. The returned error is the
// body's, or the admission fault.
func (pl *Pipeline) Do(p *sim.Proc, op string, body func(*Ctx) error) error {
	c := &Ctx{pl: pl, P: p, Op: op, start: p.Now()}
	err := pl.admit(c)
	if err == nil {
		err = body(c)
	}
	for _, h := range pl.hs.hooks {
		h(Event{Service: pl.cfg.Service, Op: op, Start: c.start, Latency: p.Now() - c.start, Err: err})
	}
	return err
}

// admit is the FaultStage's admission half plus the request-latency stage,
// preceded by the outage gate.
func (pl *Pipeline) admit(c *Ctx) error {
	switch pl.hs.outage {
	case OutageBlackout:
		return c.fail(FaultConn, "service blackout")
	case OutageBrownout:
		if pl.outage.Hit(BrownoutBusyProb) {
			return c.fail(FaultBusy, "service brownout")
		}
	}
	if hit(pl.conn, pl.faultPlan().ConnFailProb) {
		return c.fail(FaultConn, "connection reset")
	}
	if pl.cfg.Latency != nil {
		c.P.Sleep(simrand.Duration(pl.cfg.Latency, pl.latency))
	}
	if hit(pl.busy, pl.faultPlan().ServerBusyProb) {
		return c.fail(FaultBusy, "throttled")
	}
	return nil
}

// fail issues the ReplyStage mapping for an injected fault.
func (c *Ctx) fail(f Fault, msg string) error {
	return storerr.New(f.Code(), c.Op, msg)
}

// Failf builds a service-semantic error (not-found, conflict, ...) carrying
// the request's op.
func (c *Ctx) Failf(code storerr.Code, format string, args ...any) error {
	return storerr.Newf(code, c.Op, format, args...)
}

// ReadFault applies the server-side read-failure stage: with ReadFailProb it
// returns the FaultRead reply, else nil.
func (c *Ctx) ReadFault() error {
	if hit(c.pl.read, c.pl.faultPlan().ReadFailProb) {
		return c.fail(FaultRead, "read failed server-side")
	}
	return nil
}

// CorruptRead applies the post-download integrity stage: with
// CorruptReadProb it returns the FaultCorrupt reply, else nil.
func (c *Ctx) CorruptRead(format string, args ...any) error {
	if hit(c.pl.corrupt, c.pl.faultPlan().CorruptReadProb) {
		return storerr.Newf(FaultCorrupt.Code(), c.Op, format, args...)
	}
	return nil
}

// TimeoutFault fails the request with probability prob, burning the
// configured ServerTimeout first — the table service's ingest-overload
// behaviour. It returns nil when the draw misses.
func (c *Ctx) TimeoutFault(prob float64, format string, args ...any) error {
	if !hit(c.pl.timeout, prob) {
		return nil
	}
	return c.Timeout(format, args...)
}

// Timeout unconditionally burns the ServerTimeout and returns the timeout
// reply — for deadlines the service has already decided are blown (slow
// scans).
func (c *Ctx) Timeout(format string, args ...any) error {
	c.P.Sleep(c.pl.cfg.ServerTimeout)
	return storerr.Newf(FaultTimeout.Code(), c.Op, format, args...)
}

// Station is the StationStage: one contended visit, with extra added to the
// sampled service time (payload transfer, replication sync).
func (c *Ctx) Station(st *station.Station, extra time.Duration) time.Duration {
	return st.Visit(c.P, extra)
}

// Transfer is the fabric TransferStage: it blocks the request for a
// size-byte transfer across the given links under max-min fair sharing.
func (c *Ctx) Transfer(size int64, links ...*netsim.Link) time.Duration {
	return c.pl.cfg.Net.Transfer(c.P, size, links...)
}

// UploadCost prices a size-byte client→service payload at the configured
// per-connection upload bandwidth.
func (c *Ctx) UploadCost(size int) time.Duration {
	return bwCost(size, c.pl.cfg.UploadBW)
}

// DownloadCost prices a size-byte service→client payload at the configured
// per-connection download bandwidth.
func (c *Ctx) DownloadCost(size int) time.Duration {
	return bwCost(size, c.pl.cfg.DownloadBW)
}

// Download blocks the request for the download cost of a size-byte payload.
func (c *Ctx) Download(size int) { c.P.Sleep(c.DownloadCost(size)) }

func bwCost(size int, bw netsim.Bandwidth) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(bw) * float64(time.Second))
}

// Sample draws a duration from dist on the pipeline's latency stream — for
// service-specific latencies (scan times, handshakes) that must not share a
// stream with fault draws.
func (c *Ctx) Sample(dist simrand.Dist) time.Duration {
	return simrand.Duration(dist, c.pl.latency)
}
