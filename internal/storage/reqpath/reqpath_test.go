package reqpath

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

func runOne(t *testing.T, pl *Pipeline, op string, body func(*Ctx) error) (time.Duration, error) {
	t.Helper()
	eng := sim.NewEngine()
	var d time.Duration
	var err error
	eng.Spawn("req", func(p *sim.Proc) {
		start := p.Now()
		err = pl.Do(p, op, body)
		d = p.Now() - start
	})
	eng.Run()
	return d, err
}

func TestAdmissionFaults(t *testing.T) {
	pl := New(simrand.New(1), Config{Service: "t", Faults: FaultConfig{ConnFailProb: 1}})
	_, err := runOne(t, pl, "t.op", func(*Ctx) error { return nil })
	if !storerr.IsCode(err, storerr.CodeConnection) {
		t.Fatalf("conn fault = %v", err)
	}

	pl = New(simrand.New(1), Config{Service: "t", Faults: FaultConfig{ServerBusyProb: 1}})
	_, err = runOne(t, pl, "t.op", func(*Ctx) error { return nil })
	if !storerr.IsCode(err, storerr.CodeServerBusy) {
		t.Fatalf("busy fault = %v", err)
	}

	// Conn failure precedes the request latency: the transport never carried
	// the request, so no time elapses.
	pl = New(simrand.New(1), Config{
		Service: "t",
		Faults:  FaultConfig{ConnFailProb: 1},
		Latency: simrand.Const(0.5),
	})
	d, _ := runOne(t, pl, "t.op", func(*Ctx) error { return nil })
	if d != 0 {
		t.Fatalf("conn fault elapsed %v, want 0", d)
	}
}

func TestBodyStages(t *testing.T) {
	pl := New(simrand.New(1), Config{Service: "t", Faults: FaultConfig{ReadFailProb: 1}})
	_, err := runOne(t, pl, "t.op", func(c *Ctx) error { return c.ReadFault() })
	if !storerr.IsCode(err, storerr.CodeTimeout) {
		t.Fatalf("read fault = %v", err)
	}

	pl = New(simrand.New(1), Config{Service: "t", Faults: FaultConfig{CorruptReadProb: 1}})
	_, err = runOne(t, pl, "t.op", func(c *Ctx) error { return c.CorruptRead("bad payload") })
	if !storerr.IsCode(err, storerr.CodeCorruptRead) {
		t.Fatalf("corrupt fault = %v", err)
	}

	pl = New(simrand.New(1), Config{Service: "t", ServerTimeout: 3 * time.Second})
	d, err := runOne(t, pl, "t.op", func(c *Ctx) error { return c.TimeoutFault(1, "overloaded") })
	if !storerr.IsCode(err, storerr.CodeTimeout) {
		t.Fatalf("timeout fault = %v", err)
	}
	if d != 3*time.Second {
		t.Fatalf("timeout burned %v, want the 3s server deadline", d)
	}
}

func TestDisabledStagesDrawNothing(t *testing.T) {
	// Two pipelines over the same seed, one with every probability at the
	// degenerate values (0 and 1): neither degenerate gate may consume a
	// draw, so the latency sequence must match a fault-free pipeline's.
	sample := func(faults FaultConfig) []time.Duration {
		pl := New(simrand.New(7), Config{
			Service: "t",
			Faults:  faults,
			Latency: simrand.LogNormalMeanCV(0.01, 0.5),
		})
		var out []time.Duration
		eng := sim.NewEngine()
		eng.Spawn("req", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				start := p.Now()
				pl.Do(p, "t.op", func(c *Ctx) error {
					if err := c.ReadFault(); err != nil {
						return err
					}
					return c.CorruptRead("x")
				})
				out = append(out, p.Now()-start)
			}
		})
		eng.Run()
		return out
	}
	clean := sample(FaultConfig{})
	// CorruptReadProb=1 always fires but must not draw; the read stage stays
	// at 0 and must not draw either.
	faulty := sample(FaultConfig{CorruptReadProb: 1})
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("op %d: latency %v with faults vs %v clean — degenerate fault gates consumed draws", i, faulty[i], clean[i])
		}
	}
}

// TestStageStreamIndependence is the draw-order regression test: enabling a
// fault stage draws from that stage's own stream, so the latency stage's
// sequence is bit-identical whether or not faults fire.
func TestStageStreamIndependence(t *testing.T) {
	sample := func(faults FaultConfig) ([]time.Duration, int) {
		pl := New(simrand.New(11), Config{
			Service: "t",
			Faults:  faults,
			Latency: simrand.LogNormalMeanCV(0.01, 0.5),
		})
		var lats []time.Duration
		errs := 0
		eng := sim.NewEngine()
		eng.Spawn("req", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				before := p.Now()
				err := pl.Do(p, "t.op", func(c *Ctx) error { return c.ReadFault() })
				if err != nil {
					if !storerr.IsCode(err, storerr.CodeTimeout) {
						t.Errorf("op %d: unexpected %v", i, err)
					}
					errs++
					// Skip ops where admission failed before the latency
					// sleep; with only ReadFailProb set none do.
				}
				lats = append(lats, p.Now()-before)
			}
		})
		eng.Run()
		return lats, errs
	}
	clean, _ := sample(FaultConfig{})
	faulty, errs := sample(FaultConfig{ReadFailProb: 0.5})
	if errs == 0 || errs == 200 {
		t.Fatalf("read faults fired %d/200 times; want a nondegenerate count", errs)
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("op %d: latency %v with read faults vs %v without — fault stage perturbed the latency stream", i, faulty[i], clean[i])
		}
	}
}

func TestFaultRatesMatchProbabilities(t *testing.T) {
	const n = 4000
	for _, tc := range []struct {
		name   string
		faults FaultConfig
		code   storerr.Code
	}{
		{"conn", FaultConfig{ConnFailProb: 0.2}, storerr.CodeConnection},
		{"busy", FaultConfig{ServerBusyProb: 0.3}, storerr.CodeServerBusy},
	} {
		pl := New(simrand.New(5), Config{Service: "t", Faults: tc.faults})
		hits := 0
		eng := sim.NewEngine()
		eng.Spawn("req", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				if err := pl.Do(p, "t.op", func(*Ctx) error { return nil }); err != nil {
					if !storerr.IsCode(err, tc.code) {
						t.Errorf("%s: wrong code %v", tc.name, err)
					}
					hits++
				}
			}
		})
		eng.Run()
		want := tc.faults.ConnFailProb + tc.faults.ServerBusyProb
		got := float64(hits) / n
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("%s: observed rate %.4f, configured %.2f (±%.4f)", tc.name, got, want, 5*sigma)
		}
	}
}

func TestHooksSharedAcrossForks(t *testing.T) {
	pl := New(simrand.New(3), Config{Service: "t"})
	sess := pl.ForkN("session", 0)
	var events []Event
	// Installed on the parent after the fork: must still observe the child.
	pl.AddHook(func(e Event) { events = append(events, e) })
	runOne(t, sess, "t.child", func(*Ctx) error { return nil })
	runOne(t, pl, "t.parent", func(*Ctx) error { return storerr.New(storerr.CodeNotFound, "t.parent", "") })
	if len(events) != 2 || events[0].Op != "t.child" || events[1].Op != "t.parent" {
		t.Fatalf("hook events = %+v", events)
	}
	if events[0].Err != nil || !storerr.IsCode(events[1].Err, storerr.CodeNotFound) {
		t.Fatalf("hook errors = %v, %v", events[0].Err, events[1].Err)
	}
}

func TestSessionStreamsDecorrelated(t *testing.T) {
	pl := New(simrand.New(9), Config{
		Service: "t",
		Latency: simrand.LogNormalMeanCV(0.01, 0.5),
	})
	lat := func(sess *Pipeline) time.Duration {
		d, _ := runOne(t, sess, "t.op", func(*Ctx) error { return nil })
		return d
	}
	a, b := lat(pl.ForkN("session", 0)), lat(pl.ForkN("session", 1))
	if a == b {
		t.Fatalf("sessions 0 and 1 drew identical latency %v", a)
	}
	if again := lat(pl.ForkN("session", 0)); again != a {
		t.Fatalf("session 0 refork drew %v, want %v", again, a)
	}
}
