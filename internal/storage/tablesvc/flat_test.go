package tablesvc

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

type flatObs struct {
	at   time.Duration
	code storerr.Code
}

func newRNG() *simrand.RNG { return simrand.New(1) }

func rowKey(i int) string { return fmt.Sprintf("row-%04d", i) }

func sortStrings(s []string) { sort.Strings(s) }

// TestWriteFlatTraceMatchesBlocking runs the same write workload once on the
// blocking API and once flat, and checks the kernel observables that define
// a trace — per-op completion instants and outcomes, events fired, final
// clock — match exactly.
func TestWriteFlatTraceMatchesBlocking(t *testing.T) {
	ent := func(rk string, size int) *Entity { return PaddedEntity("pk", rk, size) }

	runBlocking := func() (trace []flatObs, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		svc.CreateTable("t")
		eng.Spawn("c", func(p *sim.Proc) {
			rec := func(err error) { trace = append(trace, flatObs{p.Now(), storerr.CodeOf(err)}) }
			rec(svc.Insert(p, "t", ent("rk", 4096)))
			rec(svc.Insert(p, "t", ent("rk", 4096))) // Conflict
			rec(svc.Update(p, "t", ent("rk", 1024)))
			rec(svc.Update(p, "t", ent("ghost", 256))) // NotFound
			rec(svc.Delete(p, "t", "pk", "rk"))
			rec(svc.Delete(p, "t", "pk", "rk"))        // NotFound
			rec(svc.Insert(p, "ghost", ent("rk", 64))) // NotFound (table)
		})
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	runFlat := func() (trace []flatObs, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		svc.CreateTable("t")
		var a sim.Actor
		a.Bind(eng, "c")
		var w *WriteFlat
		steps := []func(){
			func() { w.BeginInsert(&a, "t", ent("rk", 4096)) },
			func() { w.BeginInsert(&a, "t", ent("rk", 4096)) },
			func() { w.BeginUpdate(&a, "t", ent("rk", 1024)) },
			func() { w.BeginUpdate(&a, "t", ent("ghost", 256)) },
			func() { w.BeginDelete(&a, "t", "pk", "rk") },
			func() { w.BeginDelete(&a, "t", "pk", "rk") },
			func() { w.BeginInsert(&a, "ghost", ent("rk", 64)) },
		}
		step := 0
		w = svc.NewWriteFlat(func(err error) {
			trace = append(trace, flatObs{a.Now(), storerr.CodeOf(err)})
			step++
			if step < len(steps) {
				steps[step]()
			} else {
				a.Finish()
			}
		})
		a.Go(steps[0])
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	bt, bf, be := runBlocking()
	ft, ff, fe := runFlat()
	if bf != ff || be != fe {
		t.Fatalf("blocking (fired=%d end=%v) != flat (fired=%d end=%v)", bf, be, ff, fe)
	}
	if len(bt) != len(ft) {
		t.Fatalf("trace lengths: blocking %d, flat %d", len(bt), len(ft))
	}
	for i := range bt {
		if bt[i] != ft[i] {
			t.Fatalf("op %d: blocking %+v != flat %+v", i, bt[i], ft[i])
		}
	}
	wantCodes := []storerr.Code{"", storerr.CodeConflict, "", storerr.CodeNotFound, "", storerr.CodeNotFound, storerr.CodeNotFound}
	for i, c := range wantCodes {
		if bt[i].code != c {
			t.Fatalf("op %d code = %q, want %q", i, bt[i].code, c)
		}
	}
}

// TestWriteFlatOverloadTimeout drives both paths into the ingest-overload
// timeout (prob ≥ 1, so no Bernoulli draw is consumed) and checks they burn
// the same ServerTimeout, reply OperationTimedOut, and count one service
// timeout each.
func TestWriteFlatOverloadTimeout(t *testing.T) {
	cfg := Config{IngestCapacity: 1, OverloadK: 1000, ServerTimeout: 10 * time.Second}

	runBlocking := func() (code storerr.Code, end time.Duration, timeouts uint64) {
		eng := sim.NewEngine()
		svc := New(eng, newRNG(), cfg)
		svc.CreateTable("t")
		var err error
		eng.Spawn("c", func(p *sim.Proc) {
			err = svc.Insert(p, "t", PaddedEntity("pk", "rk", 65536))
		})
		eng.Run()
		return storerr.CodeOf(err), eng.Now(), svc.Timeouts()
	}

	runFlat := func() (code storerr.Code, end time.Duration, timeouts uint64) {
		eng := sim.NewEngine()
		svc := New(eng, newRNG(), cfg)
		svc.CreateTable("t")
		var a sim.Actor
		a.Bind(eng, "c")
		var got error
		w := svc.NewWriteFlat(func(err error) { got = err; a.Finish() })
		a.Go(func() { w.BeginInsert(&a, "t", PaddedEntity("pk", "rk", 65536)) })
		eng.Run()
		return storerr.CodeOf(got), eng.Now(), svc.Timeouts()
	}

	bc, be, bn := runBlocking()
	fc, fe, fn := runFlat()
	if bc != storerr.CodeTimeout {
		t.Fatalf("blocking overload code = %q, want timeout", bc)
	}
	if bc != fc || be != fe || bn != fn {
		t.Fatalf("blocking (%q end=%v timeouts=%d) != flat (%q end=%v timeouts=%d)", bc, be, bn, fc, fe, fn)
	}
	if be != 10*time.Second {
		t.Fatalf("overload burn ended at %v, want the 10s ServerTimeout", be)
	}
}

// TestQueryFlatTraceMatchesBlocking compares a property-filter scan on both
// paths: same completion instant, same events, and the same entity set (the
// flat twin returns ascending RowKey order; the blocking map walk is
// unordered, so the comparison sorts).
func TestQueryFlatTraceMatchesBlocking(t *testing.T) {
	populate := func(svc *Service) {
		svc.CreateTable("t")
		for i := 0; i < 40; i++ {
			e := PaddedEntity("pk", rowKey(i), 512)
			if i%2 == 0 {
				e.Props["A"] = IntProp(7)
			}
			svc.Backdoor("t", e)
		}
	}
	pred := func(e *Entity) bool { return e.Props["A"].Int == 7 }

	runBlocking := func() (rks []string, err error, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		populate(svc)
		var out []*Entity
		eng.Spawn("c", func(p *sim.Proc) {
			out, err = svc.QueryFilter(p, "t", "pk", pred)
		})
		eng.Run()
		for _, e := range out {
			rks = append(rks, e.RowKey)
		}
		return rks, err, eng.EventsFired(), eng.Now()
	}

	runFlat := func() (rks []string, err error, fired uint64, end time.Duration) {
		eng, svc := newSvc()
		populate(svc)
		var a sim.Actor
		a.Bind(eng, "c")
		q := svc.NewQueryFlat(func(out []*Entity, e error) {
			err = e
			for _, ent := range out {
				rks = append(rks, ent.RowKey)
			}
			a.Finish()
		})
		a.Go(func() { q.Begin(&a, "t", "pk", pred) })
		eng.Run()
		return rks, err, eng.EventsFired(), eng.Now()
	}

	brks, berr, bf, be := runBlocking()
	frks, ferr, ff, fe := runFlat()
	if berr != nil || ferr != nil {
		t.Fatalf("scan errors: blocking %v, flat %v", berr, ferr)
	}
	if bf != ff || be != fe {
		t.Fatalf("blocking (fired=%d end=%v) != flat (fired=%d end=%v)", bf, be, ff, fe)
	}
	if len(brks) != 20 || len(frks) != 20 {
		t.Fatalf("matches: blocking %d, flat %d, want 20", len(brks), len(frks))
	}
	sortStrings(brks)
	for i := range brks {
		if brks[i] != frks[i] {
			t.Fatalf("row %d: blocking %q != flat %q (flat must be rk-sorted)", i, brks[i], frks[i])
		}
	}
}

// TestQueryFlatTimeoutMatchesBlocking forces the scan over the server
// deadline on both paths and checks the identical burn, reply and counters.
func TestQueryFlatTimeoutMatchesBlocking(t *testing.T) {
	cfg := Config{ScanSecPerEntity: 1e-2, ServerTimeout: 5 * time.Second}
	populate := func(svc *Service) {
		svc.CreateTable("t")
		for i := 0; i < 5000; i++ {
			svc.Backdoor("t", PaddedEntity("pk", rowKey(i), 64))
		}
	}

	runBlocking := func() (code storerr.Code, end time.Duration, timeouts uint64, fired uint64) {
		eng := sim.NewEngine()
		svc := New(eng, newRNG(), cfg)
		populate(svc)
		var err error
		eng.Spawn("c", func(p *sim.Proc) {
			_, err = svc.QueryFilter(p, "t", "pk", func(*Entity) bool { return true })
		})
		eng.Run()
		return storerr.CodeOf(err), eng.Now(), svc.Timeouts(), eng.EventsFired()
	}

	runFlat := func() (code storerr.Code, end time.Duration, timeouts uint64, fired uint64) {
		eng := sim.NewEngine()
		svc := New(eng, newRNG(), cfg)
		populate(svc)
		var a sim.Actor
		a.Bind(eng, "c")
		var got error
		q := svc.NewQueryFlat(func(out []*Entity, err error) {
			got = err
			if out != nil {
				t.Error("timed-out scan returned entities")
			}
			a.Finish()
		})
		a.Go(func() { q.Begin(&a, "t", "pk", nil) })
		eng.Run()
		return storerr.CodeOf(got), eng.Now(), svc.Timeouts(), eng.EventsFired()
	}

	bc, be, bn, bf := runBlocking()
	fc, fe, fn, ff := runFlat()
	if bc != storerr.CodeTimeout {
		t.Fatalf("blocking scan code = %q, want timeout (mean scan 56s vs 5s deadline)", bc)
	}
	if bc != fc || be != fe || bn != fn || bf != ff {
		t.Fatalf("blocking (%q end=%v timeouts=%d fired=%d) != flat (%q end=%v timeouts=%d fired=%d)",
			bc, be, bn, bf, fc, fe, fn, ff)
	}
}
