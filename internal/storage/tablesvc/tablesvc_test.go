package tablesvc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

func newSvc() (*sim.Engine, *Service) {
	eng := sim.NewEngine()
	return eng, New(eng, simrand.New(1), Config{})
}

func TestPaddedEntitySize(t *testing.T) {
	for _, size := range []int{1024, 4096, 16384, 65536} {
		e := PaddedEntity("part", "row-000001", size)
		if e.Size() != size {
			t.Fatalf("padded entity size = %d, want %d", e.Size(), size)
		}
	}
}

func TestPropKinds(t *testing.T) {
	e := PaddedEntity("p", "r", 1024)
	if e.Props["A"].Kind != PropInt || e.Props["C"].Kind != PropString {
		t.Fatal("paper entity shape {int,int,String,String} not preserved")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateTable("t")
	eng.Spawn("c", func(p *sim.Proc) {
		e := PaddedEntity("pk", "rk", 4096)
		if err := svc.Insert(p, "t", e); err != nil {
			t.Errorf("insert: %v", err)
		}
		if err := svc.Insert(p, "t", e); !storerr.IsCode(err, storerr.CodeConflict) {
			t.Errorf("double insert = %v, want Conflict", err)
		}
		got, err := svc.Get(p, "t", "pk", "rk")
		if err != nil || got.Size() != 4096 {
			t.Errorf("get = %v, %v", got, err)
		}
		upd := PaddedEntity("pk", "rk", 1024)
		if err := svc.Update(p, "t", upd); err != nil {
			t.Errorf("update: %v", err)
		}
		got, _ = svc.Get(p, "t", "pk", "rk")
		if got.Size() != 1024 {
			t.Errorf("size after update = %d", got.Size())
		}
		if err := svc.Delete(p, "t", "pk", "rk"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, err := svc.Get(p, "t", "pk", "rk"); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("get after delete = %v", err)
		}
	})
	eng.Run()
}

func TestMissingTable(t *testing.T) {
	eng, svc := newSvc()
	eng.Spawn("c", func(p *sim.Proc) {
		if err := svc.Insert(p, "ghost", PaddedEntity("p", "r", 100)); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("insert into missing table = %v", err)
		}
	})
	eng.Run()
}

func TestUpdateMissingEntity(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateTable("t")
	eng.Spawn("c", func(p *sim.Proc) {
		if err := svc.Update(p, "t", PaddedEntity("p", "r", 100)); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("update missing = %v", err)
		}
		if err := svc.Delete(p, "t", "p", "r"); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("delete missing = %v", err)
		}
	})
	eng.Run()
}

// opsRate runs `clients` closed-loop clients doing `opsEach` operations and
// returns the mean per-client ops/s.
func opsRate(t *testing.T, clients, opsEach, entitySize int,
	doOp func(p *sim.Proc, svc *Service, client, i int) error) float64 {
	t.Helper()
	eng, svc := newSvc()
	svc.CreateTable("t")
	// Pre-populate for query/update/delete workloads.
	part := svc.partition("t", "pk")
	for c := 0; c < clients; c++ {
		for i := 0; i < opsEach; i++ {
			e := PaddedEntity("pk", fmt.Sprintf("row-%d-%d", c, i), entitySize)
			part[e.RowKey] = e
		}
	}
	var totalOps int
	var totalTime time.Duration
	for c := 0; c < clients; c++ {
		c := c
		eng.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			n := 0
			for i := 0; i < opsEach; i++ {
				if err := doOp(p, svc, c, i); err != nil {
					break
				}
				n++
			}
			totalOps += n
			totalTime += p.Now() - start
		})
	}
	eng.Run()
	// totalTime sums per-client busy time, so this is the per-client rate.
	return float64(totalOps) / totalTime.Seconds()
}

func TestFig2InsertDecaysGently(t *testing.T) {
	ins := func(p *sim.Proc, svc *Service, c, i int) error {
		return svc.Insert(p, "t", PaddedEntity("pk", fmt.Sprintf("n-%d-%d", c, i), 4096))
	}
	r1 := opsRate(t, 1, 120, 4096, ins)
	r32 := opsRate(t, 32, 60, 4096, ins)
	r192 := opsRate(t, 192, 40, 4096, ins)
	if math.Abs(r1-27) > 4 {
		t.Fatalf("1-client insert = %.1f ops/s, want ~27", r1)
	}
	if !(r1 > r32 && r32 > r192) {
		t.Fatalf("insert per-client rate not decaying: %v %v %v", r1, r32, r192)
	}
	// Aggregate keeps growing through 192 (no server saturation).
	if !(192*r192 > 32*r32 && 32*r32 > r1) {
		t.Fatalf("insert aggregate not growing: %v %v %v", r1, 32*r32, 192*r192)
	}
}

func TestFig2QueryFasterThanInsert(t *testing.T) {
	q := func(p *sim.Proc, svc *Service, c, i int) error {
		_, err := svc.Get(p, "t", "pk", fmt.Sprintf("row-%d-%d", c, i))
		return err
	}
	ins := func(p *sim.Proc, svc *Service, c, i int) error {
		return svc.Insert(p, "t", PaddedEntity("pk", fmt.Sprintf("n-%d-%d", c, i), 4096))
	}
	if rq, ri := opsRate(t, 8, 60, 4096, q), opsRate(t, 8, 60, 4096, ins); rq <= ri {
		t.Fatalf("query (%.1f) not faster than insert (%.1f)", rq, ri)
	}
}

func TestFig2UpdateAggregatePeaksAt8(t *testing.T) {
	upd := func(p *sim.Proc, svc *Service, c, i int) error {
		return svc.Update(p, "t", PaddedEntity("pk", "row-0-0", 4096))
	}
	a1 := opsRate(t, 1, 40, 4096, upd)
	a8 := opsRate(t, 8, 40, 4096, upd)
	a64 := opsRate(t, 64, 30, 4096, upd)
	// per-client → aggregate
	if !(a8*8 > a1 && a8*8 > a64*64) {
		t.Fatalf("update aggregate not peaked at 8: %v %v %v", a1, a8*8, a64*64)
	}
	// "high initial throughput with only 1 client"
	if a1 < 60 {
		t.Fatalf("1-client update = %.1f ops/s, want high (>60)", a1)
	}
}

func TestFig2DeleteAggregatePeaksAt128(t *testing.T) {
	del := func(p *sim.Proc, svc *Service, c, i int) error {
		return svc.Delete(p, "t", "pk", fmt.Sprintf("row-%d-%d", c, i))
	}
	a32 := opsRate(t, 32, 40, 4096, del) * 32
	a128 := opsRate(t, 128, 30, 4096, del) * 128
	a192 := opsRate(t, 192, 30, 4096, del) * 192
	if !(a128 > a32 && a128 > a192) {
		t.Fatalf("delete aggregate not peaked at 128: %v %v %v", a32, a128, a192)
	}
}

// TestInsert64kTimeouts reproduces the Section 3.2 observation: with 64 kB
// entities and 128/192 concurrent clients, a sizable minority of clients hit
// server timeout exceptions before finishing 500 inserts, while 64 clients
// all finish.
func TestInsert64kTimeouts(t *testing.T) {
	survivors := func(clients int) int {
		eng, svc := newSvc()
		svc.CreateTable("t")
		finished := 0
		for c := 0; c < clients; c++ {
			c := c
			eng.Spawn("client", func(p *sim.Proc) {
				for i := 0; i < 500; i++ {
					e := PaddedEntity("pk", fmt.Sprintf("r-%d-%d", c, i), 65536)
					if err := svc.Insert(p, "t", e); err != nil {
						if storerr.IsCode(err, storerr.CodeTimeout) {
							return // client aborts its run, as in the paper
						}
						t.Errorf("unexpected: %v", err)
						return
					}
				}
				finished++
			})
		}
		eng.Run()
		return finished
	}
	if got := survivors(64); got != 64 {
		t.Fatalf("64-client survivors = %d, want all 64", got)
	}
	s128 := survivors(128)
	if s128 < 70 || s128 > 120 {
		t.Fatalf("128-client survivors = %d, want ~94 (paper)", s128)
	}
	s192 := survivors(192)
	if s192 < 60 || s192 > 130 {
		t.Fatalf("192-client survivors = %d, want ~89 (paper)", s192)
	}
	// Guard against gross regressions only: the overload feedback loop
	// (aborts lower the attached count, which lowers rho) settles at a
	// survivor count whose seed-to-seed spread routinely puts s192 10-25
	// above s128, so the bound leaves that much room.
	if s192 >= s128+30 {
		t.Fatalf("far more survivors at higher concurrency: %d vs %d", s192, s128)
	}
}

// TestPropertyFilterTimeouts reproduces Section 6.1: querying a ~220k-entity
// partition with property filters at 32-way concurrency times out more often
// than not, while a single filter query succeeds.
func TestPropertyFilterTimeouts(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateTable("t")
	part := svc.partition("t", "pk")
	for i := 0; i < 220000; i++ {
		e := &Entity{PartitionKey: "pk", RowKey: fmt.Sprintf("r%06d", i),
			Props: map[string]Prop{"A": IntProp(int64(i % 100))}}
		part[e.RowKey] = e
	}
	pred := func(e *Entity) bool { return e.Props["A"].Int == 7 }

	var soloErr error
	var soloHits int
	eng.Spawn("solo", func(p *sim.Proc) {
		out, err := svc.QueryFilter(p, "t", "pk", pred)
		soloErr, soloHits = err, len(out)
	})
	eng.Run()
	if soloErr != nil {
		t.Fatalf("solo filter query failed: %v", soloErr)
	}
	if soloHits != 2200 {
		t.Fatalf("solo filter hits = %d, want 2200", soloHits)
	}

	eng2 := sim.NewEngine()
	svc2 := New(eng2, simrand.New(2), Config{})
	svc2.CreateTable("t")
	part2 := svc2.partition("t", "pk")
	for i := 0; i < 220000; i++ {
		e := &Entity{PartitionKey: "pk", RowKey: fmt.Sprintf("r%06d", i),
			Props: map[string]Prop{"A": IntProp(int64(i % 100))}}
		part2[e.RowKey] = e
	}
	timeouts := 0
	for c := 0; c < 32; c++ {
		eng2.Spawn("scan", func(p *sim.Proc) {
			if _, err := svc2.QueryFilter(p, "t", "pk", pred); storerr.IsCode(err, storerr.CodeTimeout) {
				timeouts++
			}
		})
	}
	eng2.Run()
	if timeouts <= 16 {
		t.Fatalf("32-way filter timeouts = %d, want over half", timeouts)
	}
}

func TestTimeoutsCounter(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateTable("t")
	part := svc.partition("t", "pk")
	for i := 0; i < 220000; i++ {
		part[fmt.Sprintf("r%d", i)] = &Entity{PartitionKey: "pk", RowKey: fmt.Sprintf("r%d", i)}
	}
	for c := 0; c < 32; c++ {
		eng.Spawn("scan", func(p *sim.Proc) {
			_, _ = svc.QueryFilter(p, "t", "pk", func(*Entity) bool { return false })
		})
	}
	eng.Run()
	if svc.Timeouts() == 0 {
		t.Fatal("timeout counter did not advance")
	}
}

func TestPartitionSize(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateTable("t")
	eng.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			_ = svc.Insert(p, "t", PaddedEntity("pk", fmt.Sprintf("r%d", i), 256))
		}
	})
	eng.Run()
	if svc.PartitionSize("t", "pk") != 10 {
		t.Fatalf("partition size = %d", svc.PartitionSize("t", "pk"))
	}
	if svc.PartitionSize("t", "other") != 0 {
		t.Fatal("empty partition nonzero")
	}
}

// TestFaultRatesMatchConfig: the reqpath admission faults added to the table
// service fire at their configured probabilities (5σ binomial tolerance).
func TestFaultRatesMatchConfig(t *testing.T) {
	const pConn, pBusy = 0.12, 0.08
	const n = 4000
	eng := sim.NewEngine()
	svc := New(eng, simrand.New(5), Config{ConnFailProb: pConn, ServerBusyProb: pBusy})
	svc.CreateTable("t")
	var conn, busy int
	eng.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			err := svc.Insert(p, "t", PaddedEntity("pk", fmt.Sprintf("rk-%06d", i), 1024))
			switch {
			case err == nil:
			case storerr.IsCode(err, storerr.CodeConnection):
				conn++
			case storerr.IsCode(err, storerr.CodeServerBusy):
				busy++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}
	})
	eng.Run()
	check := func(name string, got int, want float64) {
		sigma := math.Sqrt(want * (1 - want) / n)
		if rate := float64(got) / n; math.Abs(rate-want) > 5*sigma {
			t.Errorf("%s rate %.4f, want %.3f (±%.4f)", name, rate, want, 5*sigma)
		}
	}
	check("conn-fail", conn, pConn)
	// The busy stage only sees requests that survived the conn stage.
	check("server-busy", busy, pBusy*(1-pConn))
}
