package tablesvc

import (
	"azureobs/internal/sim"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
)

// FlatGet is caller-owned flat-mode state for table Get requests: the Get
// body compiled into continuations on the caller's actor. Unlike blob
// sessions, the table service runs every client through one service-level
// pipeline, so the in-flight state cannot live on the service — each flat
// client owns a FlatGet (one outstanding request at a time) and reuses it
// for every query it ever issues; steady-state requests allocate nothing.
//
// Stage order replicates Get verbatim: admission (outage → conn-fail →
// server-busy; the table pipeline has no request-latency stage, so no wake
// is scheduled there), partition lookup, the query-station visit with the
// response's download cost added, the not-found reply, hook delivery, then
// done at the instant Get would have returned.
type FlatGet struct {
	svc *Service
	a   *sim.Actor
	c   reqpath.FlatCtx

	table, pk, rk string
	ent           *Entity
	done          func(*Entity, error)

	afterVisit func() // cached: runs when the station visit's sleep ends
}

// NewFlatGet builds flat Get state against the service; done receives every
// request's outcome.
func (s *Service) NewFlatGet(done func(*Entity, error)) *FlatGet {
	r := &FlatGet{svc: s, done: done}
	r.afterVisit = r.visited
	return r
}

// Init prepares an embedded (zero-value) FlatGet in place — the allocation-
// free alternative to NewFlatGet for callers that inline the state in a
// larger per-client struct.
func (r *FlatGet) Init(s *Service, done func(*Entity, error)) {
	if r.svc != nil {
		panic("tablesvc: FlatGet initialised twice")
	}
	r.svc = s
	r.done = done
	r.afterVisit = r.visited
}

// Start issues one flat Get on actor a. A second Start before done fires
// panics — the state holds one request.
func (r *FlatGet) Start(a *sim.Actor, table, pk, rk string) {
	if r.a != nil {
		panic("tablesvc: FlatGet already has a request in flight")
	}
	r.a, r.table, r.pk, r.rk = a, table, pk, rk
	r.c.Begin(r.svc.pl, "table.Query", a.Now())
	// The table pipeline has no latency stage: AdmitPre never asks for a
	// sleep, so admission runs straight through, as Do's admit would.
	if _, _, err := r.c.AdmitPre(); err != nil {
		r.finish(err)
		return
	}
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return
	}
	part := r.svc.partition(table, pk)
	if part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	e, ok := part[rk]
	var respSize int
	if ok {
		respSize = e.Size()
	}
	r.ent = e
	r.a.Sleep(r.svc.query.BeginVisit(r.c.DownloadCost(respSize)), r.afterVisit)
}

func (r *FlatGet) visited() {
	r.svc.query.EndVisit()
	if r.ent == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.pk, r.rk))
		return
	}
	r.finish(nil)
}

func (r *FlatGet) finish(err error) {
	ent := r.ent
	if err != nil {
		ent = nil
	}
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the next query immediately.
	r.a, r.ent = nil, nil
	r.done(ent, err)
}
