package tablesvc

import (
	"sort"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// GetFlat is caller-owned flat-mode state for table Get requests: the Get
// body compiled into continuations on the caller's actor. Unlike blob
// sessions, the table service runs every client through one service-level
// pipeline, so the in-flight state cannot live on the service — each flat
// client owns a GetFlat (one outstanding request at a time) and reuses it
// for every query it ever issues; steady-state requests allocate nothing.
//
// Stage order replicates Get verbatim: admission (outage → conn-fail →
// server-busy; the table pipeline has no request-latency stage, so no wake
// is scheduled there), partition lookup, the query-station visit with the
// response's download cost added, the not-found reply, hook delivery, then
// done at the instant Get would have returned.
type GetFlat struct {
	svc *Service
	a   *sim.Actor
	c   reqpath.CtxFlat

	table, pk, rk string
	ent           *Entity
	done          func(*Entity, error)

	afterVisit func() // cached: runs when the station visit's sleep ends
}

// NewGetFlat builds flat Get state against the service; done receives every
// request's outcome.
func (s *Service) NewGetFlat(done func(*Entity, error)) *GetFlat {
	r := &GetFlat{svc: s, done: done}
	r.afterVisit = r.visited
	return r
}

// Init prepares an embedded (zero-value) GetFlat in place — the allocation-
// free alternative to NewGetFlat for callers that inline the state in a
// larger per-client struct.
func (r *GetFlat) Init(s *Service, done func(*Entity, error)) {
	if r.svc != nil {
		panic("tablesvc: GetFlat initialised twice")
	}
	r.svc = s
	r.done = done
	r.afterVisit = r.visited
}

// Begin issues one flat Get on actor a. A second Begin before done fires
// panics — the state holds one request.
func (r *GetFlat) Begin(a *sim.Actor, table, pk, rk string) {
	if r.a != nil {
		panic("tablesvc: GetFlat already has a request in flight")
	}
	r.a, r.table, r.pk, r.rk = a, table, pk, rk
	r.c.Begin(r.svc.pl, "table.Query", a.Now())
	// The table pipeline has no latency stage: AdmitPre never asks for a
	// sleep, so admission runs straight through, as Do's admit would.
	if _, _, err := r.c.AdmitPre(); err != nil {
		r.finish(err)
		return
	}
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return
	}
	part := r.svc.partition(table, pk)
	if part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	e, ok := part[rk]
	var respSize int
	if ok {
		respSize = e.Size()
	}
	r.ent = e
	r.a.Sleep(r.svc.query.BeginVisit(r.c.DownloadCost(respSize)), r.afterVisit)
}

func (r *GetFlat) visited() {
	r.svc.query.EndVisit()
	if r.ent == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.pk, r.rk))
		return
	}
	r.finish(nil)
}

func (r *GetFlat) finish(err error) {
	ent := r.ent
	if err != nil {
		ent = nil
	}
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the next query immediately.
	r.a, r.ent = nil, nil
	r.done(ent, err)
}

// wop selects which write-class table operation a WriteFlat runs.
type wop int

const (
	wInsert wop = iota
	wUpdate
	wDelete
)

// WriteFlat is caller-owned flat-mode state for the write-class table ops
// (Insert, Update, Delete): the blocking bodies compiled into continuations
// on the caller's actor. One request may be in flight at a time; the state
// is reused for every write the owner ever issues.
//
// Stage order replicates the blocking twins verbatim, including the
// ingest-overload model: admission → partition lookup → overload draw (a
// hit burns ServerTimeout, counts a service timeout, and replies
// OperationTimedOut without visiting the station) → station visit → the
// conflict/not-found check → mutation → hook delivery → done.
type WriteFlat struct {
	svc *Service
	a   *sim.Actor
	c   reqpath.CtxFlat

	op     wop
	table  string
	ent    *Entity // insert/update payload
	pk, rk string  // delete target
	part   map[string]*Entity
	st     *station.Station
	rho    float64 // overload diagnostic for the timeout reply
	done   func(error)

	afterVisit   func() // cached: runs when the station visit's sleep ends
	afterTimeout func() // cached: runs when the overload burn ends
}

// NewWriteFlat builds flat write state against the service; done receives
// every request's outcome.
func (s *Service) NewWriteFlat(done func(error)) *WriteFlat {
	r := &WriteFlat{svc: s, done: done}
	r.afterVisit = r.visited
	r.afterTimeout = r.timedOut
	return r
}

// Init prepares an embedded (zero-value) WriteFlat in place.
func (r *WriteFlat) Init(s *Service, done func(error)) {
	if r.svc != nil {
		panic("tablesvc: WriteFlat initialised twice")
	}
	r.svc = s
	r.done = done
	r.afterVisit = r.visited
	r.afterTimeout = r.timedOut
}

// BeginInsert issues one flat Insert on actor a, as Insert.
func (r *WriteFlat) BeginInsert(a *sim.Actor, table string, e *Entity) {
	r.op, r.table, r.ent = wInsert, table, e
	if !r.begin(a, "table.Insert") {
		return
	}
	if r.part = r.svc.partition(table, e.PartitionKey); r.part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	r.st = r.svc.insert
	if r.overload(e.Size()) {
		return
	}
	r.a.Sleep(r.st.BeginVisit(r.c.UploadCost(e.Size())), r.afterVisit)
}

// BeginUpdate issues one flat Update on actor a, as Update. Updates have no
// overload stage: the paper's hot-entity contention is the station's.
func (r *WriteFlat) BeginUpdate(a *sim.Actor, table string, e *Entity) {
	r.op, r.table, r.ent = wUpdate, table, e
	if !r.begin(a, "table.Update") {
		return
	}
	if r.part = r.svc.partition(table, e.PartitionKey); r.part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	r.st = r.svc.update
	r.a.Sleep(r.st.BeginVisit(r.c.UploadCost(e.Size())), r.afterVisit)
}

// BeginDelete issues one flat Delete on actor a, as Delete.
func (r *WriteFlat) BeginDelete(a *sim.Actor, table, pk, rk string) {
	r.op, r.table, r.pk, r.rk = wDelete, table, pk, rk
	if !r.begin(a, "table.Delete") {
		return
	}
	if r.part = r.svc.partition(table, pk); r.part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	size := 0
	if e, ok := r.part[rk]; ok {
		size = e.Size()
	}
	r.st = r.svc.delete
	if r.overload(size) {
		return
	}
	r.a.Sleep(r.st.BeginVisit(0), r.afterVisit)
}

// begin runs admission; it reports whether the request is still alive. The
// table pipeline has no latency stage, so admission never schedules a wake.
func (r *WriteFlat) begin(a *sim.Actor, op string) bool {
	if r.a != nil {
		panic("tablesvc: WriteFlat already has a request in flight")
	}
	r.a = a
	r.c.Begin(r.svc.pl, op, a.Now())
	if _, _, err := r.c.AdmitPre(); err != nil {
		r.finish(err)
		return false
	}
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return false
	}
	return true
}

// overload runs the flat split of overloaded: the same draw from the same
// timeout stream, then the ServerTimeout burn armed on the actor. It
// reports whether the request took the timeout path.
func (r *WriteFlat) overload(size int) bool {
	prob, rho := r.svc.overloadProb(r.st, size)
	if prob <= 0 || !r.c.TimeoutHit(prob) {
		return false
	}
	r.rho = rho
	r.a.Sleep(r.c.ServerTimeout(), r.afterTimeout)
	return true
}

func (r *WriteFlat) timedOut() {
	// The blocking path counts the timeout after the burn, on return from
	// TimeoutFault — mirror that here so Timeouts() agrees mid-run.
	r.svc.timeouts++
	r.finish(r.c.TimeoutErrf("partition ingest overloaded (rho=%.2f)", r.rho))
}

func (r *WriteFlat) visited() {
	r.st.EndVisit()
	switch r.op {
	case wInsert:
		if _, exists := r.part[r.ent.RowKey]; exists {
			r.finish(r.c.Failf(storerr.CodeConflict, "%s/%s exists", r.ent.PartitionKey, r.ent.RowKey))
			return
		}
		r.part[r.ent.RowKey] = r.ent
	case wUpdate:
		if _, ok := r.part[r.ent.RowKey]; !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.ent.PartitionKey, r.ent.RowKey))
			return
		}
		r.part[r.ent.RowKey] = r.ent
	case wDelete:
		if _, ok := r.part[r.rk]; !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.pk, r.rk))
			return
		}
		delete(r.part, r.rk)
	}
	r.finish(nil)
}

func (r *WriteFlat) finish(err error) {
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the next write immediately.
	r.a, r.ent, r.part, r.st = nil, nil, nil, nil
	r.done(err)
}

// QueryFlat is caller-owned flat-mode state for property-filter partition
// scans, the flat twin of QueryFilter. One request may be in flight at a
// time.
//
// Stage order replicates QueryFilter verbatim: admission → partition lookup
// → scan registration → a zero-length yield (so a burst of simultaneous
// scans registers before any member prices its cost) → the lognormal scan
// draw → either the ServerTimeout burn and an OperationTimedOut reply, or
// the scan sleep and collection. One deliberate divergence: the blocking
// body walks the partition map in Go's randomised order, which a wire
// response would observably leak, so the flat twin collects in ascending
// RowKey order.
type QueryFlat struct {
	svc *Service
	a   *sim.Actor
	c   reqpath.CtxFlat

	table, pk string
	pred      func(*Entity) bool
	part      map[string]*Entity
	out       []*Entity
	done      func([]*Entity, error)

	afterYield   func() // cached: runs after the registration yield
	afterScan    func() // cached: runs when the scan sleep ends
	afterTimeout func() // cached: runs when the timeout burn ends
}

// NewQueryFlat builds flat scan state against the service; done receives
// every request's outcome (entities in ascending RowKey order).
func (s *Service) NewQueryFlat(done func([]*Entity, error)) *QueryFlat {
	r := &QueryFlat{svc: s, done: done}
	r.afterYield = r.yielded
	r.afterScan = r.scanned
	r.afterTimeout = r.timedOut
	return r
}

// Init prepares an embedded (zero-value) QueryFlat in place.
func (r *QueryFlat) Init(s *Service, done func([]*Entity, error)) {
	if r.svc != nil {
		panic("tablesvc: QueryFlat initialised twice")
	}
	r.svc = s
	r.done = done
	r.afterYield = r.yielded
	r.afterScan = r.scanned
	r.afterTimeout = r.timedOut
}

// Begin issues one flat scan on actor a. A nil pred matches every entity —
// the whole-partition query the wire facade serves.
func (r *QueryFlat) Begin(a *sim.Actor, table, pk string, pred func(*Entity) bool) {
	if r.a != nil {
		panic("tablesvc: QueryFlat already has a request in flight")
	}
	r.a, r.table, r.pk, r.pred = a, table, pk, pred
	r.c.Begin(r.svc.pl, "table.QueryFilter", a.Now())
	if _, _, err := r.c.AdmitPre(); err != nil {
		r.finish(err)
		return
	}
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return
	}
	if r.part = r.svc.partition(table, pk); r.part == nil {
		r.finish(r.c.Failf(storerr.CodeNotFound, "table %s", table))
		return
	}
	r.svc.scans++
	// The flat spelling of P.Yield(): one zero-length event, same seq cost.
	a.Sleep(0, r.afterYield)
}

func (r *QueryFlat) yielded() {
	s := r.svc
	mean := float64(len(r.part)) * s.cfg.ScanSecPerEntity * (1 + float64(s.scans)/s.cfg.ScanConcurrencyN0)
	lat := r.c.Sample(simrand.LogNormalMeanCV(mean, s.cfg.ScanCV))
	if lat > s.cfg.ServerTimeout {
		// As QueryFilter: the timeout is counted when the deadline is judged
		// blown, before the burn; the scan stays registered until the burn
		// ends (the deferred scans-- runs after Timeout's sleep).
		s.timeouts++
		r.a.Sleep(r.c.ServerTimeout(), r.afterTimeout)
		return
	}
	r.a.Sleep(lat, r.afterScan)
}

func (r *QueryFlat) timedOut() {
	n := len(r.part)
	r.svc.scans--
	r.finish(r.c.TimeoutErrf("scan of %d entities timed out", n))
}

func (r *QueryFlat) scanned() {
	rks := make([]string, 0, len(r.part))
	for rk := range r.part {
		rks = append(rks, rk)
	}
	sort.Strings(rks)
	for _, rk := range rks {
		if e := r.part[rk]; r.pred == nil || r.pred(e) {
			r.out = append(r.out, e)
		}
	}
	r.svc.scans--
	r.finish(nil)
}

func (r *QueryFlat) finish(err error) {
	out := r.out
	if err != nil {
		out = nil
	}
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the next scan immediately.
	r.a, r.part, r.pred, r.out = nil, nil, nil, nil
	r.done(out, err)
}
